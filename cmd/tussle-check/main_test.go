package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanSweep(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-trials", "25", "-seed", "42"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s, stdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "25 trials clean") {
		t.Fatalf("summary missing: %q", out.String())
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	run([]string{"-trials", "10", "-seed", "7"}, &a, &bytes.Buffer{})
	run([]string{"-trials", "10", "-seed", "7"}, &b, &bytes.Buffer{})
	if a.String() != b.String() {
		t.Fatalf("same flags, different output:\n%q\nvs\n%q", a.String(), b.String())
	}
}

func TestRunRejectsUnknownInvariant(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-invariants", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown invariant") {
		t.Fatalf("stderr missing diagnosis: %q", errb.String())
	}
}

func TestRunInvariantSubset(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-trials", "5", "-seed", "3", "-invariants", "conservation,clock"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "2 invariants armed") {
		t.Fatalf("summary should report the armed subset: %q", out.String())
	}
}

func TestReplayMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", filepath.Join(t.TempDir(), "nope.json")}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestReplayRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"bogus":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", path}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
