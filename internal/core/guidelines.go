package core

import "fmt"

// This file implements the artifact §VI-A calls for: "This observation
// suggests that we should generate 'application design guidelines' that
// would help designers avoid pitfalls, and deal with the tussles of
// success." CheckGuidelines audits an application design against the
// paper's own advice and reports what passes, what fails, and why.

// AppDesign extends Design with the application-level facts the
// guidelines examine.
type AppDesign struct {
	Design
	// UserControlsNetworkFeatures: the user can decide which
	// in-network features (caches, filters, enhancers) are invoked
	// ("if applications are designed so that the user can control what
	// features 'in the network' are invoked, the designer may have
	// done as much as they can").
	UserControlsNetworkFeatures bool
	// ThirdParties lists the mediating parties the design involves
	// (certificate agents, reputation services, guarantors...).
	ThirdParties []ThirdParty
	// IntermediariesVisible: in-path elements reveal themselves and
	// their limitations.
	IntermediariesVisible bool
	// EndToEndEncryption: the endpoints can go dark at their option.
	EndToEndEncryption bool
	// NeedsValueFlow marks designs in which some party must be
	// compensated for the design to be deployed (QoS, source routing,
	// transit); HasValueFlow marks a designed payment mechanism.
	NeedsValueFlow, HasValueFlow bool
}

// ThirdParty is one mediator in a multi-way application.
type ThirdParty struct {
	Name string
	// Selectable: the end parties can choose which instance of this
	// mediator they use ("there should be explicit ability to select
	// what third parties are used to mediate an interaction").
	Selectable bool
}

// GuidelineFinding is one rule's verdict.
type GuidelineFinding struct {
	Rule   string
	Passed bool
	// Detail explains the verdict; for failures it is the §-anchored
	// advice.
	Detail string
}

// GuidelineReport is the complete audit.
type GuidelineReport struct {
	Findings []GuidelineFinding
}

// Passed counts satisfied rules.
func (r GuidelineReport) Passed() int {
	n := 0
	for _, f := range r.Findings {
		if f.Passed {
			n++
		}
	}
	return n
}

// Score is the fraction of rules satisfied.
func (r GuidelineReport) Score() float64 {
	if len(r.Findings) == 0 {
		return 1
	}
	return float64(r.Passed()) / float64(len(r.Findings))
}

// CheckGuidelines audits an application design against the paper's
// design advice.
func CheckGuidelines(app *AppDesign) GuidelineReport {
	var out []GuidelineFinding
	add := func(rule string, passed bool, detail string) {
		out = append(out, GuidelineFinding{Rule: rule, Passed: passed, Detail: detail})
	}

	// 1. Design for choice: users must hold real choice.
	choice := AnalyzeChoice(&app.Design)
	userBits := choice.BitsByKind[User]
	add("user-choice", userBits >= 1,
		fmt.Sprintf("users hold %.1f bits of choice; §IV-B: protocols must permit all the parties to express choice", userBits))

	// 2. Tussle isolation: mechanisms should not couple spaces.
	iso := AnalyzeIsolation(&app.Design)
	add("tussle-isolation", iso.IsolationScore() >= 0.75,
		fmt.Sprintf("isolation score %.2f; §IV-A: functions within a tussle space should be logically separated", iso.IsolationScore()))

	// 3. Visible choices: other parties can see choices made.
	add("visible-choices", choice.VisibleFraction >= 0.5,
		fmt.Sprintf("%.0f%% of choices visible; §IV-C: it matters if choices and their consequences are visible", choice.VisibleFraction*100))

	// 4. Exposed costs: the chooser sees what choosing costs.
	add("cost-exposure", choice.CostExposedFraction >= 0.5,
		fmt.Sprintf("%.0f%% of choice costs exposed; §IV-C: exposure of cost of choice", choice.CostExposedFraction*100))

	// 5. User control of in-network features.
	add("user-controls-features", app.UserControlsNetworkFeatures,
		"§VI-A: design so the user can control what features in the network are invoked")

	// 6. Third parties must be selectable.
	selectable := true
	for _, tp := range app.ThirdParties {
		if !tp.Selectable {
			selectable = false
		}
	}
	add("third-party-selection", selectable,
		"§V-B: explicit ability to select what third parties mediate the interaction")

	// 7. Intermediaries reveal themselves.
	add("visible-intermediaries", app.IntermediariesVisible,
		"§V-B: require that devices reveal if they impose limitations")

	// 8. End-to-end encryption available.
	add("e2e-encryption", app.EndToEndEncryption,
		"§VI-A: the ultimate defense of the end-to-end mode is end-to-end encryption")

	// 9. Value flow designed when needed.
	add("value-flow", !app.NeedsValueFlow || app.HasValueFlow,
		"§IV-C: if the value flow requires a protocol, design it")

	return GuidelineReport{Findings: out}
}
