package pathvector

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Convergence cost as the internetwork grows.
func benchConverge(b *testing.B, tier2, stubs int) {
	cfg := topology.DefaultHierarchy()
	cfg.Tier2 = tier2
	cfg.Stubs = stubs
	g := topology.GenerateHierarchy(cfg, sim.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(g)
		if err := p.Converge(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvergeSmall(b *testing.B)  { benchConverge(b, 6, 12) }
func BenchmarkConvergeMedium(b *testing.B) { benchConverge(b, 12, 40) }
func BenchmarkConvergeLarge(b *testing.B)  { benchConverge(b, 20, 100) }

func BenchmarkGaoRexfordCheck(b *testing.B) {
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(2))
	p := New(g)
	if err := p.Converge(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := p.CheckGaoRexford(); v != 0 {
			b.Fatal("violations")
		}
	}
}
