// Package netsim is the hop-by-hop packet forwarding simulator: nodes (one
// per autonomous system) connected by latency/bandwidth links, each with a
// pluggable routing function, a stack of middleboxes, and a local delivery
// handler. It runs on the deterministic event scheduler in internal/sim
// and carries the self-describing datagrams of internal/packet.
//
// Per-packet traces record the path taken and, on failure, where and why
// the packet died — the "tools to resolve and isolate faults" that §IV-C
// and §VI-A of the paper call for. A middlebox may be configured silent,
// in which case the trace records only an anonymous loss, reproducing the
// diagnostic asymmetry the paper warns about ("some devices that impair
// transparency may intentionally give no error information").
package netsim

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Direction tells a middlebox how the packet is moving relative to the
// node evaluating it.
type Direction uint8

// Packet directions at a node.
const (
	// Forwarding: the packet is transiting this node.
	Forwarding Direction = iota
	// Delivering: the packet terminates at this node.
	Delivering
	// Sending: the packet originates at this node.
	Sending
)

func (d Direction) String() string {
	switch d {
	case Forwarding:
		return "forward"
	case Delivering:
		return "deliver"
	default:
		return "send"
	}
}

// Verdict is a middlebox's decision about a packet.
type Verdict uint8

// Middlebox verdicts.
const (
	// Accept passes the (possibly transformed) packet on.
	Accept Verdict = iota
	// Drop discards the packet.
	Drop
)

// Middlebox inspects and possibly transforms or drops packets at a node.
// Implementations live in internal/middlebox; the interface is defined
// here so the simulator does not depend on them.
type Middlebox interface {
	// Name identifies the device in traces (when it is not silent).
	Name() string
	// Process examines data and returns the bytes to continue with and
	// a verdict. Returning different bytes models transformation (NAT,
	// redirection, cache answer).
	Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict)
	// Silent devices do not reveal themselves in drop reports.
	Silent() bool
}

// RouteFunc decides the next hop for a packet at a node. It receives the
// destination and the decoded network header (for policy-sensitive
// routing, e.g. ToS-aware or source-route-aware decisions). ok=false
// means "no route".
type RouteFunc func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool)

// DeliverFunc handles a packet that reached its destination node.
type DeliverFunc func(n *Node, t *Trace, data []byte)

// Node is one forwarding element (an AS border router).
type Node struct {
	ID  topology.NodeID
	Net *Network

	// Route computes next hops; nil means the node can only deliver.
	Route RouteFunc
	// HonorSourceRoutes controls whether this node obeys source-route
	// options — the provider's side of the §V-A4 tussle. A provider
	// that does not honor them forwards by its own routing only.
	HonorSourceRoutes bool
	// RequirePaymentForSourceRoute models the §V-A4 recommendation:
	// the provider honors source routes only when the packet carries a
	// payment voucher.
	RequirePaymentForSourceRoute bool
	// Middleboxes are processed in order; any Drop wins.
	Middleboxes []Middlebox
	// Deliver handles locally-destined traffic (after middleboxes).
	Deliver DeliverFunc

	// Counters accumulates per-node statistics.
	Counters sim.Counter
}

// AddMiddlebox appends m to the node's processing chain.
func (n *Node) AddMiddlebox(m Middlebox) { n.Middleboxes = append(n.Middleboxes, m) }

// RemoveMiddlebox removes the first middlebox with the given name.
func (n *Node) RemoveMiddlebox(name string) bool {
	for i, m := range n.Middleboxes {
		if m.Name() == name {
			n.Middleboxes = append(n.Middleboxes[:i], n.Middleboxes[i+1:]...)
			return true
		}
	}
	return false
}

// linkState tracks per-link transmission backlog for serialization delay
// and queue-overflow drops.
type linkState struct {
	busyUntil sim.Time
}

// Network is the assembled simulator.
type Network struct {
	Sched *sim.Scheduler
	Graph *topology.Graph
	nodes map[topology.NodeID]*Node

	// LinkRate is bytes/second of every link (serialization delay).
	LinkRate float64
	// MaxQueue is the maximum per-link backlog before tail drop.
	MaxQueue sim.Time
	// HopProcessing is fixed per-hop processing latency.
	HopProcessing sim.Time

	links  map[[2]topology.NodeID]*linkState
	failed map[[2]topology.NodeID]bool

	// Stats aggregates network-wide counters.
	Stats sim.Counter
	// Delivered and Dropped tally packet fates.
	Delivered, Dropped int
}

// New builds a Network over a topology. All nodes start with no routes,
// no middleboxes, and no delivery handler.
func New(sched *sim.Scheduler, g *topology.Graph) *Network {
	n := &Network{
		Sched:         sched,
		Graph:         g,
		nodes:         make(map[topology.NodeID]*Node, len(g.Nodes)),
		LinkRate:      1e8, // 800 Mbit/s
		MaxQueue:      100 * sim.Millisecond,
		HopProcessing: 10 * sim.Microsecond,
		links:         make(map[[2]topology.NodeID]*linkState),
		Stats:         sim.Counter{},
	}
	for id := range g.Nodes {
		n.nodes[id] = &Node{ID: id, Net: n, Counters: sim.Counter{}}
	}
	return n
}

// Node returns the node for id; it panics on unknown IDs (a wiring bug).
func (n *Network) Node(id topology.NodeID) *Node {
	nd, ok := n.nodes[id]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown node %d", id))
	}
	return nd
}

// TraceEvent is one step in a packet's life.
type TraceEvent struct {
	At     sim.Time
	Node   topology.NodeID
	Action string // "send", "forward", "deliver", "drop"
	Detail string // drop reason or middlebox name; empty when silent
}

// Trace is the per-packet record: the fault-isolation tool.
type Trace struct {
	Events    []TraceEvent
	Delivered bool
	// DropNode/DropReason are set when the packet died. For a silent
	// middlebox the reason is "lost" and the responsible device is not
	// identified — diagnosis must fall back on path inference.
	DropNode   topology.NodeID
	DropReason string
	SentAt     sim.Time
	DoneAt     sim.Time
}

// Path returns the sequence of nodes the packet visited.
func (t *Trace) Path() []topology.NodeID {
	var p []topology.NodeID
	for _, e := range t.Events {
		if e.Action != "drop" {
			p = append(p, e.Node)
		}
	}
	return p
}

// Latency returns the packet's network transit time (zero if undelivered).
func (t *Trace) Latency() sim.Time {
	if !t.Delivered {
		return 0
	}
	return t.DoneAt - t.SentAt
}

func (t *Trace) record(at sim.Time, node topology.NodeID, action, detail string) {
	t.Events = append(t.Events, TraceEvent{At: at, Node: node, Action: action, Detail: detail})
}

// Send injects a packet at node src. The returned Trace fills in as the
// simulation runs; inspect it after the scheduler drains.
func (n *Network) Send(src topology.NodeID, data []byte) *Trace {
	t := &Trace{SentAt: n.Sched.Now()}
	nd := n.Node(src)
	n.Sched.After(0, func() {
		t.record(n.Sched.Now(), src, "send", "")
		nd.process(t, data, Sending, src)
	})
	return t
}

func (n *Network) drop(t *Trace, node topology.NodeID, reason string) {
	n.Dropped++
	n.Stats.Inc("drop:" + reason)
	t.DropNode = node
	t.DropReason = reason
	t.DoneAt = n.Sched.Now()
	t.record(n.Sched.Now(), node, "drop", reason)
}

// process runs a packet through a node: middleboxes, then delivery or
// forwarding. ingress is the node the packet came from (== node for
// locally originated traffic).
func (nd *Node) process(t *Trace, data []byte, dir Direction, ingress topology.NodeID) {
	n := nd.Net
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		n.drop(t, nd.ID, "malformed")
		return
	}
	if dir != Sending {
		if tip.Dst.Provider() == uint16(nd.ID) {
			dir = Delivering
		} else {
			dir = Forwarding
		}
	}
	// Middlebox chain.
	for _, m := range nd.Middleboxes {
		out, verdict := m.Process(nd.ID, dir, data)
		if verdict == Drop {
			nd.Counters.Inc("mbox_drop")
			reason := "blocked:" + m.Name()
			if m.Silent() {
				reason = "lost"
			}
			n.drop(t, nd.ID, reason)
			return
		}
		if out != nil {
			data = out
			// Transformations may rewrite headers; re-decode.
			if err := tip.DecodeFrom(data); err != nil {
				n.drop(t, nd.ID, "malformed-after:"+m.Name())
				return
			}
			if tip.Dst.Provider() == uint16(nd.ID) {
				dir = Delivering
			} else if dir == Delivering {
				dir = Forwarding
			}
		}
	}
	if dir == Delivering {
		n.Delivered++
		t.Delivered = true
		t.DoneAt = n.Sched.Now()
		t.record(n.Sched.Now(), nd.ID, "deliver", "")
		nd.Counters.Inc("delivered")
		if nd.Deliver != nil {
			nd.Deliver(nd, t, data)
		}
		return
	}
	// Forwarding: TTL.
	if dir == Forwarding {
		ttl, err := packet.DecrementTTL(data)
		if err != nil {
			n.drop(t, nd.ID, "malformed")
			return
		}
		if ttl == 0 {
			n.drop(t, nd.ID, "ttl")
			return
		}
		t.record(n.Sched.Now(), nd.ID, "forward", "")
		nd.Counters.Inc("forwarded")
	}
	next, ok := nd.nextHop(&tip, data)
	if !ok {
		n.drop(t, nd.ID, "no-route")
		return
	}
	if _, adjacent := n.Graph.LinkBetween(nd.ID, next); !adjacent {
		n.drop(t, nd.ID, "bad-next-hop")
		return
	}
	n.transmit(t, nd.ID, next, data)
}

// nextHop picks the egress neighbor, honoring source routes when the
// node's policy allows it.
func (nd *Node) nextHop(tip *packet.TIP, data []byte) (topology.NodeID, bool) {
	if nd.HonorSourceRoutes {
		if wp, ok := packet.PeekSourceRoute(data); ok {
			allowed := true
			if nd.RequirePaymentForSourceRoute && tip.Payment == nil {
				allowed = false
				nd.Counters.Inc("srcroute_unpaid")
			}
			if allowed {
				if wp == packet.MakeAddr(uint16(nd.ID), 0) || wp.Provider() == uint16(nd.ID) {
					// We are the current waypoint: advance to the next.
					nxt, _, err := packet.AdvanceSourceRoute(data)
					if err == nil {
						if nxt != packet.AddrNone {
							wp = nxt
						} else {
							wp = tip.Dst // route exhausted: head to destination
						}
					}
				}
				nd.Counters.Inc("srcroute_honored")
				// Route toward the waypoint's provider. If the waypoint is
				// a direct neighbor, use it.
				target := topology.NodeID(wp.Provider())
				if target == nd.ID {
					target = topology.NodeID(tip.Dst.Provider())
				}
				if _, adj := nd.Net.Graph.LinkBetween(nd.ID, target); adj {
					return target, true
				}
				if nd.Route != nil {
					return nd.Route(packet.MakeAddr(uint16(target), 0), tip)
				}
				return 0, false
			}
		}
	}
	if nd.Route == nil {
		return 0, false
	}
	return nd.Route(tip.Dst, tip)
}

// transmit models link serialization + propagation + queueing.
func (n *Network) transmit(t *Trace, from, to topology.NodeID, data []byte) {
	if n.LinkFailed(from, to) {
		n.drop(t, from, "link-down")
		return
	}
	link, _ := n.Graph.LinkBetween(from, to)
	key := [2]topology.NodeID{from, to}
	ls := n.links[key]
	if ls == nil {
		ls = &linkState{}
		n.links[key] = ls
	}
	now := n.Sched.Now()
	if ls.busyUntil < now {
		ls.busyUntil = now
	}
	backlog := ls.busyUntil - now
	if backlog > n.MaxQueue {
		n.drop(t, from, "queue-overflow")
		return
	}
	txTime := sim.Time(float64(len(data)) / n.LinkRate * float64(sim.Second))
	ls.busyUntil += txTime
	arrive := ls.busyUntil + link.Latency + n.HopProcessing
	dst := n.Node(to)
	n.Sched.At(arrive, func() {
		dst.process(t, data, Forwarding, from)
	})
}

// DeliveryRatio returns delivered / (delivered + dropped), or 0 when no
// packets have terminated.
func (n *Network) DeliveryRatio() float64 {
	total := n.Delivered + n.Dropped
	if total == 0 {
		return 0
	}
	return float64(n.Delivered) / float64(total)
}
