package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring package time but in simulated units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// FromSeconds converts seconds to simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	fn   func()
	dead bool
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event simulation loop: events execute in
// timestamp order, ties broken by scheduling order. It is single-threaded
// by design — determinism is the point.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool

	// Processed counts events executed, for loop-detection and stats.
	Processed uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of events waiting to run (including
// cancelled events not yet drained).
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at the absolute simulated time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Scheduler) At(at Time, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev}
}

// After schedules fn after a delay from now.
func (s *Scheduler) After(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from running. Cancelling an already-run
// or already-cancelled event is a no-op.
func (s *Scheduler) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.dead = true
	}
}

// Stop halts Run/RunUntil after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= deadline, advances the clock
// to deadline, and returns. Events scheduled beyond the deadline remain
// queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		ev := s.queue[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&s.queue)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.Processed++
		ev.fn()
	}
	if !s.stopped && s.now < deadline && deadline < Time(1<<62-1) {
		s.now = deadline
	}
}

// Step executes exactly one live event and returns true, or returns false
// if the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.Processed++
		ev.fn()
		return true
	}
	return false
}
