package chaos

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/routing/linkstate"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trust"
)

// Observer is notified after the engine applies each fault (and each
// individual flap toggle), with the network already reflecting the new
// state. Routing adapters use this to re-converge; see reroute.go.
type Observer interface {
	Fault(ev Event, now sim.Time)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev Event, now sim.Time)

// Fault implements Observer.
func (f ObserverFunc) Fault(ev Event, now sim.Time) { f(ev, now) }

// Engine replays fault plans onto a network. Create one per simulation
// with New, bind optional consumers (AdDB for byzantine bursts), register
// observers, then Schedule one or more plans before running the
// scheduler.
type Engine struct {
	Net *netsim.Network

	// AdDB receives byzantine-burst advertisements; scheduling a plan
	// containing bursts without binding it is a schedule-time error.
	AdDB *linkstate.AdDatabase
	// Keys, when set, signs burst advertisements with the lying node's
	// own key — a byzantine insider has valid credentials, which is
	// exactly why one-sided signature checking is not enough (§V-B).
	Keys map[topology.NodeID]*trust.Principal

	rng       *sim.RNG
	observers []Observer

	// cuts stacks the link sets failed by Partition events so Heal can
	// restore exactly what its partition cut (and nothing that was
	// already down for another reason).
	cuts [][][2]topology.NodeID

	// Applied counts events applied, by kind and in total.
	Applied sim.Counter

	events     *obs.Counter
	eventsKind map[Kind]*obs.Counter
	reg        *obs.Registry
}

// New builds an engine over net. All of the engine's randomness (and the
// per-link impairment generators it installs) forks from seed, so two
// engines at the same seed replay identically.
func New(net *netsim.Network, seed uint64) *Engine {
	return &Engine{Net: net, rng: sim.NewRNG(seed ^ 0xc4a05), Applied: sim.Counter{}}
}

// AttachObs enables fault-injection observability: counters of applied
// events, total and per kind. A nil registry disables again.
func (e *Engine) AttachObs(reg *obs.Registry) {
	e.reg = reg
	if reg == nil {
		e.events, e.eventsKind = nil, nil
		return
	}
	e.events = reg.Counter("chaos.events")
	e.eventsKind = make(map[Kind]*obs.Counter)
}

// Observe registers an observer for every subsequently applied fault.
func (e *Engine) Observe(o Observer) { e.observers = append(e.observers, o) }

// Schedule validates the plan against the engine's topology and arms one
// scheduler event per plan entry. The plan's seed is mixed into the
// engine RNG stream used for impairments installed by this plan.
func (e *Engine) Schedule(p *Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i := range p.Events {
		if err := e.check(&p.Events[i]); err != nil {
			return fmt.Errorf("chaos: event %d (%s): %w", i, p.Events[i].Kind, err)
		}
	}
	for i := range p.Events {
		ev := p.Events[i]
		e.Net.Sched.At(ev.At(), func() { e.apply(ev) })
	}
	return nil
}

// check verifies an event's topology references at schedule time, so a
// bad plan fails before the simulation starts instead of mid-run.
func (e *Engine) check(ev *Event) error {
	g := e.Net.Graph
	node := func(id topology.NodeID) error {
		if _, ok := g.Nodes[id]; !ok {
			return fmt.Errorf("node %d not in topology", id)
		}
		return nil
	}
	link := func() error {
		if err := node(ev.A); err != nil {
			return err
		}
		if err := node(ev.B); err != nil {
			return err
		}
		if _, ok := g.LinkBetween(ev.A, ev.B); !ok {
			return fmt.Errorf("no link %d-%d in topology", ev.A, ev.B)
		}
		return nil
	}
	switch ev.Kind {
	case LinkDown, LinkUp, LinkFlap, Impair, ClearImpair:
		return link()
	case NodeCrash, NodeRecover:
		return node(ev.Node)
	case Partition:
		for _, id := range ev.Group {
			if err := node(id); err != nil {
				return err
			}
		}
	case ByzantineBurst:
		if e.AdDB == nil {
			return fmt.Errorf("byzantine-burst needs an AdDatabase bound to the engine")
		}
		return node(ev.Node)
	}
	return nil
}

// apply executes one event against the network, then notifies observers.
func (e *Engine) apply(ev Event) {
	now := e.Net.Sched.Now()
	switch ev.Kind {
	case LinkDown:
		e.Net.FailLink(ev.A, ev.B)
	case LinkUp:
		e.Net.RestoreLink(ev.A, ev.B)
	case LinkFlap:
		// Apply the first toggle now and schedule the rest; each toggle
		// records and notifies as a synthetic LinkDown/LinkUp (observers
		// need no flap-specific handling), so the flap itself is not
		// re-recorded below.
		down := !e.Net.LinkFailed(ev.A, ev.B)
		e.toggleLink(ev, down)
		for i := 1; i < ev.Count; i++ {
			d := down == (i%2 == 0)
			e.Net.Sched.At(now+sim.Time(i)*ev.Period(), func() { e.toggleLink(ev, d) })
		}
		return
	case NodeCrash:
		e.Net.FailNode(ev.Node)
	case NodeRecover:
		e.Net.RecoverNode(ev.Node)
	case Partition:
		e.partition(ev.Group)
	case Heal:
		e.heal()
	case Impair:
		e.Net.ImpairLink(ev.A, ev.B, netsim.LinkImpairment{
			Corrupt:       ev.Corrupt,
			Duplicate:     ev.Duplicate,
			ReorderProb:   ev.ReorderProb,
			ReorderJitter: msToTime(ev.ReorderJitterMs),
		}, e.rng.Fork())
	case ClearImpair:
		e.Net.ClearImpairment(ev.A, ev.B)
	case ByzantineBurst:
		for i := 0; i < ev.Count; i++ {
			ad := linkstate.LiarAdvertisement(e.Net.Graph, ev.Node, ev.Cost, ev.Phantoms)
			if p := e.Keys[ev.Node]; p != nil {
				ad.Sign(p)
			}
			e.AdDB.Flood(ad)
		}
	}
	e.record(ev, now)
}

// toggleLink is one flap transition, delivered to observers as a
// synthetic LinkDown/LinkUp so they need no flap-specific handling.
func (e *Engine) toggleLink(ev Event, down bool) {
	kind := LinkUp
	if down {
		kind = LinkDown
		e.Net.FailLink(ev.A, ev.B)
	} else {
		e.Net.RestoreLink(ev.A, ev.B)
	}
	e.record(Event{AtMs: ev.AtMs, Kind: kind, A: ev.A, B: ev.B}, e.Net.Sched.Now())
}

// partition fails every link crossing the group boundary, remembering
// which links it actually cut.
func (e *Engine) partition(group []topology.NodeID) {
	in := make(map[topology.NodeID]bool, len(group))
	for _, id := range group {
		in[id] = true
	}
	var cut [][2]topology.NodeID
	for _, l := range e.Net.Graph.Links {
		if in[l.A] == in[l.B] || e.Net.LinkFailed(l.A, l.B) {
			continue
		}
		e.Net.FailLink(l.A, l.B)
		cut = append(cut, [2]topology.NodeID{l.A, l.B})
	}
	e.cuts = append(e.cuts, cut)
}

// heal restores the most recent partition's cut set. A heal with no
// outstanding partition is a no-op.
func (e *Engine) heal() {
	if len(e.cuts) == 0 {
		return
	}
	cut := e.cuts[len(e.cuts)-1]
	e.cuts = e.cuts[:len(e.cuts)-1]
	for _, lk := range cut {
		e.Net.RestoreLink(lk[0], lk[1])
	}
}

// record counts the applied event and fans it out to observers.
func (e *Engine) record(ev Event, now sim.Time) {
	e.Applied.Inc(string(ev.Kind))
	e.Applied.Inc("total")
	if e.events != nil {
		e.events.Inc()
		c, ok := e.eventsKind[ev.Kind]
		if !ok {
			c = e.reg.Counter("chaos.events." + string(ev.Kind))
			e.eventsKind[ev.Kind] = c
		}
		c.Inc()
	}
	for _, o := range e.observers {
		o.Fault(ev, now)
	}
}
