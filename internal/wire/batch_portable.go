//go:build !linux || (!amd64 && !arm64)

package wire

import (
	"net"
	"net/netip"
)

// Portable single-syscall fallback: one datagram per
// ReadFromUDPAddrPort/WriteToUDPAddrPort call. These netip-based
// methods are allocation-free, so the zero-alloc steady-state contract
// holds here too — only the batching (and SO_REUSEPORT worker sockets)
// is Linux-specific.

// batchIO reports that this platform has no batched syscall path;
// workers share one socket.
const batchIO = false

type rxBatch struct {
	conn  *net.UDPConn
	bufs  [][]byte
	len0  int
	from0 netip.AddrPort
}

func newRxBatch(conn *net.UDPConn, bufs [][]byte) (*rxBatch, error) {
	return &rxBatch{conn: conn, bufs: bufs}, nil
}

// recv reads one datagram into slot 0.
func (r *rxBatch) recv() (int, error) {
	n, from, err := r.conn.ReadFromUDPAddrPort(r.bufs[0])
	if err != nil {
		return 0, err
	}
	r.len0 = n
	r.from0 = from
	return 1, nil
}

func (r *rxBatch) length(i int) int          { return r.len0 }
func (r *rxBatch) from(i int) netip.AddrPort { return r.from0 }

type txBatch struct {
	conn *net.UDPConn
}

func newTxBatch(conn *net.UDPConn, capacity int) (*txBatch, error) {
	return &txBatch{conn: conn}, nil
}

func (t *txBatch) send(entries []txEntry) (sent, errs int) {
	for i := range entries {
		if _, err := t.conn.WriteToUDPAddrPort(entries[i].data, entries[i].addr); err != nil {
			return sent, len(entries) - sent
		}
		sent++
	}
	return sent, 0
}

// listenConfig returns the default config (no SO_REUSEPORT).
func listenConfig() net.ListenConfig { return net.ListenConfig{} }
