package naming

import (
	"strings"

	"repro/internal/packet"
	"repro/internal/sim"
)

// AuthServer is an authoritative server for one zone in a delegation
// hierarchy. Names are label sequences joined by '.', most-specific
// first ("www.shop.example"); the hierarchy is walked from the rightmost
// label.
type AuthServer struct {
	// Label is this zone's label ("" for the root).
	Label string
	// records are terminal bindings within this zone.
	records map[string]packet.Addr
	// children are delegations.
	children map[string]*AuthServer
	// Queries counts lookups served (load metric).
	Queries int
}

// NewRoot creates an empty root server.
func NewRoot() *AuthServer {
	return &AuthServer{records: map[string]packet.Addr{}, children: map[string]*AuthServer{}}
}

// Delegate creates (or returns) the child zone for label.
func (s *AuthServer) Delegate(label string) *AuthServer {
	if c, ok := s.children[label]; ok {
		return c
	}
	c := &AuthServer{Label: label, records: map[string]packet.Addr{}, children: map[string]*AuthServer{}}
	s.children[label] = c
	return c
}

// Bind registers a terminal name in this zone.
func (s *AuthServer) Bind(label string, addr packet.Addr) {
	s.records[label] = addr
}

// Resolver performs iterative resolution with a TTL cache, counting the
// queries it issues — the realistic substrate under the §VI-A
// observation that mature-application "enhancement" (caches, kludges)
// accumulates in the network.
type Resolver struct {
	Root *AuthServer
	// TTL is how long cache entries live.
	TTL sim.Time
	// Clock supplies the current simulated time.
	Clock func() sim.Time

	cache map[string]cacheEntry
	// QueriesIssued counts upstream queries; CacheHits counts
	// resolutions served locally.
	QueriesIssued, CacheHits int
}

type cacheEntry struct {
	addr    packet.Addr
	expires sim.Time
}

// NewResolver creates a resolver over the hierarchy rooted at root.
func NewResolver(root *AuthServer, ttl sim.Time, clock func() sim.Time) *Resolver {
	return &Resolver{Root: root, TTL: ttl, Clock: clock, cache: map[string]cacheEntry{}}
}

// Resolve looks up a dotted name ("www.shop.example"), walking the
// delegation hierarchy right-to-left.
func (r *Resolver) Resolve(name string) (packet.Addr, bool) {
	now := r.Clock()
	if e, ok := r.cache[name]; ok && e.expires > now {
		r.CacheHits++
		return e.addr, true
	}
	labels := strings.Split(name, ".")
	srv := r.Root
	// Walk zones from the rightmost label down to (but excluding) the
	// leftmost, which is the terminal record.
	for i := len(labels) - 1; i >= 1; i-- {
		srv.Queries++
		r.QueriesIssued++
		child, ok := srv.children[labels[i]]
		if !ok {
			return packet.AddrNone, false
		}
		srv = child
	}
	srv.Queries++
	r.QueriesIssued++
	addr, ok := srv.records[labels[0]]
	if !ok {
		return packet.AddrNone, false
	}
	r.cache[name] = cacheEntry{addr: addr, expires: now + r.TTL}
	return addr, true
}

// Invalidate drops a cached name (used when a host renumbers — the
// dynamic-update mechanism of §V-A1 that weakens provider lock-in).
func (r *Resolver) Invalidate(name string) {
	delete(r.cache, name)
}
