package wire

import (
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topology"
)

// NodeConfig describes the forwarding personality of a wire node — the
// same knobs a netsim.Node exposes, so one spec can configure both the
// live engine and its simulator twin.
type NodeConfig struct {
	ID topology.NodeID
	// Route computes next hops; nil means the node can only deliver.
	Route netsim.RouteFunc
	// HonorSourceRoutes / RequirePaymentForSourceRoute mirror the
	// netsim.Node fields (the §V-A4 source-routing tussle knobs).
	HonorSourceRoutes            bool
	RequirePaymentForSourceRoute bool
	// SourceRoutePolicy is the compiled, metered admission program
	// (netsim.CompileSourceRoutePolicy); while set it replaces the
	// payment boolean, exactly as Node.SetSourceRoutePolicy does in the
	// simulator. The compiled object is immutable and may be shared
	// across workers; each Dataplane keeps its own evaluation scratch.
	SourceRoutePolicy *netsim.SourceRoutePolicy
	// Middleboxes are processed in installation order, single-pass,
	// with the exact netsim chain semantics. Stateful implementations
	// (NAT) are not goroutine-safe: build a fresh chain per Dataplane
	// (see Engine's NewDataplane factory).
	Middleboxes []netsim.Middlebox
	// Peers are the node's direct neighbors — the wire analogue of the
	// topology adjacency netsim consults for bad-next-hop detection and
	// direct source-route waypoints.
	Peers []topology.NodeID
}

// Dataplane is the per-worker decision kernel: it turns raw datagram
// bytes into a Decision using the identical sequence a netsim node
// applies to a transit arrival — sanity filter, decode, middlebox
// chain, delivery check, TTL decrement, then source-route-aware next-hop
// selection. One Dataplane is owned by one worker goroutine; Process
// reuses its decode scratch and allocates nothing.
type Dataplane struct {
	cfg  NodeConfig
	peer []bool // dense adjacency, indexed by NodeID

	// blockedReason/malformedReason are the per-middlebox interned drop
	// strings, built once so Process never concatenates.
	blockedReason   []string
	malformedReason []string

	tip packet.TIP // decode scratch, reused across packets

	// srcSlots is this worker's source-route policy evaluation scratch
	// (nil when no policy is configured).
	srcSlots []policy.Value

	o *dpObs // nil when observability is off (single nil check per site)
}

// dpObs bundles the dataplane's pre-bound observability instruments,
// mirroring the netsim seam: every site is behind a nil check so the
// zero-alloc contract holds with obs off.
type dpObs struct {
	processed *obs.Counter
	delivered *obs.Counter
	forwarded *obs.Counter
	drops     *obs.Counter
	mboxRuns  *obs.Counter
	rewrites  *obs.Counter
	mboxDrops *obs.Counter
}

// NewDataplane builds the decision kernel for one node personality.
func NewDataplane(cfg NodeConfig) *Dataplane {
	d := &Dataplane{cfg: cfg}
	maxID := cfg.ID
	for _, p := range cfg.Peers {
		if p > maxID {
			maxID = p
		}
	}
	d.peer = make([]bool, maxID+1)
	for _, p := range cfg.Peers {
		d.peer[p] = true
	}
	d.blockedReason = make([]string, len(cfg.Middleboxes))
	d.malformedReason = make([]string, len(cfg.Middleboxes))
	for i, m := range cfg.Middleboxes {
		d.blockedReason[i] = "blocked:" + m.Name()
		d.malformedReason[i] = "malformed-after:" + m.Name()
	}
	if cfg.SourceRoutePolicy != nil {
		d.srcSlots = cfg.SourceRoutePolicy.NewScratch()
	}
	return d
}

// Node returns the node identity this dataplane decides for.
func (d *Dataplane) Node() topology.NodeID { return d.cfg.ID }

// AttachObs enables per-decision observability counters on reg; nil
// disables them again.
func (d *Dataplane) AttachObs(reg *obs.Registry) {
	if reg == nil {
		d.o = nil
		return
	}
	d.o = &dpObs{
		processed: reg.Counter("wire.processed"),
		delivered: reg.Counter("wire.delivered"),
		forwarded: reg.Counter("wire.forwarded"),
		drops:     reg.Counter("wire.drops"),
		mboxRuns:  reg.Counter("wire.mbox.runs"),
		rewrites:  reg.Counter("wire.mbox.rewrites"),
		mboxDrops: reg.Counter("wire.mbox.drops"),
	}
}

func (d *Dataplane) isPeer(id topology.NodeID) bool {
	return int(id) < len(d.peer) && d.peer[id]
}

// dstNode maps a destination address to its owning node under the
// provider addressing scheme (the top 16 bits name the node), matching
// the netsim default.
func dstNode(a packet.Addr) topology.NodeID {
	return topology.NodeID(a.Provider())
}

// drop builds a Dropped decision without allocating.
func (d *Dataplane) drop(kind DropKind, reason string) Decision {
	if d.o != nil {
		d.o.drops.Inc()
	}
	return Decision{Kind: Dropped, Drop: kind, Reason: reason}
}

// Process decides one datagram's fate. data is the raw wire bytes (the
// receive slot, sliced to the datagram length); it may be patched in
// place (TTL decrement, source-route advance) and the returned
// Decision.Data may alias it. The decision sequence — and every reason
// string — is byte-identical to what netsim.InjectArrival at the same
// node records, which the differential tests pin.
func (d *Dataplane) Process(data []byte) Decision {
	if d.o != nil {
		d.o.processed.Inc()
	}
	// Cheap structural sanity before committing to a full decode. The
	// filter is sound (never rejects decodable bytes), so folding its
	// rejects into "malformed" keeps the decision vocabulary identical
	// to the simulator, which only has the decoder.
	if packet.Filter(data) != packet.FilterAccept {
		return d.drop(DropMalformed, "malformed")
	}
	if err := d.tip.DecodeReuse(data); err != nil {
		return d.drop(DropMalformed, "malformed")
	}
	nd := &d.cfg
	dir := netsim.Forwarding
	if dstNode(d.tip.Dst) == nd.ID {
		dir = netsim.Delivering
	}
	// Middlebox chain: single-pass, installation order, direction
	// recomputed after a rewrite — the netsim.Node.process semantics.
	for i, m := range nd.Middleboxes {
		if d.o != nil {
			d.o.mboxRuns.Inc()
		}
		out, verdict := m.Process(nd.ID, dir, data)
		if verdict == netsim.Drop {
			if d.o != nil {
				d.o.mboxDrops.Inc()
			}
			if m.Silent() {
				return d.drop(DropLost, "lost")
			}
			return d.drop(DropBlocked, d.blockedReason[i])
		}
		if out != nil {
			data = out
			if d.o != nil {
				d.o.rewrites.Inc()
			}
			if err := d.tip.DecodeReuse(out); err != nil {
				return d.drop(DropMalformedAfter, d.malformedReason[i])
			}
			if dstNode(d.tip.Dst) == nd.ID {
				dir = netsim.Delivering
			} else if dir == netsim.Delivering {
				dir = netsim.Forwarding
			}
		}
	}
	if dir == netsim.Delivering {
		if d.o != nil {
			d.o.delivered.Inc()
		}
		return Decision{Kind: Deliver, Data: data}
	}
	// Forwarding: TTL decrement (in place, checksum repaired), then
	// next-hop selection.
	ttl, err := packet.DecrementTTL(data)
	if err != nil {
		return d.drop(DropMalformed, "malformed")
	}
	d.tip.TTL = ttl // keep the decoded header coherent with the bytes
	if ttl == 0 {
		return d.drop(DropTTL, "ttl")
	}
	next, ok := d.nextHop(data)
	if !ok {
		return d.drop(DropNoRoute, "no-route")
	}
	if !d.isPeer(next) {
		return d.drop(DropBadNextHop, "bad-next-hop")
	}
	if d.o != nil {
		d.o.forwarded.Inc()
	}
	return Decision{Kind: Forward, Next: next, Data: data}
}

// nextHop picks the egress neighbor, honoring source routes when policy
// allows — a line-for-line mirror of netsim.Node.nextHop so the two
// engines cannot disagree on routing.
func (d *Dataplane) nextHop(data []byte) (topology.NodeID, bool) {
	nd := &d.cfg
	tip := &d.tip
	if nd.HonorSourceRoutes {
		if wp, ok := packet.PeekSourceRoute(data); ok {
			allowed := true
			if nd.SourceRoutePolicy != nil {
				// Compiled admission policy: fail-safe deny, bounded by
				// the per-packet budget — the netsim.Node.nextHop check,
				// line for line.
				allowed = nd.SourceRoutePolicy.Allow(d.srcSlots, tip, wp)
			} else if nd.RequirePaymentForSourceRoute && tip.Payment == nil {
				allowed = false
			}
			if allowed {
				if wp == packet.MakeAddr(uint16(nd.ID), 0) || wp.Provider() == uint16(nd.ID) {
					// We are the current waypoint: advance to the next.
					nxt, advanced, err := packet.AdvanceSourceRoute(data)
					if err == nil {
						// Mirror the in-place pointer bump into the
						// decoded header (coherence rule).
						if advanced && tip.SourceRoute != nil && !tip.SourceRoute.Exhausted() {
							tip.SourceRoute.Ptr++
						}
						if nxt != packet.AddrNone {
							wp = nxt
						} else {
							wp = tip.Dst // route exhausted: head to destination
						}
					}
				}
				// Route toward the waypoint's provider. If the waypoint
				// is a direct neighbor, use it.
				target := topology.NodeID(wp.Provider())
				if target == nd.ID {
					target = topology.NodeID(tip.Dst.Provider())
				}
				if d.isPeer(target) {
					return target, true
				}
				if nd.Route != nil {
					return nd.Route(packet.MakeAddr(uint16(target), 0), tip)
				}
				return 0, false
			}
		}
	}
	if nd.Route == nil {
		return 0, false
	}
	return nd.Route(tip.Dst, tip)
}
