// Package middlebox implements the in-network devices that make the
// transparency tussle concrete (§V-B and §VI-A of the paper): port-based,
// trust-aware, policy-language, and negotiable (MIDCOM-style) firewalls,
// NAT, connection redirectors, wiretaps, and encryption blockers. Every
// device implements the netsim.Middlebox interface and can be installed
// at any node. (Application-level caches live in internal/apps.)
//
// Devices differ on the two axes the paper cares about:
//
//   - what they condition on (ports and addresses vs. who is
//     communicating — the trust-aware firewall of §V-B);
//   - whether they reveal themselves (Disclose/Silent — "one way to help
//     preserve the end-to-end character of the Internet is to require
//     that devices reveal if they impose limitations on it").
package middlebox

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/trust"
)

// decode splits a packet into its TIP and (optional) TTP headers for
// classification. Returns nil tip on undecodable input.
func decode(data []byte) (*packet.TIP, *packet.TTP) {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		return nil, nil
	}
	if tip.Proto != packet.LayerTypeTTP {
		return &tip, nil
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil {
		return &tip, nil
	}
	return &tip, &ttp
}

// PortFirewall blocks a configured set of transport ports — the blunt
// instrument that overloads port numbers with access-control meaning and
// invites tunneling counter-moves.
type PortFirewall struct {
	// Label names the device in traces.
	Label string
	// BlockedPorts is the deny list (destination ports).
	BlockedPorts map[uint16]bool
	// BlockInbound restricts enforcement to traffic delivered at this
	// node (the residential "no servers" rule); when false, all
	// directions are filtered.
	BlockInbound bool
	// Quiet suppresses self-identification in drop reports.
	Quiet bool
	// Hits counts dropped packets.
	Hits int
}

// Name implements netsim.Middlebox.
func (f *PortFirewall) Name() string { return f.Label }

// Silent implements netsim.Middlebox.
func (f *PortFirewall) Silent() bool { return f.Quiet }

// Process implements netsim.Middlebox.
func (f *PortFirewall) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if f.BlockInbound && dir != netsim.Delivering {
		return nil, netsim.Accept
	}
	_, ttp := decode(data)
	if ttp == nil {
		return nil, netsim.Accept
	}
	if f.BlockedPorts[ttp.DstPort] {
		f.Hits++
		return nil, netsim.Drop
	}
	return nil, netsim.Accept
}

// Rules returns a human-readable dump of the device's configuration —
// the §V-B disclosure question ("should that end user be able to
// download and examine these rules?"). It returns ok=false when the
// operator declines disclosure; the paper notes this can only be a
// courtesy, not an enforced requirement.
func (f *PortFirewall) Rules() ([]string, bool) {
	if f.Quiet {
		return nil, false
	}
	ports := make([]int, 0, len(f.BlockedPorts))
	for p := range f.BlockedPorts {
		ports = append(ports, int(p))
	}
	sort.Ints(ports)
	out := make([]string, len(ports))
	for i, p := range ports {
		out[i] = fmt.Sprintf("deny port %d", p)
	}
	return out, true
}

// TrustFirewall admits traffic based on who is communicating rather than
// which ports are used — the "trust-aware firewall" §V-B sketches. It
// consults the sender's identity option and a reputation mediator.
type TrustFirewall struct {
	Label string
	// MinScore is the reputation threshold for admission.
	MinScore float64
	// Rep is the chosen third-party mediator.
	Rep *trust.Reputation
	// AllowAnonymous admits traffic with a visible anonymous identity;
	// when false, anonymity is answered with refusal — the paper's
	// predicted equilibrium ("many people will choose not to
	// communicate with you if you do").
	AllowAnonymous bool
	// Quiet suppresses self-identification.
	Quiet bool
	// Hits counts dropped packets.
	Hits int
}

// Name implements netsim.Middlebox.
func (f *TrustFirewall) Name() string { return f.Label }

// Silent implements netsim.Middlebox.
func (f *TrustFirewall) Silent() bool { return f.Quiet }

// Process implements netsim.Middlebox.
func (f *TrustFirewall) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if dir != netsim.Delivering {
		return nil, netsim.Accept
	}
	tip, _ := decode(data)
	if tip == nil {
		return nil, netsim.Accept
	}
	id := tip.Identity
	if id == nil || id.Scheme == uint8(trust.Anonymous) {
		if f.AllowAnonymous {
			return nil, netsim.Accept
		}
		f.Hits++
		return nil, netsim.Drop
	}
	if f.Rep != nil {
		if f.Rep.Score(string(id.ID)) < f.MinScore {
			f.Hits++
			return nil, netsim.Drop
		}
	}
	return nil, netsim.Accept
}

// PolicyFirewall enforces a TPL policy document over packet attributes —
// the policy-language approach of §II-B, with its strengths (expressive,
// explicit) and its bound ontology (attributes below are all it can see).
type PolicyFirewall struct {
	Label string
	Doc   *policy.Document
	Quiet bool
	Hits  int
	// Errors counts rule evaluation failures (unknown attributes —
	// tussles outside the ontology).
	Errors int

	// compiled caches the bytecode form of Doc (built on first Process,
	// rebuilt if Doc is swapped). The VM and the tree-walker are
	// differentially tested to agree on every value and error, so this
	// changes per-packet cost, not decisions.
	compiled *policy.CompiledDocument
	budget   policy.Budget
}

// Vocabulary is the attribute ontology a PolicyFirewall exposes to
// policies. Anything else a policy references cannot be enforced.
var Vocabulary = []string{
	"src-provider", "dst-provider", "port", "src-port", "tos",
	"direction", "identity-scheme", "identity", "encrypted",
	"inspectable", "tunneled", "has-payment",
}

// Name implements netsim.Middlebox.
func (f *PolicyFirewall) Name() string { return f.Label }

// Silent implements netsim.Middlebox.
func (f *PolicyFirewall) Silent() bool { return f.Quiet }

// buildEnv exposes packet attributes to the policy evaluator.
func buildEnv(dir netsim.Direction, data []byte) policy.Env {
	tip, ttp := decode(data)
	env := policy.Env{}
	if tip == nil {
		return env
	}
	env["src-provider"] = policy.Num(float64(tip.Src.Provider()))
	env["dst-provider"] = policy.Num(float64(tip.Dst.Provider()))
	env["tos"] = policy.Num(float64(tip.TOS))
	env["direction"] = policy.Str(map[netsim.Direction]string{
		netsim.Forwarding: "transit", netsim.Delivering: "inbound", netsim.Sending: "outbound",
	}[dir])
	env["has-payment"] = policy.Bool(tip.Payment != nil)
	scheme := "none"
	identity := ""
	if tip.Identity != nil {
		scheme = trust.Scheme(tip.Identity.Scheme).String()
		identity = string(tip.Identity.ID)
	}
	env["identity-scheme"] = policy.Str(scheme)
	env["identity"] = policy.Str(identity)
	encrypted := false
	inspectable := false
	tunneled := false
	if ttp != nil {
		env["port"] = policy.Num(float64(ttp.DstPort))
		env["src-port"] = policy.Num(float64(ttp.SrcPort))
		switch ttp.Next {
		case packet.LayerTypeCrypto:
			encrypted = true
			var c packet.Crypto
			if err := c.DecodeFrom(ttp.LayerPayload()); err == nil {
				if _, err := c.InnerType(); err == nil {
					inspectable = true
				}
			}
		case packet.LayerTypeTunnel:
			tunneled = true
		}
	} else {
		env["port"] = policy.Num(-1)
		env["src-port"] = policy.Num(-1)
		if tip.Proto == packet.LayerTypeCrypto {
			encrypted = true
		}
		if tip.Proto == packet.LayerTypeTunnel {
			tunneled = true
		}
	}
	env["encrypted"] = policy.Bool(encrypted)
	env["inspectable"] = policy.Bool(inspectable)
	env["tunneled"] = policy.Bool(tunneled)
	return env
}

// Process implements netsim.Middlebox.
func (f *PolicyFirewall) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	env := buildEnv(dir, data)
	if f.compiled == nil || f.compiled.Doc != f.Doc {
		cd, err := policy.CompileDocument(f.Doc)
		if err != nil {
			// Unreachable for a parsed document; fall back to reference
			// semantics rather than fail open or closed.
			d, errs := policy.Evaluate(f.Doc, env)
			f.Errors += len(errs)
			if d.Permitted() {
				return nil, netsim.Accept
			}
			f.Hits++
			return nil, netsim.Drop
		}
		f.compiled = cd
	}
	f.budget = policy.DefaultBudget()
	d, errs := f.compiled.Evaluate(env, &f.budget)
	f.Errors += len(errs)
	if d.Permitted() {
		return nil, netsim.Accept
	}
	f.Hits++
	return nil, netsim.Drop
}
