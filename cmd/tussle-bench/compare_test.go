package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSuite(t *testing.T, dir, name string, exps []expBench) string {
	t.Helper()
	buf, err := json.Marshal(suiteBench{Seed: 42, Iters: 3, Experiments: exps})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareSuitesDetectsRegression(t *testing.T) {
	oldSB := &suiteBench{Experiments: []expBench{
		{ID: "E1", NsPerOp: 1000, AllocsPerOp: 10},
		{ID: "E2", NsPerOp: 2000, AllocsPerOp: 20},
		{ID: "E3", NsPerOp: 4000, AllocsPerOp: 40},
	}}
	newSB := &suiteBench{Experiments: []expBench{
		{ID: "E1", NsPerOp: 1050, AllocsPerOp: 10}, // +5%: within tolerance
		{ID: "E2", NsPerOp: 2500, AllocsPerOp: 20}, // +25%: regression
		{ID: "E3", NsPerOp: 3000, AllocsPerOp: 30}, // improvement
		{ID: "E99", NsPerOp: 999, AllocsPerOp: 1},  // new experiment: never fails
	}}
	deltas, regressed := compareSuites(oldSB, newSB, 0.10)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3 (E99 has no baseline)", len(deltas))
	}
	if len(regressed) != 1 || regressed[0].ID != "E2" {
		t.Fatalf("regressed = %+v, want exactly E2", regressed)
	}
	// Deltas are sorted worst-first.
	if deltas[0].ID != "E2" || deltas[2].ID != "E3" {
		t.Fatalf("delta order = %s,%s,%s; want E2 first, E3 last",
			deltas[0].ID, deltas[1].ID, deltas[2].ID)
	}
	// A looser tolerance passes the same pair.
	if _, reg := compareSuites(oldSB, newSB, 0.30); len(reg) != 0 {
		t.Fatalf("tolerance 0.30 still flags %+v", reg)
	}
}

// Alloc growth fails the gate at any size, regardless of the ns/op
// tolerance — alloc counts are deterministic, so one extra alloc/op is a
// real regression.
func TestCompareSuitesGatesAllocs(t *testing.T) {
	oldSB := &suiteBench{Experiments: []expBench{
		{ID: "E1", NsPerOp: 1000, AllocsPerOp: 10},
		{ID: "E2", NsPerOp: 1000, AllocsPerOp: 10},
	}}
	newSB := &suiteBench{Experiments: []expBench{
		{ID: "E1", NsPerOp: 900, AllocsPerOp: 11}, // faster but +1 alloc: regression
		{ID: "E2", NsPerOp: 1000, AllocsPerOp: 9}, // fewer allocs: fine
	}}
	_, regressed := compareSuites(oldSB, newSB, 0.10)
	if len(regressed) != 1 || regressed[0].ID != "E1" || !regressed[0].AllocRegressed {
		t.Fatalf("regressed = %+v, want exactly E1 flagged for allocs", regressed)
	}
	// No tolerance loosens the alloc gate.
	if _, reg := compareSuites(oldSB, newSB, 10.0); len(reg) != 1 {
		t.Fatalf("tolerance 10.0 dropped the alloc regression: %+v", reg)
	}

	var out strings.Builder
	dir := t.TempDir()
	oldPath := writeSuite(t, dir, "old.json", oldSB.Experiments)
	newPath := writeSuite(t, dir, "new.json", newSB.Experiments)
	if code := runCompare(&out, oldPath, newPath, 0.10); code != 1 {
		t.Fatalf("alloc-regressed compare exit = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "allocs 10->11") {
		t.Fatalf("missing alloc diagnostics:\n%s", out.String())
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSuite(t, dir, "old.json", []expBench{
		{ID: "E1", NsPerOp: 1000, AllocsPerOp: 100},
	})
	okPath := writeSuite(t, dir, "ok.json", []expBench{
		{ID: "E1", NsPerOp: 1080, AllocsPerOp: 90},
	})
	badPath := writeSuite(t, dir, "bad.json", []expBench{
		{ID: "E1", NsPerOp: 1500, AllocsPerOp: 90},
	})

	var out strings.Builder
	if code := runCompare(&out, oldPath, okPath, 0.10); code != 0 {
		t.Fatalf("ok compare exit = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OK: no ns/op or allocs/op regression") {
		t.Fatalf("missing OK line:\n%s", out.String())
	}

	out.Reset()
	if code := runCompare(&out, oldPath, badPath, 0.10); code != 1 {
		t.Fatalf("regressed compare exit = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "E1") {
		t.Fatalf("missing FAIL diagnostics:\n%s", out.String())
	}

	out.Reset()
	if code := runCompare(&out, filepath.Join(dir, "missing.json"), okPath, 0.10); code != 2 {
		t.Fatalf("missing-file compare exit = %d, want 2", code)
	}
}
