package scenarios

import (
	"testing"

	"repro/internal/core"
)

func TestNamesAndBuild(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		e, err := Build(n)
		if err != nil || e == nil {
			t.Fatalf("Build(%q): %v", n, err)
		}
	}
	if _, err := Build("nonexistent"); err == nil {
		t.Fatal("unknown scenario built")
	}
}

func TestValuePricingEscalation(t *testing.T) {
	e := ValuePricing()
	e.Run(10)
	st := e.State()
	for _, m := range []string{"server-ban", "tunnel", "dpi", "encrypted-tunnel"} {
		if !st.Has(m) {
			t.Fatalf("mechanism %q never deployed: %s", m, e.Summary())
		}
	}
	if !e.Stable(3) {
		t.Fatal("escalation should quiesce")
	}
	// Two of the four mechanisms are distortions — the design made the
	// user fight outside it.
	if r := core.DistortionRate(st); r != 0.5 {
		t.Fatalf("distortion rate = %v", r)
	}
	// End state: the ban is fully evaded; the user out-runs the ISP.
	if e.ControlBalance(core.User, core.ISP) <= 0 {
		t.Fatalf("user should win the escalation: balance %v", e.ControlBalance(core.User, core.ISP))
	}
}

func TestEncryptionEscalationResolves(t *testing.T) {
	e := Encryption()
	e.Run(10)
	st := e.State()
	if !st.Has("e2e-encryption") {
		t.Fatal("users never encrypted")
	}
	if st.Has("block-encrypted") {
		t.Fatal("competition should have disciplined the block")
	}
	// The government's wiretap remains deployed but reads nothing —
	// its utility collapsed after encryption.
	gov := e.Stakeholder("government")
	if gov == nil || gov.Utility >= e.Stakeholder("user").Utility {
		t.Fatalf("government should lose the escalation: gov=%v user=%v",
			gov.Utility, e.Stakeholder("user").Utility)
	}
}

func TestFirewallResolvesInsideDesign(t *testing.T) {
	e := Firewall()
	e.Run(10)
	st := e.State()
	if !st.Has("trust-firewall") || st.Has("port-firewall") {
		t.Fatalf("end state wrong: %s", e.Summary())
	}
	if st.Has("user-tunnel") {
		t.Fatal("tunnel should be withdrawn once identified access works")
	}
	// The resolved design has no deployed distortions: the tussle moved
	// back inside the architecture.
	if r := core.DistortionRate(st); r != 0 {
		t.Fatalf("distortion rate after resolution = %v", r)
	}
}

func TestFileSharingEndsInMarketResolution(t *testing.T) {
	e := FileSharing()
	e.Run(12)
	st := e.State()
	if !st.Has("licensed-store") {
		t.Fatalf("licensing never arrived: %s", e.Summary())
	}
	if st.Has("central-index") {
		t.Fatal("central index should be gone after the injunction")
	}
	// Both sides end better off than at the takedown nadir — the
	// licensed store is the win-win the tussle found.
	if e.Stakeholder("sharers").Utility <= 0 || e.Stakeholder("rights-holder").Utility <= 0 {
		t.Fatalf("utilities: %v / %v",
			e.Stakeholder("sharers").Utility, e.Stakeholder("rights-holder").Utility)
	}
}

func TestScenariosDeterministic(t *testing.T) {
	for _, n := range Names() {
		run := func() int {
			e, _ := Build(n)
			e.Run(10)
			return len(e.History)
		}
		if run() != run() {
			t.Fatalf("scenario %q nondeterministic", n)
		}
	}
}
