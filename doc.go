// Package repro is a from-scratch Go reproduction of "Tussle in
// Cyberspace: Defining Tomorrow's Internet" (Clark, Wroclawski, Sollins,
// Braden — SIGCOMM 2002 / IEEE-ACM ToN 2005): a tussle-aware network
// architecture toolkit plus the simulated substrates its arguments rest
// on.
//
// The root package holds only documentation and the benchmark harness
// (bench_test.go) that regenerates every experiment table; the library
// lives under internal/ — see DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for claim-vs-measured
// results.
package repro
