package experiments

import (
	"fmt"

	"repro/internal/gametheory"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing/linkstate"
	"repro/internal/routing/overlay"
	"repro/internal/routing/pathvector"
	"repro/internal/sim"
	"repro/internal/topology"
)

// E14Overlay tests §V-A4's overlay observation: overlays restore user
// choice against restrictive underlay routing ("a tool in the tussle,
// certainly") but create economic distortion — relays make providers
// carry traffic they were never compensated for.
func E14Overlay(seed uint64) *Result {
	res := &Result{
		ID:    "E14",
		Title: "overlays vs restrictive underlay routing",
		Claim: "§V-A4: overlay networks get around provider-selected routing, at the price of economic distortion",
		Columns: []string{
			"reachability", "uncompensated-bytes",
		},
	}
	for _, cfg := range []string{"underlay-only", "with-overlay"} {
		for _, blockFrac := range []float64{0.2, 0.4} {
			rng := sim.NewRNG(seed)
			g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
			sched := sim.NewScheduler()
			net := netsim.New(sched, g)
			pv := pathvector.New(g)
			if err := pv.Converge(); err != nil {
				panic(err)
			}
			for _, id := range g.NodeIDs() {
				net.Node(id).Route = pv.RouteFunc(id)
			}
			stubs := g.Stubs()
			// Providers restrict: a fraction of stub pairs are blocked
			// by policy at the destination's provider.
			blocked := map[[2]topology.NodeID]bool{}
			for i := 0; i < len(stubs); i++ {
				for j := 0; j < len(stubs); j++ {
					if i != j && rng.Bool(blockFrac) {
						blocked[[2]topology.NodeID{stubs[i], stubs[j]}] = true
					}
				}
			}
			for _, id := range g.NodeIDs() {
				id := id
				net.Node(id).AddMiddlebox(pairBlocker{blocked: blocked})
			}
			mesh := overlay.NewMesh(stubs)
			for _, s := range stubs {
				mesh.InstallRelay(net, s)
			}
			// Phase 1: probe all pairs directly; record observations.
			type probe struct {
				src, dst topology.NodeID
				tr       *netsim.Trace
			}
			var probes []probe
			mkData := func(src, dst topology.NodeID) []byte {
				data, err := packet.Serialize(
					&packet.TIP{TTL: 32, Proto: packet.LayerTypeRaw,
						Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1)},
					&packet.Raw{Data: []byte("overlay-probe")})
				if err != nil {
					panic(err)
				}
				return data
			}
			for _, s := range stubs {
				for _, d := range stubs {
					if s != d {
						probes = append(probes, probe{s, d, net.Send(s, mkData(s, d))})
					}
				}
			}
			sched.Run()
			reachable := map[[2]topology.NodeID]bool{}
			for _, p := range probes {
				if p.tr.Delivered {
					mesh.Observe(p.src, p.dst, p.tr.Latency())
					reachable[[2]topology.NodeID{p.src, p.dst}] = true
				}
			}
			// Phase 2: for unreachable pairs, try the overlay (if
			// enabled): route via mesh, send through the first relay.
			total, ok := 0, 0
			for _, s := range stubs {
				for _, d := range stubs {
					if s == d {
						continue
					}
					total++
					if reachable[[2]topology.NodeID{s, d}] {
						ok++
						continue
					}
					if cfg != "with-overlay" {
						continue
					}
					path := mesh.Route(s, d)
					if len(path) < 3 {
						continue
					}
					relay := path[1]
					// The relay proxies: the inner packet it re-injects
					// is sourced from the relay, so the destination's
					// pair policy sees (relay, d), which phase 1
					// observed to be deliverable.
					inner := mkData(relay, d)
					enc, err := overlay.Encapsulate(packet.MakeAddr(uint16(s), 1), packet.MakeAddr(uint16(relay), 0), 32, inner)
					if err != nil {
						panic(err)
					}
					before := net.Node(d).Counters.Get("delivered")
					net.Send(s, enc)
					sched.Run()
					if net.Node(d).Counters.Get("delivered") > before {
						ok++
					}
				}
			}
			res.AddRow(fmt.Sprintf("%s block=%.0f%%", cfg, blockFrac*100),
				ratio(ok, total), float64(mesh.UncompensatedTransit()))
		}
	}
	res.Finding = fmt.Sprintf(
		"at 40%% pair blocking the overlay lifts reachability from %.0f%% to %.0f%%, while shifting %.0f bytes onto uncompensated transit",
		res.MustGet("underlay-only block=40%", "reachability")*100,
		res.MustGet("with-overlay block=40%", "reachability")*100,
		res.MustGet("with-overlay block=40%", "uncompensated-bytes"))
	return res
}

// pairBlocker drops traffic between configured (src, dst) provider pairs
// at the destination: the provider-policy restriction overlays evade.
type pairBlocker struct {
	blocked map[[2]topology.NodeID]bool
}

// Name implements netsim.Middlebox.
func (pairBlocker) Name() string { return "pair-policy" }

// Silent implements netsim.Middlebox.
func (pairBlocker) Silent() bool { return false }

// Process implements netsim.Middlebox.
func (b pairBlocker) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if dir != netsim.Delivering {
		return nil, netsim.Accept
	}
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		return nil, netsim.Accept
	}
	// Tunnelled traffic is classified by its outer header only — the
	// evasion works because the relay looks like an ordinary endpoint.
	key := [2]topology.NodeID{topology.NodeID(tip.Src.Provider()), topology.NodeID(tip.Dst.Provider())}
	if b.blocked[key] {
		return nil, netsim.Drop
	}
	return nil, netsim.Accept
}

// E15Multicast runs the footnote-19 exercise ("the case study of the
// failure to deploy multicast is left as an exercise for the reader"):
// multicast differs from QoS in needing *coordinated* deployment — its
// value is super-linear in the number of deployed providers — so it is a
// stag hunt, and even with value flow and consumer choice the risky
// cooperative equilibrium loses to the safe status quo unless enough
// providers already deployed.
func E15Multicast(seed uint64) *Result {
	res := &Result{
		ID:    "E15",
		Title: "multicast deployment (fn.19 exercise): a stag hunt",
		Claim: "§VII fn.19: multicast failed even harder than QoS; coordination requirements make deployment a stag hunt that defaults to the status quo",
		Columns: []string{
			"final-deploy-share",
		},
	}
	// Deployment as replicator dynamics over a symmetric 2-strategy
	// game: strategy 0 = deploy multicast, 1 = status quo. Payoffs for
	// deploying depend on the share of others deploying (network
	// effect); the 2x2 payoff matrix encodes payoff against each
	// opponent type.
	cases := []struct {
		label string
		// benefit when paired with another deployer; cost always paid.
		coopBenefit, cost float64
		initialShare      float64
	}{
		{"no-value-flow seed=10%", 2.0, 3.0, 0.10}, // cost exceeds even mutual benefit
		{"value-flow seed=10%", 5.0, 3.0, 0.10},    // profitable if others deploy — but few have
		{"value-flow seed=75%", 5.0, 3.0, 0.75},    // past the 60% tipping point
	}
	for _, c := range cases {
		a := [][]float64{
			{c.coopBenefit - c.cost, -c.cost}, // deploy vs (deploy, not)
			{0, 0},                            // status quo
		}
		x := gametheory.Replicator(a, []float64{c.initialShare, 1 - c.initialShare}, 3000)
		res.AddRow(c.label, x[0])
	}
	res.Finding = fmt.Sprintf(
		"multicast deployment dies from 10%% seeding even with value flow (share → %.2f) because the coordination threshold is unmet; only past the tipping point does it take off (→ %.2f) — matching the historical failure",
		res.MustGet("value-flow seed=10%", "final-deploy-share"),
		res.MustGet("value-flow seed=75%", "final-deploy-share"))
	return res
}

// E16Visibility tests §IV-C: a link-state protocol exposes every
// operator's cost choices to all, while a path-vector protocol reveals
// only chosen paths — "it matters if choices and the consequence of
// choices are visible."
func E16Visibility(seed uint64) *Result {
	res := &Result{
		ID:    "E16",
		Title: "visibility of routing choices: link-state vs path-vector",
		Claim: "§IV-C: a link-state protocol requires that everyone export link costs; a path vector protocol makes internal choices harder to see",
		Columns: []string{
			"choices-visible", "reasons-visible", "change-observable",
		},
	}
	rng := sim.NewRNG(seed)
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)

	// Link-state: the full cost database is public.
	db := linkstate.NewDatabase(g)
	lsVisible := float64(db.VisibleChoices())
	// A cost change on one link: every node observes it (database
	// flooding) — observable fraction 1.
	res.AddRow("link-state", lsVisible, 1, 1)

	// Path-vector: only chosen paths are visible, no costs/preferences.
	pv := pathvector.New(g)
	if err := pv.Converge(); err != nil {
		panic(err)
	}
	pvVisible := float64(pv.VisibleChoices())
	// An internal preference change is observable only where it flips a
	// chosen path. Flip one stub's preferred upstream and count RIB
	// entries that changed network-wide.
	stub := g.Stubs()[0]
	providers := g.Providers(stub)
	changed := 0.0
	totalEntries := 0.0
	if len(providers) > 1 {
		pv2 := pathvector.New(g)
		pv2.Prefer[[2]topology.NodeID{stub, g.NodeIDs()[0]}] = providers[1]
		if err := pv2.Converge(); err != nil {
			panic(err)
		}
		for _, n := range g.NodeIDs() {
			for _, d := range g.NodeIDs() {
				if n == d {
					continue
				}
				totalEntries++
				p1 := pv.Path(n, d)
				p2 := pv2.Path(n, d)
				if len(p1) != len(p2) {
					changed++
					continue
				}
				for k := range p1 {
					if p1[k] != p2[k] {
						changed++
						break
					}
				}
			}
		}
	}
	obs := 0.0
	if totalEntries > 0 {
		obs = changed / totalEntries
	}
	res.AddRow("path-vector", pvVisible, 0, obs)
	res.Finding = fmt.Sprintf(
		"link-state exposes %0.f directed cost choices with reasons, and any change is globally observable; path-vector exposes %0.f chosen paths with no reasons, and an internal preference change surfaces in only %.1f%% of observable routes",
		lsVisible, pvVisible, obs*100)
	return res
}
