package netsim

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file pins the observability contract of the forwarding layer: the
// tracer must see middlebox rewrites, queue-overflow drops, and
// link-fault drops, and the metric counters must agree with the traces.

// attachRing wires a fresh registry and ring-buffer tracer to n.
func attachRing(n *Network) (*obs.Registry, *obs.Ring) {
	reg := obs.NewRegistry()
	ring := obs.NewRing(4096)
	n.AttachObs(reg, obs.NewTracer(ring))
	return reg, ring
}

// A middlebox transform must surface as an mbox-rewrite event naming the
// device — the §IV-C "design for visibility" requirement applied to the
// boxes that rewrite traffic.
func TestTracerSeesMiddleboxRewrite(t *testing.T) {
	n, sched := linearNet(t, 4)
	reg, ring := attachRing(n)
	rb := &redirBox{to: packet.MakeAddr(3, 1)}
	n.Node(2).AddMiddlebox(rb)

	tr := n.Send(1, rawPacket(t, 1, 4, 8, 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("packet dropped: %s", tr.DropReason)
	}
	events := ring.Find("netsim", "mbox-rewrite")
	if len(events) == 0 {
		t.Fatal("no mbox-rewrite events traced")
	}
	ev := events[0]
	if ev.Node != 2 || ev.Detail != "redir" {
		t.Fatalf("rewrite event = %+v, want node 2 detail %q", ev, "redir")
	}
	snap := reg.Snapshot()
	if got := counterValue(t, snap, "netsim.mbox.rewrites"); got != int64(len(events)) {
		t.Fatalf("netsim.mbox.rewrites = %d, traced %d rewrite events", got, len(events))
	}
}

// A silent middlebox's rewrite must not leak the device name into the
// trace — silence is part of the middlebox's contract.
func TestTracerHidesSilentRewriteName(t *testing.T) {
	n, sched := linearNet(t, 4)
	_, ring := attachRing(n)
	n.Node(2).AddMiddlebox(&silentRedir{redirBox{to: packet.MakeAddr(3, 1)}})

	n.Send(1, rawPacket(t, 1, 4, 8, 16))
	sched.Run()
	events := ring.Find("netsim", "mbox-rewrite")
	if len(events) == 0 {
		t.Fatal("no mbox-rewrite events traced")
	}
	if events[0].Detail != "" {
		t.Fatalf("silent rewrite leaked device name %q", events[0].Detail)
	}
}

// silentRedir is a redirBox that claims silence.
type silentRedir struct {
	redirBox
}

func (s *silentRedir) Silent() bool { return true }
func (s *silentRedir) Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict) {
	return s.redirBox.Process(node, dir, data)
}

// Queue-overflow drops must be traced with their reason and counted
// under the per-reason drop counter.
func TestTracerSeesQueueOverflowDrop(t *testing.T) {
	n, sched := linearNet(t, 2)
	reg, ring := attachRing(n)
	n.LinkRate = 1e4
	n.MaxQueue = 10 * sim.Millisecond
	for i := 0; i < 50; i++ {
		n.Send(1, rawPacket(t, 1, 2, 8, 16))
	}
	sched.Run()
	overflow := 0
	for _, ev := range ring.Find("netsim", "drop") {
		if ev.Detail == "queue-overflow" {
			overflow++
			if ev.Node != 1 {
				t.Fatalf("overflow drop attributed to node %d, want 1 (admission side)", ev.Node)
			}
		}
	}
	if overflow == 0 {
		t.Fatal("no queue-overflow drop events traced on a saturated link")
	}
	snap := reg.Snapshot()
	if got := counterValue(t, snap, "netsim.drop.queue-overflow"); got != int64(overflow) {
		t.Fatalf("netsim.drop.queue-overflow = %d, traced %d overflow events", got, overflow)
	}
}

// Link-fault drops must be traced with the link-down reason.
func TestTracerSeesLinkFaultDrop(t *testing.T) {
	n, sched := linearNet(t, 3)
	reg, ring := attachRing(n)
	n.FailLink(1, 2)

	tr := n.Send(1, rawPacket(t, 1, 3, 8, 16))
	sched.Run()
	if tr.Delivered {
		t.Fatal("packet delivered across a failed link")
	}
	events := ring.Find("netsim", "drop")
	if len(events) != 1 || events[0].Detail != "link-down" {
		t.Fatalf("drop events = %+v, want one link-down", events)
	}
	snap := reg.Snapshot()
	if got := counterValue(t, snap, "netsim.drop.link-down"); got != 1 {
		t.Fatalf("netsim.drop.link-down = %d, want 1", got)
	}
	if got := counterValue(t, snap, "netsim.drops"); got != 1 {
		t.Fatalf("netsim.drops = %d, want 1", got)
	}
}

// End-to-end coherence: sends, deliveries, and drops traced must match
// the counters, and delivery events carry the simulated latency.
func TestTracerAndCountersAgree(t *testing.T) {
	n, sched := linearNet(t, 4)
	reg, ring := attachRing(n)
	var traces []*Trace
	for i := 0; i < 5; i++ {
		traces = append(traces, n.Send(1, rawPacket(t, 1, 4, 8, 16)))
	}
	sched.Run()
	snap := reg.Snapshot()
	if got := counterValue(t, snap, "netsim.sends"); got != 5 {
		t.Fatalf("netsim.sends = %d, want 5", got)
	}
	delivers := ring.Find("netsim", "deliver")
	if len(delivers) != 5 || counterValue(t, snap, "netsim.delivered") != 5 {
		t.Fatalf("deliver events = %d, counter = %d, want 5/5",
			len(delivers), counterValue(t, snap, "netsim.delivered"))
	}
	for i, ev := range delivers {
		if want := float64(traces[i].Latency()); ev.Value != want {
			t.Fatalf("deliver event %d latency = %v, want %v", i, ev.Value, want)
		}
	}
}

// AttachObs(nil, nil) must return the network to the uninstrumented
// zero-alloc fast path.
func TestDetachObsRestoresFastPath(t *testing.T) {
	n, sched := linearNet(t, 3)
	attachRing(n)
	n.Send(1, rawPacket(t, 1, 3, 8, 16))
	sched.Run()
	n.AttachObs(nil, nil)
	if n.obs != nil || n.tracer != nil {
		t.Fatal("AttachObs(nil, nil) left instrumentation attached")
	}
	tr := n.Send(1, rawPacket(t, 1, 3, 8, 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("post-detach packet dropped: %s", tr.DropReason)
	}
}

// counterValue finds a counter in a snapshot by name.
func counterValue(t *testing.T, snap *obs.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not in snapshot", name)
	return 0
}
