package naming

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func BenchmarkResolveWithCache(b *testing.B) {
	root := NewRoot()
	z := root.Delegate("zone")
	for i := 0; i < 100; i++ {
		z.Bind(fmt.Sprintf("host-%d", i), 1)
	}
	now := sim.Time(0)
	r := NewResolver(root, 100*sim.Second, func() sim.Time { return now })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Resolve(fmt.Sprintf("host-%d.zone", i%100)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkDispute(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg := NewRegistry(false)
		for j := 0; j < 100; j++ {
			reg.Register(SpaceMachine, fmt.Sprintf("acme.host-%d", j), "bob", 1)
		}
		reg.FileDispute(Dispute{Mark: "acme", Holder: "corp"}, nil)
	}
}
