package multipath

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topology"
)

// mpNet builds the canonical multipath test network: sender stub 8 and
// receiver stub 9 each homed on three peered transits 1/2/3, yielding
// exactly three link-disjoint 3-node paths (8-1-9 cheapest, then 8-2-9,
// then 8-3-9). Every node honors source routes; there is no dynamic
// routing — path choice is entirely the sender's.
func mpNet() (*sim.Scheduler, *netsim.Network) {
	g := topology.NewGraph()
	for i := 1; i <= 3; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddNode(8, topology.Stub, 2)
	g.AddNode(9, topology.Stub, 2)
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(2, 3, topology.PeerOf, sim.Millisecond, 1)
	for i := 1; i <= 3; i++ {
		g.AddLink(8, topology.NodeID(i), topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(9, topology.NodeID(i), topology.CustomerOf, sim.Time(i)*sim.Millisecond, 1)
	}
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)
	for _, id := range []topology.NodeID{1, 2, 3, 8, 9} {
		net.Node(id).HonorSourceRoutes = true
	}
	return sched, net
}

func mpPayload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i/251)
	}
	return data
}

func mpConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.RTO = 20 * sim.Millisecond
	cfg.MaxRTO = 200 * sim.Millisecond
	cfg.ProbeEvery = 40 * sim.Millisecond
	return cfg
}

func TestTransferCleanAllStrategies(t *testing.T) {
	data := mpPayload(8 << 10)
	for _, strat := range Strategies() {
		sched, net := mpNet()
		st, rcv := Transfer(net, strat, 8, 9, 7000, data, mpConfig(42))
		if !st.Done || st.Failed {
			t.Fatalf("%s: transfer did not complete: %+v", strat.Name(), st)
		}
		if !bytes.Equal(rcv.Data, data) {
			t.Fatalf("%s: delivered %d bytes, want %d (or corrupted)", strat.Name(), len(rcv.Data), len(data))
		}
		if p := sched.Pending(); p != 0 {
			t.Fatalf("%s: %d timers still pending after completion", strat.Name(), p)
		}
		if st.PathsUsed < 2 {
			t.Fatalf("%s: expected multiple paths, used %d", strat.Name(), st.PathsUsed)
		}
	}
}

// TestStripingUsesAllPaths checks that a clean round-robin transfer
// actually interleaves: every discovered path carries accepted segments.
func TestStripingUsesAllPaths(t *testing.T) {
	sched, net := mpNet()
	_ = sched
	st, rcv := Transfer(net, &DisjointnessMax{}, 8, 9, 7000, mpPayload(16<<10), mpConfig(42))
	if !st.Done {
		t.Fatalf("transfer failed: %+v", st)
	}
	if len(rcv.PathSegments) < 3 {
		t.Fatalf("expected segments on 3 paths, got distribution %v", rcv.PathSegments)
	}
}

// TestSurvivesLinkFailure kills the cheapest path's access link
// mid-transfer; the stream must finish on the survivors, with the dead
// path demoted along the way.
func TestSurvivesLinkFailure(t *testing.T) {
	for _, strat := range Strategies() {
		sched, net := mpNet()
		r := InstallReceiver(net, 9, 7000)
		data := mpPayload(96 << 10)
		s := NewSender(net, strat, 8, 9, 7000, data, mpConfig(42))
		sched.After(8*sim.Millisecond, func() { net.FailLink(9, 1) })
		s.Start()
		sched.Run()
		st := s.Stats()
		if !st.Done || st.Failed {
			t.Fatalf("%s: transfer died with a failed link: %+v", strat.Name(), st)
		}
		if !bytes.Equal(r.Data, data) {
			t.Fatalf("%s: stream corrupted under link failure", strat.Name())
		}
		if st.Demotions == 0 {
			t.Fatalf("%s: dead path was never demoted: %+v", strat.Name(), st)
		}
		if p := sched.Pending(); p != 0 {
			t.Fatalf("%s: %d timers pending after completion", strat.Name(), p)
		}
	}
}

// TestSurvivesNodeCrashPartition crashes transit 2 mid-transfer — a
// partition of one whole path — and requires completion on the
// survivors with zero duplicate delivery (exact stream equality).
func TestSurvivesNodeCrashPartition(t *testing.T) {
	sched, net := mpNet()
	r := InstallReceiver(net, 9, 7000)
	data := mpPayload(96 << 10)
	s := NewSender(net, &DisjointnessMax{}, 8, 9, 7000, data, mpConfig(7))
	sched.After(8*sim.Millisecond, func() { net.FailNode(2) })
	s.Start()
	sched.Run()
	if st := s.Stats(); !st.Done || st.Failed {
		t.Fatalf("partition killed the transfer: %+v", st)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatalf("delivered stream != sent stream (len %d vs %d)", len(r.Data), len(data))
	}
	if p := sched.Pending(); p != 0 {
		t.Fatalf("%d timers pending after completion", p)
	}
}

// TestPromotionAfterRecovery flaps a path's access link: demotion must
// be followed by probe-driven promotion once the link heals, and the
// revived path must carry traffic again.
func TestPromotionAfterRecovery(t *testing.T) {
	sched, net := mpNet()
	InstallReceiver(net, 9, 7000)
	cfg := mpConfig(42)
	cfg.MaxProbes = 100 // don't declare dead during the outage
	s := NewSender(net, &DisjointnessMax{}, 8, 9, 7000, mpPayload(192<<10), cfg)
	sched.After(10*sim.Millisecond, func() { net.FailLink(9, 1) })
	sched.After(250*sim.Millisecond, func() { net.RestoreLink(9, 1) })
	s.Start()
	sched.Run()
	st := s.Stats()
	if !st.Done {
		t.Fatalf("transfer failed: %+v", st)
	}
	if st.Demotions == 0 || st.Promotions == 0 {
		t.Fatalf("expected a demote/promote cycle, got %d/%d", st.Demotions, st.Promotions)
	}
	var revived *Path
	for _, p := range s.Paths() {
		if p.Promotions > 0 {
			q := p
			revived = &q
		}
	}
	if revived == nil {
		t.Fatal("no path records a promotion")
	}
	if revived.LastPromoteAt <= revived.LastDemoteAt {
		t.Fatalf("promotion at %v not after demotion at %v", revived.LastPromoteAt, revived.LastDemoteAt)
	}
}

// TestAllPathsDeadFails severs the receiver entirely: the sender must
// reach a terminal failure (not hang) and leave no scheduler debris.
func TestAllPathsDeadFails(t *testing.T) {
	sched, net := mpNet()
	InstallReceiver(net, 9, 7000)
	cfg := mpConfig(42)
	cfg.MaxProbes = 3
	cfg.MaxRetries = 6
	s := NewSender(net, &DisjointnessMax{}, 8, 9, 7000, mpPayload(64<<10), cfg)
	sched.After(3*sim.Millisecond, func() {
		for i := 1; i <= 3; i++ {
			net.FailLink(9, topology.NodeID(i))
		}
	})
	s.Start()
	sched.Run()
	st := s.Stats()
	if st.Done || !st.Failed {
		t.Fatalf("expected terminal failure, got %+v", st)
	}
	if p := sched.Pending(); p != 0 {
		t.Fatalf("%d timers pending after give-up", p)
	}
}

// TestNoPathsFailsImmediately covers the degenerate sender: isolated
// endpoints have no candidates and must fail at Start.
func TestNoPathsFailsImmediately(t *testing.T) {
	g := topology.NewGraph()
	g.AddNode(1, topology.Stub, 1)
	g.AddNode(2, topology.Stub, 1)
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)
	s := NewSender(net, &ShortestK{}, 1, 2, 7000, mpPayload(100), mpConfig(1))
	s.Start()
	sched.Run()
	if st := s.Stats(); !st.Failed || st.FailReason != "no paths discovered" {
		t.Fatalf("expected immediate no-path failure, got %+v", st)
	}
}

// TestDeterministicReplay pins the byte-identical replay contract: the
// same seed, strategy, and fault schedule reproduce identical stats,
// path states, and per-path delivery distributions.
func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64, strat Strategy) (Stats, []Path, map[int]int) {
		sched, net := mpNet()
		r := InstallReceiver(net, 9, 7000)
		s := NewSender(net, strat, 8, 9, 7000, mpPayload(48<<10), mpConfig(seed))
		sched.After(8*sim.Millisecond, func() { net.FailLink(9, 1) })
		sched.After(200*sim.Millisecond, func() { net.RestoreLink(9, 1) })
		s.Start()
		sched.Run()
		return s.Stats(), s.Paths(), r.PathSegments
	}
	for _, seed := range []uint64{1, 7, 42} {
		for _, mk := range []func() Strategy{
			func() Strategy { return &ShortestK{} },
			func() Strategy { return &DisjointnessMax{} },
			func() Strategy { return &LatencyWeighted{} },
			func() Strategy { return &LossAdaptive{} },
		} {
			st1, p1, d1 := run(seed, mk())
			st2, p2, d2 := run(seed, mk())
			if !reflect.DeepEqual(st1, st2) {
				t.Fatalf("seed %d %s: stats diverged:\n%+v\n%+v", seed, mk().Name(), st1, st2)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("seed %d %s: path state diverged", seed, mk().Name())
			}
			if !reflect.DeepEqual(d1, d2) {
				t.Fatalf("seed %d %s: delivery distribution diverged", seed, mk().Name())
			}
		}
	}
}

// TestObsCounters checks the registry wiring and that the unattached
// default stays functional (nil-safe fast paths).
func TestObsCounters(t *testing.T) {
	sched, net := mpNet()
	InstallReceiver(net, 9, 7000)
	reg := obs.NewRegistry()
	s := NewSender(net, &DisjointnessMax{}, 8, 9, 7000, mpPayload(8<<10), mpConfig(42))
	s.AttachObs(reg)
	s.Start()
	sched.Run()
	if !s.Done() {
		t.Fatalf("transfer failed: %+v", s.Stats())
	}
	snap := reg.Snapshot()
	want := int64(s.Stats().Sent)
	var got int64
	for _, c := range snap.Counters {
		if c.Name == "multipath.sent" {
			got = c.Value
		}
	}
	if got != want {
		t.Fatalf("multipath.sent = %d, stats say %d", got, want)
	}
	var perPath int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "multipath.path0.sent", "multipath.path1.sent", "multipath.path2.sent":
			perPath += c.Value
		}
	}
	if perPath != want {
		t.Fatalf("per-path sent sums to %d, want %d", perPath, want)
	}
}

func TestStrategyByName(t *testing.T) {
	for _, s := range Strategies() {
		got, err := StrategyByName(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Fatalf("round-trip failed for %q: %v", s.Name(), err)
		}
	}
	if _, err := StrategyByName("teleport"); err == nil {
		t.Fatal("unknown strategy did not error")
	}
}

func TestFairness(t *testing.T) {
	even := []Path{{AckedBytes: 100}, {AckedBytes: 100}}
	if f := Fairness(even); f < 0.999 {
		t.Fatalf("even split fairness %v, want ~1", f)
	}
	skew := []Path{{AckedBytes: 200}, {AckedBytes: 0}}
	if f := Fairness(skew); f > 0.51 {
		t.Fatalf("total skew fairness %v, want ~0.5", f)
	}
	if Fairness(nil) != 0 {
		t.Fatal("empty fairness should be 0")
	}
}
