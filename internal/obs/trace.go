package obs

import (
	"encoding/json"
	"io"
)

// Event is one structured trace record: a mechanism firing somewhere in
// the simulator. Time is in the emitting subsystem's deterministic
// clock (simulated nanoseconds for the event-driven simulators, rounds
// for the round-based ones). Node is the topology node or actor index
// the event is attributed to, -1 when not applicable.
//
// Scope and Kind are low-cardinality interned strings ("netsim"/"drop",
// "netsim"/"mbox-rewrite", ...); Detail carries the variable part (drop
// reason, device name). Emitting an Event allocates nothing: the struct
// travels by value and sinks either copy it into preallocated storage
// (Ring) or serialize it immediately (JSONL).
type Event struct {
	Time   int64   `json:"t"`
	Scope  string  `json:"scope"`
	Kind   string  `json:"kind"`
	Node   int64   `json:"node"`
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// Sink consumes trace events. Sinks are single-threaded, like the
// simulations that feed them.
type Sink interface {
	Emit(Event)
}

// Tracer is the nil-safe front door to a sink: a nil *Tracer drops
// events for free, so instrumented code holds one unconditional field
// and never branches on configuration.
type Tracer struct {
	sink Sink
}

// NewTracer wraps a sink; a nil sink yields a nil (disabled) tracer.
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether events will be recorded. Hot paths that must
// avoid even building the Event value guard on this.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records an event. Safe on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.sink.Emit(e)
}

// Ring is an in-memory ring sink for tests and short diagnostics: it
// keeps the most recent cap events in preallocated storage, so emitting
// into a warmed ring allocates nothing.
type Ring struct {
	buf   []Event
	next  int
	total uint64
}

// NewRing returns a ring holding the most recent cap events.
func NewRing(cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{buf: make([]Event, 0, cap)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns the number of events ever emitted, including those the
// ring has since overwritten.
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// Find returns the retained events matching scope and kind (either may
// be empty to match all), oldest first.
func (r *Ring) Find(scope, kind string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if (scope == "" || e.Scope == scope) && (kind == "" || e.Kind == kind) {
			out = append(out, e)
		}
	}
	return out
}

// JSONL streams events as JSON lines to a writer — the offline-analysis
// sink. Field order is fixed by the Event struct, so output for a
// deterministic run is byte-identical across repetitions. The first
// write error sticks and suppresses further writes; check Err after the
// run.
type JSONL struct {
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (j *JSONL) Emit(e Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

// Env bundles the two halves of the observability layer as they are
// threaded through the experiment runner: a metrics registry shard and
// an optional tracer. A nil *Env is the disabled configuration — its
// accessors return nil, which every instrument treats as a no-op.
type Env struct {
	Metrics *Registry
	Trace   *Tracer
}

// Registry returns the metrics shard (nil when disabled).
func (e *Env) Registry() *Registry {
	if e == nil {
		return nil
	}
	return e.Metrics
}

// Tracer returns the event tracer (nil when disabled).
func (e *Env) Tracer() *Tracer {
	if e == nil {
		return nil
	}
	return e.Trace
}
