package policy

import (
	"errors"
	"testing"
)

// FuzzCompileEval is the differential fuzz target the policy-vm CI job
// runs: arbitrary policy text is parsed, compiled, and executed on both
// engines under identical environments, and the verdicts and error
// strings must agree; the VM must additionally respect an arbitrary
// budget on every input (terminating with ErrBudgetExceeded, never
// hanging or panicking). Seeds live in testdata/fuzz/FuzzCompileEval.
func FuzzCompileEval(f *testing.F) {
	seeds := []string{
		`port == 80 || port == 443 && role != "guest"`,
		`port in [80, 443, 8080]`,
		`!(a && b) || c in [1, "x", [2]]`,
		`false && missing == 1`,
		`x < "y"`,
		`[a, 2] == [1, 2]`,
		`missing`,
		`1 && true`,
		`name in ["alice", "bob"] && tos >= 4`,
		`((a || b) && (c || d)) == e`,
	}
	for _, s := range seeds {
		f.Add(s, uint8(3))
	}
	// envFor deterministically varies attribute coverage and types from
	// one fuzz byte, so the same input text explores present/missing and
	// well/ill-typed attribute bindings.
	envFor := func(sel uint8) Env {
		vals := []Value{
			Num(80), Bool(true), Str("alice"), List(Num(1), Str("a")), Num(-1.5),
		}
		env := Env{}
		names := []string{"a", "b", "c", "d", "e", "port", "role", "tos", "name", "x", "missing"}
		for i, n := range names {
			if (sel>>(uint(i)%8))&1 == 1 {
				env[n] = vals[(i+int(sel))%len(vals)]
			}
		}
		return env
	}
	f.Fuzz(func(t *testing.T, src string, sel uint8) {
		e, err := ParseExpr(src)
		if err != nil {
			return // not a policy; parser robustness is covered elsewhere
		}
		prog, err := Compile(e)
		if err != nil {
			t.Fatalf("parsed expression failed to compile: %q: %v", src, err)
		}
		env := envFor(sel)

		// Differential: generous budget → identical values and errors.
		want, werr := Eval(e, env)
		b := NewBudget(1<<22, 1<<22)
		got, gerr := prog.Run(env, &b)
		switch {
		case (werr == nil) != (gerr == nil):
			t.Fatalf("%q: eval err=%v vm err=%v", src, werr, gerr)
		case werr != nil:
			if werr.Error() != gerr.Error() {
				t.Fatalf("%q: eval err=%q vm err=%q", src, werr, gerr)
			}
		case !want.Equal(got):
			t.Fatalf("%q: eval=%v vm=%v", src, want, got)
		}

		// Budget safety: under a tiny budget the VM either still agrees
		// or fails with ErrBudgetExceeded — no other outcome, and usage
		// never exceeds the limit by more than the breaching charge.
		tiny := NewBudget(int64(sel%16), int64(sel%8))
		tv, terr := prog.Run(env, &tiny)
		switch {
		case terr == nil:
			if werr != nil || !tv.Equal(want) {
				t.Fatalf("%q: tiny-budget run diverged: %v vs %v/%v", src, tv, want, werr)
			}
		case errors.Is(terr, ErrBudgetExceeded):
			if tiny.StepsUsed() > tiny.Steps+1 {
				t.Fatalf("%q: steps overshoot: used %d limit %d", src, tiny.StepsUsed(), tiny.Steps)
			}
		default:
			if werr == nil || terr.Error() != werr.Error() {
				t.Fatalf("%q: tiny-budget error %v, eval error %v", src, terr, werr)
			}
		}
	})
}
