package transport

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// chain builds a 1-...-n chain with static routing.
func chain(n int) (*netsim.Network, *sim.Scheduler) {
	sched := sim.NewScheduler()
	g := topology.Linear(n, sim.Millisecond)
	net := netsim.New(sched, g)
	for id := topology.NodeID(1); id <= topology.NodeID(n); id++ {
		id := id
		net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			switch {
			case d > id:
				return id + 1, true
			case d < id:
				return id - 1, true
			}
			return id, true
		}
	}
	return net, sched
}

func payload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i * 31)
	}
	return out
}

func TestTransferCleanNetwork(t *testing.T) {
	net, _ := chain(4)
	data := payload(5000)
	stats, r := Transfer(net, 1, 4, 9000, data, DefaultConfig())
	if !stats.Done {
		t.Fatalf("transfer incomplete: %+v", stats)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatalf("data corrupted: got %d bytes", len(r.Data))
	}
	if stats.Retransmissions != 0 {
		t.Fatalf("clean network retransmitted %d", stats.Retransmissions)
	}
	if stats.Segments != 10 {
		t.Fatalf("segments = %d", stats.Segments)
	}
}

func TestTransferSingleSegment(t *testing.T) {
	net, _ := chain(2)
	data := []byte("tiny")
	stats, r := Transfer(net, 1, 2, 9000, data, DefaultConfig())
	if !stats.Done || !bytes.Equal(r.Data, data) {
		t.Fatalf("tiny transfer failed: %+v", stats)
	}
}

func TestTransferEmptyPayload(t *testing.T) {
	net, _ := chain(2)
	stats, r := Transfer(net, 1, 2, 9000, nil, DefaultConfig())
	if !stats.Done || len(r.Data) != 0 {
		t.Fatalf("empty transfer: %+v", stats)
	}
}

func TestTransferSurvivesLoss(t *testing.T) {
	net, _ := chain(4)
	rng := sim.NewRNG(7)
	InstallLossyLink(net, 2, 0.3, rng)
	data := payload(8000)
	stats, r := Transfer(net, 1, 4, 9000, data, DefaultConfig())
	if !stats.Done {
		t.Fatalf("transfer died under 30%% loss: %+v", stats)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("data corrupted under loss")
	}
	if stats.Retransmissions == 0 {
		t.Fatal("loss produced no retransmissions?")
	}
}

func TestTransferSurvivesLinkFlap(t *testing.T) {
	net, sched := chain(4)
	net.FlapLink(2, 3, 5*sim.Millisecond, 200*sim.Millisecond)
	data := payload(4000)
	r := InstallReceiver(net, 4, 9000)
	s := NewSender(net, 1, packet.MakeAddr(4, 1), 9000, data, DefaultConfig())
	s.Start()
	sched.Run()
	if !s.Done() {
		t.Fatalf("transfer died across a link flap: %+v", s.Stats())
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("data corrupted across flap")
	}
}

func TestTransferGivesUpOnPartition(t *testing.T) {
	net, sched := chain(4)
	net.FailLink(2, 3) // permanent
	cfg := DefaultConfig()
	cfg.MaxRetries = 3
	s := NewSender(net, 1, packet.MakeAddr(4, 1), 9000, payload(1000), cfg)
	InstallReceiver(net, 4, 9000)
	s.Start()
	sched.Run()
	if !s.Failed() {
		t.Fatal("sender should give up on a partitioned path")
	}
	if s.Done() {
		t.Fatal("cannot be done across a partition")
	}
	// The give-up is surfaced, not silent: Stats carries the terminal
	// failure and its reason (which segment ran out of retries).
	st := s.Stats()
	if !st.Failed {
		t.Fatalf("Stats().Failed = false after give-up: %+v", st)
	}
	if st.FailReason == "" {
		t.Fatal("Stats().FailReason empty: the degrade signal must say why")
	}
	if st.Elapsed == 0 {
		t.Fatal("failed transfer should still report how long it tried")
	}
}

func TestBackoffSpacingAndDeterminism(t *testing.T) {
	// On a partitioned path the retransmission timers must space out
	// exponentially, and two runs at the same seed must behave
	// byte-identically (same give-up time, same send count).
	run := func() (Stats, sim.Time) {
		net, sched := chain(3)
		net.FailLink(2, 3)
		cfg := DefaultConfig()
		cfg.MaxRetries = 4
		s := NewSender(net, 1, packet.MakeAddr(3, 1), 9000, payload(100), cfg)
		InstallReceiver(net, 3, 9000)
		s.Start()
		sched.Run()
		return s.Stats(), sched.Now()
	}
	a, ta := run()
	b, tb := run()
	if !a.Failed || !b.Failed {
		t.Fatalf("both runs must give up: %+v %+v", a, b)
	}
	if a != b || ta != tb {
		t.Fatalf("same seed must reproduce byte-identically:\n%+v @%v\n%+v @%v", a, ta, b, tb)
	}
	// Fixed-RTO would give up after (MaxRetries+1)*RTO = 300ms; doubling
	// backoff needs 60+120+240+480+960 ≈ 1.86s before the final timer
	// fires (jitter stretches it further). Assert we are clearly in the
	// backoff regime.
	if ta < 1500*sim.Millisecond {
		t.Fatalf("give-up at %v: retransmission timers did not back off", ta)
	}
	// And a fixed-RTO config (Backoff <= 1, no jitter) keeps the legacy
	// timing for zero-valued manual configs.
	net, sched := chain(3)
	net.FailLink(2, 3)
	cfg := Config{Window: 8, SegmentSize: 512, RTO: 60 * sim.Millisecond, MaxRetries: 4}
	s := NewSender(net, 1, packet.MakeAddr(3, 1), 9000, payload(100), cfg)
	InstallReceiver(net, 3, 9000)
	s.Start()
	sched.Run()
	if got, want := sched.Now(), 5*60*sim.Millisecond; got != want {
		t.Fatalf("legacy fixed-RTO give-up at %v, want %v", got, want)
	}
}

func TestReceiverReassemblyOutOfOrderDuplicates(t *testing.T) {
	// Drive the receiver directly with out-of-order and duplicate
	// segments.
	net, sched := chain(2)
	r := InstallReceiver(net, 2, 9000)
	send := func(seq uint32, body string) {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(2, 1)},
			&packet.TTP{SrcPort: 40000, DstPort: 9000, Seq: seq, Next: packet.LayerTypeRaw},
			&packet.Raw{Data: []byte(body)})
		if err != nil {
			t.Fatal(err)
		}
		net.Send(1, data)
		sched.Run()
	}
	send(1, "BBB") // out of order
	if len(r.Data) != 0 {
		t.Fatal("delivered out-of-order data")
	}
	send(0, "AAA")
	if string(r.Data) != "AAABBB" {
		t.Fatalf("reassembly = %q", r.Data)
	}
	send(0, "AAA") // duplicate
	send(1, "BBB") // duplicate
	if string(r.Data) != "AAABBB" {
		t.Fatalf("duplicates corrupted stream: %q", r.Data)
	}
}

func TestTransferRoundTripQuick(t *testing.T) {
	f := func(seed uint64, sizeRaw uint16) bool {
		net, _ := chain(3)
		rng := sim.NewRNG(seed)
		InstallLossyLink(net, 2, 0.15, rng)
		size := int(sizeRaw%4000) + 1
		data := payload(size)
		stats, r := Transfer(net, 1, 3, 9000, data, DefaultConfig())
		return stats.Done && bytes.Equal(r.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkARQRepairsLocally(t *testing.T) {
	// Same loss process; ARQ repairs most losses before the end-to-end
	// layer notices.
	runWith := func(arq bool) (Stats, int) {
		net, _ := chain(4)
		rng := sim.NewRNG(11)
		local := 0
		if arq {
			InstallLinkARQ(net, 2, 0.3, 5, rng, &local)
			InstallLinkARQ(net, 3, 0.3, 5, rng, &local)
		} else {
			InstallLossyLink(net, 2, 0.3, rng)
			InstallLossyLink(net, 3, 0.3, rng)
		}
		stats, _ := Transfer(net, 1, 4, 9000, payload(8000), DefaultConfig())
		return stats, local
	}
	e2eOnly, _ := runWith(false)
	withARQ, localResends := runWith(true)
	if !e2eOnly.Done || !withARQ.Done {
		t.Fatal("both configurations must complete")
	}
	if withARQ.Retransmissions >= e2eOnly.Retransmissions {
		t.Fatalf("link ARQ should cut end-to-end retransmissions: %d vs %d",
			withARQ.Retransmissions, e2eOnly.Retransmissions)
	}
	if localResends == 0 {
		t.Fatal("ARQ did no local repairs")
	}
}

func TestConcurrentTransfersIndependent(t *testing.T) {
	net, sched := chain(4)
	dataA := payload(3000)
	dataB := bytes.Repeat([]byte("z"), 3000)
	rA := InstallReceiver(net, 4, 9000)
	rB := InstallReceiver(net, 4, 9001)
	sA := NewSender(net, 1, packet.MakeAddr(4, 1), 9000, dataA, DefaultConfig())
	sB := NewSender(net, 1, packet.MakeAddr(4, 1), 9001, dataB, DefaultConfig())
	// Distinct source ports so ACK demux works.
	sB.src = 40001
	sA.Start()
	sB.Start()
	sched.Run()
	if !sA.Done() || !sB.Done() {
		t.Fatalf("concurrent transfers incomplete: %v %v", sA.Done(), sB.Done())
	}
	if !bytes.Equal(rA.Data, dataA) || !bytes.Equal(rB.Data, dataB) {
		t.Fatal("streams cross-contaminated")
	}
}

func TestDeclaredContentType(t *testing.T) {
	net, sched := chain(2)
	var seen []packet.LayerType
	// Observe segments at the receiver by decoding TTP.Next.
	r := InstallReceiver(net, 2, 9000)
	nd := net.Node(2)
	prevDeliver := nd.Deliver
	nd.Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
		var tip packet.TIP
		if tip.DecodeFrom(data) == nil && tip.Proto == packet.LayerTypeTTP {
			var ttp packet.TTP
			if ttp.DecodeFrom(tip.LayerPayload()) == nil && ttp.Flags&packet.FlagACK == 0 {
				seen = append(seen, ttp.Next)
			}
		}
		prevDeliver(n, tr, data)
	}
	cfg := DefaultConfig()
	cfg.ContentType = packet.LayerTypeCrypto
	s := NewSender(net, 1, packet.MakeAddr(2, 1), 9000, payload(1500), cfg)
	s.Start()
	sched.Run()
	if !s.Done() || len(r.Data) != 1500 {
		t.Fatalf("transfer failed: done=%v got=%d", s.Done(), len(r.Data))
	}
	if len(seen) == 0 {
		t.Fatal("no segments observed")
	}
	for _, next := range seen {
		if next != packet.LayerTypeCrypto {
			t.Fatalf("segment declared %v, want Crypto", next)
		}
	}
}

// TestNoPendingTimersAfterGiveUp pins the fail() cleanup contract: a
// transfer that gives up on a partition must cancel every outstanding
// retransmission timer, so abandoned transfers stop occupying scheduler
// slots instead of each in-flight segment ticking through its own
// backoff ladder.
func TestNoPendingTimersAfterGiveUp(t *testing.T) {
	net, sched := chain(4)
	net.FailLink(2, 3) // permanent
	cfg := DefaultConfig()
	cfg.MaxRetries = 3
	s := NewSender(net, 1, packet.MakeAddr(4, 1), 9000, payload(8000), cfg)
	InstallReceiver(net, 4, 9000)
	s.Start()
	sched.Run()
	if !s.Failed() {
		t.Fatal("sender should give up on a partitioned path")
	}
	if p := sched.Pending(); p != 0 {
		t.Fatalf("%d timers still pending after give-up", p)
	}
}

// TestNoPendingTimersAfterCompletion is the happy-path counterpart:
// completion cancels everything too.
func TestNoPendingTimersAfterCompletion(t *testing.T) {
	net, sched := chain(4)
	st, _ := Transfer(net, 1, 4, 9000, payload(8000), DefaultConfig())
	if !st.Done {
		t.Fatalf("transfer failed: %+v", st)
	}
	if p := sched.Pending(); p != 0 {
		t.Fatalf("%d timers still pending after completion", p)
	}
}

// TestObsCountersExported checks the transport.retx / transport.giveup
// registry wiring, and that the unattached default stays a no-op.
func TestObsCountersExported(t *testing.T) {
	net, sched := chain(4)
	net.FailLink(2, 3)
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.MaxRetries = 3
	s := NewSender(net, 1, packet.MakeAddr(4, 1), 9000, payload(1000), cfg)
	s.AttachObs(reg)
	InstallReceiver(net, 4, 9000)
	s.Start()
	sched.Run()
	if !s.Failed() {
		t.Fatal("sender should give up")
	}
	snap := reg.Snapshot()
	vals := map[string]int64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	if vals["transport.retx"] != int64(s.Stats().Retransmissions) {
		t.Fatalf("transport.retx = %d, stats say %d", vals["transport.retx"], s.Stats().Retransmissions)
	}
	if vals["transport.giveup"] != 1 {
		t.Fatalf("transport.giveup = %d, want 1", vals["transport.giveup"])
	}
}
