package packet

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

const cryptoHeaderLen = 16

// Crypto flag bits.
const (
	// CryptoInspectable marks the inner layer type as declared in
	// cleartext, so middleboxes can see *what* is carried without seeing
	// the content — the "visible choice" compromise of §VI-A.
	CryptoInspectable uint8 = 1 << 0
)

// ErrNotInspectable is returned when code asks for the inner type of an
// opaque encryption layer.
var ErrNotInspectable = errors.New("packet: crypto layer is opaque")

// ErrAuth is returned when decryption fails authentication.
var ErrAuth = errors.New("packet: crypto authentication failed")

// Crypto is the end-to-end encryption layer. §VI-A: "Peeking is
// irresistible... the ultimate defense of the end-to-end mode is
// end-to-end encryption." The layer's single design choice that matters
// for tussle is the Inspectable flag: whether the *fact* and *kind* of
// what is carried is visible even though the content is not.
//
// Encryption is real (SHA-256 based stream cipher with an HMAC tag) but
// the point of the layer in this repository is visibility semantics, not
// cryptographic strength.
type Crypto struct {
	Flags uint8
	// Inner is the layer type under the encryption. On the wire it is
	// only present when Inspectable; after Decrypt it is always set.
	Inner LayerType
	KeyID uint32
	Nonce uint64

	// Ciphertext is the encrypted body (including the 8-byte tag).
	Ciphertext []byte

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (c *Crypto) LayerType() LayerType { return LayerTypeCrypto }

// LayerContents implements Layer.
func (c *Crypto) LayerContents() []byte { return c.contents }

// LayerPayload implements Layer. For an inspectable crypto layer the
// payload is nil — the inner bytes are ciphertext and cannot be decoded
// in place; use Decrypt.
func (c *Crypto) LayerPayload() []byte { return nil }

// NextLayerType implements DecodingLayer. Encrypted content never chains:
// decoding stops here. (An inspectable layer still *declares* its inner
// type via InnerType.)
func (c *Crypto) NextLayerType() LayerType { return LayerTypeNone }

// InnerType reports the declared inner layer type of an inspectable
// layer, or ErrNotInspectable for an opaque one. This is what a
// middlebox may legitimately learn without the key.
func (c *Crypto) InnerType() (LayerType, error) {
	if c.Flags&CryptoInspectable == 0 {
		return LayerTypeNone, ErrNotInspectable
	}
	return c.Inner, nil
}

// DecodeFrom implements DecodingLayer.
func (c *Crypto) DecodeFrom(data []byte) error {
	if len(data) < cryptoHeaderLen {
		return ErrTruncated
	}
	c.Flags = data[0]
	c.Inner = LayerType(data[1])
	if c.Flags&CryptoInspectable == 0 && c.Inner != 0 {
		return fmt.Errorf("%w: opaque layer leaks inner type", ErrBadHeader)
	}
	c.KeyID = getU32(data[2:])
	c.Nonce = getU64(data[6:])
	clen := int(getU16(data[14:]))
	if cryptoHeaderLen+clen > len(data) {
		return fmt.Errorf("%w: ciphertext %d bytes, %d available", ErrBadHeader, clen, len(data)-cryptoHeaderLen)
	}
	c.Ciphertext = data[cryptoHeaderLen : cryptoHeaderLen+clen]
	c.contents = data[:cryptoHeaderLen]
	c.payload = data[cryptoHeaderLen+clen:]
	return nil
}

// SerializeTo implements SerializableLayer. The inner layers must already
// have been encrypted with Seal and placed in Ciphertext; Crypto does not
// consume the buffer contents below it (there should be none).
func (c *Crypto) SerializeTo(b *SerializeBuffer) error {
	if len(c.Ciphertext) > 0xffff {
		return fmt.Errorf("%w: ciphertext too long", ErrBadHeader)
	}
	h := b.Prepend(cryptoHeaderLen + len(c.Ciphertext))
	h[0] = c.Flags
	if c.Flags&CryptoInspectable != 0 {
		h[1] = byte(c.Inner)
	}
	putU32(h[2:], c.KeyID)
	putU64(h[6:], c.Nonce)
	putU16(h[14:], uint16(len(c.Ciphertext)))
	copy(h[cryptoHeaderLen:], c.Ciphertext)
	return nil
}

const cryptoTagLen = 8

func keystream(key []byte, nonce uint64, n int) []byte {
	out := make([]byte, 0, n+32)
	var counter uint32
	var block [12]byte
	putU64(block[:], nonce)
	for len(out) < n {
		putU32(block[8:], counter)
		mac := hmac.New(sha256.New, key)
		mac.Write(block[:])
		out = append(out, mac.Sum(nil)...)
		counter++
	}
	return out[:n]
}

func authTag(key []byte, nonce uint64, ct []byte) []byte {
	mac := hmac.New(sha256.New, key)
	var nb [8]byte
	putU64(nb[:], nonce)
	mac.Write(nb[:])
	mac.Write(ct)
	return mac.Sum(nil)[:cryptoTagLen]
}

// Seal encrypts plaintext under key/nonce and stores the result (with an
// authentication tag) in Ciphertext, recording the inner layer type.
func (c *Crypto) Seal(key []byte, plaintext []byte, inner LayerType) {
	ks := keystream(key, c.Nonce, len(plaintext))
	ct := make([]byte, len(plaintext), len(plaintext)+cryptoTagLen)
	for i := range plaintext {
		ct[i] = plaintext[i] ^ ks[i]
	}
	c.Ciphertext = append(ct, authTag(key, c.Nonce, ct)...)
	c.Inner = inner
	if c.Flags&CryptoInspectable == 0 {
		// Inner stays in the struct for the key holder but is not
		// serialized; see SerializeTo.
	}
}

// Open decrypts Ciphertext with key, verifying the tag. It returns the
// plaintext and the inner layer type (from the wire for inspectable
// layers, otherwise as recorded by the sender out of band: callers decode
// the plaintext with the type they negotiated).
func (c *Crypto) Open(key []byte) ([]byte, error) {
	if len(c.Ciphertext) < cryptoTagLen {
		return nil, ErrTruncated
	}
	body := c.Ciphertext[:len(c.Ciphertext)-cryptoTagLen]
	tag := c.Ciphertext[len(c.Ciphertext)-cryptoTagLen:]
	if !hmac.Equal(tag, authTag(key, c.Nonce, body)) {
		return nil, ErrAuth
	}
	ks := keystream(key, c.Nonce, len(body))
	pt := make([]byte, len(body))
	for i := range body {
		pt[i] = body[i] ^ ks[i]
	}
	return pt, nil
}
