package middlebox

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/trust"
)

func negotiationDoc(t *testing.T) *policy.Document {
	t.Helper()
	doc, err := policy.Parse(`policy "pinholes" {
        principal admin
        applies-to firewall-control
        rule no-anon { when identity-scheme == "anonymous" || identity-scheme == "none" then deny "identify yourself" }
        rule no-privileged { when requested-port < 1024 then deny "privileged ports are not negotiable" }
        rule reputable { when reputation >= 0.5 then permit }
        default deny "insufficient reputation"
    }`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestNegotiableFirewallGrantsAndEnforces(t *testing.T) {
	rep := trust.NewReputation("rep", 1.0)
	for i := 0; i < 10; i++ {
		rep.Report("alice", true, nil)
	}
	fw := &NegotiableFirewall{Label: "nfw", Doc: negotiationDoc(t), Rep: rep,
		AlwaysOpen: map[uint16]bool{80: true}}

	fwAddr := packet.MakeAddr(2, 1)
	alice := &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("alice")}
	dataPkt := func(port uint16) []byte {
		return pkt(t, packet.TIP{Src: packet.MakeAddr(1, 1), Dst: fwAddr}, &packet.TTP{DstPort: port}, []byte("d"))
	}

	// Data to a closed port: dropped.
	if _, v := fw.Process(2, netsim.Delivering, dataPkt(7777)); v != netsim.Drop {
		t.Fatal("closed port admitted")
	}
	// Always-open port: fine.
	if _, v := fw.Process(2, netsim.Delivering, dataPkt(80)); v != netsim.Accept {
		t.Fatal("always-open port blocked")
	}
	// Negotiate 7777.
	req, err := PinholeRequest(packet.MakeAddr(1, 1), fwAddr, alice, 7777)
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fw.Process(2, netsim.Delivering, req); v != netsim.Drop {
		t.Fatal("control packet should be consumed")
	}
	if fw.Granted != 1 {
		t.Fatalf("granted = %d", fw.Granted)
	}
	if _, v := fw.Process(2, netsim.Delivering, dataPkt(7777)); v != netsim.Accept {
		t.Fatal("negotiated pinhole not honored")
	}
	// Revocation works.
	fw.Close(7777)
	if _, v := fw.Process(2, netsim.Delivering, dataPkt(7777)); v != netsim.Drop {
		t.Fatal("closed pinhole still open")
	}
}

func TestNegotiableFirewallDenials(t *testing.T) {
	rep := trust.NewReputation("rep", 1.0)
	for i := 0; i < 10; i++ {
		rep.Report("mallory", false, nil)
	}
	fw := &NegotiableFirewall{Label: "nfw", Doc: negotiationDoc(t), Rep: rep}
	fwAddr := packet.MakeAddr(2, 1)

	cases := []struct {
		name string
		id   *packet.IdentityOption
		port uint16
	}{
		{"anonymous requester", &packet.IdentityOption{Scheme: packet.IdentityAnonymous}, 7777},
		{"no identity", nil, 7777},
		{"privileged port", &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("alice")}, 22},
		{"bad reputation", &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("mallory")}, 7777},
	}
	for _, c := range cases {
		req, err := PinholeRequest(packet.MakeAddr(1, 1), fwAddr, c.id, c.port)
		if err != nil {
			t.Fatal(err)
		}
		fw.Process(2, netsim.Delivering, req)
		if len(fw.Pinholes()) != 0 {
			t.Fatalf("%s: pinhole granted", c.name)
		}
	}
	if fw.Denied != len(cases) {
		t.Fatalf("denied = %d, want %d", fw.Denied, len(cases))
	}
}

func TestNegotiableFirewallMalformedRequest(t *testing.T) {
	fw := &NegotiableFirewall{Label: "nfw", Doc: negotiationDoc(t)}
	// Control packet with an empty payload.
	bad := pkt(t, packet.TIP{Src: 1, Dst: 2}, &packet.TTP{DstPort: ControlPort}, nil)
	fw.Process(2, netsim.Delivering, bad)
	if fw.Denied != 1 || len(fw.Pinholes()) != 0 {
		t.Fatalf("malformed request handling: denied=%d", fw.Denied)
	}
}

func TestNegotiableFirewallNoDocDeniesAll(t *testing.T) {
	fw := &NegotiableFirewall{Label: "nfw"}
	req, err := PinholeRequest(1, 2, &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("x")}, 9000)
	if err != nil {
		t.Fatal(err)
	}
	fw.Process(2, netsim.Delivering, req)
	if fw.Granted != 0 || fw.Denied != 1 {
		t.Fatal("docless firewall should deny")
	}
}

func TestNegotiableFirewallTransitUntouched(t *testing.T) {
	fw := &NegotiableFirewall{Label: "nfw", Doc: negotiationDoc(t)}
	data := pkt(t, packet.TIP{Src: 1, Dst: 9}, &packet.TTP{DstPort: 7777}, nil)
	if _, v := fw.Process(2, netsim.Forwarding, data); v != netsim.Accept {
		t.Fatal("transit traffic filtered")
	}
}
