package core

import (
	"math"
	"testing"
)

// escalationScenario builds the §V-A2 value-pricing tussle as an engine
// scenario: the ISP deploys a server ban; users respond with tunnels; the
// ISP may respond with a tunnel blocker.
func escalationScenario() (*Engine, *Stakeholder, *Stakeholder) {
	isp := &Stakeholder{Name: "isp", Kind: ISP}
	user := &Stakeholder{Name: "user", Kind: User}

	isp.Strat = func(self *Stakeholder, st *State) *Move {
		if !st.Has("server-ban") {
			return &Move{Deploy: &Mechanism{
				Name: "server-ban", Space: "economics", Visible: true,
				Couples: []Space{"apps"}, // conditions on what app runs
			}, Note: "value pricing"}
		}
		return nil
	}
	user.Strat = func(self *Stakeholder, st *State) *Move {
		if st.Has("server-ban") && !st.Has("tunnel") {
			return &Move{Deploy: &Mechanism{
				Name: "tunnel", Space: "economics", Distortion: true, Visible: false,
			}, Note: "evade"}
		}
		return nil
	}

	payoff := func(st *State) map[string]float64 {
		u := map[string]float64{}
		switch {
		case st.Has("server-ban") && !st.Has("tunnel"):
			u["isp"], u["user"] = 3, -2
		case st.Has("server-ban") && st.Has("tunnel"):
			u["isp"], u["user"] = 1, 1
		default:
			u["isp"], u["user"] = 2, 2
		}
		return u
	}
	return NewEngine(payoff, isp, user), isp, user
}

func TestEngineMoveCounterMove(t *testing.T) {
	e, isp, user := escalationScenario()
	e.Run(5)
	if !e.State().Has("server-ban") || !e.State().Has("tunnel") {
		t.Fatalf("mechanisms = %v", e.Summary())
	}
	if len(e.History) != 2 {
		t.Fatalf("history = %+v", e.History)
	}
	// Round 1: ban lands and the user's tunnel is deployed the same
	// round (user moves after isp); from then on both earn 1.
	if isp.Utility <= 0 || user.Utility <= 0 {
		t.Fatalf("utilities: isp=%v user=%v", isp.Utility, user.Utility)
	}
	if e.Distortions != 1 {
		t.Fatalf("distortions = %d", e.Distortions)
	}
}

func TestEngineStable(t *testing.T) {
	e, _, _ := escalationScenario()
	if e.Stable(1) {
		t.Fatal("unstarted engine should not be stable")
	}
	e.Run(10)
	if !e.Stable(5) {
		t.Fatal("escalation should quiesce after both moves")
	}
}

func TestControlBalance(t *testing.T) {
	e, isp, user := escalationScenario()
	e.Run(10)
	b := e.ControlBalance(User, ISP)
	if math.Abs(b-(user.Utility-isp.Utility)) > 1e-9 {
		t.Fatalf("balance = %v, want %v", b, user.Utility-isp.Utility)
	}
}

func TestEngineDirectDeployWithdraw(t *testing.T) {
	e := NewEngine(nil)
	e.Deploy(&Mechanism{Name: "x", Space: "s"})
	if !e.State().Has("x") {
		t.Fatal("deploy failed")
	}
	e.Withdraw("x")
	if e.State().Has("x") {
		t.Fatal("withdraw failed")
	}
	e.Deploy(nil) // no-op, no panic
}

func TestEngineWithdrawMove(t *testing.T) {
	actor := &Stakeholder{Name: "a", Kind: User}
	fired := false
	actor.Strat = func(self *Stakeholder, st *State) *Move {
		if !fired {
			fired = true
			return &Move{Withdraw: "old", Deploy: &Mechanism{Name: "new", Space: "s"}}
		}
		return nil
	}
	e := NewEngine(nil, actor)
	e.Deploy(&Mechanism{Name: "old", Space: "s"})
	e.Step()
	if e.State().Has("old") || !e.State().Has("new") {
		t.Fatalf("swap failed: %v", e.Summary())
	}
	if e.State().Mechanisms["new"].Owner != "a" {
		t.Fatal("owner not stamped")
	}
}

func TestStakeholderLookup(t *testing.T) {
	e, _, _ := escalationScenario()
	if e.Stakeholder("isp") == nil || e.Stakeholder("nobody") != nil {
		t.Fatal("lookup wrong")
	}
}

func TestAnalyzeChoiceBits(t *testing.T) {
	d := &Design{
		Name: "mail",
		Choices: []ChoicePoint{
			{Name: "smtp-server", Chooser: User, Alternatives: 8, Visible: true, CostExposed: true},
			{Name: "pop-server", Chooser: User, Alternatives: 4, Visible: true, CostExposed: false},
			{Name: "peering", Chooser: ISP, Alternatives: 2, Visible: false, CostExposed: true},
		},
	}
	r := AnalyzeChoice(d)
	if math.Abs(r.BitsByKind[User]-5) > 1e-9 { // log2(8)+log2(4)
		t.Fatalf("user bits = %v", r.BitsByKind[User])
	}
	if math.Abs(r.BitsByKind[ISP]-1) > 1e-9 {
		t.Fatalf("isp bits = %v", r.BitsByKind[ISP])
	}
	if math.Abs(r.VisibleFraction-2.0/3) > 1e-9 {
		t.Fatalf("visible fraction = %v", r.VisibleFraction)
	}
	if math.Abs(r.CostExposedFraction-2.0/3) > 1e-9 {
		t.Fatalf("cost fraction = %v", r.CostExposedFraction)
	}
	if b := ChoiceBalance(d); math.Abs(b-4) > 1e-9 {
		t.Fatalf("balance = %v", b)
	}
}

func TestAnalyzeChoiceDegenerate(t *testing.T) {
	r := AnalyzeChoice(&Design{Name: "empty"})
	if len(r.BitsByKind) != 0 || r.VisibleFraction != 0 {
		t.Fatalf("empty design report = %+v", r)
	}
	// Alternatives < 1 clamps to 1 (zero bits).
	d := &Design{Choices: []ChoicePoint{{Chooser: User, Alternatives: 0}}}
	if bits := AnalyzeChoice(d).BitsByKind[User]; bits != 0 {
		t.Fatalf("zero-alternative bits = %v", bits)
	}
}

func TestAnalyzeIsolation(t *testing.T) {
	d := &Design{
		Name: "qos-by-port",
		Mechanisms: []*Mechanism{
			{Name: "port-classifier", Space: "qos", Couples: []Space{"apps"}},
			{Name: "tos-bits", Space: "qos"},
			{Name: "billing", Space: "economics", Couples: []Space{"qos", "apps"}},
		},
	}
	r := AnalyzeIsolation(d)
	if r.TotalMechanisms != 3 || r.CoupledMechanisms != 2 {
		t.Fatalf("report = %+v", r)
	}
	if math.Abs(r.IsolationScore()-1.0/3) > 1e-9 {
		t.Fatalf("isolation score = %v", r.IsolationScore())
	}
	paths := r.SpilloverPaths()
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	if paths[0] != [2]Space{"economics", "apps"} {
		t.Fatalf("path order = %v", paths)
	}
}

func TestIsolationScoreEmpty(t *testing.T) {
	r := AnalyzeIsolation(&Design{})
	if r.IsolationScore() != 1 {
		t.Fatal("empty design should be perfectly isolated")
	}
}

func TestVisibilityAuditAndDistortionRate(t *testing.T) {
	e := NewEngine(nil)
	if VisibilityAudit(e.State()) != 1 || DistortionRate(e.State()) != 0 {
		t.Fatal("empty state baselines wrong")
	}
	e.Deploy(&Mechanism{Name: "a", Visible: true})
	e.Deploy(&Mechanism{Name: "b", Visible: false, Distortion: true})
	if v := VisibilityAudit(e.State()); v != 0.5 {
		t.Fatalf("visibility = %v", v)
	}
	if d := DistortionRate(e.State()); d != 0.5 {
		t.Fatalf("distortion = %v", d)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		User: "user", ISP: "isp", PrivateNetwork: "private-network",
		Government: "government", RightsHolder: "rights-holder",
		ContentProvider: "content-provider",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEngineDeterministicOrder(t *testing.T) {
	// Two stakeholders racing to deploy under the same name: the first
	// declared must win the round's last write... actually the later
	// mover overwrites. What must hold is determinism across runs.
	run := func() string {
		a := &Stakeholder{Name: "a", Kind: User, Strat: func(self *Stakeholder, st *State) *Move {
			return &Move{Deploy: &Mechanism{Name: "m", Space: "s", Visible: true}}
		}}
		b := &Stakeholder{Name: "b", Kind: ISP, Strat: func(self *Stakeholder, st *State) *Move {
			return &Move{Deploy: &Mechanism{Name: "m", Space: "s", Visible: false}}
		}}
		e := NewEngine(nil, a, b)
		e.Step()
		return e.State().Mechanisms["m"].Owner
	}
	if run() != run() || run() != "b" {
		t.Fatal("engine order nondeterministic")
	}
}
