package stego

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPaddingRoundTrip(t *testing.T) {
	rng := sim.NewRNG(1)
	cover := MakeCover(ZeroPadding, 50, 8, rng)
	msg := []byte("exfiltrate this")
	used := EmbedPadding(cover, msg)
	if used != len(msg) {
		t.Fatalf("used %d fields", used)
	}
	got := ExtractPadding(cover, len(msg))
	if !bytes.Equal(got, msg) {
		t.Fatalf("extracted %q", got)
	}
}

func TestPaddingRoundTripQuick(t *testing.T) {
	rng := sim.NewRNG(2)
	f := func(msg []byte) bool {
		if len(msg) > 100 {
			msg = msg[:100]
		}
		cover := MakeCover(ZeroPadding, 120, 4, rng)
		EmbedPadding(cover, msg)
		return bytes.Equal(ExtractPadding(cover, len(msg)), msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCoverDetection(t *testing.T) {
	rng := sim.NewRNG(3)
	det := PaddingDetector{Expected: ZeroPadding}

	innocent := MakeCover(ZeroPadding, 200, 8, rng)
	if s := det.Suspicion(innocent); s != 0 {
		t.Fatalf("innocent suspicion = %v", s)
	}
	// Whitened (random-looking) message in zero padding: glaring.
	stego := MakeCover(ZeroPadding, 200, 8, rng)
	msg := make([]byte, 200)
	for i := range msg {
		msg[i] = byte(rng.Uint64()) | 1 // ensure nonzero
	}
	EmbedPadding(stego, msg)
	if s := det.Suspicion(stego); s < 0.9 {
		t.Fatalf("stego in zero cover suspicion = %v, should be obvious", s)
	}
}

func TestRandomCoverHidesPerfectly(t *testing.T) {
	rng := sim.NewRNG(4)
	det := PaddingDetector{Expected: RandomPadding}

	innocent := MakeCover(RandomPadding, 400, 8, rng)
	base := det.Suspicion(innocent)

	stego := MakeCover(RandomPadding, 400, 8, rng)
	msg := make([]byte, 400)
	for i := range msg {
		msg[i] = byte(rng.Uint64()) // whitened ciphertext
	}
	EmbedPadding(stego, msg)
	embedded := det.Suspicion(stego)
	// Indistinguishable: both near the noise floor.
	if embedded > base+0.1 {
		t.Fatalf("whitened stego in random cover detected: %v vs baseline %v", embedded, base)
	}
}

func TestUnwhitenedMessageInRandomCoverDetected(t *testing.T) {
	rng := sim.NewRNG(5)
	det := PaddingDetector{Expected: RandomPadding}
	stego := MakeCover(RandomPadding, 400, 8, rng)
	// ASCII text is far from uniform: detectable even in random cover.
	msg := bytes.Repeat([]byte("aaaa"), 100)
	EmbedPadding(stego, msg)
	if s := det.Suspicion(stego); s < 0.3 {
		t.Fatalf("plaintext stego suspicion = %v", s)
	}
}

func TestTimingRoundTripLowJitter(t *testing.T) {
	rng := sim.NewRNG(6)
	c := TimingChannel{Base: 10 * sim.Millisecond, Delta: 4 * sim.Millisecond}
	bits := make([]int, 200)
	for i := range bits {
		bits[i] = int(rng.Uint64() & 1)
	}
	gaps := c.EmbedTiming(bits, 200*sim.Microsecond, rng)
	got := c.ExtractTiming(gaps)
	if ber := BitErrorRate(bits, got); ber > 0.01 {
		t.Fatalf("low-jitter BER = %v", ber)
	}
}

func TestTimingDegradesWithJitter(t *testing.T) {
	rng := sim.NewRNG(7)
	c := TimingChannel{Base: 10 * sim.Millisecond, Delta: 2 * sim.Millisecond}
	bits := make([]int, 500)
	for i := range bits {
		bits[i] = int(rng.Uint64() & 1)
	}
	low := c.EmbedTiming(bits, 100*sim.Microsecond, rng)
	high := c.EmbedTiming(bits, 5*sim.Millisecond, rng)
	berLow := BitErrorRate(bits, c.ExtractTiming(low))
	berHigh := BitErrorRate(bits, c.ExtractTiming(high))
	if berHigh <= berLow {
		t.Fatalf("jitter should raise BER: %v vs %v", berHigh, berLow)
	}
	if berHigh < 0.1 {
		t.Fatalf("heavy jitter BER = %v, should approach coin flipping", berHigh)
	}
}

func TestTimingDetectorSeparates(t *testing.T) {
	rng := sim.NewRNG(8)
	det := TimingDetector{}
	c := TimingChannel{Base: 10 * sim.Millisecond, Delta: 5 * sim.Millisecond}
	bits := make([]int, 300)
	for i := range bits {
		bits[i] = int(rng.Uint64() & 1)
	}
	covert := c.EmbedTiming(bits, 300*sim.Microsecond, rng)
	covertScore := det.Suspicion(covert)

	// Innocent traffic: unimodal jitter around one gap.
	innocent := make([]sim.Time, 300)
	for i := range innocent {
		innocent[i] = 10*sim.Millisecond + sim.Time(rng.Normal(0, float64(sim.Millisecond)))
	}
	innocentScore := det.Suspicion(innocent)
	if covertScore <= innocentScore+0.2 {
		t.Fatalf("detector failed: covert %v vs innocent %v", covertScore, innocentScore)
	}
}

func TestTimingDetectorSmallSample(t *testing.T) {
	det := TimingDetector{}
	if s := det.Suspicion([]sim.Time{1, 2}); s != 0 {
		t.Fatalf("small-sample suspicion = %v", s)
	}
	if s := det.Suspicion([]sim.Time{5, 5, 5, 5, 5}); s != 0 {
		t.Fatalf("zero-variance suspicion = %v", s)
	}
}

func TestBitErrorRateEdges(t *testing.T) {
	if BitErrorRate(nil, nil) != 0 {
		t.Fatal("empty BER")
	}
	if ber := BitErrorRate([]int{1, 0, 1}, []int{1}); ber != 2.0/3 {
		t.Fatalf("short-received BER = %v", ber)
	}
	if ber := BitErrorRate([]int{1, 1}, []int{0, 0}); ber != 1 {
		t.Fatalf("all-wrong BER = %v", ber)
	}
}

func TestInspectionGameCycles(t *testing.T) {
	a := InspectionGame(8, 5, 1)
	// No saddle point: maximin < minimax.
	maximin := math.Max(math.Min(a[0][0], a[0][1]), math.Min(a[1][0], a[1][1]))
	minimax := math.Min(math.Max(a[0][0], a[1][0]), math.Max(a[0][1], a[1][1]))
	if maximin >= minimax {
		t.Fatalf("inspection game has a saddle: maximin %v minimax %v", maximin, minimax)
	}
}
