package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/economics"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing/pathvector"
	"repro/internal/sim"
	"repro/internal/topology"
)

// E9EndToEnd tests the §VI-A end-to-end analysis: in-network features
// (firewalls that permit only known applications, caches for the mature
// web) help the mature application but (a) block new applications, which
// "must launch incrementally" through transparent carriage, and (b) add
// failure points that reduce reliability.
func E9EndToEnd(seed uint64) *Result {
	res := &Result{
		ID:    "E9",
		Title: "in-network features vs new-application launch",
		Claim: "§VI-A: barriers to new applications are much more destructive than network support of proven applications is helpful",
		Columns: []string{
			"newapp-success", "web-latency-ms", "delivery", "failure-points",
		},
	}
	knownPorts := map[uint16]bool{25: true, 80: true, 443: true}
	for _, density := range []float64{0, 0.25, 0.5, 0.75} {
		rng := sim.NewRNG(seed)
		g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
		sched := sim.NewScheduler()
		net := netsim.New(sched, g)
		pv := pathvector.New(g)
		if err := pv.Converge(); err != nil {
			panic(err)
		}
		failurePoints := 0
		for _, id := range g.NodeIDs() {
			nd := net.Node(id)
			nd.Route = pv.RouteFunc(id)
			if g.Nodes[id].Kind == topology.Transit && rng.Bool(density) {
				// "That which is not permitted is forbidden": block all
				// but the known application ports.
				blocked := map[uint16]bool{}
				for p := uint16(1024); p <= 10000; p += 1 {
					blocked[p] = true
				}
				for p := range knownPorts {
					delete(blocked, p)
				}
				nd.AddMiddlebox(&middlebox.PortFirewall{Label: fmt.Sprintf("fw-%d", id), BlockedPorts: blocked})
				failurePoints++
			}
		}
		stubs := g.Stubs()
		send := func(port uint16) *netsim.Trace {
			src := stubs[rng.Intn(len(stubs))]
			dst := stubs[rng.Intn(len(stubs))]
			for dst == src {
				dst = stubs[rng.Intn(len(stubs))]
			}
			data, err := packet.Serialize(
				&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP,
					Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1)},
				&packet.TTP{DstPort: port, Next: packet.LayerTypeRaw},
				&packet.Raw{Data: []byte("app")})
			if err != nil {
				panic(err)
			}
			return net.Send(src, data)
		}
		var newApp, webTraces []*netsim.Trace
		for i := 0; i < 150; i++ {
			newApp = append(newApp, send(7777)) // unproven application
			webTraces = append(webTraces, send(80))
		}
		sched.Run()
		newOK, webOK := 0, 0
		var webLat sim.Series
		for _, tr := range newApp {
			if tr.Delivered {
				newOK++
			}
		}
		for _, tr := range webTraces {
			if tr.Delivered {
				webOK++
				webLat.Add(tr.Latency().Millis())
			}
		}
		// Web latency benefits from caches at feature-bearing nodes: a
		// cache hit saves the remaining path. Model as an app-level
		// cache serving a Zipf-ish popular set.
		origin := apps.NewWebOrigin("origin", sim.Time(webLat.Mean()*float64(sim.Millisecond)))
		for i := 0; i < 50; i++ {
			origin.Put(fmt.Sprintf("page-%d", i), 1000)
		}
		cache := apps.NewWebCache("edge", 20, 3*sim.Millisecond, origin)
		var effWebLat sim.Series
		if failurePoints > 0 {
			for i := 0; i < 300; i++ {
				page := fmt.Sprintf("page-%d", rng.Intn(10+rng.Intn(40)))
				if _, lat, ok := cache.Get(page); ok {
					effWebLat.Add(lat.Millis())
				}
			}
		} else {
			effWebLat = webLat
		}
		res.AddRow(fmt.Sprintf("feature-density=%.0f%%", density*100),
			ratio(newOK, len(newApp)),
			effWebLat.Mean(),
			ratio(webOK, len(webTraces)),
			float64(failurePoints))
	}
	res.Finding = fmt.Sprintf(
		"raising in-network feature density from 0 to 75%% cuts new-application launch success from %.0f%% to %.0f%% while improving mature-web latency from %.1fms to %.1fms — the asymmetry §VI-A warns about",
		res.MustGet("feature-density=0%", "newapp-success")*100,
		res.MustGet("feature-density=75%", "newapp-success")*100,
		res.MustGet("feature-density=0%", "web-latency-ms"),
		res.MustGet("feature-density=75%", "web-latency-ms"))
	return res
}

// E10Encryption tests the §VI-A escalation: users encrypt; a provider
// may refuse to carry encrypted traffic. Under competition, blocking
// drives encryption-valuing customers to a rival, so the block is
// unprofitable and carriers carry; a monopoly can hold the block, and
// "policy will probably trump technology". The inspectable-crypto
// compromise (visible inner type) gives middle ground.
func E10Encryption(seed uint64) *Result {
	res := &Result{
		ID:    "E10",
		Title: "encryption escalation under competition vs monopoly",
		Claim: "§VI-A: competition disciplines a provider that blocks encryption; a monopoly can sustain the block",
		Columns: []string{
			"blocker-subscribers", "blocker-profit", "encrypted-carried",
		},
	}
	for _, competition := range []string{"monopoly", "competitive"} {
		for _, policy := range []string{"carry", "block-crypto"} {
			rng := sim.NewRNG(seed)
			blocker := &economics.Provider{
				Name: "blocker", Cost: 2,
				Offer: economics.Offer{Price: 8, AllowsServers: true,
					AllowsEncryption: policy == "carry"},
				Strat: economics.StaticPricing{},
			}
			providers := []*economics.Provider{blocker}
			if competition == "competitive" {
				providers = append(providers, &economics.Provider{
					Name: "rival", Cost: 2,
					Offer: economics.Offer{Price: 8.5, AllowsServers: true, AllowsEncryption: true},
					Strat: economics.StaticPricing{},
				})
			}
			var consumers []*economics.Consumer
			for i := 0; i < 100; i++ {
				consumers = append(consumers, &economics.Consumer{
					ID: i, WTP: rng.Range(12, 18), SwitchCost: 0.5,
					WantsEncryption: i%2 == 0,
				})
			}
			m := economics.NewMarket(rng, providers, consumers)
			m.Run(20)
			// Encrypted traffic carried: subscribers who want
			// encryption and sit on a carrier that allows it.
			carried := 0
			wanters := 0
			for _, c := range consumers {
				if !c.WantsEncryption {
					continue
				}
				wanters++
				if c.Provider >= 0 && providers[c.Provider].Offer.AllowsEncryption {
					carried++
				}
			}
			res.AddRow(fmt.Sprintf("%s %s", competition, policy),
				float64(blocker.Subscribers), blocker.Profit,
				ratio(carried, wanters))
		}
	}
	res.Finding = fmt.Sprintf(
		"blocking encryption costs the provider nothing as a monopoly (profit %.0f vs %.0f carrying) because users have nowhere to go, but under competition the block drives profit from %.0f to %.0f as encryption-valuing customers defect",
		res.MustGet("monopoly block-crypto", "blocker-profit"),
		res.MustGet("monopoly carry", "blocker-profit"),
		res.MustGet("competitive carry", "blocker-profit"),
		res.MustGet("competitive block-crypto", "blocker-profit"))
	return res
}
