package wire

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/packet"
	"repro/internal/topology"
)

// Config assembles an Engine.
type Config struct {
	// Listen is the UDP address to bind ("host:port"; port 0 picks one).
	Listen string
	// Workers is the number of receive workers. On Linux each worker
	// owns its own SO_REUSEPORT socket so the kernel spreads flows
	// across them; elsewhere all workers share one socket. Default:
	// GOMAXPROCS.
	Workers int
	// Batch is the number of datagrams moved per recvmmsg/sendmmsg
	// call (default 64; the portable fallback receives one at a time).
	Batch int
	// SlotSize is the receive buffer size per datagram (default 2048).
	SlotSize int
	// Echo sends delivered datagrams back to their sender — the
	// loopback benchmark and smoke-test mode.
	Echo bool
	// Deliver, if set, intercepts delivered datagrams (after the
	// dataplane's Deliver decision). A non-nil return is sent back to
	// the datagram's source address through the worker's transmit
	// batch — the multipath receiver answers data segments with ACKs
	// this way. Returning nil falls through to Echo. The hook is called
	// concurrently from every worker and must be safe for that; the
	// returned slice must stay valid until the worker's batch flushes
	// (MultipathReceiver sizes its ACK ring for this).
	Deliver func(data []byte, from netip.AddrPort) []byte
	// NewDataplane builds one decision kernel per worker. Per-worker
	// instances exist because stateful middleboxes (NAT) are not
	// goroutine-safe. Nil means a deliver-only node 0 (pure echo/sink).
	NewDataplane func() *Dataplane
	// Peers maps next-hop node IDs to their UDP addresses; forwards to
	// unmapped nodes are counted (NoPeer) and dropped.
	Peers map[topology.NodeID]netip.AddrPort
}

func (c *Config) fill() {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.SlotSize <= 0 {
		c.SlotSize = 2048
	}
	if c.NewDataplane == nil {
		c.NewDataplane = func() *Dataplane { return NewDataplane(NodeConfig{ID: 0}) }
	}
}

// txEntry is one queued outbound datagram.
type txEntry struct {
	addr netip.AddrPort
	data []byte
}

// tally accumulates one batch's events on the stack; it is flushed to
// the worker's shared counters once per batch so the per-packet path
// performs no atomic operations.
type tally struct {
	received   uint64
	filtered   [packet.FilterVerdicts]uint64
	drops      [DropKinds]uint64
	delivered  uint64
	forwarded  uint64
	echoed     uint64
	replied    uint64
	noPeer     uint64
	sent       uint64
	sendErrors uint64
}

// wstats is a worker's shared counter block, read concurrently by
// Engine.Stats.
type wstats struct {
	received   atomic.Uint64
	filtered   [packet.FilterVerdicts]atomic.Uint64
	drops      [DropKinds]atomic.Uint64
	delivered  atomic.Uint64
	forwarded  atomic.Uint64
	echoed     atomic.Uint64
	replied    atomic.Uint64
	noPeer     atomic.Uint64
	sent       atomic.Uint64
	sendErrors atomic.Uint64
}

func (s *wstats) flush(t *tally) {
	s.received.Add(t.received)
	for i, v := range t.filtered {
		if v != 0 {
			s.filtered[i].Add(v)
		}
	}
	for i, v := range t.drops {
		if v != 0 {
			s.drops[i].Add(v)
		}
	}
	s.delivered.Add(t.delivered)
	s.forwarded.Add(t.forwarded)
	s.echoed.Add(t.echoed)
	s.replied.Add(t.replied)
	s.noPeer.Add(t.noPeer)
	s.sent.Add(t.sent)
	s.sendErrors.Add(t.sendErrors)
}

// Stats is an aggregate snapshot across all workers.
type Stats struct {
	Received   uint64
	Filtered   [packet.FilterVerdicts]uint64
	Drops      [DropKinds]uint64
	Delivered  uint64
	Forwarded  uint64
	Echoed     uint64
	Replied    uint64
	NoPeer     uint64
	Sent       uint64
	SendErrors uint64
}

// Accepted is the count of datagrams that passed the sanity filter.
func (s Stats) Accepted() uint64 { return s.Filtered[packet.FilterAccept] }

// TotalDropped sums all drop reasons.
func (s Stats) TotalDropped() uint64 {
	var n uint64
	for _, v := range s.Drops {
		n += v
	}
	return n
}

// String renders the snapshot as stable key=value lines (the
// -filter-stats output the smoke test greps).
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "received=%d accepted=%d delivered=%d forwarded=%d echoed=%d replied=%d sent=%d no-peer=%d send-errors=%d\n",
		s.Received, s.Accepted(), s.Delivered, s.Forwarded, s.Echoed, s.Replied, s.Sent, s.NoPeer, s.SendErrors)
	b.WriteString("filter:")
	for v := packet.FilterVerdict(1); int(v) < packet.FilterVerdicts; v++ {
		fmt.Fprintf(&b, " %s=%d", v, s.Filtered[v])
	}
	b.WriteString("\ndrops:")
	for k := DropKind(0); k < DropKinds; k++ {
		fmt.Fprintf(&b, " %s=%d", k, s.Drops[k])
	}
	return b.String()
}

// Engine is the live UDP server: sockets, workers, and their shared
// configuration. Build with New, drive with Run, stop with Close.
type Engine struct {
	cfg     Config
	conns   []*net.UDPConn
	workers []*worker
	peers   []netip.AddrPort // dense next-hop address table
	peerOK  []bool
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// worker is one receive loop: a socket (possibly shared on non-Linux),
// a private arena of receive slots, a private Dataplane, and the
// platform batch I/O state.
type worker struct {
	eng  *Engine
	conn *net.UDPConn
	dp   *Dataplane

	arena  *Arena
	rxBuf  [][]byte
	rxSlot []int32
	txq    []txEntry

	rx *rxBatch
	tx *txBatch

	st wstats
}

// New binds the sockets and builds the workers. The engine is not
// receiving until Run is called.
func New(cfg Config) (*Engine, error) {
	cfg.fill()
	e := &Engine{cfg: cfg}
	for id, a := range cfg.Peers {
		if int(id) >= len(e.peers) {
			grown := make([]netip.AddrPort, id+1)
			copy(grown, e.peers)
			e.peers = grown
			grownOK := make([]bool, id+1)
			copy(grownOK, e.peerOK)
			e.peerOK = grownOK
		}
		e.peers[id] = a
		e.peerOK[id] = true
	}

	// One socket per worker where SO_REUSEPORT + batch syscalls exist;
	// one shared socket otherwise.
	nsock := 1
	if batchIO {
		nsock = cfg.Workers
	}
	lc := listenConfig()
	addr := cfg.Listen
	for i := 0; i < nsock; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", addr)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
		}
		conn := pc.(*net.UDPConn)
		e.conns = append(e.conns, conn)
		if i == 0 {
			// Later sockets must bind the exact port the first one got.
			addr = conn.LocalAddr().String()
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		w, err := e.newWorker(e.conns[i%nsock])
		if err != nil {
			e.Close()
			return nil, err
		}
		e.workers = append(e.workers, w)
	}
	return e, nil
}

func (e *Engine) newWorker(conn *net.UDPConn) (*worker, error) {
	b := e.cfg.Batch
	w := &worker{eng: e, conn: conn, dp: e.cfg.NewDataplane()}
	// The arena holds the worker's receive slots plus equal headroom
	// for transient buffers (tests, future tx staging); the receive
	// slots are checked out once and reused for the worker's lifetime.
	w.arena = NewArena(2*b, e.cfg.SlotSize)
	w.rxBuf = make([][]byte, b)
	w.rxSlot = make([]int32, b)
	for i := range w.rxBuf {
		w.rxSlot[i], w.rxBuf[i] = w.arena.Get()
	}
	w.txq = make([]txEntry, 0, b)
	var err error
	if w.rx, err = newRxBatch(conn, w.rxBuf); err != nil {
		return nil, err
	}
	if w.tx, err = newTxBatch(conn, b); err != nil {
		return nil, err
	}
	return w, nil
}

// Addr returns the engine's bound address (all sockets share it).
func (e *Engine) Addr() netip.AddrPort {
	return e.conns[0].LocalAddr().(*net.UDPAddr).AddrPort()
}

// Run starts the workers and blocks until Close. Safe to call from a
// goroutine.
func (e *Engine) Run() {
	for _, w := range e.workers {
		e.wg.Add(1)
		go w.run()
	}
	e.wg.Wait()
}

// Close shuts the sockets down; Run returns once the workers notice.
// Idempotent.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	for _, c := range e.conns {
		c.Close()
	}
}

// Stats sums the per-worker counters into one snapshot.
func (e *Engine) Stats() Stats {
	var s Stats
	for _, w := range e.workers {
		s.Received += w.st.received.Load()
		for i := range s.Filtered {
			s.Filtered[i] += w.st.filtered[i].Load()
		}
		for i := range s.Drops {
			s.Drops[i] += w.st.drops[i].Load()
		}
		s.Delivered += w.st.delivered.Load()
		s.Forwarded += w.st.forwarded.Load()
		s.Echoed += w.st.echoed.Load()
		s.Replied += w.st.replied.Load()
		s.NoPeer += w.st.noPeer.Load()
		s.Sent += w.st.sent.Load()
		s.SendErrors += w.st.sendErrors.Load()
	}
	return s
}

func (e *Engine) peerAddr(id topology.NodeID) (netip.AddrPort, bool) {
	if int(id) < len(e.peers) && e.peerOK[id] {
		return e.peers[id], true
	}
	return netip.AddrPort{}, false
}

func (w *worker) run() {
	defer w.eng.wg.Done()
	for {
		n, err := w.rx.recv()
		if err != nil {
			return // socket closed (or fatally broken): worker exits
		}
		if n > 0 {
			w.handle(n)
		}
	}
}

// handle runs one received batch through filter → dataplane → transmit.
// This is the zero-allocation steady-state path: decisions reuse the
// dataplane scratch, tx entries go into the preallocated queue, and
// counters are flushed once at the end.
func (w *worker) handle(n int) {
	var t tally
	w.txq = w.txq[:0]
	echo := w.eng.cfg.Echo
	deliver := w.eng.cfg.Deliver
	for i := 0; i < n; i++ {
		data := w.rxBuf[i][:w.rx.length(i)]
		t.received++
		v := packet.Filter(data)
		t.filtered[v]++
		if v != packet.FilterAccept {
			// The sanity filter rejects on raw bytes before the full
			// decode; a rejected datagram never reaches the dataplane
			// and is accounted under Filtered, not Drops.
			continue
		}
		dec := w.dp.Process(data)
		switch dec.Kind {
		case Deliver:
			t.delivered++
			if deliver != nil {
				if reply := deliver(dec.Data, w.rx.from(i)); reply != nil {
					w.txq = append(w.txq, txEntry{addr: w.rx.from(i), data: reply})
					t.replied++
					continue
				}
			}
			if echo {
				w.txq = append(w.txq, txEntry{addr: w.rx.from(i), data: dec.Data})
				t.echoed++
			}
		case Forward:
			t.forwarded++
			if a, ok := w.eng.peerAddr(dec.Next); ok {
				w.txq = append(w.txq, txEntry{addr: a, data: dec.Data})
			} else {
				t.noPeer++
			}
		default:
			t.drops[dec.Drop]++
		}
	}
	if len(w.txq) > 0 {
		sent, errs := w.tx.send(w.txq)
		t.sent = uint64(sent)
		t.sendErrors = uint64(errs)
	}
	w.st.flush(&t)
}
