package main

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
)

func TestExampleDesignParsesAndPasses(t *testing.T) {
	var df designFile
	if err := json.Unmarshal([]byte(exampleDesign), &df); err != nil {
		t.Fatalf("template JSON invalid: %v", err)
	}
	app, err := toAppDesign(&df)
	if err != nil {
		t.Fatal(err)
	}
	report := core.CheckGuidelines(app)
	if report.Score() != 1 {
		t.Fatalf("template design scores %v — the shipped example must pass", report.Score())
	}
}

func TestToAppDesignUnknownChooser(t *testing.T) {
	df := &designFile{Name: "x"}
	df.Choices = append(df.Choices, struct {
		Name         string `json:"name"`
		Chooser      string `json:"chooser"`
		Alternatives int    `json:"alternatives"`
		Visible      bool   `json:"visible"`
		CostExposed  bool   `json:"cost_exposed"`
	}{Name: "c", Chooser: "alien", Alternatives: 2})
	if _, err := toAppDesign(df); err == nil {
		t.Fatal("unknown chooser accepted")
	}
}

func TestToAppDesignMapsFields(t *testing.T) {
	src := `{
        "name": "t",
        "choices": [{"name": "c", "chooser": "isp", "alternatives": 3, "visible": true, "cost_exposed": false}],
        "mechanisms": [{"name": "m", "space": "qos", "couples": ["apps"], "visible": false}],
        "third_parties": [{"name": "tp", "selectable": false}],
        "needs_value_flow": true
    }`
	var df designFile
	if err := json.Unmarshal([]byte(src), &df); err != nil {
		t.Fatal(err)
	}
	app, err := toAppDesign(&df)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Choices) != 1 || app.Choices[0].Chooser != core.ISP || app.Choices[0].Alternatives != 3 {
		t.Fatalf("choices = %+v", app.Choices)
	}
	if len(app.Mechanisms) != 1 || app.Mechanisms[0].Space != "qos" || len(app.Mechanisms[0].Couples) != 1 {
		t.Fatalf("mechanisms = %+v", app.Mechanisms[0])
	}
	if len(app.ThirdParties) != 1 || app.ThirdParties[0].Selectable {
		t.Fatalf("third parties = %+v", app.ThirdParties)
	}
	if !app.NeedsValueFlow || app.HasValueFlow {
		t.Fatal("value-flow flags wrong")
	}
}
