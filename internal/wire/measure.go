package wire

import (
	"fmt"
	"net/netip"

	"repro/internal/packet"
	"repro/internal/topology"
)

// Reusable measurement workloads, shared by the package benchmarks and
// the tussle-bench -wire-json baseline writer so the committed
// BENCH_wire.json numbers measure exactly what the benchmarks do.

// ProcessBench measures the decision kernel alone: filter → decode →
// TTL patch → route, no sockets. One op is one forwarded datagram.
type ProcessBench struct {
	dp   *Dataplane
	tmpl []byte
	buf  []byte
}

// NewProcessBench builds a forwarding node (2, peers 1 and 3) and a
// 67-byte payload-bearing datagram addressed across it.
func NewProcessBench() (*ProcessBench, error) {
	dp := NewDataplane(NodeConfig{
		ID: 2,
		Route: func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			if dst.Provider() >= 3 {
				return 3, true
			}
			return 1, true
		},
		Peers: []topology.NodeID{1, 3},
	})
	tmpl, err := packet.Serialize(
		&packet.TIP{TTL: 64, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1)},
		&packet.Raw{Data: []byte("wire-process-bench-payload")})
	if err != nil {
		return nil, err
	}
	b := &ProcessBench{dp: dp, tmpl: tmpl, buf: make([]byte, len(tmpl))}
	return b, nil
}

// Run decides count datagrams. Each op refills the receive buffer from
// the template (as a real receive would) and must decide Forward; the
// loop allocates nothing.
func (b *ProcessBench) Run(count int) error {
	for i := 0; i < count; i++ {
		copy(b.buf, b.tmpl)
		if dec := b.dp.Process(b.buf); dec.Kind != Forward || dec.Next != 3 {
			return fmt.Errorf("wire: process bench decided %v, want forward 3", dec)
		}
	}
	return nil
}

// LoopbackBench measures the full engine round trip on loopback: blast
// client → recv batch → filter → decode → deliver → echo batch →
// client. One op is one datagram making the complete round.
type LoopbackBench struct {
	eng     *Engine
	packets [][]byte
	conns   int
}

// NewLoopbackBench starts an echo engine with the given worker count on
// 127.0.0.1. Close must be called when done.
func NewLoopbackBench(workers int) (*LoopbackBench, error) {
	eng, err := New(Config{
		Listen:  "127.0.0.1:0",
		Workers: workers,
		Echo:    true,
	})
	if err != nil {
		return nil, err
	}
	go eng.Run()
	data, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(0, 1)},
		&packet.Raw{Data: []byte("wire-loopback-bench")})
	if err != nil {
		eng.Close()
		return nil, err
	}
	conns := workers
	if conns < 1 {
		conns = 1
	}
	return &LoopbackBench{eng: eng, packets: [][]byte{data}, conns: conns}, nil
}

// Addr returns the engine's bound address.
func (b *LoopbackBench) Addr() netip.AddrPort { return b.eng.Addr() }

// Stats returns the engine-side counters.
func (b *LoopbackBench) Stats() Stats { return b.eng.Stats() }

// Run round-trips count datagrams and returns the blast-side result.
func (b *LoopbackBench) Run(count int) (BlastResult, error) {
	return Blast(BlastConfig{
		Target:  b.eng.Addr(),
		Count:   count,
		Packets: b.packets,
		Echo:    true,
		Conns:   b.conns,
	})
}

// Close shuts the engine down.
func (b *LoopbackBench) Close() { b.eng.Close() }
