package netsim

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file adds failure injection and the traceroute-style diagnostic
// §VI-A asks for: "Failures of transparency will occur — design what
// happens then... Tools for fault isolation and error reporting would
// help." The tool works only from externally observable behaviour: TTL
// expiries identify forwarding nodes; middlebox drops identify the
// device only when it chooses not to be silent.

// FailLink marks the link between a and b down in both directions.
// Transit over a failed link drops with reason "link-down". The failure
// map is the source of truth; the dense link table's failure flags are a
// mirror for the forwarding fast path and are refreshed here and on
// every InvalidateTopology rebuild.
func (n *Network) FailLink(a, b topology.NodeID) {
	if n.failed == nil {
		n.failed = make(map[[2]topology.NodeID]bool)
	}
	n.failed[linkKey(a, b)] = true
	if li := n.linkIndex(a, b); li >= 0 {
		n.lt.failed[li] = true
	}
}

// RestoreLink brings a failed link back.
func (n *Network) RestoreLink(a, b topology.NodeID) {
	delete(n.failed, linkKey(a, b))
	if li := n.linkIndex(a, b); li >= 0 {
		n.lt.failed[li] = false
	}
}

// LinkFailed reports whether the link is currently down.
func (n *Network) LinkFailed(a, b topology.NodeID) bool {
	return n.failed[linkKey(a, b)]
}

func linkKey(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// Hop is one step of a traceroute report.
type Hop struct {
	TTL int
	// Node is the responding node, or 0 when nothing was learned (a
	// silent loss).
	Node topology.NodeID
	// Note is what was learned: "time-exceeded", "destination",
	// "blocked:<device>" for a disclosing middlebox, or "lost".
	Note string
}

// Traceroute probes the path from src toward dst with TTL-limited
// packets, one TTL at a time, and reports what an end user could learn.
// mkProbe builds the probe payload for a given TTL; pass nil for a
// default raw probe.
func (n *Network) Traceroute(src topology.NodeID, dst packet.Addr, maxTTL int, mkProbe func(ttl uint8) []byte) []Hop {
	if mkProbe == nil {
		mkProbe = func(ttl uint8) []byte {
			data, err := packet.Serialize(
				&packet.TIP{TTL: ttl, Proto: packet.LayerTypeRaw,
					Src: packet.MakeAddr(uint16(src), 1), Dst: dst},
				&packet.Raw{Data: []byte("traceroute")})
			if err != nil {
				panic(err)
			}
			return data
		}
	}
	var hops []Hop
	for ttl := 1; ttl <= maxTTL; ttl++ {
		tr := n.Send(src, mkProbe(uint8(ttl)))
		n.Sched.Run()
		switch {
		case tr.Delivered:
			hops = append(hops, Hop{TTL: ttl, Node: topology.NodeID(dst.Provider()), Note: "destination"})
			return hops
		case tr.DropReason == "ttl":
			// The expiring node reveals itself (the ICMP time-exceeded
			// analogue).
			hops = append(hops, Hop{TTL: ttl, Node: tr.DropNode, Note: "time-exceeded"})
		case tr.DropReason == "lost":
			// A silent device: the user learns only that the path goes
			// dark past the previous hop.
			hops = append(hops, Hop{TTL: ttl, Note: "lost"})
			return hops
		default:
			// A disclosing device names itself in the drop reason.
			hops = append(hops, Hop{TTL: ttl, Node: tr.DropNode, Note: tr.DropReason})
			return hops
		}
	}
	return hops
}

// PathMTUProbe is a second diagnostic in the same spirit: find the
// largest payload that survives to dst, by binary search over probe
// sizes. It exercises queue behaviour rather than fragmentation (TIP
// does not fragment), and demonstrates diagnosis by active measurement.
func (n *Network) PathMTUProbe(src topology.NodeID, dst packet.Addr, lo, hi int) int {
	try := func(size int) bool {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 64, Proto: packet.LayerTypeRaw,
				Src: packet.MakeAddr(uint16(src), 1), Dst: dst},
			&packet.Raw{Data: make([]byte, size)})
		if err != nil {
			return false
		}
		tr := n.Send(src, data)
		n.Sched.Run()
		return tr.Delivered
	}
	if !try(lo) {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if try(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// FlapLink schedules a link to fail at failAt and recover at healAt —
// the standard failure-injection workload for resilience experiments.
func (n *Network) FlapLink(a, b topology.NodeID, failAt, healAt sim.Time) {
	n.Sched.At(failAt, func() { n.FailLink(a, b) })
	n.Sched.At(healAt, func() { n.RestoreLink(a, b) })
}
