package trust

import (
	"errors"
	"fmt"

	"repro/internal/policy"
	"repro/internal/sim"
)

// Attestation checks as compiled, metered policy programs: a relying
// party accepts a certified identity only if the certificate's attested
// attributes satisfy its own policy — §V-B's point that *which* third
// parties and *what* attestations to trust is the relying party's
// choice, not the scheme's. The policy is TPL over the certificate's
// attribute map (every attested attribute is a string-valued policy
// attribute) plus "subject" and "issuer", compiled once through the
// shared policy.DefaultCache and executed on the policy VM under a
// budget, so a hostile policy — or a certificate bloated to make a
// honest policy expensive — costs a bounded number of steps.

// ErrAttestationDenied reports a certificate whose attested attributes
// fail the relying party's policy.
var ErrAttestationDenied = errors.New("trust: attestation policy denied")

// AttestationPolicySteps is the per-check step/allocation budget.
const AttestationPolicySteps = 4096

// AttestationPolicy is a relying party's compiled acceptance predicate
// over certificate attestations. Immutable and safe to share.
type AttestationPolicy struct {
	prog *policy.Program
}

// NewAttestationPolicy compiles src through the shared cache. Unlike the
// forwarding-plane vocabularies, attestation attributes are open-ended
// (issuers attest whatever they attest), so references are checked at
// evaluation time: a policy that reads an attribute the certificate does
// not carry denies, fail-safe.
func NewAttestationPolicy(src string) (*AttestationPolicy, error) {
	prog, err := policy.CompileText(src)
	if err != nil {
		return nil, err
	}
	return &AttestationPolicy{prog: prog}, nil
}

// Source returns the canonical policy text.
func (ap *AttestationPolicy) Source() string { return ap.prog.Source() }

// Check evaluates the policy against one certificate's attestations.
// Any evaluation error — unknown attribute, type error, budget breach —
// denies with that error wrapped; a false verdict denies with
// ErrAttestationDenied.
func (ap *AttestationPolicy) Check(c *Certificate) error {
	env := policy.Env{
		"subject": policy.Str(c.Subject),
		"issuer":  policy.Str(c.Issuer),
	}
	for k, v := range c.Attributes {
		env[k] = policy.Str(v)
	}
	b := policy.NewBudget(AttestationPolicySteps, AttestationPolicySteps)
	v, err := ap.prog.Run(env, &b)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAttestationDenied, err)
	}
	if v.Kind != policy.KindBool {
		return fmt.Errorf("%w: policy returned %v, not bool", ErrAttestationDenied, v)
	}
	if !v.B {
		return ErrAttestationDenied
	}
	return nil
}

// VerifyChainWithPolicy validates the certificate chain cryptographically
// (VerifyChain) and then checks the leaf's attestations against the
// relying party's policy — signature validity says the issuer vouched,
// the policy says whether what it vouched for is good enough.
func VerifyChainWithPolicy(chain []*Certificate, anchors Anchors, now sim.Time, ap *AttestationPolicy) error {
	if err := VerifyChain(chain, anchors, now); err != nil {
		return err
	}
	if ap != nil {
		return ap.Check(chain[0])
	}
	return nil
}
