package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/packet"
	"repro/internal/qos"
	"repro/internal/sim"
)

// E2QoSIsolation tests the §IV-A QoS claim: selecting service class by
// explicit ToS bits isolates the QoS tussle from the what-application
// tussle, while inferring class from well-known ports entangles them —
// and punishes users who encrypt, pressuring them to forgo encryption
// (a distortion).
//
// Workload: a congested link carrying VoIP (delay-sensitive), web, and
// bulk flows. A fraction of users encrypt at the network layer, hiding
// ports. We compare classifiers on VoIP call quality for encrypted
// users, and count the users who would have to abandon encryption to
// recover their service class.
func E2QoSIsolation(seed uint64) *Result {
	res := &Result{
		ID:    "E2",
		Title: "explicit ToS vs port-inferred QoS under encryption",
		Claim: "§IV-A: binding QoS to port visibility creates demands that encryption be avoided; explicit ToS bits isolate the tussles",
		Columns: []string{
			"voip-delay-ms", "voip-score", "misclassified", "distortion-pressure",
		},
	}
	type flow struct {
		class     qos.Class
		port      uint16
		encrypted bool
		bytes     int
	}
	buildPacket := func(f flow) []byte {
		tip := &packet.TIP{TTL: 8, TOS: qos.ToSFor(f.class), Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(2, 1)}
		if f.encrypted {
			// Network-layer encryption: ports invisible.
			tip.Proto = packet.LayerTypeCrypto
			c := &packet.Crypto{Nonce: 7}
			c.Seal([]byte("k"), []byte("payload"), packet.LayerTypeTTP)
			cdata, err := packet.Serialize(c)
			if err != nil {
				panic(err)
			}
			data, err := packet.Serialize(tip, &packet.Raw{Data: cdata})
			if err != nil {
				panic(err)
			}
			return data
		}
		tip.Proto = packet.LayerTypeTTP
		data, err := packet.Serialize(tip,
			&packet.TTP{DstPort: f.port, Next: packet.LayerTypeRaw},
			&packet.Raw{Data: []byte("payload")})
		if err != nil {
			panic(err)
		}
		return data
	}

	for _, design := range []string{"by-port", "explicit-tos"} {
		for _, encFrac := range []float64{0.0, 0.5} {
			rng := sim.NewRNG(seed)
			var classifier qos.Classifier
			if design == "by-port" {
				classifier = &qos.PortClassifier{
					PortClass: map[uint16]qos.Class{5060: qos.Gold, 80: qos.Silver, 443: qos.Silver},
					Default:   qos.BestEffort,
				}
			} else {
				classifier = &qos.ExplicitClassifier{}
			}
			link := qos.NewLinkSim(2e5, qos.StrictPriority) // 200 KB/s, congested
			var voipJobs []*qos.Job
			misclassified := 0
			distortion := 0
			const nFlows = 300
			for i := 0; i < nFlows; i++ {
				var f flow
				switch i % 3 {
				case 0:
					f = flow{class: qos.Gold, port: 5060, bytes: 200}
				case 1:
					f = flow{class: qos.Silver, port: 80, bytes: 1500}
				default:
					f = flow{class: qos.BestEffort, port: 9000 + uint16(rng.Intn(100)), bytes: 4000}
				}
				f.encrypted = rng.Bool(encFrac)
				data := buildPacket(f)
				got := classifier.Classify(data)
				if got != f.class {
					misclassified++
					if f.encrypted && got < f.class {
						// The user would regain their class by not
						// encrypting: pressure to abandon encryption.
						distortion++
					}
				}
				arrive := sim.Time(rng.Intn(1000)) * sim.Millisecond
				j := link.Add(got, f.bytes, arrive)
				if f.class == qos.Gold {
					voipJobs = append(voipJobs, j)
				}
			}
			link.Run()
			var delay sim.Series
			var score sim.Series
			for _, j := range voipJobs {
				delay.Add(j.Delay().Millis())
				score.Add(apps.VoIPScore(j.Delay()))
			}
			res.AddRow(fmt.Sprintf("%s enc=%.0f%%", design, encFrac*100),
				delay.Mean(), score.Mean(),
				float64(misclassified)/nFlows, float64(distortion))
		}
	}
	res.Finding = fmt.Sprintf(
		"with 50%% encryption the port design misclassifies %.0f%% of flows and pressures %.0f users to drop encryption (VoIP score %.2f); the explicit-ToS design misclassifies none (score %.2f)",
		res.MustGet("by-port enc=50%", "misclassified")*100,
		res.MustGet("by-port enc=50%", "distortion-pressure"),
		res.MustGet("by-port enc=50%", "voip-score"),
		res.MustGet("explicit-tos enc=50%", "voip-score"))
	return res
}
