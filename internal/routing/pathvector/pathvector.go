// Package pathvector implements a BGP-style inter-domain routing protocol
// with Gao–Rexford business policies: route selection prefers routes
// through customers over peers over providers, and export rules keep a
// provider from giving free transit. This is the "provider control"
// design that won the policy-routing tussle of §V-A4; the package also
// records what is and is not visible to outsiders (§IV-C: "a path vector
// protocol makes it harder to see what the internal choices are").
package pathvector

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Route is one candidate path to a destination.
type Route struct {
	Dst topology.NodeID
	// Path is the AS path, first element = next hop, last = Dst.
	Path []topology.NodeID
	// LearnedFrom classifies the neighbor the route came from.
	LearnedFrom topology.NeighborClass
	// LocalPref allows policy overrides beyond Gao–Rexford defaults.
	LocalPref int
}

// contains reports whether the path already visits n (loop prevention).
func (r Route) contains(n topology.NodeID) bool {
	for _, p := range r.Path {
		if p == n {
			return true
		}
	}
	return false
}

// better implements BGP-like decision: higher LocalPref, then
// customer > peer > provider, then shorter path, then lowest next hop.
func better(a, b Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	// Lower NeighborClass value = customer, preferred.
	if a.LearnedFrom != b.LearnedFrom {
		return a.LearnedFrom < b.LearnedFrom
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	return a.Path[0] < b.Path[0]
}

// RIB holds a node's chosen routes.
type RIB struct {
	Node topology.NodeID
	Best map[topology.NodeID]Route
}

// Protocol is a converged path-vector computation.
type Protocol struct {
	G *topology.Graph
	// Prefer maps (node, dst) to a preferred next-hop neighbor; it
	// models operator policy overriding the defaults (a tussle move).
	Prefer map[[2]topology.NodeID]topology.NodeID
	// NoExportTo suppresses all exports from a node to a neighbor
	// (de-peering, a competitive move).
	NoExportTo map[[2]topology.NodeID]bool
	// Down marks links currently failed (key normalized low-ID-first) and
	// DownNodes marks crashed routers; Converge ignores both, so a
	// re-converge after updating them models the protocol reacting to a
	// fault. Nil maps mean a fully healthy topology.
	Down      map[[2]topology.NodeID]bool
	DownNodes map[topology.NodeID]bool

	RIBs map[topology.NodeID]*RIB
	// Iterations is how many rounds convergence took.
	Iterations int

	// obs instruments convergence; nil means disabled.
	convergeRuns *obs.Counter
	convergeIter *obs.Histogram
	routesHeld   *obs.Histogram
}

// AttachObs enables convergence observability: a counter of Converge
// calls, the distribution of iterations each took, and the distribution
// of RIB sizes after convergence. A nil registry disables again.
func (p *Protocol) AttachObs(reg *obs.Registry) {
	if reg == nil {
		p.convergeRuns, p.convergeIter, p.routesHeld = nil, nil, nil
		return
	}
	p.convergeRuns = reg.Counter("routing.pathvector.converge_runs")
	p.convergeIter = reg.Histogram("routing.pathvector.converge_iterations", obs.CountBuckets)
	p.routesHeld = reg.Histogram("routing.pathvector.rib_routes", obs.CountBuckets)
}

// New prepares a protocol instance over g.
func New(g *topology.Graph) *Protocol {
	return &Protocol{
		G:          g,
		Prefer:     make(map[[2]topology.NodeID]topology.NodeID),
		NoExportTo: make(map[[2]topology.NodeID]bool),
	}
}

// exportable applies Gao–Rexford export rules: a route learned from a
// customer is exported to everyone; a route learned from a peer or
// provider is exported only to customers. Own-origin routes go to all.
func (p *Protocol) exportable(r Route, toClass topology.NeighborClass) bool {
	if len(r.Path) == 0 {
		return true // own prefix
	}
	if r.LearnedFrom == topology.Customer {
		return true
	}
	return toClass == topology.Customer
}

// Converge runs synchronous Bellman-Ford-style iterations until no RIB
// changes. Gao–Rexford policies guarantee convergence; a safety valve
// caps iterations.
func (p *Protocol) Converge() error {
	ids := p.G.NodeIDs()
	p.RIBs = make(map[topology.NodeID]*RIB, len(ids))
	for _, id := range ids {
		best := map[topology.NodeID]Route{}
		// A crashed router originates nothing, not even its own prefix.
		if !p.DownNodes[id] {
			best[id] = Route{Dst: id, Path: nil, LearnedFrom: topology.Customer, LocalPref: 1 << 20}
		}
		p.RIBs[id] = &RIB{Node: id, Best: best}
	}
	maxIter := 4*len(ids) + 10
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for _, id := range ids {
			if p.DownNodes[id] {
				continue // crashed: learns nothing
			}
			rib := p.RIBs[id]
			for _, nb := range p.G.Neighbors(id) {
				if p.DownNodes[nb] || p.linkDown(id, nb) {
					continue // dead session: no routes cross it
				}
				nbClassAtNb, _ := p.G.RelFrom(nb, id) // what id is to nb
				if p.NoExportTo[[2]topology.NodeID{nb, id}] {
					continue
				}
				myClassOfNb, _ := p.G.RelFrom(id, nb) // what nb is to id
				nbRIB := p.RIBs[nb]
				for dst, r := range nbRIB.Best {
					if dst == id || r.contains(id) {
						continue
					}
					if !p.exportable(r, nbClassAtNb) {
						continue
					}
					cand := Route{
						Dst:         dst,
						Path:        append([]topology.NodeID{nb}, r.Path...),
						LearnedFrom: myClassOfNb,
					}
					if p.Prefer[[2]topology.NodeID{id, dst}] == nb {
						cand.LocalPref = 100
					}
					cur, ok := rib.Best[dst]
					if !ok || better(cand, cur) {
						// Replacing an equal-path route with itself is
						// not a change.
						if ok && samePath(cur, cand) {
							continue
						}
						rib.Best[dst] = cand
						changed = true
					}
				}
			}
		}
		if !changed {
			p.Iterations = iter + 1
			if p.convergeRuns != nil {
				p.convergeRuns.Inc()
				p.convergeIter.Observe(float64(p.Iterations))
				for _, rib := range p.RIBs {
					p.routesHeld.Observe(float64(len(rib.Best)))
				}
			}
			return nil
		}
	}
	return fmt.Errorf("pathvector: no convergence after %d iterations", maxIter)
}

// linkDown reports whether the a–b link is marked failed.
func (p *Protocol) linkDown(a, b topology.NodeID) bool {
	if p.Down == nil {
		return false
	}
	if a > b {
		a, b = b, a
	}
	return p.Down[[2]topology.NodeID{a, b}]
}

// MarkLink sets or clears the failed flag for the a–b link.
func (p *Protocol) MarkLink(a, b topology.NodeID, down bool) {
	if a > b {
		a, b = b, a
	}
	if p.Down == nil {
		p.Down = make(map[[2]topology.NodeID]bool)
	}
	if down {
		p.Down[[2]topology.NodeID{a, b}] = true
	} else {
		delete(p.Down, [2]topology.NodeID{a, b})
	}
}

// MarkNode sets or clears the crashed flag for a router.
func (p *Protocol) MarkNode(id topology.NodeID, down bool) {
	if p.DownNodes == nil {
		p.DownNodes = make(map[topology.NodeID]bool)
	}
	if down {
		p.DownNodes[id] = true
	} else {
		delete(p.DownNodes, id)
	}
}

func samePath(a, b Route) bool {
	if len(a.Path) != len(b.Path) || a.LearnedFrom != b.LearnedFrom || a.LocalPref != b.LocalPref {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// RouteFunc adapts a node's RIB to the simulator's routing hook.
func (p *Protocol) RouteFunc(id topology.NodeID) func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
	rib := p.RIBs[id]
	return func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
		d := topology.NodeID(dst.Provider())
		if d == id {
			return id, true
		}
		r, ok := rib.Best[d]
		if !ok || len(r.Path) == 0 {
			return 0, false
		}
		return r.Path[0], true
	}
}

// Path returns the full AS path node→dst, or nil if unreachable.
func (p *Protocol) Path(node, dst topology.NodeID) []topology.NodeID {
	r, ok := p.RIBs[node].Best[dst]
	if !ok {
		return nil
	}
	return append([]topology.NodeID{node}, r.Path...)
}

// VisibleChoices reports what an outside observer can learn from this
// protocol: one chosen path per (node, dst) pair — no costs, no
// alternatives, no reasons. Compare with linkstate.Database.VisibleChoices.
func (p *Protocol) VisibleChoices() int {
	n := 0
	for _, rib := range p.RIBs {
		n += len(rib.Best) - 1 // exclude self-route
	}
	return n
}

// CheckGaoRexford verifies the converged routes respect valley-free
// export: no route crosses peer→peer→... or provider→customer→provider
// valleys. Returns the number of violations (0 when safe).
func (p *Protocol) CheckGaoRexford() int {
	violations := 0
	for _, rib := range p.RIBs {
		for _, r := range rib.Best {
			full := append([]topology.NodeID{rib.Node}, r.Path...)
			if !valleyFree(p.G, full) {
				violations++
			}
		}
	}
	return violations
}

// valleyFree checks the classic pattern: a path must be a sequence of
// customer→provider ("up") edges, at most one peer edge, then
// provider→customer ("down") edges.
func valleyFree(g *topology.Graph, path []topology.NodeID) bool {
	if len(path) < 2 {
		return true
	}
	const (
		up = iota
		peered
		down
	)
	state := up
	for i := 0; i+1 < len(path); i++ {
		cls, ok := g.RelFrom(path[i], path[i+1])
		if !ok {
			return false
		}
		switch cls {
		case topology.Provider: // going up
			if state != up {
				return false
			}
		case topology.Peer:
			if state != up {
				return false
			}
			state = peered
		case topology.Customer: // going down
			state = down
		}
	}
	return true
}
