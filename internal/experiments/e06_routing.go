package experiments

import (
	"fmt"

	"repro/internal/economics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/routing/pathvector"
	"repro/internal/routing/srcroute"
	"repro/internal/sim"
	"repro/internal/topology"
)

// E6RoutingControl tests §V-A4: provider-controlled routing (the BGP
// outcome) gives the user no path choice; user source routing restores
// choice, but providers only honor it when the design "incorporates a
// recognition of the need for payment". The experiment measures, across
// stub pairs on a generated internetwork: how many pairs have an
// alternate path the user can actually exercise, and how much voucher
// revenue flows to providers when payment is required.
func E6RoutingControl(seed uint64) *Result { return e6RoutingControl(seed, nil) }

func e6RoutingControl(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E6",
		Title: "provider vs user control of inter-domain routes",
		Claim: "§V-A4: support user source routing, with payment, so consumers can exercise provider-level choice",
		Columns: []string{
			"pairs", "choice-exercised", "delivery", "voucher-revenue",
		},
	}
	configs := []struct {
		label      string
		honor      bool
		requirePay bool
		attachPay  bool
	}{
		{"provider-control", false, false, false},
		{"srcroute unpaid", true, true, false},
		{"srcroute paid", true, true, true},
	}
	for _, cfg := range configs {
		rng := sim.NewRNG(seed)
		g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
		sched := sim.NewScheduler()
		sched.AttachObs(env.Registry())
		net := netsim.New(sched, g)
		net.AttachObs(env.Registry(), env.Tracer())
		pv := pathvector.New(g)
		pv.AttachObs(env.Registry())
		if err := pv.Converge(); err != nil {
			panic(err)
		}
		for _, id := range g.NodeIDs() {
			nd := net.Node(id)
			nd.Route = pv.RouteFunc(id)
			nd.HonorSourceRoutes = cfg.honor
			nd.RequirePaymentForSourceRoute = cfg.requirePay
		}
		ledger := economics.NewLedger(map[string]float64{"users": 1e6})
		payerKey := []byte("user-master-key")

		stubs := g.Stubs()
		pairs, exercised, delivered := 0, 0, 0
		var voucherRevenue float64
		var traces []*netsim.Trace
		var wants []srcroute.Candidate
		var defaults [][]topology.NodeID
		for i := 0; i < len(stubs); i++ {
			for j := i + 1; j < len(stubs); j++ {
				src, dst := stubs[i], stubs[j]
				pairs++
				defaultPath := pv.Path(src, dst)
				cands := srcroute.Discover(g, src, dst, 5, 7)
				// The user wants an alternate path: the best candidate
				// that differs from the provider-chosen default (maybe
				// the default is congested, or they distrust one of its
				// providers).
				var want *srcroute.Candidate
				for k := range cands {
					if !samePath(cands[k].Path, defaultPath) {
						want = &cands[k]
						break
					}
				}
				if want == nil {
					continue
				}
				tip := &packet.TIP{
					TTL: 32, Proto: packet.LayerTypeRaw,
					Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1),
					SourceRoute: want.Option(),
				}
				if cfg.attachPay {
					amount := srcroute.WithPayment(tip, *want, payerKey, uint32(pairs))
					if err := ledger.Transfer("users", "providers", float64(amount)/1000, "source-route voucher"); err == nil {
						voucherRevenue += float64(amount) / 1000
					}
				}
				data, err := packet.Serialize(tip, &packet.Raw{Data: []byte("probe")})
				if err != nil {
					panic(err)
				}
				traces = append(traces, net.Send(src, data))
				wants = append(wants, *want)
				defaults = append(defaults, defaultPath)
			}
		}
		sched.Run()
		for k, tr := range traces {
			if tr.Delivered {
				delivered++
				// Choice counts as exercised only if the packet followed
				// the requested alternative AND left the default path —
				// "how the user knows that the traffic actually took the
				// desired route".
				if wants[k].Verify(tr.Path()) && !samePath(tr.Path(), defaults[k]) {
					exercised++
				}
			}
		}
		if !ledger.Conserved() {
			panic("E6: ledger conservation violated")
		}
		res.AddRow(cfg.label,
			float64(pairs),
			ratio(exercised, pairs),
			ratio(delivered, len(traces)),
			voucherRevenue)
	}
	res.Finding = fmt.Sprintf(
		"under provider control users exercise alternate-path choice on %.0f%% of pairs; with paid source routing %.0f%% (unpaid source routes are ignored: %.0f%%), and %.1f units of voucher revenue flow to providers",
		res.MustGet("provider-control", "choice-exercised")*100,
		res.MustGet("srcroute paid", "choice-exercised")*100,
		res.MustGet("srcroute unpaid", "choice-exercised")*100,
		res.MustGet("srcroute paid", "voucher-revenue"))
	return res
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func samePath(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
