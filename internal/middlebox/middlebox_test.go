package middlebox

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/trust"
)

func pkt(t *testing.T, tip packet.TIP, ttp *packet.TTP, payload []byte) []byte {
	t.Helper()
	layers := []packet.SerializableLayer{&tip}
	if ttp != nil {
		tip.Proto = packet.LayerTypeTTP
		layers = append(layers, ttp)
	}
	layers = append(layers, &packet.Raw{Data: payload})
	if ttp != nil && ttp.Next == 0 {
		ttp.Next = packet.LayerTypeRaw
	}
	if tip.Proto == 0 {
		tip.Proto = packet.LayerTypeRaw
	}
	if tip.TTL == 0 {
		tip.TTL = 8
	}
	data, err := packet.Serialize(layers...)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPortFirewallBlocksConfiguredPort(t *testing.T) {
	fw := &PortFirewall{Label: "fw", BlockedPorts: map[uint16]bool{25: true}}
	blocked := pkt(t, packet.TIP{Src: 1, Dst: 2}, &packet.TTP{DstPort: 25}, nil)
	allowed := pkt(t, packet.TIP{Src: 1, Dst: 2}, &packet.TTP{DstPort: 80}, nil)
	if _, v := fw.Process(2, netsim.Delivering, blocked); v != netsim.Drop {
		t.Fatal("port 25 not blocked")
	}
	if _, v := fw.Process(2, netsim.Delivering, allowed); v != netsim.Accept {
		t.Fatal("port 80 wrongly blocked")
	}
	if fw.Hits != 1 {
		t.Fatalf("hits = %d", fw.Hits)
	}
}

func TestPortFirewallInboundOnly(t *testing.T) {
	fw := &PortFirewall{Label: "fw", BlockedPorts: map[uint16]bool{80: true}, BlockInbound: true}
	data := pkt(t, packet.TIP{Src: 1, Dst: 2}, &packet.TTP{DstPort: 80}, nil)
	if _, v := fw.Process(3, netsim.Forwarding, data); v != netsim.Accept {
		t.Fatal("transit traffic should pass an inbound-only firewall")
	}
	if _, v := fw.Process(2, netsim.Delivering, data); v != netsim.Drop {
		t.Fatal("inbound traffic should be blocked")
	}
}

func TestPortFirewallTunnelEvasion(t *testing.T) {
	// The §V-A2 counter-move: the forbidden port hides inside a tunnel
	// on an allowed port, and the port firewall cannot see it.
	fw := &PortFirewall{Label: "fw", BlockedPorts: map[uint16]bool{80: true}}
	inner := pkt(t, packet.TIP{Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(2, 1)}, &packet.TTP{DstPort: 80}, []byte("web"))
	outer, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(2, 1)},
		&packet.TTP{DstPort: 443, Next: packet.LayerTypeTunnel},
		&packet.Tunnel{Inner: packet.LayerTypeTIP},
		&packet.Raw{Data: inner})
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fw.Process(2, netsim.Delivering, outer); v != netsim.Accept {
		t.Fatal("tunneled traffic should evade the port firewall")
	}
}

func TestPortFirewallDisclosure(t *testing.T) {
	fw := &PortFirewall{Label: "fw", BlockedPorts: map[uint16]bool{25: true, 80: true}}
	rules, ok := fw.Rules()
	if !ok || len(rules) != 2 || rules[0] != "deny port 25" {
		t.Fatalf("rules = %v, %v", rules, ok)
	}
	fw.Quiet = true
	if _, ok := fw.Rules(); ok {
		t.Fatal("quiet firewall disclosed rules")
	}
}

func TestTrustFirewall(t *testing.T) {
	rep := trust.NewReputation("rep", 1.0)
	for i := 0; i < 10; i++ {
		rep.Report("goodguy", true, nil)
		rep.Report("badguy", false, nil)
	}
	fw := &TrustFirewall{Label: "tfw", MinScore: 0.5, Rep: rep}

	mk := func(id *packet.IdentityOption) []byte {
		return pkt(t, packet.TIP{Src: 1, Dst: 2, Identity: id}, &packet.TTP{DstPort: 9999}, nil)
	}
	good := mk(&packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("goodguy")})
	bad := mk(&packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("badguy")})
	anon := mk(&packet.IdentityOption{Scheme: packet.IdentityAnonymous})
	none := mk(nil)

	if _, v := fw.Process(2, netsim.Delivering, good); v != netsim.Accept {
		t.Fatal("reputable sender blocked")
	}
	if _, v := fw.Process(2, netsim.Delivering, bad); v != netsim.Drop {
		t.Fatal("disreputable sender admitted")
	}
	if _, v := fw.Process(2, netsim.Delivering, anon); v != netsim.Drop {
		t.Fatal("anonymous sender admitted by default")
	}
	if _, v := fw.Process(2, netsim.Delivering, none); v != netsim.Drop {
		t.Fatal("unidentified sender admitted")
	}
	fw.AllowAnonymous = true
	if _, v := fw.Process(2, netsim.Delivering, anon); v != netsim.Accept {
		t.Fatal("anonymous sender blocked despite AllowAnonymous")
	}
	// Note: unlike the port firewall, ports are irrelevant here.
	if _, v := fw.Process(2, netsim.Forwarding, bad); v != netsim.Accept {
		t.Fatal("trust firewall should only filter at delivery")
	}
}

func TestPolicyFirewall(t *testing.T) {
	doc, err := policy.Parse(`policy "edge" {
        rule no-anon { when identity-scheme == "anonymous" then deny "identify yourself" }
        rule no-smtp { when port == 25 && direction == "inbound" then deny }
        rule opaque { when encrypted && !inspectable then deny "opaque crypto" }
        default permit
    }`)
	if err != nil {
		t.Fatal(err)
	}
	fw := &PolicyFirewall{Label: "pfw", Doc: doc}

	anon := pkt(t, packet.TIP{Src: 1, Dst: 2, Identity: &packet.IdentityOption{Scheme: packet.IdentityAnonymous}}, &packet.TTP{DstPort: 80}, nil)
	if _, v := fw.Process(2, netsim.Delivering, anon); v != netsim.Drop {
		t.Fatal("anonymous not denied")
	}
	smtp := pkt(t, packet.TIP{Src: 1, Dst: 2, Identity: &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("a")}}, &packet.TTP{DstPort: 25}, nil)
	if _, v := fw.Process(2, netsim.Delivering, smtp); v != netsim.Drop {
		t.Fatal("inbound smtp not denied")
	}
	if _, v := fw.Process(2, netsim.Forwarding, smtp); v != netsim.Accept {
		t.Fatal("transit smtp should pass (direction != inbound)")
	}
	web := pkt(t, packet.TIP{Src: 1, Dst: 2, Identity: &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("a")}}, &packet.TTP{DstPort: 443}, nil)
	if _, v := fw.Process(2, netsim.Delivering, web); v != netsim.Accept {
		t.Fatal("default permit failed")
	}
}

func TestPolicyFirewallCryptoVisibility(t *testing.T) {
	doc, err := policy.Parse(`policy "crypto" {
        rule opaque { when encrypted && !inspectable then deny }
        default permit
    }`)
	if err != nil {
		t.Fatal(err)
	}
	fw := &PolicyFirewall{Label: "pfw", Doc: doc}
	key := []byte("k")
	mk := func(flags uint8) []byte {
		c := &packet.Crypto{Flags: flags, Nonce: 1}
		c.Seal(key, []byte("secret"), packet.LayerTypeRaw)
		cdata, err := packet.Serialize(c)
		if err != nil {
			t.Fatal(err)
		}
		data, err := packet.Serialize(
			&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: 1, Dst: 2},
			&packet.TTP{DstPort: 7, Next: packet.LayerTypeCrypto},
			&packet.Raw{Data: cdata})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if _, v := fw.Process(2, netsim.Delivering, mk(0)); v != netsim.Drop {
		t.Fatal("opaque crypto admitted")
	}
	if _, v := fw.Process(2, netsim.Delivering, mk(packet.CryptoInspectable)); v != netsim.Accept {
		t.Fatal("inspectable crypto blocked")
	}
}

func TestNATTranslatesAndRestores(t *testing.T) {
	public := packet.MakeAddr(5, 1)
	nat := NewNAT("nat", public)
	internal := packet.MakeAddr(5, 77)
	out := pkt(t, packet.TIP{Src: internal, Dst: packet.MakeAddr(9, 1)}, &packet.TTP{SrcPort: 1234, DstPort: 80}, []byte("req"))

	translated, v := nat.Process(5, netsim.Sending, out)
	if v != netsim.Accept || translated == nil {
		t.Fatal("outbound not translated")
	}
	var tip packet.TIP
	var ttp packet.TTP
	if err := tip.DecodeFrom(translated); err != nil {
		t.Fatal(err)
	}
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if tip.Src != public {
		t.Fatalf("src = %v, want %v", tip.Src, public)
	}
	extPort := ttp.SrcPort

	// Reply comes back to the public address and the external port.
	reply := pkt(t, packet.TIP{Src: packet.MakeAddr(9, 1), Dst: public}, &packet.TTP{SrcPort: 80, DstPort: extPort}, []byte("resp"))
	restored, v := nat.Process(5, netsim.Delivering, reply)
	if v != netsim.Accept || restored == nil {
		t.Fatal("inbound not restored")
	}
	if err := tip.DecodeFrom(restored); err != nil {
		t.Fatal(err)
	}
	if tip.Dst != internal {
		t.Fatalf("restored dst = %v, want %v", tip.Dst, internal)
	}
	if nat.Translations != 2 {
		t.Fatalf("translations = %d", nat.Translations)
	}
}

func TestNATPassesUnrelatedInbound(t *testing.T) {
	nat := NewNAT("nat", packet.MakeAddr(5, 1))
	in := pkt(t, packet.TIP{Src: 9, Dst: packet.MakeAddr(5, 1)}, &packet.TTP{DstPort: 9999}, nil)
	out, v := nat.Process(5, netsim.Delivering, in)
	if v != netsim.Accept || out != nil {
		t.Fatal("unmapped inbound should pass untouched")
	}
}

func TestRedirector(t *testing.T) {
	r := &Redirector{Label: "smtp-hijack", MatchPort: 25, To: packet.MakeAddr(5, 25)}
	mail := pkt(t, packet.TIP{Src: 1, Dst: packet.MakeAddr(9, 1)}, &packet.TTP{DstPort: 25}, []byte("MAIL"))
	out, v := r.Process(5, netsim.Forwarding, mail)
	if v != netsim.Accept || out == nil {
		t.Fatal("mail not redirected")
	}
	var tip packet.TIP
	if err := tip.DecodeFrom(out); err != nil {
		t.Fatal(err)
	}
	if tip.Dst != packet.MakeAddr(5, 25) {
		t.Fatalf("redirected to %v", tip.Dst)
	}
	web := pkt(t, packet.TIP{Src: 1, Dst: packet.MakeAddr(9, 1)}, &packet.TTP{DstPort: 80}, nil)
	if out, _ := r.Process(5, netsim.Forwarding, web); out != nil {
		t.Fatal("non-matching traffic rewritten")
	}
	if r.Redirected != 1 {
		t.Fatalf("redirected = %d", r.Redirected)
	}
}

func TestWiretapReadsClearMissesCrypto(t *testing.T) {
	w := &Wiretap{Label: "tap", MatchSrc: 1}
	clear := pkt(t, packet.TIP{Src: packet.MakeAddr(1, 1), Dst: 2}, &packet.TTP{DstPort: 80}, []byte("private"))
	w.Process(3, netsim.Forwarding, clear)

	c := &packet.Crypto{Nonce: 1}
	c.Seal([]byte("k"), []byte("private"), packet.LayerTypeRaw)
	cdata, err := packet.Serialize(c)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: 2},
		&packet.TTP{DstPort: 80, Next: packet.LayerTypeCrypto},
		&packet.Raw{Data: cdata})
	if err != nil {
		t.Fatal(err)
	}
	w.Process(3, netsim.Forwarding, enc)

	other := pkt(t, packet.TIP{Src: packet.MakeAddr(7, 1), Dst: 2}, &packet.TTP{DstPort: 80}, nil)
	w.Process(3, netsim.Forwarding, other)

	if len(w.Captured) != 2 {
		t.Fatalf("captured %d, want 2 (matching src only)", len(w.Captured))
	}
	if f := w.ReadableFraction(); f != 0.5 {
		t.Fatalf("readable fraction = %v, want 0.5", f)
	}
	if !w.Silent() {
		t.Fatal("wiretaps must be silent")
	}
}

func TestEncryptionBlocker(t *testing.T) {
	key := []byte("k")
	mk := func(flags uint8) []byte {
		c := &packet.Crypto{Flags: flags, Nonce: 2}
		c.Seal(key, []byte("x"), packet.LayerTypeRaw)
		cdata, err := packet.Serialize(c)
		if err != nil {
			t.Fatal(err)
		}
		data, err := packet.Serialize(
			&packet.TIP{TTL: 8, Proto: packet.LayerTypeCrypto, Src: 1, Dst: 2},
			&packet.Raw{Data: cdata})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	eb := &EncryptionBlocker{Label: "no-vpn"}
	if _, v := eb.Process(2, netsim.Forwarding, mk(0)); v != netsim.Drop {
		t.Fatal("opaque crypto passed")
	}
	clear := pkt(t, packet.TIP{Src: 1, Dst: 2}, &packet.TTP{DstPort: 80}, nil)
	if _, v := eb.Process(2, netsim.Forwarding, clear); v != netsim.Accept {
		t.Fatal("cleartext blocked")
	}
	eb2 := &EncryptionBlocker{Label: "visible-ok", AllowInspectable: true}
	if _, v := eb2.Process(2, netsim.Forwarding, mk(packet.CryptoInspectable)); v != netsim.Accept {
		t.Fatal("inspectable crypto blocked despite exemption")
	}
	if _, v := eb2.Process(2, netsim.Forwarding, mk(0)); v != netsim.Drop {
		t.Fatal("opaque crypto passed the exempting blocker")
	}
}

func TestPolicyFirewallOntologyBound(t *testing.T) {
	// A policy referencing an attribute outside the firewall's
	// vocabulary cannot be enforced — Analyze flags it, and at run time
	// the rule errors and is skipped (fail-safe).
	doc, err := policy.Parse(`policy "beyond" {
        rule future { when quantum-entangled == true then deny }
        default permit
    }`)
	if err != nil {
		t.Fatal(err)
	}
	if out := policy.Analyze(doc, Vocabulary); len(out) != 1 || out[0] != "quantum-entangled" {
		t.Fatalf("Analyze = %v", out)
	}
	fw := &PolicyFirewall{Label: "pfw", Doc: doc}
	data := pkt(t, packet.TIP{Src: 1, Dst: 2}, &packet.TTP{DstPort: 80}, nil)
	if _, v := fw.Process(2, netsim.Delivering, data); v != netsim.Accept {
		t.Fatal("unenforceable rule should fail open to default")
	}
	if fw.Errors == 0 {
		t.Fatal("ontology violation not recorded")
	}
}

func TestMiddleboxAccessors(t *testing.T) {
	boxes := []struct {
		name   string
		silent bool
		mb     netsim.Middlebox
	}{
		{"pf", false, &PortFirewall{Label: "pf"}},
		{"tf", false, &TrustFirewall{Label: "tf"}},
		{"pof", false, &PolicyFirewall{Label: "pof"}},
		{"nat", false, NewNAT("nat", 1)},
		{"rd", false, &Redirector{Label: "rd"}},
		{"tap", true, &Wiretap{Label: "tap"}},
		{"eb", false, &EncryptionBlocker{Label: "eb"}},
		{"nfw", false, &NegotiableFirewall{Label: "nfw"}},
	}
	for _, b := range boxes {
		if b.mb.Name() != b.name {
			t.Errorf("Name() = %q, want %q", b.mb.Name(), b.name)
		}
		if b.mb.Silent() != b.silent {
			t.Errorf("%s: Silent() = %v", b.name, b.mb.Silent())
		}
	}
	// Quiet variants report silent.
	quiets := []netsim.Middlebox{
		&PortFirewall{Label: "q", Quiet: true},
		&TrustFirewall{Label: "q", Quiet: true},
		&PolicyFirewall{Label: "q", Quiet: true},
		&Redirector{Label: "q", Quiet: true},
		&EncryptionBlocker{Label: "q", Quiet: true},
		&NegotiableFirewall{Label: "q", Quiet: true},
	}
	for _, mb := range quiets {
		if !mb.Silent() {
			t.Errorf("%T quiet variant not silent", mb)
		}
	}
}

func TestMiddleboxesPassMalformedTraffic(t *testing.T) {
	// Garbage bytes must pass every middlebox unharmed (fail-open for
	// classification, the forwarding plane drops malformed packets
	// itself).
	garbage := []byte{0xde, 0xad}
	boxes := []netsim.Middlebox{
		&PortFirewall{Label: "pf", BlockedPorts: map[uint16]bool{1: true}},
		&TrustFirewall{Label: "tf"},
		NewNAT("nat", 1),
		&Redirector{Label: "rd", MatchPort: 1},
		&Wiretap{Label: "tap"},
		&EncryptionBlocker{Label: "eb"},
		&NegotiableFirewall{Label: "nfw"},
	}
	for _, mb := range boxes {
		if out, v := mb.Process(1, netsim.Delivering, garbage); v != netsim.Accept || out != nil {
			t.Errorf("%T mangled garbage: %v %v", mb, out, v)
		}
	}
}
