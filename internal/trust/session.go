package trust

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// This file implements the authenticated end-to-end session
// establishment that makes §VI-A's "ultimate defense" concrete: two
// parties verify each other's certified identities (or note a peer's
// visible anonymity and decide anyway), run an X25519 key agreement
// signed under their identity keys, and derive a shared session key for
// the packet-layer Crypto transform. Everything downstream — wiretaps,
// inspecting ISPs — sees only the visibility the endpoints chose.

// Session establishment errors.
var (
	ErrPeerIdentity = errors.New("trust: peer identity verification failed")
	ErrHelloSig     = errors.New("trust: hello signature invalid")
)

// Hello is one side's key-agreement message.
type Hello struct {
	// From names the sender ("" for anonymous).
	From string
	// Scheme is the sender's chosen identity scheme.
	Scheme Scheme
	// EphemeralPub is the X25519 public key (32 bytes).
	EphemeralPub []byte
	// Chain certifies the sender's identity key (empty when anonymous
	// or pseudonymous-without-vouching).
	Chain []*Certificate
	// Sig is the identity key's signature over From|Scheme|EphemeralPub
	// (absent for anonymous senders, who have no identity key).
	Sig []byte
}

// helloBytes is the signed encoding.
func helloBytes(h *Hello) []byte {
	out := []byte{byte(h.Scheme)}
	out = append(out, byte(len(h.From)>>8), byte(len(h.From)))
	out = append(out, h.From...)
	out = append(out, h.EphemeralPub...)
	return out
}

// Endpoint is one party's session state.
type Endpoint struct {
	// Principal is the long-term identity (nil for anonymous parties).
	Principal *Principal
	// Chain certifies the principal (presented in hellos).
	Chain []*Certificate
	// Anchors are the roots this endpoint trusts for peer chains.
	Anchors Anchors
	// RequireCertified refuses peers without a verifiable chain — the
	// "choose not to communicate with you" stance toward anonymity.
	RequireCertified bool

	ephPriv *ecdh.PrivateKey
}

// NewHello generates this endpoint's ephemeral key and hello message.
// The key is derived from explicit RNG bytes (crypto/ecdh.GenerateKey
// deliberately injects nondeterminism, which would break reproducible
// simulations).
func (e *Endpoint) NewHello(rng *sim.RNG) (*Hello, error) {
	var seed [32]byte
	if _, err := (rngReader{rng}).Read(seed[:]); err != nil {
		return nil, err
	}
	priv, err := ecdh.X25519().NewPrivateKey(seed[:])
	if err != nil {
		return nil, fmt.Errorf("trust: ephemeral keygen: %w", err)
	}
	e.ephPriv = priv
	h := &Hello{EphemeralPub: priv.PublicKey().Bytes()}
	if e.Principal == nil {
		h.Scheme = Anonymous
		return h, nil
	}
	h.From = e.Principal.Name
	h.Scheme = e.Principal.Scheme
	h.Chain = e.Chain
	h.Sig = e.Principal.Sign(helloBytes(h))
	return h, nil
}

// Complete verifies the peer's hello and derives the shared session
// key. now is the simulated time for certificate expiry checks.
//
// Verification is as strict as this endpoint chose: with
// RequireCertified, any identity failure aborts; without it, an
// unverifiable peer is accepted as effectively anonymous — the
// endpoint's decision, visibly made (§V-B1).
func (e *Endpoint) Complete(peer *Hello, now sim.Time) ([]byte, error) {
	if e.ephPriv == nil {
		return nil, errors.New("trust: Complete before NewHello")
	}
	if err := e.verifyPeer(peer, now); err != nil {
		if e.RequireCertified {
			return nil, err
		}
		// Accepted as unverified; identity claims are ignored.
	}
	peerPub, err := ecdh.X25519().NewPublicKey(peer.EphemeralPub)
	if err != nil {
		return nil, fmt.Errorf("trust: peer ephemeral key: %w", err)
	}
	shared, err := e.ephPriv.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("trust: ecdh: %w", err)
	}
	// KDF: order-independent so both sides derive the same key.
	mac := hmac.New(sha256.New, []byte("tussle-session-v1"))
	a, b := e.ephPriv.PublicKey().Bytes(), peer.EphemeralPub
	if string(a) > string(b) {
		a, b = b, a
	}
	mac.Write(shared)
	mac.Write(a)
	mac.Write(b)
	return mac.Sum(nil), nil
}

// verifyPeer checks the peer's identity claims: scheme, chain, and
// hello signature.
func (e *Endpoint) verifyPeer(peer *Hello, now sim.Time) error {
	if peer.Scheme == Anonymous {
		return fmt.Errorf("%w: peer is visibly anonymous", ErrPeerIdentity)
	}
	if len(peer.Chain) == 0 {
		return fmt.Errorf("%w: no chain presented", ErrPeerIdentity)
	}
	if err := VerifyChain(peer.Chain, e.Anchors, now); err != nil {
		return fmt.Errorf("%w: %v", ErrPeerIdentity, err)
	}
	leaf := peer.Chain[0]
	if leaf.Subject != peer.From {
		return fmt.Errorf("%w: chain is for %q, hello from %q", ErrPeerIdentity, leaf.Subject, peer.From)
	}
	if !verifyWith(leaf.SubjectKey, helloBytes(peer), peer.Sig) {
		return ErrHelloSig
	}
	return nil
}

func verifyWith(pub []byte, msg, sig []byte) bool {
	p := Principal{Pub: pub}
	return p.Verify(msg, sig)
}

// Establish runs the full two-party handshake in one call (for tests
// and examples): both endpoints exchange hellos and must arrive at the
// same key.
func Establish(a, b *Endpoint, rng *sim.RNG, now sim.Time) (keyA, keyB []byte, err error) {
	ha, err := a.NewHello(rng)
	if err != nil {
		return nil, nil, err
	}
	hb, err := b.NewHello(rng)
	if err != nil {
		return nil, nil, err
	}
	keyA, err = a.Complete(hb, now)
	if err != nil {
		return nil, nil, fmt.Errorf("side A: %w", err)
	}
	keyB, err = b.Complete(ha, now)
	if err != nil {
		return nil, nil, fmt.Errorf("side B: %w", err)
	}
	return keyA, keyB, nil
}
