package transport

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Hop-by-hop reliability: the in-network alternative the end-to-end
// argument weighs. Each participating node holds a copy of every
// forwarded data segment and retransmits over its next link until the
// downstream node is seen to have taken custody. The implementation
// models link-layer ARQ as per-link duplication with probability of
// success, realized by resending through the simulator until the
// next-hop trace confirms receipt.
//
// Two properties the experiments surface:
//
//   - retransmission span: a loss near the destination costs only the
//     last link's retransmission, not the whole path (the performance
//     case *for* in-network function);
//   - state and failure points: every custody node is a new place where
//     the transfer can break — and none of it removes the need for
//     end-to-end checking, which is the argument's core.

// LinkARQ wraps a node so that every data segment it forwards is
// retried locally against the next hop until delivered or the retry
// budget is exhausted. It is installed as a middlebox observing
// forwarding plus a resend loop on the scheduler.
type LinkARQ struct {
	Label string
	// Retries is the per-segment local retry budget.
	Retries int
	// LinkRetransmissions counts local resends performed network-wide
	// when shared across nodes.
	LinkRetransmissions *int

	net *netsim.Network
	id  topology.NodeID
	rng *sim.RNG
	// LossProb is the probability this node's outbound link loses a
	// data segment (the lossy-link model for ARQ experiments).
	LossProb float64
}

// InstallLinkARQ attaches link-layer ARQ behaviour to a node: outbound
// data segments are lost with lossProb, and each loss is repaired
// locally up to retries times. counter accumulates local resends.
func InstallLinkARQ(net *netsim.Network, id topology.NodeID, lossProb float64, retries int, rng *sim.RNG, counter *int) {
	arq := &LinkARQ{
		Label: "link-arq", Retries: retries, LinkRetransmissions: counter,
		net: net, id: id, rng: rng, LossProb: lossProb,
	}
	net.Node(id).AddMiddlebox(arq)
}

// Name implements netsim.Middlebox.
func (a *LinkARQ) Name() string { return a.Label }

// Silent implements netsim.Middlebox.
func (a *LinkARQ) Silent() bool { return false }

// Process implements netsim.Middlebox: on forwarding, the segment is
// lost with LossProb; link ARQ repairs it locally with up to Retries
// resends (each resend is itself subject to loss).
func (a *LinkARQ) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if dir != netsim.Forwarding {
		return nil, netsim.Accept
	}
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return nil, netsim.Accept
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil || ttp.Flags&packet.FlagACK != 0 {
		return nil, netsim.Accept
	}
	if !a.rng.Bool(a.LossProb) {
		return nil, netsim.Accept // made it first try
	}
	// Local repair: each retry succeeds with 1-LossProb.
	for r := 0; r < a.Retries; r++ {
		if a.LinkRetransmissions != nil {
			*a.LinkRetransmissions++
		}
		if !a.rng.Bool(a.LossProb) {
			return nil, netsim.Accept // repaired locally
		}
	}
	return nil, netsim.Drop // local repair exhausted; end-to-end must recover
}

// LossyLink is the plain lossy link for the end-to-end-only comparison:
// same loss process, no local repair.
type LossyLink struct {
	Label    string
	LossProb float64
	rng      *sim.RNG
	// Lost counts drops.
	Lost int
}

// InstallLossyLink attaches a plain lossy link at a node.
func InstallLossyLink(net *netsim.Network, id topology.NodeID, lossProb float64, rng *sim.RNG) *LossyLink {
	l := &LossyLink{Label: "lossy-link", LossProb: lossProb, rng: rng}
	net.Node(id).AddMiddlebox(l)
	return l
}

// Name implements netsim.Middlebox.
func (l *LossyLink) Name() string { return l.Label }

// Silent implements netsim.Middlebox. Losses are silent, as in life.
func (l *LossyLink) Silent() bool { return true }

// Process implements netsim.Middlebox.
func (l *LossyLink) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if dir != netsim.Forwarding {
		return nil, netsim.Accept
	}
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return nil, netsim.Accept
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil || ttp.Flags&packet.FlagACK != 0 {
		return nil, netsim.Accept
	}
	if l.rng.Bool(l.LossProb) {
		l.Lost++
		return nil, netsim.Drop
	}
	return nil, netsim.Accept
}
