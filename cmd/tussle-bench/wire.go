package main

// The wire sweep: committable measurements of the live UDP engine,
// recorded in the suiteBench schema so the existing -compare gate holds
// BENCH_wire.json against a fresh run. Both figures are per-packet so
// the zero-tolerance allocs/op gate stays stable: the loopback side
// makes a bounded number of per-run allocations (client goroutines,
// socket setup) that vanish under integer division by the packet count,
// while any per-packet allocation would register as ≥1.

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/wire"
)

var wireSizes = []struct {
	id    string
	count int
	run   func(*wireBenchState, int) error
}{
	// wire-process: the decision kernel alone (filter → decode → TTL
	// patch → route), no sockets. The per-core ceiling.
	{"wire-process", 2_000_000, func(s *wireBenchState, n int) error { return s.proc.Run(n) }},
	// wire-loopback: the full engine over real UDP on loopback — one op
	// is a complete client→server→client round trip.
	{"wire-loopback", 200_000, func(s *wireBenchState, n int) error {
		res, err := s.loop.Run(n)
		if err != nil {
			return err
		}
		if res.Received == 0 {
			return fmt.Errorf("no echoes came back: %+v", res)
		}
		return nil
	}},
	// wire-mp-roundtrip: the striped multipath transfer over real UDP —
	// one op is one data segment out across the three-path stripe and
	// its cumulative ACK back, reassembly verified byte-exact per run.
	{"wire-mp-roundtrip", 50_000, func(s *wireBenchState, n int) error {
		sum, err := s.mp.Run(n)
		if err != nil {
			return err
		}
		if sum.Acks == 0 {
			return fmt.Errorf("no acknowledgments built: %+v", sum)
		}
		return nil
	}},
}

type wireBenchState struct {
	proc *wire.ProcessBench
	loop *wire.LoopbackBench
	mp   *wire.MultipathLoopbackBench
}

// benchWire measures the wire workloads; ns/op is the per-packet
// minimum across iterations, allocs the per-packet minimum (see the
// package comment for why per-packet).
func benchWire(iters int) suiteBench {
	sb := suiteBench{
		Iters:       iters,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: runtime.GOMAXPROCS(0),
		SpeedupNote: fmt.Sprintf(
			"wire sweep on a %d-core host: wire-process is the single-core kernel ceiling; wire-loopback round-trips client and server on the same cores, so its pps is the documented fallback when cores < 2",
			runtime.NumCPU()),
	}
	proc, err := wire.NewProcessBench()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussle-bench: wire: %v\n", err)
		os.Exit(1)
	}
	loop, err := wire.NewLoopbackBench(runtime.GOMAXPROCS(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussle-bench: wire: %v\n", err)
		os.Exit(1)
	}
	defer loop.Close()
	mp, err := wire.NewMultipathLoopbackBench(runtime.GOMAXPROCS(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussle-bench: wire: %v\n", err)
		os.Exit(1)
	}
	defer mp.Close()
	st := &wireBenchState{proc: proc, loop: loop, mp: mp}

	var m0, m1 runtime.MemStats
	for _, sz := range wireSizes {
		if err := sz.run(st, min(sz.count, 20_000)); err != nil { // warm
			fmt.Fprintf(os.Stderr, "tussle-bench: %s: %v\n", sz.id, err)
			os.Exit(1)
		}
		var minNs int64
		var minAllocs, minBytes uint64
		for i := 0; i < iters; i++ {
			runtime.GC()
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			if err := sz.run(st, sz.count); err != nil {
				fmt.Fprintf(os.Stderr, "tussle-bench: %s: %v\n", sz.id, err)
				os.Exit(1)
			}
			el := time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&m1)
			if i == 0 || el < minNs {
				minNs = el
			}
			if a := m1.Mallocs - m0.Mallocs; i == 0 || a < minAllocs {
				minAllocs = a
			}
			if b := m1.TotalAlloc - m0.TotalAlloc; i == 0 || b < minBytes {
				minBytes = b
			}
		}
		n := uint64(sz.count)
		sb.Experiments = append(sb.Experiments, expBench{
			ID:          sz.id,
			NsPerOp:     minNs / int64(n),
			AllocsPerOp: minAllocs / n,
			BytesPerOp:  minBytes / n,
		})
	}
	return sb
}
