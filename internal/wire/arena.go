package wire

// Arena is a fixed-size pooled buffer arena: one contiguous slab cut
// into equal slots, with a LIFO free list of slot indices. Workers draw
// their receive and transmit buffers from a private Arena so the
// steady-state packet path never allocates — the wire-side mirror of
// the netsim flight pool. An Arena is not goroutine-safe; each worker
// owns its own.
type Arena struct {
	slab []byte
	slot int
	free []int32
	held []bool // per-slot checked-out flag (double-put guard)
}

// NewArena builds an arena of slots buffers, each slotSize bytes, backed
// by a single allocation.
func NewArena(slots, slotSize int) *Arena {
	a := &Arena{
		slab: make([]byte, slots*slotSize),
		slot: slotSize,
		free: make([]int32, slots),
		held: make([]bool, slots),
	}
	// LIFO with slot 0 on top keeps allocation order deterministic.
	for i := range a.free {
		a.free[i] = int32(slots - 1 - i)
	}
	return a
}

// SlotSize returns the byte capacity of each slot.
func (a *Arena) SlotSize() int { return a.slot }

// Slots returns the total number of slots.
func (a *Arena) Slots() int { return len(a.held) }

// InUse returns the number of slots currently checked out.
func (a *Arena) InUse() int { return len(a.held) - len(a.free) }

// Get checks out a slot, returning its index and the full-size buffer.
// It returns (-1, nil) when the arena is exhausted — the caller must
// shed load, never allocate a replacement.
func (a *Arena) Get() (int32, []byte) {
	k := len(a.free)
	if k == 0 {
		return -1, nil
	}
	idx := a.free[k-1]
	a.free = a.free[:k-1]
	a.held[idx] = true
	return idx, a.Data(idx)
}

// Data returns slot idx's full buffer (length SlotSize).
func (a *Arena) Data(idx int32) []byte {
	off := int(idx) * a.slot
	return a.slab[off : off+a.slot : off+a.slot]
}

// Put returns a slot to the free list. Putting a slot that is not
// checked out panics — it would hand one buffer to two packets.
func (a *Arena) Put(idx int32) {
	if idx < 0 || int(idx) >= len(a.held) || !a.held[idx] {
		panic("wire: Put of free or out-of-range arena slot")
	}
	a.held[idx] = false
	a.free = append(a.free, idx)
}
