// Command tussle-check runs property-based invariant sweeps over the
// simulator: seeded random topologies, traffic matrices, and chaos fault
// plans, executed with the runtime invariant checker armed. Failures are
// automatically shrunk (delta debugging over the fault plan and traffic
// matrix) to minimal reproducers emitted as canonical JSON.
//
// Usage:
//
//	tussle-check -trials 500 -seed 42                 # sweep
//	tussle-check -invariants conservation,loop-free   # arm a subset
//	tussle-check -repro repro.json                    # write first shrunk repro
//	tussle-check -replay repro.json                   # re-run a reproducer
//	tussle-check -multipath -trials 300               # stress the multipath data plane
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/invariant"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tussle-check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		trials     = fs.Int("trials", 100, "number of seeded scenarios to run")
		seed       = fs.Uint64("seed", 42, "sweep seed (salts every trial)")
		invariants = fs.String("invariants", "all", "comma-separated invariant subset, or \"all\"")
		shrink     = fs.Bool("shrink", true, "shrink failures to minimal reproducers")
		maxShrink  = fs.Int("maxshrink", 400, "max candidate runs per shrink")
		reproPath  = fs.String("repro", "", "write the first shrunk reproducer to this file")
		replayPath = fs.String("replay", "", "replay a reproducer file instead of sweeping")
		multi      = fs.Bool("multipath", false, "force every generated transfer onto the multipath sender")
		sharded    = fs.Bool("sharded", false, "sweep sharded scale scenarios (checker attached across shards)")
		shards     = fs.Int("shards", 0, "with -sharded: pin the shard count (0 rotates 2/4/8)")
		verbose    = fs.Bool("v", false, "print per-failure violation details")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	enabled, err := invariant.ParseSet(*invariants)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *replayPath != "" {
		return replay(*replayPath, enabled, stdout, stderr)
	}

	if *sharded {
		res := invariant.SweepSharded(invariant.Config{
			Trials: *trials, Seed: *seed, Invariants: enabled,
		}, *shards)
		if res.Clean() {
			fmt.Fprintf(stdout, "tussle-check: %d sharded trials clean (seed %d, checker attached across shards)\n",
				res.Trials, *seed)
			return 0
		}
		fmt.Fprintf(stdout, "tussle-check: %d of %d sharded trials FAILED (seed %d)\n",
			len(res.Failures), res.Trials, *seed)
		for _, f := range res.Failures {
			fmt.Fprintf(stdout, "  trial %d (seed %d): %d violation(s), first: %s\n",
				f.Trial, f.Seed, len(f.Violations), f.Violations[0].String())
			if *verbose {
				for _, v := range f.Violations[1:] {
					fmt.Fprintf(stdout, "    %s\n", v.String())
				}
			}
		}
		return 1
	}

	res := invariant.Sweep(invariant.Config{
		Trials:         *trials,
		Seed:           *seed,
		Invariants:     enabled,
		Shrink:         *shrink,
		MaxShrinkRuns:  *maxShrink,
		ForceMultipath: *multi,
	})
	if res.Clean() {
		fmt.Fprintf(stdout, "tussle-check: %d trials clean (seed %d, %d invariants armed)\n",
			res.Trials, *seed, len(enabled))
		return 0
	}

	fmt.Fprintf(stdout, "tussle-check: %d of %d trials FAILED (seed %d)\n",
		len(res.Failures), res.Trials, *seed)
	for _, f := range res.Failures {
		fmt.Fprintf(stdout, "  trial %d (seed %d): %d violation(s), first: %s\n",
			f.Trial, f.Seed, len(f.Violations), f.Violations[0].String())
		if *verbose {
			for _, v := range f.Violations[1:] {
				fmt.Fprintf(stdout, "    %s\n", v.String())
			}
		}
		if f.Repro != nil {
			fmt.Fprintf(stdout, "    shrunk: %d plan events, %d traffic entries\n",
				len(f.Repro.Scenario.Plan.Events), len(f.Repro.Scenario.Traffic))
		}
	}
	if *reproPath != "" {
		if err := writeFirstRepro(res, *reproPath); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "reproducer written to %s\n", *reproPath)
	}
	return 1
}

// writeFirstRepro emits the first shrunk reproducer as canonical JSON.
func writeFirstRepro(res *invariant.Result, path string) error {
	for _, f := range res.Failures {
		if f.Repro == nil {
			continue
		}
		buf, err := f.Repro.Encode()
		if err != nil {
			return err
		}
		return os.WriteFile(path, buf, 0o644)
	}
	return fmt.Errorf("tussle-check: no shrunk reproducer to write")
}

// replay re-runs a reproducer file and reports whether it still fires.
func replay(path string, enabled map[string]bool, stdout, stderr io.Writer) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	r, err := invariant.ParseRepro(buf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	vs := invariant.Replay(r, enabled)
	if len(vs) == 0 {
		fmt.Fprintf(stdout, "tussle-check: reproducer %s did NOT fire (0 violations)\n", path)
		return 1
	}
	fmt.Fprintf(stdout, "tussle-check: reproducer fired %d violation(s):\n", len(vs))
	for _, v := range vs {
		fmt.Fprintf(stdout, "  %s\n", v.String())
	}
	return 0
}
