package gametheory

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPureNashPrisonersDilemma(t *testing.T) {
	g := PrisonersDilemma()
	eqs := g.PureNash()
	if len(eqs) != 1 || eqs[0] != [2]int{1, 1} {
		t.Fatalf("PD equilibria = %v, want defect/defect", eqs)
	}
}

func TestPureNashStagHunt(t *testing.T) {
	eqs := StagHunt().PureNash()
	if len(eqs) != 2 {
		t.Fatalf("stag hunt equilibria = %v, want 2", eqs)
	}
}

func TestPureNashMatchingPenniesNone(t *testing.T) {
	if eqs := MatchingPennies().PureNash(); len(eqs) != 0 {
		t.Fatalf("matching pennies has pure equilibria: %v", eqs)
	}
}

func TestClassify(t *testing.T) {
	if c := MatchingPennies().Classify(); c != Conflict {
		t.Fatalf("matching pennies = %v", c)
	}
	if c := StagHunt().Classify(); c != Coordination {
		t.Fatalf("stag hunt = %v", c)
	}
	if c := PrisonersDilemma().Classify(); c != MixedMotive {
		t.Fatalf("prisoners dilemma = %v", c)
	}
	if c := BattleOfTheSexes().Classify(); c != MixedMotive {
		t.Fatalf("battle of the sexes = %v", c)
	}
}

func TestIsZeroSum(t *testing.T) {
	if !MatchingPennies().IsZeroSum() {
		t.Fatal("matching pennies should be zero-sum")
	}
	if PrisonersDilemma().IsZeroSum() {
		t.Fatal("PD is not zero-sum")
	}
}

func TestNash2x2MixedMatchingPennies(t *testing.T) {
	m, err := MatchingPennies().Nash2x2()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range append(m.Row, m.Col...) {
		if math.Abs(p-0.5) > 1e-9 {
			t.Fatalf("equilibrium = %+v, want uniform", m)
		}
	}
	if math.Abs(m.Value) > 1e-9 {
		t.Fatalf("value = %v, want 0", m.Value)
	}
}

func TestNash2x2PureWhenExists(t *testing.T) {
	m, err := PrisonersDilemma().Nash2x2()
	if err != nil {
		t.Fatal(err)
	}
	if m.Row[1] != 1 || m.Col[1] != 1 {
		t.Fatalf("PD equilibrium = %+v, want pure defect", m)
	}
	if m.Value != 1 {
		t.Fatalf("PD value = %v", m.Value)
	}
}

func TestNash2x2WrongSize(t *testing.T) {
	g := ZeroSum("big", [][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := g.Nash2x2(); err == nil {
		t.Fatal("3-column game accepted")
	}
}

func TestNash2x2HasZeroExploitability(t *testing.T) {
	for _, g := range []*Game{MatchingPennies(), PrisonersDilemma(), StagHunt(), BattleOfTheSexes()} {
		m, err := g.Nash2x2()
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if e := g.Exploitability(m); e > 1e-9 {
			t.Fatalf("%s: exploitability %v at claimed equilibrium", g.Name, e)
		}
	}
}

func TestFictitiousPlayConvergesZeroSum(t *testing.T) {
	m := MatchingPennies().FictitiousPlay(20000)
	if math.Abs(m.Value) > 0.02 {
		t.Fatalf("FP value = %v, want ~0", m.Value)
	}
	for _, p := range m.Row {
		if math.Abs(p-0.5) > 0.05 {
			t.Fatalf("FP row mix = %v", m.Row)
		}
	}
}

func TestFictitiousPlayLowExploitability(t *testing.T) {
	g := ZeroSum("rps", [][]float64{
		{0, -1, 1},
		{1, 0, -1},
		{-1, 1, 0},
	})
	m := g.FictitiousPlay(50000)
	if e := g.Exploitability(m); e > 0.05 {
		t.Fatalf("RPS exploitability after FP = %v", e)
	}
}

func TestZeroSumValueRandomGamesQuick(t *testing.T) {
	// For any zero-sum game, the FP value must lie between the pure
	// maximin and minimax bounds.
	rng := sim.NewRNG(1)
	f := func(seed uint16) bool {
		n := int(seed%3) + 2
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Range(-5, 5)
			}
		}
		g := ZeroSum("rand", a)
		v := g.Value(5000)
		// maximin <= v <= minimax
		maximin := math.Inf(-1)
		for i := range a {
			rowMin := math.Inf(1)
			for j := range a[i] {
				rowMin = math.Min(rowMin, a[i][j])
			}
			maximin = math.Max(maximin, rowMin)
		}
		minimax := math.Inf(1)
		for j := range a[0] {
			colMax := math.Inf(-1)
			for i := range a {
				colMax = math.Max(colMax, a[i][j])
			}
			minimax = math.Min(minimax, colMax)
		}
		return v >= maximin-0.15 && v <= minimax+0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBestResponseDynamicsConvergesPD(t *testing.T) {
	profiles, converged := PrisonersDilemma().BestResponseDynamics(0, 0, 100)
	if !converged {
		t.Fatal("PD best response should converge")
	}
	last := profiles[len(profiles)-1]
	if last != [2]int{1, 1} {
		t.Fatalf("converged to %v", last)
	}
}

func TestBestResponseDynamicsCyclesMatchingPennies(t *testing.T) {
	_, converged := MatchingPennies().BestResponseDynamics(0, 0, 100)
	if converged {
		t.Fatal("matching pennies best response should cycle forever — no stable point")
	}
}

func TestReplicatorDominantStrategyTakesOver(t *testing.T) {
	// Symmetric PD payoff matrix: defect strictly dominates.
	a := [][]float64{{3, 0}, {5, 1}}
	x := Replicator(a, []float64{0.9, 0.1}, 2000)
	if x[1] < 0.99 {
		t.Fatalf("defection share = %v, want ~1", x[1])
	}
}

func TestReplicatorPreservesSimplex(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		a := [][]float64{
			{rng.Range(-2, 2), rng.Range(-2, 2)},
			{rng.Range(-2, 2), rng.Range(-2, 2)},
		}
		p := rng.Float64()
		x := Replicator(a, []float64{p, 1 - p}, 500)
		total := x[0] + x[1]
		return x[0] >= -1e-9 && x[1] >= -1e-9 && math.Abs(total-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedTitForTatSustainsCooperation(t *testing.T) {
	g := PrisonersDilemma()
	p1, p2 := PlayRepeated(g, TitForTat{}, TitForTat{}, 100)
	if p1 != 300 || p2 != 300 {
		t.Fatalf("TFT vs TFT = %v,%v; want full cooperation 300,300", p1, p2)
	}
}

func TestRepeatedDefectorExploitsCooperator(t *testing.T) {
	g := PrisonersDilemma()
	p1, p2 := PlayRepeated(g, AlwaysDefect{}, AlwaysCooperate{}, 10)
	if p1 != 50 || p2 != 0 {
		t.Fatalf("AD vs AC = %v,%v", p1, p2)
	}
}

func TestGrimTriggerPunishesForever(t *testing.T) {
	g := PrisonersDilemma()
	p1, _ := PlayRepeated(g, GrimTrigger{}, AlwaysDefect{}, 10)
	// Grim cooperates once (sucker), then defects 9 times.
	if p1 != 0+9*1 {
		t.Fatalf("grim payoff = %v", p1)
	}
}

func TestTournamentTFTBeatsAlwaysDefectOverall(t *testing.T) {
	g := PrisonersDilemma()
	scores := Tournament(g, []RepeatedStrategy{TitForTat{}, AlwaysDefect{}, AlwaysCooperate{}, GrimTrigger{}}, 200)
	if scores["tit-for-tat"] <= scores["always-defect"] {
		t.Fatalf("TFT %v should outscore AD %v in a mixed population",
			scores["tit-for-tat"], scores["always-defect"])
	}
}

func TestVickreyWinnerPaysSecondPrice(t *testing.T) {
	res, ok := Vickrey([]Bid{{"a", 10}, {"b", 7}, {"c", 3}})
	if !ok || res.Winner != "a" || res.Price != 7 {
		t.Fatalf("vickrey = %+v", res)
	}
}

func TestVickreySingleBidder(t *testing.T) {
	res, ok := Vickrey([]Bid{{"solo", 5}})
	if !ok || res.Winner != "solo" || res.Price != 0 {
		t.Fatalf("single-bidder vickrey = %+v", res)
	}
}

func TestVickreyEmpty(t *testing.T) {
	if _, ok := Vickrey(nil); ok {
		t.Fatal("empty auction produced a winner")
	}
}

func TestVickreyTruthfulFirstPriceNot(t *testing.T) {
	others := []Bid{{"b", 6}, {"c", 4}}
	grid := []float64{0, 1, 2, 3, 4, 5, 5.5, 6.5, 7, 8, 9, 10, 12}
	if gain := TruthfulnessViolation(Vickrey, "a", 8, others, grid); gain > 1e-12 {
		t.Fatalf("Vickrey exploitable by %v", gain)
	}
	if gain := TruthfulnessViolation(FirstPrice, "a", 8, others, grid); gain <= 0 {
		t.Fatal("first-price should reward shading the bid")
	}
}

func TestVickreyTruthfulQuick(t *testing.T) {
	rng := sim.NewRNG(3)
	f := func(seed uint32) bool {
		trueVal := rng.Range(0, 10)
		others := []Bid{{"b", rng.Range(0, 10)}, {"c", rng.Range(0, 10)}}
		grid := make([]float64, 21)
		for i := range grid {
			grid[i] = float64(i) / 2
		}
		return TruthfulnessViolation(Vickrey, "a", trueVal, others, grid) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVCGAllocate(t *testing.T) {
	res := VCGAllocate([]Bid{{"a", 9}, {"b", 7}, {"c", 5}, {"d", 3}}, 2)
	if len(res.Winners) != 2 || res.Winners[0] != "a" || res.Winners[1] != "b" {
		t.Fatalf("winners = %v", res.Winners)
	}
	if res.Price != 5 {
		t.Fatalf("price = %v, want the externality 5", res.Price)
	}
}

func TestVCGAllEdgeCases(t *testing.T) {
	if res := VCGAllocate(nil, 2); len(res.Winners) != 0 {
		t.Fatal("empty auction allocated")
	}
	res := VCGAllocate([]Bid{{"a", 5}}, 3)
	if len(res.Winners) != 1 || res.Price != 0 {
		t.Fatalf("undersubscribed = %+v", res)
	}
}

func TestNewPanicsOnBadMatrices(t *testing.T) {
	cases := [][2][][]float64{
		{{}, {}},
		{{{1}}, {{1}, {2}}},
		{{{1, 2}, {3}}, {{1, 2}, {3, 4}}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New("bad", c[0], c[1])
		}()
	}
}
