package main

// Wire mode: tussled as a live UDP element. -listen turns the process
// into a TIP forwarding/delivery node driven by internal/wire's batched
// engine; -blast turns it into the matching load generator. The
// scenario mode in main.go is untouched — wire mode is dispatched
// before it.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport/multipath"
	"repro/internal/wire"
)

// peerFlag accumulates repeated -peer id=addr mappings.
type peerFlag map[topology.NodeID]netip.AddrPort

func (p peerFlag) String() string {
	var parts []string
	for id, a := range p {
		parts = append(parts, fmt.Sprintf("%d=%s", id, a))
	}
	return strings.Join(parts, ",")
}

func (p peerFlag) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=host:port, got %q", v)
	}
	n, err := strconv.ParseUint(id, 10, 16)
	if err != nil {
		return fmt.Errorf("peer id %q: %w", id, err)
	}
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		return fmt.Errorf("peer addr %q: %w", addr, err)
	}
	p[topology.NodeID(n)] = ap
	return nil
}

// parseTIPAddr reads "provider.host" (e.g. "4.1") into a packet.Addr.
func parseTIPAddr(s string) (packet.Addr, error) {
	ps, hs, ok := strings.Cut(s, ".")
	if !ok {
		return 0, fmt.Errorf("want provider.host, got %q", s)
	}
	p, err := strconv.ParseUint(ps, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("provider %q: %w", ps, err)
	}
	h, err := strconv.ParseUint(hs, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("host %q: %w", hs, err)
	}
	return packet.MakeAddr(uint16(p), uint16(h)), nil
}

// runServe is tussled -listen: serve TIP over UDP until SIGINT, then
// flush profiles and print the final counters.
func runServe(args []string) int {
	fs := flag.NewFlagSet("tussled -listen", flag.ExitOnError)
	listen := fs.String("listen", "", "UDP address to serve TIP on")
	node := fs.Uint("node", 1, "this element's node ID (TIP provider number)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "receive workers (one socket each where SO_REUSEPORT is available)")
	batch := fs.Int("batch", 64, "recvmmsg/sendmmsg batch size")
	echo := fs.Bool("echo", false, "echo delivered datagrams back to the sender")
	srcroute := fs.Bool("srcroute", false, "honor source-route options")
	srcroutePaid := fs.Bool("srcroute-paid", false, "honor source routes only when the packet carries a payment option")
	srcroutePolicy := fs.String("srcroute-policy", "", "honor source routes only when this TPL expression holds (attrs: paid, ttl, dst-provider, src-provider, waypoint-provider); compiled once, metered per packet; implies -srcroute")
	filterStats := fs.Bool("filter-stats", false, "print counters (with the sanity-filter verdict histogram) every second")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the serve loop to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile (at shutdown) to this file")
	mprecv := fs.Uint("mprecv", 0, "reassemble multipath streams delivered to this TTP port (0 = off)")
	impairPath := fs.Int("impair-path", 0, "install a path impairment middlebox for this on-wire path ID (0 = none; toggle with SIGUSR1)")
	impairPort := fs.Uint("impair-port", 0, "restrict the path impairment to this TTP destination port (0 = any)")
	impairOn := fs.Bool("impair-on", false, "start with the path impairment enabled")
	obsFile := fs.String("obs", "", "write the obs counter snapshot (JSON) at shutdown to this file")
	peers := peerFlag{}
	fs.Var(peers, "peer", "next-hop mapping id=host:port (repeatable)")
	fs.Parse(args)

	var srPolicy *netsim.SourceRoutePolicy
	if *srcroutePolicy != "" {
		var err error
		if srPolicy, err = netsim.CompileSourceRoutePolicy(*srcroutePolicy); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: -srcroute-policy: %v\n", err)
			return 1
		}
	}

	id := topology.NodeID(*node)
	peerIDs := make([]topology.NodeID, 0, len(peers))
	for pid := range peers {
		peerIDs = append(peerIDs, pid)
	}
	// Provider-is-node routing: a destination in provider P goes to the
	// peer serving node P. No peer, no route.
	route := func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
		next := topology.NodeID(dst.Provider())
		_, ok := peers[next]
		return next, ok
	}
	// One PathImpairment instance is shared by every worker's dataplane
	// chain (it is stateless apart from atomics), so one SIGUSR1 flips
	// the fault for the whole engine.
	var impair *wire.PathImpairment
	if *impairPath > 0 {
		impair = &wire.PathImpairment{PathID: *impairPath, Port: uint16(*impairPort)}
		impair.SetEnabled(*impairOn)
	}
	var mpRecv *wire.MultipathReceiver
	var deliver func(data []byte, from netip.AddrPort) []byte
	if *mprecv > 0 {
		mpRecv = wire.NewMultipathReceiver(id, uint16(*mprecv), *workers**batch*2)
		deliver = mpRecv.Deliver
	}
	eng, err := wire.New(wire.Config{
		Listen:  *listen,
		Workers: *workers,
		Batch:   *batch,
		Echo:    *echo,
		Deliver: deliver,
		Peers:   peers,
		NewDataplane: func() *wire.Dataplane {
			var mbs []netsim.Middlebox
			if impair != nil {
				mbs = append(mbs, impair)
			}
			return wire.NewDataplane(wire.NodeConfig{
				ID:                           id,
				Route:                        route,
				HonorSourceRoutes:            *srcroute || *srcroutePaid || srPolicy != nil,
				RequirePaymentForSourceRoute: *srcroutePaid,
				SourceRoutePolicy:            srPolicy,
				Middleboxes:                  mbs,
				Peers:                        peerIDs,
			})
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: %v\n", err)
		return 1
	}

	var cpuf *os.File
	if *cpuprofile != "" {
		if cpuf, err = os.Create(*cpuprofile); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(cpuf); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: cpuprofile: %v\n", err)
			return 1
		}
	}

	fmt.Printf("tussled: node %d serving TIP on %s (%d workers, batch %d)\n", id, eng.Addr(), *workers, *batch)
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Run()
	}()

	if impair != nil {
		usr := make(chan os.Signal, 1)
		signal.Notify(usr, syscall.SIGUSR1)
		go func() {
			for range usr {
				v := !impair.Enabled()
				impair.SetEnabled(v)
				fmt.Printf("tussled: path impairment path=%d enabled=%t dropped=%d\n",
					impair.PathID, v, impair.Dropped())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *filterStats {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
	loop:
		for {
			select {
			case <-tick.C:
				fmt.Println(eng.Stats().String())
			case <-sig:
				break loop
			}
		}
	} else {
		<-sig
	}

	eng.Close()
	<-done
	if cpuf != nil {
		pprof.StopCPUProfile()
		cpuf.Close()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tussled: memprofile: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: memprofile: %v\n", err)
			return 1
		}
		f.Close()
	}
	fmt.Println(eng.Stats().String())
	if impair != nil {
		fmt.Printf("path-impair: path=%d enabled=%t dropped=%d\n", impair.PathID, impair.Enabled(), impair.Dropped())
	}
	if mpRecv != nil {
		sum := mpRecv.Summary()
		fmt.Printf("multipath-recv: bytes=%d stream-sha256=%x acks=%d dups=%d\n",
			sum.Bytes, sum.SHA256, sum.Acks, sum.Dups)
		ids := make([]int, 0, len(sum.PathSegments))
		for pid := range sum.PathSegments {
			ids = append(ids, pid)
		}
		sort.Ints(ids)
		for _, pid := range ids {
			fmt.Printf("multipath-recv: path=%d segments=%d\n", pid, sum.PathSegments[pid])
		}
	}
	if *obsFile != "" {
		reg := obs.NewRegistry()
		if mpRecv != nil {
			mpRecv.PublishObs(reg)
		}
		if err := writeObsSnapshot(*obsFile, reg); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: -obs: %v\n", err)
			return 1
		}
	}
	return 0
}

// runBlast is tussled -blast: the load-generator side.
func runBlast(args []string) int {
	fs := flag.NewFlagSet("tussled -blast", flag.ExitOnError)
	target := fs.String("blast", "", "target UDP address to blast TIP datagrams at")
	count := fs.Int("count", 100000, "datagrams to send")
	dst := fs.String("dst", "1.1", "TIP destination address as provider.host (default delivers at a default -listen node)")
	src := fs.String("src", "1.1", "TIP source address as provider.host")
	payload := fs.String("payload", "tussled-blast", "datagram payload")
	batch := fs.Int("batch", 64, "sendmmsg batch size")
	conns := fs.Int("conns", 1, "parallel client sockets (distinct source ports)")
	echo := fs.Bool("echo", false, "expect echoes back and pace against them")
	mp := fs.Bool("multipath", false, "stripe a reliable stream across paths instead of blasting raw datagrams")
	mpStrategy := fs.String("mpstrategy", "shortest-k", "multipath scheduling strategy")
	mpBytes := fs.Int("mpbytes", 1<<20, "multipath stream size in bytes (seed-derived payload)")
	mpPaths := fs.Int("mppaths", 3, "multipath path count")
	mpSeed := fs.Uint64("mpseed", 42, "multipath payload/jitter seed")
	mpWindow := fs.Int("mpwindow", 64, "multipath send window in segments")
	mpSeg := fs.Int("mpseg", 1024, "multipath segment size in bytes")
	mpPort := fs.Uint("port", 7777, "multipath receiver TTP port")
	mpTimeout := fs.Duration("mptimeout", 60*time.Second, "multipath transfer deadline")
	obsFile := fs.String("obs", "", "write the obs counter snapshot (JSON) to this file")
	fs.Parse(args)

	ap, err := netip.ParseAddrPort(*target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: blast target: %v\n", err)
		return 64
	}
	d, err := parseTIPAddr(*dst)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: -dst: %v\n", err)
		return 64
	}
	s, err := parseTIPAddr(*src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: -src: %v\n", err)
		return 64
	}
	if *mp {
		return runBlastMultipath(ap, s, d, mpBlastOpts{
			strategy: *mpStrategy, bytes: *mpBytes, paths: *mpPaths,
			seed: *mpSeed, window: *mpWindow, seg: *mpSeg,
			port: uint16(*mpPort), batch: *batch, timeout: *mpTimeout,
			obsFile: *obsFile,
		})
	}
	data, err := packet.Serialize(
		&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw, Src: s, Dst: d},
		&packet.Raw{Data: []byte(*payload)})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: %v\n", err)
		return 1
	}
	res, err := wire.Blast(wire.BlastConfig{
		Target:  ap,
		Count:   *count,
		Packets: [][]byte{data},
		Batch:   *batch,
		Conns:   *conns,
		Echo:    *echo,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: blast: %v\n", err)
		return 1
	}
	fmt.Printf("blast: sent=%d send-errors=%d received=%d lost=%d elapsed=%s pps=%.0f\n",
		res.Sent, res.SendErrors, res.Received, res.Lost, res.Elapsed.Round(time.Millisecond), res.PPS())
	return 0
}

// mpBlastOpts carries the -multipath blast knobs.
type mpBlastOpts struct {
	strategy string
	bytes    int
	paths    int
	seed     uint64
	window   int
	seg      int
	port     uint16
	batch    int
	timeout  time.Duration
	obsFile  string
}

// runBlastMultipath is tussled -blast -multipath: stripe one reliable,
// seed-derived stream across n source-routed paths to the target and
// report the transfer outcome. The payload hash printed here must match
// the stream hash the -mprecv server prints at shutdown.
func runBlastMultipath(target netip.AddrPort, src, dst packet.Addr, o mpBlastOpts) int {
	strat, err := multipath.StrategyByName(o.strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: -mpstrategy: %v\n", err)
		return 64
	}
	if o.bytes <= 0 || o.paths <= 0 {
		fmt.Fprintln(os.Stderr, "tussled: -mpbytes and -mppaths must be positive")
		return 64
	}
	// Seed-derived payload: both ends can verify byte-exact delivery
	// from (seed, size) alone, no shared file needed.
	payload := make([]byte, o.bytes)
	rng := sim.NewRNG(o.seed)
	for i := 0; i < len(payload); i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8 && i+j < len(payload); j++ {
			payload[i+j] = byte(v >> (8 * j))
		}
	}

	tcfg := multipath.DefaultConfig()
	tcfg.Seed = o.seed
	tcfg.Paths = o.paths
	if o.window > 0 {
		tcfg.Window = o.window
	}
	if o.seg > 0 {
		tcfg.SegmentSize = o.seg
	}
	paths := make([]wire.MPPath, o.paths)
	for i := range paths {
		paths[i] = wire.MPPath{Via: target, Latency: sim.Millisecond}
	}
	snd, err := wire.NewMultipathSender(wire.MultipathSenderConfig{
		Transport: tcfg,
		Strategy:  strat,
		Src:       topology.NodeID(src.Provider()),
		Dst:       topology.NodeID(dst.Provider()),
		Port:      o.port,
		Paths:     paths,
		Batch:     o.batch,
	}, payload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: multipath: %v\n", err)
		return 1
	}
	var reg *obs.Registry
	if o.obsFile != "" {
		reg = obs.NewRegistry()
		snd.AttachObs(reg)
	}
	snd.Start()
	finished := snd.Wait(o.timeout)
	snd.Close()

	st := snd.Stats()
	fmt.Printf("multipath: strategy=%s bytes=%d payload-sha256=%x\n", o.strategy, len(payload), sha256.Sum256(payload))
	fmt.Printf("multipath: done=%t failed=%t reason=%q timed-out=%t\n", st.Done, st.Failed, st.FailReason, !finished)
	fmt.Printf("multipath: segments=%d sent=%d retx=%d probes=%d demotions=%d promotions=%d elapsed=%s\n",
		st.Segments, st.Sent, st.Retransmissions, st.Probes, st.Demotions, st.Promotions,
		time.Duration(st.Elapsed).Round(time.Millisecond))
	for _, p := range snd.Paths() {
		fmt.Printf("multipath: path=%d state=%s sent=%d acked=%d retx=%d timeouts=%d probes=%d srtt=%s loss=%.3f\n",
			p.Index+1, p.State, p.Sent, p.Acked, p.Retx, p.Timeouts, p.Probes,
			time.Duration(p.SRTT).Round(time.Microsecond), p.Loss)
	}
	if reg != nil {
		if err := writeObsSnapshot(o.obsFile, reg); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: -obs: %v\n", err)
			return 1
		}
	}
	if !st.Done {
		return 1
	}
	return 0
}

// writeObsSnapshot dumps a registry snapshot as JSON.
func writeObsSnapshot(path string, reg *obs.Registry) error {
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// wireMode dispatches -listen / -blast before the scenario flag set
// sees the arguments. It returns false when neither flag is present.
func wireMode() (int, bool) {
	for _, a := range os.Args[1:] {
		name, _, _ := strings.Cut(strings.TrimLeft(a, "-"), "=")
		switch name {
		case "listen":
			return runServe(os.Args[1:]), true
		case "blast":
			return runBlast(os.Args[1:]), true
		}
	}
	return 0, false
}
