package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file pins the forwarding fast-path invariants: zero-allocation
// steady-state hops, decoded-header/bytes coherence across middlebox
// transforms, single-pass middlebox chain semantics, the queue-overflow
// admission bound, silent-drop diagnostics, and dense link-table
// invalidation.

// linearNet builds an n-node chain with static shortest-path routing.
func linearNet(tb testing.TB, nodes int) (*Network, *sim.Scheduler) {
	tb.Helper()
	sched := sim.NewScheduler()
	g := topology.Linear(nodes, sim.Millisecond)
	n := New(sched, g)
	for id := topology.NodeID(1); id <= topology.NodeID(nodes); id++ {
		id := id
		n.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			switch {
			case d == id:
				return id, true
			case d > id:
				return id + 1, true
			default:
				return id - 1, true
			}
		}
	}
	return n, sched
}

func rawPacket(tb testing.TB, src, dst topology.NodeID, ttl uint8, payload int) []byte {
	tb.Helper()
	data, err := packet.Serialize(
		&packet.TIP{TTL: ttl, Proto: packet.LayerTypeRaw,
			Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1)},
		&packet.Raw{Data: make([]byte, payload)})
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// sendAllocs measures steady-state allocations for one full packet
// lifetime across a chain of the given length.
func sendAllocs(t *testing.T, nodes int) float64 {
	n, sched := linearNet(t, nodes)
	n.TraceEventCap = nodes + 2
	pristine := rawPacket(t, 1, topology.NodeID(nodes), uint8(nodes+8), 64)
	buf := make([]byte, len(pristine))
	send := func() {
		copy(buf, pristine) // restore the TTL the previous run decremented
		tr := n.Send(1, buf)
		sched.Run()
		if !tr.Delivered {
			t.Fatalf("drop on %d-node chain: %s", nodes, tr.DropReason)
		}
	}
	for i := 0; i < 10; i++ {
		send() // warm the flight pool and scheduler slot pool
	}
	return testing.AllocsPerRun(100, send)
}

// A steady-state forward hop must not allocate: total allocations per
// packet are a constant (trace + event slab), independent of path length.
func TestForwardHopZeroAlloc(t *testing.T) {
	short := sendAllocs(t, 8)
	long := sendAllocs(t, 40)
	if long != short {
		t.Fatalf("per-packet allocs grew with path length: %.1f on 8 nodes vs %.1f on 40 nodes — forward hop is not zero-alloc",
			short, long)
	}
	// The per-packet constant: Trace struct + pre-sized event slab.
	if short > 2 {
		t.Fatalf("steady-state packet cost %.1f allocs, want <= 2 (Trace + event slab)", short)
	}
}

// tagBox records every invocation: which direction it saw and how often
// it ran.
type tagBox struct {
	name string
	dirs []Direction
}

func (b *tagBox) Name() string { return b.name }
func (b *tagBox) Silent() bool { return false }
func (b *tagBox) Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict) {
	b.dirs = append(b.dirs, dir)
	return nil, Accept
}

// redirBox rewrites Dst once.
type redirBox struct {
	to   packet.Addr
	runs int
}

func (r *redirBox) Name() string { return "redir" }
func (r *redirBox) Silent() bool { return false }
func (r *redirBox) Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict) {
	r.runs++
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil || tip.Dst == r.to {
		return nil, Accept
	}
	payload := make([]byte, len(tip.LayerPayload()))
	copy(payload, tip.LayerPayload())
	tip2 := tip
	tip2.Dst = r.to
	out, err := packet.Serialize(&tip2, &packet.Raw{Data: payload})
	if err != nil {
		return nil, Accept
	}
	return out, Accept
}

// The middlebox chain is single-pass: when a transform flips the packet's
// direction mid-chain (Forwarding→Delivering here), devices later in the
// chain see the new direction, but devices earlier in the chain are not
// re-run under it.
func TestMiddleboxChainSinglePassOnDirFlip(t *testing.T) {
	n, sched := linearNet(t, 4)
	before := &tagBox{name: "before"}
	after := &tagBox{name: "after"}
	nd := n.Node(3)
	nd.AddMiddlebox(before)
	nd.AddMiddlebox(&redirBox{to: packet.MakeAddr(3, 1)}) // transit→local
	nd.AddMiddlebox(after)
	tr := n.Send(1, rawPacket(t, 1, 4, 16, 8))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("drop: %s", tr.DropReason)
	}
	if p := tr.Path(); p[len(p)-1] != 3 {
		t.Fatalf("redirected packet terminated at %v, want node 3", p)
	}
	if len(before.dirs) != 1 || before.dirs[0] != Forwarding {
		t.Fatalf("pre-transform box ran %v, want exactly one Forwarding pass (no re-run after the flip)", before.dirs)
	}
	if len(after.dirs) != 1 || after.dirs[0] != Delivering {
		t.Fatalf("post-transform box ran %v, want exactly one Delivering pass", after.dirs)
	}
}

// The reverse flip (Delivering→Forwarding): a transform at the packet's
// destination re-addresses it elsewhere, and the packet forwards on —
// still without re-running the earlier devices.
func TestMiddleboxChainDirFlipToForwarding(t *testing.T) {
	n, sched := linearNet(t, 4)
	before := &tagBox{name: "before"}
	nd := n.Node(3)
	nd.AddMiddlebox(before)
	nd.AddMiddlebox(&redirBox{to: packet.MakeAddr(4, 1)}) // local→transit
	delivered := map[topology.NodeID]bool{}
	for _, id := range []topology.NodeID{3, 4} {
		id := id
		n.Node(id).Deliver = func(nd *Node, tr *Trace, data []byte) { delivered[id] = true }
	}
	tr := n.Send(1, rawPacket(t, 1, 3, 16, 8))
	sched.Run()
	if !tr.Delivered || delivered[3] || !delivered[4] {
		t.Fatalf("bounce failed: delivered=%v trace=%+v", delivered, tr)
	}
	if len(before.dirs) != 1 || before.dirs[0] != Delivering {
		t.Fatalf("pre-transform box ran %v, want exactly one Delivering pass", before.dirs)
	}
}

type silentBox struct{}

func (silentBox) Name() string { return "covert-device" }
func (silentBox) Silent() bool { return true }
func (silentBox) Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict) {
	return nil, Drop
}

// A silent middlebox drop must leave an anonymous loss: reason "lost",
// no device name anywhere in the trace, but the path up to the loss
// still inferable.
func TestSilentDropTraceDiagnostics(t *testing.T) {
	n, sched := linearNet(t, 4)
	n.Node(3).AddMiddlebox(silentBox{})
	tr := n.Send(1, rawPacket(t, 1, 4, 16, 8))
	sched.Run()
	if tr.Delivered {
		t.Fatal("should have been dropped")
	}
	if tr.DropReason != "lost" || tr.DropNode != 3 {
		t.Fatalf("drop = %q at %d, want \"lost\" at 3", tr.DropReason, tr.DropNode)
	}
	for _, e := range tr.Events {
		if e.Action == "drop" && e.Detail != "lost" {
			t.Fatalf("drop event leaked device identity: %+v", e)
		}
		if e.Detail == "covert-device" || e.Detail == "blocked:covert-device" {
			t.Fatalf("trace leaked silent device name: %+v", e)
		}
	}
	if got := n.Stats.Get("drop:lost"); got != 1 {
		t.Fatalf("drop:lost counter = %d, want 1", got)
	}
}

// Path and Latency on dropped packets: the path covers the nodes reached
// (drop events excluded), and latency is zero because the packet never
// completed its transit.
func TestPathAndLatencyOnDroppedPackets(t *testing.T) {
	n, sched := linearNet(t, 4)
	// TTL expiry mid-path.
	trTTL := n.Send(1, rawPacket(t, 1, 4, 2, 8))
	// No route: strip node 2's routing.
	sched.Run()
	n.Node(2).Route = nil
	trNoRoute := n.Send(1, rawPacket(t, 1, 4, 16, 8))
	sched.Run()

	if trTTL.DropReason != "ttl" {
		t.Fatalf("drop reason = %q, want ttl", trTTL.DropReason)
	}
	wantPath := []topology.NodeID{1, 2}
	if p := trTTL.Path(); len(p) != len(wantPath) || p[0] != 1 || p[1] != 2 {
		t.Fatalf("ttl-drop path = %v, want %v (send + one forward)", p, wantPath)
	}
	if trTTL.Latency() != 0 {
		t.Fatalf("dropped packet latency = %v, want 0", trTTL.Latency())
	}
	if trNoRoute.DropReason != "no-route" || trNoRoute.DropNode != 2 {
		t.Fatalf("drop = %q at %d, want no-route at 2", trNoRoute.DropReason, trNoRoute.DropNode)
	}
	if trNoRoute.Latency() != 0 {
		t.Fatalf("dropped packet latency = %v, want 0", trNoRoute.Latency())
	}
	if ev := trNoRoute.Events[len(trNoRoute.Events)-1]; ev.Action != "drop" || ev.Detail != "no-route" {
		t.Fatalf("final event = %+v, want drop/no-route", ev)
	}
}

// The queue-overflow admission rule: a packet is accepted only when the
// backlog it leaves behind fits within MaxQueue, so the per-link backlog
// never exceeds the bound.
func TestQueueOverflowNeverExceedsBound(t *testing.T) {
	n, sched := linearNet(t, 2)
	n.LinkRate = 1e4 // 10 KB/s: tens of ms of serialization per packet
	n.MaxQueue = 10 * sim.Millisecond
	var traces []*Trace
	for i := 0; i < 50; i++ {
		traces = append(traces, n.Send(1, rawPacket(t, 1, 2, 8, 16)))
	}
	sched.Run()
	accepted, dropped := 0, 0
	for _, tr := range traces {
		if tr.DropReason == "queue-overflow" {
			dropped++
		} else if tr.Delivered {
			accepted++
		}
	}
	if dropped == 0 {
		t.Fatal("expected overflow drops on a saturated link")
	}
	// All sends happen at t=0, so each accepted packet stacked its full
	// serialization time onto the backlog; the total must fit the bound.
	pkt := rawPacket(t, 1, 2, 8, 16)
	txTime := sim.Time(float64(len(pkt)) / n.LinkRate * float64(sim.Second))
	if backlog := sim.Time(accepted) * txTime; backlog > n.MaxQueue {
		t.Fatalf("accepted %d packets stack %v of backlog, exceeding MaxQueue %v", accepted, backlog, n.MaxQueue)
	}
	if want := int(n.MaxQueue / txTime); accepted != want {
		t.Fatalf("accepted %d packets, want %d (floor(MaxQueue/txTime))", accepted, want)
	}
}

// Links added to the Graph after the Network is built must become usable:
// the dense link table notices the topology change and rebuilds, and
// fault state set before the rebuild survives it.
func TestLinkTableInvalidation(t *testing.T) {
	sched := sim.NewScheduler()
	g := topology.Linear(3, sim.Millisecond)
	n := New(sched, g)
	for id := topology.NodeID(1); id <= 3; id++ {
		id := id
		n.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			if d == id {
				return id, true
			}
			if id == 1 && d == 3 {
				return 3, true // prefer the shortcut once it exists
			}
			if d > id {
				return id + 1, true
			}
			return id - 1, true
		}
	}
	// Before the shortcut exists, 1→3 is a bad next hop.
	tr := n.Send(1, rawPacket(t, 1, 3, 8, 8))
	sched.Run()
	if tr.DropReason != "bad-next-hop" {
		t.Fatalf("pre-shortcut drop = %q, want bad-next-hop", tr.DropReason)
	}
	// Fail 1-2, then grow the topology behind the simulator's back.
	n.FailLink(1, 2)
	g.AddLink(1, 3, topology.PeerOf, sim.Millisecond, 1)
	tr = n.Send(1, rawPacket(t, 1, 3, 8, 8))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("post-shortcut send dropped: %s", tr.DropReason)
	}
	if p := tr.Path(); len(p) != 2 || p[1] != 3 {
		t.Fatalf("path = %v, want direct 1→3", p)
	}
	// The explicit hook works too, and the fault set pre-rebuild held.
	n.InvalidateTopology()
	if !n.LinkFailed(1, 2) {
		t.Fatal("fault state lost across rebuild")
	}
	tr = n.Send(1, rawPacket(t, 1, 2, 8, 8))
	sched.Run()
	if tr.DropReason != "link-down" {
		t.Fatalf("failed link drop = %q, want link-down", tr.DropReason)
	}
	n.RestoreLink(1, 2)
	tr = n.Send(1, rawPacket(t, 1, 2, 8, 8))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("restored link still dropping: %s", tr.DropReason)
	}
}

// A middlebox transform must leave the carried decoded header coherent
// with the bytes: after a redirect, downstream routing (which reads the
// decoded header) must follow the rewritten destination, and in-place
// source-route advances must stay visible in both representations.
func TestDecodedHeaderCoherenceAfterTransform(t *testing.T) {
	n, sched := linearNet(t, 5)
	n.Node(2).AddMiddlebox(&redirBox{to: packet.MakeAddr(5, 1)})
	tr := n.Send(1, rawPacket(t, 1, 3, 16, 8))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("drop: %s", tr.DropReason)
	}
	if p := tr.Path(); p[len(p)-1] != 5 {
		t.Fatalf("routing ignored rewritten destination: path %v", p)
	}
}
