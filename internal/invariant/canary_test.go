package invariant

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/topology"
)

// The canary tests are the mutate-and-detect suite: each one deliberately
// breaks exactly one invariant through a sabotage hook and asserts the
// checker reports it, then shrinks the sabotaged trial and asserts the
// reproducer is minimal (≤ 8 fault-plan events) and round-trips through
// its canonical JSON encoding. A checker that cannot catch a deliberate
// breach cannot be trusted to catch an accidental one.

// sinkFunc adapts a function to obs.Sink.
type sinkFunc func(obs.Event)

func (f sinkFunc) Emit(e obs.Event) { f(e) }

func hasInvariant(vs []Violation, name string) bool {
	for _, v := range vs {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

// runCanary scans seeds for a scenario where the base run is clean, the
// sabotaged run fires the target invariant, and the shrunk reproducer
// stays within the minimality budget. want pre-filters scenarios (e.g.
// "has a transfer") to skip seeds the sabotage cannot bite.
func runCanary(t *testing.T, target string, hk *hooks, want func(*Scenario) bool) {
	t.Helper()
	enabled := AllSet()
	for seed := uint64(1); seed <= 60; seed++ {
		sc := Generate(seed)
		if want != nil && !want(sc) {
			continue
		}
		if vs := runScenario(sc, enabled, nil).violations; len(vs) != 0 {
			t.Fatalf("seed %d: base run not clean: %v", seed, vs[0])
		}
		vs := runScenario(sc, enabled, hk).violations
		if !hasInvariant(vs, target) {
			continue // sabotage did not bite this scenario; try the next
		}

		repro := ShrinkScenario(sc, enabled, target, hk, 300)
		if repro.Invariant != target {
			t.Fatalf("repro invariant = %q, want %q", repro.Invariant, target)
		}
		if repro.Detail == "" {
			t.Fatalf("shrunk reproducer no longer fires %s", target)
		}
		if n := len(repro.Scenario.Plan.Events); n > 8 {
			t.Fatalf("shrunk reproducer has %d plan events, want <= 8", n)
		}
		if len(repro.Scenario.Traffic) > len(sc.Traffic) {
			t.Fatalf("shrinking grew the traffic matrix: %d > %d", len(repro.Scenario.Traffic), len(sc.Traffic))
		}

		buf, err := repro.Encode()
		if err != nil {
			t.Fatalf("encode repro: %v", err)
		}
		back, err := ParseRepro(buf)
		if err != nil {
			t.Fatalf("parse encoded repro: %v", err)
		}
		buf2, err := back.Encode()
		if err != nil {
			t.Fatalf("re-encode repro: %v", err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("repro encoding is not a fixed point:\n%s\nvs\n%s", buf, buf2)
		}
		return
	}
	t.Fatalf("no seed in 1..60 made the %s canary fire", target)
}

// Skipping a drop event must break packet conservation.
func TestCanaryConservation(t *testing.T) {
	hk := &hooks{wrapSink: func(s obs.Sink) obs.Sink {
		skipped := false
		return sinkFunc(func(e obs.Event) {
			if !skipped && e.Scope == "netsim" && e.Kind == "drop" {
				skipped = true
				return
			}
			s.Emit(e)
		})
	}}
	runCanary(t, Conservation, hk, nil)
}

// Oversubscribing the transmit queue must break the queue bound.
func TestCanaryQueueBound(t *testing.T) {
	hk := &hooks{wrapSink: func(s obs.Sink) obs.Sink {
		forged := false
		return sinkFunc(func(e obs.Event) {
			if !forged && e.Scope == "netsim" && e.Kind == "enqueue" {
				forged = true
				e.Value += 2e8 // 200ms of phantom backlog, twice MaxQueue
			}
			s.Emit(e)
		})
	}}
	runCanary(t, QueueBound, hk, nil)
}

// A timestamp regression in the event stream must break monotonicity.
func TestCanaryClock(t *testing.T) {
	hk := &hooks{wrapSink: func(s obs.Sink) obs.Sink {
		n := 0
		return sinkFunc(func(e obs.Event) {
			n++
			if n == 2 {
				e.Time = -1
			}
			s.Emit(e)
		})
	}}
	runCanary(t, Clock, hk, nil)
}

// Rewriting a trace so its timestamps regress must break trace validity.
func TestCanaryTrace(t *testing.T) {
	hk := &hooks{mutateTrace: func(tr *netsim.Trace) {
		if len(tr.Events) >= 2 {
			tr.Events[0].At = tr.Events[len(tr.Events)-1].At + 1
		}
	}}
	runCanary(t, TraceValid, hk, nil)
}

// Installing mutually-referential routes must be caught as a loop.
func TestCanaryLoopFree(t *testing.T) {
	hk := &hooks{beforeFinish: func(net *netsim.Network, c *Checker) {
		for _, l := range net.Graph.Links {
			a, b := l.A, l.B
			if net.NodeFailed(a) || net.NodeFailed(b) {
				continue
			}
			net.Node(a).Route = func(packet.Addr, *packet.TIP) (topology.NodeID, bool) { return b, true }
			net.Node(b).Route = func(packet.Addr, *packet.TIP) (topology.NodeID, bool) { return a, true }
			return
		}
	}}
	runCanary(t, LoopFree, hk, nil)
}

// Synthesizing a delivery across a standing cut must be caught.
func TestCanaryCutDelivery(t *testing.T) {
	hk := &hooks{beforeFinish: func(net *netsim.Network, c *Checker) {
		for _, ep := range c.epochs {
			for _, l := range net.Graph.Links {
				ca, cb := ep.comp[l.A], ep.comp[l.B]
				if ca == cb && ca >= 0 {
					continue // endpoints connected in this epoch
				}
				before := c.Total
				c.CheckTrace(&netsim.Trace{
					Delivered: true,
					SentAt:    ep.start,
					DoneAt:    ep.start,
					Events: []netsim.TraceEvent{
						{At: ep.start, Node: l.A, Action: "send"},
						{At: ep.start, Node: l.B, Action: "deliver"},
					},
				}, 64)
				if c.Total > before {
					return // the forged cross-cut delivery was convicted
				}
			}
		}
	}}
	// Only plans that actually sever something produce a separated epoch.
	runCanary(t, CutDelivery, hk, func(sc *Scenario) bool {
		for _, ev := range sc.Plan.Events {
			switch ev.Kind {
			case "partition", "link-down", "node-crash":
				return true
			}
		}
		return false
	})
}

// Wiping the routing tables at probe time must break heal-reachability.
func TestCanaryReach(t *testing.T) {
	hk := &hooks{postPlan: func(net *netsim.Network) {
		for _, id := range net.Graph.NodeIDs() {
			net.Node(id).Route = nil
		}
	}}
	runCanary(t, Reach, hk, nil)
}

// Corrupting the receiver's reassembled stream must break the transport
// prefix invariant.
func TestCanaryTransport(t *testing.T) {
	hk := &hooks{corruptStream: func(data []byte) {
		if len(data) > 0 {
			data[0] ^= 0xff
		}
	}}
	runCanary(t, Transport, hk, func(sc *Scenario) bool { return sc.Transfer != nil })
}

// Tampering with one side of the merged snapshots must break
// merge-commutativity.
func TestCanaryMergeCommute(t *testing.T) {
	hk := &hooks{mutateSnap: func(s *obs.Snapshot) {
		if len(s.Counters) > 0 {
			s.Counters[0].Value++
		} else {
			s.Counters = append(s.Counters, obs.CounterSnap{Name: "forged", Value: 1})
		}
	}}
	runCanary(t, MergeCommute, hk, nil)
}
