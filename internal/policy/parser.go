package policy

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("policy: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tokPunct || t.text != s {
		return p.errf("expected %q, found %q", s, t.text)
	}
	p.pos++
	return nil
}

func (p *parser) expectIdent(word string) error {
	t := p.cur()
	if t.kind != tokIdent || t.text != word {
		return p.errf("expected %q, found %q", word, t.text)
	}
	p.pos++
	return nil
}

// Parse parses a full policy document.
func Parse(src string) (*Document, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	doc, err := p.document()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return doc, nil
}

// ParseExpr parses a bare expression (as carried in a packet.Policy
// layer or a firewall rule).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return e, nil
}

func (p *parser) document() (*Document, error) {
	if err := p.expectIdent("policy"); err != nil {
		return nil, err
	}
	name := p.cur()
	if name.kind != tokString {
		return nil, p.errf("policy name must be a string literal")
	}
	p.pos++
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	doc := &Document{Name: name.text}
	for {
		t := p.cur()
		if t.kind == tokPunct && t.text == "}" {
			p.pos++
			return doc, nil
		}
		if t.kind != tokIdent {
			return nil, p.errf("expected declaration or rule, found %q", t.text)
		}
		switch t.text {
		case "principal":
			p.pos++
			id := p.cur()
			if id.kind != tokIdent {
				return nil, p.errf("principal must be an identifier")
			}
			doc.Principal = id.text
			p.pos++
		case "applies-to":
			p.pos++
			id := p.cur()
			if id.kind != tokIdent {
				return nil, p.errf("applies-to must be an identifier")
			}
			doc.AppliesTo = id.text
			p.pos++
		case "rule":
			r, err := p.rule()
			if err != nil {
				return nil, err
			}
			doc.Rules = append(doc.Rules, *r)
		case "default":
			p.pos++
			a, err := p.action()
			if err != nil {
				return nil, err
			}
			if doc.HasDefault {
				return nil, p.errf("duplicate default")
			}
			doc.Default = a
			doc.HasDefault = true
		default:
			return nil, p.errf("unknown declaration %q", t.text)
		}
	}
}

func (p *parser) rule() (*Rule, error) {
	p.pos++ // consume "rule"
	nameTok := p.cur()
	if nameTok.kind != tokIdent {
		return nil, p.errf("rule name must be an identifier")
	}
	p.pos++
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("when"); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("then"); err != nil {
		return nil, err
	}
	act, err := p.action()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return &Rule{Name: nameTok.text, When: cond, Then: *act}, nil
}

func (p *parser) action() (*Action, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errf("expected action, found %q", t.text)
	}
	switch t.text {
	case "permit":
		p.pos++
		return &Action{Kind: Permit}, nil
	case "deny":
		p.pos++
		a := &Action{Kind: Deny}
		if p.cur().kind == tokString {
			a.Reason = p.cur().text
			p.pos++
		}
		return a, nil
	case "require":
		p.pos++
		id := p.cur()
		if id.kind != tokIdent && id.kind != tokString {
			return nil, p.errf("require needs a capability name")
		}
		p.pos++
		return &Action{Kind: Require, What: id.text}, nil
	case "price":
		p.pos++
		num := p.cur()
		if num.kind != tokNumber {
			return nil, p.errf("price needs a number")
		}
		v, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			return nil, p.errf("bad price %q", num.text)
		}
		p.pos++
		return &Action{Kind: Price, Amount: v}, nil
	}
	return nil, p.errf("unknown action %q", t.text)
}

// Expression grammar: or-expr > and-expr > not-expr > comparison > term.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && p.cur().text == "||" {
		p.pos++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && p.cur().text == "&&" {
		p.pos++
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.cur().kind == tokOp && p.cur().text == "!" {
		p.pos++
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{X: x}, nil
	}
	return p.comparison()
}

func isCmpOp(s string) bool {
	switch s {
	case "==", "!=", "<", ">", "<=", ">=", "in":
		return true
	}
	return false
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp && isCmpOp(p.cur().text) {
		op := p.next().text
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) term() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &LitExpr{V: Num(v)}, nil
	case t.kind == tokString:
		p.pos++
		return &LitExpr{V: Str(t.text)}, nil
	case t.kind == tokIdent && (t.text == "true" || t.text == "false"):
		p.pos++
		return &LitExpr{V: Bool(t.text == "true")}, nil
	case t.kind == tokIdent:
		p.pos++
		return NewRefExpr(t.text), nil
	case t.kind == tokPunct && t.text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokPunct && t.text == "[":
		p.pos++
		var elems []Expr
		for {
			if p.cur().kind == tokPunct && p.cur().text == "]" {
				p.pos++
				return &ListExpr{Elems: elems}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.pos++
			}
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
