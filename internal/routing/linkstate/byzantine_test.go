package linkstate

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// byzDiamond: 1-2-4 (costs 5+5) and 1-3-4 (costs 3+3). Honest best path
// is via 3. Node 2 is the prospective liar.
func byzDiamond() *topology.Graph {
	g := topology.NewGraph()
	for i := 1; i <= 4; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 5)
	g.AddLink(2, 4, topology.PeerOf, sim.Millisecond, 5)
	g.AddLink(1, 3, topology.PeerOf, sim.Millisecond, 3)
	g.AddLink(3, 4, topology.PeerOf, sim.Millisecond, 3)
	return g
}

func TestHonestAdsMatchPlainSPF(t *testing.T) {
	g := byzDiamond()
	rng := sim.NewRNG(1)
	keys := GenerateKeys(g, rng)
	db := NewAdDatabase(g, SignedTwoSided, keys)
	for _, id := range g.NodeIDs() {
		ad := HonestAdvertisement(g, id)
		ad.Sign(keys[id])
		db.Flood(ad)
	}
	next, dist := db.SPF(1)
	if next[4] != 3 {
		t.Fatalf("honest next hop to 4 = %d, want 3", next[4])
	}
	if dist[4] != 6 {
		t.Fatalf("honest dist to 4 = %v", dist[4])
	}
	if db.Rejected != 0 {
		t.Fatalf("honest ads rejected: %d", db.Rejected)
	}
}

func TestLiarAttractsTrafficWhenTrusted(t *testing.T) {
	g := byzDiamond()
	db := NewAdDatabase(g, TrustAll, nil)
	for _, id := range g.NodeIDs() {
		if id == 2 {
			db.Flood(LiarAdvertisement(g, 2, 0.01, nil))
		} else {
			db.Flood(HonestAdvertisement(g, id))
		}
	}
	next, _ := db.SPF(1)
	// 1's cost to reach 2 is 1's own (honest) claim 5, but 2 claims
	// 2→4 = 0.01, so the path via 2 costs 5.01 < 6 via 3. The liar
	// wins the traffic.
	if next[4] != 2 {
		t.Fatalf("liar failed to attract: next hop = %d", next[4])
	}
}

func TestTwoSidedMaxDefeatsAttraction(t *testing.T) {
	g := byzDiamond()
	rng := sim.NewRNG(2)
	keys := GenerateKeys(g, rng)
	db := NewAdDatabase(g, SignedTwoSided, keys)
	for _, id := range g.NodeIDs() {
		var ad *Advertisement
		if id == 2 {
			ad = LiarAdvertisement(g, 2, 0.01, nil)
		} else {
			ad = HonestAdvertisement(g, id)
		}
		ad.Sign(keys[id])
		db.Flood(ad)
	}
	// max(0.01, honest 5) = 5 on both of the liar's links: traffic
	// stays on the honest path.
	next, _ := db.SPF(1)
	if next[4] != 3 {
		t.Fatalf("two-sided max failed: next hop = %d", next[4])
	}
}

func TestForgedAdvertisementRejected(t *testing.T) {
	g := byzDiamond()
	rng := sim.NewRNG(3)
	keys := GenerateKeys(g, rng)
	db := NewAdDatabase(g, SignedTwoSided, keys)
	// The liar forges node 3's advertisement, claiming 3's links cost
	// 100 (repelling traffic from the honest path).
	forged := &Advertisement{From: 3, Costs: map[topology.NodeID]float64{1: 100, 4: 100}}
	forged.Sign(keys[2]) // signed with the WRONG key
	db.Flood(forged)
	if db.ads[3] != nil {
		t.Fatal("forged advertisement accepted")
	}
	if db.Rejected == 0 {
		t.Fatal("forgery not counted")
	}
	// Unsigned ads also rejected.
	db.Flood(HonestAdvertisement(g, 4))
	if db.ads[4] != nil {
		t.Fatal("unsigned advertisement accepted")
	}
}

func TestPhantomLinksStripped(t *testing.T) {
	g := byzDiamond()
	rng := sim.NewRNG(4)
	keys := GenerateKeys(g, rng)
	db := NewAdDatabase(g, SignedTwoSided, keys)
	// Liar claims a direct (nonexistent) link 2→... node 2 is not
	// adjacent to 3; claim a phantom 2-3 link.
	ad := LiarAdvertisement(g, 2, 0.01, []topology.NodeID{3})
	ad.Sign(keys[2])
	db.Flood(ad)
	if _, ok := db.ads[2].Costs[3]; ok {
		t.Fatal("phantom link survived")
	}
	if db.Rejected == 0 {
		t.Fatal("phantom not counted")
	}
}

func TestPhantomLinksWorkWhenTrusted(t *testing.T) {
	// Under TrustAll the phantom shortcut is believed.
	g := byzDiamond()
	db := NewAdDatabase(g, TrustAll, nil)
	for _, id := range g.NodeIDs() {
		if id == 2 {
			db.Flood(LiarAdvertisement(g, 2, 0.01, []topology.NodeID{4}))
		} else {
			db.Flood(HonestAdvertisement(g, id))
		}
	}
	_, dist := db.SPF(1)
	if dist[4] > 5.02 {
		t.Fatalf("phantom shortcut not believed: dist = %v", dist[4])
	}
}

func TestLiarCanStillRepel(t *testing.T) {
	// The defense bounds attraction, not repulsion: a node raising its
	// own costs pushes traffic away — which is its right (it is
	// declining to carry), so the tussle stays within the design.
	g := byzDiamond()
	rng := sim.NewRNG(5)
	keys := GenerateKeys(g, rng)
	db := NewAdDatabase(g, SignedTwoSided, keys)
	for _, id := range g.NodeIDs() {
		var ad *Advertisement
		if id == 3 {
			ad = LiarAdvertisement(g, 3, 100, nil) // node 3 repels
		} else {
			ad = HonestAdvertisement(g, id)
		}
		ad.Sign(keys[id])
		db.Flood(ad)
	}
	next, _ := db.SPF(1)
	if next[4] != 2 {
		t.Fatalf("repulsion failed: next hop = %d", next[4])
	}
}

func TestSignedSPFOnGeneratedTopology(t *testing.T) {
	rng := sim.NewRNG(6)
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
	keys := GenerateKeys(g, rng)
	db := NewAdDatabase(g, SignedTwoSided, keys)
	for _, id := range g.NodeIDs() {
		ad := HonestAdvertisement(g, id)
		ad.Sign(keys[id])
		db.Flood(ad)
	}
	ids := g.NodeIDs()
	next, _ := db.SPF(ids[0])
	for _, dst := range ids[1:] {
		if _, ok := next[dst]; !ok {
			t.Fatalf("unreachable %d under honest signed ads", dst)
		}
	}
}
