package packet

// This file is the wire-facing sanity filter: the cheap structural check
// a UDP server runs on raw bytes *before* committing to a full Decode
// (the udpx BasicPacketFilter discipline). It reads exactly four header
// fields at fixed offsets — the version/header-length byte at offset 0
// and the total-length word at offsets 2–3 — so a flood of garbage
// datagrams is rejected in a handful of instructions without touching
// options or computing a checksum.
//
// Contract, pinned by abi_test.go and FuzzDecode:
//
//   - Soundness: Filter never rejects bytes that DecodeFrom would accept
//     (every check below is implied by a decode-side check).
//   - Completeness of the structural stage: if Filter rejects, DecodeFrom
//     also rejects (the filter is exactly decode's pre-checksum bounds
//     logic, never stricter).
//
// Because the filter reads raw offsets rather than going through Decode,
// any drift between Encode's byte layout and these offsets would break
// the contract silently — which is why the ABI tests assert the encoded
// position of every field the filter touches.

// FilterVerdict classifies a datagram's fate at the wire sanity filter.
type FilterVerdict uint8

// Filter verdicts. FilterAccept means "structurally plausible: worth a
// full decode", not "valid" — the checksum and option grammar are only
// checked by DecodeFrom.
const (
	FilterAccept       FilterVerdict = iota
	FilterTruncated                  // shorter than the 16-byte fixed header
	FilterBadVersion                 // version nibble is not the TIP version
	FilterBadHeaderLen               // header length field out of [16, len(data)]
	FilterBadTotalLen                // total length field out of [hlen, len(data)]

	// filterVerdicts is the number of distinct verdicts (for stats arrays).
	filterVerdicts
)

// FilterVerdicts is the number of distinct FilterVerdict values; stats
// tables index by verdict.
const FilterVerdicts = int(filterVerdicts)

func (v FilterVerdict) String() string {
	switch v {
	case FilterAccept:
		return "accept"
	case FilterTruncated:
		return "truncated"
	case FilterBadVersion:
		return "bad-version"
	case FilterBadHeaderLen:
		return "bad-header-len"
	case FilterBadTotalLen:
		return "bad-total-len"
	default:
		return "unknown"
	}
}

// Filter performs the cheap raw-byte sanity check on a received
// datagram. It never allocates and never reads past len(data).
func Filter(data []byte) FilterVerdict {
	if len(data) < tipMinHeader {
		return FilterTruncated
	}
	b0 := data[0]
	if b0>>4 != tipVersion {
		return FilterBadVersion
	}
	hlen := int(b0&0x0f) * 8
	if hlen < tipMinHeader || hlen > len(data) {
		return FilterBadHeaderLen
	}
	total := int(data[2])<<8 | int(data[3])
	if total < hlen || total > len(data) {
		return FilterBadTotalLen
	}
	return FilterAccept
}
