package wire

import (
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/transport/multipath"
)

// WallClock runs the multipath state machine on real time: Now is
// nanoseconds since the clock's construction, After is time.AfterFunc.
// Every callback takes the clock's mutex before running, and the
// sender's other entry points (Start, HandleAck) hold the same mutex,
// so the state machine sees the strictly serial world it was written
// for — the one the simulator's scheduler provides by construction.
// Callbacks that fire while a cancellation is waiting for the lock are
// defused by the state machine's generation counters, not by the clock.
type WallClock struct {
	mu    sync.Mutex
	epoch time.Time
}

// NewWallClock starts a wall clock at t=0.
func NewWallClock() *WallClock {
	return &WallClock{epoch: time.Now()}
}

// Now returns nanoseconds since the clock's epoch.
func (c *WallClock) Now() sim.Time { return sim.Time(time.Since(c.epoch)) }

// After arms fn to run once, d from now, serialized under the clock's
// lock.
func (c *WallClock) After(d sim.Time, fn func()) multipath.Timer {
	if d < 0 {
		d = 0
	}
	return wallTimer{time.AfterFunc(time.Duration(d), func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	})}
}

// Lock takes the clock's serialization lock (for non-timer entry
// points into the state machine).
func (c *WallClock) Lock() { c.mu.Lock() }

// Unlock releases the serialization lock.
func (c *WallClock) Unlock() { c.mu.Unlock() }

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Cancel() { w.t.Stop() }
