// Trust firewall: the §V-B scenario end to end. A destination installs
// first a port firewall, then a trust-aware firewall driven by a chosen
// reputation mediator and the packet identity option; senders include
// honest users, certified attackers with bad histories, and visibly
// anonymous senders. The example also exercises rule disclosure and the
// liability guarantor.
//
// Run with: go run ./examples/trust_firewall
package main

import (
	"fmt"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trust"
)

func main() {
	sched := sim.NewScheduler()
	g := topology.Linear(3, sim.Millisecond) // sender -1- transit -2- receiver
	net := netsim.New(sched, g)
	for id := topology.NodeID(1); id <= 3; id++ {
		id := id
		net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			switch {
			case d > id:
				return id + 1, true
			case d < id:
				return id - 1, true
			}
			return id, true
		}
	}

	// The receiver picks a reputation mediator it trusts (§V-B: "the
	// parties must be able to choose, so they can select third parties
	// that they trust").
	rep := trust.NewReputation("consumer-reports", 1.0)
	for i := 0; i < 10; i++ {
		rep.Report("alice", true, nil)
		rep.Report("mallory", false, nil)
	}

	send := func(identity *packet.IdentityOption, port uint16) *netsim.Trace {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP,
				Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(3, 1), Identity: identity},
			&packet.TTP{DstPort: port, Next: packet.LayerTypeRaw},
			&packet.Raw{Data: []byte("hello")})
		if err != nil {
			panic(err)
		}
		tr := net.Send(1, data)
		sched.Run()
		return tr
	}
	report := func(who string, tr *netsim.Trace) {
		verdict := "DELIVERED"
		if !tr.Delivered {
			verdict = "blocked (" + tr.DropReason + ")"
		}
		fmt.Printf("  %-28s %s\n", who, verdict)
	}

	alice := &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("alice")}
	mallory := &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("mallory")}
	anon := &packet.IdentityOption{Scheme: packet.IdentityAnonymous}

	fmt.Println("port firewall (blocks all high ports):")
	pfw := &middlebox.PortFirewall{Label: "port-fw", BlockedPorts: highPorts(), BlockInbound: true}
	net.Node(3).AddMiddlebox(pfw)
	report("alice, new app port 7777", send(alice, 7777))
	report("mallory, attack on port 80", send(mallory, 80))
	if rules, ok := pfw.Rules(); ok {
		fmt.Printf("  (the firewall discloses %d rules on request)\n", len(rules))
	}

	fmt.Println("\ntrust-aware firewall (mediates on who, not which port):")
	net.Node(3).RemoveMiddlebox("port-fw")
	net.Node(3).AddMiddlebox(&middlebox.TrustFirewall{Label: "trust-fw", MinScore: 0.5, Rep: rep})
	report("alice, new app port 7777", send(alice, 7777))
	report("mallory, attack on port 80", send(mallory, 80))
	report("anonymous sender (visible)", send(anon, 80))

	// The guarantor: even admitted strangers are safe to transact with
	// because a third party caps the loss.
	fmt.Println("\nliability guarantor:")
	card := trust.NewGuarantor("acme-card", 50, 0.03)
	tx := card.Charge("alice", "unknown-shop", 400)
	fmt.Printf("  alice buys $400 from an unknown shop via %s\n", card.Name)
	refund := card.Dispute(tx)
	fmt.Printf("  shop defrauds her; dispute refunds $%.0f, her loss capped at $%.0f\n",
		refund, card.BuyerLoss(tx))
}

func highPorts() map[uint16]bool {
	m := map[uint16]bool{}
	for p := uint16(1024); p <= 10000; p++ {
		m[p] = true
	}
	return m
}
