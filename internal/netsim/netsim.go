// Package netsim is the hop-by-hop packet forwarding simulator: nodes (one
// per autonomous system) connected by latency/bandwidth links, each with a
// pluggable routing function, a stack of middleboxes, and a local delivery
// handler. It runs on the deterministic event scheduler in internal/sim
// and carries the self-describing datagrams of internal/packet.
//
// Per-packet traces record the path taken and, on failure, where and why
// the packet died — the "tools to resolve and isolate faults" that §IV-C
// and §VI-A of the paper call for. A middlebox may be configured silent,
// in which case the trace records only an anonymous loss, reproducing the
// diagnostic asymmetry the paper warns about ("some devices that impair
// transparency may intentionally give no error information").
//
// # Forwarding fast path
//
// A packet in flight is carried by a pooled flight context: the TIP
// header is decoded once at Send and the decoded form rides alongside the
// bytes from hop to hop. The two representations are kept coherent — any
// in-place byte patch (TTL decrement, source-route advance) is mirrored
// into the decoded header, and a middlebox transform (non-nil return from
// Process) forces a re-decode. Link lookups go through a dense per-node
// adjacency table instead of the Graph's map, and each hop re-schedules
// the flight's single preallocated closure, so a steady-state forward hop
// (no transform, no drop) performs zero heap allocations.
package netsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Direction tells a middlebox how the packet is moving relative to the
// node evaluating it.
type Direction uint8

// Packet directions at a node.
const (
	// Forwarding: the packet is transiting this node.
	Forwarding Direction = iota
	// Delivering: the packet terminates at this node.
	Delivering
	// Sending: the packet originates at this node.
	Sending
)

func (d Direction) String() string {
	switch d {
	case Forwarding:
		return "forward"
	case Delivering:
		return "deliver"
	default:
		return "send"
	}
}

// Verdict is a middlebox's decision about a packet.
type Verdict uint8

// Middlebox verdicts.
const (
	// Accept passes the (possibly transformed) packet on.
	Accept Verdict = iota
	// Drop discards the packet.
	Drop
)

// Middlebox inspects and possibly transforms or drops packets at a node.
// Implementations live in internal/middlebox; the interface is defined
// here so the simulator does not depend on them.
//
// A node's middlebox chain is single-pass: each device runs at most once
// per packet per node, in installation order. If a transform rewrites the
// destination so that the packet's direction flips (Delivering ↔
// Forwarding), devices later in the chain observe the new direction, but
// devices earlier in the chain are NOT re-run — a transform cannot route
// a packet back through the filters it already passed.
type Middlebox interface {
	// Name identifies the device in traces (when it is not silent).
	Name() string
	// Process examines data and returns the bytes to continue with and
	// a verdict. Returning different bytes models transformation (NAT,
	// redirection, cache answer). Returning nil bytes means "unmodified":
	// the simulator keeps forwarding the original packet without
	// re-decoding its headers, which is what keeps the fast path fast —
	// implementations must return nil rather than an identical copy when
	// they leave the packet alone.
	Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict)
	// Silent devices do not reveal themselves in drop reports.
	Silent() bool
}

// RouteFunc decides the next hop for a packet at a node. It receives the
// destination and the decoded network header (for policy-sensitive
// routing, e.g. ToS-aware or source-route-aware decisions). ok=false
// means "no route". The *packet.TIP is owned by the simulator and valid
// only for the duration of the call; implementations must not retain it
// or its option structs.
type RouteFunc func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool)

// DeliverFunc handles a packet that reached its destination node.
type DeliverFunc func(n *Node, t *Trace, data []byte)

// Node is one forwarding element (an AS border router).
type Node struct {
	ID  topology.NodeID
	Net *Network

	// Route computes next hops; nil means the node can only deliver.
	Route RouteFunc
	// HonorSourceRoutes controls whether this node obeys source-route
	// options — the provider's side of the §V-A4 tussle. A provider
	// that does not honor them forwards by its own routing only.
	HonorSourceRoutes bool
	// RequirePaymentForSourceRoute models the §V-A4 recommendation:
	// the provider honors source routes only when the packet carries a
	// payment voucher.
	RequirePaymentForSourceRoute bool
	// srcRoutePolicy generalizes the payment flag: a compiled, metered
	// admission program evaluated per packet on the policy VM (see
	// SetSourceRoutePolicy). While set it replaces the boolean check;
	// srcRouteSlots is this node's evaluation scratch.
	srcRoutePolicy *SourceRoutePolicy
	srcRouteSlots  []policy.Value
	// Middleboxes are processed in order; any Drop wins. See the
	// Middlebox interface for the single-pass chain semantics.
	Middleboxes []Middlebox
	// Deliver handles locally-destined traffic (after middleboxes).
	Deliver DeliverFunc

	// Counters accumulates per-node statistics.
	Counters sim.Counter
}

// AddMiddlebox appends m to the node's processing chain.
func (n *Node) AddMiddlebox(m Middlebox) { n.Middleboxes = append(n.Middleboxes, m) }

// RemoveMiddlebox removes the first middlebox with the given name.
func (n *Node) RemoveMiddlebox(name string) bool {
	for i, m := range n.Middleboxes {
		if m.Name() == name {
			n.Middleboxes = append(n.Middleboxes[:i], n.Middleboxes[i+1:]...)
			return true
		}
	}
	return false
}

// adjEntry is one neighbor in a node's dense adjacency row.
type adjEntry struct {
	to   topology.NodeID
	link int32 // index into Graph.Links
}

// linkTable is the dense forwarding-plane view of the topology: per-node
// adjacency rows (sorted by neighbor ID), per-directed-link transmission
// backlog, and per-link failure flags. It is derived from the Graph at
// construction and rebuilt whenever the Graph's link count changes (see
// Network.InvalidateTopology); the failure map on Network remains the
// source of truth for fault state across rebuilds.
type linkTable struct {
	adj    [][]adjEntry // indexed by NodeID
	busy   []sim.Time   // indexed by 2*linkIdx (+1 for the B→A direction)
	failed []bool       // indexed by linkIdx
	nlinks int          // Graph.Links length at build time (staleness check)
}

// Network is the assembled simulator.
//
// Node state lives in a flat arena ([]Node) indexed through the dense
// nodesByID table; the nodes map is a build-time input only (it seeds the
// arena in New and survives for rebuilds), never touched on the
// forwarding fast path. The same struct-of-arrays discipline covers the
// rest of the hot state: transmit backlogs, link-failure flags, node-down
// flags, impairments, and the per-node key counters all live in
// contiguous slices indexed by the dense node or link index.
type Network struct {
	Sched *sim.Scheduler
	Graph *topology.Graph
	nodes map[topology.NodeID]*Node
	// nodeArr is the contiguous node arena; nodes and nodesByID point
	// into it. Allocated once in New — node addresses are stable.
	nodeArr []Node
	// nodesByID is the dense mirror of nodes for hot-path lookup.
	nodesByID []*Node

	// LinkRate is bytes/second of every link (serialization delay).
	LinkRate float64
	// MaxQueue is the maximum per-link backlog (waiting plus in-service
	// transmission time) a newly admitted packet may leave behind it. A
	// packet is tail-dropped when admitting it would push the link's
	// backlog beyond MaxQueue, so the bound is never exceeded.
	MaxQueue sim.Time
	// HopProcessing is fixed per-hop processing latency.
	HopProcessing sim.Time
	// TraceEventCap pre-sizes each Trace's event slab; traces longer
	// than this grow by the usual append doubling. Tune it to the
	// expected path length (send + hops + terminal) to keep steady-state
	// forwarding allocation-free for longer paths.
	TraceEventCap int

	lt     linkTable
	failed map[[2]topology.NodeID]bool

	// downNodes is the source of truth for crashed nodes; nodeDown is its
	// dense mirror (indexed by NodeID) for the forwarding fast path. Both
	// follow the same rebuild contract as the link failure map/mirror.
	downNodes map[topology.NodeID]bool
	nodeDown  []bool

	// impairments is the source of truth for per-link packet impairment
	// (corruption/duplication/reordering); impair is its dense mirror
	// indexed by link index, nil when no link is impaired so the healthy
	// fast path pays a single nil check.
	impairments map[[2]topology.NodeID]*LinkImpairment
	impair      []*LinkImpairment

	// obs/tracer are the observability hooks; both nil when disabled,
	// and every instrumented site is a single nil check so the
	// zero-alloc forwarding invariant holds with obs off.
	obs    *netObs
	tracer *obs.Tracer

	// addrShift maps a packet address to its destination node: the node
	// for address a is uint32(a) >> addrShift. The default (16) is the
	// classic provider-number scheme — the top 16 bits of the address
	// name the node. WideAddressing sets it to 0, making the full 32-bit
	// address the node number, so wide simulations address 10^5+ nodes
	// without changing the wire format.
	addrShift uint8

	// keyed switches the network to deterministic keyed event ordering:
	// every arrival is scheduled with a key derived from (origin node,
	// per-origin sequence) instead of relying on the scheduler's global
	// FIFO tie-break. Same-time ordering then depends only on the
	// simulation itself, never on how nodes are partitioned across
	// shard schedulers. Enabled by the sharded driver (at every shard
	// count, including 1); legacy single-scheduler networks leave it off
	// so their golden outputs are untouched.
	keyed bool
	// keySeq is the per-origin-node key sequence counter (dense).
	keySeq []uint32

	// shardOf/shardID/handoff wire this network into a sharded group:
	// shardOf is the dense NodeID->shard table (nil when unsharded),
	// shardID is this network's own shard, and handoff receives flights
	// whose next hop is owned by another shard. See Sharded.
	shardOf []int32
	shardID int32
	handoff func(f *flight, to topology.NodeID, arrive sim.Time, key uint64)

	// flightFree recycles flight contexts between packets.
	flightFree []*flight
	// traceFree recycles traces for fire-and-forget Inject traffic.
	traceFree []*Trace

	// dropKeys/blockedKeys/malformedKeys intern hot-path counter and
	// trace strings so drops do not concatenate on every packet.
	dropKeys      *sim.KeyCache
	blockedKeys   *sim.KeyCache
	malformedKeys *sim.KeyCache

	// Stats aggregates network-wide counters.
	Stats sim.Counter
	// Delivered and Dropped tally packet fates.
	Delivered, Dropped int
}

// New builds a Network over a topology. All nodes start with no routes,
// no middleboxes, and no delivery handler.
func New(sched *sim.Scheduler, g *topology.Graph) *Network {
	return build(sched, g, false)
}

// NewLean builds a Network without per-node Counters maps: node counter
// increments become no-ops. At ISP scale (10^5+ nodes) the per-node maps
// dominate construction cost and add a map write to every hop; lean
// networks keep the network-wide Stats, obs metrics, and traces, which
// is what the scale scenarios read.
func NewLean(sched *sim.Scheduler, g *topology.Graph) *Network {
	return build(sched, g, true)
}

func build(sched *sim.Scheduler, g *topology.Graph, lean bool) *Network {
	n := &Network{
		Sched:         sched,
		Graph:         g,
		nodes:         make(map[topology.NodeID]*Node, len(g.Nodes)),
		LinkRate:      1e8, // 800 Mbit/s
		MaxQueue:      100 * sim.Millisecond,
		HopProcessing: 10 * sim.Microsecond,
		TraceEventCap: 8,
		addrShift:     16,
		Stats:         sim.Counter{},
		dropKeys:      sim.NewKeyCache("drop:"),
		blockedKeys:   sim.NewKeyCache("blocked:"),
		malformedKeys: sim.NewKeyCache("malformed-after:"),
	}
	// Flat node arena in ascending ID order; the map indexes into it.
	ids := g.NodeIDs()
	n.nodeArr = make([]Node, len(ids))
	for i, id := range ids {
		nd := &n.nodeArr[i]
		nd.ID = id
		nd.Net = n
		if !lean {
			nd.Counters = sim.Counter{}
		}
		n.nodes[id] = nd
	}
	n.InvalidateTopology()
	return n
}

// WideAddressing switches the network to wide packet addressing: the full
// 32-bit TIP address is the destination node number (instead of only the
// top 16 provider bits). Call it before any traffic is sent. Wide mode is
// for generated ISP-scale topologies; source-route options still carry
// provider-style waypoints and are not supported in wide mode.
func (n *Network) WideAddressing() { n.addrShift = 0 }

// dstNode maps a packet destination address to the node that owns it
// under the network's addressing mode.
func (n *Network) dstNode(a packet.Addr) topology.NodeID {
	return topology.NodeID(uint32(a) >> n.addrShift)
}

// AddrOf returns the packet address a packet must carry to be delivered
// at node id under the network's addressing mode.
func (n *Network) AddrOf(id topology.NodeID) packet.Addr {
	return packet.Addr(uint32(id) << n.addrShift)
}

// nextKey allocates the next deterministic ordering key for an event
// originating at node v: (origin node, per-origin sequence). Keys are
// unique per origin and allocated in the origin's own execution order,
// so they are identical at any shard count.
func (n *Network) nextKey(v topology.NodeID) uint64 {
	k := uint64(v)<<32 | uint64(n.keySeq[v])
	n.keySeq[v]++
	return k
}

// netObs bundles the forwarding plane's instruments. Drop counters are
// per-reason and created lazily (drops are off the fast path); the rest
// are pre-bound handles touched once per packet or per hop.
type netObs struct {
	reg       *obs.Registry
	sends     *obs.Counter
	delivered *obs.Counter
	forwarded *obs.Counter
	drops     *obs.Counter
	mboxRuns  *obs.Counter
	rewrites  *obs.Counter
	mboxDrops *obs.Counter
	latency   *obs.Histogram // delivered packets' transit time, sim ns
	hops      *obs.Histogram // delivered packets' forward-hop count
	dropBy    map[string]*obs.Counter
}

// dropCounter returns the per-reason drop counter, creating it on first
// use. reason is always an interned string (KeyCache or literal), so
// the map never accumulates duplicates.
func (o *netObs) dropCounter(reason string) *obs.Counter {
	if c, ok := o.dropBy[reason]; ok {
		return c
	}
	c := o.reg.Counter("netsim.drop." + reason)
	o.dropBy[reason] = c
	return c
}

// AttachObs enables forwarding-plane observability: counters for every
// packet fate (sends, forwards, deliveries, drops by reason), middlebox
// traversal and rewrite counts, and histograms of delivered packets'
// transit time and hop count. tr, when non-nil, additionally receives a
// structured event stream — sends, forwards, deliveries, middlebox
// rewrites, and drops with their reasons — in simulated-time order (the
// run-time contest visibility of §IV-C). Passing a nil registry and nil
// tracer disables observability again.
func (n *Network) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	n.tracer = tr
	if reg == nil {
		n.obs = nil
		return
	}
	n.obs = &netObs{
		reg:       reg,
		sends:     reg.Counter("netsim.sends"),
		delivered: reg.Counter("netsim.delivered"),
		forwarded: reg.Counter("netsim.forwarded"),
		drops:     reg.Counter("netsim.drops"),
		mboxRuns:  reg.Counter("netsim.mbox.runs"),
		rewrites:  reg.Counter("netsim.mbox.rewrites"),
		mboxDrops: reg.Counter("netsim.mbox.drops"),
		latency:   reg.Histogram("netsim.packet_latency_ns", obs.TimeBucketsNs),
		hops:      reg.Histogram("netsim.packet_hops", obs.CountBuckets),
		dropBy:    make(map[string]*obs.Counter),
	}
}

// InvalidateTopology rebuilds the dense adjacency/link-state table from
// the Graph. It must be called after links are added to the Graph of a
// live Network (adding links through the Graph directly does not notify
// the simulator; as a backstop, the table also rebuilds itself when it
// notices the Graph's link count changed). Per-link backlog is preserved
// across rebuilds (link indices are append-only), and fault state — link
// failures, node crashes, and link impairments — is re-derived from the
// FailLink/FailNode/ImpairLink maps, so in-flight traffic and injected
// faults survive a rebuild.
func (n *Network) InvalidateTopology() {
	g := n.Graph
	maxID := topology.NodeID(0)
	for id := range g.Nodes {
		if id > maxID {
			maxID = id
		}
	}
	for _, l := range g.Links {
		if l.A > maxID {
			maxID = l.A
		}
		if l.B > maxID {
			maxID = l.B
		}
	}
	adj := make([][]adjEntry, maxID+1)
	for i, l := range g.Links {
		adj[l.A] = insertAdj(adj[l.A], adjEntry{to: l.B, link: int32(i)})
		adj[l.B] = insertAdj(adj[l.B], adjEntry{to: l.A, link: int32(i)})
	}
	busy := make([]sim.Time, 2*len(g.Links))
	copy(busy, n.lt.busy)
	failed := make([]bool, len(g.Links))
	for i, l := range g.Links {
		if n.failed[linkKey(l.A, l.B)] {
			failed[i] = true
		}
	}
	n.lt = linkTable{adj: adj, busy: busy, failed: failed, nlinks: len(g.Links)}

	nodeDown := make([]bool, maxID+1)
	for id := range n.downNodes {
		if int(id) < len(nodeDown) {
			nodeDown[id] = true
		}
	}
	n.nodeDown = nodeDown
	n.impair = nil
	if len(n.impairments) > 0 {
		impair := make([]*LinkImpairment, len(g.Links))
		for i, l := range g.Links {
			impair[i] = n.impairments[linkKey(l.A, l.B)]
		}
		n.impair = impair
	}

	nodesByID := make([]*Node, maxID+1)
	for id, nd := range n.nodes {
		if int(id) < len(nodesByID) {
			nodesByID[id] = nd
		}
	}
	n.nodesByID = nodesByID

	if len(n.keySeq) < int(maxID)+1 {
		keySeq := make([]uint32, maxID+1)
		copy(keySeq, n.keySeq)
		n.keySeq = keySeq
	}
}

// insertAdj inserts e into row keeping it sorted by neighbor ID, so
// lookups and iteration stay deterministic.
func insertAdj(row []adjEntry, e adjEntry) []adjEntry {
	i := len(row)
	for i > 0 && row[i-1].to > e.to {
		i--
	}
	row = append(row, adjEntry{})
	copy(row[i+1:], row[i:])
	row[i] = e
	return row
}

// linkIndex returns the Graph.Links index of the from→to adjacency, or
// -1 when the nodes are not adjacent. It transparently rebuilds the dense
// table if links were added behind the simulator's back.
func (n *Network) linkIndex(from, to topology.NodeID) int32 {
	if n.lt.nlinks != len(n.Graph.Links) {
		n.InvalidateTopology()
	}
	if int(from) >= len(n.lt.adj) {
		return -1
	}
	for _, e := range n.lt.adj[from] {
		if e.to == to {
			return e.link
		}
	}
	return -1
}

// Node returns the node for id; it panics on unknown IDs (a wiring bug).
func (n *Network) Node(id topology.NodeID) *Node {
	if int(id) < len(n.nodesByID) {
		if nd := n.nodesByID[id]; nd != nil {
			return nd
		}
	}
	if nd, ok := n.nodes[id]; ok {
		return nd
	}
	panic(fmt.Sprintf("netsim: unknown node %d", id))
}

// TraceEvent is one step in a packet's life.
type TraceEvent struct {
	At     sim.Time
	Node   topology.NodeID
	Action string // "send", "forward", "deliver", "drop"
	Detail string // drop reason or middlebox name; empty when silent
}

// Trace is the per-packet record: the fault-isolation tool.
type Trace struct {
	Events    []TraceEvent
	Delivered bool
	// DropNode/DropReason are set when the packet died. For a silent
	// middlebox the reason is "lost" and the responsible device is not
	// identified — diagnosis must fall back on path inference.
	DropNode   topology.NodeID
	DropReason string
	SentAt     sim.Time
	DoneAt     sim.Time
}

// Path returns the sequence of nodes the packet visited.
func (t *Trace) Path() []topology.NodeID {
	var p []topology.NodeID
	for _, e := range t.Events {
		if e.Action != "drop" {
			p = append(p, e.Node)
		}
	}
	return p
}

// Latency returns the packet's network transit time (zero if undelivered).
func (t *Trace) Latency() sim.Time {
	if !t.Delivered {
		return 0
	}
	return t.DoneAt - t.SentAt
}

func (t *Trace) record(at sim.Time, node topology.NodeID, action, detail string) {
	t.Events = append(t.Events, TraceEvent{At: at, Node: node, Action: action, Detail: detail})
}

// flight carries one packet through the network: the bytes, the decoded
// network header (kept coherent with the bytes — see the package
// comment), the trace, and the node the packet is headed to. The struct
// and its single scheduling closure are allocated once and recycled
// through Network.flightFree, so per-hop scheduling allocates nothing.
type flight struct {
	net  *Network
	t    *Trace
	data []byte
	tip  packet.TIP
	node *Node
	dir  Direction
	hops int    // forward hops taken, for the obs hop histogram
	run  func() // method value for f.step, created once per flight

	// buf is the flight-owned byte buffer used by Inject: the packet is
	// copied into it so the caller's buffer can be reused immediately,
	// and it is retained across recycles so steady-state injection does
	// not allocate.
	buf []byte
	// pooled marks fire-and-forget flights whose Trace returns to the
	// network's trace pool on termination.
	pooled bool
}

// newFlight returns a recycled or fresh flight context.
func (n *Network) newFlight() *flight {
	if k := len(n.flightFree); k > 0 {
		f := n.flightFree[k-1]
		n.flightFree = n.flightFree[:k-1]
		return f
	}
	f := &flight{net: n}
	f.run = f.step
	return f
}

// releaseFlight recycles a terminated flight. The decoded TIP keeps its
// option structs so DecodeReuse on the next tenant is allocation-free;
// flight-owned buffers (Inject) are likewise retained.
func (n *Network) releaseFlight(f *flight) {
	if f.pooled && f.t != nil {
		n.traceFree = append(n.traceFree, f.t)
		f.pooled = false
	}
	f.t = nil
	f.data = nil
	f.node = nil
	n.flightFree = append(n.flightFree, f)
}

// newTrace returns a pooled or fresh Trace initialized for a send now.
func (n *Network) newTrace() *Trace {
	if k := len(n.traceFree); k > 0 {
		t := n.traceFree[k-1]
		n.traceFree = n.traceFree[:k-1]
		*t = Trace{Events: t.Events[:0], SentAt: n.Sched.Now()}
		return t
	}
	return &Trace{SentAt: n.Sched.Now(), Events: make([]TraceEvent, 0, n.TraceEventCap)}
}

// step runs the flight's packet through the node it has arrived at. It is
// scheduled via f.run for every hop.
func (f *flight) step() {
	if f.dir == Sending {
		if !f.pooled {
			f.t.record(f.net.Sched.Now(), f.node.ID, "send", "")
		}
		if err := f.tip.DecodeReuse(f.data); err != nil {
			f.net.dropFlight(f, f.node.ID, "malformed")
			return
		}
	}
	f.node.process(f)
}

// Send injects a packet at node src. The returned Trace fills in as the
// simulation runs; inspect it after the scheduler drains.
func (n *Network) Send(src topology.NodeID, data []byte) *Trace {
	t := &Trace{SentAt: n.Sched.Now(), Events: make([]TraceEvent, 0, n.TraceEventCap)}
	f := n.newFlight()
	f.t = t
	f.data = data
	f.node = n.Node(src)
	f.dir = Sending
	f.hops = 0
	if n.obs != nil {
		n.obs.sends.Inc()
	}
	if n.tracer.Enabled() {
		n.tracer.Emit(obs.Event{Time: int64(n.Sched.Now()), Scope: "netsim", Kind: "send", Node: int64(src)})
	}
	if n.keyed {
		n.Sched.AtKeyed(n.Sched.Now(), n.nextKey(src), f.run)
	} else {
		n.Sched.After(0, f.run)
	}
	return t
}

// Inject sends a packet at src fire-and-forget: the bytes are copied
// into a flight-owned buffer (the caller's slice may be reused
// immediately) and the Trace is drawn from and returned to a pool when
// the packet terminates. Scale scenarios injecting 10^7 packets use it
// to keep steady-state traffic free of per-packet allocation.
func (n *Network) Inject(src topology.NodeID, data []byte) {
	f := n.newFlight()
	f.t = n.newTrace()
	f.pooled = true
	f.buf = append(f.buf[:0], data...)
	f.data = f.buf
	f.node = n.Node(src)
	f.dir = Sending
	f.hops = 0
	if n.obs != nil {
		n.obs.sends.Inc()
	}
	if n.tracer.Enabled() {
		n.tracer.Emit(obs.Event{Time: int64(n.Sched.Now()), Scope: "netsim", Kind: "send", Node: int64(src)})
	}
	if n.keyed {
		n.Sched.AtKeyed(n.Sched.Now(), n.nextKey(src), f.run)
	} else {
		n.Sched.After(0, f.run)
	}
}

// InjectArrival presents raw wire bytes to node id exactly as a transit
// arrival: the node decodes them, runs its middlebox chain, and then
// delivers, forwards, or drops — the same decision sequence a live UDP
// engine makes for a datagram hitting that node's socket. This is the
// differential-twin seam: internal/wire feeds identical bytes to its
// dataplane and to InjectArrival and asserts the decision logs match.
//
// Unlike Send, the bytes are decoded before any processing (a wire
// datagram arrives unparsed), so malformed input terminates with a
// "malformed" drop at id — mirroring the wire engine's sanity filter and
// decode rejections. The bytes are copied; the caller's slice may be
// reused immediately. The returned Trace fills in as the scheduler runs.
func (n *Network) InjectArrival(id topology.NodeID, data []byte) *Trace {
	t := &Trace{SentAt: n.Sched.Now(), Events: make([]TraceEvent, 0, n.TraceEventCap)}
	f := n.newFlight()
	f.t = t
	f.buf = append(f.buf[:0], data...)
	f.data = f.buf
	f.node = n.Node(id)
	f.dir = Forwarding
	f.hops = 0
	if n.obs != nil {
		n.obs.sends.Inc()
	}
	if n.tracer.Enabled() {
		// Arrivals enter the network without an originating Send; emitting
		// the "send" event here keeps packet conservation accountable (every
		// termination stems from exactly one send, dup, or arrival).
		n.tracer.Emit(obs.Event{Time: int64(n.Sched.Now()), Scope: "netsim", Kind: "send", Node: int64(id)})
	}
	run := func() {
		if err := f.tip.DecodeReuse(f.data); err != nil {
			f.net.dropFlight(f, f.node.ID, "malformed")
			return
		}
		f.node.process(f)
	}
	if n.keyed {
		n.Sched.AtKeyed(n.Sched.Now(), n.nextKey(id), run)
	} else {
		n.Sched.After(0, run)
	}
	return t
}

// AtNode schedules a user callback (typically a traffic generator's next
// send) at time t, ordered by an event key allocated from node v. In
// keyed (sharded) mode this is what makes generator callbacks interleave
// with packet arrivals identically at every shard count; unkeyed
// networks fall back to plain At.
func (n *Network) AtNode(t sim.Time, v topology.NodeID, fn func()) {
	if n.keyed {
		n.Sched.AtKeyed(t, n.nextKey(v), fn)
	} else {
		n.Sched.At(t, fn)
	}
}

func (n *Network) drop(t *Trace, node topology.NodeID, reason string, quiet bool) {
	n.Dropped++
	n.Stats.Inc(n.dropKeys.Key(reason))
	if n.obs != nil {
		n.obs.drops.Inc()
		n.obs.dropCounter(reason).Inc()
	}
	if n.tracer.Enabled() {
		n.tracer.Emit(obs.Event{Time: int64(n.Sched.Now()), Scope: "netsim", Kind: "drop", Node: int64(node), Detail: reason})
	}
	t.DropNode = node
	t.DropReason = reason
	t.DoneAt = n.Sched.Now()
	if !quiet {
		t.record(n.Sched.Now(), node, "drop", reason)
	}
}

// dropFlight terminates a flight with a drop and recycles its context.
func (n *Network) dropFlight(f *flight, node topology.NodeID, reason string) {
	n.drop(f.t, node, reason, f.pooled)
	n.releaseFlight(f)
}

// process runs a packet through a node: middleboxes, then delivery or
// forwarding. The flight's decoded header is trusted (no per-hop decode);
// it is re-decoded only after a middlebox transform.
func (nd *Node) process(f *flight) {
	n := nd.Net
	// A crashed node neither forwards, delivers, nor originates. The drop
	// is silent from the outside ("node-down" never names a responding
	// device): a dead router cannot send error reports, so diagnosis must
	// come from the upstream neighbor's "peer-down" detection instead.
	if n.nodeDown[nd.ID] {
		n.dropFlight(f, nd.ID, "node-down")
		return
	}
	dir := f.dir
	if dir != Sending {
		if n.dstNode(f.tip.Dst) == nd.ID {
			dir = Delivering
		} else {
			dir = Forwarding
		}
	}
	// Middlebox chain (single-pass: see the Middlebox interface comment).
	for _, m := range nd.Middleboxes {
		if n.obs != nil {
			n.obs.mboxRuns.Inc()
		}
		out, verdict := m.Process(nd.ID, dir, f.data)
		if verdict == Drop {
			if nd.Counters != nil {
				nd.Counters.Inc("mbox_drop")
			}
			if n.obs != nil {
				n.obs.mboxDrops.Inc()
			}
			reason := "lost"
			if !m.Silent() {
				reason = n.blockedKeys.Key(m.Name())
			}
			n.dropFlight(f, nd.ID, reason)
			return
		}
		if out != nil {
			f.data = out
			if n.obs != nil {
				n.obs.rewrites.Inc()
			}
			if n.tracer.Enabled() {
				// A silent device's rewrite stays anonymous in the event
				// stream, mirroring the drop-report rule.
				detail := ""
				if !m.Silent() {
					detail = m.Name()
				}
				n.tracer.Emit(obs.Event{Time: int64(n.Sched.Now()), Scope: "netsim", Kind: "mbox-rewrite", Node: int64(nd.ID), Detail: detail})
			}
			// Transformations may rewrite headers; re-decode to restore
			// bytes/decoded-header coherence.
			if err := f.tip.DecodeReuse(out); err != nil {
				n.dropFlight(f, nd.ID, n.malformedKeys.Key(m.Name()))
				return
			}
			if n.dstNode(f.tip.Dst) == nd.ID {
				dir = Delivering
			} else if dir == Delivering {
				dir = Forwarding
			}
		}
	}
	if dir == Delivering {
		n.Delivered++
		t := f.t
		t.Delivered = true
		t.DoneAt = n.Sched.Now()
		if !f.pooled {
			t.record(n.Sched.Now(), nd.ID, "deliver", "")
		}
		if nd.Counters != nil {
			nd.Counters.Inc("delivered")
		}
		if n.obs != nil {
			n.obs.delivered.Inc()
			n.obs.latency.Observe(float64(t.DoneAt - t.SentAt))
			n.obs.hops.Observe(float64(f.hops))
		}
		if n.tracer.Enabled() {
			n.tracer.Emit(obs.Event{Time: int64(t.DoneAt), Scope: "netsim", Kind: "deliver", Node: int64(nd.ID), Value: float64(t.DoneAt - t.SentAt)})
		}
		if nd.Deliver != nil {
			nd.Deliver(nd, t, f.data)
		}
		n.releaseFlight(f)
		return
	}
	// Forwarding: TTL.
	if dir == Forwarding {
		ttl, err := packet.DecrementTTL(f.data)
		if err != nil {
			n.dropFlight(f, nd.ID, "malformed")
			return
		}
		f.tip.TTL = ttl // keep the decoded header coherent with the bytes
		if ttl == 0 {
			n.dropFlight(f, nd.ID, "ttl")
			return
		}
		if !f.pooled {
			f.t.record(n.Sched.Now(), nd.ID, "forward", "")
		}
		if nd.Counters != nil {
			nd.Counters.Inc("forwarded")
		}
		f.hops++
		if n.obs != nil {
			n.obs.forwarded.Inc()
		}
	}
	next, ok := nd.nextHop(f)
	if !ok {
		n.dropFlight(f, nd.ID, "no-route")
		return
	}
	li := n.linkIndex(nd.ID, next)
	if li < 0 {
		n.dropFlight(f, nd.ID, "bad-next-hop")
		return
	}
	n.transmit(f, nd.ID, next, li)
}

// nextHop picks the egress neighbor, honoring source routes when the
// node's policy allows it.
func (nd *Node) nextHop(f *flight) (topology.NodeID, bool) {
	tip := &f.tip
	if nd.HonorSourceRoutes {
		if wp, ok := packet.PeekSourceRoute(f.data); ok {
			allowed := true
			if nd.srcRoutePolicy != nil {
				// Compiled admission policy: fail-safe deny, bounded by
				// the per-packet budget. wire.Dataplane.nextHop runs the
				// identical check at the identical point.
				allowed = nd.srcRoutePolicy.Allow(nd.srcRouteSlots, tip, wp)
				if !allowed && nd.Counters != nil {
					nd.Counters.Inc("srcroute_denied")
				}
			} else if nd.RequirePaymentForSourceRoute && tip.Payment == nil {
				allowed = false
				if nd.Counters != nil {
					nd.Counters.Inc("srcroute_unpaid")
				}
			}
			if allowed {
				if wp == packet.MakeAddr(uint16(nd.ID), 0) || wp.Provider() == uint16(nd.ID) {
					// We are the current waypoint: advance to the next.
					nxt, advanced, err := packet.AdvanceSourceRoute(f.data)
					if err == nil {
						// Mirror the in-place pointer bump into the
						// decoded header (coherence rule).
						if advanced && tip.SourceRoute != nil && !tip.SourceRoute.Exhausted() {
							tip.SourceRoute.Ptr++
						}
						if nxt != packet.AddrNone {
							wp = nxt
						} else {
							wp = tip.Dst // route exhausted: head to destination
						}
					}
				}
				if nd.Counters != nil {
					nd.Counters.Inc("srcroute_honored")
				}
				// Route toward the waypoint's provider. If the waypoint is
				// a direct neighbor, use it.
				target := topology.NodeID(wp.Provider())
				if target == nd.ID {
					target = topology.NodeID(tip.Dst.Provider())
				}
				if nd.Net.linkIndex(nd.ID, target) >= 0 {
					return target, true
				}
				if nd.Route != nil {
					return nd.Route(packet.MakeAddr(uint16(target), 0), tip)
				}
				return 0, false
			}
		}
	}
	if nd.Route == nil {
		return 0, false
	}
	return nd.Route(tip.Dst, tip)
}

// transmit models link serialization + propagation + queueing. li is the
// Graph.Links index of the from→to adjacency (already validated).
func (n *Network) transmit(f *flight, from, to topology.NodeID, li int32) {
	if n.lt.failed[li] {
		n.dropFlight(f, from, "link-down")
		return
	}
	// A dead adjacency is detected by the live endpoint (keepalive loss),
	// so the drop is attributed to the upstream node — this is what lets
	// traceroute localize a crashed node to one hop.
	if n.nodeDown[to] {
		n.dropFlight(f, from, "peer-down")
		return
	}
	link := &n.Graph.Links[li]
	di := 2 * int(li)
	if link.A != from {
		di++
	}
	now := n.Sched.Now()
	busy := n.lt.busy[di]
	if busy < now {
		busy = now
	}
	txTime := sim.Time(float64(len(f.data)) / n.LinkRate * float64(sim.Second))
	// Tail-drop admission: the packet is accepted only if the backlog it
	// leaves behind (waiting + its own serialization) fits in MaxQueue,
	// so the bound cannot be exceeded. (An earlier revision compared the
	// pre-admission backlog, letting the queue overshoot by one packet.)
	if busy-now+txTime > n.MaxQueue {
		n.dropFlight(f, from, "queue-overflow")
		return
	}
	busy += txTime
	n.lt.busy[di] = busy
	if n.tracer.Enabled() {
		// Value is the backlog the admitted packet leaves behind (waiting
		// plus its own serialization) — the quantity MaxQueue bounds, so
		// an invariant checker can verify admission never exceeds it.
		n.tracer.Emit(obs.Event{Time: int64(now), Scope: "netsim", Kind: "enqueue", Node: int64(from), Value: float64(busy - now)})
	}
	arrive := busy + link.Latency + n.HopProcessing
	if n.impair != nil {
		if imp := n.impair[li]; imp != nil && !imp.apply(n, f, from, to, di&1, arrive, txTime, &arrive) {
			return
		}
	}
	n.schedArrival(f, from, to, arrive)
}

// schedArrival hands an in-flight packet to its next node: through the
// local scheduler, or through the sharded handoff when the next hop is
// owned by another shard. In keyed mode the event key is allocated from
// the sending node in the sender's own execution order, so same-time
// arrival ordering is identical at every shard count.
func (n *Network) schedArrival(f *flight, from, to topology.NodeID, arrive sim.Time) {
	if !n.keyed {
		f.node = n.Node(to)
		f.dir = Forwarding
		n.Sched.At(arrive, f.run)
		return
	}
	key := n.nextKey(from)
	if n.shardOf != nil && n.shardOf[to] != n.shardID {
		n.handoff(f, to, arrive, key)
		return
	}
	f.node = n.Node(to)
	f.dir = Forwarding
	n.Sched.AtKeyed(arrive, key, f.run)
}

// apply runs one impaired link's coin flips on a transiting packet.
// Returns false when the packet was consumed (corrupted and dropped);
// otherwise *out holds the possibly-jittered arrival time. dir is the
// directed-link bit (0 for A→B, 1 for B→A). On an unkeyed network a
// single RNG is owned by the impairment and advances once per
// probability configured, so outcomes are a pure function of the
// impairment seed and the order of transmissions over the link. Keyed
// (sharded) networks use a per-direction fork instead: each direction's
// transmissions are executed by the sender's shard in an order that is
// shard-count-independent, while the interleaving of the two directions
// is not — forking the stream per direction removes that dependence.
func (imp *LinkImpairment) apply(n *Network, f *flight, from, to topology.NodeID, dir int, arrive, txTime sim.Time, out *sim.Time) bool {
	rng := imp.rng
	if imp.dirRNG[dir] != nil {
		rng = imp.dirRNG[dir]
	}
	if imp.Corrupt > 0 && rng.Bool(imp.Corrupt) {
		// The corruption is detected by the receiver's checksum: the drop
		// is attributed to the downstream end, reason "corrupt".
		n.dropFlight(f, to, "corrupt")
		return false
	}
	if imp.Duplicate > 0 && rng.Bool(imp.Duplicate) {
		n.duplicate(f, from, to, arrive+txTime)
	}
	if imp.ReorderProb > 0 && rng.Bool(imp.ReorderProb) && imp.ReorderJitter > 0 {
		*out = arrive + sim.Time(rng.Float64()*float64(imp.ReorderJitter))
	}
	return true
}

// duplicate injects a copy of a transiting packet, arriving one extra
// serialization time behind the original. The copy gets its own flight
// and internal trace; its fate shows up in the usual delivery/drop
// counters (tagged by the "dup-injected" stat), not in the original
// packet's trace.
func (n *Network) duplicate(f *flight, from, to topology.NodeID, arrive sim.Time) {
	g := n.newFlight()
	g.t = &Trace{SentAt: f.t.SentAt, Events: make([]TraceEvent, 0, n.TraceEventCap)}
	g.data = append(g.buf[:0], f.data...)
	g.buf = g.data
	if err := g.tip.DecodeReuse(g.data); err != nil {
		n.releaseFlight(g)
		return
	}
	g.hops = f.hops
	n.Stats.Inc("dup-injected")
	if n.tracer.Enabled() {
		// Duplicates enter the network without a "send" event; the "dup"
		// event keeps packet conservation accountable: every termination
		// (deliver or drop) stems from exactly one send or dup.
		n.tracer.Emit(obs.Event{Time: int64(n.Sched.Now()), Scope: "netsim", Kind: "dup", Node: int64(to)})
	}
	n.schedArrival(g, from, to, arrive)
}

// DeliveryRatio returns delivered / (delivered + dropped), or 0 when no
// packets have terminated.
func (n *Network) DeliveryRatio() float64 {
	total := n.Delivered + n.Dropped
	if total == 0 {
		return 0
	}
	return float64(n.Delivered) / float64(total)
}
