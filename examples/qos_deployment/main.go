// QoS deployment: the §VII post-mortem as a runnable scenario. The
// example shows the scheduling plane working (gold beats best-effort on
// a congested link), then runs the 2×2 deployment game to show *why*
// working mechanism wasn't enough: without value flow and consumer
// choice, no provider turns it on.
//
// Run with: go run ./examples/qos_deployment
package main

import (
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/qos"
	"repro/internal/sim"
)

func main() {
	// Part 1: the mechanism works. A congested 200 KB/s link carrying
	// VoIP at gold and bulk at best-effort.
	fmt.Println("— the mechanism —")
	for _, disc := range []qos.Discipline{qos.FIFO, qos.StrictPriority, qos.WFQ} {
		link := qos.NewLinkSim(2e5, disc)
		link.Weights = [qos.NumClasses]float64{1, 1, 1, 4}
		rng := sim.NewRNG(1)
		for i := 0; i < 400; i++ {
			arrive := sim.Time(rng.Intn(1000)) * sim.Millisecond
			link.Add(qos.Gold, 200, arrive)        // VoIP frames
			link.Add(qos.BestEffort, 4000, arrive) // bulk
		}
		link.Run()
		delays := link.MeanDelayByClass()
		name := map[qos.Discipline]string{qos.FIFO: "fifo", qos.StrictPriority: "priority", qos.WFQ: "wfq"}[disc]
		fmt.Printf("  %-8s voip delay %8v (score %.2f)   bulk delay %8v\n",
			name, delays[qos.Gold], apps.VoIPScore(delays[qos.Gold]), delays[qos.BestEffort])
	}

	// Part 2: the tussle. Whether anyone deploys the working mechanism
	// depends on greed (value flow) and fear (consumer choice).
	fmt.Println("\n— the tussle (§VII 2×2) —")
	res := experiments.E11QoSDeployment(42)
	res.Render(os.Stdout)

	// Part 3: the multicast footnote — same game, plus a coordination
	// threshold, and deployment dies even with value flow.
	fmt.Println("— footnote 19: multicast —")
	experiments.E15Multicast(42).Render(os.Stdout)
}
