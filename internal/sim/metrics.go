package sim

import (
	"math"
	"sort"
)

// Series accumulates scalar observations and computes summary statistics.
// It is the workhorse for experiment metrics throughout the repository.
//
// Order statistics (Percentile, Gini) are served from a sorted cache that
// is invalidated by Add and rebuilt at most once between Adds, so bursts
// of statistic calls cost one sort instead of one sort each. Min and Max
// are maintained incrementally and never sort at all.
type Series struct {
	vals []float64
	sum  float64
	min  float64
	max  float64

	// sorted caches the observations in ascending order; valid only when
	// dirty is false and the series is non-empty. The buffer is reused
	// across rebuilds.
	sorted []float64
	dirty  bool
}

// Add records one observation.
func (s *Series) Add(v float64) {
	if len(s.vals) == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.vals = append(s.vals, v)
	s.sum += v
	s.dirty = true
}

// N returns the number of observations.
func (s *Series) N() int { return len(s.vals) }

// Sum returns the total of all observations.
func (s *Series) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Var returns the population variance, or 0 for fewer than 2 observations.
func (s *Series) Var() float64 {
	if len(s.vals) < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(s.vals))
}

// Stddev returns the population standard deviation.
func (s *Series) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the minimum observation. An empty series returns 0 — the
// same defined sentinel every other statistic uses — rather than ±Inf,
// which poisons downstream arithmetic and cannot be serialized as JSON.
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.min
}

// Max returns the maximum observation, or 0 for an empty series (see Min).
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.max
}

// sortedVals returns the observations in ascending order, rebuilding the
// cache only if observations were added since the last rebuild. Callers
// must not mutate the returned slice.
func (s *Series) sortedVals() []float64 {
	if s.dirty {
		s.sorted = append(s.sorted[:0], s.vals...)
		sort.Float64s(s.sorted)
		s.dirty = false
	}
	return s.sorted
}

// Percentile returns the p-th percentile (0..100) using nearest-rank over
// the sorted cache. Returns 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := s.sortedVals()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Values returns a copy of the raw observations in insertion order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Gini computes the Gini coefficient of the observations — used as an
// inequality measure for welfare and market-share distributions. Values
// must be non-negative; returns 0 for empty or all-zero series.
func (s *Series) Gini() float64 {
	n := len(s.vals)
	if n == 0 || s.sum == 0 {
		return 0
	}
	var cum float64
	for i, v := range s.sortedVals() {
		cum += v * float64(2*(i+1)-n-1)
	}
	return cum / (float64(n) * s.sum)
}

// KeyCache interns prefix+suffix counter keys so hot paths can count
// parameterized events ("drop:<reason>", "blocked:<device>") without
// re-concatenating — and so re-allocating — the key string on every
// increment. Each distinct suffix allocates its composite key once; all
// later lookups return the cached string. A KeyCache is not safe for
// concurrent use; give each single-threaded simulation its own.
type KeyCache struct {
	prefix string
	keys   map[string]string
}

// NewKeyCache returns an interner for keys of the form prefix+suffix.
func NewKeyCache(prefix string) *KeyCache {
	return &KeyCache{prefix: prefix, keys: make(map[string]string)}
}

// Key returns the interned prefix+suffix string, building it on first use.
func (kc *KeyCache) Key(suffix string) string {
	if k, ok := kc.keys[suffix]; ok {
		return k
	}
	k := kc.prefix + suffix
	kc.keys[suffix] = k
	return k
}

// Counter is a simple named event counter map.
type Counter map[string]int

// Inc increments a named counter by one and returns the new value.
func (c Counter) Inc(name string) int {
	c[name]++
	return c[name]
}

// Addn increments a named counter by n.
func (c Counter) Addn(name string, n int) { c[name] += n }

// Get returns the count for name (0 if never incremented).
func (c Counter) Get(name string) int { return c[name] }
