package chaos

import (
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/routing/linkstate"
	"repro/internal/routing/pathvector"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trust"
)

// This file wires routing protocols to the fault engine: each rerouter
// is an Observer that resynchronizes its protocol's view of the topology
// from the network's actual fault state, recomputes routes, and installs
// the new tables after a modeled reconvergence delay. Convergence time
// and route churn are exported as plain fields (for deterministic
// experiment tables) and obs histograms (for -metrics snapshots).
//
// Rerouters resync from netsim ground truth rather than applying event
// diffs, so they are idempotent under duplicate notifications and
// independent of event ordering — a partition and the same links failed
// one by one converge to identical tables.

// rerouteObs is the shared instrument bundle; protocol adapters bind it
// to protocol-specific metric names.
type rerouteObs struct {
	reconverges *obs.Counter
	delayNs     *obs.Histogram
	churn       *obs.Histogram
}

func (ro *rerouteObs) attach(reg *obs.Registry, prefix string) {
	if reg == nil {
		ro.reconverges, ro.delayNs, ro.churn = nil, nil, nil
		return
	}
	ro.reconverges = reg.Counter(prefix + ".reconverges")
	ro.delayNs = reg.Histogram(prefix+".reconverge_time_ns", obs.TimeBucketsNs)
	ro.churn = reg.Histogram(prefix+".route_churn", obs.CountBuckets)
}

// nextHops is a snapshot of every node's next hop per destination, the
// unit of churn accounting.
type nextHops map[topology.NodeID]map[topology.NodeID]topology.NodeID

// churnCount counts (node, dst) pairs whose next hop changed, appeared,
// or disappeared between two snapshots.
func churnCount(prev, cur nextHops) int {
	churn := 0
	for node, curTable := range cur {
		prevTable := prev[node]
		for dst, nh := range curTable {
			if p, ok := prevTable[dst]; !ok || p != nh {
				churn++
			}
		}
		for dst := range prevTable {
			if _, ok := curTable[dst]; !ok {
				churn++
			}
		}
	}
	for node, prevTable := range prev {
		if _, ok := cur[node]; !ok {
			churn += len(prevTable)
		}
	}
	return churn
}

// floodRadius is the hop distance (over live links and nodes) from the
// fault site to the farthest reachable node: how many flooding hops the
// news must travel before the whole network has heard it.
func floodRadius(net *netsim.Network, seeds []topology.NodeID) int {
	g := net.Graph
	dist := make(map[topology.NodeID]int, len(g.Nodes))
	queue := make([]topology.NodeID, 0, len(g.Nodes))
	for _, s := range seeds {
		if _, ok := g.Nodes[s]; !ok {
			continue
		}
		if net.NodeFailed(s) {
			// A crashed node announces nothing; its live neighbors detect
			// the death simultaneously and originate the news.
			for _, nb := range g.Neighbors(s) {
				if net.NodeFailed(nb) {
					continue
				}
				if _, seen := dist[nb]; !seen {
					dist[nb] = 0
					queue = append(queue, nb)
				}
			}
			continue
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	radius := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(id) {
			if net.LinkFailed(id, nb) || net.NodeFailed(nb) {
				continue
			}
			if _, seen := dist[nb]; seen {
				continue
			}
			dist[nb] = dist[id] + 1
			if dist[nb] > radius {
				radius = dist[nb]
			}
			queue = append(queue, nb)
		}
	}
	return radius
}

// faultSite lists the nodes where an event's news originates.
func faultSite(ev Event) []topology.NodeID {
	switch ev.Kind {
	case LinkDown, LinkUp, LinkFlap, Impair, ClearImpair:
		return []topology.NodeID{ev.A, ev.B}
	case NodeCrash, NodeRecover:
		return []topology.NodeID{ev.Node}
	case Partition:
		return ev.Group
	case ByzantineBurst:
		return []topology.NodeID{ev.Node}
	default: // Heal: the news comes up everywhere the cut was; approximate
		return nil
	}
}

// topologyFault reports whether the event changes connectivity (and so
// warrants a routing reconvergence).
func topologyFault(k Kind) bool {
	switch k {
	case LinkDown, LinkUp, LinkFlap, NodeCrash, NodeRecover, Partition, Heal:
		return true
	}
	return false
}

// installer arms a delayed table install guarded by a generation
// counter, so a newer reconvergence supersedes an older one still in
// flight (its install becomes a no-op).
type installer struct {
	gen int
}

func (ins *installer) arm(sched *sim.Scheduler, delay sim.Time, install func()) {
	ins.gen++
	gen := ins.gen
	sched.After(delay, func() {
		if ins.gen == gen {
			install()
		}
	})
}

// LinkStateRerouter re-converges a ground-truth link-state Database on
// every topology fault: failed links and crashed nodes are masked with
// negative cost overrides (SPF skips them), tables are recomputed, and —
// after a modeled flooding+SPF delay — installed on every node. With
// Install false it is a shadow instance: it measures reconvergence time
// and churn without touching forwarding (useful to report link-state
// convergence while the network forwards by another protocol).
type LinkStateRerouter struct {
	Net *netsim.Network
	DB  *linkstate.Database
	// Install controls whether recomputed tables are installed as node
	// RouteFuncs after the delay.
	Install bool
	// FloodHopDelay is the per-hop LSA propagation delay; the modeled
	// reconvergence time is radius × FloodHopDelay + ComputeDelay.
	FloodHopDelay sim.Time
	// ComputeDelay is the fixed SPF computation cost.
	ComputeDelay sim.Time

	// Reconverges, TotalDelay and TotalChurn accumulate for experiment
	// tables (deterministic, obs-independent).
	Reconverges int
	TotalDelay  sim.Time
	TotalChurn  int

	saved map[[2]topology.NodeID]*float64 // pre-mask override state
	prev  nextHops
	ins   installer
	ro    rerouteObs
}

// NewLinkStateRerouter builds a rerouter with the default delay model
// (500µs per flooding hop, 100µs SPF).
func NewLinkStateRerouter(net *netsim.Network, db *linkstate.Database, install bool) *LinkStateRerouter {
	return &LinkStateRerouter{
		Net: net, DB: db, Install: install,
		FloodHopDelay: 500 * sim.Microsecond,
		ComputeDelay:  100 * sim.Microsecond,
		saved:         map[[2]topology.NodeID]*float64{},
	}
}

// AttachObs binds the rerouter's reconvergence metrics. A nil registry
// disables again.
func (r *LinkStateRerouter) AttachObs(reg *obs.Registry) { r.ro.attach(reg, "routing.linkstate") }

// Converge recomputes (and, when Install is set, immediately installs)
// tables from the current fault state without modeling any delay — call
// it once at setup for the initial healthy tables.
func (r *LinkStateRerouter) Converge() {
	tables := r.recompute()
	r.prev = tablesNextHops(tables)
	if r.Install {
		r.install(tables)
	}
}

// Fault implements Observer.
func (r *LinkStateRerouter) Fault(ev Event, now sim.Time) {
	if !topologyFault(ev.Kind) {
		return
	}
	tables := r.recompute()
	cur := tablesNextHops(tables)
	churn := churnCount(r.prev, cur)
	r.prev = cur
	delay := sim.Time(floodRadius(r.Net, faultSite(ev)))*r.FloodHopDelay + r.ComputeDelay
	r.Reconverges++
	r.TotalDelay += delay
	r.TotalChurn += churn
	if r.ro.reconverges != nil {
		r.ro.reconverges.Inc()
		r.ro.delayNs.Observe(float64(delay))
		r.ro.churn.Observe(float64(churn))
	}
	if r.Install {
		r.ins.arm(r.Net.Sched, delay, func() { r.install(tables) })
	}
}

// recompute masks every currently-failed link and crashed node in the
// database (negative cost ⇒ SPF skips the edge), restores masks for
// healed elements, and recomputes all tables.
func (r *LinkStateRerouter) recompute() map[topology.NodeID]*linkstate.Table {
	for _, l := range r.Net.Graph.Links {
		down := r.Net.LinkFailed(l.A, l.B) || r.Net.NodeFailed(l.A) || r.Net.NodeFailed(l.B)
		r.mask(l.A, l.B, down)
		r.mask(l.B, l.A, down)
	}
	return linkstate.Compute(r.DB)
}

// mask sets or clears the fault override on the directed edge a→b,
// preserving any pre-existing traffic-engineering override underneath.
func (r *LinkStateRerouter) mask(a, b topology.NodeID, down bool) {
	key := [2]topology.NodeID{a, b}
	prevSaved, masked := r.saved[key]
	if down {
		if masked {
			return
		}
		if c, ok := r.DB.Overrides[key]; ok {
			cc := c
			r.saved[key] = &cc
		} else {
			r.saved[key] = nil
		}
		r.DB.SetCost(a, b, -1)
		return
	}
	if !masked {
		return
	}
	if prevSaved != nil {
		r.DB.SetCost(a, b, *prevSaved)
	} else {
		delete(r.DB.Overrides, key)
	}
	delete(r.saved, key)
}

func (r *LinkStateRerouter) install(tables map[topology.NodeID]*linkstate.Table) {
	for id, tbl := range tables {
		r.Net.Node(id).Route = tbl.RouteFunc()
	}
}

func tablesNextHops(tables map[topology.NodeID]*linkstate.Table) nextHops {
	nh := make(nextHops, len(tables))
	for id, tbl := range tables {
		nh[id] = tbl.Next
	}
	return nh
}

// PathVectorRerouter re-converges a Gao–Rexford path-vector protocol on
// every topology fault: the protocol's Down/DownNodes maps are synced
// from the network and Converge recomputes every RIB; the new RouteFuncs
// are installed after Iterations × IterDelay (path-vector news travels
// by iterative advertisement, not flooding).
type PathVectorRerouter struct {
	Net *netsim.Network
	PV  *pathvector.Protocol
	// Install controls whether the recomputed RouteFuncs are installed.
	Install bool
	// IterDelay is the modeled time per convergence iteration.
	IterDelay sim.Time

	Reconverges int
	TotalDelay  sim.Time
	TotalChurn  int

	prev nextHops
	ins  installer
	ro   rerouteObs
}

// NewPathVectorRerouter builds a rerouter with the default delay model
// (5ms per convergence iteration — BGP-style propagation is slow).
func NewPathVectorRerouter(net *netsim.Network, pv *pathvector.Protocol, install bool) *PathVectorRerouter {
	return &PathVectorRerouter{Net: net, PV: pv, Install: install, IterDelay: 5 * sim.Millisecond}
}

// AttachObs binds the rerouter's reconvergence metrics. A nil registry
// disables again.
func (r *PathVectorRerouter) AttachObs(reg *obs.Registry) { r.ro.attach(reg, "routing.pathvector") }

// Converge recomputes and (when Install is set) immediately installs
// routes from the current fault state — the setup call.
func (r *PathVectorRerouter) Converge() error {
	if err := r.reconverge(); err != nil {
		return err
	}
	r.prev = r.ribNextHops()
	if r.Install {
		r.install()
	}
	return nil
}

// Fault implements Observer.
func (r *PathVectorRerouter) Fault(ev Event, now sim.Time) {
	if !topologyFault(ev.Kind) {
		return
	}
	if err := r.reconverge(); err != nil {
		return // Gao–Rexford guarantees convergence; defensive only
	}
	cur := r.ribNextHops()
	churn := churnCount(r.prev, cur)
	r.prev = cur
	delay := sim.Time(r.PV.Iterations) * r.IterDelay
	r.Reconverges++
	r.TotalDelay += delay
	r.TotalChurn += churn
	if r.ro.reconverges != nil {
		r.ro.reconverges.Inc()
		r.ro.delayNs.Observe(float64(delay))
		r.ro.churn.Observe(float64(churn))
	}
	if r.Install {
		r.ins.arm(r.Net.Sched, delay, func() { r.install() })
	}
}

// reconverge syncs the protocol's fault view from the network and
// recomputes. Converge rebuilds the RIB maps from scratch, so RouteFuncs
// captured from the previous convergence keep serving the old routes
// until install replaces them — exactly the stale-routing window a real
// network has while BGP reconverges.
func (r *PathVectorRerouter) reconverge() error {
	for _, l := range r.Net.Graph.Links {
		r.PV.MarkLink(l.A, l.B, r.Net.LinkFailed(l.A, l.B))
	}
	for _, id := range r.Net.Graph.NodeIDs() {
		r.PV.MarkNode(id, r.Net.NodeFailed(id))
	}
	return r.PV.Converge()
}

func (r *PathVectorRerouter) ribNextHops() nextHops {
	nh := make(nextHops, len(r.PV.RIBs))
	for id, rib := range r.PV.RIBs {
		table := make(map[topology.NodeID]topology.NodeID, len(rib.Best))
		for dst, route := range rib.Best {
			if len(route.Path) > 0 {
				table[dst] = route.Path[0]
			}
		}
		nh[id] = table
	}
	return nh
}

func (r *PathVectorRerouter) install() {
	for _, id := range r.Net.Graph.NodeIDs() {
		r.Net.Node(id).Route = r.PV.RouteFunc(id)
	}
}

// AdRerouter re-converges an advertisement-driven link-state database
// (the byzantine-defense substrate): on topology faults every live node
// re-floods an honest advertisement reflecting its current live links
// (signed when Keys are provided) and tables are recomputed from the
// advertised state; on byzantine bursts only the recompute happens — the
// lying advertisements stay in the database until the next honest
// re-flood, which is how the poison takes effect.
//
// Note what this models under TrustAll: a crashed node's stale
// advertisement lingers (nobody re-attests its links), so traffic keeps
// routing into the dead router. SignedTwoSided's mutual attestation
// kills those edges as soon as the live neighbors re-flood.
type AdRerouter struct {
	Net  *netsim.Network
	DB   *linkstate.AdDatabase
	Keys map[topology.NodeID]*trust.Principal
	// Install controls whether recomputed tables are installed.
	Install bool
	// FloodHopDelay / ComputeDelay: same delay model as LinkStateRerouter.
	FloodHopDelay sim.Time
	ComputeDelay  sim.Time

	Reconverges int
	TotalDelay  sim.Time
	TotalChurn  int

	prev nextHops
	ins  installer
	ro   rerouteObs
}

// NewAdRerouter builds an advertisement-database rerouter.
func NewAdRerouter(net *netsim.Network, db *linkstate.AdDatabase, keys map[topology.NodeID]*trust.Principal, install bool) *AdRerouter {
	return &AdRerouter{
		Net: net, DB: db, Keys: keys, Install: install,
		FloodHopDelay: 500 * sim.Microsecond,
		ComputeDelay:  100 * sim.Microsecond,
	}
}

// AttachObs binds the rerouter's reconvergence metrics. A nil registry
// disables again.
func (r *AdRerouter) AttachObs(reg *obs.Registry) { r.ro.attach(reg, "routing.linkstate") }

// Converge floods honest advertisements from every live node, recomputes
// tables, and (when Install is set) installs them immediately — setup.
func (r *AdRerouter) Converge() {
	r.reflood()
	tables := r.recompute()
	r.prev = tablesNextHops(tables)
	if r.Install {
		r.install(tables)
	}
}

// Fault implements Observer.
func (r *AdRerouter) Fault(ev Event, now sim.Time) {
	refresh := topologyFault(ev.Kind)
	if !refresh && ev.Kind != ByzantineBurst {
		return
	}
	if refresh {
		r.reflood()
	}
	tables := r.recompute()
	cur := tablesNextHops(tables)
	churn := churnCount(r.prev, cur)
	r.prev = cur
	delay := sim.Time(floodRadius(r.Net, faultSite(ev)))*r.FloodHopDelay + r.ComputeDelay
	r.Reconverges++
	r.TotalDelay += delay
	r.TotalChurn += churn
	if r.ro.reconverges != nil {
		r.ro.reconverges.Inc()
		r.ro.delayNs.Observe(float64(delay))
		r.ro.churn.Observe(float64(churn))
	}
	if r.Install {
		r.ins.arm(r.Net.Sched, delay, func() { r.install(tables) })
	}
}

// reflood floods an honest advertisement from every live node, listing
// only its currently-live links. Crashed nodes flood nothing: their last
// advertisement goes stale (see the type comment).
func (r *AdRerouter) reflood() {
	g := r.Net.Graph
	for _, id := range g.NodeIDs() {
		if r.Net.NodeFailed(id) {
			continue
		}
		ad := &linkstate.Advertisement{From: id, Costs: map[topology.NodeID]float64{}}
		for _, nb := range g.Neighbors(id) {
			if r.Net.LinkFailed(id, nb) || r.Net.NodeFailed(nb) {
				continue
			}
			l, _ := g.LinkBetween(id, nb)
			ad.Costs[nb] = l.Cost
		}
		if p := r.Keys[id]; p != nil {
			ad.Sign(p)
		}
		r.DB.Flood(ad)
	}
}

func (r *AdRerouter) recompute() map[topology.NodeID]*linkstate.Table {
	tables := make(map[topology.NodeID]*linkstate.Table, len(r.Net.Graph.Nodes))
	for _, id := range r.Net.Graph.NodeIDs() {
		next, dist := r.DB.SPF(id)
		tables[id] = &linkstate.Table{Src: id, Next: next, Dist: dist}
	}
	return tables
}

func (r *AdRerouter) install(tables map[topology.NodeID]*linkstate.Table) {
	for id, tbl := range tables {
		r.Net.Node(id).Route = tbl.RouteFunc()
	}
}
