package naming

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestRegisterResolve(t *testing.T) {
	r := NewRegistry(true)
	addr := packet.MakeAddr(3, 1)
	if _, err := r.Register(SpaceMachine, "host-1", "alice", addr); err != nil {
		t.Fatal(err)
	}
	got, err := r.Resolve(SpaceMachine, "host-1")
	if err != nil || got != addr {
		t.Fatalf("resolve = %v, %v", got, err)
	}
	if _, err := r.Resolve(SpaceMachine, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
}

func TestRegisterCollision(t *testing.T) {
	r := NewRegistry(true)
	if _, err := r.Register(SpaceMachine, "x", "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(SpaceMachine, "x", "b", 2); !errors.Is(err, ErrTaken) {
		t.Fatalf("collision err = %v", err)
	}
}

func TestIsolatedSpacesIndependent(t *testing.T) {
	r := NewRegistry(true)
	if _, err := r.Register(SpaceMachine, "acme", "bob", 1); err != nil {
		t.Fatal(err)
	}
	// Same name in a different space: fine when isolated.
	if _, err := r.Register(SpaceBrand, "acme", "acme-corp", 2); err != nil {
		t.Fatalf("isolated spaces should not collide: %v", err)
	}
}

func TestEntangledSpacesCollide(t *testing.T) {
	r := NewRegistry(false)
	if _, err := r.Register(SpaceMachine, "acme", "bob", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(SpaceBrand, "acme", "acme-corp", 2); !errors.Is(err, ErrTaken) {
		t.Fatal("entangled registry should have one namespace")
	}
}

func TestDisputeEntangledCollateral(t *testing.T) {
	// Bob runs machines named after the mark (innocently or not);
	// Carol expresses the brand. In the entangled design the ruling
	// suspends everything matching, breaking machine names.
	r := NewRegistry(false)
	r.Register(SpaceMachine, "acme.mail-server", "bob", 1)
	r.Register(SpaceMachine, "acme-backup", "bob", 2)
	r.Register(SpaceBrand, "acme", "carol", 3)
	r.Register(SpaceMachine, "unrelated", "bob", 4)
	use := map[string]string{"acme": "brand"}

	ruling := r.FileDispute(Dispute{Mark: "acme", Holder: "acme-corp"}, use)
	if len(ruling.Suspended) != 3 {
		t.Fatalf("suspended = %v", ruling.Suspended)
	}
	if ruling.Collateral != 2 {
		t.Fatalf("collateral = %d, want 2 machine names", ruling.Collateral)
	}
	if _, err := r.Resolve(SpaceMachine, "acme-backup"); !errors.Is(err, ErrSuspended) {
		t.Fatalf("machine name survived: %v", err)
	}
	if _, err := r.Resolve(SpaceMachine, "unrelated"); err != nil {
		t.Fatalf("unrelated name broken: %v", err)
	}
}

func TestDisputeIsolatedNoCollateral(t *testing.T) {
	r := NewRegistry(true)
	r.Register(SpaceMachine, "acme.mail-server", "bob", 1)
	r.Register(SpaceMachine, "acme-backup", "bob", 2)
	r.Register(SpaceBrand, "acme", "carol", 3)

	ruling := r.FileDispute(Dispute{Mark: "acme", Holder: "acme-corp"}, nil)
	if ruling.Collateral != 0 {
		t.Fatalf("isolated design leaked collateral: %d", ruling.Collateral)
	}
	if len(ruling.Suspended) != 1 || ruling.Suspended[0] != "acme" {
		t.Fatalf("suspended = %v", ruling.Suspended)
	}
	// Machine names keep resolving.
	if _, err := r.Resolve(SpaceMachine, "acme-backup"); err != nil {
		t.Fatalf("machine name broken in isolated design: %v", err)
	}
}

func TestDisputeHolderKeepsOwnName(t *testing.T) {
	r := NewRegistry(true)
	r.Register(SpaceBrand, "acme", "acme-corp", 1)
	ruling := r.FileDispute(Dispute{Mark: "acme", Holder: "acme-corp"}, nil)
	if len(ruling.Suspended) != 0 {
		t.Fatalf("holder's own registration suspended: %v", ruling.Suspended)
	}
}

func TestDisputeIdempotentSuspension(t *testing.T) {
	r := NewRegistry(true)
	r.Register(SpaceBrand, "acme", "carol", 1)
	first := r.FileDispute(Dispute{Mark: "acme", Holder: "corp"}, nil)
	second := r.FileDispute(Dispute{Mark: "acme", Holder: "corp"}, nil)
	if len(first.Suspended) != 1 || len(second.Suspended) != 0 {
		t.Fatalf("suspensions: %v then %v", first.Suspended, second.Suspended)
	}
}

func TestMatchRules(t *testing.T) {
	cases := []struct {
		name, mark string
		want       bool
	}{
		{"acme", "acme", true},
		{"acme.shop", "acme", true},
		{"acme-store", "acme", true},
		{"shop.acme", "acme", true},
		{"acmeish", "acme", false},
		{"other", "acme", false},
	}
	for _, c := range cases {
		if got := defaultMatch(c.name, c.mark); got != c.want {
			t.Errorf("match(%q,%q) = %v", c.name, c.mark, c.want)
		}
	}
}

func TestResolverHierarchyWalk(t *testing.T) {
	root := NewRoot()
	example := root.Delegate("example")
	shop := example.Delegate("shop")
	shop.Bind("www", packet.MakeAddr(7, 1))

	now := sim.Time(0)
	res := NewResolver(root, 10*sim.Second, func() sim.Time { return now })
	addr, ok := res.Resolve("www.shop.example")
	if !ok || addr != packet.MakeAddr(7, 1) {
		t.Fatalf("resolve = %v, %v", addr, ok)
	}
	// Three servers were queried: root, example, shop.
	if res.QueriesIssued != 3 {
		t.Fatalf("queries = %d", res.QueriesIssued)
	}
	if root.Queries != 1 || example.Queries != 1 || shop.Queries != 1 {
		t.Fatalf("per-server load = %d/%d/%d", root.Queries, example.Queries, shop.Queries)
	}
}

func TestResolverCache(t *testing.T) {
	root := NewRoot()
	z := root.Delegate("z")
	z.Bind("a", 5)
	now := sim.Time(0)
	res := NewResolver(root, 10*sim.Second, func() sim.Time { return now })
	res.Resolve("a.z")
	res.Resolve("a.z")
	if res.CacheHits != 1 || res.QueriesIssued != 2 {
		t.Fatalf("hits=%d queries=%d", res.CacheHits, res.QueriesIssued)
	}
	// Expiry forces re-resolution.
	now = 11 * sim.Second
	res.Resolve("a.z")
	if res.QueriesIssued != 4 {
		t.Fatalf("queries after expiry = %d", res.QueriesIssued)
	}
}

func TestResolverInvalidate(t *testing.T) {
	root := NewRoot()
	z := root.Delegate("z")
	z.Bind("a", 5)
	now := sim.Time(0)
	res := NewResolver(root, 100*sim.Second, func() sim.Time { return now })
	res.Resolve("a.z")
	// Host renumbers: rebind and invalidate (dynamic update).
	z.Bind("a", 9)
	res.Invalidate("a.z")
	addr, ok := res.Resolve("a.z")
	if !ok || addr != 9 {
		t.Fatalf("post-renumber resolve = %v", addr)
	}
}

func TestResolverMisses(t *testing.T) {
	root := NewRoot()
	res := NewResolver(root, sim.Second, func() sim.Time { return 0 })
	if _, ok := res.Resolve("nope.zone"); ok {
		t.Fatal("nonexistent delegation resolved")
	}
	z := root.Delegate("zone")
	if _, ok := res.Resolve("nope.zone"); ok {
		t.Fatal("nonexistent record resolved")
	}
	z.Bind("yes", 1)
	if _, ok := res.Resolve("yes.zone"); !ok {
		t.Fatal("existing record failed")
	}
}

func TestRegistryNeverPanicsQuick(t *testing.T) {
	r := NewRegistry(false)
	f := func(name, owner, mark string, isolated bool) bool {
		reg := r
		if isolated {
			reg = NewRegistry(true)
		}
		_, _ = reg.Register(SpaceMachine, name, owner, 1)
		_ = reg.FileDispute(Dispute{Mark: mark, Holder: owner}, nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
