package middlebox

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
)

// NAT rewrites source addresses of outbound traffic to a single public
// address, remembering host mappings so replies can be translated back —
// the §I example: "ISPs give their users a single IP address, and users
// attach a network of computers using address translation." Here the NAT
// represents the *user's* counter-move modeled at the edge node.
type NAT struct {
	Label string
	// Public is the single address the provider assigned.
	Public packet.Addr
	// ports maps an external source port to the original internal
	// source address, so inbound replies can be un-translated.
	ports   map[uint16]packet.Addr
	nextExt uint16
	// Translations counts rewrites performed.
	Translations int
}

// NewNAT creates a NAT translating to the given public address.
func NewNAT(label string, public packet.Addr) *NAT {
	return &NAT{Label: label, Public: public, ports: make(map[uint16]packet.Addr), nextExt: 40000}
}

// Name implements netsim.Middlebox.
func (n *NAT) Name() string { return n.Label }

// Silent implements netsim.Middlebox.
func (n *NAT) Silent() bool { return false }

// Process implements netsim.Middlebox.
func (n *NAT) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	tip, ttp := decode(data)
	if tip == nil || ttp == nil {
		return nil, netsim.Accept
	}
	switch dir {
	case netsim.Sending:
		if tip.Src == n.Public {
			return nil, netsim.Accept
		}
		orig := tip.Src
		ext := n.nextExt
		n.nextExt++
		n.ports[ext] = orig
		out := rewrite(tip, ttp, func(t *packet.TIP, u *packet.TTP) {
			t.Src = n.Public
			u.SrcPort = ext
		})
		if out == nil {
			return nil, netsim.Accept
		}
		n.Translations++
		return out, netsim.Accept
	case netsim.Delivering:
		orig, ok := n.ports[ttp.DstPort]
		if !ok {
			return nil, netsim.Accept
		}
		out := rewrite(tip, ttp, func(t *packet.TIP, u *packet.TTP) {
			t.Dst = orig
		})
		if out == nil {
			return nil, netsim.Accept
		}
		n.Translations++
		return out, netsim.Accept
	}
	return nil, netsim.Accept
}

// rewrite re-serializes a TIP/TTP packet after applying mutate. The
// payload below TTP is preserved byte-for-byte.
func rewrite(tip *packet.TIP, ttp *packet.TTP, mutate func(*packet.TIP, *packet.TTP)) []byte {
	t2 := *tip
	u2 := *ttp
	mutate(&t2, &u2)
	inner := make([]byte, len(ttp.LayerPayload()))
	copy(inner, ttp.LayerPayload())
	out, err := packet.Serialize(&t2, &u2, &packet.Raw{Data: inner})
	if err != nil {
		return nil
	}
	return out
}

// Redirector rewrites the destination of matching traffic — the "ISP
// might try to control what SMTP server a customer uses by redirecting
// packets based on the port number" move from §IV-B.
type Redirector struct {
	Label string
	// MatchPort selects traffic to redirect.
	MatchPort uint16
	// To is the imposed destination.
	To packet.Addr
	// Quiet hides the device from drop reports (it never drops, but
	// quietness also models undisclosed rewriting).
	Quiet      bool
	Redirected int
}

// Name implements netsim.Middlebox.
func (r *Redirector) Name() string { return r.Label }

// Silent implements netsim.Middlebox.
func (r *Redirector) Silent() bool { return r.Quiet }

// Process implements netsim.Middlebox.
func (r *Redirector) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	tip, ttp := decode(data)
	if tip == nil || ttp == nil || ttp.DstPort != r.MatchPort || tip.Dst == r.To {
		return nil, netsim.Accept
	}
	out := rewrite(tip, ttp, func(t *packet.TIP, u *packet.TTP) { t.Dst = r.To })
	if out == nil {
		return nil, netsim.Accept
	}
	r.Redirected++
	return out, netsim.Accept
}

// Wiretap copies matching traffic to a collector — "the desire of third
// parties to observe a data flow (e.g., wiretap) calls for data capture
// sites in the network" (§VI-A). Encrypted payloads are captured but
// opaque; the tap records whether it could see inside.
type Wiretap struct {
	Label string
	// MatchSrc limits capture to one surveilled provider (0 = all).
	MatchSrc uint16
	// Captured accumulates capture records.
	Captured []Capture
}

// Capture is one intercepted packet summary.
type Capture struct {
	Src, Dst packet.Addr
	// Readable reports whether the payload was in the clear.
	Readable bool
	Bytes    int
}

// Name implements netsim.Middlebox.
func (w *Wiretap) Name() string { return w.Label }

// Silent implements netsim.Middlebox. Taps never announce themselves.
func (w *Wiretap) Silent() bool { return true }

// Process implements netsim.Middlebox.
func (w *Wiretap) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	tip, ttp := decode(data)
	if tip == nil {
		return nil, netsim.Accept
	}
	if w.MatchSrc != 0 && tip.Src.Provider() != w.MatchSrc {
		return nil, netsim.Accept
	}
	readable := true
	if ttp != nil && ttp.Next == packet.LayerTypeCrypto {
		readable = false
	}
	if tip.Proto == packet.LayerTypeCrypto {
		readable = false
	}
	w.Captured = append(w.Captured, Capture{Src: tip.Src, Dst: tip.Dst, Readable: readable, Bytes: len(data)})
	return nil, netsim.Accept
}

// ReadableFraction reports how much of the captured traffic the tap
// could actually read — the §VI-A encryption escalation metric.
func (w *Wiretap) ReadableFraction() float64 {
	if len(w.Captured) == 0 {
		return 0
	}
	n := 0
	for _, c := range w.Captured {
		if c.Readable {
			n++
		}
	}
	return float64(n) / float64(len(w.Captured))
}

// EncryptionBlocker drops encrypted traffic — the escalation §VI-A
// contemplates: "the response of the provider is to refuse to carry
// encrypted data." The device can be configured to exempt inspectable
// encryption (the visible-choice compromise).
type EncryptionBlocker struct {
	Label string
	// AllowInspectable exempts crypto layers that declare their inner
	// type.
	AllowInspectable bool
	Quiet            bool
	Hits             int
}

// Name implements netsim.Middlebox.
func (e *EncryptionBlocker) Name() string { return e.Label }

// Silent implements netsim.Middlebox.
func (e *EncryptionBlocker) Silent() bool { return e.Quiet }

// Process implements netsim.Middlebox.
func (e *EncryptionBlocker) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	tip, ttp := decode(data)
	if tip == nil {
		return nil, netsim.Accept
	}
	var cryptoBytes []byte
	if ttp != nil && ttp.Next == packet.LayerTypeCrypto {
		cryptoBytes = ttp.LayerPayload()
	} else if tip.Proto == packet.LayerTypeCrypto {
		cryptoBytes = tip.LayerPayload()
	}
	if cryptoBytes == nil {
		return nil, netsim.Accept
	}
	if e.AllowInspectable {
		var c packet.Crypto
		if err := c.DecodeFrom(cryptoBytes); err == nil {
			if _, err := c.InnerType(); err == nil {
				return nil, netsim.Accept
			}
		}
	}
	e.Hits++
	return nil, netsim.Drop
}
