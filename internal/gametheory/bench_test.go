package gametheory

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkFictitiousPlay2x2(b *testing.B) {
	g := MatchingPennies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.FictitiousPlay(1000)
	}
}

func BenchmarkFictitiousPlayRPS(b *testing.B) {
	g := ZeroSum("rps", [][]float64{{0, -1, 1}, {1, 0, -1}, {-1, 1, 0}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.FictitiousPlay(1000)
	}
}

func BenchmarkPureNashEnumeration(b *testing.B) {
	rng := sim.NewRNG(1)
	n := 8
	a := make([][]float64, n)
	bb := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		bb[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.Range(-5, 5)
			bb[i][j] = rng.Range(-5, 5)
		}
	}
	g := New("rand8", a, bb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PureNash()
	}
}

func BenchmarkReplicator(b *testing.B) {
	a := [][]float64{{3, 0}, {5, 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Replicator(a, []float64{0.5, 0.5}, 1000)
	}
}

func BenchmarkTournament(b *testing.B) {
	g := PrisonersDilemma()
	strats := []RepeatedStrategy{TitForTat{}, AlwaysDefect{}, AlwaysCooperate{}, GrimTrigger{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tournament(g, strats, 200)
	}
}
