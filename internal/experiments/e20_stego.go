package experiments

import (
	"fmt"

	"repro/internal/gametheory"
	"repro/internal/sim"
	"repro/internal/stego"
)

// E20Steganography tests §VI-A footnote 17: after encryption blocking,
// "the next step in this sort of escalation is steganography." The
// experiment measures the covert channels an evader actually has — and
// the structural facts that shape the tussle: detectability depends on
// the cover distribution, timing channels trade capacity against
// jitter, and inspector-vs-evader is a pure-conflict game with no
// stable pure outcome.
func E20Steganography(seed uint64) *Result {
	res := &Result{
		ID:    "E20",
		Title: "steganographic escalation: covert channels vs inspection",
		Claim: "§VI-A fn.17: steganography is the escalation after encryption blocking; detection is a pure-conflict tussle",
		Columns: []string{
			"bits-per-pkt", "suspicion", "ber",
		},
	}
	rng := sim.NewRNG(seed)
	const nPkts = 400

	whitened := func(n int) []byte {
		m := make([]byte, n)
		for i := range m {
			m[i] = byte(rng.Uint64())
		}
		return m
	}

	// Padding channel over the two cover distributions.
	{
		cover := stego.MakeCover(stego.ZeroPadding, nPkts, 8, rng)
		stego.EmbedPadding(cover, whitened(nPkts))
		s := stego.PaddingDetector{Expected: stego.ZeroPadding}.Suspicion(cover)
		res.AddRow("padding zero-cover", 8, s, 0)
	}
	{
		cover := stego.MakeCover(stego.RandomPadding, nPkts, 8, rng)
		stego.EmbedPadding(cover, whitened(nPkts))
		s := stego.PaddingDetector{Expected: stego.RandomPadding}.Suspicion(cover)
		res.AddRow("padding random-cover", 8, s, 0)
	}

	// Timing channel at two jitter levels.
	c := stego.TimingChannel{Base: 10 * sim.Millisecond, Delta: 3 * sim.Millisecond}
	bits := make([]int, nPkts)
	for i := range bits {
		bits[i] = int(rng.Uint64() & 1)
	}
	for _, jit := range []sim.Time{200 * sim.Microsecond, 4 * sim.Millisecond} {
		gaps := c.EmbedTiming(bits, jit, rng)
		ber := stego.BitErrorRate(bits, c.ExtractTiming(gaps))
		s := stego.TimingDetector{}.Suspicion(gaps)
		res.AddRow(fmt.Sprintf("timing jitter=%v", jit), 1, s, ber)
	}

	// The inspector/evader inspection game: zero-sum, cycling. Gain is
	// the padding channel's capacity; penalty and inspection cost are
	// the scenario's legal/operational stakes.
	a := stego.InspectionGame(8, 5, 1)
	g := gametheory.ZeroSum("stego-inspection", a)
	pure := len(g.PureNash())
	m := g.FictitiousPlay(20000)
	res.AddRow("detection-game", m.Value, float64(pure), g.Exploitability(m))

	res.Finding = fmt.Sprintf(
		"whitened embedding is glaring in zero padding (suspicion %.2f) and invisible in random padding (%.2f) — encryption normalizes the cover; the timing channel trades 1 bit/pkt against jitter (BER %.2f→%.2f); the detection game has %d pure equilibria (a cycling conflict) with mixed value %.2f",
		res.MustGet("padding zero-cover", "suspicion"),
		res.MustGet("padding random-cover", "suspicion"),
		res.MustGet("timing jitter=200.000us", "ber"),
		res.MustGet("timing jitter=4.000ms", "ber"),
		pure, m.Value)
	return res
}
