package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// This file implements `tussle-bench -compare old.json new.json`: the
// regression gate over two BENCH_suite.json files. Any experiment whose
// ns/op grew by more than the tolerance — or whose allocs/op grew at
// all — fails the comparison, so CI can hold the committed baseline
// against a freshly measured run. Alloc counts are deterministic per
// run (unlike timings), which is why their tolerance is zero.

// regression is one experiment's old-vs-new delta.
type regression struct {
	ID       string
	OldNs    int64
	NewNs    int64
	Ratio    float64 // new/old
	OldAlloc uint64
	NewAlloc uint64
	// AllocRegressed marks a growth in allocs/op (gated at zero
	// tolerance); the ratio gate covers ns/op only.
	AllocRegressed bool
}

func loadSuite(path string) (*suiteBench, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sb suiteBench
	if err := json.Unmarshal(buf, &sb); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(sb.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments recorded", path)
	}
	return &sb, nil
}

// compareSuites diffs two benchmark files and returns the per-experiment
// deltas plus whether any experiment regressed: ns/op grown beyond
// tolerance (e.g. 0.10 = fail when ns/op grows more than 10%), or
// allocs/op grown at all (alloc counts are deterministic, so any growth
// is a real regression, not noise). Experiments present in only one file
// are reported but never fail the gate (the suite may have grown or
// shrunk between revisions).
func compareSuites(oldSB, newSB *suiteBench, tolerance float64) (deltas []regression, regressed []regression) {
	oldByID := make(map[string]expBench, len(oldSB.Experiments))
	for _, e := range oldSB.Experiments {
		oldByID[e.ID] = e
	}
	for _, e := range newSB.Experiments {
		o, ok := oldByID[e.ID]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		d := regression{
			ID: e.ID, OldNs: o.NsPerOp, NewNs: e.NsPerOp,
			Ratio:    float64(e.NsPerOp) / float64(o.NsPerOp),
			OldAlloc: o.AllocsPerOp, NewAlloc: e.AllocsPerOp,
			AllocRegressed: e.AllocsPerOp > o.AllocsPerOp,
		}
		deltas = append(deltas, d)
		if d.Ratio > 1+tolerance || d.AllocRegressed {
			regressed = append(regressed, d)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Ratio > deltas[j].Ratio })
	sort.Slice(regressed, func(i, j int) bool { return regressed[i].Ratio > regressed[j].Ratio })
	return deltas, regressed
}

// suiteAllocs totals allocs/op across all experiments in a suite.
func suiteAllocs(sb *suiteBench) uint64 {
	var total uint64
	for _, e := range sb.Experiments {
		total += e.AllocsPerOp
	}
	return total
}

// runCompare is the -compare entry point; returns the process exit code.
func runCompare(w io.Writer, oldPath, newPath string, tolerance float64) int {
	oldSB, err := loadSuite(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussle-bench: %v\n", err)
		return 2
	}
	newSB, err := loadSuite(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussle-bench: %v\n", err)
		return 2
	}
	deltas, regressed := compareSuites(oldSB, newSB, tolerance)
	fmt.Fprintf(w, "bench compare: %s -> %s (tolerance %.0f%% ns/op, 0%% allocs/op)\n", oldPath, newPath, tolerance*100)
	fmt.Fprintf(w, "%-6s %14s %14s %8s %12s %12s\n", "exp", "old ns/op", "new ns/op", "ratio", "old allocs", "new allocs")
	for _, d := range deltas {
		fmt.Fprintf(w, "%-6s %14d %14d %7.2fx %12d %12d\n", d.ID, d.OldNs, d.NewNs, d.Ratio, d.OldAlloc, d.NewAlloc)
	}
	fmt.Fprintf(w, "suite allocs/op: %d -> %d\n", suiteAllocs(oldSB), suiteAllocs(newSB))
	if len(regressed) > 0 {
		fmt.Fprintf(w, "FAIL: %d experiment(s) regressed:", len(regressed))
		for _, d := range regressed {
			switch {
			case d.AllocRegressed && d.Ratio > 1+tolerance:
				fmt.Fprintf(w, " %s(%.2fx, allocs %d->%d)", d.ID, d.Ratio, d.OldAlloc, d.NewAlloc)
			case d.AllocRegressed:
				fmt.Fprintf(w, " %s(allocs %d->%d)", d.ID, d.OldAlloc, d.NewAlloc)
			default:
				fmt.Fprintf(w, " %s(%.2fx)", d.ID, d.Ratio)
			}
		}
		fmt.Fprintln(w)
		return 1
	}
	fmt.Fprintln(w, "OK: no ns/op or allocs/op regression beyond tolerance")
	return 0
}
