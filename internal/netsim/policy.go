package netsim

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/policy"
)

// Source-route admission as a compiled, metered policy program — §V-A4's
// "design for choice" taken literally: the provider's side of the
// source-routing tussle is an arbitrary stakeholder expression evaluated
// per packet on the policy VM, not a hardcoded boolean. The same
// compiled object drives netsim.Node.nextHop and wire.Dataplane.nextHop,
// so the simulator and the live engine cannot disagree on admission.
//
// Policies are TPL expressions over a fixed per-packet vocabulary,
// compiled once through the process-wide policy.DefaultCache (a million
// nodes installing the same text share one Program) and executed through
// the dense slot path with a per-invocation budget, so a hostile policy
// costs SourceRoutePolicySteps instructions and nothing more — it cannot
// stall a forwarding worker. Evaluation is fail-safe: an error or a
// non-bool result denies the source route (the packet still forwards by
// the node's own routing, exactly like the legacy payment check).

// Source-route policy vocabulary: the attributes a policy may reference.
const (
	srcAttrPaid     = "paid"              // packet carries a payment voucher
	srcAttrTTL      = "ttl"               // TTL after this hop's decrement
	srcAttrDst      = "dst-provider"      // destination provider (node id)
	srcAttrSrc      = "src-provider"      // source provider (node id)
	srcAttrWaypoint = "waypoint-provider" // current waypoint's provider
)

// srcRouteVocab maps attribute names to slot-fill codes, in the order
// fillSlots switches on.
var srcRouteVocab = map[string]uint8{
	srcAttrPaid:     0,
	srcAttrTTL:      1,
	srcAttrDst:      2,
	srcAttrSrc:      3,
	srcAttrWaypoint: 4,
}

// SourceRoutePolicySteps is the per-packet step and allocation budget
// for source-route admission. Any reasonable admission predicate runs in
// tens of steps; the cap exists for the unreasonable ones.
const SourceRoutePolicySteps = 4096

// SourceRoutePolicy is a compiled source-route admission program. The
// value is immutable and safe to share across nodes, dataplanes, and
// goroutines; callers keep their own slot scratch (NewScratch) so
// evaluation stays allocation-free.
type SourceRoutePolicy struct {
	prog  *policy.Program
	codes []uint8 // per-slot fill code, index-aligned with prog.Attrs()
}

// CompileSourceRoutePolicy compiles a TPL expression against the
// source-route vocabulary (paid, ttl, dst-provider, src-provider,
// waypoint-provider) through the shared compile cache. References
// outside the vocabulary are rejected here, at install time — the
// enforcement point's ontology is explicit, so a policy that cannot be
// supplied its attributes is refused rather than erroring per packet.
func CompileSourceRoutePolicy(src string) (*SourceRoutePolicy, error) {
	prog, err := policy.CompileText(src)
	if err != nil {
		return nil, err
	}
	attrs := prog.Attrs()
	codes := make([]uint8, len(attrs))
	var unknown []string
	for i, name := range attrs {
		code, ok := srcRouteVocab[name]
		if !ok {
			unknown = append(unknown, fmt.Sprintf("%q", name))
			continue
		}
		codes[i] = code
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("netsim: source-route policy references attributes outside the vocabulary: %s", joinStrings(unknown))
	}
	return &SourceRoutePolicy{prog: prog, codes: codes}, nil
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// Source returns the canonical policy text.
func (p *SourceRoutePolicy) Source() string { return p.prog.Source() }

// NewScratch allocates a caller-owned slot buffer for Allow. One scratch
// per evaluating goroutine (a netsim Node, a wire worker's Dataplane).
func (p *SourceRoutePolicy) NewScratch() []policy.Value {
	return make([]policy.Value, len(p.codes))
}

// Allow evaluates the policy for one packet. tip is the decoded header
// (TTL already decremented, matching both engines' call sites); wp is
// the pending source-route waypoint. Errors — including budget
// exhaustion — deny.
func (p *SourceRoutePolicy) Allow(scratch []policy.Value, tip *packet.TIP, wp packet.Addr) bool {
	for i, code := range p.codes {
		switch code {
		case 0:
			scratch[i] = policy.Bool(tip.Payment != nil)
		case 1:
			scratch[i] = policy.Num(float64(tip.TTL))
		case 2:
			scratch[i] = policy.Num(float64(tip.Dst.Provider()))
		case 3:
			scratch[i] = policy.Num(float64(tip.Src.Provider()))
		default:
			scratch[i] = policy.Num(float64(wp.Provider()))
		}
	}
	b := policy.NewBudget(SourceRoutePolicySteps, SourceRoutePolicySteps)
	v, err := p.prog.RunSlots(scratch, &b)
	return err == nil && v.Kind == policy.KindBool && v.B
}

// SetSourceRoutePolicy installs a compiled source-route admission policy
// on the node (replacing the RequirePaymentForSourceRoute boolean for
// this node; the legacy flag is ignored while a policy is set). An empty
// src clears the policy. The text is compiled once through the shared
// cache; install-time errors are returned, per-packet evaluation is
// fail-safe deny.
func (nd *Node) SetSourceRoutePolicy(src string) error {
	if src == "" {
		nd.srcRoutePolicy, nd.srcRouteSlots = nil, nil
		return nil
	}
	p, err := CompileSourceRoutePolicy(src)
	if err != nil {
		return err
	}
	nd.srcRoutePolicy = p
	nd.srcRouteSlots = p.NewScratch()
	return nil
}

// SourceRoutePolicyText returns the canonical text of the installed
// policy, or "" when none is set.
func (nd *Node) SourceRoutePolicyText() string {
	if nd.srcRoutePolicy == nil {
		return ""
	}
	return nd.srcRoutePolicy.Source()
}
