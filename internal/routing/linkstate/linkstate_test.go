package linkstate

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

func diamond() *topology.Graph {
	// 1 -2- 2 -2- 4, 1 -1- 3 -1- 4 : via 3 is cheaper.
	g := topology.NewGraph()
	for i := 1; i <= 4; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 2)
	g.AddLink(2, 4, topology.PeerOf, sim.Millisecond, 2)
	g.AddLink(1, 3, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(3, 4, topology.PeerOf, sim.Millisecond, 1)
	return g
}

func TestSPFPicksCheapestPath(t *testing.T) {
	db := NewDatabase(diamond())
	next, dist := db.SPF(1)
	if next[4] != 3 {
		t.Fatalf("next hop to 4 = %d, want 3", next[4])
	}
	if dist[4] != 2 {
		t.Fatalf("dist to 4 = %v, want 2", dist[4])
	}
}

func TestSPFCostOverrideShiftsTraffic(t *testing.T) {
	db := NewDatabase(diamond())
	// Node 3 raises its advertised cost (visible traffic engineering).
	db.SetCost(1, 3, 10)
	next, _ := db.SPF(1)
	if next[4] != 2 {
		t.Fatalf("after override, next hop to 4 = %d, want 2", next[4])
	}
}

func TestComputeAllNodesReachable(t *testing.T) {
	f := func(seed uint64) bool {
		g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(seed))
		tables := Compute(NewDatabase(g))
		ids := g.NodeIDs()
		for _, src := range ids {
			for _, dst := range ids {
				if src == dst {
					continue
				}
				if _, ok := tables[src].Next[dst]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestNextHopIsNeighbor(t *testing.T) {
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(3))
	tables := Compute(NewDatabase(g))
	for _, src := range g.NodeIDs() {
		for dst, nh := range tables[src].Next {
			if _, adj := g.LinkBetween(src, nh); !adj {
				t.Fatalf("next hop %d from %d toward %d is not adjacent", nh, src, dst)
			}
		}
	}
}

func TestRoutesConvergeToDestination(t *testing.T) {
	// Following next hops from any source must reach the destination
	// without loops.
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(5))
	tables := Compute(NewDatabase(g))
	ids := g.NodeIDs()
	for _, src := range ids {
		for _, dst := range ids {
			if src == dst {
				continue
			}
			at := src
			for steps := 0; at != dst; steps++ {
				if steps > len(ids) {
					t.Fatalf("loop routing %d->%d", src, dst)
				}
				nh, ok := tables[at].Next[dst]
				if !ok {
					t.Fatalf("no route at %d toward %d", at, dst)
				}
				at = nh
			}
		}
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(9))
	db := NewDatabase(g)
	tables := Compute(db)
	ids := g.NodeIDs()
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			for _, c := range ids {
				if c == a || c == b {
					continue
				}
				dab := tables[a].Dist[b]
				dac := tables[a].Dist[c]
				dcb := tables[c].Dist[b]
				if dab > dac+dcb+1e-9 {
					t.Fatalf("triangle violated: d(%d,%d)=%v > %v+%v", a, b, dab, dac, dcb)
				}
			}
		}
	}
}

func TestRouteFunc(t *testing.T) {
	db := NewDatabase(diamond())
	tables := Compute(db)
	rf := tables[1].RouteFunc()
	nh, ok := rf(packet.MakeAddr(4, 7), nil)
	if !ok || nh != 3 {
		t.Fatalf("RouteFunc = %d,%v", nh, ok)
	}
	self, ok := rf(packet.MakeAddr(1, 1), nil)
	if !ok || self != 1 {
		t.Fatalf("self route = %d,%v", self, ok)
	}
	if _, ok := rf(packet.MakeAddr(99, 0), nil); ok {
		t.Fatal("route to unknown destination should fail")
	}
}

func TestVisibleChoices(t *testing.T) {
	db := NewDatabase(diamond())
	// 4 links, both directions visible.
	if v := db.VisibleChoices(); v != 8 {
		t.Fatalf("VisibleChoices = %d, want 8", v)
	}
}
