package experiments

import (
	"fmt"

	"repro/internal/economics"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing/overlay"
	"repro/internal/routing/srcroute"
	"repro/internal/sim"
	"repro/internal/topology"
)

// E26OverlayVsIntegrated runs the comparison §V-A4 explicitly calls for:
// "Overlay architectures should be evaluated for their ability to
// isolate tussles and provide choice. A comparison is warranted between
// overlay architectures and integrated global schemes to understand how
// each balances the relative control that providers and consumers have,
// and whether economic distortion is greater in one or the other."
//
// Scenario: the provider-chosen route crosses a slow path; a faster
// alternate exists that default routing will not use. Users obtain the
// fast path three ways — not at all (baseline), by overlay relaying
// (choice without compensation), and by paid source routing (the
// integrated scheme: choice with designed value flow). Measured: the
// latency users achieve, provider compensation, and uncompensated
// transit (the economic distortion).
func E26OverlayVsIntegrated(seed uint64) *Result {
	res := &Result{
		ID:    "E26",
		Title: "overlay vs integrated source routing (§V-A4 comparison)",
		Claim: "§V-A4: compare overlays and integrated global schemes on control balance and economic distortion",
		Columns: []string{
			"latency-ms", "user-choice", "provider-revenue", "uncompensated-bytes",
		},
	}
	const nProbes = 40
	for _, design := range []string{"provider-default", "overlay", "srcroute+payment"} {
		rng := sim.NewRNG(seed)
		_ = rng
		// Diamond: 1 -slow- 2 -slow- 4 and 1 -fast- 3 -fast- 4; default
		// routing prefers via 2 (the provider's business choice).
		sched := sim.NewScheduler()
		g := topology.NewGraph()
		for i := 1; i <= 4; i++ {
			g.AddNode(topology.NodeID(i), topology.Transit, 1)
		}
		g.AddLink(1, 2, topology.PeerOf, 20*sim.Millisecond, 1)
		g.AddLink(2, 4, topology.PeerOf, 20*sim.Millisecond, 1)
		g.AddLink(1, 3, topology.PeerOf, 2*sim.Millisecond, 5)
		g.AddLink(3, 4, topology.PeerOf, 2*sim.Millisecond, 5)
		net := netsim.New(sched, g)
		routes := map[topology.NodeID]map[uint16]topology.NodeID{
			1: {2: 2, 3: 3, 4: 2}, // default via the slow path
			2: {1: 1, 4: 4, 3: 1},
			3: {1: 1, 4: 4, 2: 1},
			4: {2: 2, 3: 3, 1: 2},
		}
		for id, tbl := range routes {
			tbl := tbl
			nd := net.Node(id)
			nd.Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
				nh, ok := tbl[dst.Provider()]
				return nh, ok
			}
			if design == "srcroute+payment" {
				nd.HonorSourceRoutes = true
				nd.RequirePaymentForSourceRoute = true
			}
		}
		ledger := economics.NewLedger(map[string]float64{"users": 1e6, "providers": 0})
		mesh := overlay.NewMesh([]topology.NodeID{1, 3, 4})
		mesh.InstallRelay(net, 3)
		payerKey := []byte("user-key")

		var latency sim.Series
		choiceExercised := 0
		want := srcroute.Candidate{Path: []topology.NodeID{1, 3, 4}}
		for p := 0; p < nProbes; p++ {
			var tr *netsim.Trace
			switch design {
			case "overlay":
				// Relay via 3: the inner packet is re-sourced at the
				// relay (proxy semantics).
				inner, err := packet.Serialize(
					&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw,
						Src: packet.MakeAddr(3, 1), Dst: packet.MakeAddr(4, 1)},
					&packet.Raw{Data: []byte("payload")})
				if err != nil {
					panic(err)
				}
				enc, err := overlay.Encapsulate(packet.MakeAddr(1, 1), packet.MakeAddr(3, 0), 16, inner)
				if err != nil {
					panic(err)
				}
				tr = net.Send(1, enc)
			case "srcroute+payment":
				tip := &packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw,
					Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1),
					SourceRoute: want.Option()}
				amount := srcroute.WithPayment(tip, want, payerKey, uint32(p))
				if err := ledger.Transfer("users", "providers", float64(amount)/1000, "voucher"); err != nil {
					panic(err)
				}
				data, err := packet.Serialize(tip, &packet.Raw{Data: []byte("payload")})
				if err != nil {
					panic(err)
				}
				tr = net.Send(1, data)
			default:
				data, err := packet.Serialize(
					&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw,
						Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1)},
					&packet.Raw{Data: []byte("payload")})
				if err != nil {
					panic(err)
				}
				tr = net.Send(1, data)
			}
			sched.Run()
			if !tr.Delivered {
				continue
			}
			latency.Add(tr.Latency().Millis())
			onFast := false
			for _, n := range tr.Path() {
				if n == 3 {
					onFast = true
				}
			}
			if onFast && design != "provider-default" {
				choiceExercised++
			}
		}
		if !ledger.Conserved() {
			panic("E26: ledger conservation violated")
		}
		res.AddRow(design,
			latency.Mean(),
			ratio(choiceExercised, nProbes),
			ledger.Balance("providers"),
			float64(mesh.UncompensatedTransit()))
	}
	res.Finding = fmt.Sprintf(
		"both schemes restore the user's fast path (latency %.1fms/%.1fms vs the provider default %.1fms); the overlay does it with %.0f bytes of uncompensated transit and zero provider revenue, the integrated scheme pays providers %.2f with no distortion — the §V-A4 comparison resolved: economic distortion is greater in the overlay",
		res.MustGet("overlay", "latency-ms"),
		res.MustGet("srcroute+payment", "latency-ms"),
		res.MustGet("provider-default", "latency-ms"),
		res.MustGet("overlay", "uncompensated-bytes"),
		res.MustGet("srcroute+payment", "provider-revenue"))
	return res
}
