package policy

import "errors"

// ErrBudgetExceeded is returned by Program.Run when a policy exhausts its
// per-invocation step or allocation budget. It is a static sentinel (use
// errors.Is) so the breach path never allocates: a hostile policy costs
// its budget and one error return, nothing more.
var ErrBudgetExceeded = errors.New("policy: budget exceeded")

// Budget bounds one policy invocation, in the Starlark safety tradition:
// untrusted code gets a step budget (instructions executed) and an
// allocation budget (units of guest-visible value materialization), and
// breaching either terminates evaluation immediately with
// ErrBudgetExceeded. Because TPL expressions have no loops, a program of
// K instructions can never execute more than K steps — the budget exists
// so a router can cap cost *below* K for adversarially large policies
// (million-term expressions compile fine; they just cannot run to
// completion on someone else's CPU).
//
// A Budget is single-use scratch: construct one per invocation (it is
// small and stack-allocatable), or call Reset between invocations.
// The zero Budget permits nothing; use NewBudget or DefaultBudget.
type Budget struct {
	// Steps is the number of VM instructions the invocation may execute.
	Steps int64
	// Allocs is the number of allocation units the invocation may
	// materialize. Every op that produces a fresh string or list value
	// charges units (one per value plus one per list element); scalar
	// ops (bool/number) are free. Constants count too — a policy that
	// pushes a million-entry constant list pays for it on every
	// invocation, which is exactly the point.
	Allocs int64

	stepsUsed  int64
	allocsUsed int64
}

// NewBudget returns a budget with the given step and allocation limits.
func NewBudget(steps, allocs int64) Budget {
	return Budget{Steps: steps, Allocs: allocs}
}

// DefaultBudget is a generous per-invocation budget for trusted-ish
// choice points (firewall documents, admission checks): far above what
// any reasonable policy needs, far below what a hostile one wants.
func DefaultBudget() Budget { return NewBudget(1<<16, 1<<16) }

// Reset clears usage so the budget can meter another invocation with the
// same limits.
func (b *Budget) Reset() { b.stepsUsed, b.allocsUsed = 0, 0 }

// StepsUsed reports instructions executed by the last invocation.
func (b *Budget) StepsUsed() int64 { return b.stepsUsed }

// AllocsUsed reports allocation units charged by the last invocation.
func (b *Budget) AllocsUsed() int64 { return b.allocsUsed }
