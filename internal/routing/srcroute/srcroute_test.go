package srcroute

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

func diamond() *topology.Graph {
	g := topology.NewGraph()
	for i := 1; i <= 4; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddLink(1, 2, topology.PeerOf, 2*sim.Millisecond, 1)
	g.AddLink(2, 4, topology.PeerOf, 2*sim.Millisecond, 1)
	g.AddLink(1, 3, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(3, 4, topology.PeerOf, sim.Millisecond, 1)
	return g
}

func TestDiscoverFindsBothPaths(t *testing.T) {
	cands := Discover(diamond(), 1, 4, 0, 8)
	if len(cands) != 2 {
		t.Fatalf("found %d candidates, want 2", len(cands))
	}
	// Cheapest (via 3) first.
	if cands[0].Path[1] != 3 || cands[0].Latency != 2*sim.Millisecond {
		t.Fatalf("best candidate = %+v", cands[0])
	}
	if cands[1].Path[1] != 2 {
		t.Fatalf("second candidate = %+v", cands[1])
	}
}

func TestDiscoverRespectsK(t *testing.T) {
	cands := Discover(diamond(), 1, 4, 1, 8)
	if len(cands) != 1 {
		t.Fatalf("k=1 returned %d", len(cands))
	}
}

func TestDiscoverRespectsMaxLen(t *testing.T) {
	g := topology.Linear(6, sim.Millisecond)
	if cands := Discover(g, 1, 6, 0, 3); len(cands) != 0 {
		t.Fatalf("maxLen=3 should preclude the 6-node path, got %v", cands)
	}
	if cands := Discover(g, 1, 6, 0, 6); len(cands) != 1 {
		t.Fatalf("maxLen=6 should find the path, got %d", len(cands))
	}
}

func TestDiscoverPathsAreSimpleAndValid(t *testing.T) {
	f := func(seed uint64) bool {
		g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(seed))
		stubs := g.Stubs()
		src, dst := stubs[0], stubs[len(stubs)-1]
		for _, c := range Discover(g, src, dst, 5, 7) {
			if c.Path[0] != src || c.Path[len(c.Path)-1] != dst {
				return false
			}
			seen := map[topology.NodeID]bool{}
			for i, n := range c.Path {
				if seen[n] {
					return false
				}
				seen[n] = true
				if i > 0 {
					if _, adj := g.LinkBetween(c.Path[i-1], n); !adj {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionBuildsInteriorHops(t *testing.T) {
	c := Candidate{Path: []topology.NodeID{1, 3, 4}}
	opt := c.Option()
	if opt == nil || len(opt.Hops) != 1 || opt.Hops[0] != packet.MakeAddr(3, 0) {
		t.Fatalf("option = %+v", opt)
	}
	direct := Candidate{Path: []topology.NodeID{1, 4}}
	if direct.Option() != nil {
		t.Fatal("direct path should need no source route")
	}
}

func TestVerify(t *testing.T) {
	c := Candidate{Path: []topology.NodeID{1, 3, 4}}
	if !c.Verify([]topology.NodeID{1, 3, 4}) {
		t.Fatal("exact path should verify")
	}
	if !c.Verify([]topology.NodeID{1, 2, 3, 2, 4}) {
		t.Fatal("loose route with extra hops should verify")
	}
	if c.Verify([]topology.NodeID{1, 2, 4}) {
		t.Fatal("path skipping waypoint 3 must not verify")
	}
	if c.Verify([]topology.NodeID{1, 4, 3}) {
		t.Fatal("out-of-order waypoints must not verify")
	}
}

func TestWithPaymentAmounts(t *testing.T) {
	key := []byte("payer key")
	tip := &packet.TIP{Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1)}
	c := Candidate{Path: []topology.NodeID{1, 2, 3, 4}} // 2 interior hops
	amount := WithPayment(tip, c, key, 42)
	if amount != 2*PerHopPriceMilli {
		t.Fatalf("amount = %d", amount)
	}
	if tip.Payment == nil || tip.Payment.AmountMilli != amount {
		t.Fatalf("payment = %+v", tip.Payment)
	}
	if !VerifyVoucher(key, tip.Payment) {
		t.Fatal("authentic voucher rejected")
	}
	if VerifyVoucher([]byte("other key"), tip.Payment) {
		t.Fatal("forged voucher accepted")
	}
}

func TestVoucherTamperingDetected(t *testing.T) {
	f := func(amount, nonce uint32) bool {
		key := []byte("k")
		p := &packet.PaymentOption{
			Payer: 1, Payee: 2, AmountMilli: amount, Nonce: nonce,
		}
		p.MAC = VoucherMAC(key, p.Payer, p.Payee, p.AmountMilli, p.Nonce)
		if !VerifyVoucher(key, p) {
			return false
		}
		p.AmountMilli++ // inflate the payment
		return !VerifyVoucher(key, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyVoucherNil(t *testing.T) {
	if VerifyVoucher([]byte("k"), nil) {
		t.Fatal("nil voucher verified")
	}
}
