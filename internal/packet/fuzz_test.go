package packet

import (
	"bytes"
	"testing"
)

// Fuzz targets for the TIP decoder — the one parser in the system that
// consumes bytes a hostile party controls (every middlebox and node
// decodes what the wire hands it). Seed corpus lives in
// testdata/fuzz/FuzzDecode* and CI runs a short -fuzz smoke on every
// push (see .github/workflows/ci.yml).

// fuzzSeeds returns representative wire images: every option kind,
// payloads, and a tunnel stack.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	plain, err := Serialize(
		&TIP{TTL: 32, Proto: LayerTypeRaw, Src: MakeAddr(1, 1), Dst: MakeAddr(9, 1)},
		&Raw{Data: []byte("probe")})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, plain)

	srcRouted, err := Serialize(
		&TIP{TTL: 16, Proto: LayerTypeTTP,
			Src: MakeAddr(2, 7), Dst: MakeAddr(5, 1),
			SourceRoute: &SourceRouteOption{Hops: []Addr{MakeAddr(3, 1), MakeAddr(4, 1)}},
			Payment:     &PaymentOption{Payer: MakeAddr(2, 7), Payee: MakeAddr(3, 1), AmountMilli: 1500, Nonce: 42, MAC: 0xdeadbeef},
			Identity:    &IdentityOption{Scheme: IdentityCertified, ID: []byte("alice")},
		},
		&TTP{SrcPort: 4000, DstPort: 25, Next: LayerTypeRaw},
		&Raw{Data: []byte("MAIL")})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, srcRouted)

	inner, err := Serialize(
		&TIP{TTL: 8, Proto: LayerTypeRaw, Src: MakeAddr(1, 1), Dst: MakeAddr(3, 1)},
		&Raw{Data: []byte("inner")})
	if err != nil {
		tb.Fatal(err)
	}
	tunneled, err := Serialize(
		&TIP{TTL: 8, Proto: LayerTypeTTP, Src: MakeAddr(1, 1), Dst: MakeAddr(2, 1)},
		&TTP{DstPort: 443, Next: LayerTypeTunnel},
		&Tunnel{Inner: LayerTypeTIP},
		&Raw{Data: inner})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, tunneled)

	// Mutation fodder: truncations and corruptions of a valid packet.
	seeds = append(seeds, plain[:4], plain[:tipMinHeader-1])
	corrupt := append([]byte(nil), plain...)
	corrupt[0] ^= 0xf0 // version nibble
	seeds = append(seeds, corrupt)

	// Datagram-boundary cases the wire engine actually sees: a packet
	// truncated mid-option, one truncated mid-payload, and an oversized
	// datagram (valid packet followed by receive-slot slack).
	seeds = append(seeds, srcRouted[:tipMinHeader+3], srcRouted[:len(srcRouted)-2])
	oversized := append(append([]byte(nil), plain...), 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A)
	seeds = append(seeds, oversized)
	// Header-length nibble inflated past the datagram, and a total-length
	// field shorter than the header — the two bounds the sanity filter
	// checks on raw bytes.
	badHlen := append([]byte(nil), plain...)
	badHlen[0] = tipVersion<<4 | 0x0f
	seeds = append(seeds, badHlen)
	badTotal := append([]byte(nil), plain...)
	badTotal[2], badTotal[3] = 0x00, 0x08
	seeds = append(seeds, badTotal)
	return seeds
}

// FuzzDecode asserts the decoder's safety invariants on arbitrary bytes:
// no panics, and on success the decoded views (contents, payload, option
// slices) stay inside the input buffer and describe a packet that
// re-serializes into a decodable header with identical fields. It also
// drives the wire sanity filter (filter.go) on every input, pinning the
// soundness half of the filter contract: Filter never rejects bytes the
// decoder accepts. (The contrapositive — a filter reject implies a
// decode reject — is the same property, so one check covers both.)
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The wire sanity filter must stay consistent with the decoder on
		// every input: a filter reject implies a decode reject
		// (completeness), and a successful decode implies the filter
		// accepted (soundness) — otherwise the UDP fast path would drop
		// packets the sim delivers, or vice versa.
		verdict := Filter(data)
		var tip TIP
		if err := tip.DecodeFrom(data); err != nil {
			return
		}
		if verdict != FilterAccept {
			t.Fatalf("filter rejects (%v) bytes that DecodeFrom accepts", verdict)
		}
		// Views must be slices of the input, in order, within bounds.
		if len(tip.LayerContents()) < tipMinHeader {
			t.Fatalf("decoded header shorter than minimum: %d", len(tip.LayerContents()))
		}
		if total := len(tip.LayerContents()) + len(tip.LayerPayload()); total > len(data) {
			t.Fatalf("decoded views cover %d bytes of a %d-byte input", total, len(data))
		}
		if tip.Version != tipVersion {
			t.Fatalf("accepted version %d", tip.Version)
		}
		if sr := tip.SourceRoute; sr != nil && int(sr.Ptr) > len(sr.Hops) {
			t.Fatalf("source route pointer %d past %d hops", sr.Ptr, len(sr.Hops))
		}
		// Round-trip: re-serializing the decoded header must produce a
		// packet that decodes to the same fields. (The payload is carried
		// separately, so compare headers only.)
		payload := append([]byte(nil), tip.LayerPayload()...)
		out, err := Serialize(&tip, &Raw{Data: payload})
		if err != nil {
			t.Fatalf("re-serialize decoded packet: %v", err)
		}
		var rt TIP
		if err := rt.DecodeFrom(out); err != nil {
			t.Fatalf("decode re-serialized packet: %v", err)
		}
		if rt.TOS != tip.TOS || rt.TTL != tip.TTL || rt.Proto != tip.Proto || rt.Src != tip.Src || rt.Dst != tip.Dst {
			t.Fatalf("round-trip header mismatch: %+v vs %+v", rt, tip)
		}
		if !bytes.Equal(rt.LayerPayload(), payload) {
			t.Fatalf("round-trip payload mismatch")
		}
	})
}

// FuzzDecodeReuse is the differential target: DecodeReuse on a dirty TIP
// (options populated by a previous decode) must agree with DecodeFrom on
// a fresh TIP — same verdict, same fields, same options — for any input.
// This pins the fast path the forwarding loop depends on.
func FuzzDecodeReuse(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	dirty, err := Serialize(
		&TIP{TTL: 16, Proto: LayerTypeRaw,
			Src: MakeAddr(2, 7), Dst: MakeAddr(5, 1),
			SourceRoute: &SourceRouteOption{Ptr: 1, Hops: []Addr{MakeAddr(3, 1), MakeAddr(4, 1)}},
			Payment:     &PaymentOption{Payer: MakeAddr(2, 7), Payee: MakeAddr(3, 1), AmountMilli: 9, Nonce: 1, MAC: 2},
			Identity:    &IdentityOption{Scheme: IdentityPseudonym, ID: []byte("bob")},
		},
		&Raw{Data: []byte("x")})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var fresh TIP
		freshErr := fresh.DecodeFrom(data)

		var reused TIP
		if err := reused.DecodeFrom(dirty); err != nil {
			t.Fatalf("decode dirty seed: %v", err)
		}
		reusedErr := reused.DecodeReuse(data)

		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("verdicts diverge: fresh=%v reused=%v", freshErr, reusedErr)
		}
		if freshErr != nil {
			return
		}
		if fresh.TOS != reused.TOS || fresh.TTL != reused.TTL || fresh.Proto != reused.Proto ||
			fresh.Src != reused.Src || fresh.Dst != reused.Dst {
			t.Fatalf("headers diverge: fresh=%+v reused=%+v", fresh, reused)
		}
		if !sameSourceRoute(fresh.SourceRoute, reused.SourceRoute) {
			t.Fatalf("source routes diverge: %+v vs %+v", fresh.SourceRoute, reused.SourceRoute)
		}
		if !samePayment(fresh.Payment, reused.Payment) {
			t.Fatalf("payments diverge: %+v vs %+v", fresh.Payment, reused.Payment)
		}
		if !sameIdentity(fresh.Identity, reused.Identity) {
			t.Fatalf("identities diverge: %+v vs %+v", fresh.Identity, reused.Identity)
		}
		if !bytes.Equal(fresh.LayerPayload(), reused.LayerPayload()) {
			t.Fatal("payload views diverge")
		}
	})
}

func sameSourceRoute(a, b *SourceRouteOption) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Ptr != b.Ptr || len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	return true
}

func samePayment(a, b *PaymentOption) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func sameIdentity(a, b *IdentityOption) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || (a.Scheme == b.Scheme && bytes.Equal(a.ID, b.ID))
}
