package wire

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Blast is the load-generator side of the wire engine: it pushes TIP
// datagrams at a target as fast as the socket allows, through the same
// batched send path the server uses. In echo mode it also reads the
// echoes back with a bounded outstanding window — UDP has no flow
// control, so pacing against the echoes is what keeps a loopback
// benchmark lossless instead of overrunning the receiver's socket
// buffer.

// BlastConfig configures one blast run.
type BlastConfig struct {
	// Target is the engine's UDP address.
	Target netip.AddrPort
	// Count is the total number of datagrams to send.
	Count int
	// Packets are the datagram templates, cycled in order. Required.
	Packets [][]byte
	// Batch is the sendmmsg batch size (default 64).
	Batch int
	// Echo reads echoes back and paces the send window against them.
	Echo bool
	// Window is the maximum outstanding (sent minus echoed) datagrams
	// in echo mode (default 256 — comfortably inside a default UDP
	// receive buffer for small packets).
	Window int
	// Conns is the number of parallel client sockets (default 1). Each
	// socket is a distinct source port, so SO_REUSEPORT servers spread
	// them across workers.
	Conns int
	// Timeout is the per-read echo deadline; expiry writes off the
	// outstanding window as lost (default 2s).
	Timeout time.Duration
}

func (c *BlastConfig) fill() error {
	if len(c.Packets) == 0 {
		return errors.New("wire: blast needs at least one packet template")
	}
	if c.Count <= 0 {
		return errors.New("wire: blast count must be positive")
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	return nil
}

// BlastResult summarizes a run.
type BlastResult struct {
	Sent       int // datagrams handed to the kernel
	SendErrors int // datagrams the kernel refused (skipped, not retried)
	Received   int // echoes read back (echo mode)
	Lost       int // outstanding datagrams written off on echo timeout
	Elapsed    time.Duration
}

// PPS is the achieved packet rate: echoes per second in echo mode
// (each counted packet made the full client→server→client round),
// sends per second otherwise.
func (r BlastResult) PPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	n := r.Sent
	if r.Received > 0 {
		n = r.Received
	}
	return float64(n) / r.Elapsed.Seconds()
}

// Blast runs the load generator and blocks until Count datagrams are
// resolved (sent, and in echo mode echoed or written off).
func Blast(cfg BlastConfig) (BlastResult, error) {
	if err := cfg.fill(); err != nil {
		return BlastResult{}, err
	}
	start := time.Now()
	var (
		mu    sync.Mutex
		total BlastResult
		first error
		wg    sync.WaitGroup
	)
	per := cfg.Count / cfg.Conns
	for c := 0; c < cfg.Conns; c++ {
		n := per
		if c == cfg.Conns-1 {
			n = cfg.Count - per*(cfg.Conns-1)
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(count int) {
			defer wg.Done()
			r, err := blastConn(&cfg, count)
			mu.Lock()
			defer mu.Unlock()
			total.Sent += r.Sent
			total.SendErrors += r.SendErrors
			total.Received += r.Received
			total.Lost += r.Lost
			if err != nil && first == nil {
				first = err
			}
		}(n)
	}
	wg.Wait()
	total.Elapsed = time.Since(start)
	return total, first
}

// blastConn drives one client socket.
func blastConn(cfg *BlastConfig, count int) (BlastResult, error) {
	var r BlastResult
	wild := "0.0.0.0:0"
	if cfg.Target.Addr().Is6() {
		wild = "[::]:0"
	}
	pc, err := net.ListenPacket("udp", wild)
	if err != nil {
		return r, fmt.Errorf("wire: blast socket: %w", err)
	}
	conn := pc.(*net.UDPConn)
	defer conn.Close()

	tx, err := newTxBatch(conn, cfg.Batch)
	if err != nil {
		return r, err
	}
	var rx *rxBatch
	if cfg.Echo {
		bufs := make([][]byte, cfg.Batch)
		slab := make([]byte, cfg.Batch*2048)
		for i := range bufs {
			bufs[i] = slab[i*2048 : (i+1)*2048]
		}
		if rx, err = newRxBatch(conn, bufs); err != nil {
			return r, err
		}
	}

	entries := make([]txEntry, cfg.Batch)
	for i := range entries {
		entries[i].addr = cfg.Target
	}
	window := cfg.Window
	if !cfg.Echo {
		window = count // no pacing without echoes
	}
	next := 0 // template rotation cursor
	progress, outstanding := 0, 0
	for progress < count || outstanding > 0 {
		// Fill the send window.
		for progress < count && outstanding < window {
			k := min(cfg.Batch, window-outstanding, count-progress)
			for i := 0; i < k; i++ {
				entries[i].data = cfg.Packets[next]
				next++
				if next == len(cfg.Packets) {
					next = 0
				}
			}
			sent, errs := tx.send(entries[:k])
			r.Sent += sent
			r.SendErrors += errs
			// A refused datagram (e.g. ICMP-driven ECONNREFUSED) is
			// skipped, not retried: count it as resolved progress.
			progress += sent + errs
			if cfg.Echo {
				outstanding += sent
				if errs > 0 {
					break // let the echo side drain before pushing harder
				}
			}
		}
		if !cfg.Echo || outstanding == 0 {
			continue
		}
		// Drain echoes.
		if err := conn.SetReadDeadline(time.Now().Add(cfg.Timeout)); err != nil {
			return r, err
		}
		n, err := rx.recv()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Write off the window: those datagrams (or their
				// echoes) are gone.
				r.Lost += outstanding
				outstanding = 0
				continue
			}
			return r, err
		}
		r.Received += n
		outstanding -= n
		if outstanding < 0 {
			outstanding = 0 // duplicated echoes
		}
	}
	return r, nil
}
