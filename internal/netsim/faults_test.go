package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestLinkFailureDropsTraffic(t *testing.T) {
	n, sched := chainNet(t)
	n.FailLink(2, 3)
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if tr.Delivered {
		t.Fatal("delivered across a failed link")
	}
	if tr.DropReason != "link-down" {
		t.Fatalf("drop reason = %q", tr.DropReason)
	}
	n.RestoreLink(2, 3)
	tr2 := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !tr2.Delivered {
		t.Fatal("restore failed")
	}
}

func TestLinkFailedSymmetric(t *testing.T) {
	n, _ := chainNet(t)
	n.FailLink(3, 2)
	if !n.LinkFailed(2, 3) || !n.LinkFailed(3, 2) {
		t.Fatal("failure should be direction-agnostic")
	}
}

func TestFlapLink(t *testing.T) {
	n, sched := chainNet(t)
	n.FlapLink(2, 3, 10*sim.Millisecond, 50*sim.Millisecond)
	// Before the flap: works.
	early := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.RunUntil(9 * sim.Millisecond)
	if !early.Delivered {
		t.Fatalf("pre-flap packet lost: %q", early.DropReason)
	}
	// During: fails.
	sched.RunUntil(20 * sim.Millisecond)
	mid := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.RunUntil(40 * sim.Millisecond)
	if mid.Delivered {
		t.Fatal("mid-flap packet delivered")
	}
	// After: works again.
	sched.RunUntil(60 * sim.Millisecond)
	late := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !late.Delivered {
		t.Fatalf("post-flap packet lost: %q", late.DropReason)
	}
}

func TestTracerouteFullPath(t *testing.T) {
	n, _ := chainNet(t)
	hops := n.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	if len(hops) != 3 {
		t.Fatalf("hops = %+v", hops)
	}
	// TTL=1 expires at node 2, TTL=2 at node 3; TTL=3 reaches node 4
	// (delivery does not decrement).
	want := []topology.NodeID{2, 3, 4}
	for i, h := range hops {
		if h.Node != want[i] {
			t.Fatalf("hop %d = %+v, want node %d", i, h, want[i])
		}
	}
	if hops[2].Note != "destination" {
		t.Fatalf("final hop = %+v", hops[2])
	}
	for _, h := range hops[:2] {
		if h.Note != "time-exceeded" {
			t.Fatalf("intermediate hop = %+v", h)
		}
	}
}

func TestTracerouteIdentifiesDisclosingBlocker(t *testing.T) {
	n, _ := chainNet(t)
	n.Node(3).AddMiddlebox(&dropBox{name: "corp-fw"})
	hops := n.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	last := hops[len(hops)-1]
	if last.Node != 3 || last.Note != "blocked:corp-fw" {
		t.Fatalf("blocker not identified: %+v", last)
	}
}

func TestTracerouteSilentBlockerGoesDark(t *testing.T) {
	n, _ := chainNet(t)
	n.Node(3).AddMiddlebox(&dropBox{name: "covert", silent: true})
	hops := n.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	last := hops[len(hops)-1]
	if last.Note != "lost" || last.Node != 0 {
		t.Fatalf("silent device leaked identity: %+v", last)
	}
	// But path inference still works: the hop before went dark after
	// node 2 answered, so the fault is bracketed.
	if len(hops) < 2 || hops[len(hops)-2].Node != 2 {
		t.Fatalf("bracketing hop missing: %+v", hops)
	}
}

func TestPathMTUProbe(t *testing.T) {
	n, _ := chainNet(t)
	// TIP total length is 16-bit; huge payloads fail to serialize, so
	// the probe finds the serialization limit.
	mtu := n.PathMTUProbe(1, packet.MakeAddr(4, 1), 100, 100000)
	if mtu < 60000 || mtu > 65535 {
		t.Fatalf("mtu = %d", mtu)
	}
	// Unreachable destination: zero.
	n.FailLink(1, 2)
	if got := n.PathMTUProbe(1, packet.MakeAddr(4, 1), 100, 1000); got != 0 {
		t.Fatalf("unreachable mtu = %d", got)
	}
}

func TestNodeCrashStopsAllTraffic(t *testing.T) {
	n, sched := chainNet(t)
	n.FailNode(3)
	if !n.NodeFailed(3) || n.NodeFailed(2) {
		t.Fatal("NodeFailed bookkeeping wrong")
	}
	// Transit through the crashed node: the live upstream detects the
	// dead adjacency and reports it.
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if tr.Delivered || tr.DropReason != "peer-down" || tr.DropNode != 2 {
		t.Fatalf("transit via crashed node: %+v", tr)
	}
	// Delivery at the crashed node: silent.
	tr = n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(3, 1), 16))
	sched.Run()
	if tr.Delivered || tr.DropReason != "peer-down" {
		t.Fatalf("delivery to crashed node: %+v", tr)
	}
	// Origination at the crashed node: dies inside, invisible outside.
	tr = n.Send(3, mkPkt(t, packet.MakeAddr(3, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if tr.Delivered || tr.DropReason != "node-down" {
		t.Fatalf("send from crashed node: %+v", tr)
	}
	// Recovery restores everything.
	n.RecoverNode(3)
	tr = n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("post-recovery packet lost: %q", tr.DropReason)
	}
}

func TestNodeCrashInFlightPacketDiesSilently(t *testing.T) {
	n, sched := chainNet(t)
	// Crash node 3 while the packet is on the wire 2→3: the arrival
	// check (not the upstream peer check) must kill it.
	sched.At(1500*sim.Microsecond, func() { n.FailNode(3) })
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if tr.Delivered || tr.DropReason != "node-down" || tr.DropNode != 3 {
		t.Fatalf("in-flight packet at crash: %+v", tr)
	}
}

func TestNodeCrashSurvivesTopologyRebuild(t *testing.T) {
	n, sched := chainNet(t)
	n.FailNode(3)
	n.InvalidateTopology()
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if tr.Delivered || tr.DropReason != "peer-down" {
		t.Fatalf("crash state lost across rebuild: %+v", tr)
	}
	n.RecoverNode(3)
	n.InvalidateTopology()
	tr = n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("recovery lost across rebuild: %q", tr.DropReason)
	}
}

// Regression for the RestoreLink/InvalidateTopology interaction: the
// failure map is the source of truth and the dense mirror must follow it
// through fail → rebuild → restore in any interleaving.
func TestRestoreAfterInvalidateTopology(t *testing.T) {
	n, sched := chainNet(t)
	n.FailLink(2, 3)
	n.InvalidateTopology() // rebuild re-derives the failed flag from the map
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if tr.Delivered || tr.DropReason != "link-down" {
		t.Fatalf("failure lost across rebuild: %+v", tr)
	}
	n.RestoreLink(2, 3)
	tr = n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("restore after rebuild left a stale failed flag: %q", tr.DropReason)
	}
	// And the other interleaving: restore, then rebuild.
	n.FailLink(2, 3)
	n.RestoreLink(2, 3)
	n.InvalidateTopology()
	tr = n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("rebuild resurrected a restored failure: %q", tr.DropReason)
	}
}

func TestTracerouteLocalizesCrashedNode(t *testing.T) {
	n, _ := chainNet(t)
	n.FailNode(3)
	hops := n.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	last := hops[len(hops)-1]
	// Node 2 answers TTL=1; at TTL=2 node 2 reports its peer dead. The
	// crash is localized: it is 2's next hop on the path.
	if last.Node != 2 || last.Note != "peer-down" {
		t.Fatalf("crash not localized: %+v", hops)
	}
	if len(hops) != 2 || hops[0].Node != 2 || hops[0].Note != "time-exceeded" {
		t.Fatalf("unexpected report: %+v", hops)
	}
}

func TestTracerouteDistinguishesPartitionFromSilentDrop(t *testing.T) {
	// Same chain, two failure modes at the same place. A partition edge
	// is disclosed by the live node ("link-down" from node 2); a silent
	// middlebox yields only "lost" with no responding node. The reports
	// must differ — this is the §VI-A fault-isolation asymmetry.
	n, _ := chainNet(t)
	n.FailLink(2, 3) // partition between 2 and 3
	partitioned := n.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	lastP := partitioned[len(partitioned)-1]
	if lastP.Node != 2 || lastP.Note != "link-down" {
		t.Fatalf("partition edge not disclosed: %+v", partitioned)
	}

	n2, _ := chainNet(t)
	n2.Node(3).AddMiddlebox(&dropBox{name: "covert", silent: true})
	silent := n2.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	lastS := silent[len(silent)-1]
	if lastS.Node != 0 || lastS.Note != "lost" {
		t.Fatalf("silent drop leaked identity: %+v", silent)
	}
	if lastP.Note == lastS.Note {
		t.Fatal("partition and silent drop reports must be distinguishable")
	}
}

func TestImpairmentCorruptionAndDeterminism(t *testing.T) {
	run := func() (delivered int, reasons map[string]int) {
		n, sched := chainNet(t)
		n.ImpairLink(2, 3, LinkImpairment{Corrupt: 0.3}, sim.NewRNG(99))
		reasons = map[string]int{}
		for i := 0; i < 200; i++ {
			tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
			sched.Run()
			if tr.Delivered {
				delivered++
			} else {
				reasons[tr.DropReason]++
			}
		}
		return delivered, reasons
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1["corrupt"] != r2["corrupt"] {
		t.Fatalf("impairment not deterministic: %d/%v vs %d/%v", d1, r1, d2, r2)
	}
	if r1["corrupt"] < 30 || r1["corrupt"] > 90 {
		t.Fatalf("corrupt rate implausible for p=0.3: %v", r1)
	}
	if d1+r1["corrupt"] != 200 {
		t.Fatalf("unexpected drop reasons: %v", r1)
	}
}

func TestImpairmentDuplication(t *testing.T) {
	n, sched := chainNet(t)
	n.ImpairLink(2, 3, LinkImpairment{Duplicate: 1}, sim.NewRNG(5))
	var delivered int
	n.Node(4).Deliver = func(nd *Node, tr *Trace, data []byte) { delivered++ }
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("original lost: %q", tr.DropReason)
	}
	if delivered != 2 {
		t.Fatalf("deliveries = %d, want original + duplicate", delivered)
	}
	if n.Stats.Get("dup-injected") != 1 {
		t.Fatalf("dup-injected = %d", n.Stats.Get("dup-injected"))
	}
	n.ClearImpairment(2, 3)
	delivered = 0
	n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if delivered != 1 {
		t.Fatalf("impairment not cleared: %d deliveries", delivered)
	}
}

func TestImpairmentReorder(t *testing.T) {
	// Two back-to-back packets; the first gets jittered past the second.
	n, sched := chainNet(t)
	imp := LinkImpairment{ReorderProb: 1, ReorderJitter: 20 * sim.Millisecond}
	// Use an RNG stream whose first draws jitter the first packet far
	// more than the second (deterministic: fixed seed, fixed order).
	n.ImpairLink(2, 3, imp, sim.NewRNG(1))
	var order []sim.Time
	n.Node(4).Deliver = func(nd *Node, tr *Trace, data []byte) { order = append(order, tr.DoneAt) }
	a := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	b := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !a.Delivered || !b.Delivered {
		t.Fatalf("reorder lost packets: %q %q", a.DropReason, b.DropReason)
	}
	if len(order) != 2 || order[0] >= order[1] {
		t.Fatalf("arrivals not strictly ordered: %v", order)
	}
	if a.DoneAt == b.DoneAt {
		t.Fatal("jitter had no effect")
	}
}

func TestBacklogReporting(t *testing.T) {
	n, sched := chainNet(t)
	if n.Backlog(1, 2) != 0 || n.NodeBacklog(1) != 0 {
		t.Fatal("idle link reports backlog")
	}
	// Queue several large packets onto 1→2; backlog must be visible
	// before they serialize out.
	big := make([]byte, 40000)
	for i := 0; i < 5; i++ {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw,
				Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1)},
			&packet.Raw{Data: big})
		if err != nil {
			t.Fatal(err)
		}
		n.Send(1, data)
	}
	var seen sim.Time
	sched.At(10*sim.Microsecond, func() {
		seen = n.Backlog(1, 2)
		if nb := n.NodeBacklog(1); nb != seen {
			t.Fatalf("NodeBacklog %v != worst link backlog %v", nb, seen)
		}
	})
	sched.Run()
	if seen == 0 {
		t.Fatal("queued packets reported zero backlog")
	}
}
