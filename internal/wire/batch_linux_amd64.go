//go:build linux && amd64

package wire

// sysSendmmsg is __NR_sendmmsg on linux/amd64 (no syscall.SYS_ constant
// exists for it in the stdlib).
const sysSendmmsg = 307
