package chaos

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ShardedEngine replays fault plans onto a sharded simulation. Every
// mutation goes through Sharded.FaultAt, which applies it to all shard
// networks at the same (time, key), so the replicated fault state —
// link failures, node crashes, impairments — stays byte-identical on
// every shard at every shard count.
//
// Differences from the single-network Engine:
//   - Impairment RNGs are derived per plan event from the engine seed
//     (not drawn from a shared stream at apply time), so each shard
//     installs an identical generator.
//   - Flap toggles read the owning network's own link state, which is
//     replicated, so all shards toggle the same direction.
//   - ByzantineBurst is rejected at schedule time: advertisement floods
//     target a routing database, which the sharded scale workload does
//     not carry.
type ShardedEngine struct {
	S *netsim.Sharded

	seed    uint64
	nextEv  uint64
	cuts    map[*netsim.Network][][][2]topology.NodeID
	ground  *netsim.Network
	applied sim.Counter

	// OnFault, when set, is called once per applied event per shard
	// (after the mutation), with the shard's network current.
	OnFault func(n *netsim.Network, ev Event, now sim.Time)
}

// NewSharded builds a sharded chaos engine over s. Plans scheduled at
// the same seed replay identically.
func NewSharded(s *netsim.Sharded, seed uint64) *ShardedEngine {
	return &ShardedEngine{
		S:      s,
		seed:   seed ^ 0xc4a05,
		cuts:   make(map[*netsim.Network][][][2]topology.NodeID),
		ground: s.Shards[0].Net,
	}
}

// Applied counts events applied, by kind and in total, counted once per
// event (not once per shard copy).
func (e *ShardedEngine) Applied() sim.Counter {
	if e.applied == nil {
		e.applied = sim.Counter{}
	}
	return e.applied
}

// Schedule validates the plan against the topology and arms every event
// on all shards.
func (e *ShardedEngine) Schedule(p *Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	g := e.S.Graph
	for i := range p.Events {
		if err := checkEvent(g, &p.Events[i], false); err != nil {
			return fmt.Errorf("chaos: event %d (%s): %w", i, p.Events[i].Kind, err)
		}
	}
	e.Applied()
	for i := range p.Events {
		ev := p.Events[i]
		evSeed := sim.SeedStream(e.seed, e.nextEv)
		e.nextEv++
		switch ev.Kind {
		case LinkFlap:
			// One FaultAt per toggle: each closure flips the owning
			// network's current (replicated) state, so every shard
			// flips the same way.
			for t := 0; t < ev.Count; t++ {
				ev := ev
				e.S.FaultAt(ev.At()+sim.Time(t)*ev.Period(), func(n *netsim.Network) {
					kind := LinkUp
					if !n.LinkFailed(ev.A, ev.B) {
						kind = LinkDown
						n.FailLink(ev.A, ev.B)
					} else {
						n.RestoreLink(ev.A, ev.B)
					}
					e.finish(n, Event{AtMs: ev.AtMs, Kind: kind, A: ev.A, B: ev.B})
				})
			}
		default:
			ev := ev
			e.S.FaultAt(ev.At(), func(n *netsim.Network) {
				e.applyOn(n, ev, evSeed)
				e.finish(n, ev)
			})
		}
	}
	return nil
}

// checkEvent is the schedule-time topology validation shared in spirit
// with Engine.check; sharded engines additionally reject byzantine
// bursts (allowBurst=false).
func checkEvent(g *topology.Graph, ev *Event, allowBurst bool) error {
	node := func(id topology.NodeID) error {
		if _, ok := g.Nodes[id]; !ok {
			return fmt.Errorf("node %d not in topology", id)
		}
		return nil
	}
	link := func() error {
		if err := node(ev.A); err != nil {
			return err
		}
		if err := node(ev.B); err != nil {
			return err
		}
		if _, ok := g.LinkBetween(ev.A, ev.B); !ok {
			return fmt.Errorf("no link %d-%d in topology", ev.A, ev.B)
		}
		return nil
	}
	switch ev.Kind {
	case LinkDown, LinkUp, LinkFlap, Impair, ClearImpair:
		return link()
	case NodeCrash, NodeRecover:
		return node(ev.Node)
	case Partition:
		for _, id := range ev.Group {
			if err := node(id); err != nil {
				return err
			}
		}
	case ByzantineBurst:
		if !allowBurst {
			return fmt.Errorf("byzantine-burst is not supported on a sharded run")
		}
	}
	return nil
}

// applyOn executes one event against one shard's network.
func (e *ShardedEngine) applyOn(n *netsim.Network, ev Event, evSeed uint64) {
	switch ev.Kind {
	case LinkDown:
		n.FailLink(ev.A, ev.B)
	case LinkUp:
		n.RestoreLink(ev.A, ev.B)
	case NodeCrash:
		n.FailNode(ev.Node)
	case NodeRecover:
		n.RecoverNode(ev.Node)
	case Partition:
		e.partitionOn(n, ev.Group)
	case Heal:
		e.healOn(n)
	case Impair:
		n.ImpairLink(ev.A, ev.B, netsim.LinkImpairment{
			Corrupt:       ev.Corrupt,
			Duplicate:     ev.Duplicate,
			ReorderProb:   ev.ReorderProb,
			ReorderJitter: msToTime(ev.ReorderJitterMs),
		}, sim.NewRNG(evSeed))
	case ClearImpair:
		n.ClearImpairment(ev.A, ev.B)
	}
}

// partitionOn cuts the group boundary on one network, remembering the
// cut per network. The link-state reads are replicated, so every shard
// computes the same cut set.
func (e *ShardedEngine) partitionOn(n *netsim.Network, group []topology.NodeID) {
	in := make(map[topology.NodeID]bool, len(group))
	for _, id := range group {
		in[id] = true
	}
	var cut [][2]topology.NodeID
	for _, l := range n.Graph.Links {
		if in[l.A] == in[l.B] || n.LinkFailed(l.A, l.B) {
			continue
		}
		n.FailLink(l.A, l.B)
		cut = append(cut, [2]topology.NodeID{l.A, l.B})
	}
	e.cuts[n] = append(e.cuts[n], cut)
}

func (e *ShardedEngine) healOn(n *netsim.Network) {
	stack := e.cuts[n]
	if len(stack) == 0 {
		return
	}
	cut := stack[len(stack)-1]
	e.cuts[n] = stack[:len(stack)-1]
	for _, lk := range cut {
		n.RestoreLink(lk[0], lk[1])
	}
}

// finish counts the event (once, on the ground-truth shard) and fires
// the per-shard hook.
func (e *ShardedEngine) finish(n *netsim.Network, ev Event) {
	if n == e.ground {
		e.applied.Inc(string(ev.Kind))
		e.applied.Inc("total")
	}
	if e.OnFault != nil {
		e.OnFault(n, ev, n.Sched.Now())
	}
}
