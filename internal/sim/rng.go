// Package sim provides the deterministic discrete-event simulation kernel
// that every other substrate in this repository is built on: a virtual
// clock, an event scheduler, and a seeded random number generator.
//
// All randomness in the repository flows through RNG so that every
// experiment is reproducible bit-for-bit from its seed.
package sim

import "math"

// RNG is a small, fast, deterministic random number generator based on
// splitmix64. It is not safe for concurrent use; each simulation owns one.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG so the
// seed is explicit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next value in the splitmix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple modulo bias is negligible for n << 2^64 and keeps the
	// sequence stable across platforms.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniformly distributed float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed float64 via the Box–Muller
// transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes a slice of length n using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index weighted by weights. Weights must
// be non-negative; if they sum to zero the choice is uniform.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Fork derives an independent generator from this one, for subsystems that
// need their own stream without perturbing the parent's sequence.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// StreamFork derives an independent generator identified by stream from
// this one WITHOUT advancing the parent's sequence: the child's seed is a
// pure function of (parent state, stream). The sharded simulation core
// forks one stream per node (and per impaired link direction) this way,
// so every node's randomness is a function of the root seed and the node
// alone — never of how nodes are partitioned across shards — which keeps
// sharded runs byte-identical at any shard count.
func (r *RNG) StreamFork(stream uint64) *RNG {
	return NewRNG(SeedStream(r.state, stream))
}

// SeedStream mixes a base seed with a stream number into an independent
// seed, using one splitmix64 step over their combination. Deterministic
// and allocation-free; use it to derive per-entity seeds (per node, per
// shard, per link) from an experiment's root seed.
func SeedStream(base, stream uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
