package economics

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkMarketRound(b *testing.B) {
	rng := sim.NewRNG(1)
	providers := []*Provider{
		{Name: "a", Cost: 2, Offer: Offer{Price: 8, AllowsServers: true}, Strat: CompetitivePricing{}},
		{Name: "b", Cost: 2, Offer: Offer{Price: 9, AllowsServers: true}, Strat: CompetitivePricing{}},
		{Name: "c", Cost: 2, Offer: Offer{Price: 10}, Strat: &GreedPricing{}},
	}
	consumers := make([]*Consumer, 500)
	for i := range consumers {
		consumers[i] = &Consumer{ID: i, WTP: rng.Range(10, 25), SwitchCost: 1, RunsServer: i%3 == 0}
	}
	m := NewMarket(rng, providers, consumers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkLedgerTransfer(b *testing.B) {
	l := NewLedger(map[string]float64{"a": 1e12, "b": 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Transfer("a", "b", 0.001, "x"); err != nil {
			b.Fatal(err)
		}
	}
}
