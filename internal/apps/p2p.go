package apps

import (
	"sort"

	"repro/internal/sim"
)

// This file models the file-sharing tussle of §I ("music lovers of a
// certain bent want to exchange recordings with each other, but the
// rights holders want to stop them") with two index architectures whose
// difference decided the real tussle: a central index (Napster) is a
// single point the rights holder can take down; a distributed index
// survives per-node takedowns.

// PeerID identifies a sharing peer.
type PeerID int

// Index locates which peers hold which files.
type Index interface {
	// Publish announces that peer holds file.
	Publish(peer PeerID, file string)
	// Lookup returns the peers known to hold file.
	Lookup(file string) []PeerID
	// TakedownFile removes a file's entries where the architecture
	// allows; returns how many entries were removed.
	TakedownFile(file string) int
	// TakedownNode disables one index node (legal action against an
	// operator); returns whether any node remained to disable.
	TakedownNode() bool
	// Alive reports whether the index still answers queries at all.
	Alive() bool
}

// CentralIndex is the Napster design: one operator, one database.
type CentralIndex struct {
	entries map[string][]PeerID
	down    bool
}

// NewCentralIndex creates the single-operator index.
func NewCentralIndex() *CentralIndex {
	return &CentralIndex{entries: make(map[string][]PeerID)}
}

// Publish implements Index.
func (c *CentralIndex) Publish(peer PeerID, file string) {
	if c.down {
		return
	}
	c.entries[file] = append(c.entries[file], peer)
}

// Lookup implements Index.
func (c *CentralIndex) Lookup(file string) []PeerID {
	if c.down {
		return nil
	}
	return append([]PeerID(nil), c.entries[file]...)
}

// TakedownFile implements Index.
func (c *CentralIndex) TakedownFile(file string) int {
	n := len(c.entries[file])
	delete(c.entries, file)
	return n
}

// TakedownNode implements Index: one legal action kills the whole
// service.
func (c *CentralIndex) TakedownNode() bool {
	if c.down {
		return false
	}
	c.down = true
	return true
}

// Alive implements Index.
func (c *CentralIndex) Alive() bool { return !c.down }

// DistributedIndex spreads entries over many independently-operated
// nodes with replication; a takedown disables one node at a time.
type DistributedIndex struct {
	nodes []map[string][]PeerID
	live  []bool
	// Replication is how many nodes hold each entry.
	Replication int
	rng         *sim.RNG
}

// NewDistributedIndex creates n index nodes with k-way replication.
func NewDistributedIndex(n, k int, rng *sim.RNG) *DistributedIndex {
	d := &DistributedIndex{Replication: k, rng: rng}
	for i := 0; i < n; i++ {
		d.nodes = append(d.nodes, make(map[string][]PeerID))
		d.live = append(d.live, true)
	}
	return d
}

// hash maps a file to its home node deterministically.
func (d *DistributedIndex) hash(file string) int {
	h := 2166136261
	for i := 0; i < len(file); i++ {
		h = (h ^ int(file[i])) * 16777619
		h &= 0x7fffffff
	}
	return h % len(d.nodes)
}

// Publish implements Index.
func (d *DistributedIndex) Publish(peer PeerID, file string) {
	home := d.hash(file)
	for r := 0; r < d.Replication; r++ {
		idx := (home + r) % len(d.nodes)
		if d.live[idx] {
			d.nodes[idx][file] = append(d.nodes[idx][file], peer)
		}
	}
}

// Lookup implements Index.
func (d *DistributedIndex) Lookup(file string) []PeerID {
	home := d.hash(file)
	for r := 0; r < d.Replication; r++ {
		idx := (home + r) % len(d.nodes)
		if d.live[idx] {
			if peers, ok := d.nodes[idx][file]; ok {
				return append([]PeerID(nil), peers...)
			}
		}
	}
	return nil
}

// TakedownFile implements Index: the rights holder must find and purge
// every live replica.
func (d *DistributedIndex) TakedownFile(file string) int {
	home := d.hash(file)
	n := 0
	for r := 0; r < d.Replication; r++ {
		idx := (home + r) % len(d.nodes)
		if d.live[idx] {
			n += len(d.nodes[idx][file])
			delete(d.nodes[idx], file)
		}
	}
	return n
}

// TakedownNode implements Index: disables one random live node.
func (d *DistributedIndex) TakedownNode() bool {
	var liveIdx []int
	for i, l := range d.live {
		if l {
			liveIdx = append(liveIdx, i)
		}
	}
	if len(liveIdx) == 0 {
		return false
	}
	d.live[liveIdx[d.rng.Intn(len(liveIdx))]] = false
	return true
}

// Alive implements Index.
func (d *DistributedIndex) Alive() bool {
	for _, l := range d.live {
		if l {
			return true
		}
	}
	return false
}

// Swarm is a population of peers sharing a catalog through an index.
type Swarm struct {
	Index Index
	Peers []PeerID
	// Catalog is the set of shared files.
	Catalog []string
	// UploadCredit tracks the mutual-aid accounting: peers earn credit
	// by serving (§IV-C: Napster as a nonmonetary value flow).
	UploadCredit map[PeerID]float64
}

// NewSwarm seeds peers and publishes each file from a few seeders.
func NewSwarm(index Index, nPeers int, catalog []string, seedersPerFile int, rng *sim.RNG) *Swarm {
	s := &Swarm{Index: index, Catalog: catalog, UploadCredit: make(map[PeerID]float64)}
	for i := 0; i < nPeers; i++ {
		s.Peers = append(s.Peers, PeerID(i))
	}
	for _, f := range catalog {
		perm := rng.Perm(nPeers)
		for k := 0; k < seedersPerFile && k < nPeers; k++ {
			index.Publish(PeerID(perm[k]), f)
		}
	}
	return s
}

// Fetch attempts to download a file: a lookup plus a transfer from the
// first listed peer, who earns upload credit.
func (s *Swarm) Fetch(file string) bool {
	peers := s.Index.Lookup(file)
	if len(peers) == 0 {
		return false
	}
	s.UploadCredit[peers[0]] += 1
	return true
}

// Availability reports the fraction of the catalog still fetchable.
func (s *Swarm) Availability() float64 {
	if len(s.Catalog) == 0 {
		return 0
	}
	ok := 0
	for _, f := range s.Catalog {
		if len(s.Index.Lookup(f)) > 0 {
			ok++
		}
	}
	return float64(ok) / float64(len(s.Catalog))
}

// TopUploaders returns peers by descending credit — the mutual-aid
// leaderboard.
func (s *Swarm) TopUploaders(k int) []PeerID {
	type pc struct {
		p PeerID
		c float64
	}
	var all []pc
	for p, c := range s.UploadCredit {
		all = append(all, pc{p, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].p < all[j].p
	})
	var out []PeerID
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, all[i].p)
	}
	return out
}
