package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestLinkFailureDropsTraffic(t *testing.T) {
	n, sched := chainNet(t)
	n.FailLink(2, 3)
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if tr.Delivered {
		t.Fatal("delivered across a failed link")
	}
	if tr.DropReason != "link-down" {
		t.Fatalf("drop reason = %q", tr.DropReason)
	}
	n.RestoreLink(2, 3)
	tr2 := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !tr2.Delivered {
		t.Fatal("restore failed")
	}
}

func TestLinkFailedSymmetric(t *testing.T) {
	n, _ := chainNet(t)
	n.FailLink(3, 2)
	if !n.LinkFailed(2, 3) || !n.LinkFailed(3, 2) {
		t.Fatal("failure should be direction-agnostic")
	}
}

func TestFlapLink(t *testing.T) {
	n, sched := chainNet(t)
	n.FlapLink(2, 3, 10*sim.Millisecond, 50*sim.Millisecond)
	// Before the flap: works.
	early := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.RunUntil(9 * sim.Millisecond)
	if !early.Delivered {
		t.Fatalf("pre-flap packet lost: %q", early.DropReason)
	}
	// During: fails.
	sched.RunUntil(20 * sim.Millisecond)
	mid := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.RunUntil(40 * sim.Millisecond)
	if mid.Delivered {
		t.Fatal("mid-flap packet delivered")
	}
	// After: works again.
	sched.RunUntil(60 * sim.Millisecond)
	late := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !late.Delivered {
		t.Fatalf("post-flap packet lost: %q", late.DropReason)
	}
}

func TestTracerouteFullPath(t *testing.T) {
	n, _ := chainNet(t)
	hops := n.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	if len(hops) != 3 {
		t.Fatalf("hops = %+v", hops)
	}
	// TTL=1 expires at node 2, TTL=2 at node 3; TTL=3 reaches node 4
	// (delivery does not decrement).
	want := []topology.NodeID{2, 3, 4}
	for i, h := range hops {
		if h.Node != want[i] {
			t.Fatalf("hop %d = %+v, want node %d", i, h, want[i])
		}
	}
	if hops[2].Note != "destination" {
		t.Fatalf("final hop = %+v", hops[2])
	}
	for _, h := range hops[:2] {
		if h.Note != "time-exceeded" {
			t.Fatalf("intermediate hop = %+v", h)
		}
	}
}

func TestTracerouteIdentifiesDisclosingBlocker(t *testing.T) {
	n, _ := chainNet(t)
	n.Node(3).AddMiddlebox(&dropBox{name: "corp-fw"})
	hops := n.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	last := hops[len(hops)-1]
	if last.Node != 3 || last.Note != "blocked:corp-fw" {
		t.Fatalf("blocker not identified: %+v", last)
	}
}

func TestTracerouteSilentBlockerGoesDark(t *testing.T) {
	n, _ := chainNet(t)
	n.Node(3).AddMiddlebox(&dropBox{name: "covert", silent: true})
	hops := n.Traceroute(1, packet.MakeAddr(4, 1), 10, nil)
	last := hops[len(hops)-1]
	if last.Note != "lost" || last.Node != 0 {
		t.Fatalf("silent device leaked identity: %+v", last)
	}
	// But path inference still works: the hop before went dark after
	// node 2 answered, so the fault is bracketed.
	if len(hops) < 2 || hops[len(hops)-2].Node != 2 {
		t.Fatalf("bracketing hop missing: %+v", hops)
	}
}

func TestPathMTUProbe(t *testing.T) {
	n, _ := chainNet(t)
	// TIP total length is 16-bit; huge payloads fail to serialize, so
	// the probe finds the serialization limit.
	mtu := n.PathMTUProbe(1, packet.MakeAddr(4, 1), 100, 100000)
	if mtu < 60000 || mtu > 65535 {
		t.Fatalf("mtu = %d", mtu)
	}
	// Unreachable destination: zero.
	n.FailLink(1, 2)
	if got := n.PathMTUProbe(1, packet.MakeAddr(4, 1), 100, 1000); got != 0 {
		t.Fatalf("unreachable mtu = %d", got)
	}
}
