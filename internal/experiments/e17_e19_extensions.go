package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/congestion"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/routing/linkstate"
	"repro/internal/sim"
	"repro/internal/topology"
)

// E17Congestion tests the §II-B lead example: "TCP congestion control
// 'works' when and only when the majority of end-systems both
// participate and follow a common set of rules" — and when the balance
// shifts, "the technical design of the system will do nothing to bound
// or guide the resulting shift", unless a mechanism like fair queueing
// is placed in the design.
func E17Congestion(seed uint64) *Result {
	res := &Result{
		ID:    "E17",
		Title: "the congestion-control tussle: social pressure vs fair queueing",
		Claim: "§II-B: cooperative congestion control holds only while defectors are few; a shared FIFO bottleneck does nothing to bound the shift",
		Columns: []string{
			"cheater-share", "compliant-goodput", "loss-rate", "jain",
		},
	}
	_ = seed // the model is deterministic given its configuration
	const nFlows, capacity, rounds = 10, 100.0, 600
	for _, disc := range []congestion.Discipline{congestion.SharedFIFO, congestion.FairQueue} {
		for _, cheaters := range []int{0, 1, 3, 5} {
			var flows []*congestion.Flow
			for i := 0; i < nFlows; i++ {
				flows = append(flows, congestion.NewFlow(fmt.Sprintf("f%d", i), i < cheaters))
			}
			b := congestion.NewBottleneck(capacity, disc, flows...)
			b.Run(rounds)
			cheaterShare := b.ShareOf(func(f *congestion.Flow) bool { return f.Aggressive })
			compliantGoodput := 0.0
			for _, f := range flows {
				if !f.Aggressive {
					compliantGoodput += f.Delivered
				}
			}
			compliantGoodput /= rounds
			res.AddRow(fmt.Sprintf("%v cheaters=%d", disc, cheaters),
				cheaterShare, compliantGoodput, b.LossRate(), b.JainIndex())
		}
	}
	res.Finding = fmt.Sprintf(
		"on shared FIFO, 3 cheaters of 10 flows take %.0f%% of the link and compliant goodput collapses from %.0f to %.0f; fair queueing bounds the same cheaters to %.0f%% with compliant goodput %.0f",
		res.MustGet("shared-fifo cheaters=3", "cheater-share")*100,
		res.MustGet("shared-fifo cheaters=0", "compliant-goodput"),
		res.MustGet("shared-fifo cheaters=3", "compliant-goodput"),
		res.MustGet("fair-queue cheaters=3", "cheater-share")*100,
		res.MustGet("fair-queue cheaters=3", "compliant-goodput"))
	return res
}

// E18Byzantine tests the §II-B "one right answer" strategy (Perlman):
// designs can be made resistant to players who perceive the answer
// differently. A byzantine AS advertises falsely cheap links to attract
// traffic and blackholes it; signed, two-sided-attested advertisements
// bound the damage.
func E18Byzantine(seed uint64) *Result { return e18Byzantine(seed, nil) }

func e18Byzantine(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E18",
		Title: "byzantine route advertisement: trusting vs robust flooding",
		Claim: "§II-B: byzantine-robust routing resists small groups placing their interests over the design's values",
		Columns: []string{
			"delivery", "attracted-to-liar", "rejected-ads",
		},
	}
	for _, mode := range []linkstate.VerifyMode{linkstate.TrustAll, linkstate.SignedTwoSided} {
		for _, attackers := range []int{0, 1, 2} {
			rng := sim.NewRNG(seed)
			g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
			keys := linkstate.GenerateKeys(g, rng)
			db := linkstate.NewAdDatabase(g, mode, keys)
			db.AttachObs(env.Registry())

			// The attackers are transit nodes (stubs attract nothing).
			var liars []topology.NodeID
			for _, id := range g.NodeIDs() {
				if g.Nodes[id].Kind == topology.Transit && g.Nodes[id].Tier == 2 && len(liars) < attackers {
					liars = append(liars, id)
				}
			}
			isLiar := map[topology.NodeID]bool{}
			for _, l := range liars {
				isLiar[l] = true
			}
			for _, id := range g.NodeIDs() {
				var ad *linkstate.Advertisement
				if isLiar[id] {
					ad = linkstate.LiarAdvertisement(g, id, 0.01, nil)
				} else {
					ad = linkstate.HonestAdvertisement(g, id)
				}
				ad.Sign(keys[id])
				db.Flood(ad)
			}

			// Forwarding: each node routes by the advertised database;
			// liars blackhole transit traffic.
			sched := sim.NewScheduler()
			sched.AttachObs(env.Registry())
			net := netsim.New(sched, g)
			net.AttachObs(env.Registry(), env.Tracer())
			for _, id := range g.NodeIDs() {
				id := id
				next, _ := db.SPF(id)
				net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
					nh, ok := next[topology.NodeID(dst.Provider())]
					return nh, ok
				}
				if isLiar[id] {
					net.Node(id).AddMiddlebox(blackhole{})
				}
			}
			stubs := g.Stubs()
			var traces []*netsim.Trace
			attracted := 0
			for i := 0; i < len(stubs); i++ {
				for j := 0; j < len(stubs); j++ {
					if i == j {
						continue
					}
					src, dst := stubs[i], stubs[j]
					data, err := packet.Serialize(
						&packet.TIP{TTL: 32, Proto: packet.LayerTypeRaw,
							Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1)},
						&packet.Raw{Data: []byte("x")})
					if err != nil {
						panic(err)
					}
					traces = append(traces, net.Send(src, data))
				}
			}
			sched.Run()
			delivered := 0
			for _, tr := range traces {
				if tr.Delivered {
					delivered++
				} else if isLiar[tr.DropNode] {
					attracted++
				}
			}
			res.AddRow(fmt.Sprintf("%s liars=%d", modeName(mode), attackers),
				ratio(delivered, len(traces)),
				ratio(attracted, len(traces)),
				float64(db.Rejected))
		}
	}
	res.Finding = fmt.Sprintf(
		"with 2 byzantine transits, trusting flooding loses %.0f%% of traffic into blackholes; signed two-sided attestation keeps delivery at %.0f%% (vs %.0f%% clean)",
		res.MustGet("trust-all liars=2", "attracted-to-liar")*100,
		res.MustGet("signed-two-sided liars=2", "delivery")*100,
		res.MustGet("signed-two-sided liars=0", "delivery")*100)
	return res
}

func modeName(m linkstate.VerifyMode) string {
	if m == linkstate.TrustAll {
		return "trust-all"
	}
	return "signed-two-sided"
}

// blackhole silently drops everything it is asked to forward.
type blackhole struct{}

func (blackhole) Name() string { return "blackhole" }
func (blackhole) Silent() bool { return true }
func (blackhole) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if dir == netsim.Forwarding {
		return nil, netsim.Drop
	}
	return nil, netsim.Accept
}

// E19MailChoice tests §IV-B's mail example plus its footnote: users
// choose their SMTP server for its quality; "an ISP might try to control
// what SMTP server a customer uses by redirecting packets based on the
// port number"; users respond by tunneling. The metric is the §IV-B
// payoff of choice: inbox spam experienced, and where mail actually
// flowed.
func E19MailChoice(seed uint64) *Result { return e19MailChoice(seed, nil) }

func e19MailChoice(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E19",
		Title: "mail server choice vs ISP redirection",
		Claim: "§IV-B: protocols must let all parties express choice; redirection re-imposes the provider's choice until users tunnel around it",
		Columns: []string{
			"via-chosen-server", "inbox-spam-rate",
		},
	}
	const nMessages = 600
	const spamFrac = 0.5
	servers := []*apps.MailServer{
		{Name: "isp-mail", Addr: packet.MakeAddr(2, 25), Reliability: 0.97, SpamFilter: 0.30, Price: 0},
		{Name: "quality-mail", Addr: packet.MakeAddr(3, 25), Reliability: 0.99, SpamFilter: 0.95, Price: 1},
	}
	prefs := apps.MailPrefs{WeightReliability: 2, WeightSpamFilter: 5, WeightPrice: 0.1}
	chosen := apps.ChooseServer(servers, prefs)

	for _, cfg := range []string{"free-choice", "isp-redirect", "redirect+tunnel"} {
		rng := sim.NewRNG(seed)
		// Topology: user at 1, ISP mail at 2, quality mail at 3; the
		// user's access ISP (node 2) can redirect port 25.
		sched := sim.NewScheduler()
		g := topology.NewGraph()
		g.AddNode(1, topology.Stub, 2)
		g.AddNode(2, topology.Transit, 1)
		g.AddNode(3, topology.Transit, 1)
		g.AddLink(1, 2, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(2, 3, topology.PeerOf, sim.Millisecond, 1)
		sched.AttachObs(env.Registry())
		net := netsim.New(sched, g)
		net.AttachObs(env.Registry(), env.Tracer())
		routes := map[topology.NodeID]map[uint16]topology.NodeID{
			1: {2: 2, 3: 2},
			2: {1: 1, 3: 3},
			3: {1: 2, 2: 2},
		}
		for id, tbl := range routes {
			tbl := tbl
			net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
				nh, ok := tbl[dst.Provider()]
				return nh, ok
			}
		}
		if cfg != "free-choice" {
			net.Node(2).AddMiddlebox(&middlebox.Redirector{
				Label: "smtp-hijack", MatchPort: 25, To: servers[0].Addr, Quiet: true,
			})
		}
		// Delivery handlers: whichever server receives the submission
		// handles the message stream.
		received := map[topology.NodeID]int{}
		for _, s := range servers {
			id := topology.NodeID(s.Addr.Provider())
			net.Node(id).Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
				received[n.ID]++
			}
		}
		// The user submits messages to the *chosen* server.
		viaChosen := 0
		inboxSpam, inboxTotal := 0, 0
		for i := 0; i < nMessages; i++ {
			msg := apps.Message{From: "peer", To: "user", Spam: rng.Bool(spamFrac)}
			useTunnel := cfg == "redirect+tunnel"
			var data []byte
			var err error
			if useTunnel {
				inner, ierr := packet.Serialize(
					&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: chosen.Addr},
					&packet.TTP{DstPort: 25, Next: packet.LayerTypeRaw},
					&packet.Raw{Data: []byte("MAIL")})
				if ierr != nil {
					panic(ierr)
				}
				data, err = packet.Serialize(
					&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: chosen.Addr},
					&packet.TTP{DstPort: 443, Next: packet.LayerTypeTunnel},
					&packet.Tunnel{Inner: packet.LayerTypeTIP},
					&packet.Raw{Data: inner})
			} else {
				data, err = packet.Serialize(
					&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: chosen.Addr},
					&packet.TTP{DstPort: 25, Next: packet.LayerTypeRaw},
					&packet.Raw{Data: []byte("MAIL")})
			}
			if err != nil {
				panic(err)
			}
			tr := net.Send(1, data)
			sched.Run()
			if !tr.Delivered {
				continue
			}
			// Which server actually handled it?
			handler := servers[0]
			last := tr.Path()[len(tr.Path())-1]
			for _, s := range servers {
				if topology.NodeID(s.Addr.Provider()) == last {
					handler = s
				}
			}
			if handler == chosen {
				viaChosen++
			}
			if handler.Handle(msg, rng) {
				inboxTotal++
				if msg.Spam {
					inboxSpam++
				}
			}
		}
		spamRate := 0.0
		if inboxTotal > 0 {
			spamRate = float64(inboxSpam) / float64(inboxTotal)
		}
		res.AddRow(cfg, ratio(viaChosen, nMessages), spamRate)
	}
	res.Finding = fmt.Sprintf(
		"redirection forces %.0f%% of mail through the ISP server and inbox spam rises from %.2f to %.2f; tunneling restores the user's choice (%.0f%% via chosen, spam back to %.2f)",
		(1-res.MustGet("isp-redirect", "via-chosen-server"))*100,
		res.MustGet("free-choice", "inbox-spam-rate"),
		res.MustGet("isp-redirect", "inbox-spam-rate"),
		res.MustGet("redirect+tunnel", "via-chosen-server")*100,
		res.MustGet("redirect+tunnel", "inbox-spam-rate"))
	return res
}
