package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/qos"
	"repro/internal/routing/linkstate"
	"repro/internal/routing/overlay"
	"repro/internal/routing/pathvector"
	"repro/internal/sim"
	"repro/internal/topology"
)

// e27PlanJSON is the standard fault schedule every E27 configuration is
// measured against: a transient transit-link failure, a provider crash,
// and a full partition of the provider, each followed by recovery. It is
// the engine's JSON schema, so the same plan replays via
// `netsim -faultplan` (see README).
const e27PlanJSON = `{
  "name": "e27-standard",
  "seed": 27,
  "events": [
    {"at_ms": 300, "kind": "link-down", "a": 1, "b": 2},
    {"at_ms": 700, "kind": "link-up", "a": 1, "b": 2},
    {"at_ms": 900, "kind": "node-crash", "node": 2},
    {"at_ms": 1300, "kind": "node-recover", "node": 2},
    {"at_ms": 1500, "kind": "partition", "group": [2]},
    {"at_ms": 1800, "kind": "heal"}
  ]
}`

// E27Availability tests the §V-A1/§V-A4 recovery claims under a standard
// chaos schedule: the design should let users "have and use multiple
// addresses" and overlays are "a tool in the tussle" — both are failover
// mechanisms, and under identical faults they should buy measurably
// higher availability than a single-homed attachment. Routing is live
// path-vector with modeled reconvergence delay (stale-route windows
// included), so availability reflects what the host actually experiences
// while BGP-style news propagates.
func E27Availability(seed uint64) *Result { return e27Availability(seed, nil) }

func e27Availability(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E27",
		Title: "availability under a standard fault schedule",
		Claim: "§V-A1/§V-A4: multiple provider-rooted addresses and overlay relays are failover tools; under faults they should measurably out-survive a single-homed attachment",
		Columns: []string{
			"availability", "downtime-ms", "ls-reconv-ms", "route-churn",
		},
	}
	for _, cfg := range []string{"single-homed", "multi-address", "overlay-failover"} {
		// Topology: core 1; providers 2 and 3 (peered, so provider 3 can
		// reach 2 even when 2 loses its transit link); remote provider 4
		// hosting the correspondent; host stub 5 on provider 2 (also on 3
		// when multi-address); relay stub 6 on provider 3.
		g := topology.NewGraph()
		for i := 1; i <= 6; i++ {
			kind, tier := topology.Transit, 2
			if i == 1 {
				tier = 1
			}
			if i >= 5 {
				kind, tier = topology.Stub, 3
			}
			g.AddNode(topology.NodeID(i), kind, tier)
		}
		g.AddLink(2, 1, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(3, 1, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(4, 1, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(2, 3, topology.PeerOf, sim.Millisecond, 1)
		g.AddLink(5, 2, topology.CustomerOf, sim.Millisecond, 1)
		if cfg == "multi-address" {
			g.AddLink(5, 3, topology.CustomerOf, sim.Millisecond, 1)
		}
		g.AddLink(6, 3, topology.CustomerOf, sim.Millisecond, 1)

		sched := sim.NewScheduler()
		net := netsim.New(sched, g)
		if env != nil {
			sched.AttachObs(env.Registry())
			net.AttachObs(env.Registry(), env.Tracer())
		}

		// Live routing: path-vector with delayed installs (stale windows).
		pv := pathvector.New(g)
		pvr := chaos.NewPathVectorRerouter(net, pv, true)
		pvr.AttachObs(env.Registry())
		if err := pvr.Converge(); err != nil {
			panic(err)
		}
		// Shadow link-state instance: reports flooding-model reconvergence
		// times for the same faults without touching forwarding.
		lsr := chaos.NewLinkStateRerouter(net, linkstate.NewDatabase(g), false)
		lsr.AttachObs(env.Registry())
		lsr.Converge()

		eng := chaos.New(net, seed)
		eng.AttachObs(env.Registry())
		eng.Observe(pvr)
		eng.Observe(lsr)
		plan, err := chaos.ParsePlan([]byte(e27PlanJSON))
		if err != nil {
			panic(err)
		}
		if err := eng.Schedule(plan); err != nil {
			panic(err)
		}

		mesh := overlay.NewMesh([]topology.NodeID{4, 5, 6})
		mesh.InstallRelay(net, 6)

		correspondent := packet.MakeAddr(4, 1)
		addrs := []packet.Addr{packet.MakeAddr(2, 500)}
		if cfg == "multi-address" {
			addrs = append(addrs, packet.MakeAddr(3, 500))
		}
		// Reaching an address means reaching its provider while the
		// host's access link (and both ends of it) are alive.
		hostUp := func(prov topology.NodeID) bool {
			return !net.LinkFailed(prov, 5) && !net.NodeFailed(prov) && !net.NodeFailed(5)
		}
		mkProbe := func(dst packet.Addr) []byte {
			data, err := packet.Serialize(
				&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw, Src: correspondent, Dst: dst},
				&packet.Raw{Data: []byte("probe")})
			if err != nil {
				panic(err)
			}
			return data
		}

		const probeEvery = 20 * sim.Millisecond
		const horizon = 2000 * sim.Millisecond
		nProbes, avail := 0, 0
		for t := 10 * sim.Millisecond; t < horizon; t += probeEvery {
			nProbes++
			sched.At(t, func() {
				type attempt struct {
					tr   *netsim.Trace
					prov topology.NodeID
				}
				// Counter baseline before any send this round, so the
				// overlay check sees only this round's arrivals at 2.
				base := net.Node(2).Counters.Get("delivered")
				var attempts []attempt
				for _, a := range addrs {
					attempts = append(attempts, attempt{net.Send(4, mkProbe(a)), topology.NodeID(a.Provider())})
				}
				if cfg == "overlay-failover" {
					// The correspondent also tunnels via the relay stub on
					// provider 3; the relay decapsulates and re-injects,
					// reaching 2 over the 3–2 peer link even while 2's
					// transit link is down.
					enc, err := overlay.Encapsulate(correspondent, packet.MakeAddr(6, 0), 32, mkProbe(addrs[0]))
					if err != nil {
						panic(err)
					}
					net.Send(4, enc)
				}
				sched.After(16*sim.Millisecond, func() {
					ok := false
					for _, at := range attempts {
						if at.tr.Delivered && hostUp(at.prov) {
							ok = true
						}
					}
					if cfg == "overlay-failover" &&
						net.Node(2).Counters.Get("delivered") > base && hostUp(2) {
						ok = true
					}
					if ok {
						avail++
					}
				})
			})
		}
		sched.Run()
		res.AddRow(cfg,
			float64(avail)/float64(nProbes),
			float64(nProbes-avail)*float64(probeEvery)/float64(sim.Millisecond),
			float64(lsr.TotalDelay)/float64(sim.Millisecond),
			float64(pvr.TotalChurn))
	}
	res.Finding = fmt.Sprintf(
		"under the standard schedule the single-homed host is up %.0f%% of the time; overlay failover recovers the transit-link outage (%.0f%%) and multiple provider-rooted addresses survive every fault (%.0f%%); link-state refloods the same news in %.1fms total vs the path-vector churn of %.0f route changes",
		res.MustGet("single-homed", "availability")*100,
		res.MustGet("overlay-failover", "availability")*100,
		res.MustGet("multi-address", "availability")*100,
		res.MustGet("single-homed", "ls-reconv-ms"),
		res.MustGet("single-homed", "route-churn"))
	return res
}

// e28PlanJSON partitions core 2 away (collapsing the two parallel
// spines onto core 1), fires a signed byzantine burst from provider 4
// (phantom link to stub 10) mid-partition, and heals.
const e28PlanJSON = `{
  "name": "e28-degraded",
  "seed": 28,
  "events": [
    {"at_ms": 300, "kind": "partition", "group": [2]},
    {"at_ms": 500, "kind": "byzantine-burst", "node": 4, "count": 1, "cost": 0.001, "phantoms": [10]},
    {"at_ms": 900, "kind": "heal"}
  ]
}`

// E28Degradation tests §VI-A ("design for variation … failures of
// transparency will occur") as a graceful-degradation question: when a
// core router partitions away and an insider floods lying
// advertisements, do the QoS plane and the trust plane degrade
// gracefully or collapse? The QoS plane sheds best-effort traffic at
// congested routers to preserve gold service; the trust plane either
// swallows the byzantine burst (trust-all) or rejects it
// (signed-two-sided attestation), and the advertisement database
// re-floods honestly after the heal.
//
// The topology is a parallel-spine network built so the degradation is
// attributable by construction: two cores (1, 2), three providers —
// 3 preferring core 1, 4 (the liar) preferring core 2, 5 dual-homed —
// and stubs 6 (on 3), 7 (on 4), 8–10 (on 5), plus bulk-source stubs 11
// (on 3) and 12 (on 4). The two background bulk streams (11→8 and
// 12→9) take link-disjoint paths over different spines while healthy;
// partitioning core 2 forces both onto link 1→5, which is where the
// shedding engages.
func E28Degradation(seed uint64) *Result { return e28Degradation(seed, nil) }

func e28Degradation(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E28",
		Title: "graceful degradation of QoS and trust planes under partial partition",
		Claim: "§VI-A: failures of transparency will occur — design what the user sees then; shedding and attestation bound the damage",
		Columns: []string{
			"delivery-gold", "delivery-be", "shed-drops", "ads-rejected",
		},
	}
	// Phase windows bracket the plan events (partition at 300ms, burst at
	// 500ms, heal at 900ms); probes fire mid-window, counters are
	// snapshotted at the window edges.
	type phase struct {
		label      string
		start, end sim.Time
	}
	phases := []phase{
		{"healthy", 0, 300 * sim.Millisecond},
		{"degraded", 300 * sim.Millisecond, 900 * sim.Millisecond},
		{"healed", 900 * sim.Millisecond, 1200 * sim.Millisecond},
	}
	for _, mode := range []linkstate.VerifyMode{linkstate.TrustAll, linkstate.SignedTwoSided} {
		rng := sim.NewRNG(seed)
		g := topology.NewGraph()
		for i := 1; i <= 12; i++ {
			kind, tier := topology.Transit, 2
			if i <= 2 {
				tier = 1
			}
			if i >= 6 {
				kind, tier = topology.Stub, 3
			}
			g.AddNode(topology.NodeID(i), kind, tier)
		}
		g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 3)
		g.AddLink(3, 1, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(3, 2, topology.CustomerOf, sim.Millisecond, 5)
		g.AddLink(4, 1, topology.CustomerOf, sim.Millisecond, 1.5)
		g.AddLink(4, 2, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(5, 1, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(5, 2, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(6, 3, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(7, 4, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(8, 5, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(9, 5, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(10, 5, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(11, 3, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(12, 4, topology.CustomerOf, sim.Millisecond, 1)
		keys := linkstate.GenerateKeys(g, rng)
		db := linkstate.NewAdDatabase(g, mode, keys)
		if env != nil {
			db.AttachObs(env.Registry())
		}
		sched := sim.NewScheduler()
		net := netsim.New(sched, g)
		if env != nil {
			sched.AttachObs(env.Registry())
			net.AttachObs(env.Registry(), env.Tracer())
		}
		adr := chaos.NewAdRerouter(net, db, keys, true)
		adr.AttachObs(env.Registry())
		adr.Converge()

		eng := chaos.New(net, seed)
		eng.AdDB = db
		eng.Keys = keys
		eng.AttachObs(env.Registry())
		eng.Observe(adr)
		plan, err := chaos.ParsePlan([]byte(e28PlanJSON))
		if err != nil {
			panic(err)
		}
		if err := eng.Schedule(plan); err != nil {
			panic(err)
		}

		// QoS plane: every transit router sheds best-effort packets while
		// its worst outbound backlog exceeds the threshold (a single
		// full-rate stream keeps at most two 8KB segments — 160µs — in a
		// queue, so only genuine over-capacity convergence sheds).
		shedDrops := 0
		box := &shedBox{net: net, thresh: 250 * sim.Microsecond, drops: &shedDrops}
		for _, id := range g.NodeIDs() {
			if g.Nodes[id].Kind == topology.Transit {
				net.Node(id).AddMiddlebox(box)
			}
		}

		// Stubs 11 and 12 only source the background bulk; probes measure
		// the user-visible planes between the other five stubs.
		probeStubs := []topology.NodeID{6, 7, 8, 9, 10}
		mkProbe := func(src, dst topology.NodeID, class qos.Class, size int) []byte {
			data, err := packet.Serialize(
				&packet.TIP{TTL: 32, TOS: qos.ToSFor(class), Proto: packet.LayerTypeRaw,
					Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1)},
				&packet.Raw{Data: make([]byte, size)})
			if err != nil {
				panic(err)
			}
			return data
		}

		type roundStats struct {
			gold, be     []*netsim.Trace
			shed0, shed1 int
			rej0, rej1   int
		}
		rounds := make([]*roundStats, len(phases))
		for i, ph := range phases {
			rs := &roundStats{}
			rounds[i] = rs
			mid := (ph.start + ph.end) / 2
			sched.At(ph.start, func() {
				rs.shed0, rs.rej0 = shedDrops, db.Rejected
			})
			// Background bulk (best-effort): two line-rate streams whose
			// healthy paths are link-disjoint (11→8 over core 1, 12→9 over
			// core 2). While core 2 is partitioned away both streams share
			// link 1→5 at twice its capacity, and the shed plane engages.
			sched.At(mid, func() {
				for k := 0; k < 25; k++ {
					net.Send(11, mkProbe(11, 8, qos.BestEffort, 8000))
					net.Send(12, mkProbe(12, 9, qos.BestEffort, 8000))
				}
			})
			sched.At(mid+sim.Millisecond, func() {
				// Probes launch while the bulk is still streaming, so they
				// cross the transit core at peak backlog.
				for _, s := range probeStubs {
					for _, d := range probeStubs {
						if s == d {
							continue
						}
						rs.gold = append(rs.gold, net.Send(s, mkProbe(s, d, qos.Gold, 64)))
						rs.be = append(rs.be, net.Send(s, mkProbe(s, d, qos.BestEffort, 64)))
					}
				}
			})
			sched.At(ph.end-sim.Millisecond, func() {
				rs.shed1, rs.rej1 = shedDrops, db.Rejected
			})
		}
		sched.Run()

		frac := func(traces []*netsim.Trace) float64 {
			ok := 0
			for _, tr := range traces {
				if tr.Delivered {
					ok++
				}
			}
			return float64(ok) / float64(len(traces))
		}
		for i, ph := range phases {
			rs := rounds[i]
			res.AddRow(fmt.Sprintf("%s %s", modeName(mode), ph.label),
				frac(rs.gold), frac(rs.be),
				float64(rs.shed1-rs.shed0), float64(rs.rej1-rs.rej0))
		}
	}
	res.Finding = fmt.Sprintf(
		"degradation is graceful and bounded: under the partition gold delivery holds at %.0f%% while best-effort is shed to %.0f%% (%.0f shed drops); the byzantine burst costs the trust-all plane %.0f%% of gold delivery where signed attestation rejects it (%.0f ads) and keeps %.0f%%; after the heal both planes recover (%.0f%% / %.0f%%)",
		res.MustGet("trust-all degraded", "delivery-gold")*100,
		res.MustGet("trust-all degraded", "delivery-be")*100,
		res.MustGet("trust-all degraded", "shed-drops"),
		(res.MustGet("signed-two-sided degraded", "delivery-gold")-res.MustGet("trust-all degraded", "delivery-gold"))*100,
		res.MustGet("signed-two-sided degraded", "ads-rejected"),
		res.MustGet("signed-two-sided degraded", "delivery-gold")*100,
		res.MustGet("trust-all healed", "delivery-gold")*100,
		res.MustGet("signed-two-sided healed", "delivery-gold")*100)
	return res
}

// shedBox is the QoS plane's load-shedding middlebox: while the router's
// worst outbound backlog exceeds the threshold, best-effort transit is
// dropped (disclosed as "blocked:shed") so gold traffic keeps its
// queueing budget. Delivery-direction traffic is never shed — the
// congested resource is the outbound link.
type shedBox struct {
	net    *netsim.Network
	thresh sim.Time
	drops  *int
}

// Name implements netsim.Middlebox.
func (s *shedBox) Name() string { return "shed" }

// Silent implements netsim.Middlebox.
func (s *shedBox) Silent() bool { return false }

// Process implements netsim.Middlebox.
func (s *shedBox) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if dir != netsim.Forwarding || s.net.NodeBacklog(node) < s.thresh {
		return nil, netsim.Accept
	}
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		return nil, netsim.Accept
	}
	if qos.ClassOfToS(tip.TOS) != qos.BestEffort {
		return nil, netsim.Accept
	}
	*s.drops++
	return nil, netsim.Drop
}
