// Command netsim runs standalone traffic simulations over a generated
// internetwork: path-vector routing, optional firewalls, and per-packet
// traces with fault isolation.
//
// Usage:
//
//	netsim [-seed N] [-packets N] [-fw-density F] [-srcroute] [-trace]
//	       [-faultplan FILE] [-metrics FILE] [-events FILE]
//
// -metrics writes the run's internal/obs metric snapshot as JSON;
// -events streams every forwarding-layer event (send, forward, drop,
// middlebox rewrite, deliver) as JSON lines. Both are deterministic for
// the seed.
//
// -faultplan replays a chaos plan (internal/chaos JSON schema: timed
// link failures, flaps, node crashes, partitions, packet impairment)
// while the probes are in flight; path-vector routing re-converges
// around each fault with a modeled delay. Replays at the same seed are
// byte-identical.
//
// Scale mode (-nodes N) switches to the sharded simulation core: a
// generated scale-free internetwork with static sink routing and
// fire-and-forget bulk traffic, partitioned across -shards schedulers:
//
//	netsim -shards 8 -nodes 100000
//
// Scale mode prints a deterministic digest on stdout — identical bytes
// for the same seed at any shard count, sequential or parallel — and
// timing on stderr, so CI can diff the digest across shard counts.
//
// Multipath mode (-multipath) stripes a reliable transfer over
// link-disjoint source routes between the best-connected stub pair of
// the generated hierarchy, with a pluggable selection strategy, and
// reports each path's fate (RTT/loss estimates, demotions, promotions):
//
//	netsim -multipath -mpstrategy loss-adaptive -faultplan plan.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/routing/pathvector"
	"repro/internal/routing/srcroute"
	"repro/internal/scale"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport/multipath"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	packets := flag.Int("packets", 200, "number of probe packets")
	fwDensity := flag.Float64("fw-density", 0, "fraction of transit nodes with restrictive firewalls")
	useSrcRoute := flag.Bool("srcroute", false, "attach user source routes (nodes honor them)")
	showTrace := flag.Bool("trace", false, "print each packet's trace")
	faultPlan := flag.String("faultplan", "", "replay a chaos fault plan (JSON) during the run")
	metricsPath := flag.String("metrics", "", "write the obs metric snapshot as JSON to this file")
	eventsPath := flag.String("events", "", "write forwarding-layer events as JSON lines to this file")
	nodes := flag.Int("nodes", 0, "scale mode: run the sharded core over a scale-free topology this big")
	shards := flag.Int("shards", 1, "scale mode: shard count")
	parallel := flag.Bool("parallel", true, "scale mode: run shards in parallel epochs (off = lockstep)")
	chaosOn := flag.Bool("chaos", false, "scale mode: inject a deterministic fault schedule")
	useMultipath := flag.Bool("multipath", false, "multipath mode: stripe a reliable transfer over disjoint source routes")
	mpStrategy := flag.String("mpstrategy", "disjointness-max", "multipath mode: path-selection strategy (shortest-k, disjointness-max, latency-weighted, loss-adaptive)")
	mpBytes := flag.Int("mpbytes", 256<<10, "multipath mode: transfer size in bytes")
	flag.Parse()

	if *useMultipath {
		runMultipath(*seed, *mpStrategy, *mpBytes, *faultPlan, *metricsPath)
		return
	}

	if *nodes > 0 {
		// -packets keeps its own default for probe mode; scale mode
		// defaults to 10 packets per node unless the flag was given.
		pk := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "packets" {
				pk = *packets
			}
		})
		runScale(*nodes, *shards, pk, *parallel, *chaosOn, *seed, *metricsPath)
		return
	}

	rng := sim.NewRNG(*seed)
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)

	var reg *obs.Registry
	var sink *obs.JSONL
	if *metricsPath != "" || *eventsPath != "" {
		reg = obs.NewRegistry()
		sched.AttachObs(reg)
		var tr *obs.Tracer
		if *eventsPath != "" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "netsim: events: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			sink = obs.NewJSONL(f)
			tr = obs.NewTracer(sink)
		}
		net.AttachObs(reg, tr)
	}

	pv := pathvector.New(g)
	pv.AttachObs(reg)
	if err := pv.Converge(); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("topology: %d nodes, %d links; path-vector converged in %d iterations\n",
		len(g.Nodes), len(g.Links), pv.Iterations)

	// With a fault plan, the engine replays timed faults and a rerouter
	// re-converges path-vector routing around them; probe sends spread
	// over the plan's duration so traffic actually meets the faults.
	var eng *chaos.Engine
	var pvr *chaos.PathVectorRerouter
	horizon := sim.Time(0)
	if *faultPlan != "" {
		buf, err := os.ReadFile(*faultPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: faultplan: %v\n", err)
			os.Exit(1)
		}
		plan, err := chaos.ParsePlan(buf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: faultplan: %v\n", err)
			os.Exit(1)
		}
		pvr = chaos.NewPathVectorRerouter(net, pv, true)
		pvr.AttachObs(reg)
		if err := pvr.Converge(); err != nil {
			fmt.Fprintf(os.Stderr, "netsim: faultplan: %v\n", err)
			os.Exit(1)
		}
		eng = chaos.New(net, *seed)
		eng.AttachObs(reg)
		eng.Observe(pvr)
		if err := eng.Schedule(plan); err != nil {
			fmt.Fprintf(os.Stderr, "netsim: faultplan: %v\n", err)
			os.Exit(1)
		}
		for i := range plan.Events {
			if at := plan.Events[i].At(); at > horizon {
				horizon = at
			}
		}
		horizon += 200 * sim.Millisecond
		fmt.Printf("fault plan %q: %d events; probes spread over %v\n",
			plan.Name, len(plan.Events), horizon)
	}

	for _, id := range g.NodeIDs() {
		nd := net.Node(id)
		nd.Route = pv.RouteFunc(id)
		nd.HonorSourceRoutes = *useSrcRoute
		if g.Nodes[id].Kind == topology.Transit && rng.Bool(*fwDensity) {
			blocked := map[uint16]bool{}
			for p := uint16(1024); p <= 10000; p++ {
				blocked[p] = true
			}
			nd.AddMiddlebox(&middlebox.PortFirewall{Label: fmt.Sprintf("fw-%d", id), BlockedPorts: blocked})
		}
	}

	stubs := g.Stubs()
	traces := make([]*netsim.Trace, *packets)
	var hops sim.Series
	for i := 0; i < *packets; i++ {
		src := stubs[rng.Intn(len(stubs))]
		dst := stubs[rng.Intn(len(stubs))]
		for dst == src {
			dst = stubs[rng.Intn(len(stubs))]
		}
		tip := &packet.TIP{
			TTL: 32, Proto: packet.LayerTypeTTP,
			Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1),
		}
		if *useSrcRoute {
			if cands := srcroute.Discover(g, src, dst, 2, 7); len(cands) > 1 {
				tip.SourceRoute = cands[1].Option()
			}
		}
		// Half the traffic is mature applications on well-known ports,
		// half is new applications on high ports — the §VI-A mix.
		dstPort := []uint16{25, 80, 443}[rng.Intn(3)]
		if rng.Bool(0.5) {
			dstPort = uint16(1024 + rng.Intn(8000))
		}
		data, err := packet.Serialize(tip,
			&packet.TTP{SrcPort: 4000, DstPort: dstPort, Next: packet.LayerTypeRaw},
			&packet.Raw{Data: []byte("probe")})
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(1)
		}
		if eng != nil {
			i, src, data := i, src, data
			sched.At(sim.Time(i)*horizon/sim.Time(*packets), func() {
				traces[i] = net.Send(src, data)
			})
		} else {
			traces[i] = net.Send(src, data)
		}
	}
	sched.Run()

	if eng != nil {
		fmt.Printf("chaos: applied %v; path-vector reconverged %d times (route churn %d, modeled delay %v)\n",
			eng.Applied, pvr.Reconverges, pvr.TotalChurn, pvr.TotalDelay)
	}

	delivered := 0
	dropReasons := sim.Counter{}
	var latency sim.Series
	for i, tr := range traces {
		if tr.Delivered {
			delivered++
			latency.Add(tr.Latency().Millis())
			hops.Add(float64(len(tr.Path()) - 1))
		} else {
			dropReasons.Inc(tr.DropReason)
		}
		if *showTrace {
			fmt.Printf("packet %d:\n", i)
			for _, e := range tr.Events {
				fmt.Printf("  %-10v node %-3d %-8s %s\n", e.At, e.Node, e.Action, e.Detail)
			}
		}
	}
	fmt.Printf("delivered %d/%d (%.1f%%)\n", delivered, len(traces),
		100*float64(delivered)/float64(len(traces)))
	if delivered > 0 {
		fmt.Printf("latency: mean %.2fms p99 %.2fms; hops: mean %.1f max %.0f\n",
			latency.Mean(), latency.Percentile(99), hops.Mean(), hops.Max())
	}
	reasons := make([]string, 0, len(dropReasons))
	for reason := range dropReasons {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Printf("dropped (%s): %d\n", reason, dropReasons[reason])
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "netsim: events: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		writeMetrics(reg, *metricsPath)
	}
}

// runScale executes the sharded scale workload. Everything on stdout is
// deterministic for (seed, nodes, packets, chaos) — independent of the
// shard count and driver — so CI diffs it across shard counts; wall
// time and throughput go to stderr.
func runScale(nodes, shards, packets int, parallel, chaosOn bool, seed uint64, metricsPath string) {
	cfg := scale.Config{
		Nodes: nodes, Packets: packets, Seed: seed,
		Shards: shards, Parallel: parallel, Chaos: chaosOn,
		Obs: metricsPath != "",
	}
	start := time.Now()
	res := scale.Run(cfg)
	wall := time.Since(start)
	// Shard geometry is shard-count-dependent by definition, so it goes
	// to stderr with the timing, keeping stdout diffable across counts.
	fmt.Fprintf(os.Stderr, "netsim: scale: shards=%d window=%v cross-links=%d\n",
		cfg.Shards, res.Window, res.CrossLinks)
	fmt.Print(res.Render())
	total := res.Delivered + res.Dropped
	fmt.Fprintf(os.Stderr, "netsim: scale: %d packets, %d events in %v (%.0f pkt/s, %.0f ev/s, GOMAXPROCS=%d)\n",
		total, res.Processed, wall.Round(time.Millisecond),
		float64(total)/wall.Seconds(), float64(res.Processed)/wall.Seconds(),
		runtime.GOMAXPROCS(0))
	if metricsPath != "" {
		writeMetrics(res.Metrics, metricsPath)
	}
}

// writeMetrics dumps a registry snapshot as indented JSON.
func writeMetrics(reg *obs.Registry, path string) {
	buf, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: metrics: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: metrics: %v\n", err)
		os.Exit(1)
	}
}

// runMultipath is multipath mode: discover disjoint source routes
// between the two most distant stubs of a generated hierarchy, stripe a
// reliable transfer across them with the chosen strategy, optionally
// replaying a chaos fault plan underneath, and report per-path fates.
// Deterministic per seed.
func runMultipath(seed uint64, strategy string, bytes int, faultPlan, metricsPath string) {
	strat, err := multipath.StrategyByName(strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	rng := sim.NewRNG(seed)
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)

	var reg *obs.Registry
	if metricsPath != "" {
		reg = obs.NewRegistry()
		sched.AttachObs(reg)
		net.AttachObs(reg, nil)
	}

	// Path-vector gives every node a fallback table (degenerate direct
	// paths and any unrouted traffic); the source routes carry the rest.
	pv := pathvector.New(g)
	pv.AttachObs(reg)
	if err := pv.Converge(); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	for _, id := range g.NodeIDs() {
		nd := net.Node(id)
		nd.Route = pv.RouteFunc(id)
		nd.HonorSourceRoutes = true
	}

	if faultPlan != "" {
		buf, err := os.ReadFile(faultPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: faultplan: %v\n", err)
			os.Exit(1)
		}
		plan, err := chaos.ParsePlan(buf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: faultplan: %v\n", err)
			os.Exit(1)
		}
		eng := chaos.New(net, seed)
		eng.AttachObs(reg)
		if err := eng.Schedule(plan); err != nil {
			fmt.Fprintf(os.Stderr, "netsim: faultplan: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fault plan %q: %d events\n", plan.Name, len(plan.Events))
	}

	// Pick the stub pair with the richest disjoint-path set (first such
	// pair in ID order — deterministic), so the demo actually stripes.
	stubs := g.Stubs()
	src, dst, best := stubs[0], stubs[len(stubs)-1], 0
	for _, a := range stubs {
		for _, b := range stubs {
			if a >= b {
				continue
			}
			if n := len(srcroute.DisjointPaths(g, a, b, 4, 8)); n > best {
				src, dst, best = a, b, n
			}
		}
	}
	payload := make([]byte, bytes)
	for i := range payload {
		payload[i] = byte(i*11 + 3)
	}
	rcv := multipath.InstallReceiver(net, dst, 7000)
	cfg := multipath.DefaultConfig()
	cfg.Seed = seed
	snd := multipath.NewSender(net, strat, src, dst, 7000, payload, cfg)
	if reg != nil {
		snd.AttachObs(reg)
	}
	snd.Start()
	sched.Run()

	st := snd.Stats()
	fmt.Printf("multipath %s: %d -> %d, %d bytes in %d segments over %d paths\n",
		strat.Name(), src, dst, bytes, st.Segments, st.PathsUsed)
	for _, p := range snd.Paths() {
		fmt.Printf("  path %d %v: %s, sent %d acked %d retx %d timeouts %d demote %d promote %d srtt %v loss %.3f\n",
			p.Index, p.Cand.Path, p.State, p.Sent, p.Acked, p.Retx, p.Timeouts,
			p.Demotions, p.Promotions, p.SRTT, p.Loss)
	}
	switch {
	case st.Done:
		fmt.Printf("done in %v: sent %d, retx %d, probes %d, demotions %d, promotions %d, dups absorbed %d\n",
			st.Elapsed, st.Sent, st.Retransmissions, st.Probes, st.Demotions, st.Promotions, rcv.Dups)
	case st.Failed:
		fmt.Printf("FAILED after %v: %s\n", st.Elapsed, st.FailReason)
	}
	if metricsPath != "" {
		writeMetrics(reg, metricsPath)
	}
}
