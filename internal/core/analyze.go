package core

import (
	"math"
	"sort"
)

// ChoicePoint is one place in a design where some party selects among
// alternatives at run time — the unit of "design for choice" (§IV-B:
// "protocols must permit all the parties to express choice").
type ChoicePoint struct {
	Name string
	// Chooser is the party that holds the choice.
	Chooser Kind
	// Alternatives is how many options the chooser has (>= 1; 1 means
	// no real choice).
	Alternatives int
	// Visible reports whether other parties can see the choice made
	// (§IV-C's "visibility (or not) of choices made").
	Visible bool
	// CostExposed reports whether the cost of the choice is exposed to
	// the chooser (§IV-C's "exposure of cost of choice").
	CostExposed bool
}

// Design is a protocol/architecture description for static analysis: its
// choice points and the space couplings of its mechanisms.
type Design struct {
	Name    string
	Choices []ChoicePoint
	// Mechanisms lists the design's parts with their space couplings.
	Mechanisms []*Mechanism
}

// ChoiceReport is the output of the design-for-choice analyzer.
type ChoiceReport struct {
	// BitsByKind is the total log2(alternatives) each party holds —
	// "bits of choice".
	BitsByKind map[Kind]float64
	// VisibleFraction is the share of choice points whose outcomes
	// other parties can observe.
	VisibleFraction float64
	// CostExposedFraction is the share of choice points whose costs
	// the chooser sees.
	CostExposedFraction float64
}

// AnalyzeChoice runs the §IV-B analyzer over a design.
func AnalyzeChoice(d *Design) ChoiceReport {
	r := ChoiceReport{BitsByKind: make(map[Kind]float64)}
	if len(d.Choices) == 0 {
		return r
	}
	visible, exposed := 0, 0
	for _, c := range d.Choices {
		alts := c.Alternatives
		if alts < 1 {
			alts = 1
		}
		r.BitsByKind[c.Chooser] += math.Log2(float64(alts))
		if c.Visible {
			visible++
		}
		if c.CostExposed {
			exposed++
		}
	}
	r.VisibleFraction = float64(visible) / float64(len(d.Choices))
	r.CostExposedFraction = float64(exposed) / float64(len(d.Choices))
	return r
}

// ChoiceBalance returns user bits minus provider (ISP) bits — positive
// means the design empowers users. §VI-B frames user empowerment as
// "the manifestation of the right to choose".
func ChoiceBalance(d *Design) float64 {
	r := AnalyzeChoice(d)
	return r.BitsByKind[User] - r.BitsByKind[ISP]
}

// IsolationReport is the output of the tussle-boundary analyzer.
type IsolationReport struct {
	// Couplings maps each (from, to) space pair to the number of
	// mechanisms in `from` that condition on `to`.
	Couplings map[[2]Space]int
	// CoupledMechanisms counts mechanisms with at least one coupling.
	CoupledMechanisms int
	// TotalMechanisms counts all mechanisms analyzed.
	TotalMechanisms int
}

// IsolationScore is 1 minus the fraction of mechanisms that couple
// across tussle-space boundaries: 1.0 means perfectly modularized along
// tussle boundaries, 0.0 means everything is entangled.
func (r IsolationReport) IsolationScore() float64 {
	if r.TotalMechanisms == 0 {
		return 1
	}
	return 1 - float64(r.CoupledMechanisms)/float64(r.TotalMechanisms)
}

// AnalyzeIsolation runs the §IV-A analyzer over a design's mechanisms.
func AnalyzeIsolation(d *Design) IsolationReport {
	r := IsolationReport{Couplings: make(map[[2]Space]int)}
	for _, m := range d.Mechanisms {
		r.TotalMechanisms++
		if len(m.Couples) > 0 {
			r.CoupledMechanisms++
			for _, to := range m.Couples {
				r.Couplings[[2]Space{m.Space, to}]++
			}
		}
	}
	return r
}

// SpilloverPaths lists the coupled space pairs in deterministic order —
// the channels through which "one tussle spills over and distorts
// unrelated issues".
func (r IsolationReport) SpilloverPaths() [][2]Space {
	out := make([][2]Space, 0, len(r.Couplings))
	for k := range r.Couplings {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// VisibilityAudit reports, over an engine's deployed mechanisms, the
// fraction that reveal themselves — the §VI-A courtesy requirement
// ("require that devices reveal if they impose limitations").
func VisibilityAudit(st *State) float64 {
	if len(st.Mechanisms) == 0 {
		return 1
	}
	visible := 0
	for _, m := range st.Mechanisms {
		if m.Visible {
			visible++
		}
	}
	return float64(visible) / float64(len(st.Mechanisms))
}

// DistortionRate reports the fraction of deployed mechanisms that are
// distortions — moves made by violating the design rather than within
// it. A rising rate is the signature of a rigid design breaking (§IV:
// "rigid designs will be broken").
func DistortionRate(st *State) float64 {
	if len(st.Mechanisms) == 0 {
		return 0
	}
	n := 0
	for _, m := range st.Mechanisms {
		if m.Distortion {
			n++
		}
	}
	return float64(n) / float64(len(st.Mechanisms))
}
