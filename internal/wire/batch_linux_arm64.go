//go:build linux && arm64

package wire

// sysSendmmsg is __NR_sendmmsg on linux/arm64 (no syscall.SYS_ constant
// exists for it in the stdlib).
const sysSendmmsg = 269
