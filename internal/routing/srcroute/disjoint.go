package srcroute

import (
	"math"

	"repro/internal/sim"
	"repro/internal/topology"
)

// DisjointPaths finds up to k mutually link-disjoint paths from src to
// dst, each at most maxLen nodes, ordered by discovery (non-decreasing
// latency). It is the route-discovery half of "design for choice"
// (§IV-B): a multipath sender that stripes over link-disjoint routes
// keeps a live path under any single-link failure the disjoint set
// covers.
//
// The search is greedy successive-shortest-path extraction: Dijkstra
// over the links not yet claimed by an earlier path, claim the winning
// path's links, repeat. Greedy extraction is not guaranteed to find the
// maximum disjoint set on adversarial graphs, but it is deterministic,
// each successive path is the shortest the remaining graph admits, and
// on provider hierarchies it finds the disjoint set that exists. When
// fewer than k disjoint paths exist the result is simply shorter —
// callers degrade to the paths they get, down to one (or zero when src
// and dst are disconnected, equal, or absent from the graph).
func DisjointPaths(g *topology.Graph, src, dst topology.NodeID, k, maxLen int) []Candidate {
	if maxLen <= 0 {
		maxLen = 8
	}
	if k <= 0 {
		k = 2
	}
	if src == dst {
		return nil
	}
	if _, ok := g.Nodes[src]; !ok {
		return nil
	}
	if _, ok := g.Nodes[dst]; !ok {
		return nil
	}
	claimed := map[[2]topology.NodeID]bool{}
	var out []Candidate
	for len(out) < k {
		path, lat := shortestAvoiding(g, src, dst, claimed)
		if path == nil || len(path) > maxLen {
			// Removing links only lengthens shortest paths, so the first
			// miss (disconnected or over the length bound) is final.
			break
		}
		out = append(out, Candidate{Path: path, Latency: lat})
		for i := 1; i < len(path); i++ {
			claimed[linkKey(path[i-1], path[i])] = true
		}
	}
	return out
}

// linkKey is the undirected link identity.
func linkKey(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// shortestAvoiding runs Dijkstra from src to dst over the links not in
// claimed, minimizing summed latency. Deterministic: the frontier node
// with the smallest (distance, id) settles next, and relaxation is
// strictly-improving, so equal-cost ties always resolve the same way.
func shortestAvoiding(g *topology.Graph, src, dst topology.NodeID, claimed map[[2]topology.NodeID]bool) ([]topology.NodeID, sim.Time) {
	const inf = sim.Time(math.MaxInt64)
	dist := map[topology.NodeID]sim.Time{src: 0}
	prev := map[topology.NodeID]topology.NodeID{}
	done := map[topology.NodeID]bool{}
	for {
		cur, best, found := topology.NodeID(0), inf, false
		for n, d := range dist {
			if done[n] {
				continue
			}
			if !found || d < best || (d == best && n < cur) {
				cur, best, found = n, d, true
			}
		}
		if !found {
			return nil, 0 // frontier exhausted: dst unreachable
		}
		if cur == dst {
			break
		}
		done[cur] = true
		for _, nb := range g.Neighbors(cur) {
			if done[nb] || claimed[linkKey(cur, nb)] {
				continue
			}
			l, ok := g.LinkBetween(cur, nb)
			if !ok {
				continue
			}
			if d, seen := dist[nb]; !seen || best+l.Latency < d {
				dist[nb] = best + l.Latency
				prev[nb] = cur
			}
		}
	}
	var path []topology.NodeID
	for at := dst; ; at = prev[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst]
}
