package multipath

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/packet"
	"repro/internal/routing/srcroute"
	"repro/internal/sim"
	"repro/internal/topology"
)

// fuzzCands is a synthetic three-path candidate set (no topology
// needed: driver senders take explicit candidates, exactly as the wire
// engine builds them).
func fuzzCands() []srcroute.Candidate {
	cands := make([]srcroute.Candidate, 3)
	for i := range cands {
		cands[i] = srcroute.Candidate{
			Path:    []topology.NodeID{8, topology.NodeID(i + 1), 9},
			Latency: sim.Time(i+1) * sim.Millisecond,
		}
	}
	return cands
}

// fuzzAck serializes a well-formed ACK with attacker-chosen cumulative
// number and path echo — the corpus seeds mutation starts from.
func fuzzAck(ack uint32, echo uint16) []byte {
	data, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(9, 1), Dst: packet.MakeAddr(8, 1)},
		&packet.TTP{SrcPort: 7000, DstPort: 41000, Ack: ack, Flags: packet.FlagACK, Window: echo, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: nil})
	if err != nil {
		panic(err)
	}
	return data
}

// FuzzMultipathAck feeds hostile ACK bytes to a sender whose every
// outstanding flight has already been retransmitted once, then checks
// the state machine's safety invariants: no panic on arbitrary bytes,
// the cumulative ACK clamped to the stream (a forged 32-bit Ack must
// not drive a 4-billion-step loop or push acked past the segment
// count), estimators inside their domains, and — the Karn rule — no
// RTT sample ever taken from a retransmitted flight, no matter what
// sequence numbers the ACK claims (SRTT must stay zero because only
// retransmitted flights exist). Timer hygiene is checked last: once
// the transfer terminates, no scheduler events may survive.
// The committed seed corpus lives in testdata/fuzz/FuzzMultipathAck
// (regenerate with MP_FUZZ_CORPUS_REGEN=1 go test ./internal/transport/multipath
// -run TestRegenMultipathAckCorpus); CI runs a short -fuzz smoke.
func FuzzMultipathAck(f *testing.F) {
	for _, c := range fuzzCorpus() {
		f.Add(c.seed, c.data)
	}
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		sched := sim.NewScheduler()
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Window = 4
		cfg.SegmentSize = 64
		cfg.RTO = 10 * sim.Millisecond
		cfg.MaxRTO = 50 * sim.Millisecond
		cfg.MaxRetries = 3
		cfg.ProbeEvery = 20 * sim.Millisecond
		cfg.MaxProbes = 3
		s := NewDriverSender(
			Driver{Clock: SimClock{sched}, Xmit: func(p *Path, seq uint32) error { return nil }},
			&ShortestK{}, fuzzCands(), 8, 9, 7000, make([]byte, 4*64), cfg)
		s.Start()
		// Let every initial flight time out once: with RTO 10ms and
		// jitter ≤ 10%, by 12ms all four segments have been
		// retransmitted, so every inflight entry is marked retx and no
		// legitimate RTT sample can exist.
		sched.RunUntil(12 * sim.Millisecond)
		s.HandleAck(data)
		s.HandleAck(data) // replay: same bytes twice must be harmless
		// Drain: MaxRetries/MaxProbes bound the remaining timer chains.
		sched.RunUntil(sched.Now() + 5*sim.Second)

		if got, max := s.Acked(), uint32(len(make([]byte, 4*64))/64); got > max {
			t.Fatalf("hostile ACK pushed acked to %d (stream has %d segments)", got, max)
		}
		for _, p := range s.Paths() {
			if p.Loss < 0 || p.Loss > 1 {
				t.Fatalf("path %d loss estimator out of [0,1]: %v", p.Index, p.Loss)
			}
			if p.SRTT < 0 || p.RTTVar < 0 {
				t.Fatalf("path %d negative RTT estimator: srtt=%v rttvar=%v", p.Index, p.SRTT, p.RTTVar)
			}
			if p.SRTT != 0 {
				t.Fatalf("path %d took an RTT sample from a retransmitted flight (Karn violation): srtt=%v", p.Index, p.SRTT)
			}
		}
		if !s.Done() && !s.Failed() {
			t.Fatalf("sender neither done nor failed after timers drained")
		}
		if n := sched.Pending(); n != 0 {
			t.Fatalf("%d timers leaked after terminal state", n)
		}
	})
}

// fuzzCorpus is the committed hostile-ACK seed set: valid cumulative
// ACKs, out-of-range path echoes, a forged Ack beyond the stream, a
// replayed zero ACK, truncated and garbage bytes.
func fuzzCorpus() []struct {
	seed uint64
	data []byte
} {
	return []struct {
		seed uint64
		data []byte
	}{
		{42, fuzzAck(2, 1)},                    // legitimate partial ACK
		{42, fuzzAck(4, 3)},                    // completes the stream
		{42, fuzzAck(1, 200)},                  // out-of-range path echo
		{42, fuzzAck(0xFFFFFFFF, 2)},           // forged cum beyond the stream
		{7, fuzzAck(0, 1)},                     // replayed zero ACK
		{7, fuzzAck(3, 0)},                     // echo 0: no path credit
		{7, []byte{0x45, 0x00, 0x00}},          // truncated TIP
		{1, []byte("not a packet at all....")}, // garbage
		{1, fuzzAck(2, 1)[:20]},                // ACK truncated mid-TTP
	}
}

// TestRegenMultipathAckCorpus writes the committed seed corpus in the
// go-fuzz file format. Guarded by MP_FUZZ_CORPUS_REGEN so a normal test
// run never touches testdata.
func TestRegenMultipathAckCorpus(t *testing.T) {
	if os.Getenv("MP_FUZZ_CORPUS_REGEN") == "" {
		t.Skip("set MP_FUZZ_CORPUS_REGEN=1 to rewrite testdata/fuzz/FuzzMultipathAck")
	}
	dir := "testdata/fuzz/FuzzMultipathAck"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, c := range fuzzCorpus() {
		body := fmt.Sprintf("go test fuzz v1\nuint64(%d)\n[]byte(%q)\n", c.seed, c.data)
		if err := os.WriteFile(fmt.Sprintf("%s/seed-%d", dir, i), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
