// Firewall negotiation: §V-B's MIDCOM-style control channel end to end.
// A destination network runs a default-deny negotiable firewall whose
// admission rules are written in the tussle policy language; an endpoint
// with a certified identity and good reputation opens a pinhole for a
// brand-new application in-band, while anonymous and disreputable
// requesters are refused — the trust tussle playing out inside the
// design rather than around it.
//
// Run with: go run ./examples/firewall_negotiation
package main

import (
	"fmt"
	"os"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trust"
)

const admission = `
policy "pinhole-admission" {
    principal site-admin
    applies-to firewall-control

    rule no-anon {
        when identity-scheme == "anonymous" || identity-scheme == "none"
        then deny "identify yourself"
    }
    rule no-privileged {
        when requested-port < 1024
        then deny "privileged ports are not negotiable"
    }
    rule reputable { when reputation >= 0.5 then permit }
    default deny "insufficient reputation"
}
`

func main() {
	doc, err := policy.Parse(admission)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("admission policy %q: attributes %v\n", doc.Name, doc.Attributes())
	if out := policy.Analyze(doc, middlebox.Vocabulary); len(out) > 0 {
		// "reputation" and "requested-port" are control-channel
		// attributes beyond the data-plane vocabulary; the negotiable
		// firewall understands them, a plain policy firewall would not.
		fmt.Printf("(attributes beyond the data-plane ontology: %v — only the control channel can evaluate them)\n\n", out)
	}

	// Network: client (1) — transit (2) — protected site (3).
	sched := sim.NewScheduler()
	g := topology.Linear(3, sim.Millisecond)
	net := netsim.New(sched, g)
	for id := topology.NodeID(1); id <= 3; id++ {
		id := id
		net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			switch {
			case d > id:
				return id + 1, true
			case d < id:
				return id - 1, true
			}
			return id, true
		}
	}
	rep := trust.NewReputation("site-chosen-mediator", 1.0)
	for i := 0; i < 10; i++ {
		rep.Report("alice", true, nil)
		rep.Report("mallory", false, nil)
	}
	fw := &middlebox.NegotiableFirewall{Label: "site-fw", Doc: doc, Rep: rep,
		AlwaysOpen: map[uint16]bool{80: true}}
	net.Node(3).AddMiddlebox(fw)

	siteAddr := packet.MakeAddr(3, 1)
	appData := func(port uint16) []byte {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: siteAddr},
			&packet.TTP{DstPort: port, Next: packet.LayerTypeRaw},
			&packet.Raw{Data: []byte("new-app hello")})
		if err != nil {
			panic(err)
		}
		return data
	}
	try := func(label string, data []byte) {
		tr := net.Send(1, data)
		sched.Run()
		verdict := "DELIVERED"
		if !tr.Delivered {
			verdict = "blocked (" + tr.DropReason + ")"
		}
		fmt.Printf("  %-44s %s\n", label, verdict)
	}

	fmt.Println("before negotiation:")
	try("new application on port 7777", appData(7777))
	try("web on port 80 (always open)", appData(80))

	fmt.Println("\nnegotiation:")
	alice := &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("alice")}
	mallory := &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("mallory")}
	anon := &packet.IdentityOption{Scheme: packet.IdentityAnonymous}
	for _, req := range []struct {
		who  string
		id   *packet.IdentityOption
		port uint16
	}{
		{"anonymous requester, port 7777", anon, 7777},
		{"mallory (bad reputation), port 7777", mallory, 7777},
		{"alice (good reputation), port 22", alice, 22},
		{"alice (good reputation), port 7777", alice, 7777},
	} {
		data, err := middlebox.PinholeRequest(packet.MakeAddr(1, 1), siteAddr, req.id, req.port)
		if err != nil {
			panic(err)
		}
		before := fw.Granted
		net.Send(1, data)
		sched.Run()
		outcome := "denied"
		if fw.Granted > before {
			outcome = "GRANTED"
		}
		fmt.Printf("  %-44s %s\n", req.who, outcome)
	}

	fmt.Println("\nafter negotiation:")
	try("new application on port 7777", appData(7777))
	try("unnegotiated port 9999", appData(9999))
	fmt.Printf("\nfirewall stats: %d requests, %d granted, %d denied, %d data packets dropped\n",
		fw.Requests, fw.Granted, fw.Denied, fw.Hits)
	fmt.Println("(the end node and the control point communicated about the desired controls — §V-B)")
}
