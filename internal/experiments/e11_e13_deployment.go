package experiments

import (
	"fmt"

	"repro/internal/actornet"
	"repro/internal/economics"
	"repro/internal/gametheory"
	"repro/internal/sim"
)

// qosDeploymentRun simulates the §VII QoS post-mortem as a market: each
// provider decides each round whether to invest in QoS (a fixed cost).
// "Greed" — the revenue side — exists only when a value-flow mechanism
// lets the provider charge for QoS. "Fear" — the competition side —
// exists only when consumers can switch to a provider that offers QoS.
func qosDeploymentRun(seed uint64, valueFlow, routingChoice bool) (deployShare float64, qosServed float64) {
	rng := sim.NewRNG(seed)
	const nProviders = 4
	qosPrice := 0.0
	if valueFlow {
		qosPrice = 2.0
	}
	switchCost := 100.0 // cannot exercise choice
	if routingChoice {
		switchCost = 0.5
	}
	var providers []*economics.Provider
	for i := 0; i < nProviders; i++ {
		providers = append(providers, &economics.Provider{
			// The retail market is competitive: margins are thin, so
			// subscriber acquisition alone cannot fund QoS upkeep —
			// only the QoS fee (the value-flow mechanism) can.
			Name: fmt.Sprintf("isp-%d", i), Cost: 7.5,
			Offer: economics.Offer{Price: 8, AllowsServers: true, AllowsEncryption: true},
			Strat: economics.StaticPricing{},
		})
	}
	var consumers []*economics.Consumer
	for i := 0; i < 120; i++ {
		consumers = append(consumers, &economics.Consumer{
			ID: i, WTP: rng.Range(12, 18), SwitchCost: switchCost,
			WantsQoS: rng.Bool(0.5),
			// Consumers start spread across providers (historical
			// accident of sign-up), so the choice knob is purely about
			// whether they can move later.
			Provider: i % nProviders,
		})
	}
	m := economics.NewMarket(rng, providers, consumers)
	for i, c := range consumers {
		c.Provider = i % nProviders
	}
	const qosUpkeep = 40.0 // per-round cost of running QoS
	lastProfit := make([]float64, nProviders)
	baseline := make([]float64, nProviders) // per-period profit before deploying
	for round := 0; round < 60; round++ {
		// Each provider reconsiders QoS investment every 5 rounds: a
		// deployment is kept only if the period beat the provider's
		// pre-deployment profit — investment needs a return (§VII:
		// "there is a real cost. There is no guarantee of increased
		// revenues. Why risk investment in this case?").
		if round%5 == 0 && round > 0 {
			for i, p := range providers {
				period := p.Profit - lastProfit[i]
				lastProfit[i] = p.Profit
				if p.Offer.QoS {
					// Compare against the pre-deployment baseline.
					if period <= baseline[i] {
						p.Offer.QoS = false
						p.FixedCost -= qosUpkeep
					}
				} else if i == round/5%nProviders {
					// One candidate per period considers deploying.
					baseline[i] = period
					p.Offer.QoS = true
					p.Offer.QoSPrice = qosPrice
					p.FixedCost += qosUpkeep
				}
			}
		}
		m.Step()
	}
	// Final evaluation: in-flight trials are judged like any other
	// period, so a trailing experiment does not masquerade as adoption.
	for i, p := range providers {
		if p.Offer.QoS {
			period := p.Profit - lastProfit[i]
			if period <= baseline[i] {
				p.Offer.QoS = false
			}
		}
	}
	deployed := 0
	for _, p := range providers {
		if p.Offer.QoS {
			deployed++
		}
	}
	served, wanters := 0, 0
	for _, c := range consumers {
		if !c.WantsQoS {
			continue
		}
		wanters++
		if c.Provider >= 0 && providers[c.Provider].Offer.QoS {
			served++
		}
	}
	return float64(deployed) / nProviders, ratio(served, wanters)
}

// E11QoSDeployment runs the §VII 2×2: QoS deployment requires BOTH the
// value-flow mechanism (greed) and consumer routing choice (fear).
func E11QoSDeployment(seed uint64) *Result {
	res := &Result{
		ID:    "E11",
		Title: "QoS deployment 2×2 (§VII post-mortem)",
		Claim: "§VII: QoS failed for lack of (1) a value-transfer mechanism and (2) a mechanism whereby the user can exercise choice",
		Columns: []string{
			"deploy-share", "qos-served",
		},
	}
	for _, valueFlow := range []bool{false, true} {
		for _, choice := range []bool{false, true} {
			deploy, served := qosDeploymentRun(seed, valueFlow, choice)
			res.AddRow(fmt.Sprintf("valueFlow=%v choice=%v", valueFlow, choice), deploy, served)
		}
	}
	res.Finding = fmt.Sprintf(
		"QoS sticks only with both mechanisms: deploy share %.2f with value-flow+choice, vs %.2f/%.2f/%.2f in the other cells",
		res.MustGet("valueFlow=true choice=true", "deploy-share"),
		res.MustGet("valueFlow=false choice=false", "deploy-share"),
		res.MustGet("valueFlow=true choice=false", "deploy-share"),
		res.MustGet("valueFlow=false choice=true", "deploy-share"))
	return res
}

// E12ActorChurn tests §II-C: new-entrant churn keeps the actor network
// (and so the architecture) changeable; when entry stops, alignment
// hardens and change attempts fail — "look for a time when innovation
// slows ... as a pre-condition of a durably formed and unchangeable
// Internet."
func E12ActorChurn(seed uint64) *Result {
	res := &Result{
		ID:    "E12",
		Title: "actor-network churn vs architectural freezing",
		Claim: "§II-C: the entrance of new actors keeps the actor network from becoming frozen, which permits change",
		Columns: []string{
			"durability", "change-success", "frozen",
		},
	}
	for _, entryRate := range []float64{0, 0.1, 0.3, 0.6} {
		n := actornet.SeedInternet(sim.NewRNG(seed))
		success := 0
		const rounds = 300
		for i := 0; i < rounds; i++ {
			n.Step(entryRate)
			if i%3 == 0 {
				if n.AttemptChange() {
					success++
				}
			}
		}
		frozen := 0.0
		if n.Frozen(0.9) {
			frozen = 1
		}
		res.AddRow(fmt.Sprintf("entry=%.1f", entryRate),
			n.Durability(), n.ChangeSuccessRate(), frozen)
	}
	res.Finding = fmt.Sprintf(
		"with no entry the network freezes (durability %.2f, change success %.2f); at entry rate 0.6 it stays plastic (durability %.2f, change success %.2f)",
		res.MustGet("entry=0.0", "durability"),
		res.MustGet("entry=0.0", "change-success"),
		res.MustGet("entry=0.6", "durability"),
		res.MustGet("entry=0.6", "change-success"))
	return res
}

// E13Mechanisms tests the §II-B game-theory program: tussle classes map
// to game classes with different dynamics (conflict cycles, coordination
// converges), and Vickrey-style mechanisms remove the incentive to lie
// that first-price mechanisms create.
func E13Mechanisms(seed uint64) *Result {
	res := &Result{
		ID:    "E13",
		Title: "tussle classes as games; truthful mechanisms",
		Claim: "§II-B: game classes taxonomize tussles; Vickrey mechanism design yields tussle-free information subgames",
		Columns: []string{
			"class", "pure-equilibria", "br-converges", "lying-gain",
		},
	}
	rng := sim.NewRNG(seed)
	games := []*gametheory.Game{
		gametheory.MatchingPennies(),
		gametheory.PrisonersDilemma(),
		gametheory.StagHunt(),
		gametheory.BattleOfTheSexes(),
	}
	grid := make([]float64, 41)
	for i := range grid {
		grid[i] = float64(i) / 4
	}
	for _, g := range games {
		_, converged := g.BestResponseDynamics(0, 0, 200)
		conv := 0.0
		if converged {
			conv = 1
		}
		// Lying gain under a first-price auction standing in for the
		// game's information subgame (Vickrey's is always zero; shown
		// in the final rows).
		res.AddRow(g.Name,
			float64(g.Classify()),
			float64(len(g.PureNash())),
			conv, 0)
	}
	// Mechanism rows: measured profitable-misreport magnitude.
	var vickreyGain, firstGain sim.Series
	for i := 0; i < 50; i++ {
		trueVal := rng.Range(1, 10)
		others := []gametheory.Bid{{Bidder: "b", Amount: rng.Range(1, 10)}, {Bidder: "c", Amount: rng.Range(1, 10)}}
		vickreyGain.Add(gametheory.TruthfulnessViolation(gametheory.Vickrey, "a", trueVal, others, grid))
		firstGain.Add(gametheory.TruthfulnessViolation(gametheory.FirstPrice, "a", trueVal, others, grid))
	}
	res.AddRow("vickrey-auction", -1, -1, -1, vickreyGain.Mean())
	res.AddRow("first-price-auction", -1, -1, -1, firstGain.Mean())
	res.Finding = fmt.Sprintf(
		"pure-conflict games cycle (no stable point) while coordination games converge; mean profitable-lie gain is %.3f under Vickrey vs %.3f under first-price",
		vickreyGain.Mean(), firstGain.Mean())
	return res
}
