package netsim

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file adds failure injection and the traceroute-style diagnostic
// §VI-A asks for: "Failures of transparency will occur — design what
// happens then... Tools for fault isolation and error reporting would
// help." The tool works only from externally observable behaviour: TTL
// expiries identify forwarding nodes; middlebox drops identify the
// device only when it chooses not to be silent.

// FailLink marks the link between a and b down in both directions.
// Transit over a failed link drops with reason "link-down". The failure
// map is the source of truth; the dense link table's failure flags are a
// mirror for the forwarding fast path and are refreshed here and on
// every InvalidateTopology rebuild.
func (n *Network) FailLink(a, b topology.NodeID) {
	if n.failed == nil {
		n.failed = make(map[[2]topology.NodeID]bool)
	}
	n.failed[linkKey(a, b)] = true
	if li := n.linkIndex(a, b); li >= 0 {
		n.lt.failed[li] = true
	}
}

// RestoreLink brings a failed link back.
func (n *Network) RestoreLink(a, b topology.NodeID) {
	delete(n.failed, linkKey(a, b))
	if li := n.linkIndex(a, b); li >= 0 {
		n.lt.failed[li] = false
	}
}

// LinkFailed reports whether the link is currently down.
func (n *Network) LinkFailed(a, b topology.NodeID) bool {
	return n.failed[linkKey(a, b)]
}

// FailNode crashes a node: it stops forwarding, delivering, and
// originating traffic. Packets already in flight toward it are dropped
// silently at the dead node ("node-down" — a crashed router cannot send
// error reports); packets subsequently routed at a live neighbor toward
// the dead one are dropped at the neighbor with reason "peer-down" (the
// keepalive-loss detection that lets diagnostics localize the crash).
// The crash map is the source of truth; the dense nodeDown mirror is
// refreshed here and on every InvalidateTopology rebuild.
func (n *Network) FailNode(id topology.NodeID) {
	if n.downNodes == nil {
		n.downNodes = make(map[topology.NodeID]bool)
	}
	n.downNodes[id] = true
	if int(id) < len(n.nodeDown) {
		n.nodeDown[id] = true
	}
}

// RecoverNode brings a crashed node back. Its routing state (RouteFunc,
// middleboxes, counters) is whatever it was before the crash; protocols
// that want to model cold-start reconvergence do so via their fault
// observers.
func (n *Network) RecoverNode(id topology.NodeID) {
	delete(n.downNodes, id)
	if int(id) < len(n.nodeDown) {
		n.nodeDown[id] = false
	}
}

// NodeFailed reports whether the node is currently crashed.
func (n *Network) NodeFailed(id topology.NodeID) bool {
	return n.downNodes[id]
}

// LinkImpairment describes packet-level damage on one link: each
// transiting packet is independently corrupted (dropped at the receiver
// with reason "corrupt") with probability Corrupt, duplicated with
// probability Duplicate, and delayed by a uniform jitter in
// [0, ReorderJitter) with probability ReorderProb — enough extra latency
// to land behind later packets, i.e. reordering. All coin flips come
// from the impairment's own seeded RNG, so a run is byte-reproducible
// for a given seed regardless of what else the simulation does.
type LinkImpairment struct {
	Corrupt       float64
	Duplicate     float64
	ReorderProb   float64
	ReorderJitter sim.Time

	rng *sim.RNG
	// dirRNG, when set (keyed/sharded networks), replaces rng with one
	// independent stream per link direction. A direction's transmissions
	// happen in a shard-count-independent order, but the interleaving of
	// the two directions does not — per-direction streams make every
	// coin flip a pure function of the seed and that direction's own
	// transmission sequence.
	dirRNG [2]*sim.RNG
}

// ImpairLink installs (or replaces) a packet impairment on the link
// between a and b; both directions are affected. rng drives the
// impairment's coin flips and must be dedicated to it (fork one from
// the experiment's root RNG); nil gets a fixed-seed generator. The
// impairment map is the source of truth; the dense mirror is rebuilt
// here and on every InvalidateTopology rebuild.
func (n *Network) ImpairLink(a, b topology.NodeID, imp LinkImpairment, rng *sim.RNG) {
	if rng == nil {
		rng = sim.NewRNG(1)
	}
	imp.rng = rng
	if n.keyed {
		imp.dirRNG[0] = rng.StreamFork(0)
		imp.dirRNG[1] = rng.StreamFork(1)
	}
	if n.impairments == nil {
		n.impairments = make(map[[2]topology.NodeID]*LinkImpairment)
	}
	n.impairments[linkKey(a, b)] = &imp
	n.rebuildImpair()
}

// ClearImpairment removes the impairment on the link between a and b.
func (n *Network) ClearImpairment(a, b topology.NodeID) {
	if n.impairments == nil {
		return
	}
	delete(n.impairments, linkKey(a, b))
	n.rebuildImpair()
}

// rebuildImpair refreshes the dense impairment mirror from the map. Off
// the fast path (only runs when impairments change).
func (n *Network) rebuildImpair() {
	n.impair = nil
	if len(n.impairments) == 0 {
		return
	}
	impair := make([]*LinkImpairment, len(n.Graph.Links))
	for i, l := range n.Graph.Links {
		impair[i] = n.impairments[linkKey(l.A, l.B)]
	}
	n.impair = impair
}

// ImpairedLinks returns the number of links with an active packet
// impairment installed. Reachability checks use it to gate expectations:
// a corrupting link can legitimately kill a probe between nodes that are
// topologically connected.
func (n *Network) ImpairedLinks() int { return len(n.impairments) }

// Backlog returns the transmission backlog currently queued on the
// directed link from→to: how long a packet admitted now would wait
// before its serialization starts. Zero for idle or unknown links.
func (n *Network) Backlog(from, to topology.NodeID) sim.Time {
	li := n.linkIndex(from, to)
	if li < 0 {
		return 0
	}
	di := 2 * int(li)
	if n.Graph.Links[li].A != from {
		di++
	}
	if b := n.lt.busy[di] - n.Sched.Now(); b > 0 {
		return b
	}
	return 0
}

// NodeBacklog returns the largest outbound Backlog across the node's
// live adjacent links — a cheap local congestion signal for QoS devices
// (load shedding keyed on egress pressure).
func (n *Network) NodeBacklog(id topology.NodeID) sim.Time {
	if n.lt.nlinks != len(n.Graph.Links) {
		n.InvalidateTopology()
	}
	if int(id) >= len(n.lt.adj) {
		return 0
	}
	now := n.Sched.Now()
	var worst sim.Time
	for _, e := range n.lt.adj[id] {
		if n.lt.failed[e.link] {
			continue
		}
		di := 2 * int(e.link)
		if n.Graph.Links[e.link].A != id {
			di++
		}
		if b := n.lt.busy[di] - now; b > worst {
			worst = b
		}
	}
	return worst
}

func linkKey(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// Hop is one step of a traceroute report.
type Hop struct {
	TTL int
	// Node is the responding node, or 0 when nothing was learned (a
	// silent loss).
	Node topology.NodeID
	// Note is what was learned: "time-exceeded", "destination",
	// "blocked:<device>" for a disclosing middlebox, "peer-down" when a
	// live node reports its next hop dead, or "lost" when nothing was
	// (silent middlebox and crashed node alike).
	Note string
}

// Traceroute probes the path from src toward dst with TTL-limited
// packets, one TTL at a time, and reports what an end user could learn.
// mkProbe builds the probe payload for a given TTL; pass nil for a
// default raw probe.
func (n *Network) Traceroute(src topology.NodeID, dst packet.Addr, maxTTL int, mkProbe func(ttl uint8) []byte) []Hop {
	if mkProbe == nil {
		mkProbe = func(ttl uint8) []byte {
			data, err := packet.Serialize(
				&packet.TIP{TTL: ttl, Proto: packet.LayerTypeRaw,
					Src: packet.MakeAddr(uint16(src), 1), Dst: dst},
				&packet.Raw{Data: []byte("traceroute")})
			if err != nil {
				panic(err)
			}
			return data
		}
	}
	var hops []Hop
	for ttl := 1; ttl <= maxTTL; ttl++ {
		tr := n.Send(src, mkProbe(uint8(ttl)))
		n.Sched.Run()
		switch {
		case tr.Delivered:
			hops = append(hops, Hop{TTL: ttl, Node: topology.NodeID(dst.Provider()), Note: "destination"})
			return hops
		case tr.DropReason == "ttl":
			// The expiring node reveals itself (the ICMP time-exceeded
			// analogue).
			hops = append(hops, Hop{TTL: ttl, Node: tr.DropNode, Note: "time-exceeded"})
		case tr.DropReason == "lost":
			// A silent device: the user learns only that the path goes
			// dark past the previous hop.
			hops = append(hops, Hop{TTL: ttl, Note: "lost"})
			return hops
		case tr.DropReason == "node-down":
			// The probe died inside a crashed node. Dead routers cannot
			// send error reports, so from the outside this is
			// indistinguishable from a silent loss — localization relies
			// on a live upstream neighbor reporting "peer-down" instead.
			hops = append(hops, Hop{TTL: ttl, Note: "lost"})
			return hops
		case tr.DropReason == "peer-down":
			// A live node detected its next hop dead (keepalive loss) and
			// says so: the crash is localized to the reporter's neighbor
			// on the path.
			hops = append(hops, Hop{TTL: ttl, Node: tr.DropNode, Note: "peer-down"})
			return hops
		default:
			// A disclosing device names itself in the drop reason.
			hops = append(hops, Hop{TTL: ttl, Node: tr.DropNode, Note: tr.DropReason})
			return hops
		}
	}
	return hops
}

// PathMTUProbe is a second diagnostic in the same spirit: find the
// largest payload that survives to dst, by binary search over probe
// sizes. It exercises queue behaviour rather than fragmentation (TIP
// does not fragment), and demonstrates diagnosis by active measurement.
func (n *Network) PathMTUProbe(src topology.NodeID, dst packet.Addr, lo, hi int) int {
	try := func(size int) bool {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 64, Proto: packet.LayerTypeRaw,
				Src: packet.MakeAddr(uint16(src), 1), Dst: dst},
			&packet.Raw{Data: make([]byte, size)})
		if err != nil {
			return false
		}
		tr := n.Send(src, data)
		n.Sched.Run()
		return tr.Delivered
	}
	if !try(lo) {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if try(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// FlapLink schedules a link to fail at failAt and recover at healAt —
// the standard failure-injection workload for resilience experiments.
func (n *Network) FlapLink(a, b topology.NodeID, failAt, healAt sim.Time) {
	n.Sched.At(failAt, func() { n.FailLink(a, b) })
	n.Sched.At(healAt, func() { n.RestoreLink(a, b) })
}
