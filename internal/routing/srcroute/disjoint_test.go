package srcroute

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// checkDisjointSet verifies the structural contract of a DisjointPaths
// result against its graph: valid simple src→dst paths, mutually
// link-disjoint, latencies correctly summed and non-decreasing.
func checkDisjointSet(t *testing.T, g *topology.Graph, src, dst topology.NodeID, cands []Candidate, k, maxLen int) {
	t.Helper()
	if len(cands) > k {
		t.Fatalf("got %d paths for k=%d", len(cands), k)
	}
	used := map[[2]topology.NodeID]bool{}
	var prevLat sim.Time
	for ci, c := range cands {
		if len(c.Path) < 2 || len(c.Path) > maxLen {
			t.Fatalf("path %d has %d nodes (maxLen %d): %v", ci, len(c.Path), maxLen, c.Path)
		}
		if c.Path[0] != src || c.Path[len(c.Path)-1] != dst {
			t.Fatalf("path %d endpoints wrong: %v", ci, c.Path)
		}
		seen := map[topology.NodeID]bool{}
		var lat sim.Time
		for i, n := range c.Path {
			if seen[n] {
				t.Fatalf("path %d revisits node %d: %v", ci, n, c.Path)
			}
			seen[n] = true
			if i == 0 {
				continue
			}
			l, adj := g.LinkBetween(c.Path[i-1], n)
			if !adj {
				t.Fatalf("path %d uses non-link %d-%d", ci, c.Path[i-1], n)
			}
			lat += l.Latency
			key := linkKey(c.Path[i-1], n)
			if used[key] {
				t.Fatalf("link %v shared across paths: %v", key, cands)
			}
			used[key] = true
		}
		if lat != c.Latency {
			t.Fatalf("path %d latency %v, links sum to %v", ci, c.Latency, lat)
		}
		if c.Latency < prevLat {
			t.Fatalf("latencies not non-decreasing: %v after %v", c.Latency, prevLat)
		}
		prevLat = c.Latency
	}
}

func TestDisjointPathsDiamond(t *testing.T) {
	g := diamond()
	cands := DisjointPaths(g, 1, 4, 4, 8)
	if len(cands) != 2 {
		t.Fatalf("diamond has 2 disjoint paths, got %d: %v", len(cands), cands)
	}
	checkDisjointSet(t, g, 1, 4, cands, 4, 8)
	// Cheapest first: via 3 (2ms), then via 2 (4ms).
	if cands[0].Path[1] != 3 || cands[1].Path[1] != 2 {
		t.Fatalf("extraction order wrong: %v", cands)
	}
}

func TestDisjointPathsDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(seed))
		stubs := g.Stubs()
		src, dst := stubs[0], stubs[len(stubs)-1]
		first := DisjointPaths(g, src, dst, 4, 8)
		for i := 0; i < 5; i++ {
			again := DisjointPaths(g, src, dst, 4, 8)
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("seed %d run %d diverged:\n%v\n%v", seed, i, first, again)
			}
		}
		checkDisjointSet(t, g, src, dst, first, 4, 8)
	}
}

func TestDisjointPathsKReductionOnSparseGraph(t *testing.T) {
	// A chain admits exactly one path no matter how many are asked for.
	g := topology.Linear(5, sim.Millisecond)
	cands := DisjointPaths(g, 1, 5, 8, 8)
	if len(cands) != 1 {
		t.Fatalf("chain should reduce k to 1, got %d", len(cands))
	}
	checkDisjointSet(t, g, 1, 5, cands, 8, 8)
	// The diamond caps at 2 even for k=8.
	if cands := DisjointPaths(diamond(), 1, 4, 8, 8); len(cands) != 2 {
		t.Fatalf("diamond should reduce k to 2, got %d", len(cands))
	}
}

func TestDisjointPathsRespectsMaxLen(t *testing.T) {
	g := topology.Linear(6, sim.Millisecond)
	if cands := DisjointPaths(g, 1, 6, 2, 3); len(cands) != 0 {
		t.Fatalf("maxLen=3 should preclude the 6-node chain, got %v", cands)
	}
	if cands := DisjointPaths(g, 1, 6, 2, 6); len(cands) != 1 {
		t.Fatalf("maxLen=6 should admit the chain, got %d", len(cands))
	}
}

func TestDisjointPathsDisconnectedAndDegenerate(t *testing.T) {
	g := topology.NewGraph()
	g.AddNode(1, topology.Transit, 1)
	g.AddNode(2, topology.Transit, 1)
	g.AddNode(3, topology.Stub, 2)
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	// Node 3 is isolated.
	if cands := DisjointPaths(g, 1, 3, 2, 8); cands != nil {
		t.Fatalf("disconnected pair returned %v", cands)
	}
	if cands := DisjointPaths(g, 1, 1, 2, 8); cands != nil {
		t.Fatalf("src==dst returned %v", cands)
	}
	if cands := DisjointPaths(g, 1, 99, 2, 8); cands != nil {
		t.Fatalf("absent dst returned %v", cands)
	}
	if cands := DisjointPaths(g, 99, 1, 2, 8); cands != nil {
		t.Fatalf("absent src returned %v", cands)
	}
}

// FuzzDisjointPaths drives the search over generated hierarchies with
// arbitrary endpoints and bounds, checking the structural contract:
// never panics, ≤k simple valid paths, mutual link-disjointness,
// non-decreasing latency, and endpoints honored.
func FuzzDisjointPaths(f *testing.F) {
	f.Add(uint64(42), uint8(0), uint8(13), uint8(3), uint8(8))
	f.Add(uint64(7), uint8(2), uint8(5), uint8(1), uint8(4))
	f.Add(uint64(1), uint8(9), uint8(9), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, srcIdx, dstIdx, k, maxLen uint8) {
		g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(seed))
		ids := g.NodeIDs()
		src := ids[int(srcIdx)%len(ids)]
		dst := ids[int(dstIdx)%len(ids)]
		kk, ml := int(k%12), int(maxLen%16)
		cands := DisjointPaths(g, src, dst, kk, ml)
		if src == dst && cands != nil {
			t.Fatalf("src==dst returned %v", cands)
		}
		effK, effML := kk, ml
		if effK <= 0 {
			effK = 2
		}
		if effML <= 0 {
			effML = 8
		}
		if len(cands) > effK {
			t.Fatalf("%d paths for k=%d", len(cands), effK)
		}
		used := map[[2]topology.NodeID]bool{}
		var prevLat sim.Time
		for ci, c := range cands {
			if len(c.Path) < 2 || len(c.Path) > effML {
				t.Fatalf("path %d length %d out of bounds", ci, len(c.Path))
			}
			if c.Path[0] != src || c.Path[len(c.Path)-1] != dst {
				t.Fatalf("path %d endpoints wrong: %v", ci, c.Path)
			}
			seen := map[topology.NodeID]bool{}
			var lat sim.Time
			for i, n := range c.Path {
				if seen[n] {
					t.Fatalf("path %d revisits %d", ci, n)
				}
				seen[n] = true
				if i == 0 {
					continue
				}
				l, adj := g.LinkBetween(c.Path[i-1], n)
				if !adj {
					t.Fatalf("path %d uses non-link %d-%d", ci, c.Path[i-1], n)
				}
				lat += l.Latency
				key := linkKey(c.Path[i-1], n)
				if used[key] {
					t.Fatalf("link %v shared across paths", key)
				}
				used[key] = true
			}
			if lat != c.Latency || c.Latency < prevLat {
				t.Fatalf("path %d latency %v (links %v, prev %v)", ci, c.Latency, lat, prevLat)
			}
			prevLat = c.Latency
		}
	})
}
