// Quickstart: build a small internetwork, route it two ways, send a
// tussle-laden packet, and run the paper's two design-principle
// analyzers over the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing/pathvector"
	"repro/internal/routing/srcroute"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// 1. A deterministic internetwork: tier-1 clique, regional ISPs,
	// stub edge networks, with explicit business relationships.
	rng := sim.NewRNG(7)
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
	fmt.Printf("generated %d ASes (%d stubs), %d links\n",
		len(g.Nodes), len(g.Stubs()), len(g.Links))

	// 2. Provider-controlled routing: Gao–Rexford path vector.
	pv := pathvector.New(g)
	if err := pv.Converge(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stubs := g.Stubs()
	src, dst := stubs[0], stubs[len(stubs)-1]
	fmt.Printf("provider-chosen path %d->%d: %v (valley violations: %d)\n",
		src, dst, pv.Path(src, dst), pv.CheckGaoRexford())

	// 3. The user discovers alternatives — design for choice.
	cands := srcroute.Discover(g, src, dst, 3, 7)
	fmt.Printf("user-discovered candidate paths: %d\n", len(cands))
	for i, c := range cands {
		fmt.Printf("  #%d %v  (latency %v)\n", i, c.Path, c.Latency)
	}

	// 4. Send a packet carrying the user's choice and a payment voucher
	// (value must flow, §IV-C) through the simulator.
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)
	for _, id := range g.NodeIDs() {
		nd := net.Node(id)
		nd.Route = pv.RouteFunc(id)
		nd.HonorSourceRoutes = true
		nd.RequirePaymentForSourceRoute = true
	}
	want := cands[len(cands)-1]
	tip := &packet.TIP{
		TTL: 32, Proto: packet.LayerTypeRaw,
		Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1),
		SourceRoute: want.Option(),
		Identity:    &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte("alice")},
	}
	paid := srcroute.WithPayment(tip, want, []byte("alice-key"), 1)
	data, err := packet.Serialize(tip, &packet.Raw{Data: []byte("hello tussle")})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tr := net.Send(src, data)
	sched.Run()
	fmt.Printf("sent with %dm voucher: delivered=%v path=%v latency=%v\n",
		paid, tr.Delivered, tr.Path(), tr.Latency())
	fmt.Printf("requested route honored: %v\n", want.Verify(tr.Path()))

	// 5. Run the principle analyzers over this design.
	design := &core.Design{
		Name: "tip-internetwork",
		Choices: []core.ChoicePoint{
			{Name: "source-route", Chooser: core.User, Alternatives: len(cands), Visible: true, CostExposed: true},
			{Name: "tos-class", Chooser: core.User, Alternatives: 4, Visible: true, CostExposed: true},
			{Name: "export-policy", Chooser: core.ISP, Alternatives: 2, Visible: false, CostExposed: true},
		},
		Mechanisms: []*core.Mechanism{
			{Name: "tos-bits", Space: "qos", Visible: true},
			{Name: "source-routing", Space: "routing", Visible: true},
			{Name: "payment-voucher", Space: "economics", Visible: true},
		},
	}
	choice := core.AnalyzeChoice(design)
	iso := core.AnalyzeIsolation(design)
	fmt.Printf("design-for-choice: user holds %.1f bits, isp %.1f bits (balance %+.1f)\n",
		choice.BitsByKind[core.User], choice.BitsByKind[core.ISP], core.ChoiceBalance(design))
	fmt.Printf("tussle isolation score: %.2f (1.0 = perfectly modularized)\n", iso.IsolationScore())
}
