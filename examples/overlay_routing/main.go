// Overlay routing: the §V-A4 overlay tussle end to end. A provider
// blocks certain stub pairs by policy; the affected users build a RON-
// style overlay mesh, relay around the restriction through a willing
// member, verify delivery, and the example accounts for the economic
// distortion — transit the relaying members' providers were never paid
// to carry.
//
// Run with: go run ./examples/overlay_routing
package main

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing/overlay"
	"repro/internal/sim"
	"repro/internal/topology"
)

// policyBlock drops traffic from provider 1 delivered at provider 4.
type policyBlock struct{}

func (policyBlock) Name() string { return "provider-policy" }
func (policyBlock) Silent() bool { return true } // no error report: the §VI-A diagnostic gap
func (policyBlock) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if dir != netsim.Delivering {
		return nil, netsim.Accept
	}
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		return nil, netsim.Accept
	}
	if tip.Src.Provider() == 1 {
		return nil, netsim.Drop
	}
	return nil, netsim.Accept
}

func main() {
	// Diamond topology: 1 and 4 are the endpoints; 2 and 3 are transits;
	// 3 is also an overlay member willing to relay.
	sched := sim.NewScheduler()
	g := topology.NewGraph()
	for i := 1; i <= 4; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddLink(1, 2, topology.PeerOf, 2*sim.Millisecond, 1)
	g.AddLink(2, 4, topology.PeerOf, 2*sim.Millisecond, 1)
	g.AddLink(1, 3, topology.PeerOf, 3*sim.Millisecond, 2)
	g.AddLink(3, 4, topology.PeerOf, 3*sim.Millisecond, 2)
	net := netsim.New(sched, g)
	routes := map[topology.NodeID]map[uint16]topology.NodeID{
		1: {2: 2, 3: 3, 4: 2},
		2: {1: 1, 4: 4, 3: 1},
		3: {1: 1, 4: 4, 2: 1},
		4: {2: 2, 3: 3, 1: 2},
	}
	for id, tbl := range routes {
		tbl := tbl
		net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			nh, ok := tbl[dst.Provider()]
			return nh, ok
		}
	}
	// Node 4's provider blocks traffic sourced at provider 1, silently.
	net.Node(4).AddMiddlebox(policyBlock{})

	mk := func(src topology.NodeID) []byte {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw,
				Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(4, 1)},
			&packet.Raw{Data: []byte("overlay payload")})
		if err != nil {
			panic(err)
		}
		return data
	}

	fmt.Println("direct attempt 1 -> 4:")
	tr := net.Send(1, mk(1))
	sched.Run()
	fmt.Printf("  delivered=%v dropReason=%q dropNode=%d\n", tr.Delivered, tr.DropReason, tr.DropNode)
	fmt.Println("  (the blocker is silent: the trace says only where the packet died — fault")
	fmt.Println("   isolation by path inference, exactly the §VI-A diagnostic gap)")

	// The overlay: members 1, 3, 4 measure each other and route around.
	mesh := overlay.NewMesh([]topology.NodeID{1, 3, 4})
	mesh.InstallRelay(net, 3)
	var got []byte
	prior := net.Node(4).Deliver
	net.Node(4).Deliver = func(n *netsim.Node, t *netsim.Trace, data []byte) {
		got = data
		if prior != nil {
			prior(n, t, data)
		}
	}
	// Probes established: 1->3 works, 3->4 works, 1->4 does not.
	mesh.Observe(1, 3, 3*sim.Millisecond)
	mesh.Observe(3, 4, 3*sim.Millisecond)
	path := mesh.Route(1, 4)
	fmt.Printf("\noverlay route: %v\n", path)

	// Relay via 3: the inner packet is re-sourced at the relay so the
	// destination policy sees provider 3, not provider 1.
	inner := mk(3)
	enc, err := overlay.Encapsulate(packet.MakeAddr(1, 1), packet.MakeAddr(3, 0), 16, inner)
	if err != nil {
		panic(err)
	}
	net.Send(1, enc)
	sched.Run()
	if got != nil {
		p := packet.NewPacket(got, packet.LayerTypeTIP)
		raw, _ := p.Layer(packet.LayerTypeRaw).(*packet.Raw)
		fmt.Printf("relayed delivery succeeded: payload %q\n", raw.Data)
	} else {
		fmt.Println("relayed delivery failed")
	}
	fmt.Printf("economic distortion: %d bytes of uncompensated transit through node 3's providers\n",
		mesh.UncompensatedTransit())
	fmt.Println("(\"this kind of overlay network is a tool in the tussle, certainly\" — §V-A4)")
}
