//go:build !race

package netsim

// See race_test.go.
const raceEnabled = false
