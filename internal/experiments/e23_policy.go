package experiments

import (
	"fmt"

	"repro/internal/policy"
)

// E23PolicyMechanism tests §VI-B's revision of "separate policy from
// mechanism": "Mechanism defines the range of 'policies' that can be
// invoked, which is another way of saying that mechanism bounds the
// range of choice. So in principle there is no pure separation of policy
// from mechanism."
//
// The experiment takes a catalogue of policies real stakeholders want —
// drawn from the paper's own tussle spaces — and measures how many are
// expressible (fully within ontology) under enforcement points with
// increasing vocabularies. The residual at every vocabulary size is the
// §VI-B point made quantitative: whatever attributes the mechanism
// exposes, some tussle falls outside them.
func E23PolicyMechanism(seed uint64) *Result {
	res := &Result{
		ID:    "E23",
		Title: "mechanism bounds policy: ontology coverage of real tussles",
		Claim: "§VI-B: mechanism defines the range of policies that can be invoked; there is no pure separation of policy from mechanism",
		Columns: []string{
			"vocab-size", "expressible", "residual",
		},
	}
	_ = seed // static analysis; no randomness

	// The policy catalogue: what the paper's stakeholders actually want
	// to express, as TPL documents.
	catalogue := []string{
		// Port-era firewalls.
		`policy "allow-web" { rule w { when port == 80 || port == 443 then permit } }`,
		`policy "no-servers" { rule s { when direction == "inbound" then deny } }`,
		// Value pricing (§V-A2).
		`policy "business-tier" { rule b { when direction == "inbound" && role != "business" then price 5.0 } }`,
		// Trust mediation (§V-B).
		`policy "no-anon" { rule a { when identity-scheme == "anonymous" then deny } }`,
		`policy "reputable-only" { rule r { when reputation < 0.5 then deny } }`,
		// Crypto visibility (§VI-A).
		`policy "no-opaque" { rule c { when encrypted && !inspectable then deny } }`,
		// QoS (§IV-A, §VII).
		`policy "gold-costs" { rule q { when tos >= 3 then price 2.0 } }`,
		`policy "paid-srcroute" { rule p { when has-payment then permit } }`,
		// Tussles beyond any packet-visible attribute: content and
		// intent (§I rights-holders; §V-B software trust).
		`policy "no-infringing" { rule i { when content-licensed == false then deny } }`,
		`policy "no-spyware" { rule s { when software-intent == "exfiltrate" then deny } }`,
		`policy "jurisdiction" { rule j { when sender-country in ["A", "B"] then require warrant } }`,
	}
	vocabularies := []struct {
		label string
		attrs []string
	}{
		{"ports-only", []string{"port", "src-port", "direction"}},
		{"packet-fields", []string{"port", "src-port", "direction", "tos", "encrypted", "inspectable", "tunneled", "has-payment", "src-provider", "dst-provider"}},
		{"packet+identity", []string{"port", "src-port", "direction", "tos", "encrypted", "inspectable", "tunneled", "has-payment", "src-provider", "dst-provider", "identity", "identity-scheme", "role", "reputation"}},
	}
	for _, v := range vocabularies {
		expressible := 0
		for _, src := range catalogue {
			doc, err := policy.Parse(src)
			if err != nil {
				panic(fmt.Sprintf("E23 catalogue: %v", err))
			}
			if len(policy.Analyze(doc, v.attrs)) == 0 {
				expressible++
			}
		}
		res.AddRow(v.label,
			float64(len(v.attrs)),
			float64(expressible)/float64(len(catalogue)),
			float64(len(catalogue)-expressible))
	}
	res.Finding = fmt.Sprintf(
		"growing the enforcement vocabulary from 3 to 14 attributes raises expressible policies from %.0f%% to %.0f%%, but %d of %d catalogue policies (content licensing, software intent, jurisdiction) remain outside every packet-level ontology — the mechanism bounds the tussle it can host",
		res.MustGet("ports-only", "expressible")*100,
		res.MustGet("packet+identity", "expressible")*100,
		int(res.MustGet("packet+identity", "residual")),
		11)
	return res
}
