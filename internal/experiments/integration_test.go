package experiments

// Integration tests exercising whole-stack flows that no single package
// covers: the §VI-A story end to end — identity handshake over the
// simulated network, encrypted session traffic past a wiretap, and the
// visibility compromise.

import (
	"bytes"
	"testing"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trust"
)

// lineNet builds a 3-node line with routing: 1 (alice) - 2 (transit,
// where the tap sits) - 3 (bob).
func lineNet(t *testing.T) (*netsim.Network, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	g := topology.Linear(3, sim.Millisecond)
	net := netsim.New(sched, g)
	for id := topology.NodeID(1); id <= 3; id++ {
		id := id
		net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			switch {
			case d > id:
				return id + 1, true
			case d < id:
				return id - 1, true
			}
			return id, true
		}
	}
	return net, sched
}

func TestSecureSessionOverNetworkPastWiretap(t *testing.T) {
	net, sched := lineNet(t)
	tap := &middlebox.Wiretap{Label: "lawful-intercept"}
	net.Node(2).AddMiddlebox(tap)

	// PKI and endpoints.
	rng := sim.NewRNG(1)
	root := trust.NewPrincipal("root-ca", trust.Certified, rng)
	alice := trust.NewPrincipal("alice", trust.Certified, rng)
	bob := trust.NewPrincipal("bob", trust.Certified, rng)
	anchors := trust.Anchors{"root-ca": root.Pub}
	epA := &trust.Endpoint{Principal: alice, Anchors: anchors, RequireCertified: true,
		Chain: []*trust.Certificate{trust.Issue(root, "alice", alice.Pub, nil, 1000*sim.Second)}}
	epB := &trust.Endpoint{Principal: bob, Anchors: anchors, RequireCertified: true,
		Chain: []*trust.Certificate{trust.Issue(root, "bob", bob.Pub, nil, 1000*sim.Second)}}

	// The handshake messages themselves travel through the network (as
	// cleartext raw payloads — hellos are public by design).
	aliceAddr, bobAddr := packet.MakeAddr(1, 1), packet.MakeAddr(3, 1)
	helloA, err := epA.NewHello(rng)
	if err != nil {
		t.Fatal(err)
	}
	helloB, err := epB.NewHello(rng)
	if err != nil {
		t.Fatal(err)
	}
	send := func(src topology.NodeID, from, to packet.Addr, body []byte, encrypted bool) *netsim.Trace {
		var layers []packet.SerializableLayer
		tip := &packet.TIP{TTL: 16, Src: from, Dst: to}
		if encrypted {
			tip.Proto = packet.LayerTypeCrypto
			layers = []packet.SerializableLayer{tip, &packet.Raw{Data: body}}
		} else {
			tip.Proto = packet.LayerTypeRaw
			layers = []packet.SerializableLayer{tip, &packet.Raw{Data: body}}
		}
		data, err := packet.Serialize(layers...)
		if err != nil {
			t.Fatal(err)
		}
		tr := net.Send(src, data)
		sched.Run()
		return tr
	}
	// Exchange hellos (their wire form here is the ephemeral public
	// key; the struct exchange models the rest).
	if tr := send(1, aliceAddr, bobAddr, helloA.EphemeralPub, false); !tr.Delivered {
		t.Fatal("hello A lost")
	}
	if tr := send(3, bobAddr, aliceAddr, helloB.EphemeralPub, false); !tr.Delivered {
		t.Fatal("hello B lost")
	}
	keyA, err := epA.Complete(helloB, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := epB.Complete(helloA, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(keyA, keyB) {
		t.Fatal("handshake key mismatch")
	}

	// Session data: encrypted with the derived key, sent past the tap.
	secret := []byte("the laws of mathematics, not the laws of men")
	c := &packet.Crypto{KeyID: 1, Nonce: 42}
	c.Seal(keyA, secret, packet.LayerTypeRaw)
	cdata, err := packet.Serialize(c)
	if err != nil {
		t.Fatal(err)
	}
	var gotAtBob []byte
	net.Node(3).Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) { gotAtBob = data }
	if tr := send(1, aliceAddr, bobAddr, cdata, true); !tr.Delivered {
		t.Fatal("session packet lost")
	}

	// Bob decrypts with his derived key.
	p := packet.NewPacket(gotAtBob, packet.LayerTypeTIP)
	cl := p.Layer(packet.LayerTypeCrypto)
	if cl == nil {
		t.Fatalf("bob's packet: %v", p)
	}
	plain, err := cl.(*packet.Crypto).Open(keyB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, secret) {
		t.Fatalf("bob decrypted %q", plain)
	}

	// The tap saw everything but could read only the handshake: the
	// session payload was opaque.
	if len(tap.Captured) < 3 {
		t.Fatalf("tap captured %d packets", len(tap.Captured))
	}
	last := tap.Captured[len(tap.Captured)-1]
	if last.Readable {
		t.Fatal("tap read the encrypted session")
	}
	readable := 0
	for _, cap := range tap.Captured {
		if cap.Readable {
			readable++
		}
	}
	if readable != 2 {
		t.Fatalf("tap read %d packets, want just the 2 hellos", readable)
	}
}

func TestEncryptionBlockerVsInspectableSession(t *testing.T) {
	// The §VI-A compromise in one flow: a provider blocks opaque
	// encryption; the endpoints switch to inspectable mode (inner type
	// visible, content not) and traffic flows again.
	net, sched := lineNet(t)
	net.Node(2).AddMiddlebox(&middlebox.EncryptionBlocker{Label: "no-opaque", AllowInspectable: true})

	rng := sim.NewRNG(2)
	a, b := &trust.Endpoint{}, &trust.Endpoint{}
	key, _, err := trust.Establish(a, b, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	sendSession := func(flags uint8) *netsim.Trace {
		c := &packet.Crypto{Flags: flags, Nonce: 7}
		c.Seal(key, []byte("session"), packet.LayerTypeRaw)
		cdata, err := packet.Serialize(c)
		if err != nil {
			t.Fatal(err)
		}
		data, err := packet.Serialize(
			&packet.TIP{TTL: 16, Proto: packet.LayerTypeCrypto,
				Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(3, 1)},
			&packet.Raw{Data: cdata})
		if err != nil {
			t.Fatal(err)
		}
		tr := net.Send(1, data)
		sched.Run()
		return tr
	}
	if tr := sendSession(0); tr.Delivered {
		t.Fatal("opaque session passed the blocker")
	}
	if tr := sendSession(packet.CryptoInspectable); !tr.Delivered {
		t.Fatalf("inspectable session blocked: %s", tr.DropReason)
	}
}
