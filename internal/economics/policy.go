package economics

import (
	"fmt"

	"repro/internal/policy"
)

// Market admission as a compiled, metered policy program: a provider may
// gate who it will serve with an arbitrary TPL expression over the
// consumer's visible demand profile — the §V-A2 server ban or a
// "business customers only" tier expressed as stakeholder code rather
// than hardcoded offer booleans. Policies compile once through the
// shared policy.DefaultCache and evaluate on the policy VM under a
// per-decision budget, so a pathological policy cannot stall market
// clearing; evaluation errors fail safe (the consumer is not admitted by
// that provider this round).
//
// Admission gates the round's choice set only: consumers already
// subscribed are grandfathered until they churn on their own terms —
// the market models contract stickiness, not mid-round eviction.

// Admission policy vocabulary: the consumer attributes a provider's
// policy may condition on, plus the clearing round.
var admissionVocab = map[string]uint8{
	"runs-server":      0,
	"wants-encryption": 1,
	"wants-qos":        2,
	"can-tunnel":       3,
	"wtp":              4,
	"switch-cost":      5,
	"round":            6,
}

// AdmissionPolicySteps is the per-decision step/allocation budget.
const AdmissionPolicySteps = 4096

// SetAdmissionPolicy installs a compiled admission policy on the
// provider (empty src clears it). Attribute references outside the
// vocabulary are rejected at install time.
func (p *Provider) SetAdmissionPolicy(src string) error {
	if src == "" {
		p.admission, p.admissionCodes, p.admissionSlots = nil, nil, nil
		return nil
	}
	prog, err := policy.CompileText(src)
	if err != nil {
		return err
	}
	attrs := prog.Attrs()
	codes := make([]uint8, len(attrs))
	for i, name := range attrs {
		code, ok := admissionVocab[name]
		if !ok {
			return fmt.Errorf("economics: admission policy references unknown attribute %q", name)
		}
		codes[i] = code
	}
	p.admission = prog
	p.admissionCodes = codes
	p.admissionSlots = make([]policy.Value, len(codes))
	return nil
}

// AdmissionPolicyText returns the canonical text of the installed
// policy, or "" when the provider admits everyone.
func (p *Provider) AdmissionPolicyText() string {
	if p.admission == nil {
		return ""
	}
	return p.admission.Source()
}

// admits evaluates the provider's admission policy for one consumer.
// Markets are single-goroutine, so the provider-owned slot scratch is
// safe to reuse across decisions.
func (p *Provider) admits(c *Consumer, round int) bool {
	for i, code := range p.admissionCodes {
		switch code {
		case 0:
			p.admissionSlots[i] = policy.Bool(c.RunsServer)
		case 1:
			p.admissionSlots[i] = policy.Bool(c.WantsEncryption)
		case 2:
			p.admissionSlots[i] = policy.Bool(c.WantsQoS)
		case 3:
			p.admissionSlots[i] = policy.Bool(c.CanTunnel)
		case 4:
			p.admissionSlots[i] = policy.Num(c.WTP)
		case 5:
			p.admissionSlots[i] = policy.Num(c.SwitchCost)
		default:
			p.admissionSlots[i] = policy.Num(float64(round))
		}
	}
	b := policy.NewBudget(AdmissionPolicySteps, AdmissionPolicySteps)
	v, err := p.admission.RunSlots(p.admissionSlots, &b)
	return err == nil && v.Kind == policy.KindBool && v.B
}
