package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// E21EndToEndReliability quantifies the end-to-end argument itself
// (§VI-A; the paper's reference [44]): reliability implemented in the
// network (hop-by-hop ARQ) can only ever be a performance optimization —
// the end-to-end layer remains necessary for correctness, and supplies
// it alone just fine. The experiment transfers the same stream over the
// same lossy path with and without link-layer repair and compares
// end-to-end retransmissions, total wire transmissions, and duration.
func E21EndToEndReliability(seed uint64) *Result {
	res := &Result{
		ID:    "E21",
		Title: "end-to-end vs hop-by-hop reliability",
		Claim: "§VI-A/[44]: in-network reliability is an optimization, not a substitute — the endpoints' check is what completes the transfer",
		Columns: []string{
			"completed", "e2e-retx", "local-resends", "elapsed-ms",
		},
	}
	const pathLen = 5
	mkNet := func() *netsim.Network {
		sched := sim.NewScheduler()
		g := topology.Linear(pathLen, sim.Millisecond)
		net := netsim.New(sched, g)
		for id := topology.NodeID(1); id <= pathLen; id++ {
			id := id
			net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
				d := topology.NodeID(dst.Provider())
				switch {
				case d > id:
					return id + 1, true
				case d < id:
					return id - 1, true
				}
				return id, true
			}
		}
		return net
	}
	data := make([]byte, 16000)
	for i := range data {
		data[i] = byte(i)
	}
	for _, lossPct := range []int{5, 20, 40} {
		loss := float64(lossPct) / 100
		for _, design := range []string{"e2e-only", "hop-by-hop+e2e"} {
			rng := sim.NewRNG(seed)
			net := mkNet()
			local := 0
			for id := topology.NodeID(2); id < pathLen; id++ {
				if design == "e2e-only" {
					transport.InstallLossyLink(net, id, loss, rng)
				} else {
					transport.InstallLinkARQ(net, id, loss, 5, rng, &local)
				}
			}
			stats, r := transport.Transfer(net, 1, pathLen, 9000, data, transport.DefaultConfig())
			completed := 0.0
			if stats.Done && len(r.Data) == len(data) {
				completed = 1
			}
			res.AddRow(fmt.Sprintf("%s loss=%d%%", design, lossPct),
				completed, float64(stats.Retransmissions), float64(local),
				stats.Elapsed.Millis())
		}
	}
	res.Finding = fmt.Sprintf(
		"every configuration completes — correctness comes from the endpoints alone; at 40%% loss, link ARQ cuts end-to-end retransmissions from %.0f to %.0f and transfer time from %.0fms to %.0fms at the cost of %.0f in-network resends: an optimization, exactly as the argument says",
		res.MustGet("e2e-only loss=40%", "e2e-retx"),
		res.MustGet("hop-by-hop+e2e loss=40%", "e2e-retx"),
		res.MustGet("e2e-only loss=40%", "elapsed-ms"),
		res.MustGet("hop-by-hop+e2e loss=40%", "elapsed-ms"),
		res.MustGet("hop-by-hop+e2e loss=40%", "local-resends"))
	return res
}
