package topology

import (
	"repro/internal/sim"
)

// HierarchyConfig parameterizes the standard three-tier internetwork
// generator: a tier-1 clique of settlement-free peers, tier-2 regional
// ISPs multihomed to tier-1s, and stub edge networks attached to one or
// two tier-2s.
type HierarchyConfig struct {
	// Tier1 is the size of the core clique (>= 1).
	Tier1 int
	// Tier2 is the number of regional transit ISPs.
	Tier2 int
	// Stubs is the number of edge networks.
	Stubs int
	// MultihomeProb is the probability a tier-2 or stub buys transit
	// from a second upstream — the consumer-side choice point of §V-A1.
	MultihomeProb float64
	// PeerProb is the probability two tier-2 ISPs peer directly.
	PeerProb float64
	// BaseLatency is the per-link propagation delay mean.
	BaseLatency sim.Time
}

// DefaultHierarchy is a small but non-trivial internetwork used by
// examples and tests.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		Tier1:         3,
		Tier2:         6,
		Stubs:         12,
		MultihomeProb: 0.4,
		PeerProb:      0.3,
		BaseLatency:   5 * sim.Millisecond,
	}
}

// GenerateHierarchy builds a connected three-tier topology. Node IDs are
// assigned in tier order starting at 1 (ID 0 is reserved as "none").
func GenerateHierarchy(cfg HierarchyConfig, rng *sim.RNG) *Graph {
	if cfg.Tier1 < 1 {
		cfg.Tier1 = 1
	}
	g := NewGraph()
	next := NodeID(1)
	lat := func() sim.Time {
		if cfg.BaseLatency == 0 {
			cfg.BaseLatency = 5 * sim.Millisecond
		}
		jitter := sim.Time(rng.Range(0.5, 1.5) * float64(cfg.BaseLatency))
		return jitter
	}
	cost := func() float64 { return rng.Range(1, 10) }

	var tier1, tier2 []NodeID
	for i := 0; i < cfg.Tier1; i++ {
		g.AddNode(next, Transit, 1)
		tier1 = append(tier1, next)
		next++
	}
	// Tier-1 full mesh of peers.
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			g.AddLink(tier1[i], tier1[j], PeerOf, lat(), cost())
		}
	}
	for i := 0; i < cfg.Tier2; i++ {
		g.AddNode(next, Transit, 2)
		tier2 = append(tier2, next)
		// Every tier-2 buys transit from at least one tier-1.
		up := tier1[rng.Intn(len(tier1))]
		g.AddLink(next, up, CustomerOf, lat(), cost())
		if rng.Bool(cfg.MultihomeProb) && len(tier1) > 1 {
			second := tier1[rng.Intn(len(tier1))]
			if second == up {
				second = tier1[(indexOf(tier1, up)+1)%len(tier1)]
			}
			g.AddLink(next, second, CustomerOf, lat(), cost())
		}
		next++
	}
	// Tier-2 peering.
	for i := 0; i < len(tier2); i++ {
		for j := i + 1; j < len(tier2); j++ {
			if rng.Bool(cfg.PeerProb) {
				g.AddLink(tier2[i], tier2[j], PeerOf, lat(), cost())
			}
		}
	}
	upstreams := tier2
	if len(upstreams) == 0 {
		upstreams = tier1
	}
	for i := 0; i < cfg.Stubs; i++ {
		g.AddNode(next, Stub, 3)
		up := upstreams[rng.Intn(len(upstreams))]
		g.AddLink(next, up, CustomerOf, lat(), cost())
		if rng.Bool(cfg.MultihomeProb) && len(upstreams) > 1 {
			second := upstreams[rng.Intn(len(upstreams))]
			if second == up {
				second = upstreams[(indexOf(upstreams, up)+1)%len(upstreams)]
			}
			g.AddLink(next, second, CustomerOf, lat(), cost())
		}
		next++
	}
	return g
}

func indexOf(ids []NodeID, id NodeID) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	return -1
}

// GenerateScaleFree builds a connected Barabási–Albert-style topology of
// n nodes by preferential attachment: the graph starts as a clique of
// m+1 seed nodes, and every later node attaches m links to existing
// nodes chosen with probability proportional to their current degree.
// The resulting degree distribution is heavy-tailed — a few well-attached
// hubs and many leaves — which is the shape real AS graphs have, and what
// the scale benchmarks exercise so hub contention is represented.
//
// Node IDs are assigned densely starting at 1 (ID 0 stays reserved as
// "none", matching GenerateHierarchy). Each attachment link is
// CustomerOf from the new node's perspective (the newcomer buys transit
// from the established node). Nodes that end up providing transit
// (degree above m) are Transit tier 2, the seed clique is Transit
// tier 1, and pure leaves are Stubs tier 3. Link latency is jittered
// around 2ms and cost around [1,10) from the caller's rng, so the graph
// is a pure function of (n, m, rng state). The graph is connected by
// construction: every node attaches to an earlier one.
func GenerateScaleFree(n, m int, rng *sim.RNG) *Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	const baseLatency = 2 * sim.Millisecond
	lat := func() sim.Time {
		return sim.Time(rng.Range(0.5, 1.5) * float64(baseLatency))
	}
	cost := func() float64 { return rng.Range(1, 10) }

	g := NewGraph()
	for i := 1; i <= n; i++ {
		g.AddNode(NodeID(i), Transit, 2)
	}
	// targets is the repeated-endpoint list: each node appears once per
	// unit of degree, so a uniform draw from it is degree-preferential.
	targets := make([]NodeID, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	// Seed clique of m+1 nodes.
	seed := m + 1
	for i := 1; i <= seed; i++ {
		g.Nodes[NodeID(i)].Tier = 1
		for j := i + 1; j <= seed; j++ {
			g.AddLink(NodeID(i), NodeID(j), PeerOf, lat(), cost())
			targets = append(targets, NodeID(i), NodeID(j))
		}
	}
	picked := make([]NodeID, 0, m)
	for v := seed + 1; v <= n; v++ {
		picked = picked[:0]
		for len(picked) < m {
			t := targets[rng.Intn(len(targets))]
			dup := false
			for _, p := range picked {
				if p == t {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, t)
			}
		}
		for _, t := range picked {
			g.AddLink(NodeID(v), t, CustomerOf, lat(), cost())
			targets = append(targets, NodeID(v), t)
		}
	}
	// Classify: nodes that only hold their own m attachments are leaves.
	deg := make([]int, n+1)
	for _, l := range g.Links {
		deg[l.A]++
		deg[l.B]++
	}
	for i := seed + 1; i <= n; i++ {
		if deg[i] <= m {
			nd := g.Nodes[NodeID(i)]
			nd.Kind = Stub
			nd.Tier = 3
		}
	}
	return g
}

// Linear builds a simple chain topology a-b-c-... of transit nodes with
// customer-of relationships pointing left-to-right providers; useful for
// focused unit tests.
func Linear(n int, latency sim.Time) *Graph {
	g := NewGraph()
	for i := 1; i <= n; i++ {
		g.AddNode(NodeID(i), Transit, 1)
	}
	for i := 1; i < n; i++ {
		g.AddLink(NodeID(i), NodeID(i+1), CustomerOf, latency, 1)
	}
	return g
}
