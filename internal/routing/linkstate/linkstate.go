// Package linkstate implements an OSPF-style link-state routing protocol
// for the simulated internetwork: every node floods its link costs, every
// node runs Dijkstra over the identical database, and — the property that
// matters for the tussle analysis of §IV-C — every node's cost choices
// are public. Contrast with the path-vector protocol in the sibling
// package, which reveals only chosen paths.
package linkstate

import (
	"math"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Database is the flooded link-state database: the complete, public view
// of the network's links and costs.
//
// The embedded SPF scratch space makes repeated SPF/Compute calls cheap
// but means a Database must not be shared across goroutines. Parallelism
// in this repository is across independent simulations, each with its own
// Database (see experiments.RunAll).
type Database struct {
	g *topology.Graph
	// Overrides lets a node advertise a different cost on a link
	// (traffic engineering — a visible tussle move).
	Overrides map[[2]topology.NodeID]float64

	scratch spfScratch

	// obs instruments route computation; nil means disabled.
	spfRuns    *obs.Counter
	spfSettled *obs.Histogram
}

// NewDatabase builds a database over the topology.
func NewDatabase(g *topology.Graph) *Database {
	return &Database{g: g, Overrides: make(map[[2]topology.NodeID]float64)}
}

// AttachObs enables route-computation observability: a counter of SPF
// runs and the distribution of nodes settled per run (the convergence
// work a cost change triggers). A nil registry disables again.
func (db *Database) AttachObs(reg *obs.Registry) {
	if reg == nil {
		db.spfRuns, db.spfSettled = nil, nil
		return
	}
	db.spfRuns = reg.Counter("routing.linkstate.spf_runs")
	db.spfSettled = reg.Histogram("routing.linkstate.spf_settled", obs.CountBuckets)
}

// SetCost overrides the advertised cost of the directed edge a→b.
func (db *Database) SetCost(a, b topology.NodeID, cost float64) {
	db.Overrides[[2]topology.NodeID{a, b}] = cost
}

// Cost returns the advertised cost of the directed edge a→b.
func (db *Database) Cost(a, b topology.NodeID) (float64, bool) {
	if c, ok := db.Overrides[[2]topology.NodeID{a, b}]; ok {
		return c, true
	}
	l, ok := db.g.LinkBetween(a, b)
	if !ok {
		return 0, false
	}
	return l.Cost, true
}

// VisibleChoices reports every (edge, cost) pair any observer can read
// from the database — the §IV-C "visibility of choices" audit surface.
// The count equals twice the number of links (both directions).
func (db *Database) VisibleChoices() int {
	n := 0
	for _, id := range db.g.NodeIDs() {
		n += len(db.g.Neighbors(id))
	}
	return n
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	node topology.NodeID
	dist float64
}

// pq is a binary min-heap of items ordered by dist. It is sifted manually
// (not via container/heap) so pushes never box items into interfaces.
type pq []item

func (p pq) push(it item) pq {
	p = append(p, it)
	i := len(p) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p[parent].dist <= p[i].dist {
			break
		}
		p[i], p[parent] = p[parent], p[i]
		i = parent
	}
	return p
}

func (p pq) pop() (item, pq) {
	it := p[0]
	n := len(p) - 1
	p[0] = p[n]
	p = p[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && p[r].dist < p[l].dist {
			m = r
		}
		if p[i].dist <= p[m].dist {
			break
		}
		p[i], p[m] = p[m], p[i]
		i = m
	}
	return it, p
}

// spfScratch holds Dijkstra working state reused across SPF calls so
// repeated route computations (Compute builds one table per node) do not
// reallocate the priority queue and bookkeeping maps every call. The
// returned next/dist maps escape to callers and are always fresh.
type spfScratch struct {
	q    pq
	prev map[topology.NodeID]topology.NodeID
	done map[topology.NodeID]bool
}

func (sc *spfScratch) reset() {
	if sc.prev == nil {
		sc.prev = make(map[topology.NodeID]topology.NodeID)
		sc.done = make(map[topology.NodeID]bool)
	} else {
		clear(sc.prev)
		clear(sc.done)
	}
	sc.q = sc.q[:0]
}

// SPF runs Dijkstra from src over the database and returns, for every
// reachable destination, the next hop and total cost.
func (db *Database) SPF(src topology.NodeID) (next map[topology.NodeID]topology.NodeID, dist map[topology.NodeID]float64) {
	sc := &db.scratch
	sc.reset()
	next = make(map[topology.NodeID]topology.NodeID)
	dist = make(map[topology.NodeID]float64)
	prev, done := sc.prev, sc.done
	const inf = math.MaxFloat64
	dist[src] = 0
	q := sc.q.push(item{src, 0})
	var it item
	for len(q) > 0 {
		it, q = q.pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, nb := range db.g.Neighbors(it.node) {
			c, ok := db.Cost(it.node, nb)
			if !ok || c < 0 {
				continue
			}
			nd := it.dist + c
			cur, seen := dist[nb]
			if !seen {
				cur = inf
			}
			if nd < cur {
				dist[nb] = nd
				prev[nb] = it.node
				q = q.push(item{nb, nd})
			}
		}
	}
	sc.q = q // keep the grown backing array for the next call
	if db.spfRuns != nil {
		db.spfRuns.Inc()
		db.spfSettled.Observe(float64(len(done)))
	}
	for dst := range dist {
		if dst == src {
			continue
		}
		// Walk back to find the first hop.
		hop := dst
		for prev[hop] != src {
			hop = prev[hop]
		}
		next[dst] = hop
	}
	return next, dist
}

// Table is a computed forwarding table for one node.
type Table struct {
	Src  topology.NodeID
	Next map[topology.NodeID]topology.NodeID
	Dist map[topology.NodeID]float64
}

// Compute builds forwarding tables for every node.
func Compute(db *Database) map[topology.NodeID]*Table {
	out := make(map[topology.NodeID]*Table)
	for _, id := range db.g.NodeIDs() {
		next, dist := db.SPF(id)
		out[id] = &Table{Src: id, Next: next, Dist: dist}
	}
	return out
}

// RouteFunc adapts a table to the simulator's routing hook.
func (t *Table) RouteFunc() func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
	return func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
		d := topology.NodeID(dst.Provider())
		if d == t.Src {
			return t.Src, true
		}
		nh, ok := t.Next[d]
		return nh, ok
	}
}
