package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// Disabled instruments must be free: no allocation on any method of the
// nil handles a nil registry hands out.
func TestDisabledInstrumentsZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", CountBuckets)
	tr := NewTracer(nil)
	if c != nil || g != nil || h != nil || tr != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(2)
		h.Observe(5)
		StartSpan(h, 10).End(20)
		tr.Emit(Event{Scope: "s", Kind: "k"})
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %.1f per op, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments recorded values")
	}
}

// Enabled counters and histograms must not allocate per observation
// either — they sit on per-event hot paths.
func TestEnabledInstrumentsZeroAllocSteadyState(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", TimeBucketsNs)
	ring := NewRing(8)
	tr := NewTracer(ring)
	// Warm the ring to capacity so Emit stops growing the buffer.
	for i := 0; i < 16; i++ {
		tr.Emit(Event{Scope: "s", Kind: "k", Time: int64(i)})
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(12345)
		tr.Emit(Event{Scope: "s", Kind: "k", Time: 1, Node: 2, Detail: "d"})
	})
	if allocs != 0 {
		t.Fatalf("enabled obs hot path allocates %.1f per op, want 0", allocs)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms[0]
	want := []uint64{2, 2, 1, 1} // <=10: {5,10}; <=100: {11,100}; <=1000: {500}; +Inf: {5000}
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != 6 || snap.Min != 5 || snap.Max != 5000 {
		t.Fatalf("count/min/max = %d/%v/%v", snap.Count, snap.Min, snap.Max)
	}
	if snap.Sum != 5+10+11+100+500+5000 {
		t.Fatalf("sum = %v", snap.Sum)
	}
}

func TestHistogramLayoutIsIdentity(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different bounds did not panic")
		}
	}()
	r.Histogram("h", []float64{1, 2, 3})
}

// Merging shards must be commutative: any merge order yields the same
// snapshot — the property RunAll's work-stealing pool depends on.
func TestMergeCommutative(t *testing.T) {
	build := func(vals ...float64) *Registry {
		r := NewRegistry()
		for _, v := range vals {
			r.Counter("events").Inc()
			r.Gauge("pool").Add(v)
			r.Histogram("dist", CountBuckets).Observe(v)
		}
		return r
	}
	a, b, c := build(1, 5), build(9, 2, 700), build(64)

	ab := NewRegistry()
	ab.Merge(a)
	ab.Merge(b)
	ab.Merge(c)
	ba := NewRegistry()
	ba.Merge(c)
	ba.Merge(b)
	ba.Merge(a)
	if !reflect.DeepEqual(ab.Snapshot(), ba.Snapshot()) {
		t.Fatal("merge order changed the aggregate snapshot")
	}
	s := ab.Snapshot()
	if s.Counters[0].Value != 6 {
		t.Fatalf("merged counter = %d, want 6", s.Counters[0].Value)
	}
	if s.Histograms[0].Count != 6 || s.Histograms[0].Min != 1 || s.Histograms[0].Max != 700 {
		t.Fatalf("merged histogram = %+v", s.Histograms[0])
	}
}

// Snapshots serialize deterministically: same registry state, same
// bytes, with sections sorted by name.
func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order differs from sorted order on purpose.
		r.Counter("zeta").Add(3)
		r.Counter("alpha").Add(1)
		r.Histogram("m.lat", TimeBucketsNs).Observe(5e6)
		r.Gauge("mid").Set(2)
		return r
	}
	j1, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON not reproducible:\n%s\n%s", j1, j2)
	}
	s := build().Snapshot()
	if s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
}

func TestRingSink(t *testing.T) {
	ring := NewRing(3)
	tr := NewTracer(ring)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Time: int64(i), Scope: "s", Kind: "k"})
	}
	if ring.Total() != 5 {
		t.Fatalf("total = %d, want 5", ring.Total())
	}
	ev := ring.Events()
	if len(ev) != 3 || ev[0].Time != 2 || ev[2].Time != 4 {
		t.Fatalf("ring kept %+v, want times 2,3,4 oldest-first", ev)
	}
	if got := ring.Find("s", "k"); len(got) != 3 {
		t.Fatalf("Find returned %d events, want 3", len(got))
	}
	if got := ring.Find("s", "other"); len(got) != 0 {
		t.Fatalf("Find matched wrong kind: %+v", got)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf strings.Builder
	sink := NewJSONL(&buf)
	tr := NewTracer(sink)
	tr.Emit(Event{Time: 7, Scope: "netsim", Kind: "drop", Node: 3, Detail: "ttl"})
	tr.Emit(Event{Time: 9, Scope: "netsim", Kind: "deliver", Node: 4})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Time != 7 || e.Kind != "drop" || e.Detail != "ttl" || e.Node != 3 {
		t.Fatalf("round-trip event = %+v", e)
	}
}

func TestEnvNilSafety(t *testing.T) {
	var env *Env
	if env.Registry() != nil || env.Tracer() != nil {
		t.Fatal("nil env returned live handles")
	}
	env = &Env{Metrics: NewRegistry()}
	if env.Registry() == nil {
		t.Fatal("env dropped its registry")
	}
	if env.Tracer() != nil {
		t.Fatal("env invented a tracer")
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span", TimeBucketsNs)
	sp := StartSpan(h, 1000)
	sp.End(6000)
	if h.Count() != 1 || h.Sum() != 5000 {
		t.Fatalf("span recorded count=%d sum=%v, want 1/5000", h.Count(), h.Sum())
	}
}
