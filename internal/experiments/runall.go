package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Options configures RunAll.
type Options struct {
	// Parallelism bounds the number of worker goroutines running
	// experiments concurrently. Zero or negative means GOMAXPROCS.
	Parallelism int

	// Obs, when non-nil, collects metrics from every instrumented
	// experiment in the suite. Under parallelism each worker records
	// into a private shard registry; the shards are merged into Obs
	// after the pool drains. Registry merging is commutative, so the
	// aggregate is independent of the work-stealing schedule — the
	// determinism contract extends to the metrics.
	Obs *obs.Registry

	// Trace, when non-nil, receives structured events from instrumented
	// experiments. Sinks are single-threaded, so tracing is honored only
	// at Parallelism 1; parallel runs ignore it.
	Trace *obs.Tracer
}

// RunAll runs the full evaluation suite with the given seed, fanning the
// experiments out across a bounded worker pool. Each experiment is a pure
// function of the seed and owns all of its state (scheduler, RNG, routing
// databases), so running them concurrently is safe and the output is
// byte-identical to the sequential All(seed): same order, same tables,
// same cell values, at any parallelism level.
//
// Parallelism is across whole simulations only — each simulation's
// scheduler remains single-threaded by design.
func RunAll(seed uint64, opts Options) []*Result {
	p := opts.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > len(registry) {
		p = len(registry)
	}
	out := make([]*Result, len(registry))
	if p <= 1 {
		env := &obs.Env{Metrics: opts.Obs, Trace: opts.Trace}
		for i, e := range registry {
			out[i] = e.RunWith(seed, env)
		}
		return out
	}
	// Work-stealing by atomic index: each worker claims the next
	// unclaimed experiment. out[i] is written by exactly one worker, and
	// slot order (not completion order) fixes the result order, so the
	// schedule is irrelevant to the output.
	shards := make([]*obs.Registry, p)
	if opts.Obs != nil {
		for w := range shards {
			shards[w] = obs.NewRegistry()
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		w := w
		go func() {
			defer wg.Done()
			env := &obs.Env{Metrics: shards[w]}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(registry) {
					return
				}
				out[i] = registry[i].RunWith(seed, env)
			}
		}()
	}
	wg.Wait()
	if opts.Obs != nil {
		for _, sh := range shards {
			opts.Obs.Merge(sh)
		}
	}
	return out
}
