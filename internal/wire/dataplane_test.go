package wire

import (
	"testing"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
)

// chainRoute is node 2's routing personality in a 1-2-3-4 chain, with
// two deliberate pathologies for drop-path coverage: destinations in
// provider 7 have no route, and provider 8 routes to a non-adjacent
// node.
func chainRoute(id topology.NodeID) netsim.RouteFunc {
	return func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
		switch dst.Provider() {
		case 7:
			return 0, false
		case 8:
			return 9, true
		}
		d := topology.NodeID(dst.Provider())
		switch {
		case d == id:
			return id, true
		case d > id:
			return id + 1, true
		default:
			return id - 1, true
		}
	}
}

func testNodeConfig(mboxes []netsim.Middlebox) NodeConfig {
	return NodeConfig{
		ID:                           2,
		Route:                        chainRoute(2),
		HonorSourceRoutes:            true,
		RequirePaymentForSourceRoute: true,
		Middleboxes:                  mboxes,
		Peers:                        []topology.NodeID{1, 3},
	}
}

func rawPkt(t *testing.T, src, dst packet.Addr, ttl uint8, payload string) []byte {
	t.Helper()
	data, err := packet.Serialize(
		&packet.TIP{TTL: ttl, Proto: packet.LayerTypeRaw, Src: src, Dst: dst},
		&packet.Raw{Data: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func ttpPkt(t *testing.T, tip packet.TIP, port uint16, payload string) []byte {
	t.Helper()
	tip.Proto = packet.LayerTypeTTP
	data, err := packet.Serialize(&tip,
		&packet.TTP{SrcPort: 4000, DstPort: port, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDataplaneDecisions(t *testing.T) {
	mk := func() *Dataplane {
		return NewDataplane(testNodeConfig([]netsim.Middlebox{
			&middlebox.PortFirewall{Label: "fw", BlockedPorts: map[uint16]bool{25: true}},
			&middlebox.PortFirewall{Label: "ghost", BlockedPorts: map[uint16]bool{6667: true}, Quiet: true},
		}))
	}
	src := packet.MakeAddr(1, 1)
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"deliver", rawPkt(t, src, packet.MakeAddr(2, 9), 16, "hi"), "deliver"},
		{"forward-up", rawPkt(t, src, packet.MakeAddr(4, 1), 16, "hi"), "forward 3"},
		{"forward-down", rawPkt(t, packet.MakeAddr(4, 1), packet.MakeAddr(1, 2), 16, "hi"), "forward 1"},
		{"ttl-expired", rawPkt(t, src, packet.MakeAddr(4, 1), 1, "hi"), "drop ttl"},
		{"no-route", rawPkt(t, src, packet.MakeAddr(7, 1), 16, "hi"), "drop no-route"},
		{"bad-next-hop", rawPkt(t, src, packet.MakeAddr(8, 1), 16, "hi"), "drop bad-next-hop"},
		{"blocked-loud", ttpPkt(t, packet.TIP{TTL: 16, Src: src, Dst: packet.MakeAddr(4, 1)}, 25, "MAIL"), "drop blocked:fw"},
		{"blocked-silent", ttpPkt(t, packet.TIP{TTL: 16, Src: src, Dst: packet.MakeAddr(4, 1)}, 6667, "irc"), "drop lost"},
		{"truncated", []byte{0x18, 0x00, 0x00}, "drop malformed"},
		{"empty", nil, "drop malformed"},
	}
	for _, c := range cases {
		dp := mk() // fresh kernel per case: no cross-case state
		buf := append([]byte(nil), c.data...)
		if got := dp.Process(buf).String(); got != c.want {
			t.Errorf("%s: decision %q, want %q", c.name, got, c.want)
		}
	}
}

func TestDataplaneForwardDecrementsTTL(t *testing.T) {
	dp := NewDataplane(testNodeConfig(nil))
	data := rawPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16, "hi")
	dec := dp.Process(data)
	if dec.Kind != Forward {
		t.Fatalf("decision = %v", dec)
	}
	var tip packet.TIP
	if err := tip.DecodeFrom(dec.Data); err != nil {
		t.Fatalf("forwarded bytes no longer decode: %v", err)
	}
	if tip.TTL != 15 {
		t.Fatalf("forwarded TTL = %d, want 15 (decremented, checksum repaired)", tip.TTL)
	}
}

func TestDataplaneSourceRoutePolicy(t *testing.T) {
	srcRouted := func(pay bool) []byte {
		tip := &packet.TIP{
			TTL: 16, Proto: packet.LayerTypeRaw,
			Src: packet.MakeAddr(4, 1), Dst: packet.MakeAddr(1, 9),
			SourceRoute: &packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(3, 1)}},
		}
		if pay {
			tip.Payment = &packet.PaymentOption{Payer: tip.Src, Payee: packet.MakeAddr(2, 0), AmountMilli: 5, Nonce: 1, MAC: 9}
		}
		data, err := packet.Serialize(tip, &packet.Raw{Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// Paid: the waypoint (provider 3) wins over the destination route.
	dp := NewDataplane(testNodeConfig(nil))
	if got := dp.Process(srcRouted(true)).String(); got != "forward 3" {
		t.Fatalf("paid source route decided %q, want forward 3", got)
	}
	// Unpaid: policy ignores the source route; destination 1.9 routes
	// down the chain.
	if got := dp.Process(srcRouted(false)).String(); got != "forward 1" {
		t.Fatalf("unpaid source route decided %q, want forward 1", got)
	}
}

// TestDataplaneCompiledSourceRoutePolicy pins that a compiled `paid`
// policy decides exactly like the legacy payment boolean, and that a
// vocabulary-rich policy steers decisions the simulator mirror-test
// (netsim TestSourceRoutePolicyWaypointSteering) pins on its side.
func TestDataplaneCompiledSourceRoutePolicy(t *testing.T) {
	srcRouted := func(pay bool) []byte {
		tip := &packet.TIP{
			TTL: 16, Proto: packet.LayerTypeRaw,
			Src: packet.MakeAddr(4, 1), Dst: packet.MakeAddr(1, 9),
			SourceRoute: &packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(3, 1)}},
		}
		if pay {
			tip.Payment = &packet.PaymentOption{Payer: tip.Src, Payee: packet.MakeAddr(2, 0), AmountMilli: 5, Nonce: 1, MAC: 9}
		}
		data, err := packet.Serialize(tip, &packet.Raw{Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	compiled := func(t *testing.T, src string) *netsim.SourceRoutePolicy {
		t.Helper()
		p, err := netsim.CompileSourceRoutePolicy(src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name         string
		policy       string
		paid, unpaid string
	}{
		// `paid` ≡ RequirePaymentForSourceRoute (TestDataplaneSourceRoutePolicy).
		{"paid", "paid", "forward 3", "forward 1"},
		{"waypoint-allow", "waypoint-provider == 3", "forward 3", "forward 3"},
		{"waypoint-deny", "waypoint-provider != 3", "forward 1", "forward 1"},
		{"ttl-floor", "ttl > 20", "forward 1", "forward 1"}, // TTL is 15 after decrement
	}
	for _, c := range cases {
		cfg := testNodeConfig(nil)
		cfg.RequirePaymentForSourceRoute = false // the policy replaces it
		cfg.SourceRoutePolicy = compiled(t, c.policy)
		dp := NewDataplane(cfg)
		if got := dp.Process(srcRouted(true)).String(); got != c.paid {
			t.Errorf("%s: paid packet decided %q, want %q", c.name, got, c.paid)
		}
		if got := dp.Process(srcRouted(false)).String(); got != c.unpaid {
			t.Errorf("%s: unpaid packet decided %q, want %q", c.name, got, c.unpaid)
		}
	}
}

// TestProcessZeroAllocWithPolicy extends the decision-kernel alloc gate
// to the policy-enabled configuration: the compiled program runs on the
// pooled VM through the dataplane-owned slot scratch, so installing a
// source-route policy must not cost a single allocation per packet.
func TestProcessZeroAllocWithPolicy(t *testing.T) {
	cfg := testNodeConfig(nil)
	pol, err := netsim.CompileSourceRoutePolicy("paid && ttl > 0 && waypoint-provider < 100")
	if err != nil {
		t.Fatal(err)
	}
	cfg.SourceRoutePolicy = pol
	dp := NewDataplane(cfg)
	tip := &packet.TIP{
		TTL: 64, Proto: packet.LayerTypeRaw,
		Src: packet.MakeAddr(4, 1), Dst: packet.MakeAddr(1, 9),
		SourceRoute: &packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(3, 1)}},
		Payment:     &packet.PaymentOption{Payer: packet.MakeAddr(4, 1), AmountMilli: 5},
	}
	fwd, err := packet.Serialize(tip, &packet.Raw{Data: []byte("forward me")})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(fwd))
	copy(buf, fwd)
	dp.Process(buf) // warm decode scratch and the VM pool
	allocs := testing.AllocsPerRun(300, func() {
		copy(buf, fwd)
		if dec := dp.Process(buf); dec.Kind != Forward || dec.Next != 3 {
			t.Fatalf("policy-gated packet decided %v", dec)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Process with policy costs %.1f allocs, want 0", allocs)
	}
}

// TestProcessZeroAlloc is the decision-kernel alloc gate: the
// steady-state mix (forward, deliver, malformed) must not allocate, or
// the engine's per-packet path regresses. The gate covers the
// middlebox-free fast path — the same discipline as netsim's
// TestForwardHopZeroAlloc; middlebox implementations decode on their
// own dime in both engines.
func TestProcessZeroAlloc(t *testing.T) {
	dp := NewDataplane(testNodeConfig(nil))
	fwd := rawPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 64, "forward me")
	del := rawPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(2, 9), 64, "deliver me")
	bad := []byte{0x18, 0x01, 0x02}
	buf := make([]byte, len(fwd))
	// Warm the decode scratch (first decode of each option shape may
	// allocate the pooled structs).
	dp.Process(append(buf[:0:len(buf)], fwd...))
	allocs := testing.AllocsPerRun(300, func() {
		copy(buf, fwd) // refill, as a receive slot would be
		if dec := dp.Process(buf); dec.Kind != Forward {
			t.Fatalf("forward packet decided %v", dec)
		}
		if dec := dp.Process(del); dec.Kind != Deliver {
			t.Fatalf("deliver packet decided %v", dec)
		}
		if dec := dp.Process(bad); dec.Kind != Dropped {
			t.Fatalf("malformed packet decided %v", dec)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Process costs %.1f allocs per 3-packet mix, want 0", allocs)
	}
}
