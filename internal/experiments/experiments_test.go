package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/transport/multipath"
)

const testSeed = 42

func TestE1IsolationConfinesDamage(t *testing.T) {
	r := E1NamingIsolation(testSeed)
	if c := r.MustGet("isolated markUse=50%", "collateral"); c != 0 {
		t.Fatalf("isolated collateral = %v, want 0", c)
	}
	if c := r.MustGet("entangled markUse=50%", "collateral"); c == 0 {
		t.Fatal("entangled design showed no collateral damage")
	}
	if a := r.MustGet("isolated markUse=50%", "machine-avail"); a != 1 {
		t.Fatalf("isolated machine availability = %v, want 1", a)
	}
	ea := r.MustGet("entangled markUse=50%", "machine-avail")
	if ea >= 1 {
		t.Fatalf("entangled machine availability = %v, should be degraded", ea)
	}
}

func TestE2ExplicitToSSurvivesEncryption(t *testing.T) {
	r := E2QoSIsolation(testSeed)
	if m := r.MustGet("explicit-tos enc=50%", "misclassified"); m != 0 {
		t.Fatalf("explicit classifier misclassified %v", m)
	}
	if m := r.MustGet("by-port enc=50%", "misclassified"); m == 0 {
		t.Fatal("port classifier should fail on encrypted flows")
	}
	if d := r.MustGet("by-port enc=50%", "distortion-pressure"); d == 0 {
		t.Fatal("no distortion pressure recorded")
	}
	// VoIP quality under the port design degrades relative to explicit.
	portScore := r.MustGet("by-port enc=50%", "voip-score")
	tosScore := r.MustGet("explicit-tos enc=50%", "voip-score")
	if portScore >= tosScore {
		t.Fatalf("voip score: by-port %v should trail explicit %v", portScore, tosScore)
	}
}

func TestE3LockinRaisesPrices(t *testing.T) {
	r := E3ProviderLockin(testSeed)
	for _, n := range []string{"entrants=2", "entrants=4"} {
		locked := r.MustGet(n+" static-addrs", "mean-price")
		free := r.MustGet(n+" dhcp+dyn-dns", "mean-price")
		if locked <= free {
			t.Fatalf("%s: locked price %v should exceed free price %v", n, locked, free)
		}
	}
	if s := r.MustGet("entrants=4 dhcp+dyn-dns", "consumer-surplus"); s <= r.MustGet("entrants=4 static-addrs", "consumer-surplus") {
		t.Fatal("easy switching should raise consumer surplus")
	}
}

func TestE4TunnelsUndermineBan(t *testing.T) {
	r := E4ValuePricing(testSeed)
	if tr := r.MustGet("monopoly tunnels", "tunnel-rate"); tr == 0 {
		t.Fatal("no tunneling recorded")
	}
	if r.MustGet("monopoly tunnels", "isp-revenue") >= r.MustGet("monopoly no-tunnels", "isp-revenue") {
		t.Fatal("tunneling should cut the banning ISP's revenue")
	}
	if r.MustGet("duopoly no-tunnels", "isp-revenue") >= r.MustGet("monopoly no-tunnels", "isp-revenue") {
		t.Fatal("competition should cut the banning ISP's revenue further")
	}
}

func TestE5OpenAccessLowersPrices(t *testing.T) {
	r := E5OpenAccess(testSeed)
	if r.MustGet("entrants=5", "retail-price") >= r.MustGet("entrants=0", "retail-price") {
		t.Fatal("open access should lower retail prices")
	}
	if r.MustGet("entrants=5", "consumer-surplus") <= r.MustGet("entrants=0", "consumer-surplus") {
		t.Fatal("open access should raise consumer surplus")
	}
	if r.MustGet("entrants=5", "facility-profit") >= r.MustGet("entrants=0", "facility-profit") {
		t.Fatal("the paper's caveat: open access should cost the facility investor")
	}
}

func TestE6PaymentUnlocksSourceRouting(t *testing.T) {
	r := E6RoutingControl(testSeed)
	if c := r.MustGet("provider-control", "choice-exercised"); c != 0 {
		t.Fatalf("provider control exercised choice = %v, want 0", c)
	}
	paid := r.MustGet("srcroute paid", "choice-exercised")
	unpaid := r.MustGet("srcroute unpaid", "choice-exercised")
	if paid <= unpaid {
		t.Fatalf("paid choice %v should exceed unpaid %v", paid, unpaid)
	}
	if rev := r.MustGet("srcroute paid", "voucher-revenue"); rev <= 0 {
		t.Fatal("no voucher revenue flowed")
	}
	if d := r.MustGet("srcroute paid", "delivery"); d < 0.9 {
		t.Fatalf("paid srcroute delivery = %v", d)
	}
}

func TestE7TrustFirewallDominates(t *testing.T) {
	r := E7TrustFirewall(testSeed)
	for _, frac := range []string{"attackers=10%", "attackers=30%"} {
		portAttacks := r.MustGet("port-fw "+frac, "attacks-admitted")
		trustAttacks := r.MustGet("trust-fw "+frac, "attacks-admitted")
		if trustAttacks >= portAttacks {
			t.Fatalf("%s: trust fw admitted %v attacks vs port fw %v", frac, trustAttacks, portAttacks)
		}
		portBlocked := r.MustGet("port-fw "+frac, "legit-blocked")
		trustBlocked := r.MustGet("trust-fw "+frac, "legit-blocked")
		if trustBlocked >= portBlocked {
			t.Fatalf("%s: trust fw blocked %v legit vs port fw %v", frac, trustBlocked, portBlocked)
		}
	}
}

func TestE8VisibleAnonymityCutsFraud(t *testing.T) {
	r := E8Anonymity(testSeed)
	visFraud := r.MustGet("visible-anon anon=50%", "fraud-suffered")
	hidFraud := r.MustGet("hidden-anon anon=50%", "fraud-suffered")
	if visFraud >= hidFraud {
		t.Fatalf("visible fraud %v should be below hidden fraud %v", visFraud, hidFraud)
	}
	// Visible anonymity means anonymous interactions are refused.
	if a := r.MustGet("visible-anon anon=50%", "anon-completed"); a != 0 {
		t.Fatalf("visible anonymous completed = %v", a)
	}
	if a := r.MustGet("hidden-anon anon=50%", "anon-completed"); a == 0 {
		t.Fatal("hidden anonymous senders should get through")
	}
}

func TestE9FeatureDensityBlocksNewApps(t *testing.T) {
	r := E9EndToEnd(testSeed)
	clean := r.MustGet("feature-density=0%", "newapp-success")
	dense := r.MustGet("feature-density=75%", "newapp-success")
	if clean < 0.95 {
		t.Fatalf("transparent network new-app success = %v", clean)
	}
	if dense >= clean {
		t.Fatalf("feature density should hurt new apps: %v vs %v", dense, clean)
	}
	// Mature web keeps working in all configurations.
	for _, row := range r.Rows {
		if v := row.Values[2]; v < 0.95 {
			t.Fatalf("%s: web delivery %v", row.Label, v)
		}
	}
}

func TestE10CompetitionDisciplinesBlocking(t *testing.T) {
	r := E10Encryption(testSeed)
	// Monopoly: blocking costs little (nowhere to go).
	monoBlockSubs := r.MustGet("monopoly block-crypto", "blocker-subscribers")
	if monoBlockSubs == 0 {
		t.Fatal("monopoly blocker lost all subscribers — users had nowhere to go")
	}
	// Competition: blocking loses the encryption-valuing half.
	compCarry := r.MustGet("competitive carry", "blocker-profit")
	compBlock := r.MustGet("competitive block-crypto", "blocker-profit")
	if compBlock >= compCarry {
		t.Fatalf("blocking should be unprofitable under competition: %v vs %v", compBlock, compCarry)
	}
	if c := r.MustGet("monopoly block-crypto", "encrypted-carried"); c != 0 {
		t.Fatalf("monopoly block still carried %v encrypted", c)
	}
	if c := r.MustGet("competitive block-crypto", "encrypted-carried"); c < 0.9 {
		t.Fatalf("competition should keep encrypted traffic carried: %v", c)
	}
}

func TestE11BothMechanismsRequired(t *testing.T) {
	r := E11QoSDeployment(testSeed)
	both := r.MustGet("valueFlow=true choice=true", "deploy-share")
	neither := r.MustGet("valueFlow=false choice=false", "deploy-share")
	onlyValue := r.MustGet("valueFlow=true choice=false", "deploy-share")
	onlyChoice := r.MustGet("valueFlow=false choice=true", "deploy-share")
	if both <= neither || both <= onlyValue || both <= onlyChoice {
		t.Fatalf("deployment shares: both=%v neither=%v value=%v choice=%v",
			both, neither, onlyValue, onlyChoice)
	}
	if served := r.MustGet("valueFlow=true choice=true", "qos-served"); served == 0 {
		t.Fatal("no QoS demand served even in the working cell")
	}
}

func TestE12EntryPreventsFreezing(t *testing.T) {
	r := E12ActorChurn(testSeed)
	if f := r.MustGet("entry=0.0", "frozen"); f != 1 {
		t.Fatal("no-entry network should freeze")
	}
	if f := r.MustGet("entry=0.6", "frozen"); f != 0 {
		t.Fatal("high-entry network should not freeze")
	}
	if r.MustGet("entry=0.6", "change-success") <= r.MustGet("entry=0.0", "change-success") {
		t.Fatal("churn should make change easier")
	}
}

func TestE13TruthfulnessGap(t *testing.T) {
	r := E13Mechanisms(testSeed)
	if g := r.MustGet("vickrey-auction", "lying-gain"); g > 1e-9 {
		t.Fatalf("vickrey lying gain = %v", g)
	}
	if g := r.MustGet("first-price-auction", "lying-gain"); g <= 0 {
		t.Fatal("first-price should reward lying")
	}
	// Conflict cycles, coordination converges.
	if c := r.MustGet("matching-pennies", "br-converges"); c != 0 {
		t.Fatal("matching pennies should cycle")
	}
	if c := r.MustGet("stag-hunt", "br-converges"); c != 1 {
		t.Fatal("stag hunt should converge")
	}
}

func TestE14OverlayRestoresReachability(t *testing.T) {
	r := E14Overlay(testSeed)
	for _, frac := range []string{"block=20%", "block=40%"} {
		under := r.MustGet("underlay-only "+frac, "reachability")
		over := r.MustGet("with-overlay "+frac, "reachability")
		if over <= under {
			t.Fatalf("%s: overlay reachability %v should exceed underlay %v", frac, over, under)
		}
	}
	if b := r.MustGet("with-overlay block=40%", "uncompensated-bytes"); b <= 0 {
		t.Fatal("overlay should create uncompensated transit")
	}
	if b := r.MustGet("underlay-only block=40%", "uncompensated-bytes"); b != 0 {
		t.Fatal("underlay-only should have no relayed bytes")
	}
}

func TestE15MulticastTipping(t *testing.T) {
	r := E15Multicast(testSeed)
	if s := r.MustGet("no-value-flow seed=10%", "final-deploy-share"); s > 0.01 {
		t.Fatalf("unfunded multicast share = %v", s)
	}
	if s := r.MustGet("value-flow seed=10%", "final-deploy-share"); s > 0.01 {
		t.Fatalf("below-tipping-point multicast share = %v, should die", s)
	}
	if s := r.MustGet("value-flow seed=75%", "final-deploy-share"); s < 0.99 {
		t.Fatalf("past-tipping-point share = %v, should take off", s)
	}
}

func TestE16PathVectorHidesChoices(t *testing.T) {
	r := E16Visibility(testSeed)
	if r.MustGet("link-state", "reasons-visible") != 1 || r.MustGet("path-vector", "reasons-visible") != 0 {
		t.Fatal("reasons visibility wrong")
	}
	if r.MustGet("link-state", "change-observable") != 1 {
		t.Fatal("link-state changes should be globally observable")
	}
	if o := r.MustGet("path-vector", "change-observable"); o >= 0.5 {
		t.Fatalf("path-vector change observability = %v, should be small", o)
	}
}

func TestE17FairQueueingBoundsCheaters(t *testing.T) {
	r := E17Congestion(testSeed)
	fifoShare := r.MustGet("shared-fifo cheaters=3", "cheater-share")
	fqShare := r.MustGet("fair-queue cheaters=3", "cheater-share")
	if fifoShare < 0.6 {
		t.Fatalf("FIFO cheater share = %v, cheaters should dominate", fifoShare)
	}
	if fqShare >= fifoShare/1.5 {
		t.Fatalf("FQ share %v should be well below FIFO %v", fqShare, fifoShare)
	}
	// Compliant goodput collapse on FIFO, protection under FQ.
	if r.MustGet("shared-fifo cheaters=3", "compliant-goodput") >= r.MustGet("fair-queue cheaters=3", "compliant-goodput") {
		t.Fatal("fair queueing should protect compliant flows")
	}
	// With no cheaters both disciplines are fair.
	if j := r.MustGet("shared-fifo cheaters=0", "jain"); j < 0.95 {
		t.Fatalf("clean FIFO Jain = %v", j)
	}
}

func TestE18RobustFloodingContainsLiars(t *testing.T) {
	r := E18Byzantine(testSeed)
	trusting := r.MustGet("trust-all liars=2", "delivery")
	robust := r.MustGet("signed-two-sided liars=2", "delivery")
	if robust <= trusting {
		t.Fatalf("robust delivery %v should beat trusting %v under attack", robust, trusting)
	}
	if a := r.MustGet("trust-all liars=2", "attracted-to-liar"); a == 0 {
		t.Fatal("liars attracted nothing under trusting flooding")
	}
	if a := r.MustGet("signed-two-sided liars=2", "attracted-to-liar"); a >= r.MustGet("trust-all liars=2", "attracted-to-liar") {
		t.Fatal("attestation should reduce attraction")
	}
	// Clean network: both modes deliver everything.
	if d := r.MustGet("trust-all liars=0", "delivery"); d < 0.99 {
		t.Fatalf("clean trusting delivery = %v", d)
	}
	if d := r.MustGet("signed-two-sided liars=0", "delivery"); d < 0.99 {
		t.Fatalf("clean robust delivery = %v", d)
	}
}

func TestE19RedirectionAndTunnel(t *testing.T) {
	r := E19MailChoice(testSeed)
	if v := r.MustGet("free-choice", "via-chosen-server"); v < 0.95 {
		t.Fatalf("free choice via chosen = %v", v)
	}
	if v := r.MustGet("isp-redirect", "via-chosen-server"); v != 0 {
		t.Fatalf("redirect via chosen = %v, want 0", v)
	}
	if v := r.MustGet("redirect+tunnel", "via-chosen-server"); v < 0.95 {
		t.Fatalf("tunnel via chosen = %v", v)
	}
	// Spam experienced: redirect worse than choice.
	if r.MustGet("isp-redirect", "inbox-spam-rate") <= r.MustGet("free-choice", "inbox-spam-rate") {
		t.Fatal("redirection to the poor filter should raise inbox spam")
	}
}

func TestE20CoverDistributionDecides(t *testing.T) {
	r := E20Steganography(testSeed)
	zero := r.MustGet("padding zero-cover", "suspicion")
	random := r.MustGet("padding random-cover", "suspicion")
	if zero < 0.9 {
		t.Fatalf("zero-cover suspicion = %v, should be glaring", zero)
	}
	if random > 0.2 {
		t.Fatalf("random-cover suspicion = %v, should be invisible", random)
	}
	// Timing channel degrades with jitter.
	if r.MustGet("timing jitter=4.000ms", "ber") <= r.MustGet("timing jitter=200.000us", "ber") {
		t.Fatal("jitter should raise BER")
	}
	// The detection game is pure conflict: no pure equilibrium.
	if pure := r.MustGet("detection-game", "suspicion"); pure != 0 {
		t.Fatalf("detection game has %v pure equilibria", pure)
	}
}

func TestE21EndToEndCompletesEverywhere(t *testing.T) {
	r := E21EndToEndReliability(testSeed)
	for _, row := range r.Rows {
		if row.Values[0] != 1 {
			t.Fatalf("%s did not complete", row.Label)
		}
	}
	// Link ARQ reduces end-to-end retransmissions at high loss.
	if r.MustGet("hop-by-hop+e2e loss=40%", "e2e-retx") >= r.MustGet("e2e-only loss=40%", "e2e-retx") {
		t.Fatal("link ARQ should cut e2e retransmissions")
	}
	// And it performs local work to do so.
	if r.MustGet("hop-by-hop+e2e loss=40%", "local-resends") == 0 {
		t.Fatal("no local resends recorded")
	}
	// The e2e-only design does no in-network work at all.
	if r.MustGet("e2e-only loss=40%", "local-resends") != 0 {
		t.Fatal("e2e-only design shows local resends")
	}
}

func TestE22FiberDomains(t *testing.T) {
	r := E22FiberSharing(testSeed)
	// Enforcement: the cheater is near its 250 entitlement either way.
	if v := r.MustGet("tdm cheater", "cheater-got"); v > 300 {
		t.Fatalf("tdm cheater got %v", v)
	}
	if v := r.MustGet("wdm cheater", "cheater-got"); v != 250 {
		t.Fatalf("wdm cheater got %v", v)
	}
	// Efficiency: TDM backfills idle capacity, WDM wastes it.
	if r.MustGet("tdm idle-tenant", "total-delivered") <= r.MustGet("wdm idle-tenant", "total-delivered") {
		t.Fatal("TDM should beat WDM with an idle tenant")
	}
	// Fault isolation: WDM's blast radius is one tenant.
	if r.MustGet("wdm entitled", "blast-radius") != 1 || r.MustGet("tdm entitled", "blast-radius") != 3 {
		t.Fatal("blast radii wrong")
	}
	// Honest tenants never starved in any scenario.
	for _, row := range r.Rows {
		if row.Values[2] <= 0 {
			t.Fatalf("%s: honest-min %v", row.Label, row.Values[2])
		}
	}
}

func TestE23MechanismBoundsPolicy(t *testing.T) {
	r := E23PolicyMechanism(testSeed)
	// Coverage grows with vocabulary...
	if r.MustGet("ports-only", "expressible") >= r.MustGet("packet-fields", "expressible") {
		t.Fatal("richer vocabulary should express more")
	}
	if r.MustGet("packet-fields", "expressible") >= r.MustGet("packet+identity", "expressible") {
		t.Fatal("identity attributes should express more")
	}
	// ...but never reaches 1: some tussle is always outside.
	if r.MustGet("packet+identity", "expressible") >= 1 {
		t.Fatal("no packet ontology should express content/intent policies")
	}
	if r.MustGet("packet+identity", "residual") < 3 {
		t.Fatal("the out-of-ontology catalogue entries should remain residual")
	}
}

func TestE24DelegationProtectsWeakHosts(t *testing.T) {
	r := E24DelegatedControls(testSeed)
	endNode := r.MustGet("end-node patched=30%", "compromised")
	delegated := r.MustGet("delegated-fw patched=30%", "compromised")
	if delegated >= endNode {
		t.Fatalf("delegated fw compromised %v vs end-node %v", delegated, endNode)
	}
	if delegated != 0 {
		t.Fatalf("delegated firewall leaked %v attacks", delegated)
	}
	// Good patching narrows the gap but end-node alone still leaks.
	if r.MustGet("end-node patched=90%", "compromised") == 0 {
		t.Fatal("variable host quality should still leak under end-node-only controls")
	}
	// Legitimate traffic is never collateral damage in any design: one
	// legitimate interaction per host, all served.
	for _, row := range r.Rows {
		if row.Values[2] != 200 {
			t.Fatalf("%s: legit served %v of 200", row.Label, row.Values[2])
		}
	}
}

func TestE25MultihomingSurvivesUpstreamFailure(t *testing.T) {
	r := E25Multihoming(testSeed)
	if r.MustGet("single-homed", "delivery-healthy") != 1 || r.MustGet("dual-homed", "delivery-healthy") != 1 {
		t.Fatal("healthy reachability wrong")
	}
	if r.MustGet("single-homed", "delivery-failed-upstream") != 0 {
		t.Fatal("single-homed host should be cut off")
	}
	if r.MustGet("dual-homed", "delivery-failed-upstream") != 1 {
		t.Fatal("dual-homed host should survive")
	}
}

func TestE26IntegratedSchemeAvoidsDistortion(t *testing.T) {
	r := E26OverlayVsIntegrated(testSeed)
	slow := r.MustGet("provider-default", "latency-ms")
	if r.MustGet("overlay", "latency-ms") >= slow || r.MustGet("srcroute+payment", "latency-ms") >= slow {
		t.Fatal("both schemes should beat the provider default latency")
	}
	if r.MustGet("overlay", "user-choice") < 0.99 || r.MustGet("srcroute+payment", "user-choice") < 0.99 {
		t.Fatal("both schemes should exercise the user's choice")
	}
	if r.MustGet("overlay", "provider-revenue") != 0 {
		t.Fatal("overlay should pay providers nothing")
	}
	if r.MustGet("srcroute+payment", "provider-revenue") <= 0 {
		t.Fatal("integrated scheme should compensate providers")
	}
	if r.MustGet("overlay", "uncompensated-bytes") <= 0 {
		t.Fatal("overlay should show uncompensated transit")
	}
	if r.MustGet("srcroute+payment", "uncompensated-bytes") != 0 {
		t.Fatal("integrated scheme should relay nothing uncompensated")
	}
}

func TestE27MultihomingAndOverlayBeatSingleHomed(t *testing.T) {
	r := E27Availability(testSeed)
	single := r.MustGet("single-homed", "availability")
	multi := r.MustGet("multi-address", "availability")
	over := r.MustGet("overlay-failover", "availability")
	if !(single < over && over < multi) {
		t.Fatalf("availability ordering wrong: single=%v overlay=%v multi=%v", single, over, multi)
	}
	if multi < 0.95 {
		t.Fatalf("multi-address should ride out every fault, got %v", multi)
	}
	if r.MustGet("single-homed", "ls-reconv-ms") <= 0 {
		t.Fatal("link-state shadow instance measured no reconvergence time")
	}
	if r.MustGet("single-homed", "route-churn") <= 0 {
		t.Fatal("path-vector reconvergence produced no route churn")
	}
}

func TestE28GoldSurvivesDegradationAndAttestationRejectsBurst(t *testing.T) {
	r := E28Degradation(testSeed)
	for _, mode := range []string{"trust-all", "signed-two-sided"} {
		if r.MustGet(mode+" healthy", "delivery-gold") != 1 || r.MustGet(mode+" healthy", "delivery-be") != 1 {
			t.Fatalf("%s: healthy phase should deliver everything", mode)
		}
		if r.MustGet(mode+" healed", "delivery-gold") != 1 || r.MustGet(mode+" healed", "delivery-be") != 1 {
			t.Fatalf("%s: healed phase should fully recover", mode)
		}
		gold := r.MustGet(mode+" degraded", "delivery-gold")
		be := r.MustGet(mode+" degraded", "delivery-be")
		if gold <= be {
			t.Fatalf("%s: shedding should protect gold over best-effort (gold=%v be=%v)", mode, gold, be)
		}
		if r.MustGet(mode+" degraded", "shed-drops") <= 0 {
			t.Fatalf("%s: shed plane never engaged", mode)
		}
	}
	if ta, s2 := r.MustGet("trust-all degraded", "delivery-gold"), r.MustGet("signed-two-sided degraded", "delivery-gold"); ta >= s2 {
		t.Fatalf("byzantine burst should cost the trusting plane delivery: trust-all=%v signed=%v", ta, s2)
	}
	if r.MustGet("signed-two-sided degraded", "ads-rejected") <= 0 {
		t.Fatal("attestation should reject the byzantine burst")
	}
	if r.MustGet("trust-all degraded", "ads-rejected") != 0 {
		t.Fatal("trust-all must swallow the burst")
	}
}

func TestE29EveryStrategyBeatsSinglePath(t *testing.T) {
	r := E29MultipathAvailability(testSeed)
	single := r.MustGet("single-path", "availability")
	if single <= 0 || single >= 1 {
		t.Fatalf("single-path availability %v should be partial under the fault schedule", single)
	}
	for _, strat := range multipath.Strategies() {
		a := r.MustGet(strat.Name(), "availability")
		if a <= single {
			t.Fatalf("%s availability %v not strictly above single-path %v", strat.Name(), a, single)
		}
		// Goodput is not the criterion (latency-weighted deliberately
		// keeps favoring the fast path that keeps dying), but no
		// strategy should pay more than a small goodput tax for its
		// availability.
		if r.MustGet(strat.Name(), "delivered-kb") < 0.9*r.MustGet("single-path", "delivered-kb") {
			t.Fatalf("%s goodput collapsed relative to single-path", strat.Name())
		}
		if r.MustGet(strat.Name(), "demotions") <= 0 {
			t.Fatalf("%s never demoted a path under the fault schedule", strat.Name())
		}
	}
}

func TestE30PartitionCompletesIntactOnSurvivors(t *testing.T) {
	r := E30PartitionReconvergence(testSeed)
	for _, strat := range multipath.Strategies() {
		name := strat.Name()
		if r.MustGet(name, "done") != 1 {
			t.Fatalf("%s did not complete across the partition", name)
		}
		if r.MustGet(name, "stream-intact") != 1 {
			t.Fatalf("%s delivered a corrupted or duplicated stream", name)
		}
		reconv := r.MustGet(name, "reconv-ms")
		if reconv <= 0 || reconv > 1000 {
			t.Fatalf("%s reconvergence %vms implausible", name, reconv)
		}
		if f := r.MustGet(name, "fairness"); f <= 0.5 || f > 1 {
			t.Fatalf("%s survivor fairness %v out of range", name, f)
		}
	}
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	results := All(testSeed)
	if len(results) != 30 {
		t.Fatalf("All returned %d results", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if len(r.Rows) == 0 || r.Finding == "" || r.Claim == "" {
			t.Fatalf("%s incomplete: rows=%d finding=%q", r.ID, len(r.Rows), r.Finding)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		if !strings.Contains(buf.String(), r.ID) || !strings.Contains(buf.String(), "finding:") {
			t.Fatalf("%s render malformed:\n%s", r.ID, buf.String())
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Same seed, same tables — the reproducibility guarantee.
	a := E1NamingIsolation(7)
	b := E1NamingIsolation(7)
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a.Rows[i].Values[j], b.Rows[i].Values[j])
			}
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "T", Columns: []string{"a", "b"}}
	r.AddRow("x", 1, 2)
	if v, ok := r.Get("x", "b"); !ok || v != 2 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := r.Get("x", "zzz"); ok {
		t.Fatal("missing column found")
	}
	if _, ok := r.Get("zzz", "a"); ok {
		t.Fatal("missing row found")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddRow arity mismatch should panic")
			}
		}()
		r.AddRow("bad", 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet miss should panic")
			}
		}()
		r.MustGet("zzz", "a")
	}()
}
