package packet

import (
	"testing"
	"testing/quick"
)

func serializeSR(t *testing.T, ttl uint8, hops []Addr, ptr uint8) []byte {
	t.Helper()
	tip := &TIP{TTL: ttl, Proto: LayerTypeRaw, Src: MakeAddr(1, 1), Dst: MakeAddr(9, 9)}
	if hops != nil {
		tip.SourceRoute = &SourceRouteOption{Ptr: ptr, Hops: hops}
	}
	data, err := Serialize(tip, &Raw{Data: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func decodeOK(t *testing.T, data []byte) *TIP {
	t.Helper()
	var tip TIP
	if err := tip.DecodeFrom(data); err != nil {
		t.Fatalf("decode after patch: %v", err)
	}
	return &tip
}

func TestDecrementTTLPreservesValidity(t *testing.T) {
	data := serializeSR(t, 5, nil, 0)
	for want := uint8(4); want > 0; want-- {
		ttl, err := DecrementTTL(data)
		if err != nil || ttl != want {
			t.Fatalf("DecrementTTL = %d, %v; want %d", ttl, err, want)
		}
		tip := decodeOK(t, data) // checksum must still verify
		if tip.TTL != want {
			t.Fatalf("decoded TTL = %d, want %d", tip.TTL, want)
		}
	}
	// At TTL 0 further decrements report 0 without wrapping.
	if ttl, err := DecrementTTL(data); err != nil || ttl != 0 {
		t.Fatalf("TTL floor = %d, %v", ttl, err)
	}
	if ttl, err := DecrementTTL(data); err != nil || ttl != 0 {
		t.Fatalf("TTL stays 0 = %d, %v", ttl, err)
	}
}

func TestDecrementTTLErrors(t *testing.T) {
	if _, err := DecrementTTL([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestAdvanceSourceRouteWalk(t *testing.T) {
	hops := []Addr{MakeAddr(3, 0), MakeAddr(5, 0), MakeAddr(7, 0)}
	data := serializeSR(t, 9, hops, 0)

	if next, ok := PeekSourceRoute(data); !ok || next != hops[0] {
		t.Fatalf("peek 0 = %v, %v", next, ok)
	}
	next, ok, err := AdvanceSourceRoute(data)
	if err != nil || !ok || next != hops[1] {
		t.Fatalf("advance 1 = %v, %v, %v", next, ok, err)
	}
	decodeOK(t, data) // checksum repaired
	next, ok, err = AdvanceSourceRoute(data)
	if err != nil || !ok || next != hops[2] {
		t.Fatalf("advance 2 = %v, %v, %v", next, ok, err)
	}
	// Last advance exhausts the route: ok with AddrNone.
	next, ok, err = AdvanceSourceRoute(data)
	if err != nil || !ok || next != AddrNone {
		t.Fatalf("advance 3 = %v, %v, %v", next, ok, err)
	}
	// Exhausted: no more waypoints.
	if _, ok := PeekSourceRoute(data); ok {
		t.Fatal("peek on exhausted route succeeded")
	}
	if next, ok, err := AdvanceSourceRoute(data); err != nil || ok || next != AddrNone {
		t.Fatalf("advance exhausted = %v, %v, %v", next, ok, err)
	}
	// The decoded option agrees.
	tip := decodeOK(t, data)
	if tip.SourceRoute == nil || !tip.SourceRoute.Exhausted() {
		t.Fatalf("decoded route = %+v", tip.SourceRoute)
	}
}

func TestAdvanceSourceRouteAbsent(t *testing.T) {
	data := serializeSR(t, 9, nil, 0)
	if next, ok, err := AdvanceSourceRoute(data); err != nil || ok || next != AddrNone {
		t.Fatalf("no-option advance = %v, %v, %v", next, ok, err)
	}
	if _, ok := PeekSourceRoute(data); ok {
		t.Fatal("peek without option succeeded")
	}
}

func TestPatchFunctionsNeverPanicQuick(t *testing.T) {
	f := func(data []byte) bool {
		cp := make([]byte, len(data))
		copy(cp, data)
		_, _ = DecrementTTL(cp)
		_, _, _ = AdvanceSourceRoute(cp)
		_, _ = PeekSourceRoute(cp)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPatchedPacketAlwaysReverifiesQuick(t *testing.T) {
	f := func(ttl uint8, nHopsRaw uint8, advances uint8) bool {
		if ttl == 0 {
			ttl = 1
		}
		nHops := int(nHopsRaw%5) + 1
		hops := make([]Addr, nHops)
		for i := range hops {
			hops[i] = MakeAddr(uint16(i+2), 0)
		}
		tip := &TIP{TTL: ttl, Proto: LayerTypeRaw, Src: 1, Dst: 2,
			SourceRoute: &SourceRouteOption{Hops: hops}}
		data, err := Serialize(tip, &Raw{Data: []byte("x")})
		if err != nil {
			return false
		}
		for i := 0; i < int(advances%8); i++ {
			if _, _, err := AdvanceSourceRoute(data); err != nil {
				return false
			}
			if _, err := DecrementTTL(data); err != nil {
				return false
			}
		}
		var check TIP
		return check.DecodeFrom(data) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSetDstPreservesValidity(t *testing.T) {
	data := serializeSR(t, 8, nil, 0)
	for _, dst := range []Addr{MakeAddr(2, 7), MakeAddr(0, 1), Addr(0xdeadbeef)} {
		if err := SetDst(data, dst); err != nil {
			t.Fatalf("SetDst(%v): %v", dst, err)
		}
		tip := decodeOK(t, data) // checksum must still verify
		if tip.Dst != dst {
			t.Fatalf("decoded Dst = %v, want %v", tip.Dst, dst)
		}
		if tip.TTL != 8 || tip.Src != MakeAddr(1, 1) {
			t.Fatalf("SetDst disturbed other fields: %+v", tip)
		}
	}
}

func TestSetDstWithOptionsAndErrors(t *testing.T) {
	// Options after the fixed header must survive a retarget.
	hops := []Addr{MakeAddr(3, 0), MakeAddr(5, 0)}
	data := serializeSR(t, 9, hops, 0)
	if err := SetDst(data, MakeAddr(4, 4)); err != nil {
		t.Fatal(err)
	}
	tip := decodeOK(t, data)
	if tip.Dst != MakeAddr(4, 4) {
		t.Fatalf("Dst = %v", tip.Dst)
	}
	if tip.SourceRoute == nil || len(tip.SourceRoute.Hops) != 2 {
		t.Fatalf("source route lost: %+v", tip.SourceRoute)
	}
	if err := SetDst([]byte{1, 2, 3}, MakeAddr(1, 1)); err == nil {
		t.Fatal("short buffer accepted")
	}
}
