package overlay

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestRouteDirectWhenAvailable(t *testing.T) {
	m := NewMesh([]topology.NodeID{1, 2, 3})
	m.Observe(1, 3, 10*sim.Millisecond)
	m.Observe(1, 2, 5*sim.Millisecond)
	m.Observe(2, 3, 20*sim.Millisecond)
	p := m.Route(1, 3)
	if len(p) != 2 || p[0] != 1 || p[1] != 3 {
		t.Fatalf("route = %v, want direct", p)
	}
}

func TestRouteRelaysAroundLoss(t *testing.T) {
	m := NewMesh([]topology.NodeID{1, 2, 3})
	m.Observe(1, 2, 5*sim.Millisecond)
	m.Observe(2, 3, 5*sim.Millisecond)
	// 1->3 direct is unusable (never observed / lost).
	p := m.Route(1, 3)
	if len(p) != 3 || p[1] != 2 {
		t.Fatalf("route = %v, want relay via 2", p)
	}
}

func TestRouteRelaysWhenFaster(t *testing.T) {
	m := NewMesh([]topology.NodeID{1, 2, 3})
	m.Observe(1, 3, 50*sim.Millisecond) // congested direct path
	m.Observe(1, 2, 5*sim.Millisecond)
	m.Observe(2, 3, 5*sim.Millisecond)
	p := m.Route(1, 3)
	if len(p) != 3 || p[1] != 2 {
		t.Fatalf("route = %v, want faster relay via 2", p)
	}
}

func TestRouteUnreachable(t *testing.T) {
	m := NewMesh([]topology.NodeID{1, 2, 3})
	m.Observe(1, 2, sim.Millisecond)
	if p := m.Route(1, 3); p != nil {
		t.Fatalf("route = %v, want nil", p)
	}
}

func TestObserveLoss(t *testing.T) {
	m := NewMesh([]topology.NodeID{1, 2})
	m.Observe(1, 2, sim.Millisecond)
	if _, ok := m.Direct(1, 2); !ok {
		t.Fatal("direct should exist")
	}
	m.ObserveLoss(1, 2)
	if _, ok := m.Direct(1, 2); ok {
		t.Fatal("direct should be gone after loss")
	}
}

// TestRelayEndToEnd exercises the full encapsulation path in the
// simulator: node 2 blocks traffic 1->4 (a restrictive underlay), and the
// overlay relays via member 3 to restore connectivity — the §V-A4 tussle
// tool in action.
func TestRelayEndToEnd(t *testing.T) {
	sched := sim.NewScheduler()
	g := topology.NewGraph()
	for i := 1; i <= 4; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	// 1-2-4 and 1-3-4.
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(2, 4, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(1, 3, topology.PeerOf, sim.Millisecond, 2)
	g.AddLink(3, 4, topology.PeerOf, sim.Millisecond, 2)
	n := netsim.New(sched, g)
	routes := map[topology.NodeID]map[uint16]topology.NodeID{
		1: {2: 2, 3: 3, 4: 2}, // underlay prefers 1-2-4
		2: {1: 1, 4: 4, 3: 1},
		3: {1: 1, 4: 4, 2: 1},
		4: {2: 2, 3: 3, 1: 2},
	}
	for id, tbl := range routes {
		tbl := tbl
		n.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			nh, ok := tbl[dst.Provider()]
			return nh, ok
		}
	}
	// Node 2 drops 1->4 traffic (policy restriction).
	n.Node(2).AddMiddlebox(blocker{})

	inner, err := packet.Serialize(
		&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1)},
		&packet.Raw{Data: []byte("relayed")})
	if err != nil {
		t.Fatal(err)
	}

	// Direct attempt dies at node 2.
	direct := make([]byte, len(inner))
	copy(direct, inner)
	trDirect := n.Send(1, direct)
	sched.Run()
	if trDirect.Delivered {
		t.Fatal("direct path should be blocked")
	}

	// Overlay relays via member 3.
	m := NewMesh([]topology.NodeID{1, 3, 4})
	m.InstallRelay(n, 3)
	var got []byte
	n.Node(4).Deliver = func(nd *netsim.Node, tr *netsim.Trace, data []byte) { got = data }
	enc, err := Encapsulate(packet.MakeAddr(1, 1), packet.MakeAddr(3, 0), 16, inner)
	if err != nil {
		t.Fatal(err)
	}
	n.Send(1, enc)
	sched.Run()
	if got == nil {
		t.Fatal("relayed packet not delivered")
	}
	p := packet.NewPacket(got, packet.LayerTypeTIP)
	raw, _ := p.Layer(packet.LayerTypeRaw).(*packet.Raw)
	if raw == nil || string(raw.Data) != "relayed" {
		t.Fatalf("inner payload = %v", p)
	}
	if m.UncompensatedTransit() == 0 {
		t.Fatal("relayed bytes should be accounted as uncompensated transit")
	}
}

// blocker drops packets from provider 1 to provider 4.
type blocker struct{}

func (blocker) Name() string { return "policy-block" }
func (blocker) Silent() bool { return false }
func (blocker) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		return nil, netsim.Accept
	}
	if tip.Src.Provider() == 1 && tip.Dst.Provider() == 4 {
		return nil, netsim.Drop
	}
	return nil, netsim.Accept
}

func TestRelayPassthroughNonTunnel(t *testing.T) {
	sched := sim.NewScheduler()
	g := topology.Linear(2, sim.Millisecond)
	n := netsim.New(sched, g)
	n.Node(1).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) { return 2, true }
	m := NewMesh([]topology.NodeID{2})
	delivered := false
	n.Node(2).Deliver = func(nd *netsim.Node, tr *netsim.Trace, data []byte) { delivered = true }
	m.InstallRelay(n, 2) // wraps the existing handler
	data, err := packet.Serialize(
		&packet.TIP{TTL: 4, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(2, 1)},
		&packet.Raw{Data: []byte("plain")})
	if err != nil {
		t.Fatal(err)
	}
	n.Send(1, data)
	sched.Run()
	if !delivered {
		t.Fatal("non-tunnel traffic should fall through to the original handler")
	}
	if m.RelayedBytes != 0 {
		t.Fatal("plain traffic wrongly counted as relayed")
	}
}
