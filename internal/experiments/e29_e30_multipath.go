package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/transport/multipath"
)

// e30PlanJSON is E30's fault schedule: a mid-transfer partition of
// provider 2 with no heal, so completion is attributable to the
// surviving paths alone.
const e30PlanJSON = `{
  "name": "e30-partition",
  "seed": 30,
  "events": [
    {"at_ms": 600, "kind": "partition", "group": [2]}
  ]
}`

// mpTopology builds the multipath experiment network: sender stub 8 and
// receiver stub 9 each homed on three peered transits, giving exactly
// three link-disjoint paths. Provider 2 is the cheapest attachment on
// both sides — the path any single-homed arrangement would pin — and it
// is exactly the provider the E27 schedule crashes and partitions: the
// tussle case where the incumbent choice is the one that fails.
func mpTopology() *topology.Graph {
	g := topology.NewGraph()
	for i := 1; i <= 3; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddNode(8, topology.Stub, 2)
	g.AddNode(9, topology.Stub, 2)
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(2, 3, topology.PeerOf, sim.Millisecond, 1)
	for i := 1; i <= 3; i++ {
		g.AddLink(8, topology.NodeID(i), topology.CustomerOf, sim.Millisecond, 1)
	}
	g.AddLink(9, 1, topology.CustomerOf, 3*sim.Millisecond, 1)
	g.AddLink(9, 2, topology.CustomerOf, sim.Millisecond, 1)
	g.AddLink(9, 3, topology.CustomerOf, 2*sim.Millisecond, 1)
	return g
}

// mpNetwork instantiates the topology with every node honoring source
// routes (multipath is user-directed routing) plus a static forwarding
// table pinned through provider 2 — the single-path baseline's only
// route, and the fallback for unrouted traffic.
func mpNetwork(env *obs.Env) (*sim.Scheduler, *netsim.Network) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, mpTopology())
	if env != nil {
		sched.AttachObs(env.Registry())
		net.AttachObs(env.Registry(), env.Tracer())
	}
	static := map[topology.NodeID]map[uint16]topology.NodeID{
		8: {9: 2, 8: 8},
		9: {8: 2, 9: 9},
		1: {8: 8, 9: 9},
		2: {8: 8, 9: 9},
		3: {8: 8, 9: 9},
	}
	for id, table := range static {
		table := table
		nd := net.Node(id)
		nd.HonorSourceRoutes = true
		nd.Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			next, ok := table[dst.Provider()]
			return next, ok
		}
	}
	return sched, net
}

// mpTransportConfig and mpMultipathConfig keep the reliability knobs
// identical across the baseline and every strategy, so E29's comparison
// isolates path choice.
func mpTransportConfig(seed uint64) transport.Config {
	return transport.Config{Window: 8, SegmentSize: 512,
		RTO: 30 * sim.Millisecond, MaxRetries: 40,
		Backoff: 2, MaxRTO: 250 * sim.Millisecond, JitterFrac: 0.1, Seed: seed,
		ContentType: packet.LayerTypeRaw}
}

func mpMultipathConfig(seed uint64) multipath.Config {
	cfg := multipath.DefaultConfig()
	cfg.Window = 8
	cfg.SegmentSize = 512
	cfg.RTO = 30 * sim.Millisecond
	cfg.MaxRTO = 250 * sim.Millisecond
	cfg.MaxRetries = 40
	cfg.ProbeEvery = 100 * sim.Millisecond
	cfg.MaxProbes = 20
	cfg.Seed = seed
	return cfg
}

func mpPayload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*13 + i/509)
	}
	return data
}

// E29MultipathAvailability compares delivered-bytes availability and
// goodput of single-path transport against every multipath strategy
// under the standard E27 fault schedule. The paper's "design for
// choice" claim (§IV-B, §V-A4) is that a user who can redirect traffic
// in real time routes around a misbehaving or failed provider; here the
// provider that fails is the one every cost-minimizing single-path
// arrangement would have picked, and only the multipath sender keeps
// bytes flowing through the crash and the partition.
func E29MultipathAvailability(seed uint64) *Result { return e29MultipathAvailability(seed, nil) }

func e29MultipathAvailability(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E29",
		Title: "multipath strategy availability under the standard fault schedule",
		Claim: "§IV-B/§V-A4: design for choice — a sender striping over link-disjoint source routes keeps delivering while its best provider crashes and partitions",
		Columns: []string{
			"availability", "delivered-kb", "demotions", "promotions",
		},
	}
	const horizon = 2000 * sim.Millisecond
	const bin = 50 * sim.Millisecond
	payload := mpPayload(2 << 20) // sized to outlast the horizon in every configuration

	run := func(label string, strat multipath.Strategy) {
		sched, net := mpNetwork(env)
		eng := chaos.New(net, seed)
		if env != nil {
			eng.AttachObs(env.Registry())
		}
		plan, err := chaos.ParsePlan([]byte(e27PlanJSON))
		if err != nil {
			panic(err)
		}
		if err := eng.Schedule(plan); err != nil {
			panic(err)
		}

		var delivered func() int
		var demotions, promotions func() int
		if strat == nil {
			r := transport.InstallReceiver(net, 9, 7100)
			s := transport.NewSender(net, 8, packet.MakeAddr(9, 1), 7100, payload, mpTransportConfig(seed))
			if env != nil {
				s.AttachObs(env.Registry())
			}
			s.Start()
			delivered = func() int { return len(r.Data) }
			demotions = func() int { return 0 }
			promotions = func() int { return 0 }
		} else {
			r := multipath.InstallReceiver(net, 9, 7100)
			s := multipath.NewSender(net, strat, 8, 9, 7100, payload, mpMultipathConfig(seed))
			if env != nil {
				s.AttachObs(env.Registry())
			}
			s.Start()
			delivered = func() int { return len(r.Data) }
			demotions = func() int { return s.Stats().Demotions }
			promotions = func() int { return s.Stats().Promotions }
		}

		// Delivered-bytes availability: the fraction of 50ms bins in
		// which the receiver's in-order stream advanced.
		bins, up, last := 0, 0, 0
		var deliveredAtHorizon int
		for t := bin; t <= horizon; t += bin {
			bins++
			sched.At(t, func() {
				if d := delivered(); d > last {
					up++
					last = d
				}
				deliveredAtHorizon = delivered() // final bin's write survives
			})
		}
		sched.RunUntil(horizon)
		res.AddRow(label,
			float64(up)/float64(bins),
			float64(deliveredAtHorizon)/1024,
			float64(demotions()),
			float64(promotions()))
	}

	run("single-path", nil)
	for _, strat := range multipath.Strategies() {
		run(strat.Name(), strat)
	}

	worst, worstName := 2.0, ""
	for _, strat := range multipath.Strategies() {
		if a := res.MustGet(strat.Name(), "availability"); a < worst {
			worst, worstName = a, strat.Name()
		}
	}
	res.Finding = fmt.Sprintf(
		"the single-path transfer is up %.0f%% of the schedule while every multipath strategy stays ≥ %.0f%% (worst: %s); striping over link-disjoint source routes turns the provider crash and partition from outages into demote/promote events",
		res.MustGet("single-path", "availability")*100, worst*100, worstName)
	return res
}

// E30PartitionReconvergence measures what happens inside the multipath
// sender when a mid-transfer partition permanently removes its best
// path: how fast the dead path is demoted (reconvergence), how evenly
// the survivors share the rest of the stream (Jain fairness over
// per-path acknowledged bytes), and whether the stream completes intact
// — the zero-duplicate-delivery bar the invariant checker holds
// transports to.
func E30PartitionReconvergence(seed uint64) *Result { return e30PartitionReconvergence(seed, nil) }

func e30PartitionReconvergence(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E30",
		Title: "reconvergence and fairness after a mid-transfer partition",
		Claim: "§V-A4: when a provider is partitioned away mid-stream, per-path failure detection migrates the transfer to the surviving paths and finishes it intact",
		Columns: []string{
			"done", "reconv-ms", "fairness", "stream-intact",
		},
	}
	const partitionAt = 600 * sim.Millisecond
	payload := mpPayload(768 << 10)

	for _, strat := range multipath.Strategies() {
		sched, net := mpNetwork(env)
		eng := chaos.New(net, seed)
		if env != nil {
			eng.AttachObs(env.Registry())
		}
		plan, err := chaos.ParsePlan([]byte(e30PlanJSON))
		if err != nil {
			panic(err)
		}
		if err := eng.Schedule(plan); err != nil {
			panic(err)
		}
		r := multipath.InstallReceiver(net, 9, 7200)
		s := multipath.NewSender(net, strat, 8, 9, 7200, payload, mpMultipathConfig(seed))
		if env != nil {
			s.AttachObs(env.Registry())
		}
		s.Start()
		sched.Run()

		st := s.Stats()
		paths := s.Paths()
		// Reconvergence: the last demotion's lag behind the partition —
		// how long the sender kept trusting a path the fault had killed.
		var reconv sim.Time
		var survivors []multipath.Path
		for _, p := range paths {
			if p.Demotions > 0 && p.LastDemoteAt >= partitionAt {
				if lag := p.LastDemoteAt - partitionAt; lag > reconv {
					reconv = lag
				}
			}
			if p.State == multipath.PathActive {
				survivors = append(survivors, p)
			}
		}
		intact := 0.0
		if bytes.Equal(r.Data, payload) {
			intact = 1
		}
		done := 0.0
		if st.Done {
			done = 1
		}
		res.AddRow(strat.Name(), done,
			float64(reconv)/float64(sim.Millisecond),
			multipath.Fairness(survivors), intact)
	}

	res.Finding = fmt.Sprintf(
		"all strategies finish the stream on the surviving paths with byte-exact delivery; the dead path is demoted within %.0f–%.0fms of the partition, and round-robin striping keeps the survivors' load near-even (Jain %.2f for disjointness-max)",
		minColumn(res, "reconv-ms"), maxColumn(res, "reconv-ms"),
		res.MustGet("disjointness-max", "fairness"))
	return res
}

func minColumn(res *Result, col string) float64 {
	v, first := 0.0, true
	for _, row := range res.Rows {
		if x := res.MustGet(row.Label, col); first || x < v {
			v, first = x, false
		}
	}
	return v
}

func maxColumn(res *Result, col string) float64 {
	v := 0.0
	for _, row := range res.Rows {
		if x := res.MustGet(row.Label, col); x > v {
			v = x
		}
	}
	return v
}
