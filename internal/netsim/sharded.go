package netsim

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file is the sharded simulation core: one logical simulation
// partitioned across K shard networks, each with its own scheduler and
// its own slice of the node state, synchronized by conservative
// lookahead on the minimum cross-shard link latency.
//
// # Why the output is byte-identical at any shard count
//
// Every event in a sharded run carries a deterministic ordering key
// allocated from its origin node in the origin's own execution order
// (see Network.nextKey), and each shard's heap dispatches by (time,
// key). The simulation state is node-partitioned: a node's middleboxes,
// counters, and its outbound directed-link backlogs are written only by
// the shard that owns the node. Fault state (link failures, node
// crashes, impairments) is replicated — FaultAt schedules the same
// mutation on every shard at the same (time, key) — so reads of remote
// fault flags (the "peer-down" check) see identical values everywhere.
// Same-time events on different shards therefore touch disjoint state
// and commute; the only ordering that matters is the per-shard (time,
// key) order, and the keys are a pure function of the simulation, not
// of the partition. Running the K schedulers in lockstep (a global
// (time, key) merge) or in parallel epochs produces the same state.
//
// # Conservative lookahead
//
// A packet crossing shards cannot arrive earlier than the smallest
// cross-shard link latency W after it was sent. The parallel driver
// therefore runs epochs of width W: every shard executes its local
// events in [T, T+W) concurrently, buffering cross-shard arrivals in
// per-sender outboxes; at the epoch barrier the outboxes are drained
// into the destination heaps. Any arrival produced in the epoch lands
// at time >= T+W — never inside the epoch that produced it — so no
// shard ever receives an event in its past.

// arrival is one cross-shard packet handoff buffered at an epoch
// barrier.
type arrival struct {
	f      *flight
	to     topology.NodeID
	arrive sim.Time
	key    uint64
}

// Shard is one partition of a sharded simulation: its own scheduler and
// network (full topology, but it only ever executes the nodes it owns).
type Shard struct {
	ID    int32
	Sched *sim.Scheduler
	Net   *Network
	// out buffers cross-shard arrivals per destination shard during a
	// parallel epoch. Written only by this shard's goroutine.
	out [][]arrival
}

// Sharded is a simulation partitioned across K shards.
type Sharded struct {
	Graph  *topology.Graph
	Part   *topology.Partition
	Shards []*Shard
	// Window is the conservative lookahead (minimum cross-shard link
	// latency); zero when the partition has no cross-shard links (the
	// shards are then fully independent).
	Window sim.Time
	// Parallel selects the epoch-barrier driver (one goroutine per
	// shard per epoch) instead of the sequential lockstep driver. Both
	// produce identical results; lockstep additionally yields a single
	// globally time-ordered event stream, which is what the invariant
	// checker consumes.
	Parallel bool

	hasCross   bool
	inParallel bool
	faultSeq   uint32
}

// faultKeyFlag marks replicated fault events: it is above every
// arrival key (origin node < 2^31 keeps arrival keys below 2^63), so
// faults at time t deterministically run after all arrivals at t.
const faultKeyFlag = uint64(1) << 63

// NewSharded partitions g across k shards (contiguous ranges of the
// ascending NodeID order) and builds one lean keyed network per shard.
// Callers wire routes/middleboxes/delivery on the owning shard's
// network (see Owner) before sending traffic.
func NewSharded(g *topology.Graph, k int) *Sharded {
	// Pre-warm the Graph's lazy neighbor cache: shard goroutines read
	// it concurrently and must never trigger the rebuild.
	for id := range g.Nodes {
		g.Neighbors(id)
		break
	}
	part := topology.PartitionContiguous(g, k)
	s := &Sharded{Graph: g, Part: part}
	s.Window, s.hasCross = part.MinCrossLatency(g)
	s.Shards = make([]*Shard, part.K)
	for i := 0; i < part.K; i++ {
		sched := sim.NewScheduler()
		net := NewLean(sched, g)
		net.keyed = true
		net.shardOf = part.Table()
		net.shardID = int32(i)
		sh := &Shard{ID: int32(i), Sched: sched, Net: net, out: make([][]arrival, part.K)}
		net.handoff = func(f *flight, to topology.NodeID, arrive sim.Time, key uint64) {
			d := s.Part.ShardOf(to)
			if s.inParallel {
				sh.out[d] = append(sh.out[d], arrival{f: f, to: to, arrive: arrive, key: key})
				return
			}
			s.insertArrival(s.Shards[d], arrival{f: f, to: to, arrive: arrive, key: key})
		}
		s.Shards[i] = sh
	}
	return s
}

// insertArrival rebinds a handed-off flight to the destination shard's
// network and schedules it there. Insertion order across arrivals is
// irrelevant: the heap dispatches by (time, key) and keys are unique.
func (s *Sharded) insertArrival(dst *Shard, a arrival) {
	f := a.f
	f.net = dst.Net
	f.node = dst.Net.Node(a.to)
	f.dir = Forwarding
	dst.Sched.AtKeyed(a.arrive, a.key, f.run)
}

// Owner returns the shard network owning node id; routes, middleboxes,
// and delivery handlers for id belong on it.
func (s *Sharded) Owner(id topology.NodeID) *Network {
	return s.Shards[s.Part.ShardOf(id)].Net
}

// Send injects a packet at src on its owning shard and returns the
// live trace (valid to read after the run drains).
func (s *Sharded) Send(src topology.NodeID, data []byte) *Trace {
	return s.Owner(src).Send(src, data)
}

// Inject fire-and-forget sends a packet at src on its owning shard.
func (s *Sharded) Inject(src topology.NodeID, data []byte) {
	s.Owner(src).Inject(src, data)
}

// AtNode schedules fn at time t on src's owning shard, keyed to src.
func (s *Sharded) AtNode(t sim.Time, src topology.NodeID, fn func()) {
	s.Owner(src).AtNode(t, src, fn)
}

// FaultAt schedules a fault mutation at time t on every shard: fn runs
// once per shard against that shard's network, so replicated fault
// state (failures, crashes, impairments) stays identical everywhere.
// All shards use the same flagged key, so the mutation is ordered after
// every packet arrival at time t on every shard, at every shard count.
func (s *Sharded) FaultAt(t sim.Time, fn func(n *Network)) {
	key := faultKeyFlag | uint64(s.faultSeq)
	s.faultSeq++
	for _, sh := range s.Shards {
		net := sh.Net
		sh.Sched.AtKeyed(t, key, func() { fn(net) })
	}
}

// Run drains the simulation: lockstep by default, epoch-parallel when
// Parallel is set.
func (s *Sharded) Run() { s.RunUntil(sim.Time(1<<62 - 1)) }

// RunUntil executes all events with timestamps <= deadline and advances
// every shard clock to deadline.
func (s *Sharded) RunUntil(deadline sim.Time) {
	if s.Parallel && len(s.Shards) > 1 && (!s.hasCross || s.Window > 0) {
		s.runParallel(deadline)
	} else {
		s.runLockstep(deadline)
	}
	for _, sh := range s.Shards {
		if sh.Sched.Now() < deadline && deadline < sim.Time(1<<62-1) {
			sh.Sched.RunUntil(deadline)
		}
	}
}

// runLockstep merges the K shard heaps into one global (time, key)
// dispatch order and executes events one at a time on the owning
// shard's scheduler. Ties across shards (replicated faults share (t,
// key)) break by shard ID; the copies mutate disjoint state, so the
// tie-break does not affect output.
func (s *Sharded) runLockstep(deadline sim.Time) {
	for {
		var best *Shard
		var bat sim.Time
		var bkey uint64
		for _, sh := range s.Shards {
			at, key, ok := sh.Sched.PeekNext()
			if !ok {
				continue
			}
			if best == nil || at < bat || (at == bat && key < bkey) {
				best, bat, bkey = sh, at, key
			}
		}
		if best == nil || bat > deadline {
			return
		}
		best.Sched.Step()
	}
}

// runParallel runs conservative-lookahead epochs: all shards execute
// [T, T+W) concurrently, then a barrier drains cross-shard outboxes.
func (s *Sharded) runParallel(deadline sim.Time) {
	var wg sync.WaitGroup
	for {
		var start sim.Time
		found := false
		for _, sh := range s.Shards {
			if at, _, ok := sh.Sched.PeekNext(); ok && (!found || at < start) {
				start, found = at, true
			}
		}
		if !found || start > deadline {
			return
		}
		// Epoch [start, end): no cross-shard links means one epoch
		// suffices (the shards never interact).
		end := deadline + 1
		if s.hasCross && start+s.Window < end {
			end = start + s.Window
		}
		s.inParallel = true
		wg.Add(len(s.Shards))
		for _, sh := range s.Shards {
			go func(sh *Shard) {
				defer wg.Done()
				sh.Sched.RunUntil(end - 1)
			}(sh)
		}
		wg.Wait()
		s.inParallel = false
		for _, sh := range s.Shards {
			for d, box := range sh.out {
				for _, a := range box {
					s.insertArrival(s.Shards[d], a)
				}
				sh.out[d] = box[:0]
			}
		}
	}
}

// Delivered sums delivered packets across shards.
func (s *Sharded) Delivered() int {
	sum := 0
	for _, sh := range s.Shards {
		sum += sh.Net.Delivered
	}
	return sum
}

// Dropped sums dropped packets across shards.
func (s *Sharded) Dropped() int {
	sum := 0
	for _, sh := range s.Shards {
		sum += sh.Net.Dropped
	}
	return sum
}

// Stats merges the per-shard network counters into one map.
func (s *Sharded) Stats() sim.Counter {
	out := sim.Counter{}
	for _, sh := range s.Shards {
		for k, v := range sh.Net.Stats {
			out[k] += v
		}
	}
	return out
}

// Processed sums events executed across shard schedulers.
func (s *Sharded) Processed() uint64 {
	var sum uint64
	for _, sh := range s.Shards {
		sum += sh.Sched.Processed
	}
	return sum
}

// AttachObs gives every shard its own registry (and optionally a tracer
// sink) and returns the per-shard registries. Merge them with
// MergedObs after the run; Registry.Merge is commutative, so the
// aggregate is shard-count-independent.
func (s *Sharded) AttachObs(mkTracer func(shard int32) *obs.Tracer) []*obs.Registry {
	regs := make([]*obs.Registry, len(s.Shards))
	for i, sh := range s.Shards {
		regs[i] = obs.NewRegistry()
		var tr *obs.Tracer
		if mkTracer != nil {
			tr = mkTracer(sh.ID)
		}
		sh.Net.AttachObs(regs[i], tr)
	}
	return regs
}

// MergedObs merges per-shard registries into one.
func MergedObs(regs []*obs.Registry) *obs.Registry {
	out := obs.NewRegistry()
	for _, r := range regs {
		out.Merge(r)
	}
	return out
}
