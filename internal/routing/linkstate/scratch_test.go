package linkstate

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Repeated SPF calls on one Database reuse scratch state; every call must
// nonetheless return results identical to a fresh database's, including
// after cost changes between calls.
func TestSPFScratchReuseIsStateless(t *testing.T) {
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(3))
	db := NewDatabase(g)
	for round := 0; round < 3; round++ {
		for _, src := range g.NodeIDs() {
			next, dist := db.SPF(src)
			freshNext, freshDist := NewDatabase(g).SPF(src)
			if !reflect.DeepEqual(next, freshNext) || !reflect.DeepEqual(dist, freshDist) {
				t.Fatalf("round %d src %d: reused-scratch SPF diverged from fresh database", round, src)
			}
		}
	}
	// A cost override between calls must be reflected, not masked by
	// stale scratch state.
	ids := g.NodeIDs()
	a := ids[0]
	db.SPF(a)
	for _, nb := range g.Neighbors(a) {
		db.SetCost(a, nb, 1e6)
	}
	_, dist := db.SPF(a)
	fresh := NewDatabase(g)
	for _, nb := range g.Neighbors(a) {
		fresh.SetCost(a, nb, 1e6)
	}
	_, freshDist := fresh.SPF(a)
	if !reflect.DeepEqual(dist, freshDist) {
		t.Fatal("SPF after SetCost diverged from fresh database with same overrides")
	}
}

// Compute (one SPF per node) should not allocate the Dijkstra queue or
// bookkeeping maps per call once scratch has warmed up — only the
// returned tables themselves.
func TestSPFScratchReducesAllocs(t *testing.T) {
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(3))
	db := NewDatabase(g)
	src := g.NodeIDs()[0]
	db.SPF(src) // warm scratch
	warm := testing.AllocsPerRun(50, func() { db.SPF(src) })
	cold := testing.AllocsPerRun(50, func() { NewDatabase(g).SPF(src) })
	if warm >= cold {
		t.Fatalf("scratch reuse saved nothing: warm %.0f allocs/op vs cold %.0f", warm, cold)
	}
}

// AdDatabase.SPF with scratch reuse must match a fresh AdDatabase fed the
// same advertisements.
func TestAdSPFScratchReuseIsStateless(t *testing.T) {
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(5))
	rng := sim.NewRNG(11)
	keys := GenerateKeys(g, rng)
	flood := func(db *AdDatabase) {
		for _, id := range g.NodeIDs() {
			ad := HonestAdvertisement(g, id)
			ad.Sign(keys[id])
			db.Flood(ad)
		}
	}
	db := NewAdDatabase(g, SignedTwoSided, keys)
	flood(db)
	for round := 0; round < 3; round++ {
		for _, src := range g.NodeIDs() {
			next, dist := db.SPF(src)
			fresh := NewAdDatabase(g, SignedTwoSided, keys)
			flood(fresh)
			freshNext, freshDist := fresh.SPF(src)
			if !reflect.DeepEqual(next, freshNext) || !reflect.DeepEqual(dist, freshDist) {
				t.Fatalf("round %d src %d: reused-scratch AdDatabase SPF diverged", round, src)
			}
		}
	}
}
