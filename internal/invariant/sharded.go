package invariant

import (
	"fmt"

	"repro/internal/scale"
	"repro/internal/sim"
)

// This file attaches the invariant checker across the shards of the
// sharded simulation core. The checker is a single obs.Sink; the
// sharded lockstep driver executes events in one global (time, key)
// order, so attaching the same sink to every shard's network yields
// exactly the globally time-ordered event stream the checker's clock,
// conservation, and queue-bound logic expect. Probe packets sent
// through Sharded.Send keep full hop-by-hop traces (unlike the pooled
// bulk traffic), giving CheckTrace complete cross-shard paths to audit.

// ShardedInvariants is the subset of the catalogue checkable on a
// sharded scale run: the event-stream invariants plus per-packet trace
// validity. The remaining invariants need machinery the scale workload
// deliberately does not carry (routing databases for loop-free/reach,
// a transport session, chaos connectivity epochs for cut-delivery).
func ShardedInvariants() map[string]bool {
	return map[string]bool{
		Conservation: true,
		QueueBound:   true,
		Clock:        true,
		TraceValid:   true,
	}
}

// SweepSharded runs cfg.Trials randomized sharded scale scenarios —
// topology size, traffic volume, shard count, and chaos all derived
// from the trial seed — with the checker attached across every shard.
// shards > 0 pins the shard count; shards <= 0 rotates through 2/4/8.
// cfg.Invariants is intersected with ShardedInvariants; shrinking does
// not apply (scenarios are fully described by their seed).
func SweepSharded(cfg Config, shards int) *Result {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	supported := ShardedInvariants()
	enabled := make(map[string]bool)
	for name := range supported {
		if cfg.Invariants == nil || cfg.Invariants[name] {
			enabled[name] = true
		}
	}
	res := &Result{Trials: cfg.Trials}
	for i := 0; i < cfg.Trials; i++ {
		seed := trialSeed(cfg.Seed, i)
		k := shards
		if k <= 0 {
			k = []int{2, 4, 8}[i%3]
		}
		violations := runSharded(seed, k, enabled)
		if len(violations) > 0 {
			res.Failures = append(res.Failures, &Failure{Trial: i, Seed: seed, Violations: violations})
		}
	}
	return res
}

// RunSharded executes one sharded trial at the given seed and shard
// count with all sharded-checkable invariants armed; tussle-check
// -replay uses it to re-examine a failing trial.
func RunSharded(seed uint64, shards int) []Violation {
	return runSharded(seed, shards, ShardedInvariants())
}

func runSharded(seed uint64, shards int, enabled map[string]bool) []Violation {
	rng := sim.NewRNG(seed)
	nodes := 100 + rng.Intn(300)
	sm := scale.Prepare(scale.Config{
		Nodes:   nodes,
		M:       1 + rng.Intn(3),
		Packets: nodes * (4 + rng.Intn(8)),
		Seed:    seed,
		Shards:  shards,
		Chaos:   rng.Bool(0.5),
	})
	checker := NewChecker(sm.S.Shards[0].Net, enabled)
	sm.AttachSink(checker)
	traced := sm.SendProbes(12)
	sm.Run()
	if enabled[TraceValid] {
		for _, tr := range traced {
			checker.CheckTrace(tr, 64)
		}
	}
	checker.Finish()
	vs := checker.Violations()
	out := make([]Violation, len(vs))
	for i, v := range vs {
		out[i] = v
		out[i].Detail = fmt.Sprintf("shards=%d nodes=%d: %s", shards, nodes, v.Detail)
	}
	return out
}
