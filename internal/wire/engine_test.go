package wire

import (
	"net"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/topology"
)

// startEngine boots an engine on loopback and tears it down with the
// test.
func startEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Run()
	}()
	t.Cleanup(func() {
		eng.Close()
		<-done
	})
	return eng
}

// TestEngineLoopbackEcho is the end-to-end path over real UDP: blast a
// mixed stream (deliverable + malformed) at an echo engine and check
// the engine's counters account for every datagram.
func TestEngineLoopbackEcho(t *testing.T) {
	eng := startEngine(t, Config{Echo: true})
	good, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(0, 1)},
		&packet.Raw{Data: []byte("echo me")})
	if err != nil {
		t.Fatal(err)
	}
	const count = 2000
	res, err := Blast(BlastConfig{
		Target:  eng.Addr(),
		Count:   count,
		Packets: [][]byte{good},
		Echo:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != count {
		t.Fatalf("blast sent %d of %d", res.Sent, count)
	}
	if res.Received+res.Lost != count {
		t.Fatalf("echo accounting: received %d + lost %d != %d", res.Received, res.Lost, count)
	}
	if res.Received == 0 {
		t.Fatal("no echoes came back")
	}
	st := eng.Stats()
	if st.Received < uint64(res.Received) {
		t.Fatalf("engine received %d, client got %d echoes back", st.Received, res.Received)
	}
	if st.Delivered != st.Received || st.Echoed != st.Delivered {
		t.Fatalf("echo engine should deliver+echo everything it receives: %s", st.String())
	}
	if st.Filtered[packet.FilterAccept] != st.Received {
		t.Fatalf("filter accepted %d of %d received", st.Filtered[packet.FilterAccept], st.Received)
	}
}

// TestEngineFiltersMalformed checks the wire sanity filter rejects junk
// datagrams before decode, and that the counters attribute them.
func TestEngineFiltersMalformed(t *testing.T) {
	eng := startEngine(t, Config{Echo: true})
	good, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(0, 1)},
		&packet.Raw{Data: []byte("ok")})
	if err != nil {
		t.Fatal(err)
	}
	badver := append([]byte(nil), good...)
	badver[0] = 0x28 // version 2
	junk := []byte{0x01, 0x02, 0x03}

	conn, err := net.Dial("udp", eng.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		for _, d := range [][]byte{good, badver, junk} {
			if _, err := conn.Write(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Junk draws no echo, so poll the counters instead.
	deadline := time.Now().Add(2 * time.Second)
	var st Stats
	for time.Now().Before(deadline) {
		st = eng.Stats()
		if st.Received == 3*rounds {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Received != 3*rounds {
		t.Fatalf("engine received %d of %d (UDP loss on loopback?)", st.Received, 3*rounds)
	}
	if st.Filtered[packet.FilterAccept] != rounds {
		t.Fatalf("filter accepted %d, want %d: %s", st.Filtered[packet.FilterAccept], rounds, st.String())
	}
	if st.Accepted() != rounds || st.Delivered != rounds {
		t.Fatalf("accepted %d delivered %d, want %d: %s", st.Accepted(), st.Delivered, rounds, st.String())
	}
	if st.Drops[DropMalformed] != 0 {
		// Filter-rejected datagrams never reach the dataplane; they are
		// counted under Filtered, not Drops.
		t.Fatalf("filter rejects leaked into dataplane drops: %s", st.String())
	}
}

// TestEngineForwardsToPeer runs a forwarding node over real UDP: the
// engine routes transit traffic to a peer socket (a plain UDP listener
// standing in for the next hop) and the full datagram — TTL
// decremented, checksum repaired — arrives there.
func TestEngineForwardsToPeer(t *testing.T) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	sinkAddr := sink.LocalAddr().(*net.UDPAddr).AddrPort()

	eng := startEngine(t, Config{
		NewDataplane: func() *Dataplane {
			return NewDataplane(NodeConfig{
				ID: 2,
				Route: func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
					return 3, true
				},
				Peers: []topology.NodeID{3},
			})
		},
		Peers: map[topology.NodeID]netip.AddrPort{3: sinkAddr},
	})

	data, err := packet.Serialize(
		&packet.TIP{TTL: 9, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1)},
		&packet.Raw{Data: []byte("transit")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Blast(BlastConfig{Target: eng.Addr(), Count: 1, Packets: [][]byte{data}}); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 2048)
	if err := sink.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, err := sink.Read(buf)
	if err != nil {
		t.Fatalf("forwarded datagram never reached the peer: %v", err)
	}
	var tip packet.TIP
	if err := tip.DecodeFrom(buf[:n]); err != nil {
		t.Fatalf("peer received undecodable bytes: %v", err)
	}
	if tip.TTL != 8 {
		t.Fatalf("forwarded TTL = %d, want 8", tip.TTL)
	}
	if tip.Dst != packet.MakeAddr(4, 1) {
		t.Fatalf("forwarded dst = %v", tip.Dst)
	}
	st := eng.Stats()
	if st.Forwarded != 1 || st.Sent != 1 {
		t.Fatalf("forward counters: %s", st.String())
	}
}

// TestEngineDifferentialOverUDP closes the loop on the twin contract at
// the socket layer: the golden byte stream goes over real UDP into a
// live engine built from the differential node config, and the engine's
// aggregate counters must equal what the committed per-packet decisions
// predict.
func TestEngineDifferentialOverUDP(t *testing.T) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	sinkAddr := sink.LocalAddr().(*net.UDPAddr).AddrPort()

	eng := startEngine(t, Config{
		NewDataplane: func() *Dataplane {
			return NewDataplane(testNodeConfig(diffChain()))
		},
		Peers: map[topology.NodeID]netip.AddrPort{1: sinkAddr, 3: sinkAddr},
	})

	stream := goldenStream(t)
	var want struct{ delivered, forwarded, filtered, dropped uint64 }
	dp := NewDataplane(testNodeConfig(diffChain())) // oracle: same spec, fresh state
	for _, pkt := range stream {
		if packet.Filter(pkt.data) != packet.FilterAccept {
			want.filtered++
			continue
		}
		switch dp.Process(append([]byte(nil), pkt.data...)).Kind {
		case Deliver:
			want.delivered++
		case Forward:
			want.forwarded++
		case Dropped:
			want.dropped++
		}
	}

	conn, err := net.Dial("udp", eng.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, pkt := range stream {
		if len(pkt.data) == 0 {
			// A zero-length UDP datagram is legal but indistinguishable
			// from a read of nothing on some stacks; the filter path for
			// it is covered by the in-process differential test.
			want.filtered--
			continue
		}
		if _, err := conn.Write(pkt.data); err != nil {
			t.Fatal(err)
		}
		// Sequential sends keep stateful middleboxes in the committed
		// packet order even across engine workers.
		time.Sleep(time.Millisecond)
	}

	total := want.delivered + want.forwarded + want.filtered + want.dropped
	deadline := time.Now().Add(2 * time.Second)
	var st Stats
	for time.Now().Before(deadline) {
		st = eng.Stats()
		if st.Received == total {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Received != total {
		t.Fatalf("engine received %d of %d (UDP loss on loopback?)", st.Received, total)
	}
	rejected := st.Received - st.Filtered[packet.FilterAccept]
	if st.Delivered != want.delivered || st.Forwarded != want.forwarded ||
		rejected != want.filtered || st.TotalDropped() != want.dropped {
		t.Fatalf("live engine counters diverge from golden decisions:\n got %s\nwant delivered=%d forwarded=%d filter-rejected=%d dropped=%d",
			st.String(), want.delivered, want.forwarded, want.filtered, want.dropped)
	}
}

// TestEngineSteadyStateAllocs gates the whole receive path — recv batch,
// filter, decode, decision, echo batch — at near-zero allocations per
// packet once warm. The budget (0.05 allocs/packet) absorbs runtime
// incidentals (netpoller wakeups, timer churn) while still catching any
// per-packet allocation, which would cost ≥1. The striped phase runs
// the same gate with a MultipathReceiver installed as the delivery
// hook, so every datagram is a data segment that draws a
// template-patched ACK — the multipath ACK fast path must be as
// alloc-free as the echo path.
func TestEngineSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs a sustained run")
	}
	gate := func(t *testing.T, eng *Engine, pkts [][]byte) {
		t.Helper()
		warm := func(count int) BlastResult {
			res, err := Blast(BlastConfig{Target: eng.Addr(), Count: count, Packets: pkts, Echo: true})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		warm(5000) // fault in lazy runtime state on both sides

		engBefore := eng.Stats()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		const count = 20000
		warm(count)
		runtime.ReadMemStats(&after)
		engAfter := eng.Stats()

		processed := engAfter.Received - engBefore.Received
		if processed < count/2 {
			t.Fatalf("engine processed only %d of %d in the measured window", processed, count)
		}
		// Mallocs counts both the engine and the blast client; both
		// sides must be alloc-free per packet for the gate to pass.
		perPkt := float64(after.Mallocs-before.Mallocs) / float64(processed)
		if perPkt > 0.05 {
			t.Fatalf("steady state costs %.3f allocs/packet over %d packets, want ≤0.05", perPkt, processed)
		}
	}

	t.Run("echo", func(t *testing.T) {
		eng := startEngine(t, Config{Echo: true, Workers: 1})
		good, err := packet.Serialize(
			&packet.TIP{TTL: 8, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(0, 1)},
			&packet.Raw{Data: []byte("steady")})
		if err != nil {
			t.Fatal(err)
		}
		gate(t, eng, [][]byte{good})
	})

	t.Run("striped", func(t *testing.T) {
		rcv := NewMultipathReceiver(0, 7777, 256)
		eng := startEngine(t, Config{Echo: true, Workers: 1, Deliver: rcv.Deliver})
		// Data segments with a fixed sequence number and rotating path
		// echoes: after the first, every arrival is a duplicate (no
		// stream growth), but each still takes the full ACK fast path —
		// Accept, template lookup, ring copy, patch — and the reply
		// flows back through the engine's transmit batch.
		var segs [][]byte
		for w := uint16(1); w <= 3; w++ {
			seg, err := packet.Serialize(
				&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(0, 1)},
				&packet.TTP{SrcPort: 41000, DstPort: 7777, Seq: 0, Window: w, Next: packet.LayerTypeRaw},
				&packet.Raw{Data: make([]byte, 512)})
			if err != nil {
				t.Fatal(err)
			}
			segs = append(segs, seg)
		}
		gate(t, eng, segs)
		sum := rcv.Summary()
		if sum.Acks == 0 {
			t.Fatal("striped phase never exercised the multipath ACK path")
		}
		if sum.Bytes != 512 {
			t.Fatalf("duplicate segments grew the stream to %d bytes, want 512", sum.Bytes)
		}
	})
}
