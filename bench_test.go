package repro_test

// One benchmark per experiment in the evaluation suite (the paper has no
// numbered tables/figures; DESIGN.md §3 maps each experiment to the
// paper section whose claim it tests). Each benchmark regenerates its
// experiment end to end, so `go test -bench=. -benchmem` reproduces the
// entire evaluation; cmd/tussle-bench prints the same tables with
// findings.

import (
	"testing"

	"repro/internal/experiments"
)

const benchSeed = 42

func benchExperiment(b *testing.B, run func(uint64) *experiments.Result) {
	b.ReportAllocs()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		last = run(benchSeed)
	}
	if last == nil || len(last.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
}

func BenchmarkE1NamingIsolation(b *testing.B)  { benchExperiment(b, experiments.E1NamingIsolation) }
func BenchmarkE2QoSIsolation(b *testing.B)     { benchExperiment(b, experiments.E2QoSIsolation) }
func BenchmarkE3ProviderLockin(b *testing.B)   { benchExperiment(b, experiments.E3ProviderLockin) }
func BenchmarkE4ValuePricing(b *testing.B)     { benchExperiment(b, experiments.E4ValuePricing) }
func BenchmarkE5OpenAccess(b *testing.B)       { benchExperiment(b, experiments.E5OpenAccess) }
func BenchmarkE6RoutingControl(b *testing.B)   { benchExperiment(b, experiments.E6RoutingControl) }
func BenchmarkE7TrustFirewall(b *testing.B)    { benchExperiment(b, experiments.E7TrustFirewall) }
func BenchmarkE8Anonymity(b *testing.B)        { benchExperiment(b, experiments.E8Anonymity) }
func BenchmarkE9EndToEnd(b *testing.B)         { benchExperiment(b, experiments.E9EndToEnd) }
func BenchmarkE10Encryption(b *testing.B)      { benchExperiment(b, experiments.E10Encryption) }
func BenchmarkE11QoSDeployment(b *testing.B)   { benchExperiment(b, experiments.E11QoSDeployment) }
func BenchmarkE12ActorChurn(b *testing.B)      { benchExperiment(b, experiments.E12ActorChurn) }
func BenchmarkE13Mechanisms(b *testing.B)      { benchExperiment(b, experiments.E13Mechanisms) }
func BenchmarkE14Overlay(b *testing.B)         { benchExperiment(b, experiments.E14Overlay) }
func BenchmarkE15Multicast(b *testing.B)       { benchExperiment(b, experiments.E15Multicast) }
func BenchmarkE16Visibility(b *testing.B)      { benchExperiment(b, experiments.E16Visibility) }
func BenchmarkE17Congestion(b *testing.B)      { benchExperiment(b, experiments.E17Congestion) }
func BenchmarkE18Byzantine(b *testing.B)       { benchExperiment(b, experiments.E18Byzantine) }
func BenchmarkE19MailChoice(b *testing.B)      { benchExperiment(b, experiments.E19MailChoice) }
func BenchmarkE20Steganography(b *testing.B)   { benchExperiment(b, experiments.E20Steganography) }
func BenchmarkE21EndToEnd(b *testing.B)        { benchExperiment(b, experiments.E21EndToEndReliability) }
func BenchmarkE22FiberSharing(b *testing.B)    { benchExperiment(b, experiments.E22FiberSharing) }
func BenchmarkE23PolicyMechanism(b *testing.B) { benchExperiment(b, experiments.E23PolicyMechanism) }
func BenchmarkE24Delegation(b *testing.B)      { benchExperiment(b, experiments.E24DelegatedControls) }
func BenchmarkE25Multihoming(b *testing.B)     { benchExperiment(b, experiments.E25Multihoming) }
func BenchmarkE26OverlayVsIntegrated(b *testing.B) {
	benchExperiment(b, experiments.E26OverlayVsIntegrated)
}
func BenchmarkE27Availability(b *testing.B) { benchExperiment(b, experiments.E27Availability) }
func BenchmarkE28Degradation(b *testing.B)  { benchExperiment(b, experiments.E28Degradation) }
func BenchmarkE29MultipathAvailability(b *testing.B) {
	benchExperiment(b, experiments.E29MultipathAvailability)
}
func BenchmarkE30PartitionReconvergence(b *testing.B) {
	benchExperiment(b, experiments.E30PartitionReconvergence)
}

// BenchmarkAllExperiments runs the full suite as one unit — the shape of
// a complete evaluation regeneration.
func BenchmarkAllExperiments(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rs := experiments.All(benchSeed); len(rs) != 30 {
			b.Fatal("suite incomplete")
		}
	}
}

// BenchmarkAllExperimentsParallel is the same regeneration fanned out
// across GOMAXPROCS workers by experiments.RunAll. The determinism test
// in internal/experiments proves its output identical to the sequential
// suite; this benchmark tracks the wall-clock win.
func BenchmarkAllExperimentsParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rs := experiments.RunAll(benchSeed, experiments.Options{}); len(rs) != 30 {
			b.Fatal("suite incomplete")
		}
	}
}
