// Package apps implements the application substrates the paper's
// arguments run over: the mail system with user-selectable servers
// (§IV-B's design-for-choice example), the web with caches (§VI-A's
// mature-application enhancement), Napster-style peer-to-peer sharing
// (§I's rights-holder tussle and §IV-C's "mutual aid" value flow), and a
// VoIP quality model (the §VII QoS deployment story's demand side).
package apps

import (
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// MailServer is one selectable SMTP/POP service. §IV-B: "A user can pick
// among servers, perhaps to avoid an unreliable one or pick one with
// desirable features, such as spam filters."
type MailServer struct {
	Name string
	Addr packet.Addr
	// Reliability is the delivery success probability.
	Reliability float64
	// SpamFilter is the probability spam is caught.
	SpamFilter float64
	// Price per message (or per period, units are up to the market).
	Price float64

	// Delivered, Filtered, Lost count message outcomes.
	Delivered, Filtered, Lost int
}

// MailPrefs weights a user's server-selection criteria — the explicit
// form of user choice.
type MailPrefs struct {
	WeightReliability float64
	WeightSpamFilter  float64
	WeightPrice       float64 // applied negatively
}

// Score rates a server under these preferences.
func (p MailPrefs) Score(s *MailServer) float64 {
	return p.WeightReliability*s.Reliability + p.WeightSpamFilter*s.SpamFilter - p.WeightPrice*s.Price
}

// ChooseServer returns the highest-scoring server (ties broken by name
// for determinism), or nil for an empty list. "This sort of choice
// drives innovation and product enhancement, and imposes discipline on
// the marketplace."
func ChooseServer(servers []*MailServer, prefs MailPrefs) *MailServer {
	if len(servers) == 0 {
		return nil
	}
	sorted := make([]*MailServer, len(servers))
	copy(sorted, servers)
	sort.SliceStable(sorted, func(i, j int) bool {
		si, sj := prefs.Score(sorted[i]), prefs.Score(sorted[j])
		if si != sj {
			return si > sj
		}
		return sorted[i].Name < sorted[j].Name
	})
	return sorted[0]
}

// Message is one mail item.
type Message struct {
	From, To string
	Spam     bool
}

// Handle runs a message through the server: spam may be filtered,
// anything may be lost to unreliability. It returns whether the message
// reached the inbox.
func (s *MailServer) Handle(m Message, rng *sim.RNG) bool {
	if !rng.Bool(s.Reliability) {
		s.Lost++
		return false
	}
	if m.Spam && rng.Bool(s.SpamFilter) {
		s.Filtered++
		return false
	}
	s.Delivered++
	return true
}

// InboxSpamRate reports the fraction of delivered mail that was spam,
// given counts of spam/ham offered. It is the user-facing quality metric
// that drives server choice.
func InboxSpamRate(s *MailServer, offered []Message, rng *sim.RNG) float64 {
	inboxSpam, inboxTotal := 0, 0
	for _, m := range offered {
		if s.Handle(m, rng) {
			inboxTotal++
			if m.Spam {
				inboxSpam++
			}
		}
	}
	if inboxTotal == 0 {
		return 0
	}
	return float64(inboxSpam) / float64(inboxTotal)
}
