package qos

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Ablation: the cost of each scheduling discipline at the same load.
func benchDiscipline(b *testing.B, disc Discipline) {
	rng := sim.NewRNG(1)
	type arrival struct {
		class  Class
		bytes  int
		arrive sim.Time
	}
	arrivals := make([]arrival, 2000)
	for i := range arrivals {
		arrivals[i] = arrival{
			class:  Class(rng.Intn(NumClasses)),
			bytes:  rng.Intn(1500) + 64,
			arrive: sim.Time(rng.Intn(1000)) * sim.Millisecond,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewLinkSim(1e6, disc)
		l.Weights = [NumClasses]float64{1, 2, 3, 4}
		for _, a := range arrivals {
			l.Add(a.class, a.bytes, a.arrive)
		}
		l.Run()
	}
}

func BenchmarkSchedulerFIFO(b *testing.B)     { benchDiscipline(b, FIFO) }
func BenchmarkSchedulerPriority(b *testing.B) { benchDiscipline(b, StrictPriority) }
func BenchmarkSchedulerWFQ(b *testing.B)      { benchDiscipline(b, WFQ) }

func BenchmarkClassifierExplicit(b *testing.B) {
	data := mkToSBench(b, ToSFor(Gold), 5060)
	var c ExplicitClassifier
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Classify(data)
	}
}

func BenchmarkClassifierPort(b *testing.B) {
	data := mkToSBench(b, 0, 5060)
	c := &PortClassifier{PortClass: map[uint16]Class{5060: Gold}, Default: BestEffort}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Classify(data)
	}
}

func mkToSBench(b *testing.B, tos uint8, port uint16) []byte {
	b.Helper()
	data, err := packet.Serialize(
		&packet.TIP{TTL: 8, TOS: tos, Proto: packet.LayerTypeTTP, Src: 1, Dst: 2},
		&packet.TTP{DstPort: port, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: []byte("x")})
	if err != nil {
		b.Fatal(err)
	}
	return data
}
