package wire

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/routing/srcroute"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport/multipath"
)

// This file ports the multipath transport onto the wire engine: the
// identical demotion / probation / promotion state machine from
// internal/transport/multipath, driven by the Clock/Driver seam, with
// real UDP sockets underneath. The substrate obligations live here —
// prebuilt per-path header templates patched in place (the TIP checksum
// covers only the TIP header, so stamping TTP fields costs no checksum
// work), a reusable transmit ring flushed through sendmmsg, and an ACK
// read loop feeding HandleAck under the wall clock's lock — so the
// steady-state striping path allocates nothing per packet.

// MPPath describes one wire path: the source-route waypoints the TIP
// header will carry, the UDP address of the first hop, and an a-priori
// latency estimate for strategies that order candidates by it.
type MPPath struct {
	// Hops are the interior waypoint nodes (empty = direct path).
	Hops []topology.NodeID
	// Via is the UDP address the path's datagrams are sent to.
	Via netip.AddrPort
	// Latency is the a-priori path latency estimate.
	Latency sim.Time
}

// MultipathSenderConfig assembles a wire multipath sender.
type MultipathSenderConfig struct {
	// Transport tunes the shared state machine (multipath.Config).
	Transport multipath.Config
	// Strategy picks the path per segment; nil means the canonical
	// first strategy (shortest-k round-robin).
	Strategy multipath.Strategy
	// Src and Dst are the endpoint node IDs (they feed the TIP
	// addresses and the jitter-seed mix, exactly as in the simulator).
	Src, Dst topology.NodeID
	// Port is the receiver's TTP port.
	Port uint16
	// Paths are the wire paths to stripe across. Required.
	Paths []MPPath
	// Batch is the sendmmsg batch size (default 64).
	Batch int
	// Clock overrides the timer substrate; nil means a fresh WallClock.
	// The differential harness passes a SimClock to replay scripted ACK
	// streams in virtual time.
	Clock multipath.Clock
}

// mpPathIO is one path's transmit-side state: where its datagrams go
// and the prebuilt headers they start from. Two templates exist
// because the TIP total-length field is checksummed, so full-size and
// tail segments need different (pre-checksummed) headers.
type mpPathIO struct {
	via     netip.AddrPort
	hdrFull []byte
	hdrTail []byte
}

// MultipathSender stripes one reliable stream across wire paths. All
// state-machine entry points run under mu (the WallClock shares it for
// timer callbacks), so the shared core sees a serial world.
type MultipathSender struct {
	mu   sync.Locker
	core *multipath.Sender
	cfg  MultipathSenderConfig

	conn  *net.UDPConn
	tx    *txBatch
	rx    *rxBatch
	rxBuf [][]byte
	txq   []txEntry

	pio     []mpPathIO
	ring    [][]byte
	ringAt  int
	segSize int

	emit func(path int, pkt []byte) // test capture; nil on real sockets

	done     chan struct{}
	doneOnce sync.Once
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// NewMultipathSender opens a client socket and prepares the transfer.
// Call Start to begin, Wait to block for the outcome, Close to tear
// down.
func NewMultipathSender(cfg MultipathSenderConfig, payload []byte) (*MultipathSender, error) {
	s, err := newMultipathSender(cfg, payload, nil)
	if err != nil {
		return nil, err
	}
	wild := "0.0.0.0:0"
	if len(cfg.Paths) > 0 && cfg.Paths[0].Via.Addr().Is6() {
		wild = "[::]:0"
	}
	pc, err := net.ListenPacket("udp", wild)
	if err != nil {
		return nil, fmt.Errorf("wire: multipath socket: %w", err)
	}
	s.conn = pc.(*net.UDPConn)
	if s.tx, err = newTxBatch(s.conn, s.batch()); err != nil {
		s.conn.Close()
		return nil, err
	}
	bufs := make([][]byte, s.batch())
	slab := make([]byte, s.batch()*2048)
	for i := range bufs {
		bufs[i] = slab[i*2048 : (i+1)*2048]
	}
	s.rxBuf = bufs
	if s.rx, err = newRxBatch(s.conn, bufs); err != nil {
		s.conn.Close()
		return nil, err
	}
	return s, nil
}

// newMultipathSender builds the sender without I/O; emit, when set,
// captures outgoing datagrams instead (the differential harness and
// the fuzz target run the full template/patch path this way).
func newMultipathSender(cfg MultipathSenderConfig, payload []byte, emit func(int, []byte)) (*MultipathSender, error) {
	if len(cfg.Paths) == 0 {
		return nil, errors.New("wire: multipath sender needs at least one path")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = multipath.Strategies()[0]
	}
	s := &MultipathSender{cfg: cfg, emit: emit, done: make(chan struct{})}
	clk := cfg.Clock
	if clk == nil {
		wall := NewWallClock()
		clk = wall
		s.mu = wall
	} else {
		s.mu = &sync.Mutex{}
	}
	cands := make([]srcroute.Candidate, len(cfg.Paths))
	for i, p := range cfg.Paths {
		route := make([]topology.NodeID, 0, len(p.Hops)+2)
		route = append(route, cfg.Src)
		route = append(route, p.Hops...)
		route = append(route, cfg.Dst)
		cands[i] = srcroute.Candidate{Path: route, Latency: p.Latency}
	}
	s.core = multipath.NewDriverSender(
		multipath.Driver{Clock: clk, Xmit: s.xmit, Flush: s.flush, OnDone: s.onDone},
		cfg.Strategy, cands, cfg.Src, cfg.Dst, cfg.Port, payload, cfg.Transport)
	s.segSize = s.core.Config().SegmentSize
	if err := s.buildTemplates(cands, payload); err != nil {
		return nil, err
	}
	nring := 2 * s.batch()
	s.ring = make([][]byte, nring)
	slab := make([]byte, nring*2048)
	for i := range s.ring {
		s.ring[i] = slab[i*2048 : (i+1)*2048]
	}
	s.txq = make([]txEntry, 0, s.batch())
	return s, nil
}

func (s *MultipathSender) batch() int {
	if s.cfg.Batch > 0 {
		return s.cfg.Batch
	}
	return 64
}

// buildTemplates serializes, once per path, the full-segment and
// tail-segment headers the transmit path later copies and patches.
// Serializing through the same packet.Serialize call the simulator's
// sender uses keeps the on-wire bytes identical between substrates.
func (s *MultipathSender) buildTemplates(cands []srcroute.Candidate, payload []byte) error {
	ct := s.core.Config().ContentType
	if ct == packet.LayerTypeNone {
		ct = packet.LayerTypeRaw
	}
	local := packet.MakeAddr(uint16(s.cfg.Src), 1)
	remote := packet.MakeAddr(uint16(s.cfg.Dst), 1)
	tail := len(payload) % s.segSize
	if tail == 0 {
		tail = s.segSize
	}
	s.pio = make([]mpPathIO, len(cands))
	for i, c := range cands {
		build := func(segLen int) ([]byte, error) {
			data, err := packet.Serialize(
				&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: local, Dst: remote, SourceRoute: c.Option()},
				&packet.TTP{SrcPort: 41000, DstPort: s.cfg.Port, Window: uint16(i) + 1, Next: ct},
				&packet.Raw{Data: make([]byte, segLen)})
			if err != nil {
				return nil, err
			}
			hdr := make([]byte, len(data)-segLen)
			copy(hdr, data[:len(hdr)])
			return hdr, nil
		}
		full, err := build(s.segSize)
		if err != nil {
			return fmt.Errorf("wire: multipath template path %d: %w", i, err)
		}
		tl, err := build(tail)
		if err != nil {
			return fmt.Errorf("wire: multipath template path %d: %w", i, err)
		}
		s.pio[i] = mpPathIO{via: s.cfg.Paths[i].Via, hdrFull: full, hdrTail: tl}
	}
	return nil
}

// xmit is the Driver transmission hook: copy the path's template and
// the segment payload into a ring slot, stamp the sequence number, and
// queue (or capture). Zero allocations in the steady state.
func (s *MultipathSender) xmit(p *multipath.Path, seq uint32) error {
	seg := s.core.Segment(seq)
	io := &s.pio[p.Index]
	hdr := io.hdrFull
	if len(seg) != s.segSize {
		hdr = io.hdrTail
	}
	slot := s.ring[s.ringAt]
	s.ringAt++
	if s.ringAt == len(s.ring) {
		s.ringAt = 0
	}
	n := copy(slot, hdr)
	n += copy(slot[n:], seg)
	pkt := slot[:n]
	if err := packet.PatchTTPSeq(pkt, seq); err != nil {
		return err
	}
	if s.emit != nil {
		s.emit(p.Index, pkt)
		return nil
	}
	s.txq = append(s.txq, txEntry{addr: io.via, data: pkt})
	if len(s.txq) == cap(s.txq) {
		s.flush()
	}
	return nil
}

// flush pushes the queued datagrams through sendmmsg. Runs at the end
// of every state-machine entry point (Driver.Flush) and when the queue
// fills mid-burst.
func (s *MultipathSender) flush() {
	if s.conn == nil || len(s.txq) == 0 {
		s.txq = s.txq[:0]
		return
	}
	for off := 0; off < len(s.txq); {
		sent, errs := s.tx.send(s.txq[off:])
		if sent+errs == 0 {
			break
		}
		off += sent + errs
	}
	s.txq = s.txq[:0]
}

func (s *MultipathSender) onDone() { s.doneOnce.Do(func() { close(s.done) }) }

// Start launches the ACK read loop and begins the transfer.
func (s *MultipathSender) Start() {
	if s.conn != nil {
		s.wg.Add(1)
		go s.readLoop()
	}
	s.mu.Lock()
	s.core.Start()
	s.mu.Unlock()
}

func (s *MultipathSender) readLoop() {
	defer s.wg.Done()
	for {
		n, err := s.rx.recv()
		if err != nil {
			return // socket closed
		}
		for i := 0; i < n; i++ {
			data := s.rxBuf[i][:s.rx.length(i)]
			s.mu.Lock()
			s.core.HandleAck(data)
			s.mu.Unlock()
		}
	}
}

// HandleAck feeds one ACK datagram through the state machine under the
// sender lock — the harness ingress (the socket read loop uses the same
// path).
func (s *MultipathSender) HandleAck(data []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.HandleAck(data)
}

// SetTrace installs the decision-log hook on the shared core. Install
// before Start.
func (s *MultipathSender) SetTrace(fn func(string)) { s.core.SetTrace(fn) }

// AttachObs binds the core's transfer and per-path counters (the
// multipath.* names) to a registry. Attach before Start; the counters
// mutate only under the sender lock.
func (s *MultipathSender) AttachObs(reg *obs.Registry) { s.core.AttachObs(reg) }

// Wait blocks until the transfer completes or fails, or the timeout
// elapses (false).
func (s *MultipathSender) Wait(timeout time.Duration) bool {
	select {
	case <-s.done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Stats snapshots the transfer summary.
func (s *MultipathSender) Stats() multipath.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Stats()
}

// Paths snapshots every path's state.
func (s *MultipathSender) Paths() []multipath.Path {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Paths()
}

// Close tears down the socket and waits for the read loop.
func (s *MultipathSender) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.conn != nil {
		s.conn.Close()
	}
	s.wg.Wait()
	s.onDone()
}

// MultipathReceiver reassembles a striped stream inside the wire
// engine: install its Deliver method as Config.Deliver and every
// accepted data segment is answered with a cumulative ACK built from a
// per-path template — copy, patch Ack, hand the ring slot back to the
// worker's transmit batch. The lock serializes workers; the ring must
// therefore hold at least workers×batch slots so a slot is not reused
// before every worker's current batch has flushed.
type MultipathReceiver struct {
	mu    sync.Mutex
	core  *multipath.Receiver
	local packet.Addr
	port  uint16

	ring   [][]byte
	ringAt int
	tmpl   map[uint16]*mpAckTemplate
	tip    packet.TIP
	ttp    packet.TTP
	acks   uint64
}

// mpAckTemplate is one path echo's prebuilt ACK datagram plus the
// identity it was built against (rebuilt if the sender's port, address,
// or route changes under the same echo).
type mpAckTemplate struct {
	pkt      []byte
	srcPort  uint16
	src      packet.Addr
	routeSig uint64
}

// mpAckSlot is the ring slot size: a TIP header with the longest legal
// source route plus the TTP header fits comfortably.
const mpAckSlot = 128

// NewMultipathReceiver builds a receiver for node's port with slots
// ACK ring entries (≥ the engine's workers×batch; default 256).
func NewMultipathReceiver(node topology.NodeID, port uint16, slots int) *MultipathReceiver {
	if slots <= 0 {
		slots = 256
	}
	r := &MultipathReceiver{
		core:  multipath.NewReceiverCore(port),
		local: packet.MakeAddr(uint16(node), 1),
		port:  port,
		ring:  make([][]byte, slots),
		tmpl:  map[uint16]*mpAckTemplate{},
	}
	slab := make([]byte, slots*mpAckSlot)
	for i := range r.ring {
		r.ring[i] = slab[i*mpAckSlot : (i+1)*mpAckSlot]
	}
	return r
}

// Deliver is the engine hook (Config.Deliver): ingest a delivered
// datagram, reply with an ACK when it is a data segment for our port,
// nil otherwise. The returned slice stays valid until len(ring) further
// replies have been built.
func (r *MultipathReceiver) Deliver(data []byte, from netip.AddrPort) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.tip.DecodeReuse(data); err != nil || r.tip.Proto != packet.LayerTypeTTP {
		return nil
	}
	if err := r.ttp.DecodeFrom(r.tip.LayerPayload()); err != nil {
		return nil
	}
	if r.ttp.Flags&packet.FlagACK != 0 || r.ttp.DstPort != r.port {
		return nil
	}
	ackNo := r.core.Accept(r.ttp.Seq, r.ttp.LayerPayload(), int(r.ttp.Window))
	t := r.tmpl[r.ttp.Window]
	sig := routeSig(r.tip.SourceRoute)
	if t == nil || t.srcPort != r.ttp.SrcPort || t.src != r.tip.Src || t.routeSig != sig {
		pkt, err := packet.Serialize(
			&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: r.local, Dst: r.tip.Src,
				SourceRoute: multipath.ReverseRoute(r.tip.SourceRoute)},
			&packet.TTP{SrcPort: r.port, DstPort: r.ttp.SrcPort,
				Flags: packet.FlagACK, Window: r.ttp.Window, Next: packet.LayerTypeRaw},
			&packet.Raw{Data: nil})
		if err != nil || len(pkt) > mpAckSlot {
			return nil
		}
		t = &mpAckTemplate{pkt: pkt, srcPort: r.ttp.SrcPort, src: r.tip.Src, routeSig: sig}
		r.tmpl[r.ttp.Window] = t
	}
	slot := r.ring[r.ringAt]
	r.ringAt++
	if r.ringAt == len(r.ring) {
		r.ringAt = 0
	}
	n := copy(slot, t.pkt)
	ack := slot[:n]
	if packet.PatchTTPAck(ack, ackNo, r.ttp.Window) != nil {
		return nil
	}
	r.acks++
	return ack
}

// routeSig fingerprints a source route's waypoints (FNV-1a) so a
// template built for one route is not replayed for another under the
// same path echo.
func routeSig(sr *packet.SourceRouteOption) uint64 {
	if sr == nil {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, hop := range sr.Hops {
		h ^= uint64(hop)
		h *= 1099511628211
	}
	return h
}

// MPRecvSummary is a receiver snapshot for stats output.
type MPRecvSummary struct {
	// Bytes is the reassembled in-order stream length; SHA256 hashes
	// the stream (the smoke test's byte-exactness check).
	Bytes  int
	SHA256 [32]byte
	// Acks counts acknowledgments built; Dups counts redundant data
	// segments.
	Acks uint64
	Dups int
	// PathSegments counts accepted segments by on-wire path ID.
	PathSegments map[int]int
}

// Summary snapshots the receiver.
func (r *MultipathReceiver) Summary() MPRecvSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	per := make(map[int]int, len(r.core.PathSegments))
	for k, v := range r.core.PathSegments {
		per[k] = v
	}
	return MPRecvSummary{
		Bytes:        len(r.core.Data),
		SHA256:       sha256.Sum256(r.core.Data),
		Acks:         r.acks,
		Dups:         r.core.Dups,
		PathSegments: per,
	}
}

// PublishObs copies the receiver's final counters into a registry so
// they ride the standard obs snapshot schema next to the sender's
// multipath.* counters. Call at shutdown (it takes the lock once).
func (r *MultipathReceiver) PublishObs(reg *obs.Registry) {
	sum := r.Summary()
	reg.Counter("wiremp.recv.bytes").Add(int64(sum.Bytes))
	reg.Counter("wiremp.recv.acks").Add(int64(sum.Acks))
	reg.Counter("wiremp.recv.dups").Add(int64(sum.Dups))
	for id, n := range sum.PathSegments {
		reg.Counter(fmt.Sprintf("wiremp.recv.path%d.segments", id)).Add(int64(n))
	}
}

// PathImpairment is a middlebox that, while enabled, silently drops
// data segments whose on-wire path echo (TTP Window) matches PathID —
// the smoke test's mid-run impairment toggle. It is stateless apart
// from the atomic flag, so one instance may be shared across every
// worker's dataplane chain; when disabled it costs one atomic load per
// packet.
type PathImpairment struct {
	// PathID is the 1-based on-wire path label to kill.
	PathID int
	// Port restricts the impairment to one TTP destination port
	// (0 = any).
	Port uint16

	on      atomic.Bool
	dropped atomic.Uint64
}

// SetEnabled toggles the impairment.
func (p *PathImpairment) SetEnabled(v bool) { p.on.Store(v) }

// Enabled reports the toggle state.
func (p *PathImpairment) Enabled() bool { return p.on.Load() }

// Dropped counts segments killed so far.
func (p *PathImpairment) Dropped() uint64 { return p.dropped.Load() }

// Name implements netsim.Middlebox.
func (p *PathImpairment) Name() string { return "path-impair" }

// Silent implements netsim.Middlebox: the impairment models a path
// fault, not a policy, so it does not reveal itself in drop reports.
func (p *PathImpairment) Silent() bool { return true }

// Process implements netsim.Middlebox.
func (p *PathImpairment) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if !p.on.Load() {
		return nil, netsim.Accept
	}
	var tip packet.TIP
	if err := tip.DecodeReuse(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return nil, netsim.Accept
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil {
		return nil, netsim.Accept
	}
	if ttp.Flags&packet.FlagACK != 0 || int(ttp.Window) != p.PathID {
		return nil, netsim.Accept
	}
	if p.Port != 0 && ttp.DstPort != p.Port {
		return nil, netsim.Accept
	}
	p.dropped.Add(1)
	return nil, netsim.Drop
}
