package multipath

import (
	"fmt"

	"repro/internal/routing/srcroute"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Strategy is a pluggable path-selection policy, following the
// axiomatization of multipath selection strategies in
// Baumeister/Keshvadi (arXiv:2509.05938): a strategy decides which
// routes to discover (the candidate axis: shortest vs most disjoint)
// and which live path carries each (re)transmission (the scheduling
// axis: rotation, latency weighting, loss adaptation). Strategies are
// stateful per-sender and single-threaded; every decision is a pure
// function of the deterministic path state, so transfers replay
// byte-identically.
type Strategy interface {
	// Name identifies the strategy in stats, experiment rows, and CLIs.
	Name() string
	// Discover selects the candidate path set from the topology map.
	Discover(g *topology.Graph, src, dst topology.NodeID, k, maxLen int) []srcroute.Candidate
	// Pick chooses the path for the next (re)transmission among the
	// currently eligible (Active) paths. eligible is never empty and is
	// ordered by path index.
	Pick(eligible []*Path) *Path
}

// Strategies returns fresh instances of every built-in strategy in
// canonical order. Fresh: strategies carry scheduling state (rotation
// counters, weighting credit), so instances must not be shared across
// senders.
func Strategies() []Strategy {
	return []Strategy{
		&ShortestK{},
		&DisjointnessMax{},
		&LatencyWeighted{},
		&LossAdaptive{},
	}
}

// StrategyByName returns a fresh instance of the named strategy.
func StrategyByName(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("multipath: unknown strategy %q", name)
}

// ShortestK stripes round-robin over the k latency-shortest candidate
// paths regardless of overlap — the throughput-first strategy. Shared
// links mean a single failure can take out several paths at once; that
// exposure is exactly what E29 measures against the disjoint strategies.
type ShortestK struct {
	rr int
}

// Name implements Strategy.
func (s *ShortestK) Name() string { return "shortest-k" }

// Discover implements Strategy: plain k-shortest enumeration, overlap
// allowed.
func (s *ShortestK) Discover(g *topology.Graph, src, dst topology.NodeID, k, maxLen int) []srcroute.Candidate {
	return srcroute.Discover(g, src, dst, k, maxLen)
}

// Pick implements Strategy: pure rotation.
func (s *ShortestK) Pick(eligible []*Path) *Path {
	s.rr++
	return eligible[s.rr%len(eligible)]
}

// DisjointnessMax stripes round-robin over the maximal link-disjoint
// path set — the availability-first strategy: no single link failure
// can take down more than one path.
type DisjointnessMax struct {
	rr int
}

// Name implements Strategy.
func (s *DisjointnessMax) Name() string { return "disjointness-max" }

// Discover implements Strategy: take every disjoint path that exists,
// not just k (the requested k only floors the search effort).
func (s *DisjointnessMax) Discover(g *topology.Graph, src, dst topology.NodeID, k, maxLen int) []srcroute.Candidate {
	if k < 8 {
		k = 8
	}
	return srcroute.DisjointPaths(g, src, dst, k, maxLen)
}

// Pick implements Strategy: pure rotation.
func (s *DisjointnessMax) Pick(eligible []*Path) *Path {
	s.rr++
	return eligible[s.rr%len(eligible)]
}

// LatencyWeighted stripes over the disjoint set proportionally to
// inverse latency (measured SRTT once samples exist, advertised path
// latency until then) using smooth weighted round-robin, so fast paths
// carry proportionally more of the stream without starving slow ones.
type LatencyWeighted struct{}

// Name implements Strategy.
func (s *LatencyWeighted) Name() string { return "latency-weighted" }

// Discover implements Strategy.
func (s *LatencyWeighted) Discover(g *topology.Graph, src, dst topology.NodeID, k, maxLen int) []srcroute.Candidate {
	return srcroute.DisjointPaths(g, src, dst, k, maxLen)
}

// Pick implements Strategy: smooth WRR. Each eligible path accrues
// credit proportional to its inverse latency estimate; the path with
// the most credit transmits and pays the round's total back. Ties break
// to the lowest path index, so the schedule is deterministic.
func (s *LatencyWeighted) Pick(eligible []*Path) *Path {
	var total float64
	for _, p := range eligible {
		est := p.SRTT
		if est <= 0 {
			est = 2 * p.Cand.Latency // advertised one-way latency, out and back
		}
		if est <= 0 {
			est = sim.Millisecond
		}
		w := 1 / float64(est)
		p.wrrCredit += w
		total += w
	}
	best := eligible[0]
	for _, p := range eligible[1:] {
		if p.wrrCredit > best.wrrCredit {
			best = p
		}
	}
	best.wrrCredit -= total
	return best
}

// LossAdaptive routes each transmission over the eligible path with the
// lowest loss estimate (EWMA of timeout/delivery outcomes), rotating
// among paths whose estimates are effectively tied — clean paths behave
// like round-robin, impaired paths shed traffic in proportion to how
// lossy they look.
type LossAdaptive struct {
	rr int
}

// Name implements Strategy.
func (s *LossAdaptive) Name() string { return "loss-adaptive" }

// Discover implements Strategy.
func (s *LossAdaptive) Discover(g *topology.Graph, src, dst topology.NodeID, k, maxLen int) []srcroute.Candidate {
	return srcroute.DisjointPaths(g, src, dst, k, maxLen)
}

// Pick implements Strategy.
func (s *LossAdaptive) Pick(eligible []*Path) *Path {
	min := eligible[0].Loss
	for _, p := range eligible[1:] {
		if p.Loss < min {
			min = p.Loss
		}
	}
	const tie = 1e-9
	var tied []*Path
	for _, p := range eligible {
		if p.Loss-min <= tie {
			tied = append(tied, p)
		}
	}
	s.rr++
	return tied[s.rr%len(tied)]
}
