package policy

import (
	"fmt"
	"strings"
	"sync"
)

// This file lowers the TPL expression AST to a flat bytecode program the
// metered VM in vm.go executes. The design goals, in order:
//
//  1. Agreement: the VM must compute exactly what the tree-walking Eval
//     computes — same values, same error strings, same evaluation order —
//     for every expressible program. The differential tests and the
//     FuzzCompileEval target hold this line.
//  2. Boundedness: execution is meterable per instruction and per
//     allocation unit (see Budget), so a hostile policy fails fast with
//     ErrBudgetExceeded instead of stalling a forwarding worker.
//  3. Speed: a compiled scalar policy evaluates with zero Go allocations
//     from a pooled VM — constants live in a pool, attributes resolve
//     through interned slots, and all-literal list expressions are folded
//     to constants at compile time so membership tests don't build the
//     list per packet.

// opcode enumerates VM instructions. The set is deliberately tiny: TPL
// has no loops, calls, or assignment, so every program is a straight-line
// instruction stream plus forward jumps for short-circuit logic.
type opcode uint8

const (
	// opConst pushes consts[arg], charging its allocation units.
	opConst opcode = iota
	// opAttr pushes env[attrs[arg]]; a missing attribute returns the
	// pre-wrapped attrErrs[arg] (no allocation on the breach path).
	opAttr
	// opNot replaces a bool top-of-stack with its negation.
	opNot
	// opEq / opNe pop two values and push structural (in)equality.
	opEq
	opNe
	// opLt..opGe pop two values and push the ordered comparison;
	// number-number and string-string only, exactly as Eval.
	opLt
	opGt
	opLe
	opGe
	// opIn pops list then needle and pushes membership.
	opIn
	// opMakeList pops arg values and pushes a fresh list, charging
	// 1+arg allocation units.
	opMakeList
	// opAndJump implements `&&` short-circuit: top must be bool (else
	// the `&&` type error); if false, leave it and jump to arg; if
	// true, pop and fall through to the right operand.
	opAndJump
	// opOrJump is the `||` dual: if true, leave it and jump to arg.
	opOrJump
	// opAndCheck / opOrCheck verify the right operand of `&&`/`||` is a
	// bool, producing the same type error Eval does.
	opAndCheck
	opOrCheck
)

var opNames = [...]string{
	opConst: "const", opAttr: "attr", opNot: "not",
	opEq: "eq", opNe: "ne", opLt: "lt", opGt: "gt", opLe: "le", opGe: "ge",
	opIn: "in", opMakeList: "mklist",
	opAndJump: "and.jmp", opOrJump: "or.jmp",
	opAndCheck: "and.chk", opOrCheck: "or.chk",
}

// instr is one instruction; arg is a constant index, attribute slot,
// element count, or jump target depending on the opcode.
type instr struct {
	op  opcode
	arg int32
}

// Program is a compiled policy expression: a flat instruction stream over
// a constant pool and interned attribute slots. Programs are immutable
// after Compile and safe for concurrent Run calls (each Run borrows a
// pooled VM).
type Program struct {
	code      []instr
	consts    []Value
	constCost []int64 // allocation units charged per constant push
	attrs     []string
	attrErrs  []error // pre-wrapped unknown-attribute errors per slot
	maxStack  int
	src       string // canonical text when compiled through a Cache
}

// Attrs returns the attribute names the program reads, in slot order.
// The slice is shared; callers must not mutate it.
func (p *Program) Attrs() []string { return p.attrs }

// Source returns the canonical policy text the program was compiled
// from, when it came through a Cache ("" for direct Compile calls).
func (p *Program) Source() string { return p.src }

// MaxSteps returns the static ceiling on instructions one Run can
// execute (TPL has no loops, so the instruction count is the bound).
func (p *Program) MaxSteps() int64 { return int64(len(p.code)) }

// Disasm renders the instruction stream for debugging and tests.
func (p *Program) Disasm() string {
	var sb strings.Builder
	for i, in := range p.code {
		fmt.Fprintf(&sb, "%3d %-8s", i, opNames[in.op])
		switch in.op {
		case opConst:
			fmt.Fprintf(&sb, " %s", p.consts[in.arg])
		case opAttr:
			fmt.Fprintf(&sb, " %s", p.attrs[in.arg])
		case opMakeList, opAndJump, opOrJump:
			fmt.Fprintf(&sb, " %d", in.arg)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// allocUnits is the guest-visible materialization cost of a value: free
// for scalars, one unit per string, and 1+len plus element costs per
// list. Charged when a constant is pushed or a list is built, so the
// allocation budget bounds what a policy can materialize per invocation
// even when the bytes themselves are pooled.
func allocUnits(v Value) int64 {
	switch v.Kind {
	case KindString:
		return 1
	case KindList:
		u := int64(1 + len(v.L))
		for _, e := range v.L {
			u += allocUnits(e)
		}
		return u
	default:
		return 0
	}
}

// scalarKey is the dedup key for pool constants (lists are not deduped —
// structural comparison on hostile inputs is what budgets exist to stop).
type scalarKey struct {
	kind ValueKind
	b    bool
	n    float64
	s    string
}

type compiler struct {
	p        *Program
	constIdx map[scalarKey]int32
	attrIdx  map[string]int32
	depth    int
}

func (c *compiler) emit(op opcode, arg int32) int {
	c.p.code = append(c.p.code, instr{op, arg})
	return len(c.p.code) - 1
}

func (c *compiler) push(n int) {
	c.depth += n
	if c.depth > c.p.maxStack {
		c.p.maxStack = c.depth
	}
}

func (c *compiler) pop(n int) { c.depth -= n }

func (c *compiler) constant(v Value) int32 {
	if v.Kind != KindList {
		k := scalarKey{v.Kind, v.B, v.N, v.S}
		if idx, ok := c.constIdx[k]; ok {
			return idx
		}
		idx := int32(len(c.p.consts))
		c.constIdx[k] = idx
		c.p.consts = append(c.p.consts, v)
		c.p.constCost = append(c.p.constCost, allocUnits(v))
		return idx
	}
	c.p.consts = append(c.p.consts, v)
	c.p.constCost = append(c.p.constCost, allocUnits(v))
	return int32(len(c.p.consts) - 1)
}

func (c *compiler) attr(name string) int32 {
	if idx, ok := c.attrIdx[name]; ok {
		return idx
	}
	idx := int32(len(c.p.attrs))
	c.attrIdx[name] = idx
	c.p.attrs = append(c.p.attrs, name)
	// Pre-wrapped so the VM's unknown-attribute path is a slot load, not
	// an fmt.Sprintf — the same hardening eval.go applies to parsed
	// RefExprs. The message matches Eval's exactly (differential
	// contract).
	c.p.attrErrs = append(c.p.attrErrs, &EvalError{Msg: fmt.Sprintf("unknown attribute %q", name)})
	return idx
}

// fold returns the constant value of an expression made only of literals
// (including list literals of literals), so `port in [80, 443]` compiles
// to a single pooled constant instead of a per-invocation list build.
func fold(e Expr) (Value, bool) {
	switch n := e.(type) {
	case *LitExpr:
		return n.V, true
	case *ListExpr:
		out := make([]Value, len(n.Elems))
		for i, el := range n.Elems {
			v, ok := fold(el)
			if !ok {
				return Value{}, false
			}
			out[i] = v
		}
		return List(out...), true
	}
	return Value{}, false
}

func (c *compiler) compile(e Expr) error {
	if v, ok := fold(e); ok {
		c.emit(opConst, c.constant(v))
		c.push(1)
		return nil
	}
	switch n := e.(type) {
	case *RefExpr:
		c.emit(opAttr, c.attr(n.Name))
		c.push(1)
		return nil
	case *ListExpr:
		for _, el := range n.Elems {
			if err := c.compile(el); err != nil {
				return err
			}
		}
		c.emit(opMakeList, int32(len(n.Elems)))
		c.pop(len(n.Elems) - 1)
		return nil
	case *UnaryExpr:
		if err := c.compile(n.X); err != nil {
			return err
		}
		c.emit(opNot, 0)
		return nil
	case *BinExpr:
		return c.compileBin(n)
	}
	return fmt.Errorf("policy: compile: unknown expression node %T", e)
}

func (c *compiler) compileBin(n *BinExpr) error {
	if n.Op == "&&" || n.Op == "||" {
		if err := c.compile(n.L); err != nil {
			return err
		}
		jop, chk := opAndJump, opAndCheck
		if n.Op == "||" {
			jop, chk = opOrJump, opOrCheck
		}
		j := c.emit(jop, 0)
		c.pop(1) // fall-through consumes the left operand
		if err := c.compile(n.R); err != nil {
			return err
		}
		c.emit(chk, 0)
		c.p.code[j].arg = int32(len(c.p.code))
		return nil
	}
	if err := c.compile(n.L); err != nil {
		return err
	}
	if err := c.compile(n.R); err != nil {
		return err
	}
	var op opcode
	switch n.Op {
	case "==":
		op = opEq
	case "!=":
		op = opNe
	case "<":
		op = opLt
	case ">":
		op = opGt
	case "<=":
		op = opLe
	case ">=":
		op = opGe
	case "in":
		op = opIn
	default:
		return fmt.Errorf("policy: compile: unknown operator %q", n.Op)
	}
	c.emit(op, 0)
	c.pop(1)
	return nil
}

// Compile lowers an expression to a metered bytecode program. Compilation
// is linear in the AST size; a program compiled once evaluates any number
// of times with per-invocation budgets.
func Compile(e Expr) (*Program, error) {
	c := &compiler{
		p:        &Program{},
		constIdx: make(map[scalarKey]int32),
		attrIdx:  make(map[string]int32),
	}
	if err := c.compile(e); err != nil {
		return nil, err
	}
	if c.depth != 1 {
		return nil, fmt.Errorf("policy: compile: internal error: final stack depth %d", c.depth)
	}
	return c.p, nil
}

// CompiledDocument is a Document whose rule conditions are compiled.
// Evaluate mirrors the tree-walking Evaluate exactly: rules in order,
// first true condition decides, erroring rules are skipped (fail safe)
// with the error reported alongside.
//
// A CompiledDocument owns its VM scratch, so Evaluate is NOT safe for
// concurrent use — it is per-worker state, like the middleboxes that
// hold one. The owned scratch (rather than the shared pool Run uses)
// keeps Evaluate's allocation count deterministic: a GC cycle landing
// mid-measurement cannot empty a pool it never touches. Concurrent
// callers should Run the Rules programs directly.
type CompiledDocument struct {
	Doc   *Document
	Rules []*Program // compiled When conditions, index-aligned with Doc.Rules
	m     vm         // owned execution scratch, grown once to the largest rule
}

// CompileDocument compiles every rule condition of a parsed document.
func CompileDocument(doc *Document) (*CompiledDocument, error) {
	cd := &CompiledDocument{Doc: doc, Rules: make([]*Program, len(doc.Rules))}
	for i := range doc.Rules {
		p, err := Compile(doc.Rules[i].When)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", doc.Rules[i].Name, err)
		}
		cd.Rules[i] = p
	}
	return cd, nil
}

// Evaluate runs the compiled document under one shared per-invocation
// budget. Budget exhaustion inside a rule is treated like any other rule
// error — the rule is skipped and the breach reported — so a hostile rule
// cannot veto the document, only waste its own budget.
func (cd *CompiledDocument) Evaluate(env Env, b *Budget) (Decision, []error) {
	var errs []error
	for i := range cd.Doc.Rules {
		r := &cd.Doc.Rules[i]
		v, err := cd.Rules[i].exec(&cd.m, env, nil, b)
		if err != nil {
			errs = append(errs, fmt.Errorf("rule %q: %w", r.Name, err))
			continue
		}
		if v.Kind != KindBool {
			errs = append(errs, fmt.Errorf("rule %q: condition is %v, not bool", r.Name, v))
			continue
		}
		if v.B {
			return Decision{Action: r.Then, Rule: r.Name}, errs
		}
	}
	if cd.Doc.HasDefault {
		return Decision{Action: *cd.Doc.Default, Default: true}, errs
	}
	return Decision{
		Action:  Action{Kind: Deny, Reason: "no matching rule"},
		Default: true,
	}, errs
}

// Cache is a compile-once cache keyed by policy text: the same policy
// installed on a million nodes parses and compiles exactly once, and
// textually different but structurally identical policies (whitespace,
// comments, parenthesization) share one Program via the canonical
// rendering of the parsed expression. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	byText  map[string]*cacheEntry
	byCanon map[string]*Program
}

type cacheEntry struct {
	prog *Program
	err  error
}

// canonLimit caps the sources eligible for canonical-form dedup:
// rendering a deeply nested expression back to text is quadratic in the
// worst case, which is exactly the pathological input budgets defend
// against, so oversized policies are cached by raw text only.
const canonLimit = 64 << 10

// NewCache creates an empty compile cache.
func NewCache() *Cache {
	return &Cache{byText: make(map[string]*cacheEntry), byCanon: make(map[string]*Program)}
}

// DefaultCache is the process-wide cache the choice-point integrations
// (netsim, wire, economics, trust, middlebox) share.
var DefaultCache = NewCache()

// CompileText parses and compiles a bare TPL expression, memoized on the
// raw text and deduplicated on the canonical form. Parse and compile
// errors are memoized too, so hostile repeated garbage costs one parse.
func (c *Cache) CompileText(src string) (*Program, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byText[src]; ok {
		return e.prog, e.err
	}
	prog, err := c.compileLocked(src)
	c.byText[src] = &cacheEntry{prog, err}
	return prog, err
}

func (c *Cache) compileLocked(src string) (*Program, error) {
	expr, err := ParseExpr(src)
	if err != nil {
		return nil, err
	}
	canon := ""
	if len(src) <= canonLimit {
		canon = expr.String()
		if p, ok := c.byCanon[canon]; ok {
			return p, nil
		}
	}
	p, err := Compile(expr)
	if err != nil {
		return nil, err
	}
	p.src = canon
	if canon != "" {
		c.byCanon[canon] = p
	}
	return p, nil
}

// Size reports distinct cached texts (for tests and introspection).
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byText)
}

// CompileText compiles src through the process-wide DefaultCache.
func CompileText(src string) (*Program, error) { return DefaultCache.CompileText(src) }
