// Package congestion implements the congestion-control tussle §II-B uses
// as its lead example of ignoring tussle: "TCP congestion control 'works'
// when and only when the majority of end-systems both participate and
// follow a common set of rules... Should this balance change, the
// technical design of the system will do nothing to bound or guide the
// resulting shift."
//
// The package provides an AIMD flow model over a shared bottleneck, a
// cheater flow that does not back off, and two bottleneck disciplines:
// a shared FIFO queue (the classic design, where compliance is purely
// social) and per-flow fair queueing (a technical mechanism that bounds
// the tussle by making defection unprofitable).
package congestion

import "repro/internal/sim"

// Flow is one end-system's sending process.
type Flow struct {
	Name string
	// Cwnd is the congestion window, in packets per round.
	Cwnd float64
	// Aggressive flows ignore loss signals — the §II-B defectors who
	// "benefit at others' expense".
	Aggressive bool
	// AdditiveIncrease and MultiplicativeDecrease are the AIMD knobs.
	AdditiveIncrease       float64
	MultiplicativeDecrease float64

	// Delivered and Lost accumulate across rounds.
	Delivered, Lost float64
}

// NewFlow returns a standard AIMD flow (increase 1, decrease 0.5).
func NewFlow(name string, aggressive bool) *Flow {
	return &Flow{
		Name: name, Cwnd: 1, Aggressive: aggressive,
		AdditiveIncrease: 1, MultiplicativeDecrease: 0.5,
	}
}

// react applies the per-round control law given whether the flow saw
// loss this round.
func (f *Flow) react(sawLoss bool) {
	if f.Aggressive {
		// The cheater always increases.
		f.Cwnd += f.AdditiveIncrease
		return
	}
	if sawLoss {
		f.Cwnd *= f.MultiplicativeDecrease
		if f.Cwnd < 1 {
			f.Cwnd = 1
		}
	} else {
		f.Cwnd += f.AdditiveIncrease
	}
}

// Discipline selects the bottleneck's sharing mechanism.
type Discipline uint8

// Bottleneck disciplines.
const (
	// SharedFIFO drops proportionally to offered load when the sum
	// exceeds capacity — the aggregate pays, so aggression pays.
	SharedFIFO Discipline = iota
	// FairQueue gives each flow a max-min fair share — aggression
	// beyond the fair share is simply dropped.
	FairQueue
)

func (d Discipline) String() string {
	if d == SharedFIFO {
		return "shared-fifo"
	}
	return "fair-queue"
}

// Bottleneck is the shared resource.
type Bottleneck struct {
	// Capacity is packets per round.
	Capacity float64
	Disc     Discipline
	Flows    []*Flow

	// Rounds counts simulation steps; TotalDelivered/TotalLost are
	// aggregates.
	Rounds                    int
	TotalDelivered, TotalLost float64
}

// NewBottleneck builds the shared link.
func NewBottleneck(capacity float64, disc Discipline, flows ...*Flow) *Bottleneck {
	return &Bottleneck{Capacity: capacity, Disc: disc, Flows: flows}
}

// Step runs one round: every flow offers its window, the discipline
// allocates capacity, flows observe loss and react.
func (b *Bottleneck) Step() {
	b.Rounds++
	offered := 0.0
	for _, f := range b.Flows {
		offered += f.Cwnd
	}
	switch b.Disc {
	case SharedFIFO:
		// Proportional service: everyone keeps the same fraction.
		frac := 1.0
		if offered > b.Capacity {
			frac = b.Capacity / offered
		}
		for _, f := range b.Flows {
			got := f.Cwnd * frac
			lost := f.Cwnd - got
			f.Delivered += got
			f.Lost += lost
			b.TotalDelivered += got
			b.TotalLost += lost
			f.react(lost > 0.001)
		}
	case FairQueue:
		// Max-min fair allocation: iteratively satisfy small demands.
		share := maxMin(b.Capacity, b.Flows)
		for i, f := range b.Flows {
			got := share[i]
			lost := f.Cwnd - got
			f.Delivered += got
			f.Lost += lost
			b.TotalDelivered += got
			b.TotalLost += lost
			f.react(lost > 0.001)
		}
	}
}

// maxMin computes the max-min fair allocation of capacity to demands.
func maxMin(capacity float64, flows []*Flow) []float64 {
	n := len(flows)
	alloc := make([]float64, n)
	remainingCap := capacity
	active := make([]bool, n)
	remaining := 0
	for i := range flows {
		active[i] = true
		remaining++
	}
	for remaining > 0 && remainingCap > 1e-12 {
		share := remainingCap / float64(remaining)
		progress := false
		for i, f := range flows {
			if active[i] && f.Cwnd-alloc[i] <= share {
				// Demand satisfied.
				remainingCap -= f.Cwnd - alloc[i]
				alloc[i] = f.Cwnd
				active[i] = false
				remaining--
				progress = true
			}
		}
		if !progress {
			// Everyone wants at least the share: split evenly.
			for i := range flows {
				if active[i] {
					alloc[i] += share
				}
			}
			remainingCap = 0
		}
	}
	return alloc
}

// Run executes n rounds.
func (b *Bottleneck) Run(n int) {
	for i := 0; i < n; i++ {
		b.Step()
	}
}

// Goodput returns total delivered per round.
func (b *Bottleneck) Goodput() float64 {
	if b.Rounds == 0 {
		return 0
	}
	return b.TotalDelivered / float64(b.Rounds)
}

// LossRate returns the fraction of offered traffic lost.
func (b *Bottleneck) LossRate() float64 {
	total := b.TotalDelivered + b.TotalLost
	if total == 0 {
		return 0
	}
	return b.TotalLost / total
}

// ShareOf returns the fraction of delivered traffic that went to flows
// selected by pred — e.g. the cheaters' share.
func (b *Bottleneck) ShareOf(pred func(*Flow) bool) float64 {
	if b.TotalDelivered == 0 {
		return 0
	}
	got := 0.0
	for _, f := range b.Flows {
		if pred(f) {
			got += f.Delivered
		}
	}
	return got / b.TotalDelivered
}

// JainIndex computes Jain's fairness index over per-flow delivered
// totals: 1.0 is perfectly fair, 1/n is maximally unfair.
func (b *Bottleneck) JainIndex() float64 {
	var sum, sumSq float64
	for _, f := range b.Flows {
		sum += f.Delivered
		sumSq += f.Delivered * f.Delivered
	}
	n := float64(len(b.Flows))
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (n * sumSq)
}

// SocialPressure models the paper's out-of-band enforcement: with
// probability pDetect per round, one aggressive flow is caught (by its
// ISP, by the community) and converted to compliant behaviour. Returns
// the number converted over the run.
func SocialPressure(b *Bottleneck, rng *sim.RNG, pDetect float64, rounds int) int {
	converted := 0
	for i := 0; i < rounds; i++ {
		b.Step()
		if rng.Bool(pDetect) {
			for _, f := range b.Flows {
				if f.Aggressive {
					f.Aggressive = false
					converted++
					break
				}
			}
		}
	}
	return converted
}
