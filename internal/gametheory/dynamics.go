package gametheory

import "math"

// BestResponseDynamics iterates alternating pure best responses from a
// starting profile, returning the visited profiles. A cycle with period
// > 1 means the tussle has "no final outcome, no stable point" — the
// paper's run-time tussle; a fixed point is a pure Nash equilibrium.
func (g *Game) BestResponseDynamics(startRow, startCol, maxSteps int) (profiles [][2]int, converged bool) {
	i, j := startRow, startCol
	profiles = append(profiles, [2]int{i, j})
	for s := 0; s < maxSteps; s++ {
		ni := i
		best := math.Inf(-1)
		for r := 0; r < g.Rows(); r++ {
			if g.A[r][j] > best {
				best, ni = g.A[r][j], r
			}
		}
		nj := j
		best = math.Inf(-1)
		for c := 0; c < g.Cols(); c++ {
			if g.B[ni][c] > best {
				best, nj = g.B[ni][c], c
			}
		}
		if ni == i && nj == j {
			return profiles, true
		}
		i, j = ni, nj
		profiles = append(profiles, [2]int{i, j})
	}
	return profiles, false
}

// Replicator runs discrete-time replicator dynamics on a symmetric game
// (payoff matrix A, one population): the evolutionary/bounded-rationality
// model of §II-B ("actors are often ill-informed, myopic"). It returns
// the population mix after steps iterations.
func Replicator(a [][]float64, initial []float64, steps int) []float64 {
	n := len(a)
	x := make([]float64, n)
	copy(x, initial)
	for s := 0; s < steps; s++ {
		fitness := make([]float64, n)
		var avg float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				fitness[i] += a[i][j] * x[j]
			}
			avg += x[i] * fitness[i]
		}
		// Shift payoffs to keep fitness positive for the ratio update.
		minF := math.Inf(1)
		for _, f := range fitness {
			minF = math.Min(minF, f)
		}
		shift := 0.0
		if minF <= 0 {
			shift = -minF + 1
		}
		total := 0.0
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			next[i] = x[i] * (fitness[i] + shift)
			total += next[i]
		}
		if total == 0 {
			return x
		}
		for i := range next {
			next[i] /= total
		}
		x = next
	}
	return x
}

// RepeatedStrategy plays an iterated two-action game (0 = cooperate,
// 1 = defect by convention).
type RepeatedStrategy interface {
	Name() string
	// Play returns the next action given both players' full histories
	// (own first).
	Play(own, other []int) int
}

// Strategy implementations for the iterated tussle.
type (
	// AlwaysCooperate never defects.
	AlwaysCooperate struct{}
	// AlwaysDefect always defects.
	AlwaysDefect struct{}
	// TitForTat cooperates first, then mirrors the opponent.
	TitForTat struct{}
	// GrimTrigger cooperates until the first defection, then defects
	// forever — the "social pressure" enforcement §II-B describes.
	GrimTrigger struct{}
)

// Name and Play implement RepeatedStrategy for each strategy type.
func (AlwaysCooperate) Name() string        { return "always-cooperate" }
func (AlwaysCooperate) Play(_, _ []int) int { return 0 }
func (AlwaysDefect) Name() string           { return "always-defect" }
func (AlwaysDefect) Play(_, _ []int) int    { return 1 }
func (TitForTat) Name() string              { return "tit-for-tat" }
func (TitForTat) Play(own, other []int) int {
	if len(other) == 0 {
		return 0
	}
	return other[len(other)-1]
}
func (GrimTrigger) Name() string { return "grim-trigger" }
func (GrimTrigger) Play(own, other []int) int {
	for _, a := range other {
		if a == 1 {
			return 1
		}
	}
	return 0
}

// PlayRepeated runs an iterated game between two strategies for rounds
// rounds and returns cumulative payoffs.
func PlayRepeated(g *Game, s1, s2 RepeatedStrategy, rounds int) (p1, p2 float64) {
	var h1, h2 []int
	for r := 0; r < rounds; r++ {
		a1 := s1.Play(h1, h2)
		a2 := s2.Play(h2, h1)
		p1 += g.A[a1][a2]
		p2 += g.B[a1][a2]
		h1 = append(h1, a1)
		h2 = append(h2, a2)
	}
	return p1, p2
}

// Tournament plays every pair (including self-play) for rounds rounds
// and returns total scores, Axelrod style.
func Tournament(g *Game, strategies []RepeatedStrategy, rounds int) map[string]float64 {
	scores := make(map[string]float64, len(strategies))
	for i, s1 := range strategies {
		for j, s2 := range strategies {
			if j < i {
				continue
			}
			p1, p2 := PlayRepeated(g, s1, s2, rounds)
			scores[s1.Name()] += p1
			if i != j {
				scores[s2.Name()] += p2
			}
		}
	}
	return scores
}
