package main

import (
	"encoding/json"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// expMetrics is one experiment's isolated metric snapshot.
type expMetrics struct {
	ID      string        `json:"id"`
	Metrics *obs.Snapshot `json:"metrics"`
}

// metricsOut is the -metrics file layout: the suite-wide aggregate (what
// RunAll merged across workers) plus a per-experiment breakdown, each
// experiment re-run against a fresh registry so its numbers attribute
// cleanly. Everything inside is deterministic for the seed — snapshot
// sections are name-sorted and record only simulated quantities — so two
// runs at the same seed write byte-identical files.
type metricsOut struct {
	Seed        uint64        `json:"seed"`
	Suite       *obs.Snapshot `json:"suite"`
	Experiments []expMetrics  `json:"experiments"`
}

// collectMetrics builds the per-experiment breakdown for instrumented
// experiments (uninstrumented ones record nothing and are omitted).
func collectMetrics(seed uint64, suite *obs.Registry) metricsOut {
	out := metricsOut{Seed: seed, Suite: suite.Snapshot()}
	for _, exp := range experiments.List() {
		reg := obs.NewRegistry()
		exp.RunWith(seed, &obs.Env{Metrics: reg})
		snap := reg.Snapshot()
		if len(snap.Counters) == 0 && len(snap.Gauges) == 0 && len(snap.Histograms) == 0 {
			continue
		}
		out.Experiments = append(out.Experiments, expMetrics{ID: exp.ID, Metrics: snap})
	}
	return out
}

// writeMetrics runs the breakdown and writes the JSON file.
func writeMetrics(path string, seed uint64, suite *obs.Registry) error {
	buf, err := json.MarshalIndent(collectMetrics(seed, suite), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
