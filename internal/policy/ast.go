package policy

import (
	"fmt"
	"strings"
)

// ValueKind enumerates runtime value types.
type ValueKind uint8

// Value kinds.
const (
	KindBool ValueKind = iota
	KindNumber
	KindString
	KindList
)

// Value is a runtime value in the policy language.
type Value struct {
	Kind ValueKind
	B    bool
	N    float64
	S    string
	L    []Value
}

// Bool, Num, Str, and List construct values.
func Bool(b bool) Value      { return Value{Kind: KindBool, B: b} }
func Num(n float64) Value    { return Value{Kind: KindNumber, N: n} }
func Str(s string) Value     { return Value{Kind: KindString, S: s} }
func List(vs ...Value) Value { return Value{Kind: KindList, L: vs} }

// Equal compares two values structurally.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindBool:
		return v.B == o.B
	case KindNumber:
		return v.N == o.N
	case KindString:
		return v.S == o.S
	default:
		if len(v.L) != len(o.L) {
			return false
		}
		for i := range v.L {
			if !v.L[i].Equal(o.L[i]) {
				return false
			}
		}
		return true
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindBool:
		return fmt.Sprintf("%v", v.B)
	case KindNumber:
		if v.N == float64(int64(v.N)) {
			return fmt.Sprintf("%d", int64(v.N))
		}
		return fmt.Sprintf("%g", v.N)
	case KindString:
		return fmt.Sprintf("%q", v.S)
	default:
		parts := make([]string, len(v.L))
		for i, e := range v.L {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
}

// Expr is a policy expression AST node.
type Expr interface {
	// refs appends the attribute names this expression reads.
	refs(into *[]string)
	String() string
}

// LitExpr is a literal value.
type LitExpr struct{ V Value }

func (e *LitExpr) refs(*[]string) {}
func (e *LitExpr) String() string { return e.V.String() }

// RefExpr reads an attribute from the environment.
type RefExpr struct {
	Name string
	// unknownErr is the pre-wrapped unknown-attribute error, built once
	// at construction so the Eval miss path never calls fmt.Sprintf —
	// policies probing for absent attributes are a hot-path allocation
	// vector otherwise (the same hardening the packet decoder applies to
	// its static errors). Nil for hand-built literals; Eval falls back
	// to formatting then.
	unknownErr error
}

// NewRefExpr builds an attribute reference with its unknown-attribute
// error pre-wrapped. The parser uses it; hand-built ASTs may use a bare
// &RefExpr{Name: ...} literal at the cost of an allocation per miss.
func NewRefExpr(name string) *RefExpr {
	return &RefExpr{
		Name:       name,
		unknownErr: &EvalError{Msg: fmt.Sprintf("unknown attribute %q", name)},
	}
}

func (e *RefExpr) refs(into *[]string) { *into = append(*into, e.Name) }
func (e *RefExpr) String() string      { return e.Name }

// UnaryExpr is logical negation.
type UnaryExpr struct{ X Expr }

func (e *UnaryExpr) refs(into *[]string) { e.X.refs(into) }
func (e *UnaryExpr) String() string      { return "!" + e.X.String() }

// BinExpr is a binary operation: comparison, logic, or membership.
type BinExpr struct {
	Op   string // == != < > <= >= && || in
	L, R Expr
}

func (e *BinExpr) refs(into *[]string) { e.L.refs(into); e.R.refs(into) }
func (e *BinExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// ListExpr is a list literal.
type ListExpr struct{ Elems []Expr }

func (e *ListExpr) refs(into *[]string) {
	for _, el := range e.Elems {
		el.refs(into)
	}
}
func (e *ListExpr) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// ActionKind enumerates rule outcomes.
type ActionKind uint8

// Rule outcomes.
const (
	// Permit allows the action.
	Permit ActionKind = iota
	// Deny refuses it, with an optional reason — visible denial is the
	// paper's courtesy requirement ("require that devices reveal if
	// they impose limitations").
	Deny
	// Require demands an additional attribute/capability before
	// permitting (e.g. an identity scheme, a payment voucher).
	Require
	// Price permits subject to a charge.
	Price
)

func (a ActionKind) String() string {
	switch a {
	case Permit:
		return "permit"
	case Deny:
		return "deny"
	case Require:
		return "require"
	default:
		return "price"
	}
}

// Action is the consequent of a rule.
type Action struct {
	Kind   ActionKind
	Reason string  // Deny
	What   string  // Require
	Amount float64 // Price
}

// Rule is one named when/then clause.
type Rule struct {
	Name string
	When Expr
	Then Action
}

// Document is a parsed policy.
type Document struct {
	Name      string
	Principal string
	AppliesTo string
	Rules     []Rule
	// Default applies when no rule matches; when absent the document
	// default is Deny ("that which is not permitted is forbidden").
	Default    *Action
	HasDefault bool
}

// Attributes returns the sorted, deduplicated set of attribute names the
// document's rules reference — its ontology footprint.
func (d *Document) Attributes() []string {
	var all []string
	for _, r := range d.Rules {
		r.When.refs(&all)
	}
	seen := map[string]bool{}
	var out []string
	for _, a := range all {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
