package topology

import "repro/internal/sim"

// This file partitions a topology's nodes across K simulation shards.
// The partition is a contiguous-range split of the dense node index
// (NodeIDs in ascending order), so it is a pure function of the node set
// and K — no hashing, no map iteration — and therefore reproducible
// across runs and machines. The sharded simulation core sizes its
// conservative-lookahead window from MinCrossLatency over the cut.

// Partition assigns every node to one of k shards.
type Partition struct {
	// K is the shard count (>= 1).
	K int
	// shardOf maps NodeID -> shard index; dense, -1 for unknown IDs.
	shardOf []int32
	// Counts is the number of nodes per shard.
	Counts []int
}

// PartitionContiguous splits the graph's nodes into k contiguous ranges
// of the ascending NodeID order, balanced to within one node. k is
// clamped to [1, number of nodes].
func PartitionContiguous(g *Graph, k int) *Partition {
	ids := g.NodeIDs()
	if k < 1 {
		k = 1
	}
	if k > len(ids) && len(ids) > 0 {
		k = len(ids)
	}
	maxID := NodeID(0)
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	p := &Partition{K: k, shardOf: make([]int32, maxID+1), Counts: make([]int, k)}
	for i := range p.shardOf {
		p.shardOf[i] = -1
	}
	n := len(ids)
	base, rem := 0, 0
	if k > 0 {
		base, rem = n/k, n%k
	}
	idx := 0
	for s := 0; s < k; s++ {
		size := base
		if s < rem {
			size++
		}
		for j := 0; j < size; j++ {
			p.shardOf[ids[idx]] = int32(s)
			p.Counts[s]++
			idx++
		}
	}
	return p
}

// ShardOf returns the shard owning id, or -1 for unknown IDs.
func (p *Partition) ShardOf(id NodeID) int32 {
	if int(id) >= len(p.shardOf) {
		return -1
	}
	return p.shardOf[id]
}

// Table exposes the dense NodeID -> shard mapping for hot-path use. The
// returned slice is shared; callers must not modify it.
func (p *Partition) Table() []int32 { return p.shardOf }

// CrossLinks returns how many links have endpoints in different shards.
func (p *Partition) CrossLinks(g *Graph) int {
	cross := 0
	for _, l := range g.Links {
		if p.ShardOf(l.A) != p.ShardOf(l.B) {
			cross++
		}
	}
	return cross
}

// MinCrossLatency returns the smallest propagation latency over links
// whose endpoints live in different shards, and whether any such link
// exists. This is the conservative lookahead of the sharded event loop:
// a packet crossing shards cannot arrive sooner than the smallest
// cross-shard link latency after it was sent, so shards may safely run
// one such window ahead of each other between barriers.
func (p *Partition) MinCrossLatency(g *Graph) (sim.Time, bool) {
	var min sim.Time
	found := false
	for _, l := range g.Links {
		if p.ShardOf(l.A) == p.ShardOf(l.B) {
			continue
		}
		if !found || l.Latency < min {
			min = l.Latency
			found = true
		}
	}
	return min, found
}
