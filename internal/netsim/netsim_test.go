package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// chainNet builds a 1-2-3-4 chain with static next-hop routing.
func chainNet(t *testing.T) (*Network, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	g := topology.Linear(4, sim.Millisecond)
	n := New(sched, g)
	for id := topology.NodeID(1); id <= 4; id++ {
		id := id
		n.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			switch {
			case d == id:
				return id, true
			case d > id:
				return id + 1, true
			default:
				return id - 1, true
			}
		}
	}
	return n, sched
}

func mkPkt(t *testing.T, src, dst packet.Addr, ttl uint8) []byte {
	t.Helper()
	data, err := packet.Serialize(
		&packet.TIP{TTL: ttl, Proto: packet.LayerTypeRaw, Src: src, Dst: dst},
		&packet.Raw{Data: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDeliveryAcrossChain(t *testing.T) {
	n, sched := chainNet(t)
	var got []byte
	n.Node(4).Deliver = func(nd *Node, tr *Trace, data []byte) { got = data }
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 5), packet.MakeAddr(4, 9), 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("not delivered: %+v", tr)
	}
	if got == nil {
		t.Fatal("deliver handler not invoked")
	}
	path := tr.Path()
	want := []topology.NodeID{1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if tr.Latency() <= 0 {
		t.Fatal("latency should be positive")
	}
	if n.DeliveryRatio() != 1 {
		t.Fatalf("delivery ratio = %v", n.DeliveryRatio())
	}
}

func TestTTLExpiry(t *testing.T) {
	n, sched := chainNet(t)
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 2))
	sched.Run()
	if tr.Delivered {
		t.Fatal("packet with ttl=2 should expire on a 3-hop path")
	}
	if tr.DropReason != "ttl" {
		t.Fatalf("drop reason = %q", tr.DropReason)
	}
}

func TestNoRouteDrop(t *testing.T) {
	sched := sim.NewScheduler()
	g := topology.Linear(2, sim.Millisecond)
	n := New(sched, g)
	// Node 1 has no Route.
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(2, 1), 8))
	sched.Run()
	if tr.Delivered || tr.DropReason != "no-route" {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestBadNextHopDrop(t *testing.T) {
	sched := sim.NewScheduler()
	g := topology.Linear(3, sim.Millisecond)
	n := New(sched, g)
	n.Node(1).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
		return 3, true // not adjacent to 1
	}
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(3, 1), 8))
	sched.Run()
	if tr.DropReason != "bad-next-hop" {
		t.Fatalf("drop reason = %q", tr.DropReason)
	}
}

func TestMalformedDrop(t *testing.T) {
	n, sched := chainNet(t)
	tr := n.Send(1, []byte{1, 2, 3})
	sched.Run()
	if tr.DropReason != "malformed" {
		t.Fatalf("drop reason = %q", tr.DropReason)
	}
}

type dropBox struct {
	name   string
	silent bool
	hit    int
}

func (d *dropBox) Name() string { return d.name }
func (d *dropBox) Silent() bool { return d.silent }
func (d *dropBox) Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict) {
	d.hit++
	return nil, Drop
}

func TestMiddleboxDropVisible(t *testing.T) {
	n, sched := chainNet(t)
	fw := &dropBox{name: "fw2"}
	n.Node(2).AddMiddlebox(fw)
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 8))
	sched.Run()
	if tr.Delivered {
		t.Fatal("should be blocked")
	}
	if tr.DropReason != "blocked:fw2" {
		t.Fatalf("drop reason = %q", tr.DropReason)
	}
	if fw.hit != 1 {
		t.Fatalf("middlebox hit %d times", fw.hit)
	}
}

func TestMiddleboxDropSilent(t *testing.T) {
	n, sched := chainNet(t)
	n.Node(2).AddMiddlebox(&dropBox{name: "covert", silent: true})
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 8))
	sched.Run()
	if tr.DropReason != "lost" {
		t.Fatalf("silent drop leaked identity: %q", tr.DropReason)
	}
	// But the trace still shows the last node reached — path inference.
	if tr.DropNode != 2 {
		t.Fatalf("drop node = %d", tr.DropNode)
	}
}

func TestRemoveMiddlebox(t *testing.T) {
	n, _ := chainNet(t)
	nd := n.Node(2)
	nd.AddMiddlebox(&dropBox{name: "a"})
	nd.AddMiddlebox(&dropBox{name: "b"})
	if !nd.RemoveMiddlebox("a") || len(nd.Middleboxes) != 1 {
		t.Fatal("remove failed")
	}
	if nd.RemoveMiddlebox("zzz") {
		t.Fatal("removed nonexistent middlebox")
	}
}

func TestSourceRouteHonored(t *testing.T) {
	// Diamond: 1-2-4 and 1-3-4. Default routing prefers via 2; the
	// source route forces via 3.
	sched := sim.NewScheduler()
	g := topology.NewGraph()
	for i := 1; i <= 4; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(2, 4, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(1, 3, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(3, 4, topology.PeerOf, sim.Millisecond, 1)
	n := New(sched, g)
	routes := map[topology.NodeID]map[uint16]topology.NodeID{
		1: {2: 2, 3: 3, 4: 2},
		2: {1: 1, 4: 4, 3: 1},
		3: {1: 1, 4: 4, 2: 1},
		4: {2: 2, 3: 3, 1: 2},
	}
	for id, tbl := range routes {
		tbl := tbl
		nd := n.Node(id)
		nd.HonorSourceRoutes = true
		nd.Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			nh, ok := tbl[dst.Provider()]
			return nh, ok
		}
	}
	mk := func(srcRoute *packet.SourceRouteOption) []byte {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 8, Proto: packet.LayerTypeRaw,
				Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1),
				SourceRoute: srcRoute},
			&packet.Raw{Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	trDefault := n.Send(1, mk(nil))
	trForced := n.Send(1, mk(&packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(3, 0)}}))
	sched.Run()

	if !trDefault.Delivered || !trForced.Delivered {
		t.Fatalf("deliveries: default=%v forced=%v (%s)", trDefault.Delivered, trForced.Delivered, trForced.DropReason)
	}
	if p := trDefault.Path(); p[1] != 2 {
		t.Fatalf("default path = %v, want via 2", p)
	}
	if p := trForced.Path(); p[1] != 3 {
		t.Fatalf("source-routed path = %v, want via 3", p)
	}
}

func TestSourceRouteIgnoredWithoutHonor(t *testing.T) {
	n, sched := chainNet(t)
	// Source route pointing backwards; nodes don't honor it, so the
	// packet follows normal forwarding.
	data, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeRaw,
			Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1),
			SourceRoute: &packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(1, 0)}}},
		&packet.Raw{Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	tr := n.Send(1, data)
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("dropped: %s", tr.DropReason)
	}
}

func TestSourceRouteRequiresPayment(t *testing.T) {
	n, sched := chainNet(t)
	for id := topology.NodeID(1); id <= 4; id++ {
		nd := n.Node(id)
		nd.HonorSourceRoutes = true
		nd.RequirePaymentForSourceRoute = true
	}
	mk := func(pay *packet.PaymentOption) []byte {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 8, Proto: packet.LayerTypeRaw,
				Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1),
				SourceRoute: &packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(3, 0)}},
				Payment:     pay},
			&packet.Raw{Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	trUnpaid := n.Send(1, mk(nil))
	trPaid := n.Send(1, mk(&packet.PaymentOption{Payer: packet.MakeAddr(1, 1), AmountMilli: 100}))
	sched.Run()
	if !trUnpaid.Delivered || !trPaid.Delivered {
		t.Fatal("both should still deliver on a chain")
	}
	// The unpaid packet's source route was ignored (fell back to Route);
	// node 1 counts it.
	if n.Node(1).Counters.Get("srcroute_unpaid") == 0 {
		t.Fatal("unpaid source route not flagged")
	}
	if n.Node(1).Counters.Get("srcroute_honored") == 0 {
		t.Fatal("paid source route not honored")
	}
}

func TestQueueOverflow(t *testing.T) {
	n, sched := chainNet(t)
	n.LinkRate = 1e4 // very slow link: 10 KB/s
	n.MaxQueue = 10 * sim.Millisecond
	var traces []*Trace
	for i := 0; i < 50; i++ {
		traces = append(traces, n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(2, 1), 8)))
	}
	sched.Run()
	drops := 0
	for _, tr := range traces {
		if tr.DropReason == "queue-overflow" {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("expected queue overflow drops on a saturated link")
	}
}

func TestTraceLatencyReflectsLinkDelay(t *testing.T) {
	n, sched := chainNet(t)
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(2, 1), 8))
	sched.Run()
	if !tr.Delivered {
		t.Fatal("not delivered")
	}
	if tr.Latency() < sim.Millisecond {
		t.Fatalf("latency %v below the 1ms link delay", tr.Latency())
	}
}

func TestUnknownNodePanics(t *testing.T) {
	n, _ := chainNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Node(99)
}

type rewriteBox struct{ to packet.Addr }

func (r *rewriteBox) Name() string { return "redirector" }
func (r *rewriteBox) Silent() bool { return false }
func (r *rewriteBox) Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict) {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		return nil, Accept
	}
	if tip.Dst == r.to {
		return nil, Accept
	}
	payload := make([]byte, len(tip.LayerPayload()))
	copy(payload, tip.LayerPayload())
	tip2 := tip
	tip2.Dst = r.to
	out, err := packet.Serialize(&tip2, &packet.Raw{Data: payload})
	if err != nil {
		return nil, Accept
	}
	return out, Accept
}

func TestMiddleboxTransformRedirects(t *testing.T) {
	// Node 2 redirects everything to node 3 — "connection redirection"
	// from §VI-A.
	n, sched := chainNet(t)
	n.Node(2).AddMiddlebox(&rewriteBox{to: packet.MakeAddr(3, 1)})
	delivered := map[topology.NodeID]bool{}
	for _, id := range []topology.NodeID{3, 4} {
		id := id
		n.Node(id).Deliver = func(nd *Node, tr *Trace, data []byte) { delivered[id] = true }
	}
	tr := n.Send(1, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 8))
	sched.Run()
	if !tr.Delivered || !delivered[3] || delivered[4] {
		t.Fatalf("redirect failed: delivered=%v trace=%+v", delivered, tr)
	}
}
