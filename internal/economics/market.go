// Package economics implements the market substrate for the economic
// tussle spaces of §V-A: providers with pricing strategies, consumers
// with preferences and switching costs, round-based competition dynamics,
// and a conserved-value payment ledger (the "value flow" protocol
// support of §IV-C).
//
// The engine deliberately models the two "drivers of investment" the
// paper names: greed (providers reprice toward willingness-to-pay when
// customers cannot leave) and fear (competition disciplines prices when
// switching is cheap). Provider lock-in enters as a per-consumer
// switching cost — high when renumbering is hard (§V-A1), low with
// DHCP/dynamic-update mechanisms.
package economics

import (
	"math"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Offer is what a provider sells: a price and service attributes that
// consumers value.
type Offer struct {
	// Price per round.
	Price float64
	// AllowsServers: no value-pricing server ban (§V-A2).
	AllowsServers bool
	// ServerSurcharge is the extra "business tier" price for consumers
	// who run servers, when servers are otherwise banned.
	ServerSurcharge float64
	// AllowsEncryption: carries opaque encrypted traffic (§VI-A).
	AllowsEncryption bool
	// QoS: offers the premium service class openly (§VII).
	QoS bool
	// QoSPrice is the surcharge for QoS, when offered.
	QoSPrice float64
}

// Strategy updates a provider's offer each round given a market view.
type Strategy interface {
	Reprice(p *Provider, view MarketView) Offer
	Name() string
}

// MarketView is the public state a strategy may condition on — prices are
// visible (choices exposed), costs are not.
type MarketView struct {
	Prices      []float64
	Subscribers []int
	Round       int
	// Self is the index of the provider being repriced.
	Self int
	// TotalConsumers is the market size.
	TotalConsumers int
}

// Provider is one service provider.
type Provider struct {
	Name string
	// Cost is the marginal cost of serving one consumer per round.
	Cost float64
	// FixedCost is the per-round cost of being in the market at all.
	FixedCost float64
	Offer     Offer
	Strat     Strategy

	Subscribers int
	Revenue     float64
	Profit      float64
	// Alive is false after exit.
	Alive bool
	// lossStreak counts consecutive unprofitable rounds.
	lossStreak int

	// admission is the compiled market-admission policy (see
	// SetAdmissionPolicy in policy.go); nil admits everyone.
	// admissionCodes/admissionSlots are the slot binding and the
	// provider-owned evaluation scratch.
	admission      *policy.Program
	admissionCodes []uint8
	admissionSlots []policy.Value
}

// Consumer is one buyer.
type Consumer struct {
	ID int
	// WTP is base willingness to pay per round.
	WTP float64
	// RunsServer, WantsEncryption, WantsQoS mark feature demand; each
	// adds the corresponding premium to the consumer's valuation of an
	// offer that satisfies it.
	RunsServer      bool
	WantsEncryption bool
	WantsQoS        bool
	// CanTunnel is the §V-A2 counter-move capability: run a server (or
	// encrypt) despite a ban by tunneling, at a hassle cost.
	CanTunnel bool
	// SwitchCost is what changing providers costs this consumer — the
	// lock-in knob.
	SwitchCost float64

	// Provider indexes the current provider; -1 means unserved.
	Provider int
	// Tunneling reports whether the consumer currently evades via
	// tunnel (a distortion event).
	Tunneling bool
	// Surplus accumulates utility.
	Surplus float64
}

// Premiums consumers attach to features, and the hassle cost of
// tunneling around a restriction.
const (
	ServerPremium     = 4.0
	EncryptionPremium = 3.0
	QoSPremium        = 5.0
	TunnelHassle      = 1.5
)

// valueOf computes a consumer's per-round value for an offer, and whether
// taking it entails tunneling.
func (c *Consumer) valueOf(o Offer) (val float64, tunneling bool) {
	val = c.WTP - o.Price
	if c.RunsServer {
		switch {
		case o.AllowsServers:
			val += ServerPremium
		case o.ServerSurcharge > 0 && ServerPremium-o.ServerSurcharge >= 0:
			// Pay the business tier if it is worth it...
			payTier := ServerPremium - o.ServerSurcharge
			if c.CanTunnel && ServerPremium-TunnelHassle > payTier {
				val += ServerPremium - TunnelHassle
				tunneling = true
			} else {
				val += payTier
			}
		case c.CanTunnel:
			val += ServerPremium - TunnelHassle
			tunneling = true
		}
	}
	if c.WantsEncryption {
		switch {
		case o.AllowsEncryption:
			val += EncryptionPremium
		case c.CanTunnel:
			val += EncryptionPremium - TunnelHassle
			tunneling = true
		}
	}
	if c.WantsQoS && o.QoS {
		net := QoSPremium - o.QoSPrice
		if net > 0 {
			val += net
		}
	}
	return val, tunneling
}

// Market is the assembled round-based market.
type Market struct {
	Providers []*Provider
	Consumers []*Consumer
	RNG       *sim.RNG
	Round     int

	// Switches counts provider changes; Tunnels counts rounds spent
	// tunneling (distortion); Unserved counts consumer-rounds with no
	// acceptable offer.
	Switches, Tunnels, Unserved int

	// obs instruments market clearing; nil means disabled.
	mobs *marketObs
}

// marketObs bundles the market's instruments. The round clock is the
// market's deterministic time base, so per-round distributions stand in
// for span timings.
type marketObs struct {
	rounds   *obs.Counter
	switches *obs.Counter
	tunnels  *obs.Counter
	unserved *obs.Counter
	exits    *obs.Counter
	perRound *obs.Histogram // switches per clearing round
}

// AttachObs enables market observability: counters for rounds cleared,
// provider switches, tunneling (distortion) rounds, unserved
// consumer-rounds, and provider exits, plus the per-round switch
// distribution — the run-time signals the §V-A tussles are argued over
// (who paid, who left, who evaded). A nil registry disables again.
func (m *Market) AttachObs(reg *obs.Registry) {
	if reg == nil {
		m.mobs = nil
		return
	}
	m.mobs = &marketObs{
		rounds:   reg.Counter("econ.market.rounds"),
		switches: reg.Counter("econ.market.switches"),
		tunnels:  reg.Counter("econ.market.tunnels"),
		unserved: reg.Counter("econ.market.unserved"),
		exits:    reg.Counter("econ.market.provider_exits"),
		perRound: reg.Histogram("econ.market.round_switches", obs.CountBuckets),
	}
}

// NewMarket wires providers and consumers together.
func NewMarket(rng *sim.RNG, providers []*Provider, consumers []*Consumer) *Market {
	for _, p := range providers {
		p.Alive = true
	}
	for _, c := range consumers {
		c.Provider = -1
	}
	return &Market{Providers: providers, Consumers: consumers, RNG: rng}
}

// view builds the public market view.
func (m *Market) view() MarketView {
	v := MarketView{Round: m.Round, TotalConsumers: len(m.Consumers)}
	for _, p := range m.Providers {
		price := math.Inf(1)
		subs := 0
		if p.Alive {
			price = p.Offer.Price
			subs = p.Subscribers
		}
		v.Prices = append(v.Prices, price)
		v.Subscribers = append(v.Subscribers, subs)
	}
	return v
}

// Step runs one market round: repricing, consumer choice, accounting,
// and exit of persistently unprofitable providers.
func (m *Market) Step() {
	m.Round++
	switches0, tunnels0, unserved0 := m.Switches, m.Tunnels, m.Unserved
	view := m.view()
	for i, p := range m.Providers {
		if p.Alive && p.Strat != nil {
			view.Self = i
			p.Offer = p.Strat.Reprice(p, view)
			if p.Offer.Price < 0 {
				p.Offer.Price = 0
			}
		}
	}
	// Consumers choose.
	for _, c := range m.Consumers {
		bestIdx, bestVal, bestTun := -1, 0.0, false
		for i, p := range m.Providers {
			if !p.Alive {
				continue
			}
			// Admission policy gates the choice set; current subscribers
			// are grandfathered (contracts outlive policy changes).
			if p.admission != nil && c.Provider != i && !p.admits(c, m.Round) {
				continue
			}
			v, tun := c.valueOf(p.Offer)
			if v > 0 && (bestIdx == -1 || v > bestVal) {
				bestIdx, bestVal, bestTun = i, v, tun
			}
		}
		cur := c.Provider
		if cur >= 0 && !m.Providers[cur].Alive {
			cur = -1
			c.Provider = -1
		}
		switch {
		case bestIdx == -1:
			// No acceptable offer: drop service.
			if cur != -1 {
				c.Provider = -1
			}
			c.Tunneling = false
			m.Unserved++
		case cur == -1:
			c.Provider = bestIdx
			c.Tunneling = bestTun
			c.Surplus += bestVal
		default:
			curVal, curTun := c.valueOf(m.Providers[cur].Offer)
			if bestIdx != cur && bestVal-curVal > c.SwitchCost {
				c.Provider = bestIdx
				c.Tunneling = bestTun
				c.Surplus += bestVal - c.SwitchCost
				m.Switches++
			} else {
				c.Tunneling = curTun
				if curVal > 0 {
					c.Surplus += curVal
				} else {
					// Losing money: leave.
					c.Provider = -1
					c.Tunneling = false
					m.Unserved++
				}
			}
		}
		if c.Tunneling {
			m.Tunnels++
		}
	}
	// Provider accounting.
	for i, p := range m.Providers {
		if !p.Alive {
			continue
		}
		subs := 0
		rev := 0.0
		for _, c := range m.Consumers {
			if c.Provider != i {
				continue
			}
			subs++
			rev += p.Offer.Price
			if c.RunsServer && !p.Offer.AllowsServers && !c.Tunneling && p.Offer.ServerSurcharge > 0 && ServerPremium-p.Offer.ServerSurcharge >= 0 {
				rev += p.Offer.ServerSurcharge
			}
			if c.WantsQoS && p.Offer.QoS && QoSPremium-p.Offer.QoSPrice > 0 {
				rev += p.Offer.QoSPrice
			}
		}
		p.Subscribers = subs
		profit := rev - float64(subs)*p.Cost - p.FixedCost
		p.Revenue += rev
		p.Profit += profit
		if profit < 0 {
			p.lossStreak++
		} else {
			p.lossStreak = 0
		}
		if p.lossStreak >= 8 && subs == 0 {
			p.Alive = false
			if m.mobs != nil {
				m.mobs.exits.Inc()
			}
		}
	}
	if m.mobs != nil {
		m.mobs.rounds.Inc()
		m.mobs.switches.Add(int64(m.Switches - switches0))
		m.mobs.tunnels.Add(int64(m.Tunnels - tunnels0))
		m.mobs.unserved.Add(int64(m.Unserved - unserved0))
		m.mobs.perRound.Observe(float64(m.Switches - switches0))
	}
}

// Run executes n rounds.
func (m *Market) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// MeanPrice is the subscriber-weighted mean price of live providers.
func (m *Market) MeanPrice() float64 {
	subs, total := 0, 0.0
	for _, p := range m.Providers {
		if p.Alive && p.Subscribers > 0 {
			subs += p.Subscribers
			total += p.Offer.Price * float64(p.Subscribers)
		}
	}
	if subs == 0 {
		return 0
	}
	return total / float64(subs)
}

// ConsumerSurplus sums accumulated consumer surplus.
func (m *Market) ConsumerSurplus() float64 {
	total := 0.0
	for _, c := range m.Consumers {
		total += c.Surplus
	}
	return total
}

// ProducerProfit sums accumulated provider profit.
func (m *Market) ProducerProfit() float64 {
	total := 0.0
	for _, p := range m.Providers {
		total += p.Profit
	}
	return total
}

// HHI is the Herfindahl–Hirschman concentration index of subscriber
// shares (0..1; 1 = monopoly).
func (m *Market) HHI() float64 {
	total := 0
	for _, p := range m.Providers {
		if p.Alive {
			total += p.Subscribers
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, p := range m.Providers {
		if p.Alive {
			share := float64(p.Subscribers) / float64(total)
			h += share * share
		}
	}
	return h
}

// AliveProviders counts providers still in the market.
func (m *Market) AliveProviders() int {
	n := 0
	for _, p := range m.Providers {
		if p.Alive {
			n++
		}
	}
	return n
}
