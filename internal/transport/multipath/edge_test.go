package multipath

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// Edge cases of the demotion / probation / promotion machine that the
// chaos-driven tests only hit probabilistically, pinned here
// deterministically: the fully parked window (every path in probation
// at once), a single surviving path under the loss-adaptive strategy,
// and re-striping after a path is declared dead while owning zero
// in-flight segments.

// TestFullParkThenPromotion drives every path into probation at the
// same time: with no ACKs at all, each path accumulates consecutive
// timeouts and demotes, the window parks (no eligible path), and the
// sender goes quiet except for probes. A single ACK credit must then
// promote one path, un-park the window, and let the scripted remainder
// complete the transfer with no timers left behind.
func TestFullParkThenPromotion(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.Window = 4
	cfg.SegmentSize = 64
	cfg.RTO = 10 * sim.Millisecond
	cfg.MaxRTO = 40 * sim.Millisecond
	cfg.MaxRetries = 20
	cfg.DemoteAfter = 2
	cfg.ProbeEvery = 25 * sim.Millisecond
	cfg.MaxProbes = 50
	s := NewDriverSender(
		Driver{Clock: SimClock{sched}, Xmit: func(p *Path, seq uint32) error { return nil }},
		&ShortestK{}, fuzzCands(), 8, 9, 7000, make([]byte, 4*64), cfg)
	var trace []string
	s.SetTrace(func(l string) { trace = append(trace, l) })

	// By 100ms every path has timed out DemoteAfter times; check the
	// full park from inside the run, then revive.
	sched.After(100*sim.Millisecond, func() {
		for _, p := range s.Paths() {
			if p.State != PathProbation {
				t.Errorf("path %d at 100ms: state %v, want probation", p.Index, p.State)
			}
		}
	})
	sched.After(120*sim.Millisecond, func() { s.HandleAck(fuzzAck(0, 2)) }) // credit → promote path 1
	sched.After(140*sim.Millisecond, func() { s.HandleAck(fuzzAck(4, 2)) }) // complete
	s.Start()
	sched.Run()

	if !s.Done() || s.Failed() {
		t.Fatalf("transfer did not complete after promotion: %+v", s.Stats())
	}
	joined := strings.Join(trace, "\n")
	if !strings.Contains(joined, "park seq=") {
		t.Fatal("window never parked despite all paths in probation")
	}
	if got := s.Stats().Demotions; got < 3 {
		t.Fatalf("want all 3 paths demoted, got %d demotions", got)
	}
	if got := s.Stats().Promotions; got < 1 {
		t.Fatalf("promotion never happened (got %d)", got)
	}
	if p := sched.Pending(); p != 0 {
		t.Fatalf("%d timers pending after completion", p)
	}
}

// TestLossAdaptiveSingleSurvivor kills two of the three disjoint paths:
// loss-adaptive must finish the stream on the lone survivor, with the
// dead paths demoted and the survivor's loss estimate clean.
func TestLossAdaptiveSingleSurvivor(t *testing.T) {
	sched, net := mpNet()
	r := InstallReceiver(net, 9, 7000)
	data := mpPayload(32 << 10)
	s := NewSender(net, &LossAdaptive{}, 8, 9, 7000, data, mpConfig(42))
	sched.After(2*sim.Millisecond, func() {
		net.FailLink(9, 1)
		net.FailLink(9, 2)
	})
	s.Start()
	sched.Run()

	st := s.Stats()
	if !st.Done || st.Failed {
		t.Fatalf("transfer died with one surviving path: %+v", st)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("stream corrupted on the surviving path")
	}
	if st.Demotions < 2 {
		t.Fatalf("want both severed paths demoted, got %d demotions", st.Demotions)
	}
	var survivors int
	for _, p := range s.Paths() {
		if p.State == PathActive {
			survivors++
			if p.Loss > 0.5 {
				t.Fatalf("survivor path %d loss estimate %.3f poisoned by other paths' failures", p.Index, p.Loss)
			}
		}
	}
	if survivors != 1 {
		t.Fatalf("want exactly 1 surviving active path, got %d", survivors)
	}
	if p := sched.Pending(); p != 0 {
		t.Fatalf("%d timers pending after completion", p)
	}
}

// TestRestripeAfterPathDeath severs one path and shrinks the probe
// budget so it is declared dead mid-transfer. By death the path owns
// zero in-flight segments (each timeout reassigned its flights to
// surviving paths), and striping must rebalance: the remainder of the
// stream completes over both survivors.
func TestRestripeAfterPathDeath(t *testing.T) {
	sched, net := mpNet()
	r := InstallReceiver(net, 9, 7000)
	cfg := mpConfig(7)
	cfg.ProbeEvery = 10 * sim.Millisecond
	cfg.MaxProbes = 2
	data := mpPayload(64 << 10)
	s := NewSender(net, &DisjointnessMax{}, 8, 9, 7000, data, cfg)
	var trace []string
	s.SetTrace(func(l string) { trace = append(trace, l) })
	sched.After(5*sim.Millisecond, func() { net.FailLink(9, 2) })
	s.Start()
	sched.Run()

	st := s.Stats()
	if !st.Done || st.Failed {
		t.Fatalf("transfer did not survive the path death: %+v", st)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("stream corrupted after re-striping")
	}
	var dead *Path
	for _, p := range s.Paths() {
		if p.State == PathDead {
			q := p
			dead = &q
		}
	}
	if dead == nil {
		t.Fatalf("no path declared dead (trace: %d lines, demotions %d)", len(trace), st.Demotions)
	}
	if !strings.Contains(strings.Join(trace, "\n"), fmt.Sprintf("dead path=%d", dead.Index)) {
		t.Fatal("death not recorded in the decision log")
	}
	// Re-striping: both survivors carried post-death segments. The
	// receiver's echo histogram must show substantial traffic on two
	// distinct path IDs.
	live := 0
	for id, n := range r.PathSegments {
		if id != dead.Index+1 && n > 10 {
			live++
		}
	}
	if live < 2 {
		t.Fatalf("stream did not re-stripe across both survivors: distribution %v (dead path %d)",
			r.PathSegments, dead.Index)
	}
	if p := sched.Pending(); p != 0 {
		t.Fatalf("%d timers pending after completion", p)
	}
}

// TestNoSharedRetransmitTick pins the per-path jitter stream fix: RTO
// jitter is drawn from each path's own seeded RNG fork (never a shared
// stream), so two paths arming timers for the same base timeout still
// land on distinct ticks. Shared ticks would synchronize retransmit
// bursts across paths — exactly the thundering-herd pattern the jitter
// exists to break. Checked across many seeds on the driver substrate
// (the same code path the wire sender runs).
func TestNoSharedRetransmitTick(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		sched := sim.NewScheduler()
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Window = 6
		cfg.SegmentSize = 64
		cfg.RTO = 10 * sim.Millisecond
		cfg.MaxRTO = 80 * sim.Millisecond
		cfg.MaxRetries = 4
		s := NewDriverSender(
			Driver{Clock: SimClock{sched}, Xmit: func(p *Path, seq uint32) error { return nil }},
			&ShortestK{}, fuzzCands(), 8, 9, 7000, make([]byte, 6*64), cfg)
		ticks := map[int64]int{} // absolute retransmit tick → owning path
		s.SetTrace(func(l string) {
			var at, seq, path, rto int64
			var retx bool
			if n, err := fmt.Sscanf(l, "t=%d tx seq=%d path=%d retx=%t rto=%d", &at, &seq, &path, &retx, &rto); n == 5 && err == nil {
				tick := at + rto
				if owner, ok := ticks[tick]; ok && owner != int(path) {
					t.Fatalf("seed %d: paths %d and %d share retransmit tick t=%d", seed, owner, path, tick)
				}
				ticks[tick] = int(path)
			}
		})
		s.Start()
		sched.Run() // no ACKs: every segment retries to exhaustion
		if len(ticks) < 6 {
			t.Fatalf("seed %d: trace recorded only %d transmissions", seed, len(ticks))
		}
	}
}
