package fiber

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func threeTenants(cheat bool) []*Tenant {
	return []*Tenant{
		{Name: "isp-a", Entitlement: 0.5, Demand: 600},
		{Name: "isp-b", Entitlement: 0.25, Demand: 300},
		{Name: "isp-c", Entitlement: 0.25, Demand: func() float64 {
			if cheat {
				return 2000 // offered far beyond entitlement
			}
			return 250
		}(), Cheats: cheat},
	}
}

func TestTDMFairUnderEntitledLoad(t *testing.T) {
	f := New(1000, TDM, 250, threeTenants(false)...)
	total := f.Measure()
	// Demands 600+300+250 = 1150 > 1000: weighted fair split.
	if total > 1000+1e-6 {
		t.Fatalf("delivered %v over capacity", total)
	}
	r := f.Verify()
	// isp-a is entitled to 500 and demands 600: must get >= 500.
	if f.Tenants[0].Delivered < 500-1e-6 {
		t.Fatalf("isp-a got %v, entitled to 500", f.Tenants[0].Delivered)
	}
	if r.MaxOverage > 0.05 {
		t.Fatalf("unfair overage %v", r.MaxOverage)
	}
}

func TestTDMEnforcementCapsCheater(t *testing.T) {
	f := New(1000, TDM, 250, threeTenants(true)...)
	f.Measure()
	cheater := f.Tenants[2]
	// The cheater demands 2000 but is entitled to 250; with everyone
	// at or over entitlement, WFQ must hold it near 250.
	if cheater.Delivered > 300 {
		t.Fatalf("cheater got %v of 1000, entitlement 250", cheater.Delivered)
	}
	// And the honest tenants keep their entitlements.
	if f.Tenants[0].Delivered < 500-1e-6 || f.Tenants[1].Delivered < 250-1e-6 {
		t.Fatalf("honest tenants starved: %v / %v",
			f.Tenants[0].Delivered, f.Tenants[1].Delivered)
	}
}

func TestTDMBackfillsIdleCapacity(t *testing.T) {
	// When one tenant is idle, others may use its share — that is
	// efficiency, not unfairness, and Verify must not flag it.
	tenants := []*Tenant{
		{Name: "busy", Entitlement: 0.5, Demand: 1000},
		{Name: "idle", Entitlement: 0.5, Demand: 0},
	}
	f := New(1000, TDM, 500, tenants...)
	f.Measure()
	if tenants[0].Delivered < 999 {
		t.Fatalf("busy tenant got %v, idle capacity wasted", tenants[0].Delivered)
	}
	if r := f.Verify(); r.MaxOverage != 0 {
		t.Fatalf("backfilling flagged as unfair: %v", r.MaxOverage)
	}
}

func TestWDMPhysicalIsolation(t *testing.T) {
	f := New(1000, WDM, 250, threeTenants(true)...)
	f.Measure()
	cheater := f.Tenants[2]
	// One lambda = 250: the cheater physically cannot exceed it.
	if cheater.Delivered != 250 {
		t.Fatalf("cheater got %v on its lambda", cheater.Delivered)
	}
	// isp-a has 2 lambdas (0.5 * 1000 / 250): 500 capacity, demands 600.
	if f.Tenants[0].Delivered != 500 {
		t.Fatalf("isp-a got %v", f.Tenants[0].Delivered)
	}
}

func TestWDMNoBackfill(t *testing.T) {
	// The flip side of physical isolation: idle lambdas are wasted.
	tenants := []*Tenant{
		{Name: "busy", Entitlement: 0.5, Demand: 1000},
		{Name: "idle", Entitlement: 0.5, Demand: 0},
	}
	f := New(1000, WDM, 500, tenants...)
	total := f.Measure()
	if tenants[0].Delivered != 500 {
		t.Fatalf("busy tenant got %v, lambdas don't backfill", tenants[0].Delivered)
	}
	if total != 500 {
		t.Fatalf("total %v: half the fiber idle", total)
	}
}

func TestFaultBlastRadius(t *testing.T) {
	// WDM: a lambda fault kills one tenant.
	fw := New(1000, WDM, 250, threeTenants(false)...)
	fw.FailLambda(1)
	fw.Measure()
	if !fw.Tenants[1].Failed || fw.Tenants[0].Failed || fw.Tenants[2].Failed {
		t.Fatal("lambda fault blast radius wrong")
	}
	if fw.BlastRadius() != 1 {
		t.Fatalf("WDM blast radius = %d", fw.BlastRadius())
	}
	// TDM: a scheduler fault kills everyone.
	ft := New(1000, TDM, 250, threeTenants(false)...)
	ft.FailScheduler()
	if total := ft.Measure(); total != 0 {
		t.Fatalf("TDM scheduler fault left %v flowing", total)
	}
	if ft.BlastRadius() != 3 {
		t.Fatalf("TDM blast radius = %d", ft.BlastRadius())
	}
}

func TestUpgradeGranularity(t *testing.T) {
	ft := New(1000, TDM, 250, threeTenants(false)...)
	fw := New(1000, WDM, 250, threeTenants(false)...)
	if ft.UpgradeGranularity() != 0 {
		t.Fatal("TDM upgrades should be fractional")
	}
	if fw.UpgradeGranularity() != 250 {
		t.Fatal("WDM upgrades come per lambda")
	}
}

func TestDelaySimWFQHoldsAtPacketLevel(t *testing.T) {
	rng := sim.NewRNG(1)
	tenants := threeTenants(true)
	f := New(1e6, TDM, 2.5e5, tenants...)
	delays, err := f.DelaySim(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// The cheater floods, so its queueing delay must be the worst; the
	// entitled tenants stay comparatively fast.
	if delays["isp-c"] <= delays["isp-a"] {
		t.Fatalf("cheater delay %v should exceed honest %v", delays["isp-c"], delays["isp-a"])
	}
}

func TestDelaySimTooManyTenants(t *testing.T) {
	var many []*Tenant
	for i := 0; i < 6; i++ {
		many = append(many, &Tenant{Name: "t", Entitlement: 0.1, Demand: 1})
	}
	f := New(1000, TDM, 100, many...)
	if _, err := f.DelaySim(sim.NewRNG(1), 10); err == nil {
		t.Fatal("expected tenant-count error")
	}
}

func TestTDMConservationQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := rng.Intn(4) + 1
		var tenants []*Tenant
		per := 1.0 / float64(n)
		var demand float64
		for i := 0; i < n; i++ {
			d := rng.Range(0, 800)
			demand += d
			tenants = append(tenants, &Tenant{Name: "t", Entitlement: per, Demand: d})
		}
		fac := New(1000, TDM, 100, tenants...)
		total := fac.Measure()
		want := math.Min(1000, demand)
		return math.Abs(total-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainString(t *testing.T) {
	if TDM.String() != "tdm" || WDM.String() != "wdm" {
		t.Fatal("domain names wrong")
	}
}

func TestTenantNamesSorted(t *testing.T) {
	f := New(1000, TDM, 100,
		&Tenant{Name: "zeta"}, &Tenant{Name: "alpha"})
	names := f.TenantNames()
	if names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}
