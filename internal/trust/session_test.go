package trust

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
)

// pki builds a root CA and a certified principal with its chain.
func pki(rng *sim.RNG, name string) (*Principal, *Principal, []*Certificate) {
	root := NewPrincipal("root-ca", Certified, rng)
	leaf := NewPrincipal(name, Certified, rng)
	chain := []*Certificate{Issue(root, name, leaf.Pub, nil, 1000*sim.Second)}
	return root, leaf, chain
}

func TestEstablishCertifiedBothSides(t *testing.T) {
	rng := sim.NewRNG(1)
	root, alice, aliceChain := pki(rng, "alice")
	bob := NewPrincipal("bob", Certified, rng)
	bobChain := []*Certificate{Issue(root, "bob", bob.Pub, nil, 1000*sim.Second)}
	anchors := Anchors{"root-ca": root.Pub}

	a := &Endpoint{Principal: alice, Chain: aliceChain, Anchors: anchors, RequireCertified: true}
	b := &Endpoint{Principal: bob, Chain: bobChain, Anchors: anchors, RequireCertified: true}
	ka, kb, err := Establish(a, b, rng, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ka, kb) {
		t.Fatal("key mismatch")
	}
	if len(ka) != 32 {
		t.Fatalf("key length %d", len(ka))
	}
}

func TestEstablishRefusesAnonymousWhenRequired(t *testing.T) {
	rng := sim.NewRNG(2)
	root, alice, chain := pki(rng, "alice")
	anchors := Anchors{"root-ca": root.Pub}
	a := &Endpoint{Principal: alice, Chain: chain, Anchors: anchors, RequireCertified: true}
	anon := &Endpoint{} // visibly anonymous
	_, _, err := Establish(a, anon, rng, 10)
	if !errors.Is(err, ErrPeerIdentity) {
		t.Fatalf("err = %v", err)
	}
}

func TestEstablishAcceptsAnonymousWhenAllowed(t *testing.T) {
	rng := sim.NewRNG(3)
	root, alice, chain := pki(rng, "alice")
	anchors := Anchors{"root-ca": root.Pub}
	a := &Endpoint{Principal: alice, Chain: chain, Anchors: anchors}
	anon := &Endpoint{}
	ka, kb, err := Establish(a, anon, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ka, kb) {
		t.Fatal("key mismatch with anonymous peer")
	}
}

func TestEstablishDetectsImpersonation(t *testing.T) {
	rng := sim.NewRNG(4)
	root, alice, aliceChain := pki(rng, "alice")
	anchors := Anchors{"root-ca": root.Pub}
	// Mallory presents alice's chain but signs with her own key.
	mallory := NewPrincipal("alice", Certified, rng) // claims to be alice
	verifier := &Endpoint{Principal: alice, Chain: aliceChain, Anchors: anchors, RequireCertified: true}
	imposter := &Endpoint{Principal: mallory, Chain: aliceChain, Anchors: anchors}

	hi, err := imposter.NewHello(rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.NewHello(rng); err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.Complete(hi, 10); !errors.Is(err, ErrHelloSig) {
		t.Fatalf("impersonation err = %v", err)
	}
}

func TestEstablishRejectsWrongSubjectChain(t *testing.T) {
	rng := sim.NewRNG(5)
	root, alice, _ := pki(rng, "alice")
	anchors := Anchors{"root-ca": root.Pub}
	// Bob presents a valid chain — for carol.
	carol := NewPrincipal("carol", Certified, rng)
	carolChain := []*Certificate{Issue(root, "carol", carol.Pub, nil, 1000*sim.Second)}
	bob := NewPrincipal("bob", Certified, rng)
	verifier := &Endpoint{Principal: alice, Anchors: anchors, RequireCertified: true}
	liar := &Endpoint{Principal: bob, Chain: carolChain}

	hl, err := liar.NewHello(rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.NewHello(rng); err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.Complete(hl, 10); !errors.Is(err, ErrPeerIdentity) {
		t.Fatalf("wrong-subject err = %v", err)
	}
}

func TestEstablishRejectsExpiredChain(t *testing.T) {
	rng := sim.NewRNG(6)
	root := NewPrincipal("root-ca", Certified, rng)
	alice := NewPrincipal("alice", Certified, rng)
	chain := []*Certificate{Issue(root, "alice", alice.Pub, nil, 5*sim.Second)}
	anchors := Anchors{"root-ca": root.Pub}
	bob := NewPrincipal("bob", Certified, rng)
	bobChain := []*Certificate{Issue(root, "bob", bob.Pub, nil, 1000*sim.Second)}

	a := &Endpoint{Principal: alice, Chain: chain, Anchors: anchors}
	b := &Endpoint{Principal: bob, Chain: bobChain, Anchors: anchors, RequireCertified: true}
	// At t=100s alice's cert is long expired.
	_, _, err := Establish(a, b, rng, 100*sim.Second)
	if !errors.Is(err, ErrPeerIdentity) {
		t.Fatalf("expired-chain err = %v", err)
	}
}

func TestCompleteBeforeHello(t *testing.T) {
	rng := sim.NewRNG(7)
	e := &Endpoint{}
	other := &Endpoint{}
	h, err := other.NewHello(rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Complete(h, 0); err == nil {
		t.Fatal("Complete without NewHello should fail")
	}
}

func TestSessionKeysDifferAcrossSessions(t *testing.T) {
	rng := sim.NewRNG(8)
	a1, b1 := &Endpoint{}, &Endpoint{}
	k1, _, err := Establish(a1, b1, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2 := &Endpoint{}, &Endpoint{}
	k2, _, err := Establish(a2, b2, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("sessions derived identical keys — no forward secrecy")
	}
}

func TestEstablishDeterministicPerSeed(t *testing.T) {
	run := func() []byte {
		rng := sim.NewRNG(9)
		a, b := &Endpoint{}, &Endpoint{}
		k, _, err := Establish(a, b, rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same seed produced different session keys")
	}
}
