package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/routing/pathvector"
	"repro/internal/sim"
	"repro/internal/topology"
)

// End-to-end forwarding cost across a realistic internetwork.
func BenchmarkSendAcrossHierarchy(b *testing.B) {
	rng := sim.NewRNG(1)
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), rng)
	sched := sim.NewScheduler()
	n := New(sched, g)
	pv := pathvector.New(g)
	if err := pv.Converge(); err != nil {
		b.Fatal(err)
	}
	for _, id := range g.NodeIDs() {
		n.Node(id).Route = pv.RouteFunc(id)
	}
	stubs := g.Stubs()
	src, dst := stubs[0], stubs[len(stubs)-1]
	data, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeRaw,
			Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1)},
		&packet.Raw{Data: make([]byte, 512)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]byte, len(data))
		copy(cp, data)
		tr := n.Send(src, cp)
		sched.Run()
		if !tr.Delivered {
			b.Fatalf("drop: %s", tr.DropReason)
		}
	}
}

func BenchmarkTraceroute(b *testing.B) {
	sched := sim.NewScheduler()
	g := topology.Linear(8, sim.Millisecond)
	n := New(sched, g)
	for id := topology.NodeID(1); id <= 8; id++ {
		id := id
		n.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			switch {
			case d > id:
				return id + 1, true
			case d < id:
				return id - 1, true
			}
			return id, true
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if hops := n.Traceroute(1, packet.MakeAddr(8, 1), 10, nil); len(hops) != 7 {
			b.Fatalf("hops = %d", len(hops))
		}
	}
}
