package wire

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport/multipath"
)

// Reusable measurement workloads, shared by the package benchmarks and
// the tussle-bench -wire-json baseline writer so the committed
// BENCH_wire.json numbers measure exactly what the benchmarks do.

// ProcessBench measures the decision kernel alone: filter → decode →
// TTL patch → route, no sockets. One op is one forwarded datagram.
type ProcessBench struct {
	dp   *Dataplane
	tmpl []byte
	buf  []byte
}

// NewProcessBench builds a forwarding node (2, peers 1 and 3) and a
// 67-byte payload-bearing datagram addressed across it.
func NewProcessBench() (*ProcessBench, error) {
	dp := NewDataplane(NodeConfig{
		ID: 2,
		Route: func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			if dst.Provider() >= 3 {
				return 3, true
			}
			return 1, true
		},
		Peers: []topology.NodeID{1, 3},
	})
	tmpl, err := packet.Serialize(
		&packet.TIP{TTL: 64, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1)},
		&packet.Raw{Data: []byte("wire-process-bench-payload")})
	if err != nil {
		return nil, err
	}
	b := &ProcessBench{dp: dp, tmpl: tmpl, buf: make([]byte, len(tmpl))}
	return b, nil
}

// Run decides count datagrams. Each op refills the receive buffer from
// the template (as a real receive would) and must decide Forward; the
// loop allocates nothing.
func (b *ProcessBench) Run(count int) error {
	for i := 0; i < count; i++ {
		copy(b.buf, b.tmpl)
		if dec := b.dp.Process(b.buf); dec.Kind != Forward || dec.Next != 3 {
			return fmt.Errorf("wire: process bench decided %v, want forward 3", dec)
		}
	}
	return nil
}

// LoopbackBench measures the full engine round trip on loopback: blast
// client → recv batch → filter → decode → deliver → echo batch →
// client. One op is one datagram making the complete round.
type LoopbackBench struct {
	eng     *Engine
	packets [][]byte
	conns   int
}

// NewLoopbackBench starts an echo engine with the given worker count on
// 127.0.0.1. Close must be called when done.
func NewLoopbackBench(workers int) (*LoopbackBench, error) {
	eng, err := New(Config{
		Listen:  "127.0.0.1:0",
		Workers: workers,
		Echo:    true,
	})
	if err != nil {
		return nil, err
	}
	go eng.Run()
	data, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeRaw, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(0, 1)},
		&packet.Raw{Data: []byte("wire-loopback-bench")})
	if err != nil {
		eng.Close()
		return nil, err
	}
	conns := workers
	if conns < 1 {
		conns = 1
	}
	return &LoopbackBench{eng: eng, packets: [][]byte{data}, conns: conns}, nil
}

// Addr returns the engine's bound address.
func (b *LoopbackBench) Addr() netip.AddrPort { return b.eng.Addr() }

// Stats returns the engine-side counters.
func (b *LoopbackBench) Stats() Stats { return b.eng.Stats() }

// Run round-trips count datagrams and returns the blast-side result.
func (b *LoopbackBench) Run(count int) (BlastResult, error) {
	return Blast(BlastConfig{
		Target:  b.eng.Addr(),
		Count:   count,
		Packets: b.packets,
		Echo:    true,
		Conns:   b.conns,
	})
}

// Close shuts the engine down.
func (b *LoopbackBench) Close() { b.eng.Close() }

// MultipathLoopbackBench measures a striped transfer end to end on
// loopback: a MultipathSender striping across three paths into a real
// engine whose delivery hook reassembles and ACKs. One op is one
// striped segment round trip (data segment out, cumulative ACK back),
// so the per-op figures stay comparable across payload sizes and the
// bounded per-run setup (sender socket, templates, fresh receiver)
// vanishes under integer division by the segment count. Per-segment
// allocations — the wall-clock RTO timer each transmit arms, the
// in-flight bookkeeping — are constant per op, which keeps the
// zero-tolerance allocs/op gate meaningful.
type MultipathLoopbackBench struct {
	eng     *Engine
	rcv     atomic.Pointer[MultipathReceiver]
	payload []byte
	port    uint16
	seg     int
}

// NewMultipathLoopbackBench starts an engine whose delivery hook
// forwards to the bench's current receiver (swapped fresh each Run so
// reassembly state never accumulates across iterations). Close must be
// called when done.
func NewMultipathLoopbackBench(workers int) (*MultipathLoopbackBench, error) {
	b := &MultipathLoopbackBench{port: 7900, seg: 512}
	b.rcv.Store(NewMultipathReceiver(0, b.port, 256))
	eng, err := New(Config{
		Listen:  "127.0.0.1:0",
		Workers: workers,
		Deliver: func(data []byte, from netip.AddrPort) []byte {
			return b.rcv.Load().Deliver(data, from)
		},
	})
	if err != nil {
		return nil, err
	}
	b.eng = eng
	go eng.Run()
	return b, nil
}

// Run stripes count segments across three loopback paths and blocks
// until the transfer completes, verifying byte-exact reassembly and
// that every path carried traffic.
func (b *MultipathLoopbackBench) Run(count int) (MPRecvSummary, error) {
	rcv := NewMultipathReceiver(0, b.port, 256)
	b.rcv.Store(rcv)
	if need := count * b.seg; len(b.payload) < need {
		b.payload = make([]byte, need)
		for i := range b.payload {
			b.payload[i] = byte(i*13 + i/509)
		}
	}
	payload := b.payload[:count*b.seg]
	cfg := multipath.DefaultConfig()
	cfg.Seed = 42
	cfg.Window = 32
	cfg.SegmentSize = b.seg
	paths := make([]MPPath, 3)
	for i := range paths {
		paths[i] = MPPath{Via: b.eng.Addr(), Latency: sim.Millisecond}
	}
	snd, err := NewMultipathSender(MultipathSenderConfig{
		Transport: cfg, Src: 1, Dst: 0, Port: b.port, Paths: paths,
	}, payload)
	if err != nil {
		return MPRecvSummary{}, err
	}
	defer snd.Close()
	snd.Start()
	if !snd.Wait(60 * time.Second) {
		return MPRecvSummary{}, fmt.Errorf("wire: multipath bench timed out: %+v", snd.Stats())
	}
	if st := snd.Stats(); !st.Done || st.Failed {
		return MPRecvSummary{}, fmt.Errorf("wire: multipath bench transfer failed: %+v", st)
	}
	sum := rcv.Summary()
	if sum.Bytes != len(payload) {
		return sum, fmt.Errorf("wire: multipath bench reassembled %d bytes, want %d", sum.Bytes, len(payload))
	}
	for w := 1; w <= len(paths); w++ {
		if sum.PathSegments[w] == 0 {
			return sum, fmt.Errorf("wire: multipath bench path %d carried no segments: %v", w, sum.PathSegments)
		}
	}
	return sum, nil
}

// Close shuts the engine down.
func (b *MultipathLoopbackBench) Close() { b.eng.Close() }
