package trust

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPrincipalSignVerify(t *testing.T) {
	rng := sim.NewRNG(1)
	alice := NewPrincipal("alice", Certified, rng)
	msg := []byte("hello")
	sig := alice.Sign(msg)
	if !alice.Verify(msg, sig) {
		t.Fatal("own signature rejected")
	}
	if alice.Verify([]byte("tampered"), sig) {
		t.Fatal("tampered message accepted")
	}
	bob := NewPrincipal("bob", Certified, rng)
	if bob.Verify(msg, sig) {
		t.Fatal("foreign signature accepted")
	}
}

func TestKeyGenDeterministic(t *testing.T) {
	a := NewPrincipal("x", Certified, sim.NewRNG(7))
	b := NewPrincipal("x", Certified, sim.NewRNG(7))
	if string(a.Pub) != string(b.Pub) {
		t.Fatal("same seed produced different keys")
	}
}

func TestCertificateIssueVerify(t *testing.T) {
	rng := sim.NewRNG(2)
	ca := NewPrincipal("root-ca", Certified, rng)
	alice := NewPrincipal("alice", Certified, rng)
	cert := Issue(ca, "alice", alice.Pub, map[string]string{"role": "subscriber"}, 100*sim.Second)

	if err := VerifyCert(cert, ca.Pub, 50*sim.Second); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	if err := VerifyCert(cert, ca.Pub, 200*sim.Second); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired cert error = %v", err)
	}
	mallory := NewPrincipal("mallory", Certified, rng)
	if err := VerifyCert(cert, mallory.Pub, 50*sim.Second); !errors.Is(err, ErrBadSig) {
		t.Fatalf("wrong issuer key error = %v", err)
	}
}

func TestCertificateAttributeTamper(t *testing.T) {
	rng := sim.NewRNG(3)
	ca := NewPrincipal("ca", Certified, rng)
	alice := NewPrincipal("alice", Certified, rng)
	cert := Issue(ca, "alice", alice.Pub, map[string]string{"role": "consumer"}, 100*sim.Second)
	cert.Attributes["role"] = "admin" // privilege escalation attempt
	if err := VerifyCert(cert, ca.Pub, 10); !errors.Is(err, ErrBadSig) {
		t.Fatalf("attribute tamper error = %v", err)
	}
}

func TestChainVerification(t *testing.T) {
	rng := sim.NewRNG(4)
	root := NewPrincipal("root", Certified, rng)
	inter := NewPrincipal("intermediate", Certified, rng)
	leaf := NewPrincipal("leaf", Certified, rng)

	interCert := Issue(root, "intermediate", inter.Pub, nil, 100*sim.Second)
	leafCert := Issue(inter, "leaf", leaf.Pub, nil, 100*sim.Second)
	anchors := Anchors{"root": root.Pub}

	if err := VerifyChain([]*Certificate{leafCert, interCert}, anchors, 10); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Chain missing the intermediate fails: leaf's issuer is not an anchor.
	if err := VerifyChain([]*Certificate{leafCert}, anchors, 10); !errors.Is(err, ErrNoAnchor) {
		t.Fatalf("missing intermediate error = %v", err)
	}
	// Out-of-order chain fails.
	if err := VerifyChain([]*Certificate{interCert, leafCert}, anchors, 10); err == nil {
		t.Fatal("out-of-order chain accepted")
	}
	// Empty chain fails.
	if err := VerifyChain(nil, anchors, 10); !errors.Is(err, ErrNoAnchor) {
		t.Fatalf("empty chain error = %v", err)
	}
	// Different anchor set (the chooser's power): chain rejected.
	other := NewPrincipal("other-root", Certified, rng)
	if err := VerifyChain([]*Certificate{leafCert, interCert}, Anchors{"other-root": other.Pub}, 10); err == nil {
		t.Fatal("chain accepted under foreign anchors")
	}
}

func TestChainExpiryAnywhereFails(t *testing.T) {
	rng := sim.NewRNG(5)
	root := NewPrincipal("root", Certified, rng)
	inter := NewPrincipal("inter", Certified, rng)
	leaf := NewPrincipal("leaf", Certified, rng)
	interCert := Issue(root, "inter", inter.Pub, nil, 10*sim.Second) // expires early
	leafCert := Issue(inter, "leaf", leaf.Pub, nil, 100*sim.Second)
	if err := VerifyChain([]*Certificate{leafCert, interCert}, Anchors{"root": root.Pub}, 50*sim.Second); err == nil {
		t.Fatal("chain with expired intermediate accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if Anonymous.String() != "anonymous" || Pseudonymous.String() != "pseudonymous" || Certified.String() != "certified" {
		t.Fatal("scheme names wrong")
	}
}

func TestReputationScores(t *testing.T) {
	r := NewReputation("consumer-reports", 1.0)
	if s := r.Score("unknown"); s != 0.5 {
		t.Fatalf("unknown score = %v", s)
	}
	for i := 0; i < 8; i++ {
		r.Report("honest", true, nil)
	}
	for i := 0; i < 8; i++ {
		r.Report("fraud", false, nil)
	}
	if s := r.Score("honest"); s <= 0.8 {
		t.Fatalf("honest score = %v", s)
	}
	if s := r.Score("fraud"); s >= 0.2 {
		t.Fatalf("fraud score = %v", s)
	}
	if !r.Known("honest") || r.Known("stranger") {
		t.Fatal("Known wrong")
	}
	subs := r.Subjects()
	if len(subs) != 2 || subs[0] != "fraud" || subs[1] != "honest" {
		t.Fatalf("Subjects = %v", subs)
	}
}

func TestReputationScoreBoundsQuick(t *testing.T) {
	r := NewReputation("q", 1.0)
	f := func(goods, bads uint8, name string) bool {
		for i := 0; i < int(goods%20); i++ {
			r.Report(name, true, nil)
		}
		for i := 0; i < int(bads%20); i++ {
			r.Report(name, false, nil)
		}
		s := r.Score(name)
		return s > 0 && s < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInaccurateMediatorFlipsReports(t *testing.T) {
	rng := sim.NewRNG(6)
	noisy := NewReputation("tabloid", 0.5)
	flip := func() bool { return rng.Bool(1 - noisy.Accuracy) }
	for i := 0; i < 200; i++ {
		noisy.Report("saint", true, flip)
	}
	s := noisy.Score("saint")
	if math.Abs(s-0.5) > 0.15 {
		t.Fatalf("50%%-accurate mediator should yield ~0.5, got %v", s)
	}
	perfect := NewReputation("journal", 1.0)
	for i := 0; i < 200; i++ {
		perfect.Report("saint", true, flip)
	}
	if perfect.Score("saint") < 0.95 {
		t.Fatal("perfect mediator corrupted reports")
	}
}

func TestGuarantorLiabilityCap(t *testing.T) {
	g := NewGuarantor("acme-card", 50, 0.03)
	tx := g.Charge("alice", "sketchy-shop", 500)
	if g.Revenue != 15 {
		t.Fatalf("fee revenue = %v", g.Revenue)
	}
	refund := g.Dispute(tx)
	if refund != 450 {
		t.Fatalf("refund = %v, want 450", refund)
	}
	if loss := g.BuyerLoss(tx); loss != 50 {
		t.Fatalf("buyer loss = %v, want cap 50", loss)
	}
	// Double dispute pays nothing more.
	if g.Dispute(tx) != 0 {
		t.Fatal("double dispute paid out")
	}
}

func TestGuarantorSmallCharge(t *testing.T) {
	g := NewGuarantor("card", 50, 0)
	tx := g.Charge("a", "b", 20)
	if refund := g.Dispute(tx); refund != 0 {
		t.Fatalf("refund below cap = %v", refund)
	}
	if loss := g.BuyerLoss(tx); loss != 20 {
		t.Fatalf("loss = %v", loss)
	}
}

func TestGuarantorUndisputedLoss(t *testing.T) {
	g := NewGuarantor("card", 50, 0)
	tx := g.Charge("a", "b", 300)
	if loss := g.BuyerLoss(tx); loss != 300 {
		t.Fatalf("undisputed loss = %v", loss)
	}
	if g.Dispute(999) != 0 {
		t.Fatal("unknown tx disputed")
	}
}
