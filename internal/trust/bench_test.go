package trust

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkCertIssueVerify(b *testing.B) {
	rng := sim.NewRNG(1)
	ca := NewPrincipal("ca", Certified, rng)
	leaf := NewPrincipal("leaf", Certified, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert := Issue(ca, "leaf", leaf.Pub, nil, 1000*sim.Second)
		if err := VerifyCert(cert, ca.Pub, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionEstablish(b *testing.B) {
	rng := sim.NewRNG(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, c := &Endpoint{}, &Endpoint{}
		if _, _, err := Establish(a, c, rng, 0); err != nil {
			b.Fatal(err)
		}
	}
}
