package sim

import (
	"fmt"

	"repro/internal/obs"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring package time but in simulated units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// FromSeconds converts seconds to simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is one slot in the scheduler's event pool. Slots are recycled
// through a free list; gen increments on every release so stale EventIDs
// (and stale heap entries) can never touch a recycled slot's new tenant.
type event struct {
	at   Time
	key  uint64 // deterministic cross-run tie-breaker (see AtKeyed); 0 for At
	seq  uint64 // tie-breaker: FIFO among same-time events; globally unique
	fn   func()
	born Time // scheduling time, for the obs event-lag span
	gen  uint32
	live bool
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// value is valid and refers to no event.
type EventID struct {
	slot uint32 // pool index + 1; 0 means "no event"
	gen  uint32
}

// heapEntry is one element of the scheduler's 4-ary min-heap. The ordering
// key (at, key, seq) is stored inline so comparisons never chase a
// pointer, and seq doubles as the liveness check against the pool slot: a
// slot recycled since this entry was pushed carries a different seq.
type heapEntry struct {
	at   Time
	key  uint64
	seq  uint64
	slot uint32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// Scheduler is a discrete-event simulation loop: events execute in
// timestamp order, ties broken by scheduling order. It is single-threaded
// by design — determinism is the point. Parallelism in this repository is
// always across independent simulations (see experiments.RunAll), never
// within one.
//
// Events live in a slot pool recycled through a free list, so a
// steady-state simulation schedules events with zero heap allocations
// once the pool has grown to the high-water mark.
type Scheduler struct {
	now     Time
	seq     uint64
	events  []event     // slot pool
	free    []uint32    // recycled slot indices
	queue   []heapEntry // 4-ary min-heap by (at, key, seq)
	dead    int         // cancelled events whose heap entries are not yet drained
	stopped bool

	// obs holds the scheduler's observability instruments; nil means
	// disabled, and every hook below is a single nil check.
	obs *schedObs

	// Processed counts events executed, for loop-detection and stats.
	Processed uint64
}

// schedObs bundles the scheduler's instruments. Dispatch is the hot
// path: one counter increment and two histogram observations per event,
// all allocation-free (see internal/obs).
type schedObs struct {
	scheduled  *obs.Counter
	cancelled  *obs.Counter
	dispatched *obs.Counter
	depth      *obs.Histogram // live queue depth sampled at each dispatch
	lag        *obs.Histogram // sim-ns between scheduling and execution
}

// AttachObs enables scheduler observability against reg: counters for
// scheduled/cancelled/dispatched events, a queue-depth distribution
// sampled at dispatch, and the span from scheduling to execution in
// simulated nanoseconds. A nil registry detaches (disables) again.
func (s *Scheduler) AttachObs(reg *obs.Registry) {
	if reg == nil {
		s.obs = nil
		return
	}
	s.obs = &schedObs{
		scheduled:  reg.Counter("sim.sched.scheduled"),
		cancelled:  reg.Counter("sim.sched.cancelled"),
		dispatched: reg.Counter("sim.sched.dispatched"),
		depth:      reg.Histogram("sim.sched.queue_depth", obs.CountBuckets),
		lag:        reg.Histogram("sim.sched.event_lag_ns", obs.TimeBucketsNs),
	}
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of live events waiting to run. Cancelled
// events are excluded even before their heap entries are drained.
func (s *Scheduler) Pending() int { return len(s.queue) - s.dead }

// acquire returns a slot index for a new event, recycling freed slots.
func (s *Scheduler) acquire() uint32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.events = append(s.events, event{})
	return uint32(len(s.events) - 1)
}

// release recycles a slot, bumping its generation so outstanding
// EventIDs for the old tenant become inert.
func (s *Scheduler) release(idx uint32) {
	ev := &s.events[idx]
	ev.fn = nil
	ev.live = false
	ev.gen++
	s.free = append(s.free, idx)
}

// At schedules fn at the absolute simulated time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Scheduler) At(at Time, fn func()) EventID {
	return s.AtKeyed(at, 0, fn)
}

// AtKeyed schedules fn at the absolute time at with an explicit ordering
// key. Same-time events dispatch in ascending key order (ties among equal
// keys fall back to scheduling order, as with At). The sharded simulation
// core uses keys derived from the event's origin node, so that same-time
// ordering is a pure function of the simulation — independent of how
// nodes are partitioned across shard schedulers — which is what keeps
// sharded runs byte-identical at any shard count. Plain At is AtKeyed
// with key 0, so single-scheduler callers are unaffected.
func (s *Scheduler) AtKeyed(at Time, key uint64, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	idx := s.acquire()
	ev := &s.events[idx]
	ev.at = at
	ev.key = key
	ev.seq = s.seq
	ev.fn = fn
	ev.born = s.now
	ev.live = true
	s.seq++
	if s.obs != nil {
		s.obs.scheduled.Inc()
	}
	s.push(heapEntry{at: at, key: key, seq: ev.seq, slot: idx})
	return EventID{slot: idx + 1, gen: ev.gen}
}

// After schedules fn after a delay from now.
func (s *Scheduler) After(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from running. Cancelling an already-run
// or already-cancelled event is a no-op, as is cancelling the zero EventID.
// The slot is recycled immediately; the heap entry is dropped lazily.
func (s *Scheduler) Cancel(id EventID) {
	if id.slot == 0 {
		return
	}
	idx := id.slot - 1
	if int(idx) >= len(s.events) {
		return
	}
	ev := &s.events[idx]
	if !ev.live || ev.gen != id.gen {
		return
	}
	s.release(idx)
	s.dead++
	if s.obs != nil {
		s.obs.cancelled.Inc()
	}
	s.maybeCompact()
}

// maybeCompact rebuilds the heap without dead entries once they dominate,
// so mass cancellation cannot pin memory for a whole run.
func (s *Scheduler) maybeCompact() {
	if s.dead <= 32 || s.dead*2 <= len(s.queue) {
		return
	}
	kept := s.queue[:0]
	for _, e := range s.queue {
		ev := &s.events[e.slot]
		if ev.live && ev.seq == e.seq {
			kept = append(kept, e)
		}
	}
	s.queue = kept
	s.dead = 0
	// Re-establish the heap invariant bottom-up.
	for i := len(s.queue)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Stop halts Run/RunUntil after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.RunUntil(Time(1<<62 - 1))
}

// popLive removes and returns the earliest live event's (time, callback),
// draining any dead heap entries on the way. ok is false when no live
// event remains.
func (s *Scheduler) popLive() (at Time, fn func(), ok bool) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		s.pop()
		ev := &s.events[e.slot]
		if !ev.live || ev.seq != e.seq {
			s.dead--
			continue
		}
		at, fn = ev.at, ev.fn
		if s.obs != nil {
			s.obs.dispatched.Inc()
			s.obs.lag.Observe(float64(at - ev.born))
			s.obs.depth.Observe(float64(s.Pending()))
		}
		s.release(e.slot)
		return at, fn, true
	}
	return 0, nil, false
}

// peekLive returns the timestamp of the earliest live event without
// removing it, draining dead entries from the top of the heap.
func (s *Scheduler) peekLive() (Time, bool) {
	at, _, ok := s.PeekNext()
	return at, ok
}

// PeekNext returns the (time, key) of the earliest live event without
// removing it, draining dead entries from the top of the heap. The
// sharded lockstep driver uses it to merge K shard schedulers into one
// global (time, key)-ordered dispatch sequence.
func (s *Scheduler) PeekNext() (Time, uint64, bool) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		ev := &s.events[e.slot]
		if ev.live && ev.seq == e.seq {
			return e.at, e.key, true
		}
		s.pop()
		s.dead--
	}
	return 0, 0, false
}

// RunUntil executes events with timestamps <= deadline, advances the clock
// to deadline, and returns. Events scheduled beyond the deadline remain
// queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		at, ok := s.peekLive()
		if !ok || at > deadline {
			break
		}
		_, fn, _ := s.popLive()
		s.now = at
		s.Processed++
		fn()
	}
	if !s.stopped && s.now < deadline && deadline < Time(1<<62-1) {
		s.now = deadline
	}
}

// Step executes exactly one live event and returns true, or returns false
// if the queue is empty.
func (s *Scheduler) Step() bool {
	at, fn, ok := s.popLive()
	if !ok {
		return false
	}
	s.now = at
	s.Processed++
	fn()
	return true
}

// The queue is a 4-ary min-heap: half the depth of a binary heap, and
// the four children of a node sit in two adjacent cache lines, so the
// dominant cost of a pop on a large queue — one cache miss per level —
// is roughly halved. Heap shape cannot affect dispatch order: entryLess
// is a strict total order ((at, key, seq) with seq globally unique), so
// every correct heap yields the same pop sequence.

// push adds an entry to the heap.
func (s *Scheduler) push(e heapEntry) {
	s.queue = append(s.queue, e)
	// Sift up.
	i := len(s.queue) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(s.queue[i], s.queue[parent]) {
			break
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

// pop removes the minimum entry from the heap.
func (s *Scheduler) pop() {
	n := len(s.queue) - 1
	s.queue[0] = s.queue[n]
	s.queue = s.queue[:n]
	if n > 0 {
		s.siftDown(0)
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.queue)
	for {
		l := 4*i + 1
		if l >= n {
			return
		}
		m := l
		hi := l + 4
		if hi > n {
			hi = n
		}
		for c := l + 1; c < hi; c++ {
			if entryLess(s.queue[c], s.queue[m]) {
				m = c
			}
		}
		if !entryLess(s.queue[m], s.queue[i]) {
			return
		}
		s.queue[i], s.queue[m] = s.queue[m], s.queue[i]
		i = m
	}
}
