// Package obs is the simulator's observability layer: a metrics registry
// (counters, gauges, histograms with fixed bucket layouts) and a
// structured event tracer with pluggable sinks. It exists so the paper's
// core argument — that stakeholders must be able to *see* who controls
// what at run time (§IV "design for tussle") — is testable against the
// simulator itself: which mechanism fired, who paid, where a packet was
// rewritten or dropped.
//
// Two invariants govern the design:
//
//   - Zero cost when disabled. Every instrument is nil-safe: a nil
//     *Registry hands out nil instruments, and every method on a nil
//     instrument is a no-op that performs no allocation. Hot paths guard
//     with a single nil check, so the forwarding fast path's zero-alloc
//     hop invariant (netsim's TestForwardHopZeroAlloc) holds with obs
//     disabled.
//
//   - Determinism when enabled. Instruments record only deterministic
//     quantities — simulated time, event counts, value distributions —
//     never wall-clock time. Histogram bucket layouts are fixed at
//     creation, snapshots sort by name, and merge operations are
//     commutative (sums, bucket-wise adds, min/max), so a snapshot of a
//     run is byte-identical across repetitions at the same seed no
//     matter how work was scheduled across workers.
//
// A Registry is single-threaded, like the simulations it observes.
// Concurrent runs get one registry shard per worker, merged at the end
// (see experiments.RunAll) — commutativity makes the merged snapshot
// independent of the work-stealing schedule.
package obs

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing event count. The zero of the
// metric namespace: cheap enough for per-event hot paths.
type Counter struct {
	name string
	v    int64
}

// Inc adds one. Safe (and free) on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n. Safe on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-written scalar. Merge sums gauges across shards, so
// use gauges for quantities where a sum is meaningful (pool sizes,
// high-water marks per shard); prefer counters or histograms otherwise.
type Gauge struct {
	name string
	v    float64
}

// Set overwrites the gauge. Safe on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add adjusts the gauge by d. Safe on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-layout bucket histogram. Bounds are upper bounds
// in ascending order; an implicit +Inf bucket catches the rest. The
// layout is fixed at creation and never adapts to the data — that is
// what keeps snapshots byte-identical across runs and shards mergeable
// bucket-by-bucket.
type Histogram struct {
	name   string
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value. Safe on a nil histogram; never allocates.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo]++
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Fixed bucket layouts shared across the repository, so the same metric
// name always carries the same layout and shards merge cleanly.
var (
	// TimeBucketsNs spans 1us..10s in decades: simulated-time durations.
	TimeBucketsNs = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	// CountBuckets spans small integer counts (hops, queue depths,
	// rounds) in powers of two.
	CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}
)

// Registry hands out named instruments and snapshots them. Not safe for
// concurrent use: give each worker its own shard and Merge afterwards.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter, whose methods are no-ops — callers
// hold the handle and never re-check whether obs is enabled.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use (nil-safe).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil-safe). Re-registering a name with a
// different layout panics: a histogram's layout is part of its identity
// (shards with mismatched layouts cannot merge).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		if !sameBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	h := &Histogram{name: name, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.hists[name] = h
	return h
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds src into r: counters and gauges sum, histograms add
// bucket-wise (layouts must match; merging an unknown name adopts the
// src layout). All merge operations are commutative and associative, so
// the result is independent of merge order — the property that lets
// per-worker shards from a work-stealing pool produce a deterministic
// aggregate. Merging a nil src (or into a nil r) is a no-op.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for name, c := range src.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range src.gauges {
		r.Gauge(name).Add(g.v)
	}
	for name, h := range src.hists {
		dst := r.Histogram(name, h.bounds)
		if h.count == 0 {
			continue
		}
		if dst.count == 0 || h.min < dst.min {
			dst.min = h.min
		}
		if dst.count == 0 || h.max > dst.max {
			dst.max = h.max
		}
		dst.count += h.count
		dst.sum += h.sum
		for i, n := range h.counts {
			dst.counts[i] += n
		}
	}
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnap is one histogram in a snapshot. Min/Max are 0 when
// Count is 0 (never ±Inf, which JSON cannot carry).
type HistogramSnap struct {
	Name   string    `json:"name"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is a point-in-time, deterministically ordered view of a
// registry: every section sorted by name, every value a deterministic
// function of the run. It is the unit the CLIs serialize.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry yields
// an empty (but non-nil) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Value: c.v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.v})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for _, h := range r.hists {
		hs := HistogramSnap{
			Name: h.name, Count: h.count, Sum: h.sum,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
		}
		if h.count > 0 {
			hs.Min, hs.Max = h.min, h.max
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Span measures a duration against a caller-supplied deterministic
// clock (simulated time, rounds, iterations — never wall time) and
// records it into a histogram when ended. Spans are values: starting
// and ending one allocates nothing, and a span over a nil histogram is
// free.
type Span struct {
	h     *Histogram
	start int64
}

// StartSpan opens a span at clock value now.
func StartSpan(h *Histogram, now int64) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: now}
}

// End closes the span at clock value now, recording now-start.
func (s Span) End(now int64) {
	if s.h == nil {
		return
	}
	s.h.Observe(float64(now - s.start))
}
