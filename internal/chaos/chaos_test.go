package chaos

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing/linkstate"
	"repro/internal/routing/pathvector"
	"repro/internal/sim"
	"repro/internal/topology"
)

// diamond builds 1—2—4 / 1—3—4 with the 2-path much cheaper, so healthy
// routing uses 2 and failover shifts to 3.
func diamond() *topology.Graph {
	g := topology.NewGraph()
	g.AddNode(1, topology.Stub, 3)
	g.AddNode(2, topology.Transit, 1)
	g.AddNode(3, topology.Transit, 1)
	g.AddNode(4, topology.Stub, 3)
	g.AddLink(1, 2, topology.CustomerOf, sim.Millisecond, 2)
	g.AddLink(1, 3, topology.CustomerOf, sim.Millisecond, 3)
	g.AddLink(4, 2, topology.CustomerOf, sim.Millisecond, 2)
	g.AddLink(4, 3, topology.CustomerOf, sim.Millisecond, 3)
	return g
}

func probe(t *testing.T, src, dst topology.NodeID) []byte {
	t.Helper()
	data, err := packet.Serialize(
		&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw,
			Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1)},
		&packet.Raw{Data: []byte("probe")})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func samplePlan() string {
	return `{
  "name": "smoke",
  "seed": 7,
  "events": [
    {"at_ms": 10, "kind": "link-down", "a": 1, "b": 2},
    {"at_ms": 20, "kind": "impair", "a": 1, "b": 3, "corrupt": 0.2, "duplicate": 0.1, "reorder_prob": 0.3, "reorder_jitter_ms": 2},
    {"at_ms": 30, "kind": "node-crash", "node": 2},
    {"at_ms": 40, "kind": "partition", "group": [2, 4]},
    {"at_ms": 50, "kind": "heal"},
    {"at_ms": 60, "kind": "node-recover", "node": 2},
    {"at_ms": 70, "kind": "clear-impair", "a": 1, "b": 3},
    {"at_ms": 80, "kind": "link-up", "a": 1, "b": 2},
    {"at_ms": 90, "kind": "link-flap", "a": 4, "b": 2, "period_ms": 5, "count": 4},
    {"at_ms": 120, "kind": "byzantine-burst", "node": 3, "count": 2, "cost": 0.01, "phantoms": [4]}
  ]
}`
}

func TestPlanRoundTrip(t *testing.T) {
	p, err := ParsePlan([]byte(samplePlan()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "smoke" || p.Seed != 7 || len(p.Events) != 10 {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlan(enc)
	if err != nil {
		t.Fatalf("re-parse of own encoding failed: %v\n%s", err, enc)
	}
	enc2, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatalf("Encode∘ParsePlan is not a fixed point:\n%s\nvs\n%s", enc, enc2)
	}
}

func TestPlanValidationRejectsBadEvents(t *testing.T) {
	bad := []string{
		`{"events":[{"at_ms":-1,"kind":"heal"}]}`,
		`{"events":[{"at_ms":0,"kind":"warp-core-breach"}]}`,
		`{"events":[{"at_ms":0,"kind":"link-down","a":1,"b":1}]}`,
		`{"events":[{"at_ms":0,"kind":"link-down","a":1}]}`,
		`{"events":[{"at_ms":0,"kind":"link-flap","a":1,"b":2,"count":3}]}`,
		`{"events":[{"at_ms":0,"kind":"link-flap","a":1,"b":2,"period_ms":5}]}`,
		`{"events":[{"at_ms":0,"kind":"node-crash"}]}`,
		`{"events":[{"at_ms":0,"kind":"partition"}]}`,
		`{"events":[{"at_ms":0,"kind":"impair","a":1,"b":2}]}`,
		`{"events":[{"at_ms":0,"kind":"impair","a":1,"b":2,"corrupt":1.5}]}`,
		`{"events":[{"at_ms":0,"kind":"impair","a":1,"b":2,"reorder_prob":0.5}]}`,
		`{"events":[{"at_ms":0,"kind":"byzantine-burst","node":3}]}`,
		`{"events":[{"at_ms":0,"kind":"byzantine-burst","node":3,"count":1}]}`,
		`{"events":[{"at_ms":0,"kind":"link-down","a":1,"b":2,"bogus":true}]}`,
		`{"events":[]} trailing`,
	}
	for _, src := range bad {
		if _, err := ParsePlan([]byte(src)); err == nil {
			t.Errorf("ParsePlan accepted invalid plan: %s", src)
		}
	}
}

func TestScheduleRejectsUnknownTopologyRefs(t *testing.T) {
	g := diamond()
	net := netsim.New(sim.NewScheduler(), g)
	e := New(net, 1)
	for _, src := range []string{
		`{"events":[{"at_ms":0,"kind":"link-down","a":1,"b":99}]}`,
		`{"events":[{"at_ms":0,"kind":"link-down","a":2,"b":3}]}`, // nodes exist, link doesn't
		`{"events":[{"at_ms":0,"kind":"node-crash","node":9}]}`,
		`{"events":[{"at_ms":0,"kind":"partition","group":[1,77]}]}`,
		`{"events":[{"at_ms":0,"kind":"byzantine-burst","node":3,"count":1,"cost":0.1}]}`, // no AdDB bound
	} {
		p, err := ParsePlan([]byte(src))
		if err != nil {
			t.Fatalf("plan should parse (only schedule should fail): %s: %v", src, err)
		}
		if err := e.Schedule(p); err == nil {
			t.Errorf("Schedule accepted plan with bad topology refs: %s", src)
		}
	}
}

// replay runs the sample plan (minus the byzantine burst) over the
// diamond with probes every 2ms and returns a fingerprint of everything
// observable: per-probe fates, network counters, engine counters.
func replay(t *testing.T) string {
	t.Helper()
	g := diamond()
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)
	db := linkstate.NewDatabase(g)
	r := NewLinkStateRerouter(net, db, true)
	r.Converge()
	e := New(net, 42)
	e.Observe(r)
	p, err := ParsePlan([]byte(samplePlan()))
	if err != nil {
		t.Fatal(err)
	}
	p.Events = p.Events[:len(p.Events)-1] // burst needs an AdDB; not under test here
	if err := e.Schedule(p); err != nil {
		t.Fatal(err)
	}
	var traces []*netsim.Trace
	for i := 0; i < 70; i++ {
		at := sim.Time(i) * 2 * sim.Millisecond
		sched.At(at, func() { traces = append(traces, net.Send(1, probe(t, 1, 4))) })
	}
	sched.Run()
	var b strings.Builder
	for _, tr := range traces {
		if tr.Delivered {
			b.WriteString("D@")
			b.WriteString(tr.Latency().String())
		} else {
			b.WriteString(tr.DropReason)
		}
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "%v%v", net.Stats, e.Applied) // map fmt is key-sorted
	return b.String()
}

func TestEngineReplayIsByteIdentical(t *testing.T) {
	a := replay(t)
	b := replay(t)
	if a != b {
		t.Fatalf("same plan, same seed, different runs:\n%s\nvs\n%s", a, b)
	}
	// The plan must actually have done something interesting: stale-table
	// drops at the downed link, partition no-routes, impairment kills.
	for _, want := range []string{"link-down", "no-route", "corrupt"} {
		if !strings.Contains(a, want) {
			t.Errorf("replay fingerprint missing %q:\n%s", want, a)
		}
	}
}

func TestPartitionHealRestoresOnlyItsCuts(t *testing.T) {
	g := diamond()
	net := netsim.New(sim.NewScheduler(), g)
	e := New(net, 1)
	net.FailLink(1, 2) // pre-existing, independent fault
	e.partition([]topology.NodeID{2, 4})
	// Cut: 1-2 was already down (not recorded); boundary links 1-3? no —
	// group {2,4}: crossing links are 1-2 (down already) and 3-4.
	if !net.LinkFailed(3, 4) {
		t.Fatal("partition did not cut 3-4")
	}
	if net.LinkFailed(2, 4) {
		t.Fatal("partition cut an intra-group link")
	}
	e.heal()
	if net.LinkFailed(3, 4) {
		t.Fatal("heal did not restore the cut link")
	}
	if !net.LinkFailed(1, 2) {
		t.Fatal("heal restored a link its partition never cut")
	}
	e.heal() // no outstanding partition: must be a no-op
}

func TestLinkStateRerouterFailsOverOnCrash(t *testing.T) {
	g := diamond()
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)
	db := linkstate.NewDatabase(g)
	r := NewLinkStateRerouter(net, db, true)
	r.Converge()
	e := New(net, 1)
	e.Observe(r)
	p := &Plan{Events: []Event{
		{AtMs: 10, Kind: NodeCrash, Node: 2},
		{AtMs: 50, Kind: NodeRecover, Node: 2},
	}}
	if err := e.Schedule(p); err != nil {
		t.Fatal(err)
	}
	var before, during, staleWindow, after *netsim.Trace
	sched.At(5*sim.Millisecond, func() { before = net.Send(1, probe(t, 1, 4)) })
	// Immediately after the crash, tables are stale: traffic still heads
	// for node 2 and dies at the upstream with "peer-down".
	sched.At(10*sim.Millisecond+10*sim.Microsecond, func() { staleWindow = net.Send(1, probe(t, 1, 4)) })
	sched.At(30*sim.Millisecond, func() { during = net.Send(1, probe(t, 1, 4)) })
	sched.At(70*sim.Millisecond, func() { after = net.Send(1, probe(t, 1, 4)) })
	sched.Run()
	if !before.Delivered || pathVia(before) != 2 {
		t.Fatalf("healthy probe should ride the cheap path via 2: %+v", before.Events)
	}
	if staleWindow.Delivered || staleWindow.DropReason != "peer-down" {
		t.Fatalf("stale-window probe should die at the dead adjacency: %+v", staleWindow)
	}
	if !during.Delivered || pathVia(during) != 3 {
		t.Fatalf("post-reconvergence probe should fail over via 3: %+v", during.Events)
	}
	if !after.Delivered || pathVia(after) != 2 {
		t.Fatalf("post-recovery probe should return to the cheap path: %+v", after.Events)
	}
	if r.Reconverges != 2 {
		t.Fatalf("reconverges = %d, want 2 (crash + recover)", r.Reconverges)
	}
	if r.TotalChurn == 0 || r.TotalDelay == 0 {
		t.Fatalf("reconvergence must report churn and delay: %+v", r)
	}
}

func TestPathVectorRerouterFailsOverOnCrash(t *testing.T) {
	g := diamond()
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)
	pv := pathvector.New(g)
	r := NewPathVectorRerouter(net, pv, true)
	if err := r.Converge(); err != nil {
		t.Fatal(err)
	}
	e := New(net, 1)
	e.Observe(r)
	p := &Plan{Events: []Event{{AtMs: 10, Kind: NodeCrash, Node: 2}}}
	if err := e.Schedule(p); err != nil {
		t.Fatal(err)
	}
	var before, during *netsim.Trace
	sched.At(5*sim.Millisecond, func() { before = net.Send(1, probe(t, 1, 4)) })
	sched.At(60*sim.Millisecond, func() { during = net.Send(1, probe(t, 1, 4)) })
	sched.Run()
	if !before.Delivered || pathVia(before) != 2 {
		t.Fatalf("healthy probe should transit 2 (lowest next hop): %+v", before.Events)
	}
	if !during.Delivered || pathVia(during) != 3 {
		t.Fatalf("after the crash path-vector must fail over via 3: %+v", during.Events)
	}
	if r.Reconverges != 1 || r.TotalChurn == 0 {
		t.Fatalf("reconvergence not recorded: %+v", r)
	}
}

// pathVia returns the transit node a delivered 1→4 diamond probe used.
func pathVia(tr *netsim.Trace) topology.NodeID {
	for _, id := range tr.Path() {
		if id == 2 || id == 3 {
			return id
		}
	}
	return 0
}

func TestByzantineBurstTrustModes(t *testing.T) {
	run := func(mode linkstate.VerifyMode) (*linkstate.AdDatabase, topology.NodeID) {
		g := diamond()
		sched := sim.NewScheduler()
		net := netsim.New(sched, g)
		keys := linkstate.GenerateKeys(g, sim.NewRNG(3))
		db := linkstate.NewAdDatabase(g, mode, keys)
		r := NewAdRerouter(net, db, keys, true)
		r.Converge()
		e := New(net, 9)
		e.AdDB = db
		e.Keys = keys
		e.Observe(r)
		// Node 3 lies: all its links at ~zero cost plus a phantom link to
		// 2, signed with its own (valid!) key — the insider attack.
		p := &Plan{Events: []Event{{AtMs: 5, Kind: ByzantineBurst, Node: 3, Count: 1, Cost: 0.001, Phantoms: []topology.NodeID{2}}}}
		if err := e.Schedule(p); err != nil {
			t.Fatal(err)
		}
		var tr *netsim.Trace
		sched.At(20*sim.Millisecond, func() { tr = net.Send(1, probe(t, 1, 4)) })
		sched.Run()
		if !tr.Delivered {
			t.Fatalf("mode %v: probe died: %+v", mode, tr)
		}
		return db, pathVia(tr)
	}
	if _, via := run(linkstate.TrustAll); via != 3 {
		t.Fatalf("trust-all should be seduced by the liar's cheap links, went via %d", via)
	}
	db, via := run(linkstate.SignedTwoSided)
	if via != 2 {
		t.Fatalf("signed-two-sided should ignore the one-sided lie, went via %d", via)
	}
	if db.Rejected == 0 {
		t.Fatal("signed mode should have rejected the phantom link claim")
	}
}

func TestFlapNotifiesPerToggle(t *testing.T) {
	g := diamond()
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)
	e := New(net, 1)
	var kinds []Kind
	e.Observe(ObserverFunc(func(ev Event, now sim.Time) { kinds = append(kinds, ev.Kind) }))
	p := &Plan{Events: []Event{{AtMs: 10, Kind: LinkFlap, A: 1, B: 2, PeriodMs: 5, Count: 4}}}
	if err := e.Schedule(p); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	want := []Kind{LinkDown, LinkUp, LinkDown, LinkUp}
	if len(kinds) != len(want) {
		t.Fatalf("toggle notifications = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("toggle notifications = %v, want %v", kinds, want)
		}
	}
	if net.LinkFailed(1, 2) {
		t.Fatal("even flap count must end with the link up")
	}
}
