package wire

import (
	"crypto/sha256"
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/transport/multipath"
)

// TestWireMultipathLoopback is the in-process end-to-end: a real UDP
// engine with a MultipathReceiver delivery hook, a real MultipathSender
// striping a stream across three paths on the wall clock, byte-exact
// reassembly checked by hash.
func TestWireMultipathLoopback(t *testing.T) {
	rcv := NewMultipathReceiver(0, 7701, 256)
	eng := startEngine(t, Config{Workers: 2, Deliver: rcv.Deliver})

	payload := make([]byte, 128<<10)
	for i := range payload {
		payload[i] = byte(i*13 + i/509)
	}
	cfg := multipath.DefaultConfig()
	cfg.Seed = 42
	cfg.Window = 32
	cfg.SegmentSize = 1024
	paths := make([]MPPath, 3)
	for i := range paths {
		paths[i] = MPPath{Via: eng.Addr(), Latency: sim.Millisecond}
	}
	snd, err := NewMultipathSender(MultipathSenderConfig{
		Transport: cfg, Src: 1, Dst: 0, Port: 7701, Paths: paths,
	}, payload)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	snd.Start()
	if !snd.Wait(30 * time.Second) {
		t.Fatalf("transfer timed out: %+v", snd.Stats())
	}
	st := snd.Stats()
	if !st.Done || st.Failed {
		t.Fatalf("transfer did not complete: %+v", st)
	}
	sum := rcv.Summary()
	if sum.Bytes != len(payload) {
		t.Fatalf("receiver reassembled %d bytes, want %d", sum.Bytes, len(payload))
	}
	if sum.SHA256 != sha256.Sum256(payload) {
		t.Fatal("reassembled stream hash differs from the payload")
	}
	for w := 1; w <= 3; w++ {
		if sum.PathSegments[w] == 0 {
			t.Fatalf("path %d carried no segments: %v", w, sum.PathSegments)
		}
	}
}

// mpAllocSender builds a capture-mode sender (no sockets, virtual
// clock) for the alloc micro-gates.
func mpAllocSender(t *testing.T) *MultipathSender {
	t.Helper()
	cfg := multipath.DefaultConfig()
	cfg.Seed = 42
	cfg.Window = 8
	cfg.SegmentSize = 256
	ws, err := newMultipathSender(MultipathSenderConfig{
		Transport: cfg, Src: 8, Dst: 9, Port: 7000,
		Paths: []MPPath{{Latency: sim.Millisecond}, {Latency: sim.Millisecond}, {Latency: sim.Millisecond}},
		Clock: multipath.SimClock{Sched: sim.NewScheduler()},
	}, make([]byte, 16*256), func(int, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	ws.Start()
	return ws
}

// TestMultipathSenderAckAllocs pins the sender's ACK ingress at zero
// allocations: decode into the reused scratch, path credit, duplicate
// accounting — nothing on the heap per datagram.
func TestMultipathSenderAckAllocs(t *testing.T) {
	ws := mpAllocSender(t)
	ack, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(9, 1), Dst: packet.MakeAddr(8, 1)},
		&packet.TTP{SrcPort: 7000, DstPort: 41000, Ack: 0, Flags: packet.FlagACK, Window: 1, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: nil})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ws.HandleAck(ack) // warm past the one fast-retx the dup burst triggers
	}
	if avg := testing.AllocsPerRun(1000, func() { ws.HandleAck(ack) }); avg != 0 {
		t.Fatalf("sender ACK path allocates %.2f/op, want 0", avg)
	}
}

// TestMultipathReceiverDeliverAllocs pins the receiver's delivery hook
// at zero allocations in the steady state: decode scratch, duplicate
// Accept, template hit, ring copy, in-place patch.
func TestMultipathReceiverDeliverAllocs(t *testing.T) {
	rcv := NewMultipathReceiver(0, 7777, 64)
	seg, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(0, 1)},
		&packet.TTP{SrcPort: 41000, DstPort: 7777, Seq: 0, Window: 2, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: make([]byte, 512)})
	if err != nil {
		t.Fatal(err)
	}
	from := netip.MustParseAddrPort("127.0.0.1:40000")
	for i := 0; i < 10; i++ {
		if rcv.Deliver(seg, from) == nil {
			t.Fatal("delivery hook built no ACK")
		}
	}
	if avg := testing.AllocsPerRun(1000, func() { rcv.Deliver(seg, from) }); avg != 0 {
		t.Fatalf("receiver delivery hook allocates %.2f/op, want 0", avg)
	}
	if sum := rcv.Summary(); sum.Bytes != 512 {
		t.Fatalf("duplicates grew the stream to %d bytes", sum.Bytes)
	}
}
