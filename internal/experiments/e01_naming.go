package experiments

import (
	"fmt"

	"repro/internal/naming"
	"repro/internal/packet"
	"repro/internal/sim"
)

// E1NamingIsolation tests the §IV-A DNS claim: when trademark expression
// shares a namespace with machine naming, trademark disputes break
// machine names (collateral damage); separating the namespaces confines
// the damage.
//
// Workload: a population of registrants register machine names, mailbox
// names, and brand names, many derived from a set of contested marks;
// trademark holders then file disputes over every mark. We sweep the
// fraction of names that collide with marks and compare the entangled
// and isolated registry designs on collateral suspensions and surviving
// machine-name resolution.
func E1NamingIsolation(seed uint64) *Result {
	res := &Result{
		ID:    "E1",
		Title: "tussle isolation in naming (DNS trademark entanglement)",
		Claim: "§IV-A: names that express trademarks should be used for as little else as possible; isolation confines dispute damage",
		Columns: []string{
			"disputes", "suspended", "collateral", "machine-avail",
		},
	}
	marks := []string{"acme", "globex", "initech", "umbrella", "tyrell"}
	for _, isolated := range []bool{false, true} {
		for _, markUseFrac := range []float64{0.2, 0.5} {
			rng := sim.NewRNG(seed)
			reg := naming.NewRegistry(isolated)
			brandUse := map[string]string{}

			const nMachines = 200
			machineNames := make([]string, 0, nMachines)
			for i := 0; i < nMachines; i++ {
				var name string
				if rng.Bool(markUseFrac) {
					// A machine name derived from a mark (a mail server
					// named after the company, say).
					name = fmt.Sprintf("%s.host-%d", marks[rng.Intn(len(marks))], i)
				} else {
					name = fmt.Sprintf("node-%d", i)
				}
				if _, err := reg.Register(naming.SpaceMachine, name, fmt.Sprintf("owner-%d", i), packet.MakeAddr(uint16(i%100+1), uint16(i))); err == nil {
					machineNames = append(machineNames, name)
				}
			}
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("mail-%d", i)
				if rng.Bool(markUseFrac) {
					name = fmt.Sprintf("%s.mail-%d", marks[rng.Intn(len(marks))], i)
				}
				reg.Register(naming.SpaceMailbox, name, fmt.Sprintf("owner-%d", i), packet.MakeAddr(1, uint16(i)))
			}
			// Brand squatters register the marks themselves.
			for _, m := range marks {
				if _, err := reg.Register(naming.SpaceBrand, m, "squatter", packet.MakeAddr(9, 9)); err == nil {
					brandUse[m] = "brand"
				}
			}

			suspended, collateral := 0, 0
			for _, m := range marks {
				ruling := reg.FileDispute(naming.Dispute{Mark: m, Holder: m + "-corp"}, brandUse)
				suspended += len(ruling.Suspended)
				collateral += ruling.Collateral
			}
			alive := 0
			for _, name := range machineNames {
				if _, err := reg.Resolve(naming.SpaceMachine, name); err == nil {
					alive++
				}
			}
			design := "entangled"
			if isolated {
				design = "isolated"
			}
			res.AddRow(fmt.Sprintf("%s markUse=%.0f%%", design, markUseFrac*100),
				float64(len(marks)), float64(suspended), float64(collateral),
				float64(alive)/float64(len(machineNames)))
		}
	}
	entangledCollateral := res.MustGet("entangled markUse=50%", "collateral")
	isolatedCollateral := res.MustGet("isolated markUse=50%", "collateral")
	res.Finding = fmt.Sprintf(
		"entangled design suffers %.0f collateral suspensions at 50%% mark use vs %.0f isolated; machine availability %.3f vs %.3f",
		entangledCollateral, isolatedCollateral,
		res.MustGet("entangled markUse=50%", "machine-avail"),
		res.MustGet("isolated markUse=50%", "machine-avail"))
	return res
}
