// Command tussled runs tussle scenarios on the core engine and prints
// the round-by-round move history with the framework's metrics (control
// balance, distortion rate, visibility audit).
//
// Usage:
//
//	tussled [-scenario NAME] [-rounds N] [-list]
//
// Scenarios live in internal/scenarios; -list enumerates them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/scenarios"
)

func main() {
	scenario := flag.String("scenario", "value-pricing", "scenario name (see -list)")
	rounds := flag.Int("rounds", 12, "tussle rounds to run")
	list := flag.Bool("list", false, "list available scenarios")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(scenarios.Names(), "\n"))
		return
	}
	e, err := scenarios.Build(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: %v\n", err)
		os.Exit(64)
	}
	e.Run(*rounds)

	fmt.Printf("scenario %q after %d rounds\n\n", *scenario, *rounds)
	fmt.Println("history:")
	for _, h := range e.History {
		action := ""
		if h.Move.Deploy != nil {
			action = "deploy " + h.Move.Deploy.Name
			if h.Move.Deploy.Distortion {
				action += " (distortion)"
			}
		}
		if h.Move.Withdraw != "" {
			if action != "" {
				action += ", "
			}
			action += "withdraw " + h.Move.Withdraw
		}
		fmt.Printf("  round %2d  %-14s %-44s %s\n", h.Round, h.Actor, action, h.Move.Note)
	}
	fmt.Println("\nutilities:")
	for _, s := range e.Stakeholders {
		fmt.Printf("  %-14s (%v): %.1f\n", s.Name, s.Kind, s.Utility)
	}
	st := e.State()
	fmt.Printf("\nmetrics: %s\n", e.Summary())
	fmt.Printf("  control balance (user - isp): %+.1f\n", e.ControlBalance(core.User, core.ISP))
	fmt.Printf("  distortion rate:              %.2f\n", core.DistortionRate(st))
	fmt.Printf("  visibility audit:             %.2f\n", core.VisibilityAudit(st))
	if e.Stable(3) {
		fmt.Println("  tussle quiescent (no moves in last 3 rounds) — for now")
	} else {
		fmt.Println("  tussle still in motion — no final outcome")
	}
}
