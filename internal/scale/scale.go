// Package scale is the ISP-scale workload for the sharded simulation
// core: a generated scale-free (Barabási–Albert) internetwork with wide
// packet addressing, static shortest-path routing toward a small set of
// sink nodes, and fire-and-forget traffic injection sized in millions
// of packets. Everything — topology, routing tables, send times, sink
// choices, and the optional chaos faults — is a pure function of the
// config, and the sharded core guarantees the outcome is additionally
// independent of the shard count and of sequential-vs-parallel
// execution. Render() is the byte-comparable digest CI pins.
package scale

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config parameterizes one scale run.
type Config struct {
	// Nodes and M shape the Barabási–Albert topology (M links per new
	// node).
	Nodes int
	M     int
	// Sinks is how many nodes absorb traffic; they are spread evenly
	// across the ID space. All other nodes originate packets.
	Sinks int
	// Packets is the total packet count, split evenly across sources.
	Packets int
	// Seed drives every random choice (topology, send times, sink
	// selection, chaos).
	Seed uint64
	// Shards is the partition width; Parallel selects the epoch-barrier
	// driver over the sequential lockstep driver.
	Shards   int
	Parallel bool
	// Chaos injects a deterministic fault schedule (link failures and
	// recoveries, node crashes, packet impairments) during the run.
	Chaos bool
	// Payload is the per-packet payload size in bytes (default 64).
	Payload int
	// Horizon is the traffic injection window (default 200ms); the run
	// itself continues until all in-flight packets terminate.
	Horizon sim.Time
	// Obs attaches per-shard metric registries (merged in the Result).
	Obs bool
}

// Result is the outcome of a scale run.
type Result struct {
	Config     Config
	Nodes      int
	Links      int
	CrossLinks int
	Window     sim.Time
	Delivered  int
	Dropped    int
	Processed  uint64
	Stats      sim.Counter
	// Metrics is the merged per-shard obs registry (nil unless
	// Config.Obs).
	Metrics *obs.Registry
}

// chaosStream and trafficStream separate the seed's derived RNG streams
// so adding chaos cannot perturb traffic randomness.
const (
	trafficStream = uint64(0)
	chaosStream   = uint64(1) << 40
)

// probeStream seeds SendProbes; distinct from traffic and chaos so
// probes never perturb either.
const probeStream = uint64(1) << 41

// Sim is a prepared but not-yet-run scale scenario: topology built,
// routes installed, traffic and chaos armed. It exists so callers can
// attach extra instrumentation — an invariant checker sink, traced
// probe packets — between build and drain.
type Sim struct {
	Cfg   Config
	S     *netsim.Sharded
	G     *topology.Graph
	Sinks []topology.NodeID

	isSink []bool
	regs   []*obs.Registry
}

// Run executes one scale scenario to completion.
func Run(cfg Config) *Result { return Prepare(cfg).Run() }

// Prepare builds a scale scenario without draining it.
func Prepare(cfg Config) *Sim {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1000
	}
	if cfg.M <= 0 {
		cfg.M = 2
	}
	if cfg.Sinks <= 0 {
		// Sinks scale with the topology so the aggregate sink ingress
		// capacity scales with the packet load; a handful of sinks under
		// millions of packets would just measure queue-overflow.
		cfg.Sinks = 8
		if cfg.Nodes/500 > cfg.Sinks {
			cfg.Sinks = cfg.Nodes / 500
		}
	}
	if cfg.Sinks >= cfg.Nodes {
		cfg.Sinks = cfg.Nodes / 2
	}
	if cfg.Packets <= 0 {
		cfg.Packets = 10 * cfg.Nodes
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 64
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 200 * sim.Millisecond
	}

	rng := sim.NewRNG(cfg.Seed)
	g := topology.GenerateScaleFree(cfg.Nodes, cfg.M, rng)
	s := netsim.NewSharded(g, cfg.Shards)
	s.Parallel = cfg.Parallel
	for _, sh := range s.Shards {
		sh.Net.WideAddressing()
	}
	var regs []*obs.Registry
	if cfg.Obs {
		regs = s.AttachObs(nil)
	}

	ids := g.NodeIDs()
	sinks := make([]topology.NodeID, cfg.Sinks)
	isSink := make([]bool, ids[len(ids)-1]+1)
	for i := range sinks {
		sinks[i] = ids[i*len(ids)/cfg.Sinks]
		isSink[sinks[i]] = true
	}
	next := nextHopTables(g, sinks)
	sinkIdx := make([]int32, len(isSink))
	for i := range sinkIdx {
		sinkIdx[i] = -1
	}
	for i, sk := range sinks {
		sinkIdx[sk] = int32(i)
	}

	// Static shortest-path routing toward sinks: each node's RouteFunc
	// is a dense double index (sink table, then node), no maps on the
	// hot path.
	for _, v := range ids {
		v := v
		s.Owner(v).Node(v).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := uint32(dst)
			if d >= uint32(len(sinkIdx)) {
				return 0, false
			}
			si := sinkIdx[d]
			if si < 0 {
				return 0, false
			}
			nh := next[si][v]
			return nh, nh != 0
		}
	}

	scheduleTraffic(s, cfg, ids, sinks, isSink)
	if cfg.Chaos {
		scheduleChaos(s, cfg, g)
	}

	return &Sim{Cfg: cfg, S: s, G: g, Sinks: sinks, isSink: isSink, regs: regs}
}

// AttachSink attaches one shared tracer sink to every shard's network
// (alongside any metric registry from Config.Obs). A shared sink is not
// safe under the parallel driver, so this forces the lockstep driver —
// which additionally delivers the sink a single globally time-ordered
// event stream, exactly what the invariant checker consumes.
func (sm *Sim) AttachSink(sink obs.Sink) {
	sm.S.Parallel = false
	tr := obs.NewTracer(sink)
	for i, sh := range sm.S.Shards {
		var reg *obs.Registry
		if sm.regs != nil {
			reg = sm.regs[i]
		}
		sh.Net.AttachObs(reg, tr)
	}
}

// SendProbes sends k fully-traced packets at time zero from sources
// spread deterministically across the ID space, each targeting a
// random sink. Unlike the fire-and-forget bulk traffic, probes keep
// their hop-by-hop traces, so a checker can audit complete paths.
func (sm *Sim) SendProbes(k int) []*netsim.Trace {
	rng := sim.NewRNG(sim.SeedStream(sm.Cfg.Seed, probeStream))
	ids := sm.G.NodeIDs()
	traces := make([]*netsim.Trace, 0, k)
	for len(traces) < k {
		src := ids[rng.Intn(len(ids))]
		if sm.isSink[src] {
			continue
		}
		sink := sm.Sinks[rng.Intn(len(sm.Sinks))]
		data, err := packet.Serialize(
			&packet.TIP{TTL: 64, Proto: packet.LayerTypeRaw,
				Src: sm.S.Owner(src).AddrOf(src), Dst: sm.S.Owner(src).AddrOf(sink)},
			&packet.Raw{Data: []byte("probe")})
		if err != nil {
			panic(err)
		}
		traces = append(traces, sm.S.Send(src, data))
	}
	return traces
}

// Run drains the prepared scenario and summarizes it.
func (sm *Sim) Run() *Result {
	cfg, s, g := sm.Cfg, sm.S, sm.G
	s.Run()

	res := &Result{
		Config:     cfg,
		Nodes:      len(g.Nodes),
		Links:      len(g.Links),
		CrossLinks: s.Part.CrossLinks(g),
		Window:     s.Window,
		Delivered:  s.Delivered(),
		Dropped:    s.Dropped(),
		Processed:  s.Processed(),
		Stats:      s.Stats(),
	}
	if cfg.Obs {
		res.Metrics = netsim.MergedObs(sm.regs)
	}
	return res
}

// nextHopTables runs one BFS per sink, producing dense node ->
// next-hop-toward-sink tables. Entry 0 means unreachable (node IDs
// start at 1). The BFS runs over a CSR copy of the adjacency built once
// from the link list (sorted rows for deterministic traversal order) —
// at hundreds of sinks over 10^5 nodes, per-visit map lookups through
// Graph.Neighbors would dominate setup time.
func nextHopTables(g *topology.Graph, sinks []topology.NodeID) [][]topology.NodeID {
	maxID := topology.NodeID(0)
	for id := range g.Nodes {
		if id > maxID {
			maxID = id
		}
	}
	offs := make([]int32, maxID+2)
	for _, l := range g.Links {
		offs[l.A+1]++
		offs[l.B+1]++
	}
	for i := 1; i < len(offs); i++ {
		offs[i] += offs[i-1]
	}
	nbrs := make([]topology.NodeID, 2*len(g.Links))
	fill := make([]int32, maxID+1)
	for _, l := range g.Links {
		nbrs[offs[l.A]+fill[l.A]] = l.B
		fill[l.A]++
		nbrs[offs[l.B]+fill[l.B]] = l.A
		fill[l.B]++
	}
	for v := topology.NodeID(0); v <= maxID; v++ {
		row := nbrs[offs[v] : offs[v]+fill[v]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	out := make([][]topology.NodeID, len(sinks))
	queue := make([]topology.NodeID, 0, len(g.Nodes))
	for i, sk := range sinks {
		tbl := make([]topology.NodeID, maxID+1)
		seen := make([]bool, maxID+1)
		queue = queue[:0]
		seen[sk] = true
		queue = append(queue, sk)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, nb := range nbrs[offs[v] : offs[v]+fill[v]] {
				if seen[nb] {
					continue
				}
				seen[nb] = true
				// nb's first hop toward the sink is v.
				tbl[nb] = v
				queue = append(queue, nb)
			}
		}
		out[i] = tbl
	}
	return out
}

// scheduleTraffic arms one fire-and-forget send chain per source node.
// Every chain draws from its own per-node RNG stream
// (SeedStream(seed, node)), so send times and sink choices are a pure
// function of (seed, node) — never of the partition. One pre-serialized
// template packet per shard is retargeted in place (packet.SetDst) for
// every send; Inject copies it into a flight-owned buffer, so the
// steady state allocates nothing.
func scheduleTraffic(s *netsim.Sharded, cfg Config, ids, sinks []topology.NodeID, isSink []bool) {
	sources := make([]topology.NodeID, 0, len(ids)-len(sinks))
	for _, id := range ids {
		if !isSink[id] {
			sources = append(sources, id)
		}
	}
	if len(sources) == 0 {
		return
	}
	scratch := make([][]byte, len(s.Shards))
	for i := range scratch {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 64, Proto: packet.LayerTypeRaw,
				Src: packet.MakeAddr(0, 1), Dst: packet.AddrNone},
			&packet.Raw{Data: make([]byte, cfg.Payload)})
		if err != nil {
			panic(err)
		}
		scratch[i] = data
	}
	base, rem := cfg.Packets/len(sources), cfg.Packets%len(sources)
	for si, src := range sources {
		quota := base
		if si < rem {
			quota++
		}
		if quota == 0 {
			continue
		}
		src := src
		net := s.Owner(src)
		shard := s.Part.ShardOf(src)
		rng := sim.NewRNG(sim.SeedStream(cfg.Seed, trafficStream|uint64(src)))
		mean := float64(cfg.Horizon) / float64(quota)
		gap := func() sim.Time {
			t := sim.Time(rng.Range(0.2, 1.8) * mean)
			if t < 1 {
				t = 1
			}
			return t
		}
		sent := 0
		var fire func()
		fire = func() {
			buf := scratch[shard]
			sink := sinks[rng.Intn(len(sinks))]
			if err := packet.SetDst(buf, net.AddrOf(sink)); err != nil {
				panic(err)
			}
			net.Inject(src, buf)
			sent++
			if sent < quota {
				net.AtNode(net.Sched.Now()+gap(), src, fire)
			}
		}
		net.AtNode(gap(), src, fire)
	}
}

// scheduleChaos derives a deterministic fault schedule from the seed:
// link failures with recovery, node crashes with recovery, and packet
// impairments, all concentrated inside the traffic horizon so faults
// actually meet traffic. Fault times and subjects come from a dedicated
// RNG stream, and every mutation is replicated to all shards through
// FaultAt, so the schedule is shard-count-independent.
func scheduleChaos(s *netsim.Sharded, cfg Config, g *topology.Graph) {
	rng := sim.NewRNG(sim.SeedStream(cfg.Seed, chaosStream))
	h := float64(cfg.Horizon)
	nLinkFaults := 4 + cfg.Nodes/1000
	for i := 0; i < nLinkFaults; i++ {
		l := g.Links[rng.Intn(len(g.Links))]
		t0 := sim.Time(rng.Range(0.05, 0.6) * h)
		t1 := t0 + sim.Time(rng.Range(0.05, 0.3)*h)
		a, b := l.A, l.B
		s.FaultAt(t0, func(n *netsim.Network) { n.FailLink(a, b) })
		s.FaultAt(t1, func(n *netsim.Network) { n.RestoreLink(a, b) })
	}
	nCrashes := 2 + cfg.Nodes/2000
	for i := 0; i < nCrashes; i++ {
		v := topology.NodeID(1 + rng.Intn(cfg.Nodes))
		t0 := sim.Time(rng.Range(0.05, 0.6) * h)
		t1 := t0 + sim.Time(rng.Range(0.05, 0.3)*h)
		s.FaultAt(t0, func(n *netsim.Network) { n.FailNode(v) })
		s.FaultAt(t1, func(n *netsim.Network) { n.RecoverNode(v) })
	}
	nImpair := 2 + cfg.Nodes/2000
	for i := 0; i < nImpair; i++ {
		l := g.Links[rng.Intn(len(g.Links))]
		t0 := sim.Time(rng.Range(0.05, 0.4) * h)
		a, b := l.A, l.B
		imp := netsim.LinkImpairment{
			Corrupt:       rng.Range(0.01, 0.05),
			Duplicate:     rng.Range(0.01, 0.05),
			ReorderProb:   rng.Range(0.05, 0.2),
			ReorderJitter: sim.Time(rng.Range(0.5, 2)) * sim.Millisecond,
		}
		// The impairment RNG seed is derived outside the closure so all
		// shards install byte-identical generators.
		impSeed := rng.Uint64()
		s.FaultAt(t0, func(n *netsim.Network) {
			n.ImpairLink(a, b, imp, sim.NewRNG(impSeed))
		})
	}
}

// Render is the deterministic digest of a run: identical bytes for
// identical configs at any shard count, sequential or parallel. Event
// counts are intentionally excluded (replicated fault events scale with
// the shard count); every packet-visible quantity is included.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scale: nodes=%d links=%d sinks=%d packets=%d seed=%d chaos=%v\n",
		r.Nodes, r.Links, r.Config.Sinks, r.Config.Packets, r.Config.Seed, r.Config.Chaos)
	fmt.Fprintf(&b, "delivered=%d dropped=%d ratio=%.6f\n",
		r.Delivered, r.Dropped,
		float64(r.Delivered)/float64(maxInt(1, r.Delivered+r.Dropped)))
	keys := make([]string, 0, len(r.Stats))
	for k := range r.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "stat %s=%d\n", k, r.Stats[k])
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
