package policy

import (
	"strings"
	"testing"
	"testing/quick"
)

const aup = `
# Residential broadband acceptable-use policy (§V-A2 of the paper).
policy "broadband-aup" {
    principal isp
    applies-to traffic

    rule web { when port == 80 || port == 443 then permit }
    rule no-servers {
        when direction == "inbound" && role != "business"
        then deny "servers require the business tier"
    }
    rule premium { when tos >= 4 then price 5.0 }
    default permit
}
`

func TestParseDocument(t *testing.T) {
	doc, err := Parse(aup)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "broadband-aup" || doc.Principal != "isp" || doc.AppliesTo != "traffic" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Rules) != 3 {
		t.Fatalf("rules = %d", len(doc.Rules))
	}
	if !doc.HasDefault || doc.Default.Kind != Permit {
		t.Fatalf("default = %+v", doc.Default)
	}
	if doc.Rules[1].Then.Kind != Deny || !strings.Contains(doc.Rules[1].Then.Reason, "business tier") {
		t.Fatalf("deny rule = %+v", doc.Rules[1].Then)
	}
	if doc.Rules[2].Then.Kind != Price || doc.Rules[2].Then.Amount != 5.0 {
		t.Fatalf("price rule = %+v", doc.Rules[2].Then)
	}
}

func TestEvaluateFirstMatchWins(t *testing.T) {
	doc, err := Parse(aup)
	if err != nil {
		t.Fatal(err)
	}
	// Web traffic permitted even inbound for consumers (rule order).
	d, errs := Evaluate(doc, Env{
		"port": Num(80), "direction": Str("inbound"), "role": Str("consumer"), "tos": Num(0),
	})
	if len(errs) != 0 || d.Rule != "web" || !d.Permitted() {
		t.Fatalf("decision = %+v errs=%v", d, errs)
	}
	// Inbound non-web consumer traffic denied.
	d, _ = Evaluate(doc, Env{
		"port": Num(8080), "direction": Str("inbound"), "role": Str("consumer"), "tos": Num(0),
	})
	if d.Action.Kind != Deny || d.Rule != "no-servers" {
		t.Fatalf("decision = %+v", d)
	}
	// Business inbound allowed at a price when tos >= 4.
	d, _ = Evaluate(doc, Env{
		"port": Num(8080), "direction": Str("inbound"), "role": Str("business"), "tos": Num(5),
	})
	if d.Action.Kind != Price || d.Action.Amount != 5.0 {
		t.Fatalf("decision = %+v", d)
	}
	// Default: outbound consumer traffic permitted.
	d, _ = Evaluate(doc, Env{
		"port": Num(22), "direction": Str("outbound"), "role": Str("consumer"), "tos": Num(0),
	})
	if !d.Default || d.Action.Kind != Permit {
		t.Fatalf("decision = %+v", d)
	}
}

func TestDefaultDenyWhenNoDefault(t *testing.T) {
	doc, err := Parse(`policy "strict" { rule a { when x == 1 then permit } }`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := Evaluate(doc, Env{"x": Num(2)})
	if d.Action.Kind != Deny || !d.Default {
		t.Fatalf("decision = %+v", d)
	}
}

func TestRuleErrorSkipsToNext(t *testing.T) {
	doc, err := Parse(`policy "p" {
        rule broken { when nonexistent == 1 then deny }
        rule ok { when x == 1 then permit }
    }`)
	if err != nil {
		t.Fatal(err)
	}
	d, errs := Evaluate(doc, Env{"x": Num(1)})
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	if d.Rule != "ok" || !d.Permitted() {
		t.Fatalf("decision = %+v", d)
	}
}

func TestRequireAction(t *testing.T) {
	doc, err := Parse(`policy "fw" {
        rule anon { when identity-scheme == "anonymous" then require certified-identity }
        default permit
    }`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := Evaluate(doc, Env{"identity-scheme": Str("anonymous")})
	if d.Action.Kind != Require || d.Action.What != "certified-identity" {
		t.Fatalf("decision = %+v", d)
	}
}

func TestExprOperators(t *testing.T) {
	cases := []struct {
		src  string
		env  Env
		want bool
	}{
		{`1 < 2`, nil, true},
		{`2 <= 2`, nil, true},
		{`3 > 4`, nil, false},
		{`"a" < "b"`, nil, true},
		{`"x" != "y"`, nil, true},
		{`port in [80, 443, 8080]`, Env{"port": Num(443)}, true},
		{`port in [80, 443]`, Env{"port": Num(22)}, false},
		{`!(a && b)`, Env{"a": Bool(true), "b": Bool(false)}, true},
		{`a || b`, Env{"a": Bool(false), "b": Bool(true)}, true},
		{`true && false`, nil, false},
		{`x == -1.5`, Env{"x": Num(-1.5)}, true},
		{`name in ["alice", "bob"]`, Env{"name": Str("bob")}, true},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		v, err := Eval(e, c.env)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if v.Kind != KindBool || v.B != c.want {
			t.Errorf("%s = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Right side references an unknown attribute, but short-circuiting
	// must avoid evaluating it.
	e, err := ParseExpr(`false && missing == 1`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Eval(e, Env{})
	if err != nil || v.B {
		t.Fatalf("short-circuit AND failed: %v %v", v, err)
	}
	e2, _ := ParseExpr(`true || missing == 1`)
	v2, err := Eval(e2, Env{})
	if err != nil || !v2.B {
		t.Fatalf("short-circuit OR failed: %v %v", v2, err)
	}
}

func TestTypeErrors(t *testing.T) {
	for _, src := range []string{
		`1 && true`,
		`"a" < 1`,
		`!5`,
		`1 in 2`,
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%s should parse: %v", src, err)
		}
		if _, err := Eval(e, Env{}); err == nil {
			t.Errorf("%s should fail type-checking at eval", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`policy { }`,                                       // missing name
		`policy "x" { rule { } }`,                          // missing rule name
		`policy "x" { rule a { when } }`,                   // missing condition
		`policy "x" { bogus }`,                             // unknown decl
		`policy "x" { default explode }`,                   // unknown action
		`policy "x" { } trailing`,                          // trailing tokens
		`policy "x" { rule a { when x = 1 then permit } }`, // single =
		`policy "x" { default permit default deny }`,       // dup default
		`policy "x" { rule a { when x == 1 then price "s" } }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q should not parse", src)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`"bad \q escape"`,
		`a & b`,
		`a | b`,
		"\"newline\nin string\"",
		`@`,
	} {
		if _, err := lex(src); err == nil {
			t.Errorf("%q should fail lexing", src)
		}
	}
}

func TestComments(t *testing.T) {
	doc, err := Parse(`
# leading comment
policy "c" { # trailing comment
    rule a { when x == 1 then permit } # another
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestStringEscapes(t *testing.T) {
	e, err := ParseExpr(`msg == "line1\nline2\t\"quoted\""`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Eval(e, Env{"msg": Str("line1\nline2\t\"quoted\"")})
	if err != nil || !v.B {
		t.Fatalf("escape round-trip failed: %v %v", v, err)
	}
}

func TestAttributesAndAnalyze(t *testing.T) {
	doc, err := Parse(aup)
	if err != nil {
		t.Fatal(err)
	}
	attrs := doc.Attributes()
	want := map[string]bool{"port": true, "direction": true, "role": true, "tos": true}
	if len(attrs) != len(want) {
		t.Fatalf("attributes = %v", attrs)
	}
	for _, a := range attrs {
		if !want[a] {
			t.Fatalf("unexpected attribute %q", a)
		}
	}
	// Full vocabulary: nothing out of ontology.
	if out := Analyze(doc, []string{"port", "direction", "role", "tos"}); len(out) != 0 {
		t.Fatalf("Analyze = %v", out)
	}
	// Restricted ontology: the unanticipated tussle dimensions surface.
	out := Analyze(doc, []string{"port"})
	if len(out) != 3 || out[0] != "direction" {
		t.Fatalf("Analyze = %v", out)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Bool(true), "true"},
		{Num(42), "42"},
		{Num(1.5), "1.5"},
		{Str("hi"), `"hi"`},
		{List(Num(1), Str("a")), `[1, "a"]`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !List(Num(1), Num(2)).Equal(List(Num(1), Num(2))) {
		t.Fatal("equal lists unequal")
	}
	if List(Num(1)).Equal(List(Num(1), Num(2))) {
		t.Fatal("different-length lists equal")
	}
	if Num(1).Equal(Str("1")) {
		t.Fatal("cross-kind equality")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Rendering an expression and reparsing it must preserve semantics.
	srcs := []string{
		`port == 80 || port == 443 && role != "guest"`,
		`x in [1, 2, 3]`,
		`!(a || b)`,
	}
	env := Env{"port": Num(80), "role": Str("guest"), "x": Num(2), "a": Bool(false), "b": Bool(false)}
	for _, src := range srcs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Fatalf("rendered form %q does not reparse: %v", e1.String(), err)
		}
		v1, err1 := Eval(e1, env)
		v2, err2 := Eval(e2, env)
		if err1 != nil || err2 != nil || !v1.Equal(v2) {
			t.Fatalf("%s: %v/%v vs %v/%v", src, v1, err1, v2, err2)
		}
	}
}

func TestLexNeverPanicsQuick(t *testing.T) {
	f := func(src string) bool {
		_, _ = lex(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse(src)
		_, _ = ParseExpr(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNumberComparisonQuick(t *testing.T) {
	f := func(a, b float64) bool {
		e, err := ParseExpr("x < y")
		if err != nil {
			return false
		}
		v, err := Eval(e, Env{"x": Num(a), "y": Num(b)})
		return err == nil && v.B == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
