package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing/pathvector"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trust"
)

// E24DelegatedControls tests the §V-B technical question: "whether each
// end-node can implement sufficient trust-related controls within
// itself, or whether delegation of this control to a remote point inside
// the network is required." End-node controls work exactly when the host
// is competently administered; with host security "of variable and
// mostly poor quality", a delegated trust-aware firewall protects the
// weak hosts too — which is why "as a practical matter, the market calls
// for firewalls."
func E24DelegatedControls(seed uint64) *Result {
	res := &Result{
		ID:    "E24",
		Title: "end-node vs delegated trust controls",
		Claim: "§V-B: host security is of variable and mostly poor quality; this desire for protection leads to firewalls",
		Columns: []string{
			"compromised", "attacks-blocked", "legit-served",
		},
	}
	for _, design := range []string{"end-node", "delegated-fw", "both"} {
		for _, patchRate := range []float64{0.3, 0.9} {
			rng := sim.NewRNG(seed)
			rep := trust.NewReputation("rep", 1.0)
			for i := 0; i < 8; i++ {
				rep.Report("friend", true, nil)
				rep.Report("attacker", false, nil)
			}
			const nHosts = 200
			compromised, blocked, served := 0, 0, 0
			for h := 0; h < nHosts; h++ {
				// A competent host runs its own trust controls; a
				// neglected one accepts anything that reaches it.
				competent := rng.Bool(patchRate)
				hostFilters := design != "delegated-fw" && competent
				netFilters := design != "end-node"
				// Each host receives one attack and one legitimate
				// interaction.
				for _, sender := range []string{"attacker", "friend"} {
					// Delegated firewall: drops senders with bad
					// reputations before they reach the host.
					if netFilters && rep.Score(sender) < 0.5 {
						if sender == "attacker" {
							blocked++
						}
						continue
					}
					// End-node control: same policy, host-enforced.
					if hostFilters && rep.Score(sender) < 0.5 {
						if sender == "attacker" {
							blocked++
						}
						continue
					}
					if sender == "attacker" {
						compromised++
					} else {
						served++
					}
				}
			}
			res.AddRow(fmt.Sprintf("%s patched=%.0f%%", design, patchRate*100),
				float64(compromised), float64(blocked), float64(served))
		}
	}
	res.Finding = fmt.Sprintf(
		"with 30%% competent hosts, pure end-node control leaves %.0f of 200 hosts compromised; the delegated firewall leaves %.0f — delegation is required exactly because host quality is poor (at 90%% patching the gap shrinks: %.0f vs %.0f)",
		res.MustGet("end-node patched=30%", "compromised"),
		res.MustGet("delegated-fw patched=30%", "compromised"),
		res.MustGet("end-node patched=90%", "compromised"),
		res.MustGet("delegated-fw patched=90%", "compromised"))
	return res
}

// E25Multihoming tests the §V-A1 recommendation: "the Internet design
// should incorporate mechanisms that make it easy for a host to change
// addresses and to have and use multiple addresses. ... This would
// relieve problems with end-node mobility, improve choice in multihomed
// machines, and improve the ease of changing providers." A dual-homed
// stub holds one provider-rooted address per upstream; when a provider
// path fails, the host sources traffic from its other address and stays
// reachable.
func E25Multihoming(seed uint64) *Result {
	res := &Result{
		ID:    "E25",
		Title: "multiple addresses: availability under provider failure",
		Claim: "§V-A1: hosts should have and use multiple addresses; addresses should reflect connectivity, not identity",
		Columns: []string{
			"delivery-healthy", "delivery-failed-upstream",
		},
	}
	for _, homing := range []string{"single-homed", "dual-homed"} {
		rng := sim.NewRNG(seed)
		// Topology: two providers (2, 3) both peering with a remote
		// provider (4) hosting the correspondent; the stub (5) buys
		// transit from provider 2, and when dual-homed also from 3.
		g := topology.NewGraph()
		for i := 1; i <= 5; i++ {
			kind := topology.Transit
			if i == 5 {
				kind = topology.Stub
			}
			g.AddNode(topology.NodeID(i), kind, 1)
		}
		g.AddLink(2, 1, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(3, 1, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(4, 1, topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(5, 2, topology.CustomerOf, sim.Millisecond, 1)
		if homing == "dual-homed" {
			g.AddLink(5, 3, topology.CustomerOf, sim.Millisecond, 1)
		}
		sched := sim.NewScheduler()
		net := netsim.New(sched, g)
		pv := pathvector.New(g)
		if err := pv.Converge(); err != nil {
			panic(err)
		}
		for _, id := range g.NodeIDs() {
			net.Node(id).Route = pv.RouteFunc(id)
		}
		correspondent := packet.MakeAddr(4, 1)
		// The host's addresses: one per upstream provider relationship
		// (provider-rooted, §V-A1). Replies route to the provider that
		// owns the prefix, so reachability via an address requires its
		// provider link to be up.
		addrs := []packet.Addr{packet.MakeAddr(2, 500)}
		if homing == "dual-homed" {
			addrs = append(addrs, packet.MakeAddr(3, 500))
		}
		// Reply reachability: the correspondent sends to each of the
		// host's addresses; the host is reachable if any address works.
		reachable := func() bool {
			for _, a := range addrs {
				// Replies to address a route toward a's provider; the
				// host is on that provider iff the access link is up.
				prov := topology.NodeID(a.Provider())
				data, err := packet.Serialize(
					&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw, Src: correspondent, Dst: a},
					&packet.Raw{Data: []byte("reply")})
				if err != nil {
					panic(err)
				}
				// Deliver to the provider, then the provider's access
				// link to the host must be up.
				tr := net.Send(4, data)
				sched.Run()
				if tr.Delivered && !net.LinkFailed(prov, 5) {
					return true
				}
			}
			return false
		}
		healthy := 0.0
		if reachable() {
			healthy = 1
		}
		// Primary upstream (provider 2) fails.
		net.FailLink(5, 2)
		net.Node(2).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			// Provider 2 also withdraws the prefix internally.
			if dst.Provider() == 2 && dst.Host() == 500 {
				return 0, false
			}
			return pv.RouteFunc(2)(dst, tip)
		}
		failed := 0.0
		if reachable() {
			failed = 1
		}
		res.AddRow(homing, healthy, failed)
		_ = rng
	}
	res.Finding = fmt.Sprintf(
		"both configurations are reachable when healthy; after the primary upstream fails, the single-homed host is unreachable (%.0f) while the dual-homed host stays reachable via its second provider-rooted address (%.0f)",
		res.MustGet("single-homed", "delivery-failed-upstream"),
		res.MustGet("dual-homed", "delivery-failed-upstream"))
	return res
}
