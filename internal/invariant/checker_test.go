package invariant

import (
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestParseSet(t *testing.T) {
	for _, spec := range []string{"", "all"} {
		set, err := ParseSet(spec)
		if err != nil {
			t.Fatalf("ParseSet(%q): %v", spec, err)
		}
		if len(set) != len(All()) {
			t.Fatalf("ParseSet(%q) armed %d invariants, want %d", spec, len(set), len(All()))
		}
	}
	set, err := ParseSet("conservation, loop-free")
	if err != nil {
		t.Fatalf("ParseSet subset: %v", err)
	}
	if !set[Conservation] || !set[LoopFree] || len(set) != 2 {
		t.Fatalf("ParseSet subset = %v", set)
	}
	if _, err := ParseSet("conservatoin"); err == nil {
		t.Fatal("ParseSet accepted a typo; a typo must not silently disarm a check")
	}
	if _, err := ParseSet(","); err == nil {
		t.Fatal("ParseSet accepted an empty set")
	}
}

// lineNet builds a 3-node line 1–2–3 for hand-driven checker tests.
func lineNet() *netsim.Network {
	g := topology.NewGraph()
	for i := 1; i <= 3; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(2, 3, topology.PeerOf, sim.Millisecond, 1)
	return netsim.New(sim.NewScheduler(), g)
}

func TestComponents(t *testing.T) {
	net := lineNet()
	comp := Components(net)
	if comp[1] != comp[2] || comp[2] != comp[3] {
		t.Fatalf("healthy line not one component: %v", comp)
	}
	net.FailLink(1, 2)
	comp = Components(net)
	if comp[1] == comp[2] {
		t.Fatalf("failed link did not split components: %v", comp)
	}
	if comp[2] != comp[3] {
		t.Fatalf("2 and 3 should stay together: %v", comp)
	}
	net.FailNode(3)
	comp = Components(net)
	if comp[3] != -1 {
		t.Fatalf("crashed node component = %d, want -1", comp[3])
	}
}

func TestCheckTraceTerminals(t *testing.T) {
	net := lineNet()
	mk := func() *netsim.Trace {
		return &netsim.Trace{
			SentAt: 0, DoneAt: 10,
			Events: []netsim.TraceEvent{
				{At: 0, Node: 1, Action: "send"},
				{At: 5, Node: 2, Action: "forward"},
				{At: 10, Node: 3, Action: "deliver"},
			},
			Delivered: true,
		}
	}

	c := NewChecker(net, nil)
	c.CheckTrace(mk(), 32)
	if len(c.Violations()) != 0 {
		t.Fatalf("valid trace reported: %v", c.Violations()[0])
	}

	// Both delivered and dropped.
	c = NewChecker(net, nil)
	tr := mk()
	tr.DropReason = "ttl"
	c.CheckTrace(tr, 32)
	if !hasInvariant(c.Violations(), TraceValid) {
		t.Fatal("delivered+dropped trace not reported")
	}

	// Undelivered trace must end with a drop.
	c = NewChecker(net, nil)
	tr = mk()
	tr.Delivered = false
	c.CheckTrace(tr, 32)
	if !hasInvariant(c.Violations(), TraceValid) {
		t.Fatal("undelivered trace ending in deliver not reported")
	}

	// Timestamp regression.
	c = NewChecker(net, nil)
	tr = mk()
	tr.Events[1].At = 20
	c.CheckTrace(tr, 32)
	if !hasInvariant(c.Violations(), TraceValid) {
		t.Fatal("timestamp regression not reported")
	}

	// Teleport between non-adjacent nodes.
	c = NewChecker(net, nil)
	tr = &netsim.Trace{
		SentAt: 0, DoneAt: 10, Delivered: true,
		Events: []netsim.TraceEvent{
			{At: 0, Node: 1, Action: "send"},
			{At: 10, Node: 3, Action: "deliver"}, // 1 and 3 are not adjacent
		},
	}
	c.CheckTrace(tr, 32)
	if !hasInvariant(c.Violations(), TraceValid) {
		t.Fatal("teleporting trace not reported")
	}

	// TTL exhaustion: more forwards than the packet's TTL allowed.
	c = NewChecker(net, nil)
	tr = mk()
	c.CheckTrace(tr, 0)
	c2 := NewChecker(net, nil)
	c2.CheckTrace(mk(), 1)
	if len(c.Violations()) != 0 {
		t.Fatal("maxTTL 0 must disable the forward bound")
	}
	if len(c2.Violations()) != 0 {
		t.Fatal("1 forward within TTL 1 reported")
	}
	c3 := NewChecker(net, nil)
	tr = mk()
	tr.Events = append(tr.Events[:2:2],
		netsim.TraceEvent{At: 6, Node: 1, Action: "forward"},
		netsim.TraceEvent{At: 7, Node: 2, Action: "forward"},
		netsim.TraceEvent{At: 10, Node: 3, Action: "deliver"})
	c3.CheckTrace(tr, 2)
	if !hasInvariant(c3.Violations(), TraceValid) {
		t.Fatal("4 forwards above TTL 2 not reported")
	}
}

// Temporal reachability: store-and-forward across a sequence of epochs
// none of which has end-to-end connectivity is legitimate; a standing
// cut for the whole flight is not.
func TestReachableDuringTemporalPath(t *testing.T) {
	net := lineNet()
	c := NewChecker(net, nil)
	// Epoch 0: 1–2 up, 2–3 down. Epoch 1 (t=100): 1–2 down, 2–3 up.
	// A packet in flight [0,200] can reach 3 via storage at 2.
	c.epochs = []epoch{
		{start: 0, comp: map[topology.NodeID]int{1: 0, 2: 0, 3: 1}},
		{start: 100, comp: map[topology.NodeID]int{1: 0, 2: 1, 3: 1}},
	}
	if !c.reachableDuring(1, 3, 0, 200) {
		t.Fatal("temporal path 1→2→(wait)→3 not recognized")
	}
	// A flight entirely inside epoch 0 has no path to 3.
	if c.reachableDuring(1, 3, 0, 50) {
		t.Fatal("flight confined to the separated epoch must not reach 3")
	}
	// Crashed source (component -1) reaches nothing.
	c.epochs = []epoch{{start: 0, comp: map[topology.NodeID]int{1: -1, 2: 0, 3: 0}}}
	if c.reachableDuring(1, 3, 0, 50) {
		t.Fatal("crashed node must not be temporally reachable from")
	}
}

func TestFinishConservation(t *testing.T) {
	net := lineNet()
	c := NewChecker(net, nil)
	c.sends, c.dups, c.delivers, c.drops = 5, 1, 4, 2
	c.Finish()
	if len(c.Violations()) != 0 {
		t.Fatalf("balanced accounting reported: %v", c.Violations())
	}
	c = NewChecker(net, nil)
	c.sends, c.delivers = 5, 4
	c.Finish()
	if !hasInvariant(c.Violations(), Conservation) {
		t.Fatal("5 in, 4 out not reported")
	}
}

func TestViolationCap(t *testing.T) {
	net := lineNet()
	c := NewChecker(net, nil)
	for i := 0; i < maxViolations+10; i++ {
		c.Report(Clock, "x", int64(i))
	}
	if len(c.Violations()) != maxViolations {
		t.Fatalf("retained %d violations, want cap %d", len(c.Violations()), maxViolations)
	}
	if c.Total != maxViolations+10 {
		t.Fatalf("Total = %d, want %d", c.Total, maxViolations+10)
	}
}

func TestDisarmedInvariantSilent(t *testing.T) {
	net := lineNet()
	c := NewChecker(net, map[string]bool{Conservation: true})
	c.Report(Clock, "x", 0)
	if len(c.Violations()) != 0 {
		t.Fatal("disarmed invariant still reported")
	}
}

func TestDdmin(t *testing.T) {
	// Predicate: candidate still contains both 3 and 7.
	items := make([]int, 20)
	for i := range items {
		items[i] = i
	}
	got := ddmin(items, func(c []int) bool {
		has3, has7 := false, false
		for _, v := range c {
			has3 = has3 || v == 3
			has7 = has7 || v == 7
		}
		return has3 && has7
	})
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("ddmin = %v, want [3 7]", got)
	}

	// Non-failing input is returned unchanged.
	same := ddmin([]int{1, 2, 3}, func([]int) bool { return false })
	if !reflect.DeepEqual(same, []int{1, 2, 3}) {
		t.Fatalf("ddmin of passing input = %v, want unchanged", same)
	}

	// An always-failing predicate shrinks to empty.
	empty := ddmin([]int{1, 2, 3}, func([]int) bool { return true })
	if len(empty) != 0 {
		t.Fatalf("ddmin with always-true predicate = %v, want empty", empty)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(12345), Generate(12345)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not a pure function of the seed")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}
	c := Generate(12346)
	if reflect.DeepEqual(a.Plan.Events, c.Plan.Events) && reflect.DeepEqual(a.Traffic, c.Traffic) {
		t.Fatal("adjacent seeds generated identical scenarios")
	}
}

func TestScenarioRestorationTail(t *testing.T) {
	// Every generated plan must end fully healed: run it (no traffic) and
	// compare ground-truth connectivity before faults and at probe time.
	for seed := uint64(1); seed <= 20; seed++ {
		sc := Generate(seed)
		if vs := RunScenario(sc, map[string]bool{Reach: true}); len(vs) != 0 {
			t.Fatalf("seed %d: restoration tail left the network unhealed: %v", seed, vs[0])
		}
	}
}
