package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// snapshotJSON renders a registry snapshot the way tussle-bench -metrics
// does: deterministic JSON, sections sorted by metric name.
func snapshotJSON(t *testing.T, reg *obs.Registry) []byte {
	t.Helper()
	b, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Instrumented runs must produce results identical to uninstrumented
// runs — observation never perturbs behavior.
func TestObsDoesNotPerturbResults(t *testing.T) {
	for _, e := range registry {
		if e.RunObs == nil {
			continue
		}
		want := e.Run(42)
		env := &obs.Env{Metrics: obs.NewRegistry()}
		got := e.RunWith(42, env)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: instrumented run diverged from plain run", e.ID)
		}
	}
}

// The suite-level metrics aggregate must be byte-identical across runs
// at the same seed and across parallelism levels: per-worker shards merge
// commutatively, so the work-stealing schedule cannot leak into the
// snapshot. This is the acceptance criterion behind tussle-bench -metrics.
func TestRunAllMetricsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite metrics check is slow")
	}
	run := func(p int) []byte {
		reg := obs.NewRegistry()
		RunAll(42, Options{Parallelism: p, Obs: reg})
		return snapshotJSON(t, reg)
	}
	want := run(1)
	if len(want) <= len("{}") {
		t.Fatalf("suite snapshot empty: %s", want)
	}
	for _, p := range []int{1, 2, 4} {
		if got := run(p); string(got) != string(want) {
			t.Fatalf("parallelism %d: metrics snapshot diverged\n got: %s\nwant: %s", p, got, want)
		}
	}
}

// A traced sequential run must emit netsim events (the instrumented
// experiments drive packets through middleboxes and drops).
func TestRunAllTraceEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite trace check is slow")
	}
	ring := obs.NewRing(1 << 16)
	RunAll(42, Options{Parallelism: 1, Obs: obs.NewRegistry(), Trace: obs.NewTracer(ring)})
	if ring.Total() == 0 {
		t.Fatal("no trace events emitted by instrumented suite")
	}
	for _, kind := range []string{"send", "deliver", "drop"} {
		if len(ring.Find("netsim", kind)) == 0 {
			t.Errorf("no netsim %q events in suite trace", kind)
		}
	}
}
