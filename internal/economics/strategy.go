package economics

import "math"

// StaticPricing never changes the offer.
type StaticPricing struct{}

// Name implements Strategy.
func (StaticPricing) Name() string { return "static" }

// Reprice implements Strategy.
func (StaticPricing) Reprice(p *Provider, view MarketView) Offer { return p.Offer }

// CompetitivePricing undercuts the cheapest rival by a step while staying
// above cost — the "fear" dynamic: competition disciplines the market.
type CompetitivePricing struct {
	// Step is the undercut increment.
	Step float64
	// Floor is the minimum margin over cost.
	Floor float64
}

// Name implements Strategy.
func (CompetitivePricing) Name() string { return "competitive" }

// Reprice implements Strategy.
func (s CompetitivePricing) Reprice(p *Provider, view MarketView) Offer {
	o := p.Offer
	minRival := math.Inf(1)
	for i, price := range view.Prices {
		if i != view.Self && price < minRival {
			minRival = price
		}
	}
	step := s.Step
	if step == 0 {
		step = 0.25
	}
	target := o.Price
	switch {
	case math.IsInf(minRival, 1):
		// No rival: nothing to fear; creep upward.
		target = o.Price + step/2
	case minRival <= o.Price:
		// Undercut — the Bertrand price war.
		target = minRival - step
	default:
		// Cheapest already; raise toward (but below) the rival.
		target = o.Price + step/2
		if target > minRival-step {
			target = minRival - step
		}
	}
	floor := p.Cost + s.Floor
	if target < floor {
		target = floor
	}
	o.Price = target
	return o
}

// GreedPricing raises price while subscribers hold, and remembers the
// price that drove them away — the monopolist probing willingness-to-pay.
// With no competitive alternative, the price converges just below the
// consumers' valuation.
type GreedPricing struct {
	Step float64

	lastSubs int
	ceiling  float64
}

// Name implements Strategy.
func (*GreedPricing) Name() string { return "greed" }

// Reprice implements Strategy.
func (s *GreedPricing) Reprice(p *Provider, view MarketView) Offer {
	o := p.Offer
	step := s.Step
	if step == 0 {
		step = 0.25
	}
	if s.ceiling == 0 {
		s.ceiling = math.Inf(1)
	}
	if view.Round > 1 && p.Subscribers < s.lastSubs {
		// The current price lost customers: that is the ceiling.
		if o.Price < s.ceiling {
			s.ceiling = o.Price
		}
		o.Price = s.ceiling - step
	} else if o.Price+step < s.ceiling {
		o.Price += step
	}
	if o.Price < p.Cost {
		o.Price = p.Cost
	}
	s.lastSubs = p.Subscribers
	return o
}

// AdaptivePricing combines greed and fear: probe upward while holding
// subscribers, undercut the cheapest rival after losing them. In a
// market where consumers can switch it degenerates to Bertrand
// competition; when consumers are locked in it ratchets toward their
// willingness-to-pay — exactly the §V-A1 contrast.
type AdaptivePricing struct {
	Step float64

	lastSubs int
	started  bool
}

// Name implements Strategy.
func (*AdaptivePricing) Name() string { return "adaptive" }

// Reprice implements Strategy.
func (s *AdaptivePricing) Reprice(p *Provider, view MarketView) Offer {
	o := p.Offer
	step := s.Step
	if step == 0 {
		step = 0.25
	}
	if s.started && p.Subscribers < s.lastSubs {
		// Fear: losing share — chase the cheapest rival.
		minRival := math.Inf(1)
		for i, price := range view.Prices {
			if i != view.Self && price < minRival {
				minRival = price
			}
		}
		if math.IsInf(minRival, 1) || minRival > o.Price {
			o.Price -= step
		} else {
			o.Price = minRival - step
		}
	} else {
		// Greed: probe upward.
		o.Price += step
	}
	if o.Price < p.Cost {
		o.Price = p.Cost
	}
	s.lastSubs = p.Subscribers
	s.started = true
	return o
}
