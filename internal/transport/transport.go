// Package transport implements reliable data transfer over the simulated
// internetwork — the machinery at the heart of the end-to-end arguments
// (§VI-A; Saltzer, Reed & Clark is the paper's reference [44]). Two
// designs are provided so experiments can compare them:
//
//   - end-to-end ARQ: only the endpoints retransmit; the network stays
//     simple and transparent (the e2e-argument design);
//   - hop-by-hop ARQ: each forwarding node also acknowledges and
//     retransmits per link — the "function in the network" alternative,
//     which can reduce retransmission span on lossy paths at the price
//     of state and failure points inside the network.
//
// The sender implements a sliding window with cumulative ACKs,
// retransmission timers on the simulation scheduler, and AIMD-free fixed
// windows (congestion control lives in internal/congestion; this package
// is about reliability semantics).
package transport

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Segment flags ride in TTP.Flags; ACKs carry the cumulative next
// expected sequence number in TTP.Ack.

// Config tunes a transfer.
type Config struct {
	// Window is the sender's window in segments.
	Window int
	// SegmentSize is payload bytes per segment.
	SegmentSize int
	// RTO is the base retransmission timeout.
	RTO sim.Time
	// MaxRetries gives up on a segment after this many retransmissions.
	MaxRetries int
	// Backoff multiplies the timeout on every successive retransmission
	// of a segment (exponential backoff). Values <= 1 keep the legacy
	// fixed-RTO loop, so zero-valued manual configs are unchanged.
	Backoff float64
	// MaxRTO caps the backed-off timeout; zero means uncapped.
	MaxRTO sim.Time
	// JitterFrac stretches each timeout by a uniformly random factor in
	// [1, 1+JitterFrac), drawn from a deterministic per-sender RNG — the
	// desynchronization jitter of real transports without giving up
	// reproducibility. Zero disables jitter.
	JitterFrac float64
	// Seed salts the jitter RNG (mixed with the connection endpoints, so
	// concurrent transfers jitter independently at the same seed).
	Seed uint64
	// ContentType declares what the stream carries (TTP.Next on data
	// segments). Observers classify by it: a stream of Crypto content
	// is visibly encrypted even though each segment is a fragment.
	// Zero value means LayerTypeRaw.
	ContentType packet.LayerType
}

// DefaultConfig returns sane laptop-scale defaults: exponential backoff
// (doubling, capped at one second) with 10% deterministic jitter.
func DefaultConfig() Config {
	return Config{Window: 8, SegmentSize: 512, RTO: 60 * sim.Millisecond, MaxRetries: 30,
		Backoff: 2, MaxRTO: sim.Second, JitterFrac: 0.1,
		ContentType: packet.LayerTypeRaw}
}

// Stats summarizes a completed (or failed) transfer.
type Stats struct {
	// Done reports full delivery.
	Done bool
	// Segments is the number of distinct segments.
	Segments int
	// Sent counts transmissions including retransmissions.
	Sent int
	// Retransmissions counts re-sent segments.
	Retransmissions int
	// Elapsed is the transfer duration.
	Elapsed sim.Time
	// Failed reports the transfer gave up, and FailReason says why and
	// where — the terminal degrade signal an application can act on
	// (switch address, fall back to an overlay, tell the user) instead
	// of a silent stall.
	Failed     bool
	FailReason string
}

// Receiver reassembles a byte stream delivered to a node. Install wires
// it into the node's delivery hook for the given port.
type Receiver struct {
	Port uint16
	// next is the next expected sequence number (segment index).
	next uint32
	// buf holds out-of-order segments.
	buf map[uint32][]byte
	// Data accumulates the in-order stream.
	Data []byte
	// Acks counts acknowledgments sent.
	Acks int

	net  *netsim.Network
	node topology.NodeID
	addr packet.Addr
}

// InstallReceiver attaches a receiver for port at node id, chaining any
// existing delivery handler for other traffic.
func InstallReceiver(net *netsim.Network, id topology.NodeID, port uint16) *Receiver {
	r := &Receiver{Port: port, buf: map[uint32][]byte{}, net: net, node: id, addr: packet.MakeAddr(uint16(id), 1)}
	nd := net.Node(id)
	prev := nd.Deliver
	nd.Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
		if !r.handle(data) && prev != nil {
			prev(n, tr, data)
		}
	}
	return r
}

// handle consumes data segments for our port; returns false for
// unrelated traffic.
func (r *Receiver) handle(data []byte) bool {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return false
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil || ttp.DstPort != r.Port {
		return false
	}
	if ttp.Flags&packet.FlagACK != 0 {
		return false // ACKs are for senders
	}
	seq := ttp.Seq
	if seq >= r.next && r.buf[seq] == nil {
		payload := make([]byte, len(ttp.LayerPayload()))
		copy(payload, ttp.LayerPayload())
		r.buf[seq] = payload
	}
	for r.buf[r.next] != nil {
		r.Data = append(r.Data, r.buf[r.next]...)
		delete(r.buf, r.next)
		r.next++
	}
	// Cumulative ACK back to the sender.
	ack, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: r.addr, Dst: tip.Src},
		&packet.TTP{SrcPort: r.Port, DstPort: ttp.SrcPort, Ack: r.next, Flags: packet.FlagACK, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: nil})
	if err == nil {
		r.Acks++
		r.net.Send(r.node, ack)
	}
	return true
}

// Sender drives a reliable transfer.
type Sender struct {
	cfg  Config
	net  *netsim.Network
	node topology.NodeID
	addr packet.Addr
	dst  packet.Addr
	port uint16
	src  uint16

	segments   [][]byte
	acked      uint32 // cumulative: all < acked delivered
	inflight   map[uint32]sim.EventID
	retries    map[uint32]int
	stats      Stats
	started    sim.Time
	failed     bool
	failReason string
	rng        *sim.RNG // jitter source, seeded per connection

	// Pre-bound obs handles; nil (zero-cost no-op Inc) unless AttachObs
	// ran, mirroring netsim's instrumentation pattern.
	obsRetx   *obs.Counter
	obsGiveup *obs.Counter
}

// AttachObs binds the sender's retransmission and give-up counters
// (`transport.retx`, `transport.giveup`) to a registry. Never attached —
// the default — both handles stay nil and the hot paths pay one nil
// check each.
func (s *Sender) AttachObs(reg *obs.Registry) {
	s.obsRetx = reg.Counter("transport.retx")
	s.obsGiveup = reg.Counter("transport.giveup")
}

// NewSender prepares a transfer of data from node src to dstAddr:port.
func NewSender(net *netsim.Network, src topology.NodeID, dstAddr packet.Addr, port uint16, data []byte, cfg Config) *Sender {
	if cfg.Window <= 0 {
		cfg = DefaultConfig()
	}
	s := &Sender{
		cfg: cfg, net: net, node: src,
		addr: packet.MakeAddr(uint16(src), 1), dst: dstAddr,
		port: port, src: 40000,
		inflight: map[uint32]sim.EventID{},
		retries:  map[uint32]int{},
		rng:      sim.NewRNG(cfg.Seed<<20 ^ uint64(src)<<36 ^ uint64(port)<<16 ^ 0x7475736c65),
	}
	for off := 0; off < len(data); off += cfg.SegmentSize {
		end := off + cfg.SegmentSize
		if end > len(data) {
			end = len(data)
		}
		seg := make([]byte, end-off)
		copy(seg, data[off:end])
		s.segments = append(s.segments, seg)
	}
	s.stats.Segments = len(s.segments)
	return s
}

// Start begins the transfer and hooks ACK reception at the sending node.
func (s *Sender) Start() {
	s.started = s.net.Sched.Now()
	nd := s.net.Node(s.node)
	prev := nd.Deliver
	nd.Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
		if !s.handleAck(data) && prev != nil {
			prev(n, tr, data)
		}
	}
	s.pump()
}

// Done reports whether all segments are acknowledged.
func (s *Sender) Done() bool { return int(s.acked) >= len(s.segments) }

// Failed reports whether the transfer gave up.
func (s *Sender) Failed() bool { return s.failed }

// Stats returns the transfer summary.
func (s *Sender) Stats() Stats {
	st := s.stats
	st.Done = s.Done()
	if st.Done {
		st.Elapsed = s.stats.Elapsed
	}
	st.Failed = s.failed
	st.FailReason = s.failReason
	return st
}

// contentType is the declared stream content for data segments.
func (s *Sender) contentType() packet.LayerType {
	if s.cfg.ContentType == packet.LayerTypeNone {
		return packet.LayerTypeRaw
	}
	return s.cfg.ContentType
}

// pump fills the window.
func (s *Sender) pump() {
	if s.failed {
		return
	}
	for seq := s.acked; seq < uint32(len(s.segments)) && seq < s.acked+uint32(s.cfg.Window); seq++ {
		if _, out := s.inflight[seq]; !out {
			s.transmit(seq)
		}
	}
}

func (s *Sender) transmit(seq uint32) {
	data, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: s.addr, Dst: s.dst},
		&packet.TTP{SrcPort: s.src, DstPort: s.port, Seq: seq, Next: s.contentType()},
		&packet.Raw{Data: s.segments[seq]})
	if err != nil {
		s.fail("serialize: " + err.Error())
		return
	}
	s.stats.Sent++
	s.net.Send(s.node, data)
	s.inflight[seq] = s.net.Sched.After(s.rto(s.retries[seq]), func() { s.timeout(seq) })
}

// rto returns the timeout armed for a segment on its attempt'th
// retransmission (0 = first transmission): base RTO, multiplied by
// Backoff per prior attempt (capped at MaxRTO), stretched by seeded
// jitter. With Backoff <= 1 this is the legacy fixed RTO (plus jitter
// when configured).
func (s *Sender) rto(attempt int) sim.Time {
	d := s.cfg.RTO
	if s.cfg.Backoff > 1 {
		for i := 0; i < attempt; i++ {
			d = sim.Time(float64(d) * s.cfg.Backoff)
			if s.cfg.MaxRTO > 0 && d >= s.cfg.MaxRTO {
				d = s.cfg.MaxRTO
				break
			}
		}
	}
	if s.cfg.JitterFrac > 0 {
		d += sim.Time(s.rng.Float64() * s.cfg.JitterFrac * float64(d))
	}
	return d
}

func (s *Sender) timeout(seq uint32) {
	if seq < s.acked || s.failed {
		return
	}
	s.retries[seq]++
	if s.retries[seq] > s.cfg.MaxRetries {
		s.fail(fmt.Sprintf("segment %d unacknowledged after %d retransmissions", seq, s.cfg.MaxRetries))
		return
	}
	s.stats.Retransmissions++
	s.obsRetx.Inc()
	s.transmit(seq)
}

// fail records the first terminal failure and cancels every outstanding
// retransmission timer, so a partitioned transfer stops promptly instead
// of letting each in-flight segment exhaust its retries independently.
func (s *Sender) fail(reason string) {
	if s.failed {
		return
	}
	s.failed = true
	s.failReason = reason
	s.stats.Elapsed = s.net.Sched.Now() - s.started
	s.obsGiveup.Inc()
	for seq, id := range s.inflight {
		s.net.Sched.Cancel(id)
		delete(s.inflight, seq)
	}
}

// handleAck consumes ACKs for our connection; returns false otherwise.
func (s *Sender) handleAck(data []byte) bool {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return false
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil {
		return false
	}
	if ttp.Flags&packet.FlagACK == 0 || ttp.DstPort != s.src {
		return false
	}
	if ttp.Ack > s.acked {
		for seq := s.acked; seq < ttp.Ack; seq++ {
			if id, ok := s.inflight[seq]; ok {
				s.net.Sched.Cancel(id)
				delete(s.inflight, seq)
			}
			delete(s.retries, seq)
		}
		s.acked = ttp.Ack
		if s.Done() {
			s.stats.Elapsed = s.net.Sched.Now() - s.started
			return true
		}
		s.pump()
	}
	return true
}

// Transfer is the convenience wrapper: set up receiver and sender, run
// the scheduler until quiescent, and return both sides' outcomes.
func Transfer(net *netsim.Network, from, to topology.NodeID, port uint16, data []byte, cfg Config) (Stats, *Receiver) {
	r := InstallReceiver(net, to, port)
	s := NewSender(net, from, packet.MakeAddr(uint16(to), 1), port, data, cfg)
	s.Start()
	net.Sched.Run()
	return s.Stats(), r
}
