// Package invariant is the runtime invariant-checking harness: a set of
// global correctness properties the simulator must hold under arbitrary
// fault schedules, checked live through the internal/obs tracer hooks
// (zero-cost when disabled — the checker is just another obs.Sink), plus
// a seeded property-based scenario generator and an automatic shrinker.
//
// The paper's core claim (§III, §VI) is that a tussle-aware architecture
// stays *correct under adversarial motion*: moves, counter-moves, faults
// and byzantine bursts may degrade service, but never violate the
// architecture's own accounting. The invariants catalogued here are that
// accounting, stated as machine-checkable properties:
//
//   - conservation: every packet that enters the network (Send, or an
//     impairment-injected duplicate) terminates in exactly one delivery
//     or one reasoned drop — no packet vanishes silently (§VI-A: "design
//     what happens then" presupposes knowing that something happened).
//   - queue-bound: transmit-queue admission never exceeds MaxQueue —
//     the bound the tail-drop admission control promises.
//   - clock: the structured event stream is monotone in simulated time
//     (the deterministic scheduler's dispatch contract).
//   - trace: per-packet traces are internally consistent — exactly one
//     terminal event, non-decreasing timestamps, hop-adjacent path,
//     forward count bounded by the TTL.
//   - loop-free: after the run drains (reconvergence complete), walking
//     any node's installed routes toward any destination terminates —
//     no forwarding loops survive reconvergence (§V-A).
//   - cut-delivery: a partition admits zero cross-cut deliveries — a
//     delivered packet must have had a temporal path: walking the
//     connectivity epochs its flight overlapped, in order, the set of
//     nodes reachable from its source must come to include its
//     destination (store-and-forward across changing topology is
//     legitimate; crossing a standing cut is not).
//   - reach: heal restores reachability — after the fault plan's
//     restoration tail, probes between ground-truth-connected stubs are
//     delivered.
//   - transport: a transfer either completes with the receiver holding
//     exactly the sent bytes, or fails with a reason; the received
//     stream is always an in-order prefix of the sent stream.
//   - merge-commute: metrics-registry Merge is commutative across worker
//     shards — the property that makes parallel sweep aggregates
//     deterministic (§IV-C visibility depends on trustworthy metrics).
package invariant

import (
	"fmt"
	"sort"
	"strings"
)

// Invariant names, as accepted by tussle-check -invariants and reported
// in violations.
const (
	Conservation = "conservation"
	QueueBound   = "queue-bound"
	Clock        = "clock"
	TraceValid   = "trace"
	LoopFree     = "loop-free"
	CutDelivery  = "cut-delivery"
	Reach        = "reach"
	Transport    = "transport"
	MergeCommute = "merge-commute"
)

// All returns every invariant name, sorted.
func All() []string {
	names := []string{
		Conservation, QueueBound, Clock, TraceValid, LoopFree,
		CutDelivery, Reach, Transport, MergeCommute,
	}
	sort.Strings(names)
	return names
}

// AllSet returns the enabled-set with every invariant armed.
func AllSet() map[string]bool {
	set := make(map[string]bool)
	for _, n := range All() {
		set[n] = true
	}
	return set
}

// ParseSet parses a -invariants flag value: "all" or a comma-separated
// subset of the names in All. Unknown names are errors (a typo must not
// silently disarm a check).
func ParseSet(spec string) (map[string]bool, error) {
	if spec == "" || spec == "all" {
		return AllSet(), nil
	}
	known := AllSet()
	set := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("invariant: unknown invariant %q (known: %s)", name, strings.Join(All(), ","))
		}
		set[name] = true
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("invariant: empty invariant set %q", spec)
	}
	return set, nil
}

// Violation is one detected invariant breach.
type Violation struct {
	// Invariant is the name of the violated property (see the constants).
	Invariant string `json:"invariant"`
	// Detail is a human-readable account of what went wrong.
	Detail string `json:"detail"`
	// TimeNs is the simulated time the breach was detected at.
	TimeNs int64 `json:"time_ns"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%dns: %s", v.Invariant, v.TimeNs, v.Detail)
}
