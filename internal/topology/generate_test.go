package topology

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func graphDigest(g *Graph) string {
	out := fmt.Sprintf("nodes=%d links=%d\n", len(g.Nodes), len(g.Links))
	for _, id := range g.NodeIDs() {
		nd := g.Nodes[id]
		out += fmt.Sprintf("n%d kind=%d tier=%d\n", id, nd.Kind, nd.Tier)
	}
	for _, l := range g.Links {
		out += fmt.Sprintf("l %d-%d rel=%d lat=%d cost=%g\n", l.A, l.B, l.Rel, l.Latency, l.Cost)
	}
	return out
}

// TestScaleFreeDeterministic: same (n, m, seed) must produce the exact
// same graph — nodes, kinds, tiers, links, latencies, costs.
func TestScaleFreeDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 42, 7} {
		a := GenerateScaleFree(500, 2, sim.NewRNG(seed))
		b := GenerateScaleFree(500, 2, sim.NewRNG(seed))
		if graphDigest(a) != graphDigest(b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	a := GenerateScaleFree(500, 2, sim.NewRNG(1))
	b := GenerateScaleFree(500, 2, sim.NewRNG(2))
	if graphDigest(a) == graphDigest(b) {
		t.Fatal("different seeds produced identical graphs")
	}
}

// TestScaleFreeConnected: BA attachment always links a new node to an
// earlier one, so the graph must be one component at any size.
func TestScaleFreeConnected(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{5, 1}, {50, 2}, {500, 3}, {2000, 2}} {
		g := GenerateScaleFree(tc.n, tc.m, sim.NewRNG(42))
		if len(g.Nodes) != tc.n {
			t.Fatalf("n=%d m=%d: got %d nodes", tc.n, tc.m, len(g.Nodes))
		}
		seen := map[NodeID]bool{1: true}
		queue := []NodeID{1}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(v) {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if len(seen) != tc.n {
			t.Errorf("n=%d m=%d: only %d of %d nodes reachable from 1", tc.n, tc.m, len(seen), tc.n)
		}
	}
}

// TestScaleFreeShape: the degree distribution should be heavy-tailed —
// a hub far above the mean degree — and leaves must be classified Stub.
func TestScaleFreeShape(t *testing.T) {
	const n, m = 2000, 2
	g := GenerateScaleFree(n, m, sim.NewRNG(42))
	deg := map[NodeID]int{}
	for _, l := range g.Links {
		deg[l.A]++
		deg[l.B]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Mean degree is ~2m; a BA hub at n=2000 should be an order of
	// magnitude above it.
	if maxDeg < 10*m {
		t.Errorf("max degree %d, want >= %d (no hub formed)", maxDeg, 10*m)
	}
	stubs := 0
	for id, nd := range g.Nodes {
		if deg[id] <= m && nd.Tier != 1 {
			if nd.Kind != Stub || nd.Tier != 3 {
				t.Fatalf("leaf %d (deg %d) classified kind=%d tier=%d", id, deg[id], nd.Kind, nd.Tier)
			}
			stubs++
		}
	}
	if stubs == 0 {
		t.Error("no stub leaves in a 2000-node BA graph")
	}
}

// TestScaleFreeDegenerate: tiny and clamped parameters still build
// valid connected graphs.
func TestScaleFreeDegenerate(t *testing.T) {
	g := GenerateScaleFree(1, 0, sim.NewRNG(1)) // clamps to n=2, m=1
	if len(g.Nodes) != 2 || len(g.Links) != 1 {
		t.Fatalf("clamped graph: %d nodes %d links, want 2/1", len(g.Nodes), len(g.Links))
	}
	g = GenerateScaleFree(3, 2, sim.NewRNG(1)) // exactly the seed clique
	if len(g.Nodes) != 3 || len(g.Links) != 3 {
		t.Fatalf("clique graph: %d nodes %d links, want 3/3", len(g.Nodes), len(g.Links))
	}
}

// TestPartitionContiguous: balance within one node, full coverage,
// stable table, and clamping.
func TestPartitionContiguous(t *testing.T) {
	g := GenerateScaleFree(103, 2, sim.NewRNG(9))
	for _, k := range []int{1, 2, 4, 8} {
		p := PartitionContiguous(g, k)
		if p.K != k {
			t.Fatalf("K=%d, want %d", p.K, k)
		}
		total, min, max := 0, 1<<30, 0
		for _, c := range p.Counts {
			total += c
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if total != len(g.Nodes) {
			t.Fatalf("k=%d: counts sum %d != %d nodes", k, total, len(g.Nodes))
		}
		if max-min > 1 {
			t.Errorf("k=%d: imbalance %d..%d", k, min, max)
		}
		// Contiguity: shard index is non-decreasing in NodeID order.
		prev := int32(0)
		for _, id := range g.NodeIDs() {
			s := p.ShardOf(id)
			if s < prev {
				t.Fatalf("k=%d: shard order regresses at node %d", k, id)
			}
			prev = s
		}
	}
	if p := PartitionContiguous(g, 0); p.K != 1 {
		t.Errorf("k=0 clamps to %d, want 1", p.K)
	}
	if p := PartitionContiguous(g, 1000); p.K != len(g.Nodes) {
		t.Errorf("k=1000 clamps to %d, want %d", p.K, len(g.Nodes))
	}
	if PartitionContiguous(g, 2).ShardOf(NodeID(9999)) != -1 {
		t.Error("unknown ID must map to shard -1")
	}
}

// TestMinCrossLatency: the lookahead window equals the smallest latency
// over the cut, and a single-shard partition has no cross links.
func TestMinCrossLatency(t *testing.T) {
	g := Linear(6, 3*sim.Millisecond)
	p := PartitionContiguous(g, 2)
	w, ok := p.MinCrossLatency(g)
	if !ok || w != 3*sim.Millisecond {
		t.Fatalf("window=%v ok=%v, want 3ms true", w, ok)
	}
	if c := p.CrossLinks(g); c != 1 {
		t.Fatalf("cross links %d, want 1 (chain cut)", c)
	}
	p1 := PartitionContiguous(g, 1)
	if _, ok := p1.MinCrossLatency(g); ok {
		t.Fatal("k=1 partition reported a cross link")
	}
}
