package qos

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

func mkToS(t *testing.T, tos uint8, port uint16) []byte {
	t.Helper()
	data, err := packet.Serialize(
		&packet.TIP{TTL: 8, TOS: tos, Proto: packet.LayerTypeTTP, Src: 1, Dst: 2},
		&packet.TTP{DstPort: port, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestExplicitClassifier(t *testing.T) {
	var c ExplicitClassifier
	if got := c.Classify(mkToS(t, ToSFor(Gold), 9999)); got != Gold {
		t.Fatalf("class = %v", got)
	}
	if c.Opaque() {
		t.Fatal("explicit classifier should see ToS")
	}
	if got := c.Classify(mkToS(t, ToSFor(BestEffort), 80)); got != BestEffort {
		t.Fatalf("class = %v", got)
	}
}

func TestPortClassifier(t *testing.T) {
	pc := &PortClassifier{PortClass: map[uint16]Class{5060: Gold, 80: Silver}, Default: BestEffort}
	if got := pc.Classify(mkToS(t, 0, 5060)); got != Gold || pc.Opaque() {
		t.Fatalf("class = %v opaque=%v", got, pc.Opaque())
	}
	if got := pc.Classify(mkToS(t, 0, 2222)); got != BestEffort {
		t.Fatalf("unknown port class = %v", got)
	}
}

func TestPortClassifierDefeatedByTunnel(t *testing.T) {
	pc := &PortClassifier{PortClass: map[uint16]Class{5060: Gold}, Default: BestEffort}
	// VoIP tunneled at the network layer: ports invisible, class lost.
	inner := mkToS(t, 0, 5060)
	data, err := packet.Serialize(
		&packet.TIP{TTL: 8, Proto: packet.LayerTypeTunnel, Src: 1, Dst: 2},
		&packet.Tunnel{Inner: packet.LayerTypeTIP},
		&packet.Raw{Data: inner})
	if err != nil {
		t.Fatal(err)
	}
	if got := pc.Classify(data); got != BestEffort || !pc.Opaque() {
		t.Fatalf("tunneled class = %v opaque=%v", got, pc.Opaque())
	}
	// The explicit classifier still sees the outer ToS bits.
	var ec ExplicitClassifier
	dataToS, err := packet.Serialize(
		&packet.TIP{TTL: 8, TOS: ToSFor(Gold), Proto: packet.LayerTypeTunnel, Src: 1, Dst: 2},
		&packet.Tunnel{Inner: packet.LayerTypeTIP},
		&packet.Raw{Data: inner})
	if err != nil {
		t.Fatal(err)
	}
	if got := ec.Classify(dataToS); got != Gold {
		t.Fatalf("explicit class through tunnel = %v", got)
	}
}

func TestClassToSRoundTrip(t *testing.T) {
	f := func(c uint8) bool {
		class := Class(c % NumClasses)
		return ClassOfToS(ToSFor(class)) == class
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOIgnoresClass(t *testing.T) {
	l := NewLinkSim(1000, FIFO) // 1000 B/s
	low := l.Add(BestEffort, 1000, 0)
	high := l.Add(Gold, 1000, 1) // arrives just after
	l.Run()
	if high.Depart <= low.Depart {
		t.Fatal("FIFO should serve in arrival order")
	}
}

func TestStrictPriorityFavorsGold(t *testing.T) {
	l := NewLinkSim(1000, StrictPriority)
	// Occupy the server, then queue one of each.
	l.Add(BestEffort, 1000, 0) // served 0..1s
	be := l.Add(BestEffort, 1000, sim.Millisecond)
	gold := l.Add(Gold, 1000, 2*sim.Millisecond)
	l.Run()
	if gold.Depart >= be.Depart {
		t.Fatalf("gold departs %v after best-effort %v", gold.Depart, be.Depart)
	}
}

func TestStrictPriorityNoPreemption(t *testing.T) {
	l := NewLinkSim(1000, StrictPriority)
	first := l.Add(BestEffort, 1000, 0)
	gold := l.Add(Gold, 100, sim.Millisecond)
	l.Run()
	// Gold cannot preempt the in-service packet.
	if gold.Depart < first.Depart {
		t.Fatalf("gold preempted: %v < %v", gold.Depart, first.Depart)
	}
}

func TestPriorityWorkConserving(t *testing.T) {
	// Total busy time equals total service demand when there are no
	// idle gaps.
	l := NewLinkSim(1000, StrictPriority)
	for i := 0; i < 10; i++ {
		l.Add(Class(i%NumClasses), 500, 0)
	}
	l.Run()
	var last sim.Time
	for _, j := range l.jobs {
		if j.Depart > last {
			last = j.Depart
		}
	}
	want := sim.Time(10 * 500 * int64(sim.Second) / 1000)
	if last != want {
		t.Fatalf("makespan = %v, want %v", last, want)
	}
}

func TestPriorityIdleJump(t *testing.T) {
	l := NewLinkSim(1000, StrictPriority)
	a := l.Add(Gold, 100, 0)
	b := l.Add(BestEffort, 100, 10*sim.Second) // long idle gap
	l.Run()
	if a.Depart >= sim.Second || b.Depart < 10*sim.Second {
		t.Fatalf("idle handling wrong: %v %v", a.Depart, b.Depart)
	}
}

func TestWFQSharesByWeight(t *testing.T) {
	l := NewLinkSim(1000, WFQ)
	l.Weights = [NumClasses]float64{1, 0, 0, 3} // gold gets 3x share
	// Saturate with alternating arrivals at t=0.
	var goldDelay, beDelay sim.Time
	var goldN, beN int
	for i := 0; i < 40; i++ {
		l.Add(BestEffort, 500, 0)
		l.Add(Gold, 500, 0)
	}
	l.Run()
	for _, j := range l.jobs {
		if j.Class == Gold {
			goldDelay += j.Delay()
			goldN++
		} else {
			beDelay += j.Delay()
			beN++
		}
	}
	if goldDelay/sim.Time(goldN) >= beDelay/sim.Time(beN) {
		t.Fatalf("gold mean delay %v not better than best-effort %v",
			goldDelay/sim.Time(goldN), beDelay/sim.Time(beN))
	}
}

func TestWFQAvoidsStarvation(t *testing.T) {
	// Unlike strict priority, WFQ must still serve the low class at a
	// proportional rate while high-class load persists.
	mk := func(d Discipline) sim.Time {
		l := NewLinkSim(1000, d)
		l.Weights = [NumClasses]float64{1, 1, 1, 1}
		low := l.Add(BestEffort, 500, 0)
		for i := 0; i < 20; i++ {
			l.Add(Gold, 500, 0)
		}
		l.Run()
		return low.Depart
	}
	wfq := mk(WFQ)
	prio := mk(StrictPriority)
	if wfq >= prio {
		t.Fatalf("WFQ low-class departure %v not earlier than priority %v", wfq, prio)
	}
}

func TestMeanDelayByClass(t *testing.T) {
	l := NewLinkSim(1000, StrictPriority)
	l.Add(BestEffort, 1000, 0)
	l.Add(BestEffort, 1000, 0)
	l.Add(Gold, 1000, 0)
	l.Run()
	delays := l.MeanDelayByClass()
	if delays[Gold] >= delays[BestEffort] {
		t.Fatalf("gold %v >= best-effort %v", delays[Gold], delays[BestEffort])
	}
	if delays[Silver] != 0 {
		t.Fatal("empty class should report zero")
	}
}

func TestSchedulersServeEveryJobQuick(t *testing.T) {
	f := func(seed uint64, discRaw uint8) bool {
		rng := sim.NewRNG(seed)
		disc := Discipline(discRaw % 3)
		l := NewLinkSim(1e4, disc)
		n := rng.Intn(30) + 1
		for i := 0; i < n; i++ {
			l.Add(Class(rng.Intn(NumClasses)), rng.Intn(2000)+1, sim.Time(rng.Intn(1000))*sim.Millisecond)
		}
		l.Run()
		for _, j := range l.jobs {
			if j.Depart <= j.Arrive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNoOverlappingService(t *testing.T) {
	// Single server: service intervals must not overlap.
	f := func(seed uint64, discRaw uint8) bool {
		rng := sim.NewRNG(seed)
		disc := Discipline(discRaw % 3)
		l := NewLinkSim(1e4, disc)
		for i := 0; i < 20; i++ {
			l.Add(Class(rng.Intn(NumClasses)), rng.Intn(2000)+1, sim.Time(rng.Intn(100))*sim.Millisecond)
		}
		l.Run()
		// Sum of service times must be <= makespan (no double service).
		var total sim.Time
		var last sim.Time
		for _, j := range l.jobs {
			total += l.tx(j.Bytes)
			if j.Depart > last {
				last = j.Depart
			}
		}
		return total <= last+sim.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
