// Command tussle-bench regenerates the full evaluation suite (E1–E30,
// indexed in DESIGN.md) and prints each experiment's table and finding.
//
// Usage:
//
//	tussle-bench [-seed N] [-only E3,E11] [-quiet] [-parallel N] [-json FILE] [-metrics FILE]
//	tussle-bench -policy-json BENCH_policy.json [-iters N]
//	tussle-bench -compare old.json new.json [-tolerance 0.10]
//
// Every run is deterministic for a given seed: the experiments are pure
// functions of the seed, so -parallel changes only wall-clock time, never
// a single output byte.
//
// -json FILE additionally micro-benchmarks each experiment (ns/op,
// allocs/op, bytes/op) plus sequential-vs-parallel suite wall time, and
// writes the measurements as JSON — the repo's recorded perf baseline
// (BENCH_suite.json by convention; see the Makefile bench-json target).
//
// -compare diffs two such JSON files and exits non-zero when any
// experiment's ns/op regressed beyond -tolerance (default 10%) or its
// allocs/op grew at all. CI runs it against the committed baseline; see
// the Makefile bench-smoke target.
//
// -metrics FILE runs the suite with the internal/obs observability layer
// enabled and writes the metric snapshots (suite-wide aggregate plus a
// per-experiment breakdown) as JSON. Metrics record only simulated
// quantities, so the file is byte-identical across runs at the same seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/scale"
)

// expBench is one experiment's measured cost.
type expBench struct {
	ID          string `json:"id"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// suiteBench records the measurement run as a whole.
type suiteBench struct {
	Seed         uint64 `json:"seed"`
	Iters        int    `json:"iters"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	NumCPU       int    `json:"num_cpu"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Parallelism  int    `json:"parallelism"`
	SequentialNs int64  `json:"suite_sequential_ns"`
	ParallelNs   int64  `json:"suite_parallel_ns"`
	// Speedup is null (not a number) when the host cannot express
	// parallelism — on a single-core host sequential vs parallel wall
	// time measures only goroutine-switch overhead, and recording the
	// resulting ~1.0x as a baseline would make -compare treat real
	// multi-core speedups as regressions. SpeedupNote says why.
	Speedup     *float64   `json:"suite_speedup"`
	SpeedupNote string     `json:"suite_speedup_note,omitempty"`
	Experiments []expBench `json:"experiments"`
}

// benchSuite measures each experiment individually (single goroutine, so
// the MemStats deltas attribute cleanly) and then the whole suite both
// sequentially and with the parallel runner.
func benchSuite(seed uint64, iters, parallelism int) suiteBench {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	sb := suiteBench{
		Seed:        seed,
		Iters:       iters,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: parallelism,
	}
	var m0, m1 runtime.MemStats
	for _, exp := range experiments.List() {
		exp.Run(seed) // warm caches and pools out of the measurement
		// Minimum across iterations for every dimension, exactly as the
		// scale and wire sweeps: timing noise (scheduler preemption, GC,
		// neighbors on the machine) is strictly additive, and the MemStats
		// delta around a run occasionally picks up a stray runtime
		// allocation (GC bookkeeping, background timers), so the minimum —
		// not the mean — is the reproducible figure the zero-tolerance
		// alloc gate needs. GC is paused for the measured region: a
		// collection mid-run empties every sync.Pool at a timing-dependent
		// point, and the refills show up as a few spurious allocations that
		// the min cannot reliably filter on allocation-heavy experiments.
		var minNs int64
		var minAllocs, minBytes uint64
		for i := 0; i < iters; i++ {
			runtime.GC()
			gcPct := debug.SetGCPercent(-1)
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			exp.Run(seed)
			el := time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&m1)
			debug.SetGCPercent(gcPct)
			if i == 0 || el < minNs {
				minNs = el
			}
			if a := m1.Mallocs - m0.Mallocs; i == 0 || a < minAllocs {
				minAllocs = a
			}
			if b := m1.TotalAlloc - m0.TotalAlloc; i == 0 || b < minBytes {
				minBytes = b
			}
		}
		sb.Experiments = append(sb.Experiments, expBench{
			ID:          exp.ID,
			NsPerOp:     minNs,
			AllocsPerOp: minAllocs,
			BytesPerOp:  minBytes,
		})
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		experiments.All(seed)
	}
	sb.SequentialNs = time.Since(t0).Nanoseconds() / int64(iters)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		experiments.RunAll(seed, experiments.Options{Parallelism: parallelism})
	}
	sb.ParallelNs = time.Since(t0).Nanoseconds() / int64(iters)
	switch {
	case runtime.GOMAXPROCS(0) == 1:
		sb.SpeedupNote = "GOMAXPROCS=1: parallel speedup is not measurable on a single-core host"
	case sb.ParallelNs > 0:
		sp := float64(sb.SequentialNs) / float64(sb.ParallelNs)
		sb.Speedup = &sp
	}
	return sb
}

// scaleSizes is the BenchmarkScaleForward sweep rendered as committable
// JSON: end-to-end sharded-core runs (topology + routing tables + full
// drain) at three orders of magnitude, recorded in the suiteBench
// schema so the existing -compare gate holds BENCH_scale.json against a
// fresh measurement.
var scaleSizes = []struct {
	id             string
	nodes, packets int
}{
	{"scale-1k", 1_000, 20_000},
	{"scale-10k", 10_000, 100_000},
	{"scale-100k", 100_000, 500_000},
}

// benchScale measures the scale workload per size; ns/op is the minimum
// across iterations (as in benchSuite), allocs are the exact per-run
// mean.
func benchScale(seed uint64, iters int) suiteBench {
	sb := suiteBench{
		Seed:        seed,
		Iters:       iters,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: 1,
		SpeedupNote: "scale sweep: per-size end-to-end runs, no suite-level parallel phase",
	}
	var m0, m1 runtime.MemStats
	for _, sz := range scaleSizes {
		cfg := scale.Config{Nodes: sz.nodes, Packets: sz.packets, Seed: seed, Shards: 1}
		res := scale.Run(cfg) // warm pools and page cache out of the measurement
		if res.Delivered+res.Dropped != sz.packets {
			fmt.Fprintf(os.Stderr, "tussle-bench: %s terminated %d of %d packets\n",
				sz.id, res.Delivered+res.Dropped, sz.packets)
			os.Exit(1)
		}
		// Minimum across iterations for every dimension: timing noise is
		// additive, and at millions of allocations per run the MemStats
		// deltas pick up the occasional stray runtime allocation (GC
		// bookkeeping, background timers), so the minimum — not the mean
		// — is the reproducible figure the zero-tolerance alloc gate
		// needs.
		var minNs int64
		var minAllocs, minBytes uint64
		for i := 0; i < iters; i++ {
			runtime.GC()
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			scale.Run(cfg)
			el := time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&m1)
			if i == 0 || el < minNs {
				minNs = el
			}
			if a := m1.Mallocs - m0.Mallocs; i == 0 || a < minAllocs {
				minAllocs = a
			}
			if b := m1.TotalAlloc - m0.TotalAlloc; i == 0 || b < minBytes {
				minBytes = b
			}
		}
		sb.Experiments = append(sb.Experiments, expBench{
			ID:          sz.id,
			NsPerOp:     minNs,
			AllocsPerOp: minAllocs,
			BytesPerOp:  minBytes,
		})
	}
	return sb
}

func main() {
	seed := flag.Uint64("seed", 42, "simulation seed (runs are deterministic per seed)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E3,E11); empty = all")
	quiet := flag.Bool("quiet", false, "print findings only, not the full tables")
	markdown := flag.Bool("markdown", false, "emit EXPERIMENTS.md-style markdown")
	parallel := flag.Int("parallel", 0, "worker goroutines for the suite (0 = GOMAXPROCS, 1 = sequential)")
	jsonPath := flag.String("json", "", "also micro-benchmark every experiment and write JSON to this file (e.g. BENCH_suite.json)")
	scaleJSONPath := flag.String("scale-json", "", "measure the sharded-core scale sweep (1k/10k/100k nodes) and write JSON to this file (e.g. BENCH_scale.json)")
	wireJSONPath := flag.String("wire-json", "", "measure the live UDP wire engine (decision kernel + loopback round trip) and write JSON to this file (e.g. BENCH_wire.json)")
	policyJSONPath := flag.String("policy-json", "", "measure the metered policy VM (scalar / membership / nested shapes, per-eval) and write JSON to this file (e.g. BENCH_policy.json)")
	iters := flag.Int("iters", 3, "iterations per experiment for -json measurements")
	compare := flag.Bool("compare", false, "compare two bench JSON files (old new); exit non-zero on ns/op or allocs/op regression")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op growth per experiment for -compare")
	metricsPath := flag.String("metrics", "", "run the suite instrumented and write metric snapshots (suite aggregate + per-experiment) as JSON to this file")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "tussle-bench: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *tolerance))
	}

	if *policyJSONPath != "" {
		if *iters < 1 {
			*iters = 1
		}
		sb := benchPolicy(*iters)
		writeBenchJSON(*policyJSONPath, sb)
		for _, e := range sb.Experiments {
			fmt.Fprintf(os.Stderr, "tussle-bench: %-14s %8d ns/op %8d allocs/op (%.1fM evals/s)\n",
				e.ID, e.NsPerOp, e.AllocsPerOp, 1e3/float64(e.NsPerOp))
		}
		fmt.Fprintf(os.Stderr, "tussle-bench: wrote %s\n", *policyJSONPath)
		return
	}

	if *wireJSONPath != "" {
		if *iters < 1 {
			*iters = 1
		}
		sb := benchWire(*iters)
		writeBenchJSON(*wireJSONPath, sb)
		for _, e := range sb.Experiments {
			fmt.Fprintf(os.Stderr, "tussle-bench: %-14s %8d ns/op %8d allocs/op\n", e.ID, e.NsPerOp, e.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "tussle-bench: wrote %s\n", *wireJSONPath)
		return
	}

	if *scaleJSONPath != "" {
		if *iters < 1 {
			*iters = 1
		}
		sb := benchScale(*seed, *iters)
		writeBenchJSON(*scaleJSONPath, sb)
		for _, e := range sb.Experiments {
			fmt.Fprintf(os.Stderr, "tussle-bench: %-10s %12d ns/op %8d allocs/op\n", e.ID, e.NsPerOp, e.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "tussle-bench: wrote %s\n", *scaleJSONPath)
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	var suiteReg *obs.Registry
	if *metricsPath != "" {
		suiteReg = obs.NewRegistry()
	}
	results := experiments.RunAll(*seed, experiments.Options{Parallelism: *parallel, Obs: suiteReg})
	if *markdown {
		fmt.Printf("# EXPERIMENTS — paper claims vs measured results\n\n")
		fmt.Printf("Generated by `go run ./cmd/tussle-bench -markdown` with seed %d.\n", *seed)
		fmt.Printf("The source paper is a position paper with no tables or figures; each\n")
		fmt.Printf("experiment below operationalizes one of its claims (section anchors\n")
		fmt.Printf("given per experiment; the full index is in DESIGN.md §3). Every value\n")
		fmt.Printf("is deterministic for the seed, and every directional claim in a\n")
		fmt.Printf("\"Measured\" line is enforced by a test in internal/experiments.\n\n")
	}
	printed := 0
	for _, r := range results {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		printed++
		switch {
		case *markdown:
			r.RenderMarkdown(os.Stdout)
		case *quiet:
			fmt.Printf("%s %s\n  finding: %s\n", r.ID, r.Title, r.Finding)
		default:
			r.Render(os.Stdout)
		}
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "tussle-bench: no experiments matched %q\n", *only)
		os.Exit(1)
	}
	if *markdown && len(want) == 0 {
		// A static trailing section (no measured values, so regenerating
		// this file stays a deterministic no-op): the live-wire multipath
		// runs live in CI smoke jobs, not in the seeded suite, because
		// wall-clock loopback timings are not reproducible by seed.
		fmt.Printf("## W1 — multipath striping on the live wire (CI smoke, wall clock)\n\n")
		fmt.Printf("**Paper claim.** §IV-B/§V-A4: routing around the tussle has to survive\n")
		fmt.Printf("contact with a real substrate — the same demote/probe/promote machine\n")
		fmt.Printf("that scores 1.0 availability in E29 runs over real UDP sockets on the\n")
		fmt.Printf("wall clock, and the differential harness proves it is the *same*\n")
		fmt.Printf("machine (decision logs byte-identical to the simulator's, seeds 42+7,\n")
		fmt.Printf("pinned in internal/wire/testdata/golden_mp_decisions.txt).\n\n")
		fmt.Printf("Availability on the wire is asserted, not scored: the\n")
		fmt.Printf("`wire-multipath-smoke` CI job stripes 10 MiB through the real tussled\n")
		fmt.Printf("binary on loopback and fails on any broken promise below.\n\n")
		fmt.Printf("| run | strategy | impairment | asserted |\n")
		fmt.Printf("|---|---|---|---|\n")
		fmt.Printf("| 1 | shortest-k | path 2 dropped at start, lifted mid-run (SIGUSR1) | transfer completes; reassembled sha256 equals the payload's; ≥1 demotion |\n")
		fmt.Printf("| 2 | loss-adaptive | none | transfer completes byte-exact; all three paths carry segments |\n\n")
		fmt.Printf("**Measured.** per-op cost rides in BENCH_wire.json as the\n")
		fmt.Printf("`wire-mp-roundtrip` row (one striped segment out, its cumulative ACK\n")
		fmt.Printf("back), gated by `tussle-bench -compare` with allocs/op at zero\n")
		fmt.Printf("tolerance — the striping fast path stays off the heap per packet.\n")
	}

	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, *seed, suiteReg); err != nil {
			fmt.Fprintf(os.Stderr, "tussle-bench: write %s: %v\n", *metricsPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tussle-bench: wrote %s\n", *metricsPath)
	}

	if *jsonPath != "" {
		if *iters < 1 {
			*iters = 1
		}
		sb := benchSuite(*seed, *iters, *parallel)
		writeBenchJSON(*jsonPath, sb)
		speedup := "n/a (single-core)"
		if sb.Speedup != nil {
			speedup = fmt.Sprintf("%.2fx", *sb.Speedup)
		}
		fmt.Fprintf(os.Stderr, "tussle-bench: wrote %s (suite %.2fms sequential, %.2fms parallel ×%d, speedup %s)\n",
			*jsonPath,
			float64(sb.SequentialNs)/1e6, float64(sb.ParallelNs)/1e6,
			sb.Parallelism, speedup)
	}
}

// writeBenchJSON marshals a bench record to path, exiting on error.
func writeBenchJSON(path string, sb suiteBench) {
	buf, err := json.MarshalIndent(sb, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussle-bench: marshal bench json: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tussle-bench: write %s: %v\n", path, err)
		os.Exit(1)
	}
}
