package experiments

import (
	"fmt"

	"repro/internal/fiber"
)

// E22FiberSharing runs the §V-A3 R&D project: a municipal fiber access
// facility shared by competing retail ISPs, compared across the time
// domain (packet scheduling) and the color domain (wavelengths) on the
// exact questions the paper lists — fairness enforcement and
// verification, fault isolation, and incremental upgrades.
func E22FiberSharing(seed uint64) *Result {
	res := &Result{
		ID:    "E22",
		Title: "municipal fiber: time-domain vs color-domain sharing",
		Claim: "§V-A3: design a fiber access facility supporting higher-level competition; compare packet vs wavelength sharing on fairness, faults, upgrades",
		Columns: []string{
			"total-delivered", "cheater-got", "honest-min", "blast-radius",
		},
	}
	_ = seed // the fluid model is deterministic
	const capacity = 1000.0
	const lambda = 250.0
	mk := func(cheat bool) []*fiber.Tenant {
		demandC := 250.0
		if cheat {
			demandC = 2000
		}
		return []*fiber.Tenant{
			{Name: "isp-a", Entitlement: 0.5, Demand: 600},
			{Name: "isp-b", Entitlement: 0.25, Demand: 300},
			{Name: "isp-c", Entitlement: 0.25, Demand: demandC, Cheats: cheat},
		}
	}
	honestMin := func(f *fiber.Facility) float64 {
		min := capacity
		for _, t := range f.Tenants {
			if !t.Cheats && t.Demand > 0 && t.Delivered < min {
				min = t.Delivered
			}
		}
		return min
	}
	for _, domain := range []fiber.Domain{fiber.TDM, fiber.WDM} {
		for _, scenario := range []string{"entitled", "cheater", "idle-tenant"} {
			var tenants []*fiber.Tenant
			switch scenario {
			case "cheater":
				tenants = mk(true)
			case "idle-tenant":
				tenants = mk(false)
				tenants[1].Demand = 0 // isp-b idle: does capacity backfill?
			default:
				tenants = mk(false)
			}
			f := fiber.New(capacity, domain, lambda, tenants...)
			total := f.Measure()
			cheaterGot := 0.0
			for _, t := range tenants {
				if t.Cheats {
					cheaterGot = t.Delivered
				}
			}
			res.AddRow(fmt.Sprintf("%v %s", domain, scenario),
				total, cheaterGot, honestMin(f), float64(f.BlastRadius()))
		}
	}
	res.Finding = fmt.Sprintf(
		"both domains hold a cheater to its entitlement (tdm %.0f, wdm %.0f of 250) — enforcement works in either; they differ on efficiency (idle-tenant total: tdm %.0f vs wdm %.0f — lambdas don't backfill), fault blast radius (tdm %d tenants vs wdm %d), and upgrade granularity (tdm fractional, wdm per-%.0f-lambda)",
		res.MustGet("tdm cheater", "cheater-got"),
		res.MustGet("wdm cheater", "cheater-got"),
		res.MustGet("tdm idle-tenant", "total-delivered"),
		res.MustGet("wdm idle-tenant", "total-delivered"),
		int(res.MustGet("tdm entitled", "blast-radius")),
		int(res.MustGet("wdm entitled", "blast-radius")),
		lambda)
	return res
}
