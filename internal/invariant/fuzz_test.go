package invariant

import (
	"bytes"
	"testing"

	"repro/internal/chaos"
)

// FuzzShrinkRoundTrip feeds arbitrary chaos-plan JSON through the
// shrinker and asserts the shrinking contract: given a valid plan and a
// deterministic predicate the plan satisfies, the shrunk plan (a) is no
// larger, (b) still satisfies the predicate, (c) still validates, and
// (d) survives the canonical Encode → ParsePlan → Encode round trip as a
// fixed point. Invalid inputs are skipped — ParsePlan's own rejection is
// covered by the chaos package tests.
func FuzzShrinkRoundTrip(f *testing.F) {
	seed42, err := Generate(42).Plan.Encode()
	if err != nil {
		f.Fatal(err)
	}
	seed7, err := Generate(7).Plan.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed42)
	f.Add(seed7)
	f.Add([]byte(`{"name":"tiny","seed":1,"events":[{"at_ms":1,"kind":"heal"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := chaos.ParsePlan(data)
		if err != nil || len(p.Events) == 0 {
			return
		}
		// Deterministic predicate: the plan keeps at least one event of
		// the first event's kind.
		kind := p.Events[0].Kind
		pred := func(c *chaos.Plan) bool {
			for i := range c.Events {
				if c.Events[i].Kind == kind {
					return true
				}
			}
			return false
		}
		shrunk := ShrinkEvents(p, pred)
		if len(shrunk.Events) > len(p.Events) {
			t.Fatalf("shrunk plan grew: %d > %d events", len(shrunk.Events), len(p.Events))
		}
		if !pred(shrunk) {
			t.Fatalf("shrunk plan lost the predicate (kind %s)", kind)
		}
		if err := shrunk.Validate(); err != nil {
			t.Fatalf("shrinking a valid plan produced an invalid one: %v", err)
		}
		enc, err := shrunk.Encode()
		if err != nil {
			t.Fatalf("encode shrunk plan: %v", err)
		}
		back, err := chaos.ParsePlan(enc)
		if err != nil {
			t.Fatalf("shrunk plan does not re-parse: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("shrunk plan encoding is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
