package economics

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// These tests pin the compiled market-admission policy: a provider can
// express the §V-A2 server ban (or any TPL predicate over the demand
// profile) as stakeholder code, out-of-vocabulary policies are refused
// at install time, and current subscribers are grandfathered.

func TestAdmissionPolicyServerBan(t *testing.T) {
	rng := sim.NewRNG(3)
	banning := &Provider{Name: "ban", Cost: 1,
		Offer: Offer{Price: 3, AllowsServers: true}, Strat: StaticPricing{}}
	if err := banning.SetAdmissionPolicy("!runs-server"); err != nil {
		t.Fatal(err)
	}
	open := &Provider{Name: "open", Cost: 1,
		Offer: Offer{Price: 6, AllowsServers: true}, Strat: StaticPricing{}}
	consumers := mkConsumers(20, 20, 0)
	for i, c := range consumers {
		c.RunsServer = i%2 == 0
	}
	m := NewMarket(rng, []*Provider{banning, open}, consumers)
	m.Run(10)
	for _, c := range consumers {
		if c.RunsServer && c.Provider == 0 {
			t.Fatalf("consumer %d runs a server yet subscribed to the banning provider", c.ID)
		}
		if !c.RunsServer && c.Provider != 0 {
			t.Fatalf("consumer %d should prefer the cheaper banning provider, got %d", c.ID, c.Provider)
		}
	}
}

func TestAdmissionPolicyGrandfathersSubscribers(t *testing.T) {
	rng := sim.NewRNG(4)
	p := &Provider{Name: "isp", Cost: 1, Offer: Offer{Price: 3, AllowsServers: true}, Strat: StaticPricing{}}
	consumers := mkConsumers(5, 20, 0)
	for _, c := range consumers {
		c.RunsServer = true
	}
	m := NewMarket(rng, []*Provider{p}, consumers)
	m.Run(3)
	if p.Subscribers != len(consumers) {
		t.Fatalf("pre-policy subscribers = %d", p.Subscribers)
	}
	// Policy lands after the contracts exist: nobody is evicted.
	if err := p.SetAdmissionPolicy("!runs-server"); err != nil {
		t.Fatal(err)
	}
	m.Run(3)
	if p.Subscribers != len(consumers) {
		t.Fatalf("post-policy subscribers = %d, want %d (grandfathered)", p.Subscribers, len(consumers))
	}
}

func TestAdmissionPolicyInstall(t *testing.T) {
	p := &Provider{}
	if err := p.SetAdmissionPolicy("paid"); err == nil ||
		!strings.Contains(err.Error(), `"paid"`) {
		t.Fatalf("out-of-vocabulary install error = %v", err)
	}
	if err := p.SetAdmissionPolicy("wtp >"); err == nil {
		t.Fatal("parse error not surfaced at install")
	}
	if err := p.SetAdmissionPolicy("wtp >= 10 && !runs-server"); err != nil {
		t.Fatal(err)
	}
	if got := p.AdmissionPolicyText(); got != "((wtp >= 10) && !runs-server)" {
		t.Fatalf("canonical policy text = %q", got)
	}
	if err := p.SetAdmissionPolicy(""); err != nil || p.AdmissionPolicyText() != "" {
		t.Fatalf("clearing: err=%v text=%q", err, p.AdmissionPolicyText())
	}
}
