package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestRNGSeedChangesSequence(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	var s Series
	for i := 0; i < 50000; i++ {
		s.Add(r.Exp(3.0))
	}
	if m := s.Mean(); math.Abs(m-3.0) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~3.0", m)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	var s Series
	for i := 0; i < 50000; i++ {
		s.Add(r.Normal(5, 2))
	}
	if m := s.Mean(); math.Abs(m-5) > 0.1 {
		t.Fatalf("Normal mean = %v, want ~5", m)
	}
	if sd := s.Stddev(); math.Abs(sd-2) > 0.1 {
		t.Fatalf("Normal stddev = %v, want ~2", sd)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		sort.Ints(p)
		for i, v := range p {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPickWeighted(t *testing.T) {
	r := NewRNG(19)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	// Expect roughly 10%, 20%, 70%.
	if f := float64(counts[2]) / 30000; f < 0.65 || f > 0.75 {
		t.Fatalf("heavy weight picked %.3f of the time, want ~0.70", f)
	}
	if f := float64(counts[0]) / 30000; f < 0.07 || f > 0.13 {
		t.Fatalf("light weight picked %.3f of the time, want ~0.10", f)
	}
}

func TestRNGPickZeroWeightsUniform(t *testing.T) {
	r := NewRNG(23)
	counts := [4]int{}
	for i := 0; i < 4000; i++ {
		counts[r.Pick([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("zero-weight pick not uniform: bucket %d got %d/4000", i, c)
		}
	}
}

func TestRNGFork(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Fork()
	if child.Uint64() == parent.Uint64() {
		// Not strictly impossible but overwhelmingly unlikely; a match
		// indicates Fork returned an aliased state.
		t.Fatal("fork appears to share state with parent")
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler()
	var at1, at2 Time
	s.At(50, func() { at1 = s.Now() })
	s.After(120, func() { at2 = s.Now() })
	s.Run()
	if at1 != 50 {
		t.Fatalf("Now inside event = %v, want 50", at1)
	}
	if at2 != 120 {
		t.Fatalf("After scheduled at %v, want 120", at2)
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	hits := 0
	var recur func()
	recur = func() {
		hits++
		if hits < 5 {
			s.After(10, recur)
		}
	}
	s.After(0, recur)
	s.Run()
	if hits != 5 {
		t.Fatalf("nested scheduling ran %d times, want 5", hits)
	}
	if s.Now() != 40 {
		t.Fatalf("clock = %v, want 40", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	id := s.At(10, func() { ran = true })
	s.Cancel(id)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var ran []Time
	s.At(10, func() { ran = append(ran, 10) })
	s.At(20, func() { ran = append(ran, 20) })
	s.At(30, func() { ran = append(ran, 30) })
	s.RunUntil(20)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", len(ran))
	}
	if s.Now() != 20 {
		t.Fatalf("clock = %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(ran) != 3 {
		t.Fatal("remaining event did not run")
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt the loop: ran %d", count)
	}
}

func TestSchedulerStep(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatal("first Step failed")
	}
	if !s.Step() || n != 2 {
		t.Fatal("second Step failed")
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second + Second/2, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(msRaw uint16) bool {
		s := float64(msRaw) / 1000
		return math.Abs(FromSeconds(s).Seconds()-s) < 2e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Fatalf("N/Sum/Mean = %d/%v/%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if v := s.Var(); math.Abs(v-2) > 1e-9 {
		t.Fatalf("Var = %v, want 2", v)
	}
}

func TestSeriesEmpty(t *testing.T) {
	// Every statistic on an empty series returns the defined sentinel 0 —
	// never ±Inf (unserializable, poisons arithmetic) and never a panic.
	var s Series
	for _, tc := range []struct {
		name string
		got  float64
	}{
		{"Mean", s.Mean()},
		{"Var", s.Var()},
		{"Stddev", s.Stddev()},
		{"Min", s.Min()},
		{"Max", s.Max()},
		{"Sum", s.Sum()},
		{"Gini", s.Gini()},
		{"Percentile(0)", s.Percentile(0)},
		{"Percentile(50)", s.Percentile(50)},
		{"Percentile(99)", s.Percentile(99)},
		{"Percentile(100)", s.Percentile(100)},
	} {
		if tc.got != 0 {
			t.Errorf("empty series %s = %v, want 0", tc.name, tc.got)
		}
	}
	if s.N() != 0 {
		t.Fatalf("empty series N = %d", s.N())
	}
	// The sentinel must not leak into statistics once data arrives.
	s.Add(-3)
	if s.Min() != -3 || s.Max() != -3 {
		t.Fatalf("after one Add, Min/Max = %v/%v, want -3/-3", s.Min(), s.Max())
	}
}

func TestSeriesPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v, want 50", p)
	}
	if p := s.Percentile(99); p != 99 {
		t.Fatalf("p99 = %v, want 99", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v, want 1", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v, want 100", p)
	}
}

func TestSeriesGini(t *testing.T) {
	var equal Series
	for i := 0; i < 10; i++ {
		equal.Add(5)
	}
	if g := equal.Gini(); math.Abs(g) > 1e-9 {
		t.Fatalf("Gini of equal distribution = %v, want 0", g)
	}
	var unequal Series
	unequal.Add(100)
	for i := 0; i < 9; i++ {
		unequal.Add(0)
	}
	if g := unequal.Gini(); g < 0.85 {
		t.Fatalf("Gini of maximally unequal = %v, want ~0.9", g)
	}
}

func TestSeriesGiniBounds(t *testing.T) {
	r := NewRNG(31)
	f := func(seed uint32) bool {
		var s Series
		n := int(seed%20) + 1
		for i := 0; i < n; i++ {
			s.Add(r.Float64() * 10)
		}
		g := s.Gini()
		return g >= -1e-9 && g <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{}
	c.Inc("a")
	c.Inc("a")
	c.Addn("b", 5)
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Get("missing") != 0 {
		t.Fatalf("counter state wrong: %v", c)
	}
}

func TestKeyCacheInterning(t *testing.T) {
	kc := NewKeyCache("drop:")
	if got := kc.Key("ttl"); got != "drop:ttl" {
		t.Fatalf("Key = %q, want drop:ttl", got)
	}
	kc.Key("no-route")
	allocs := testing.AllocsPerRun(100, func() {
		if kc.Key("ttl") != "drop:ttl" || kc.Key("no-route") != "drop:no-route" {
			t.Fatal("wrong interned key")
		}
	})
	if allocs != 0 {
		t.Fatalf("interned lookups allocated %.1f/op, want 0", allocs)
	}
	c := Counter{}
	c.Inc(kc.Key("ttl"))
	c.Inc(kc.Key("ttl"))
	if c.Get("drop:ttl") != 2 {
		t.Fatalf("counter via interned key = %d, want 2", c.Get("drop:ttl"))
	}
}
