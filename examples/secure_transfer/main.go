// Secure transfer: the whole stack in one flow. Alice and Bob verify
// each other's certified identities, run an X25519 key agreement, and
// move a file reliably (sliding-window ARQ) across a lossy path with a
// wiretap on it — then the tap reports what it managed to read, which
// for the session body is nothing. "The ultimate defense of the
// end-to-end mode is end-to-end encryption" (§VI-A).
//
// Run with: go run ./examples/secure_transfer
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/trust"
)

func main() {
	// Network: alice (1) — transit (2, lossy + tapped) — bob (3).
	sched := sim.NewScheduler()
	g := topology.Linear(3, sim.Millisecond)
	net := netsim.New(sched, g)
	for id := topology.NodeID(1); id <= 3; id++ {
		id := id
		net.Node(id).Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			d := topology.NodeID(dst.Provider())
			switch {
			case d > id:
				return id + 1, true
			case d < id:
				return id - 1, true
			}
			return id, true
		}
	}
	rng := sim.NewRNG(2026)
	tap := &middlebox.Wiretap{Label: "intercept"}
	net.Node(2).AddMiddlebox(tap)
	transport.InstallLossyLink(net, 2, 0.2, rng)

	// Identity: a root CA certifies both parties.
	root := trust.NewPrincipal("root-ca", trust.Certified, rng)
	alice := trust.NewPrincipal("alice", trust.Certified, rng)
	bob := trust.NewPrincipal("bob", trust.Certified, rng)
	anchors := trust.Anchors{"root-ca": root.Pub}
	epA := &trust.Endpoint{Principal: alice, Anchors: anchors, RequireCertified: true,
		Chain: []*trust.Certificate{trust.Issue(root, "alice", alice.Pub, nil, 1000*sim.Second)}}
	epB := &trust.Endpoint{Principal: bob, Anchors: anchors, RequireCertified: true,
		Chain: []*trust.Certificate{trust.Issue(root, "bob", bob.Pub, nil, 1000*sim.Second)}}

	keyA, keyB, err := trust.Establish(epA, epB, rng, 10*sim.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "handshake:", err)
		os.Exit(1)
	}
	fmt.Printf("handshake: certified identities verified, session key agreed (%d bytes, keys match: %v)\n",
		len(keyA), bytes.Equal(keyA, keyB))

	// Alice seals the file under the session key, then ships the
	// ciphertext reliably over the lossy, tapped path.
	file := bytes.Repeat([]byte("all watched over by machines of loving grace\n"), 200)
	c := &packet.Crypto{KeyID: 1, Nonce: 99}
	c.Seal(keyA, file, packet.LayerTypeRaw)
	ciphertext, err := packet.Serialize(c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("file: %d bytes plaintext -> %d bytes sealed\n", len(file), len(ciphertext))

	cfg := transport.DefaultConfig()
	cfg.ContentType = packet.LayerTypeCrypto // declare the stream content honestly
	stats, recv := transport.Transfer(net, 1, 3, 9000, ciphertext, cfg)
	if !stats.Done {
		fmt.Fprintln(os.Stderr, "transfer failed")
		os.Exit(1)
	}
	fmt.Printf("transfer: %d segments, %d sent (%d retransmissions over the 20%%-lossy link), %v elapsed\n",
		stats.Segments, stats.Sent, stats.Retransmissions, stats.Elapsed)

	// Bob reassembles and decrypts.
	var cr packet.Crypto
	if err := cr.DecodeFrom(recv.Data); err != nil {
		fmt.Fprintln(os.Stderr, "bob decode:", err)
		os.Exit(1)
	}
	plain, err := cr.Open(keyB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bob decrypt:", err)
		os.Exit(1)
	}
	fmt.Printf("bob: decrypted %d bytes, intact: %v\n", len(plain), bytes.Equal(plain, file))

	// What did the tap get?
	readable := 0
	for _, cap := range tap.Captured {
		if cap.Readable {
			readable++
		}
	}
	fmt.Printf("wiretap: captured %d packets; readable %d (handshake + bare ACKs), opaque %d (the file itself)\n",
		len(tap.Captured), readable, len(tap.Captured)-readable)
	fmt.Println(`("privacy through technology" works here — but the paper's point stands:`)
	fmt.Println(` the tussle then moves to whether encrypted carriage is permitted at all; see E10)`)
}
