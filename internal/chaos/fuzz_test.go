package chaos

import (
	"bytes"
	"testing"
)

// FuzzFaultPlan round-trips the plan parser: any input ParsePlan accepts
// must validate, encode, re-parse, and re-encode to the identical bytes
// (canonical-form fixed point). Inputs it rejects must not crash. The
// committed seed corpus lives in testdata/fuzz/FuzzFaultPlan and CI runs
// a short -fuzz smoke on every push (see .github/workflows/ci.yml).
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte(samplePlan()))
	f.Add([]byte(`{"name":"empty","seed":0,"events":[]}`))
	f.Add([]byte(`{"events":[{"at_ms":0,"kind":"heal"}]}`))
	f.Add([]byte(`{"events":[{"at_ms":1.5,"kind":"partition","group":[1,2,3]}]}`))
	f.Add([]byte(`{"events":[{"at_ms":1e3,"kind":"impair","a":1,"b":2,"corrupt":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return // rejected without crashing: fine
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePlan returned a plan Validate rejects: %v", err)
		}
		enc, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted plan failed to encode: %v", err)
		}
		p2, err := ParsePlan(enc)
		if err != nil {
			t.Fatalf("own encoding does not re-parse: %v\n%s", err, enc)
		}
		enc2, err := p2.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
