package invariant

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/routing/linkstate"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/transport/multipath"
)

func msToTime(ms float64) sim.Time { return sim.Time(ms * float64(sim.Millisecond)) }

// hooks are the canary seams: deliberate-sabotage points the
// mutate-and-detect tests use to break each invariant and prove the
// checker reports it. Every hook re-applies on every run of a scenario,
// so shrinking a sabotaged trial replays the sabotage on each candidate.
// All nil in production sweeps.
type hooks struct {
	// wrapSink interposes on the checker's event stream (drop events,
	// forge values, regress timestamps).
	wrapSink func(obs.Sink) obs.Sink
	// postPlan runs at probe time, after the restoration tail and before
	// probes are injected (sabotage routing just-in-time).
	postPlan func(net *netsim.Network)
	// mutateTrace tampers with each completed traffic trace before it is
	// checked.
	mutateTrace func(tr *netsim.Trace)
	// beforeFinish runs after the scheduler drains, before route walks
	// and conservation close-out.
	beforeFinish func(net *netsim.Network, c *Checker)
	// corruptStream tampers with the transfer receiver's reassembled
	// stream (single-path or multipath — it sees the raw bytes).
	corruptStream func(data []byte)
	// mutateSnap tampers with one side of the merge-commutativity
	// comparison.
	mutateSnap func(s *obs.Snapshot)
}

// trialResult is one scenario execution's outcome.
type trialResult struct {
	violations []Violation
	reg        *obs.Registry
}

// RunScenario executes one scenario with the given invariant set armed
// (nil arms all) and returns any violations.
func RunScenario(sc *Scenario, enabled map[string]bool) []Violation {
	return runScenario(sc, enabled, nil).violations
}

// runScenario builds the full stack for one trial — network, routing
// substrate, chaos engine, checker — runs it to completion, and applies
// the post-run checks. The routing substrate is chosen by the plan: a
// plan with byzantine bursts needs the advertisement database (signed,
// two-sided attestation) so the burst has something to poison; plans
// without get the cheaper ground-truth link-state database.
func runScenario(sc *Scenario, enabled map[string]bool, hk *hooks) *trialResult {
	if hk == nil {
		hk = &hooks{}
	}
	if enabled == nil {
		enabled = AllSet()
	}
	g := sc.Graph()
	sched := sim.NewScheduler()
	net := netsim.New(sched, g)
	reg := obs.NewRegistry()
	sched.AttachObs(reg)

	checker := NewChecker(net, enabled)
	var sink obs.Sink = checker
	if hk.wrapSink != nil {
		sink = hk.wrapSink(checker)
	}
	net.AttachObs(reg, obs.NewTracer(sink))

	eng := chaos.New(net, sc.Seed)
	needAdDB := false
	for i := range sc.Plan.Events {
		if sc.Plan.Events[i].Kind == chaos.ByzantineBurst {
			needAdDB = true
			break
		}
	}
	var converge func()
	if needAdDB {
		keys := linkstate.GenerateKeys(g, sim.NewRNG(sc.TopoSeed^0x5eed))
		db := linkstate.NewAdDatabase(g, linkstate.SignedTwoSided, keys)
		db.AttachObs(reg)
		rr := chaos.NewAdRerouter(net, db, keys, true)
		rr.AttachObs(reg)
		eng.AdDB = db
		eng.Keys = keys
		eng.Observe(rr)
		converge = rr.Converge
	} else {
		db := linkstate.NewDatabase(g)
		db.AttachObs(reg)
		rr := chaos.NewLinkStateRerouter(net, db, true)
		rr.AttachObs(reg)
		eng.Observe(rr)
		converge = rr.Converge
	}
	converge()
	eng.AttachObs(reg)
	eng.Observe(checker)
	if err := eng.Schedule(sc.Plan); err != nil {
		// Generated and shrunk plans only reference real topology
		// elements, so this is a harness bug — surface it loudly as a
		// violation rather than silently skipping the trial.
		return &trialResult{reg: reg, violations: []Violation{{
			Invariant: "harness", Detail: fmt.Sprintf("plan failed to schedule: %v", err),
		}}}
	}
	checker.BeginEpoch()

	// Traffic matrix.
	traces := make([]*netsim.Trace, len(sc.Traffic))
	ttls := make([]int, len(sc.Traffic))
	for i := range sc.Traffic {
		i := i
		tr := sc.Traffic[i]
		data, err := packet.Serialize(
			&packet.TIP{TTL: 32, Proto: packet.LayerTypeRaw,
				Src: packet.MakeAddr(uint16(tr.Src), 1), Dst: packet.MakeAddr(uint16(tr.Dst), 1)},
			&packet.Raw{Data: make([]byte, tr.Size)})
		if err != nil {
			continue
		}
		ttls[i] = 32
		sched.At(msToTime(tr.AtMs), func() { traces[i] = net.Send(tr.Src, data) })
	}

	// Optional reliable transfer — single-path transport, or the
	// multipath sender when the spec asks for it (the stream-prefix
	// invariant below holds for both, interleaved paths included).
	var xferState func() (done, failed bool)
	var rcvData func() []byte
	var sent []byte
	if sp := sc.Transfer; sp != nil {
		sent = make([]byte, sp.Bytes)
		for i := range sent {
			sent[i] = byte(i*7 + 13)
		}
		if sp.Multipath >= 2 {
			// Source-route forwarding is the multipath data plane; the
			// sweep grants it everywhere, leaving the rerouter tables as
			// the fallback (and the ACK return path on direct links).
			for _, id := range net.Graph.NodeIDs() {
				net.Node(id).HonorSourceRoutes = true
			}
			strats := multipath.Strategies()
			strat := strats[sp.Multipath%len(strats)]
			mrcv := multipath.InstallReceiver(net, sp.Dst, 7777)
			mcfg := multipath.Config{
				Paths: sp.Multipath, MaxPathLen: 8,
				Window: 4, SegmentSize: 256,
				RTO: 20 * sim.Millisecond, MaxRetries: 8,
				Backoff: 2, MaxRTO: 200 * sim.Millisecond,
				JitterFrac: 0.1, Seed: sc.Seed,
				DemoteAfter: 2, ProbeEvery: 50 * sim.Millisecond, MaxProbes: 6,
			}
			msnd := multipath.NewSender(net, strat, sp.Src, sp.Dst, 7777, sent, mcfg)
			sched.At(1*sim.Millisecond, msnd.Start)
			xferState = func() (bool, bool) { return msnd.Done(), msnd.Failed() }
			rcvData = func() []byte { return mrcv.Data }
		} else {
			rcv := transport.InstallReceiver(net, sp.Dst, 7777)
			cfg := transport.Config{
				Window: 4, SegmentSize: 256,
				RTO: 20 * sim.Millisecond, MaxRetries: 8,
				Backoff: 2, MaxRTO: 200 * sim.Millisecond,
				JitterFrac: 0.1, Seed: sc.Seed,
			}
			snd := transport.NewSender(net, sp.Src, packet.MakeAddr(uint16(sp.Dst), 1), 7777, sent, cfg)
			sched.At(1*sim.Millisecond, snd.Start)
			xferState = func() (bool, bool) { return snd.Done(), snd.Failed() }
			rcvData = func() []byte { return rcv.Data }
		}
	}

	// Heal-reachability probes: fired after the restoration tail plus a
	// reconvergence margin. Expectations are gated on ground truth at
	// probe time — if shrinking stripped the restoration tail, pairs
	// separated by a still-broken topology are simply not expected to
	// connect — and suppressed entirely while any impairment is active
	// (a corrupting link can legitimately eat a probe).
	type probeRec struct {
		tr       *netsim.Trace
		src, dst topology.NodeID
		expect   bool
	}
	var probes []*probeRec
	probeAt := msToTime(sc.ProbeAtMs)
	if enabled[Reach] || hk.postPlan != nil {
		sched.At(probeAt, func() {
			if hk.postPlan != nil {
				hk.postPlan(net)
			}
			if !enabled[Reach] {
				return
			}
			comp := Components(net)
			impaired := net.ImpairedLinks() > 0
			endpoints := g.Stubs()
			if len(endpoints) < 2 {
				endpoints = g.NodeIDs()
			}
			prng := sim.NewRNG(sc.Seed ^ 0x9b0be5)
			for k := 0; k < 20; k++ {
				src := endpoints[prng.Intn(len(endpoints))]
				dst := endpoints[prng.Intn(len(endpoints))]
				if src == dst {
					continue
				}
				data, err := packet.Serialize(
					&packet.TIP{TTL: 64, Proto: packet.LayerTypeRaw,
						Src: packet.MakeAddr(uint16(src), 1), Dst: packet.MakeAddr(uint16(dst), 1)},
					&packet.Raw{Data: []byte("reach-probe")})
				if err != nil {
					continue
				}
				expect := !impaired && comp[src] >= 0 && comp[src] == comp[dst]
				probes = append(probes, &probeRec{tr: net.Send(src, data), src: src, dst: dst, expect: expect})
			}
		})
	}

	sched.Run()

	// Post-run: per-packet trace validation.
	for i, tr := range traces {
		if tr == nil {
			continue
		}
		if hk.mutateTrace != nil {
			hk.mutateTrace(tr)
		}
		checker.CheckTrace(tr, ttls[i])
	}
	for _, p := range probes {
		checker.CheckTrace(p.tr, 64)
		if p.expect && !p.tr.Delivered {
			checker.Report(Reach, fmt.Sprintf("heal did not restore reachability: probe %d->%d dropped (%q at node %d) though ground truth connects them",
				p.src, p.dst, p.tr.DropReason, p.tr.DropNode), int64(p.tr.DoneAt))
		}
	}

	// Transport stream invariant (prefix + termination), identical for
	// the single-path and multipath senders: interleaved paths and
	// duplicate-bearing probes must still reassemble to an exact prefix.
	if xferState != nil && enabled[Transport] {
		if hk.corruptStream != nil {
			hk.corruptStream(rcvData())
		}
		done, failed := xferState()
		data := rcvData()
		now := int64(sched.Now())
		if !done && !failed {
			checker.Report(Transport, "transfer neither completed nor failed after the scheduler drained", now)
		}
		if len(data) > len(sent) || !bytes.Equal(data, sent[:len(data)]) {
			checker.Report(Transport, fmt.Sprintf("received stream (%d bytes) is not an in-order prefix of the sent stream (%d bytes)",
				len(data), len(sent)), now)
		} else if done && len(data) != len(sent) {
			checker.Report(Transport, fmt.Sprintf("transfer reported done but receiver holds %d of %d bytes", len(data), len(sent)), now)
		}
	}

	if hk.beforeFinish != nil {
		hk.beforeFinish(net, checker)
	}
	checker.CheckRoutes()
	checker.Finish()

	// Metrics-merge commutativity: merging the trial's registry with a
	// reference shard must be order-independent (the property the
	// parallel experiment runner's deterministic aggregates rest on).
	if enabled[MergeCommute] {
		ref := refShard()
		ab := obs.NewRegistry()
		ab.Merge(reg)
		ab.Merge(ref)
		ba := obs.NewRegistry()
		ba.Merge(ref)
		ba.Merge(reg)
		sa, sb := ab.Snapshot(), ba.Snapshot()
		if hk.mutateSnap != nil {
			hk.mutateSnap(sb)
		}
		ja, _ := json.Marshal(sa)
		jb, _ := json.Marshal(sb)
		if !bytes.Equal(ja, jb) {
			checker.Report(MergeCommute, "registry merge is not commutative: A+B and B+A snapshots differ", int64(sched.Now()))
		}
	}

	return &trialResult{violations: checker.Violations(), reg: reg}
}

// refShard builds the synthetic worker shard the merge-commutativity
// check merges against: it overlaps the trial's metric names (same
// histogram layouts) and adds names of its own, exercising both the
// merge-into-existing and adopt-new paths.
func refShard() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("netsim.sends").Add(3)
	r.Counter("invariant.ref").Add(1)
	r.Gauge("invariant.ref_gauge").Set(2.5)
	h := r.Histogram("netsim.packet_latency_ns", obs.TimeBucketsNs)
	h.Observe(5e5)
	h.Observe(2e9)
	return r
}

// Config parameterizes a sweep.
type Config struct {
	// Trials is how many seeded scenarios to run.
	Trials int
	// Seed salts every trial's scenario seed.
	Seed uint64
	// Invariants is the armed set (nil = all).
	Invariants map[string]bool
	// Shrink controls whether failures are minimized into reproducers.
	Shrink bool
	// MaxShrinkRuns caps candidate executions per shrink (0 = 400).
	MaxShrinkRuns int
	// MaxRepros caps how many failures are shrunk (0 = 3); later
	// failures are still recorded, unshrunk.
	MaxRepros int
	// ForceMultipath upgrades every generated transfer to the multipath
	// sender (path count derived from the trial seed), concentrating the
	// sweep on the striped data plane instead of the ~35% of transfers
	// that draw it naturally.
	ForceMultipath bool
}

// Failure is one failed trial.
type Failure struct {
	// Trial is the trial index, or -1 for sweep-level failures (the
	// cross-trial merge-commutativity check).
	Trial int `json:"trial"`
	// Seed replays the trial: Generate(Seed) reproduces the scenario.
	Seed       uint64      `json:"seed"`
	Violations []Violation `json:"violations"`
	// Repro is the shrunk minimal reproducer, when shrinking ran.
	Repro *Repro `json:"repro,omitempty"`
}

// Result summarizes a sweep.
type Result struct {
	Trials   int        `json:"trials"`
	Failures []*Failure `json:"failures,omitempty"`
}

// Clean reports whether every trial passed.
func (r *Result) Clean() bool { return len(r.Failures) == 0 }

// trialSeed derives trial i's scenario seed from the sweep seed
// (splitmix64 finalizer: consecutive trials get decorrelated streams).
func trialSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Sweep generates and runs cfg.Trials seeded scenarios with the armed
// invariants checked, shrinking failures into minimal reproducers. As a
// final cross-trial check it verifies that merging every trial's metric
// shard forward and in reverse yields identical aggregates — the
// many-shard version of the per-trial merge-commute invariant.
func Sweep(cfg Config) *Result {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if cfg.MaxShrinkRuns <= 0 {
		cfg.MaxShrinkRuns = 400
	}
	if cfg.MaxRepros <= 0 {
		cfg.MaxRepros = 3
	}
	enabled := cfg.Invariants
	if enabled == nil {
		enabled = AllSet()
	}
	res := &Result{Trials: cfg.Trials}
	var regs []*obs.Registry
	shrunk := 0
	for i := 0; i < cfg.Trials; i++ {
		seed := trialSeed(cfg.Seed, i)
		sc := Generate(seed)
		if cfg.ForceMultipath && sc.Transfer != nil && sc.Transfer.Multipath == 0 {
			sc.Transfer.Multipath = 2 + int(seed%4)
		}
		tr := runScenario(sc, enabled, nil)
		regs = append(regs, tr.reg)
		if len(tr.violations) == 0 {
			continue
		}
		f := &Failure{Trial: i, Seed: seed, Violations: tr.violations}
		if cfg.Shrink && shrunk < cfg.MaxRepros {
			f.Repro = ShrinkScenario(sc, enabled, tr.violations[0].Invariant, nil, cfg.MaxShrinkRuns)
			shrunk++
		}
		res.Failures = append(res.Failures, f)
	}
	if enabled[MergeCommute] && len(regs) > 1 {
		fwd := obs.NewRegistry()
		for _, r := range regs {
			fwd.Merge(r)
		}
		rev := obs.NewRegistry()
		for i := len(regs) - 1; i >= 0; i-- {
			rev.Merge(regs[i])
		}
		jf, _ := json.Marshal(fwd.Snapshot())
		jr, _ := json.Marshal(rev.Snapshot())
		if !bytes.Equal(jf, jr) {
			res.Failures = append(res.Failures, &Failure{
				Trial: -1, Seed: cfg.Seed,
				Violations: []Violation{{Invariant: MergeCommute,
					Detail: fmt.Sprintf("merging %d trial shards forward vs reverse yields different aggregates", len(regs))}},
			})
		}
	}
	return res
}

// Repro is a minimal reproducer: the invariant that fired, its detail
// from the final shrunk run, and the shrunk scenario (canonical chaos
// plan JSON plus the seeds that regenerate everything else).
type Repro struct {
	Invariant string    `json:"invariant"`
	Detail    string    `json:"detail"`
	Scenario  *Scenario `json:"scenario"`
}

// Encode renders the reproducer as canonical indented JSON (a fixed
// point of ParseRepro∘Encode, like chaos plans).
func (r *Repro) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("invariant: encode repro: %w", err)
	}
	return append(buf, '\n'), nil
}

// ParseRepro decodes and validates a reproducer. Strict: unknown fields
// are errors, and the embedded scenario must validate against its own
// derived topology.
func ParseRepro(data []byte) (*Repro, error) {
	var r Repro
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("invariant: parse repro: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("invariant: parse repro: trailing data")
	}
	if r.Scenario == nil {
		return nil, fmt.Errorf("invariant: repro has no scenario")
	}
	if err := r.Scenario.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Replay re-runs a reproducer's scenario and returns the violations it
// triggers (deterministic: a valid reproducer fires every time).
func Replay(r *Repro, enabled map[string]bool) []Violation {
	return RunScenario(r.Scenario, enabled)
}
