package transport

import (
	"testing"

	"repro/internal/sim"
)

func benchTransfer(b *testing.B, loss float64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, _ := chain(4)
		if loss > 0 {
			InstallLossyLink(net, 2, loss, sim.NewRNG(uint64(i)))
		}
		stats, _ := Transfer(net, 1, 4, 9000, payload(16000), DefaultConfig())
		if !stats.Done {
			b.Fatal("transfer failed")
		}
	}
}

func BenchmarkTransferClean(b *testing.B) { benchTransfer(b, 0) }
func BenchmarkTransferLossy(b *testing.B) { benchTransfer(b, 0.2) }
