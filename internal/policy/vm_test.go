package policy

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// diffExpr runs one expression through the tree-walker and the compiled
// VM under the same env and requires identical values and identical
// error strings — the differential contract the fuzz target extends to
// arbitrary inputs.
func diffExpr(t *testing.T, src string, env Env) {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", src, err)
	}
	prog, err := Compile(e)
	if err != nil {
		t.Fatalf("%s: compile: %v", src, err)
	}
	want, werr := Eval(e, env)
	b := NewBudget(1<<20, 1<<20)
	got, gerr := prog.Run(env, &b)
	switch {
	case (werr == nil) != (gerr == nil):
		t.Fatalf("%s: eval err=%v vm err=%v\n%s", src, werr, gerr, prog.Disasm())
	case werr != nil:
		if werr.Error() != gerr.Error() {
			t.Fatalf("%s: eval err=%q vm err=%q", src, werr, gerr)
		}
	case !want.Equal(got):
		t.Fatalf("%s: eval=%v vm=%v\n%s", src, want, got, prog.Disasm())
	}
}

func TestVMDifferentialTable(t *testing.T) {
	env := Env{
		"port": Num(443), "tos": Num(4), "role": Str("business"),
		"direction": Str("inbound"), "a": Bool(true), "b": Bool(false),
		"name": Str("bob"), "x": Num(2), "lst": List(Num(1), Str("q")),
	}
	cases := []string{
		// Values and literals.
		`true`, `false`, `42`, `-1.5`, `"hi"`, `[1, 2, 3]`, `[]`,
		`[port, "s", [1]]`,
		// Attributes.
		`port`, `lst`, `missing`,
		// Comparisons.
		`1 < 2`, `2 <= 2`, `3 > 4`, `"a" < "b"`, `"x" >= "x"`,
		`port == 443`, `port != 443`, `x == -1.5`,
		`lst == [1, "q"]`, `lst != [1, "q", 3]`,
		// Membership (folded and dynamic lists).
		`port in [80, 443, 8080]`, `port in [80]`, `name in ["alice", "bob"]`,
		`x in [x, 3]`, `1 in lst`, `port in port`,
		// Logic and short-circuits.
		`a && b`, `a || b`, `!a`, `!(a && b)`,
		`false && missing == 1`, `true || missing == 1`,
		`true && missing == 1`, `false || missing == 1`,
		`port == 80 || port == 443 && role != "guest"`,
		`(a || b) && (tos >= 4 || port < 100)`,
		// Type errors (messages must match byte-for-byte).
		`1 && true`, `true && 1`, `1 || true`, `false || 1`,
		`"a" < 1`, `!5`, `1 in 2`, `[1] < [2]`, `port < role`,
		// Error ordering: left operand errors win.
		`missing == 1 && true`, `[missing, 1] == [1, 1]`,
	}
	for _, src := range cases {
		diffExpr(t, src, env)
	}
}

// TestVMDifferentialRandom cross-checks generated ASTs: random operator
// trees over a small attribute vocabulary with randomly typed envs, so
// type errors, unknown attributes, and deep nesting all get exercised.
func TestVMDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	attrs := []string{"a", "b", "port", "name", "z"}
	var gen func(depth int) Expr
	gen = func(depth int) Expr {
		if depth <= 0 || rng.Intn(4) == 0 {
			switch rng.Intn(4) {
			case 0:
				return &LitExpr{V: Num(float64(rng.Intn(5)))}
			case 1:
				return &LitExpr{V: Bool(rng.Intn(2) == 0)}
			case 2:
				return &LitExpr{V: Str(string(rune('a' + rng.Intn(3))))}
			default:
				return NewRefExpr(attrs[rng.Intn(len(attrs))])
			}
		}
		switch rng.Intn(8) {
		case 0:
			return &UnaryExpr{X: gen(depth - 1)}
		case 1:
			n := rng.Intn(3)
			l := &ListExpr{}
			for i := 0; i < n; i++ {
				l.Elems = append(l.Elems, gen(depth-1))
			}
			return l
		default:
			ops := []string{"==", "!=", "<", ">", "<=", ">=", "in", "&&", "||"}
			return &BinExpr{Op: ops[rng.Intn(len(ops))], L: gen(depth - 1), R: gen(depth - 1)}
		}
	}
	randVal := func() Value {
		switch rng.Intn(4) {
		case 0:
			return Num(float64(rng.Intn(5)))
		case 1:
			return Bool(rng.Intn(2) == 0)
		case 2:
			return Str(string(rune('a' + rng.Intn(3))))
		default:
			return List(Num(1), Str("a"))
		}
	}
	for trial := 0; trial < 5000; trial++ {
		e := gen(4)
		env := Env{}
		for _, a := range attrs {
			if rng.Intn(5) > 0 { // sometimes missing
				env[a] = randVal()
			}
		}
		prog, err := Compile(e)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, e, err)
		}
		want, werr := Eval(e, env)
		b := NewBudget(1<<20, 1<<20)
		got, gerr := prog.Run(env, &b)
		switch {
		case (werr == nil) != (gerr == nil):
			t.Fatalf("trial %d: %s: eval err=%v vm err=%v", trial, e, werr, gerr)
		case werr != nil:
			if werr.Error() != gerr.Error() {
				t.Fatalf("trial %d: %s: eval err=%q vm err=%q", trial, e, werr, gerr)
			}
		case !want.Equal(got):
			t.Fatalf("trial %d: %s: eval=%v vm=%v", trial, e, want, got)
		}
	}
}

func TestRunSlotsMatchesRun(t *testing.T) {
	prog, err := CompileText(`port in [80, 443] && role != "guest" || tos >= 4`)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{"port": Num(443), "role": Str("member"), "tos": Num(2)}
	slots := make([]Value, len(prog.Attrs()))
	for i, name := range prog.Attrs() {
		slots[i] = env[name]
	}
	b := DefaultBudget()
	want, werr := prog.Run(env, &b)
	b2 := DefaultBudget()
	got, gerr := prog.RunSlots(slots, &b2)
	if werr != nil || gerr != nil || !want.Equal(got) {
		t.Fatalf("Run=%v/%v RunSlots=%v/%v", want, werr, got, gerr)
	}
	if b.StepsUsed() != b2.StepsUsed() {
		t.Fatalf("steps diverge: %d vs %d", b.StepsUsed(), b2.StepsUsed())
	}
	if _, err := prog.RunSlots(slots[:1], &b2); err == nil {
		t.Fatal("short slot binding should error")
	}
}

// TestBudgetBoundary pins exact step accounting: a program that needs N
// steps passes with budget N and fails with N-1, for several shapes
// including short-circuits (where executed steps < instruction count).
func TestBudgetBoundary(t *testing.T) {
	cases := []struct {
		src string
		env Env
	}{
		{`port == 80`, Env{"port": Num(80)}},
		{`port in [80, 443]`, Env{"port": Num(22)}},
		{`false && missing == 1`, Env{}},
		{`true || missing == 1`, Env{}},
		{`(a && b) || (a && !b)`, Env{"a": Bool(true), "b": Bool(false)}},
		{`[port, 2] == [1, 2]`, Env{"port": Num(1)}},
	}
	for _, c := range cases {
		prog, err := CompileText(c.src)
		if err != nil {
			t.Fatal(err)
		}
		probe := NewBudget(1<<20, 1<<20)
		if _, err := prog.Run(c.env, &probe); err != nil {
			t.Fatalf("%s: probe: %v", c.src, err)
		}
		n := probe.StepsUsed()
		if n <= 0 || n > prog.MaxSteps() {
			t.Fatalf("%s: steps=%d maxsteps=%d", c.src, n, prog.MaxSteps())
		}
		exact := NewBudget(n, 1<<20)
		if _, err := prog.Run(c.env, &exact); err != nil {
			t.Fatalf("%s: budget %d should suffice: %v", c.src, n, err)
		}
		starved := NewBudget(n-1, 1<<20)
		if _, err := prog.Run(c.env, &starved); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("%s: budget %d should breach, got %v", c.src, n-1, err)
		}
	}
}

// TestAllocBudgetAccounting pins allocation-unit charging for the
// value-materializing ops: string constants, folded list constants, and
// dynamically built lists.
func TestAllocBudgetAccounting(t *testing.T) {
	cases := []struct {
		src   string
		env   Env
		units int64
	}{
		// One string constant: 1 unit.
		{`name == "bob"`, Env{"name": Str("bob")}, 1},
		// Folded constant list [80, 443]: 1 + 2 elements = 3 units,
		// charged on every invocation even though the value is pooled.
		{`port in [80, 443]`, Env{"port": Num(80)}, 3},
		// Folded list of strings: list (1+2) + 2 string cells = 5.
		{`name in ["alice", "bob"]`, Env{"name": Str("eve")}, 5},
		// Dynamic list [port, 2]: mklist charges 1+2; the "2" scalar
		// constant is free.
		{`[port, 2] == [1, 2]`, Env{"port": Num(1)}, 3 + 3}, // rhs folds to a 3-unit const
		// Pure scalar logic: zero units.
		{`port == 80 && port != 22`, Env{"port": Num(80)}, 0},
	}
	for _, c := range cases {
		prog, err := CompileText(c.src)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBudget(1<<20, 1<<20)
		if _, err := prog.Run(c.env, &b); err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if b.AllocsUsed() != c.units {
			t.Fatalf("%s: allocs used = %d, want %d", c.src, b.AllocsUsed(), c.units)
		}
		if c.units > 0 {
			starved := NewBudget(1<<20, c.units-1)
			if _, err := prog.Run(c.env, &starved); !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("%s: alloc budget %d should breach, got %v", c.src, c.units-1, err)
			}
		}
	}
}

// TestBudgetAccumulatesAcrossRuns: a budget shared across invocations
// (as CompiledDocument.Evaluate shares one across rules) is cumulative
// until Reset.
func TestBudgetAccumulatesAcrossRuns(t *testing.T) {
	prog, err := CompileText(`port == 80`)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{"port": Num(80)}
	probe := NewBudget(1<<20, 1<<20)
	prog.Run(env, &probe)
	per := probe.StepsUsed()

	b := NewBudget(2*per, 1<<20)
	for i := 0; i < 2; i++ {
		if _, err := prog.Run(env, &b); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if _, err := prog.Run(env, &b); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("third run should exhaust the shared budget, got %v", err)
	}
	b.Reset()
	if _, err := prog.Run(env, &b); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

// TestBudgetCanaryDeepPolicy is the CI canary: an adversarially long
// policy (100k clauses) compiles fine but must fail fast with
// ErrBudgetExceeded under a small step budget — bounded work, no hang.
func TestBudgetCanaryDeepPolicy(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100_000; i++ {
		sb.WriteString("1 < 2 && ")
	}
	sb.WriteString("true")
	prog, err := CompileText(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBudget(10_000, 10_000)
	_, err = prog.Run(Env{}, &b)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("hostile policy should breach its budget, got %v", err)
	}
	if b.StepsUsed() > 10_001 {
		t.Fatalf("breach was not prompt: %d steps", b.StepsUsed())
	}
	// The tree-walker agrees on the value when given unlimited budget.
	v, err := prog.Run(Env{}, nil)
	if err != nil || !v.B {
		t.Fatalf("unmetered run: %v %v", v, err)
	}
}

// TestVMScalarZeroAlloc pins the steady-state contract: compiled scalar
// policies (including folded-list membership) evaluate with zero Go
// allocations from the pooled VM.
func TestVMScalarZeroAlloc(t *testing.T) {
	for _, src := range []string{
		`port == 80 || port == 443 && role != "guest"`,
		`port in [80, 443, 8080]`,
		`(a && b) || (tos >= 4 && !c)`,
	} {
		prog, err := CompileText(src)
		if err != nil {
			t.Fatal(err)
		}
		env := Env{
			"port": Num(443), "role": Str("member"), "tos": Num(5),
			"a": Bool(true), "b": Bool(false), "c": Bool(false),
		}
		prog.Run(env, nil) // warm the pool
		allocs := testing.AllocsPerRun(1000, func() {
			b := NewBudget(4096, 4096)
			if _, err := prog.Run(env, &b); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: %v allocs/op, want 0", src, allocs)
		}
		// The dense slot path too.
		slots := make([]Value, len(prog.Attrs()))
		for i, name := range prog.Attrs() {
			slots[i] = env[name]
		}
		allocs = testing.AllocsPerRun(1000, func() {
			b := NewBudget(4096, 4096)
			if _, err := prog.RunSlots(slots, &b); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: RunSlots %v allocs/op, want 0", src, allocs)
		}
	}
}

// TestEvalUnknownAttrZeroAlloc pins the satellite fix: the tree-walker's
// unknown-attribute error is pre-wrapped at parse time, so probing for a
// missing attribute no longer fmt.Sprintfs on the hot path.
func TestEvalUnknownAttrZeroAlloc(t *testing.T) {
	e, err := ParseExpr(`missing`)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := Eval(e, env); err == nil {
			t.Fatal("want unknown-attribute error")
		}
	})
	if allocs != 0 {
		t.Fatalf("Eval unknown-attribute path: %v allocs/op, want 0", allocs)
	}
	// And the VM's matching path.
	prog, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	prog.Run(env, nil)
	allocs = testing.AllocsPerRun(1000, func() {
		b := NewBudget(16, 16)
		if _, err := prog.Run(env, &b); err == nil {
			t.Fatal("want unknown-attribute error")
		}
	})
	if allocs != 0 {
		t.Fatalf("VM unknown-attribute path: %v allocs/op, want 0", allocs)
	}
}

func TestCompiledDocumentMatchesEvaluate(t *testing.T) {
	doc, err := Parse(aup)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := CompileDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	envs := []Env{
		{"port": Num(80), "direction": Str("inbound"), "role": Str("consumer"), "tos": Num(0)},
		{"port": Num(8080), "direction": Str("inbound"), "role": Str("consumer"), "tos": Num(0)},
		{"port": Num(8080), "direction": Str("inbound"), "role": Str("business"), "tos": Num(5)},
		{"port": Num(22), "direction": Str("outbound"), "role": Str("consumer"), "tos": Num(0)},
		{}, // every rule errors on a missing attribute → default
		{"port": Str("eighty"), "direction": Str("x"), "role": Num(1), "tos": Num(0)},
	}
	for _, env := range envs {
		want, werrs := Evaluate(doc, env)
		b := DefaultBudget()
		got, gerrs := cd.Evaluate(env, &b)
		if want != got {
			t.Fatalf("env %v: tree=%+v vm=%+v", env, want, got)
		}
		if len(werrs) != len(gerrs) {
			t.Fatalf("env %v: tree errs=%v vm errs=%v", env, werrs, gerrs)
		}
		for i := range werrs {
			if werrs[i].Error() != gerrs[i].Error() {
				t.Fatalf("env %v: err %d: %q vs %q", env, i, werrs[i], gerrs[i])
			}
		}
	}
}

func TestCacheCanonicalDedup(t *testing.T) {
	c := NewCache()
	p1, err := c.CompileText(`x == 1 && y in [2, 3]`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.CompileText("x==1&&y in [2,3] # same policy, different text")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("canonical dedup should share one Program across text variants")
	}
	if p1.Source() == "" {
		t.Fatal("cached program should carry its canonical source")
	}
	// Memoized raw-text hit.
	p3, _ := c.CompileText(`x == 1 && y in [2, 3]`)
	if p3 != p1 {
		t.Fatal("raw-text memo miss")
	}
	// Errors are memoized, not recomputed.
	if _, err := c.CompileText(`x ==`); err == nil {
		t.Fatal("want parse error")
	}
	n := c.Size()
	if _, err := c.CompileText(`x ==`); err == nil || c.Size() != n {
		t.Fatal("parse errors should be cached")
	}
}

func TestDisasmCoversInstructionSet(t *testing.T) {
	prog, err := CompileText(`!(x in [1, "a"]) && ([y, 2] == [1, 2] || x < 3)`)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Disasm()
	for _, op := range []string{"const", "attr", "not", "in", "mklist", "eq", "lt", "and.jmp", "or.jmp"} {
		if !strings.Contains(d, op) {
			t.Fatalf("disassembly missing %q:\n%s", op, d)
		}
	}
}

// BenchmarkPolicyEval is the shape × engine sweep behind the committed
// BENCH_policy.json baseline (cmd/tussle-bench -policy-json): a scalar
// predicate, a folded-constant list membership, and a three-level nested
// boolean, each through the metered VM (env map and dense-slot paths)
// and the tree-walking reference evaluator.
func BenchmarkPolicyEval(b *testing.B) {
	shapes := []struct {
		name, src string
	}{
		{"scalar", `port == 80 || port == 443 && role != "guest"`},
		{"member", `port in [80, 443, 8080, 8443]`},
		{"nested", `((paid && port == 443) || (ttl > 4 && port == 80)) && (!blocked || paid)`},
	}
	env := Env{
		"port": Num(443), "role": Str("member"),
		"ttl": Num(12), "paid": Bool(true), "blocked": Bool(false),
	}
	for _, sh := range shapes {
		prog, err := CompileText(sh.src)
		if err != nil {
			b.Fatal(err)
		}
		e, err := ParseExpr(sh.src)
		if err != nil {
			b.Fatal(err)
		}
		slots := make([]Value, len(prog.Attrs()))
		for i, name := range prog.Attrs() {
			slots[i] = env[name]
		}
		b.Run(sh.name+"/vm", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bud := NewBudget(4096, 4096)
				if _, err := prog.Run(env, &bud); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sh.name+"/vm-slots", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bud := NewBudget(4096, 4096)
				if _, err := prog.RunSlots(slots, &bud); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sh.name+"/tree", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Eval(e, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
