package packet

import (
	"errors"
	"fmt"
)

// TIP wire constants.
const (
	tipVersion   = 1
	tipMinHeader = 16
	tipMaxHeader = 120
)

// TIP option kinds.
const (
	optEnd         = 0
	optNop         = 1
	optSourceRoute = 2
	optPayment     = 3
	optIdentity    = 4
)

// Errors returned by TIP decoding.
var (
	ErrTruncated  = errors.New("packet: truncated header")
	ErrBadVersion = errors.New("packet: bad TIP version")
	ErrBadHeader  = errors.New("packet: malformed TIP header")
	ErrChecksum   = errors.New("packet: TIP checksum mismatch")
)

// Static pre-wrapped errors for the decode path. The decoder faces
// hostile wire input on the UDP fast path, where constructing an error
// with fmt.Errorf would hand an attacker two heap allocations per
// malformed datagram; these are built once and satisfy errors.Is against
// the sentinels above. Sites that need the offending value (serialize
// paths, which only ever see the caller's own packet) keep fmt.Errorf.
var (
	errVersionNibble  = fmt.Errorf("%w: version nibble mismatch", ErrBadVersion)
	errHeaderLenRange = fmt.Errorf("%w: header length out of range", ErrBadHeader)
	errTotalLenRange  = fmt.Errorf("%w: total length out of range", ErrBadHeader)
	errOptTruncated   = fmt.Errorf("%w: truncated option", ErrBadHeader)
	errOptLength      = fmt.Errorf("%w: option length out of range", ErrBadHeader)
	errOptSourceRoute = fmt.Errorf("%w: source route option", ErrBadHeader)
	errOptSrcRoutePtr = fmt.Errorf("%w: source route pointer past hops", ErrBadHeader)
	errOptPaymentLen  = fmt.Errorf("%w: payment option length", ErrBadHeader)
	errOptIdentityLen = fmt.Errorf("%w: identity option length", ErrBadHeader)
)

// SourceRouteOption is a loose provider-level source route: the list of
// waypoint addresses the sender wants the packet to traverse, and a
// pointer to the next unvisited waypoint. This is the "user control of
// routing" mechanism of §V-A4 — the choice point that provider-controlled
// path-vector routing lacks.
type SourceRouteOption struct {
	// Ptr indexes the next waypoint in Hops to visit.
	Ptr uint8
	// Hops are provider-level waypoints, visited in order.
	Hops []Addr
}

// Exhausted reports whether all waypoints have been visited.
func (o *SourceRouteOption) Exhausted() bool { return int(o.Ptr) >= len(o.Hops) }

// Next returns the next waypoint and advances the pointer. It returns
// AddrNone when exhausted.
func (o *SourceRouteOption) Next() Addr {
	if o.Exhausted() {
		return AddrNone
	}
	a := o.Hops[o.Ptr]
	o.Ptr++
	return a
}

// PaymentOption is an in-band payment voucher: the "value flow" protocol
// element §IV-C calls for ("If this value flow requires a protocol,
// design it"). Providers that forward a source-routed packet can redeem
// the voucher; without it they have no incentive to honor the route.
type PaymentOption struct {
	Payer       Addr
	Payee       Addr
	AmountMilli uint32 // thousandths of a currency unit
	Nonce       uint32
	MAC         uint64 // authenticator binding payer/payee/amount/nonce
}

// IdentityOption carries the sender's identity claim: the scheme says how
// to interpret it (anonymous, pseudonymous, certified — §V-B1's
// "framework for talking about identity, not a single identity scheme").
// An explicit Anonymous scheme makes anonymity visible, the paper's
// suggested compromise: "if you are trying to act in an anonymous way, it
// should be hard to disguise this fact."
type IdentityOption struct {
	Scheme uint8
	ID     []byte // at most 16 bytes
}

// Identity schemes.
const (
	IdentityAnonymous uint8 = 0
	IdentityPseudonym uint8 = 1
	IdentityCertified uint8 = 2
)

// TIP is the network layer of the simulated stack: a self-describing
// datagram with explicit type-of-service bits (the tussle-isolated QoS
// selector of §IV-A), hop limit, and optional source route, payment, and
// identity options.
type TIP struct {
	Version  uint8
	TOS      uint8
	TTL      uint8
	Proto    LayerType
	Src, Dst Addr

	SourceRoute *SourceRouteOption
	Payment     *PaymentOption
	Identity    *IdentityOption

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (t *TIP) LayerType() LayerType { return LayerTypeTIP }

// LayerContents implements Layer.
func (t *TIP) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *TIP) LayerPayload() []byte { return t.payload }

// NextLayerType implements DecodingLayer.
func (t *TIP) NextLayerType() LayerType { return t.Proto }

// DecodeFrom implements DecodingLayer. Option structs from a previous
// decode are discarded; use DecodeReuse to recycle them.
func (t *TIP) DecodeFrom(data []byte) error {
	return t.decode(data, false)
}

// DecodeReuse decodes like DecodeFrom but recycles the option structs
// (SourceRoute, Payment, Identity) already attached to t, including the
// source-route hop slice and identity byte slice, so steady-state
// re-decodes on a forwarding fast path are allocation-free. Callers must
// not retain pointers to t's options across calls: the structs are
// overwritten in place by the next DecodeReuse.
//
// Aliasing contract for pooled buffers: the option structs never alias
// data — hops and identity bytes are copied out — but LayerContents and
// LayerPayload are views into data, so once a pooled receive buffer is
// released and refilled, those views silently describe the next
// datagram. A wire worker must finish with (or copy) the views before
// recycling the buffer. On a decode error the exported fields are
// unspecified, but the recycled option structs are retained for the
// next decode, so a flood of malformed datagrams cannot force
// steady-state allocations.
func (t *TIP) DecodeReuse(data []byte) error {
	return t.decode(data, true)
}

func (t *TIP) decode(data []byte, reuse bool) error {
	if len(data) < tipMinHeader {
		return ErrTruncated
	}
	if v := data[0] >> 4; v != tipVersion {
		return errVersionNibble
	}
	hlen := int(data[0]&0x0f) * 8
	if hlen < tipMinHeader || hlen > len(data) {
		return errHeaderLenRange
	}
	total := int(getU16(data[2:]))
	if total < hlen || total > len(data) {
		return errTotalLenRange
	}
	if Checksum(data[:hlen]) != 0 {
		return ErrChecksum
	}
	t.Version = tipVersion
	t.TOS = data[1]
	t.TTL = data[4]
	t.Proto = LayerType(data[5])
	t.Src = getAddr(data[8:])
	t.Dst = getAddr(data[12:])
	var spare tipOptions
	if reuse {
		spare = tipOptions{sr: t.SourceRoute, pay: t.Payment, id: t.Identity}
	}
	t.SourceRoute = nil
	t.Payment = nil
	t.Identity = nil
	if err := t.decodeOptions(data[tipMinHeader:hlen], spare); err != nil {
		// A hostile packet must not bleed the option pool: any spare
		// struct the failed parse did not rebind returns to the scratch
		// TIP, so the next DecodeReuse stays allocation-free. (Without
		// this, alternating malformed and option-bearing packets on a
		// wire feed would force a fresh allocation per good packet.)
		// After an error the exported fields are unspecified; callers
		// must treat the TIP as scratch until the next successful decode.
		if reuse {
			if t.SourceRoute == nil {
				t.SourceRoute = spare.sr
			}
			if t.Payment == nil {
				t.Payment = spare.pay
			}
			if t.Identity == nil {
				t.Identity = spare.id
			}
		}
		return err
	}
	t.contents = data[:hlen]
	t.payload = data[hlen:total]
	return nil
}

// tipOptions carries option structs from a prior decode that
// decodeOptions may overwrite in place instead of allocating anew.
type tipOptions struct {
	sr  *SourceRouteOption
	pay *PaymentOption
	id  *IdentityOption
}

func (t *TIP) decodeOptions(opts []byte, spare tipOptions) error {
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case optEnd:
			return nil
		case optNop:
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return errOptTruncated
		}
		olen := int(opts[1])
		if olen < 2 || olen > len(opts) {
			return errOptLength
		}
		body := opts[2:olen]
		switch kind {
		case optSourceRoute:
			if len(body) < 1 || (len(body)-1)%4 != 0 {
				return errOptSourceRoute
			}
			sr := spare.sr
			if sr == nil {
				sr = &SourceRouteOption{}
			}
			sr.Ptr = body[0]
			sr.Hops = sr.Hops[:0]
			for i := 1; i < len(body); i += 4 {
				sr.Hops = append(sr.Hops, getAddr(body[i:]))
			}
			if int(sr.Ptr) > len(sr.Hops) {
				return errOptSrcRoutePtr
			}
			t.SourceRoute = sr
		case optPayment:
			if len(body) != 24 {
				return errOptPaymentLen
			}
			pay := spare.pay
			if pay == nil {
				pay = &PaymentOption{}
			}
			*pay = PaymentOption{
				Payer:       getAddr(body),
				Payee:       getAddr(body[4:]),
				AmountMilli: getU32(body[8:]),
				Nonce:       getU32(body[12:]),
				MAC:         getU64(body[16:]),
			}
			t.Payment = pay
		case optIdentity:
			if len(body) < 1 || len(body) > 17 {
				return errOptIdentityLen
			}
			opt := spare.id
			if opt == nil {
				opt = &IdentityOption{}
			}
			opt.Scheme = body[0]
			if opt.ID == nil {
				opt.ID = make([]byte, 0, 16)
			}
			opt.ID = append(opt.ID[:0], body[1:]...)
			t.Identity = opt
		default:
			// Unknown options are skipped, not fatal: the network must
			// carry mechanisms it does not understand (design for the
			// unanticipated tussle).
		}
		opts = opts[olen:]
	}
	return nil
}

func (t *TIP) optionsLen() (int, error) {
	n := 0
	if t.SourceRoute != nil {
		if len(t.SourceRoute.Hops) > 10 {
			return 0, fmt.Errorf("%w: %d source route hops (max 10)", ErrBadHeader, len(t.SourceRoute.Hops))
		}
		n += 2 + 1 + 4*len(t.SourceRoute.Hops)
	}
	if t.Payment != nil {
		n += 2 + 24
	}
	if t.Identity != nil {
		if len(t.Identity.ID) > 16 {
			return 0, fmt.Errorf("%w: identity %d bytes (max 16)", ErrBadHeader, len(t.Identity.ID))
		}
		n += 2 + 1 + len(t.Identity.ID)
	}
	// Round up to an 8-byte boundary (the header-length field counts
	// 8-byte words); padding is NOP bytes then End.
	if rem := (tipMinHeader + n) % 8; rem != 0 {
		n += 8 - rem
	}
	return n, nil
}

// SerializeTo implements SerializableLayer.
func (t *TIP) SerializeTo(b *SerializeBuffer) error {
	optLen, err := t.optionsLen()
	if err != nil {
		return err
	}
	hlen := tipMinHeader + optLen
	if hlen > tipMaxHeader {
		return fmt.Errorf("%w: header %d bytes exceeds max %d", ErrBadHeader, hlen, tipMaxHeader)
	}
	total := hlen + b.Len()
	if total > 0xffff {
		return fmt.Errorf("%w: packet %d bytes exceeds 65535", ErrBadHeader, total)
	}
	h := b.Prepend(hlen)
	h[0] = tipVersion<<4 | byte(hlen/8)
	h[1] = t.TOS
	putU16(h[2:], uint16(total))
	h[4] = t.TTL
	h[5] = byte(t.Proto)
	// checksum at 6:8 computed last
	putAddr(h[8:], t.Src)
	putAddr(h[12:], t.Dst)
	o := h[tipMinHeader:]
	fill := func(n int) []byte { zone := o[:n]; o = o[n:]; return zone }
	if t.SourceRoute != nil {
		zone := fill(3 + 4*len(t.SourceRoute.Hops))
		zone[0] = optSourceRoute
		zone[1] = byte(len(zone))
		zone[2] = t.SourceRoute.Ptr
		for i, hop := range t.SourceRoute.Hops {
			putAddr(zone[3+4*i:], hop)
		}
	}
	if t.Payment != nil {
		zone := fill(26)
		zone[0] = optPayment
		zone[1] = 26
		putAddr(zone[2:], t.Payment.Payer)
		putAddr(zone[6:], t.Payment.Payee)
		putU32(zone[10:], t.Payment.AmountMilli)
		putU32(zone[14:], t.Payment.Nonce)
		putU64(zone[18:], t.Payment.MAC)
	}
	if t.Identity != nil {
		zone := fill(3 + len(t.Identity.ID))
		zone[0] = optIdentity
		zone[1] = byte(len(zone))
		zone[2] = t.Identity.Scheme
		copy(zone[3:], t.Identity.ID)
	}
	for i := range o {
		o[i] = optNop
	}
	if len(o) > 0 {
		o[len(o)-1] = optEnd
	}
	putU16(h[6:], Checksum(h))
	return nil
}

func (t *TIP) String() string {
	s := fmt.Sprintf("TIP %v->%v tos=%d ttl=%d proto=%v", t.Src, t.Dst, t.TOS, t.TTL, t.Proto)
	if t.SourceRoute != nil {
		s += fmt.Sprintf(" srcroute=%v@%d", t.SourceRoute.Hops, t.SourceRoute.Ptr)
	}
	if t.Payment != nil {
		s += fmt.Sprintf(" pay=%dm", t.Payment.AmountMilli)
	}
	return s
}
