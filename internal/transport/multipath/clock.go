package multipath

import "repro/internal/sim"

// This file is the substrate seam: the sender's demotion / probation /
// promotion state machine is written once against Clock and Driver, and
// runs unchanged on the simulator's virtual scheduler (SimClock) and on
// the wall clock (internal/wire's WallClock over time.AfterFunc). The
// determinism contract for the wire port rests on this seam: given the
// same Config, candidate set, and segment/ACK byte stream at the same
// clock readings, both substrates must make byte-identical decisions —
// the differential harness in internal/wire pins that.

// Timer is one cancellable pending callback. A nil Timer is valid and
// cancels to a no-op (use cancelTimer).
type Timer interface {
	// Cancel stops the timer if it has not fired. Callbacks that raced
	// past Cancel on a wall clock are defused by generation checks in
	// the state machine, so Cancel need not synchronize with the
	// callback.
	Cancel()
}

// cancelTimer cancels t if armed.
func cancelTimer(t Timer) {
	if t != nil {
		t.Cancel()
	}
}

// Clock is the timer substrate a Sender runs on. Implementations must
// deliver callbacks serially with respect to the sender's other entry
// points (the scheduler is single-threaded; WallClock serializes with a
// mutex).
type Clock interface {
	// Now is the current time. Wall clocks report nanoseconds since an
	// arbitrary epoch; only differences matter.
	Now() sim.Time
	// After arms fn to run once, d from now.
	After(d sim.Time, fn func()) Timer
}

// SimClock adapts the simulation scheduler to Clock. It is the
// substrate behind NewSender; exported so harnesses can drive a wire
// sender on virtual time.
type SimClock struct {
	Sched *sim.Scheduler
}

// Now returns the scheduler's current virtual time.
func (c SimClock) Now() sim.Time { return c.Sched.Now() }

// After schedules fn on the scheduler.
func (c SimClock) After(d sim.Time, fn func()) Timer {
	return simTimer{c.Sched, c.Sched.After(d, fn)}
}

type simTimer struct {
	s  *sim.Scheduler
	id sim.EventID
}

func (t simTimer) Cancel() { t.s.Cancel(t.id) }

// Driver is everything substrate-specific about running a Sender: the
// clock, the transmission hooks, and the observers. NewSender fills it
// with the netsim substrate; wire.MultipathSender fills it with UDP
// sockets and batched sends.
type Driver struct {
	// Clock provides Now and timers. Required.
	Clock Clock
	// Xmit transmits segment seq over path p (serialization and I/O are
	// the driver's business; the core supplies Segment(seq) and the
	// path's on-wire ID). An error is terminal for the transfer.
	// Required.
	Xmit func(p *Path, seq uint32) error
	// Flush, if set, runs at the end of every state-machine entry point
	// (Start, HandleAck, and timer callbacks) so drivers that batch
	// transmissions can push the accumulated queue in one syscall.
	Flush func()
	// Trace, if set, receives one line per sender decision
	// ("t=<ns> tx seq=... path=... rto=..."). The line format is shared
	// by both substrates and diffed by the differential harness; it is
	// part of the determinism contract.
	Trace func(line string)
	// OnDone, if set, runs once when the transfer finishes or fails —
	// the wall-clock driver's completion signal.
	OnDone func()
}
