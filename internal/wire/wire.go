// Package wire puts the TIP data plane on real UDP sockets: the "live
// wire mode" counterpart to the internal/netsim simulator. An Engine
// binds one socket per worker (SO_REUSEPORT on Linux), receives
// datagrams in batches (recvmmsg/sendmmsg where available, a portable
// single-syscall loop elsewhere), runs each through the cheap raw-byte
// sanity filter (packet.Filter) and then a Dataplane — the same
// middlebox chain, source-route policy, and routing decision sequence a
// netsim node executes — and transmits forwards and echoes in batches.
//
// # Zero-allocation steady state
//
// The receive path mirrors the netsim flight-pool discipline: every
// worker owns a fixed Arena of receive slots, a reusable packet.TIP
// decode scratch (DecodeReuse), preallocated batch headers, and a
// per-reason stat table indexed by small integers — so the steady-state
// recv→filter→decide→send path performs zero heap allocations per
// packet. Drop reasons and middlebox-specific strings are interned at
// Dataplane construction, never concatenated per packet.
//
// # Determinism twin
//
// The simulator remains the deterministic twin of the live engine: for
// any datagram bytes, Dataplane.Process and netsim.Network.InjectArrival
// at the same node must produce the identical decision — deliver,
// forward to the same next hop, or drop with the same reason, including
// "malformed" for bytes the sanity filter or decoder rejects. The
// differential tests in this package pin that contract with golden byte
// streams (clean, malformed, and middlebox-rewritten); the invariant
// machinery can therefore convict the live engine by replaying its
// traffic through the sim.
package wire

import (
	"fmt"

	"repro/internal/topology"
)

// DecisionKind classifies what the dataplane decided to do with a
// datagram.
type DecisionKind uint8

// Decision kinds.
const (
	// Deliver: the datagram terminates at this node.
	Deliver DecisionKind = iota
	// Forward: the datagram continues to Decision.Next.
	Forward
	// Dropped: the datagram is discarded for Decision.Reason.
	Dropped
)

// DropKind indexes the fixed per-reason drop-statistics table. The
// human-readable reason (including the middlebox name for blocked /
// malformed-after drops) travels separately in Decision.Reason.
type DropKind uint8

// Drop kinds, mirroring the netsim drop-reason vocabulary for the
// decision paths a wire node shares with a sim node.
const (
	DropMalformed      DropKind = iota // filter or decoder rejected the bytes
	DropTTL                            // TTL reached zero
	DropNoRoute                        // no route to the destination
	DropBadNextHop                     // routing chose a non-adjacent node
	DropBlocked                        // a loud middlebox dropped it
	DropLost                           // a silent middlebox dropped it
	DropMalformedAfter                 // a middlebox rewrite produced undecodable bytes

	// DropKinds is the number of distinct drop kinds (for stats arrays).
	DropKinds
)

func (k DropKind) String() string {
	switch k {
	case DropMalformed:
		return "malformed"
	case DropTTL:
		return "ttl"
	case DropNoRoute:
		return "no-route"
	case DropBadNextHop:
		return "bad-next-hop"
	case DropBlocked:
		return "blocked"
	case DropLost:
		return "lost"
	case DropMalformedAfter:
		return "malformed-after"
	default:
		return "unknown"
	}
}

// Decision is the dataplane's verdict on one datagram. It is a value
// type: producing one allocates nothing, and Reason is always an
// interned string (a literal or a string prebuilt per middlebox at
// Dataplane construction).
type Decision struct {
	Kind DecisionKind
	// Next is the chosen next-hop node when Kind == Forward.
	Next topology.NodeID
	// Reason is the drop reason when Kind == Dropped, in the netsim
	// vocabulary: "malformed", "ttl", "no-route", "bad-next-hop",
	// "blocked:<name>", "lost", "malformed-after:<name>".
	Reason string
	// Drop is the stats-table index for the drop reason.
	Drop DropKind
	// Data is the datagram to transmit onward: the (possibly
	// middlebox-rewritten, TTL-patched) bytes. It may alias the input
	// buffer or a middlebox's own buffer; it is valid until the next
	// Process call on the same Dataplane.
	Data []byte
}

// String renders the decision in the differential-log vocabulary shared
// with the simulator: "deliver", "forward <node>", "drop <reason>". It
// allocates and is meant for logs and tests, not the fast path.
func (d Decision) String() string {
	switch d.Kind {
	case Deliver:
		return "deliver"
	case Forward:
		return fmt.Sprintf("forward %d", d.Next)
	default:
		return "drop " + d.Reason
	}
}
