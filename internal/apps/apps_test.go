package apps

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestChooseServerPrefersQuality(t *testing.T) {
	servers := []*MailServer{
		{Name: "cheap-flaky", Reliability: 0.7, SpamFilter: 0.1, Price: 1},
		{Name: "solid", Reliability: 0.99, SpamFilter: 0.9, Price: 3},
	}
	prefs := MailPrefs{WeightReliability: 5, WeightSpamFilter: 3, WeightPrice: 0.1}
	if got := ChooseServer(servers, prefs); got.Name != "solid" {
		t.Fatalf("chose %q", got.Name)
	}
	// A price-obsessed user chooses differently — same mechanism,
	// different outcome (design for variation in outcome).
	cheap := MailPrefs{WeightReliability: 0.1, WeightSpamFilter: 0.1, WeightPrice: 5}
	if got := ChooseServer(servers, cheap); got.Name != "cheap-flaky" {
		t.Fatalf("price-sensitive user chose %q", got.Name)
	}
}

func TestChooseServerEmptyAndTies(t *testing.T) {
	if ChooseServer(nil, MailPrefs{}) != nil {
		t.Fatal("empty list should return nil")
	}
	a := &MailServer{Name: "a", Reliability: 0.9}
	b := &MailServer{Name: "b", Reliability: 0.9}
	if got := ChooseServer([]*MailServer{b, a}, MailPrefs{WeightReliability: 1}); got.Name != "a" {
		t.Fatalf("tie broke to %q, want deterministic 'a'", got.Name)
	}
}

func TestMailSpamFiltering(t *testing.T) {
	rng := sim.NewRNG(1)
	s := &MailServer{Name: "s", Reliability: 1.0, SpamFilter: 0.95}
	var offered []Message
	for i := 0; i < 500; i++ {
		offered = append(offered, Message{Spam: i%2 == 0})
	}
	rate := InboxSpamRate(s, offered, rng)
	if rate > 0.10 {
		t.Fatalf("inbox spam rate = %v with a 95%% filter", rate)
	}
	if s.Filtered == 0 || s.Delivered == 0 {
		t.Fatalf("counters: %+v", s)
	}
}

func TestMailUnreliableLosesMail(t *testing.T) {
	rng := sim.NewRNG(2)
	s := &MailServer{Name: "flaky", Reliability: 0.5, SpamFilter: 0}
	delivered := 0
	for i := 0; i < 1000; i++ {
		if s.Handle(Message{}, rng) {
			delivered++
		}
	}
	if delivered < 400 || delivered > 600 {
		t.Fatalf("delivered %d/1000 at 50%% reliability", delivered)
	}
}

func TestCentralIndexTakedownKillsEverything(t *testing.T) {
	rng := sim.NewRNG(3)
	idx := NewCentralIndex()
	catalog := []string{"song-a", "song-b", "song-c"}
	swarm := NewSwarm(idx, 20, catalog, 3, rng)
	if swarm.Availability() != 1 {
		t.Fatalf("initial availability = %v", swarm.Availability())
	}
	if !idx.TakedownNode() {
		t.Fatal("takedown failed")
	}
	if swarm.Availability() != 0 {
		t.Fatalf("availability after central takedown = %v, want 0", swarm.Availability())
	}
	if idx.TakedownNode() {
		t.Fatal("second takedown of a dead index should fail")
	}
}

func TestDistributedIndexSurvivesTakedowns(t *testing.T) {
	rng := sim.NewRNG(4)
	idx := NewDistributedIndex(20, 3, rng)
	catalog := []string{"song-a", "song-b", "song-c", "song-d", "song-e"}
	swarm := NewSwarm(idx, 50, catalog, 3, rng)
	if swarm.Availability() != 1 {
		t.Fatalf("initial availability = %v", swarm.Availability())
	}
	// The same single legal action that killed Napster barely dents it.
	idx.TakedownNode()
	if swarm.Availability() < 0.8 {
		t.Fatalf("availability after one node takedown = %v", swarm.Availability())
	}
	// Even half the nodes down leaves most content findable.
	for i := 0; i < 9; i++ {
		idx.TakedownNode()
	}
	if swarm.Availability() < 0.5 {
		t.Fatalf("availability with 10/20 nodes down = %v", swarm.Availability())
	}
}

func TestTakedownFileRemovesEntries(t *testing.T) {
	rng := sim.NewRNG(5)
	idx := NewDistributedIndex(5, 2, rng)
	swarm := NewSwarm(idx, 10, []string{"infringing", "legit"}, 2, rng)
	removed := idx.TakedownFile("infringing")
	if removed == 0 {
		t.Fatal("no entries removed")
	}
	if swarm.Fetch("infringing") {
		t.Fatal("file still fetchable after full takedown")
	}
	if !swarm.Fetch("legit") {
		t.Fatal("unrelated file damaged")
	}
}

func TestSwarmUploadCredit(t *testing.T) {
	rng := sim.NewRNG(6)
	idx := NewCentralIndex()
	swarm := NewSwarm(idx, 10, []string{"f"}, 1, rng)
	for i := 0; i < 5; i++ {
		if !swarm.Fetch("f") {
			t.Fatal("fetch failed")
		}
	}
	top := swarm.TopUploaders(1)
	if len(top) != 1 || swarm.UploadCredit[top[0]] != 5 {
		t.Fatalf("top uploaders = %v credit=%v", top, swarm.UploadCredit)
	}
}

func TestWebCacheLRU(t *testing.T) {
	origin := NewWebOrigin("origin", 100*sim.Millisecond)
	origin.Put("a", 10)
	origin.Put("b", 20)
	origin.Put("c", 30)
	cache := NewWebCache("edge", 2, 5*sim.Millisecond, origin)

	if _, lat, ok := cache.Get("a"); !ok || lat != 105*sim.Millisecond {
		t.Fatalf("cold fetch lat = %v, ok=%v", lat, ok)
	}
	if _, lat, ok := cache.Get("a"); !ok || lat != 5*sim.Millisecond {
		t.Fatalf("warm fetch lat = %v", lat)
	}
	cache.Get("b")
	cache.Get("c") // evicts "a" (LRU)
	if _, lat, _ := cache.Get("a"); lat != 105*sim.Millisecond {
		t.Fatalf("evicted fetch lat = %v, want cold", lat)
	}
	if cache.HitRate() <= 0 || cache.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", cache.HitRate())
	}
}

func TestWebCacheBrokenFailsRequests(t *testing.T) {
	origin := NewWebOrigin("origin", 100*sim.Millisecond)
	origin.Put("a", 1)
	cache := NewWebCache("edge", 2, 5*sim.Millisecond, origin)
	cache.Broken = true
	if _, _, ok := cache.Get("a"); ok {
		t.Fatal("broken cache served a request — should be a visible failure point")
	}
}

func TestWebCacheMissingContent(t *testing.T) {
	origin := NewWebOrigin("origin", 10*sim.Millisecond)
	cache := NewWebCache("edge", 2, sim.Millisecond, origin)
	if _, _, ok := cache.Get("nope"); ok {
		t.Fatal("missing content served")
	}
}

func TestVoIPScore(t *testing.T) {
	if s := VoIPScore(50 * sim.Millisecond); s != 4.4 {
		t.Fatalf("low-delay score = %v", s)
	}
	if s := VoIPScore(500 * sim.Millisecond); s != 1.0 {
		t.Fatalf("high-delay score = %v", s)
	}
	mid := VoIPScore(275 * sim.Millisecond)
	if mid <= 1 || mid >= 4.4 {
		t.Fatalf("mid score = %v", mid)
	}
	if !VoIPAcceptable(100 * sim.Millisecond) {
		t.Fatal("100ms should be acceptable")
	}
	if VoIPAcceptable(390 * sim.Millisecond) {
		t.Fatal("390ms should not be acceptable")
	}
}

func TestVoIPScoreMonotoneQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		d1 := sim.Time(a%500) * sim.Millisecond
		d2 := sim.Time(b%500) * sim.Millisecond
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return VoIPScore(d1) >= VoIPScore(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedIndexReplicationQuick(t *testing.T) {
	// Any file published survives up to Replication-1 adversarial node
	// losses among its replica set... statistically: random single
	// takedown keeps availability high.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		idx := NewDistributedIndex(10, 3, rng)
		idx.Publish(1, "f")
		idx.TakedownNode()
		idx.TakedownNode()
		// With 3 replicas on 10 nodes and 2 random takedowns, the file
		// is usually still up; we only require consistency: if Lookup
		// finds it, fetching must succeed.
		peers := idx.Lookup("f")
		return peers == nil || len(peers) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVoIPBoundary(t *testing.T) {
	if math.Abs(VoIPScore(150*sim.Millisecond)-4.4) > 1e-9 {
		t.Fatal("150ms boundary wrong")
	}
	if math.Abs(VoIPScore(400*sim.Millisecond)-1.0) > 1e-9 {
		t.Fatal("400ms boundary wrong")
	}
}
