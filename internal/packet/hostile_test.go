package packet

import (
	"errors"
	"testing"
)

// Tests for decoder behavior under hostile wire input: the properties a
// UDP-facing worker depends on when it reuses one scratch TIP across
// pooled receive buffers. See the DecodeReuse doc comment for the
// aliasing and pooling contract being pinned here.

// craftHeader builds a syntactically plausible TIP header by hand: fixed
// fields, a caller-supplied options region, and a correct checksum — so
// tests can make exactly one thing wrong at a time.
func craftHeader(t *testing.T, opts []byte) []byte {
	t.Helper()
	if len(opts)%8 != 0 {
		t.Fatalf("options region must be a multiple of 8 bytes, got %d", len(opts))
	}
	hlen := tipMinHeader + len(opts)
	b := make([]byte, hlen)
	b[0] = tipVersion<<4 | byte(hlen/8)
	putU16(b[2:], uint16(hlen)) // total = header, no payload
	b[4] = 9                    // TTL
	b[5] = byte(LayerTypeRaw)
	putAddr(b[8:], MakeAddr(1, 1))
	putAddr(b[12:], MakeAddr(2, 2))
	copy(b[tipMinHeader:], opts)
	putU16(b[6:], Checksum(b))
	return b
}

func optionPacket(t *testing.T) []byte {
	t.Helper()
	data, err := Serialize(&TIP{
		TTL: 12, Proto: LayerTypeRaw,
		Src: MakeAddr(3, 1), Dst: MakeAddr(4, 1),
		SourceRoute: &SourceRouteOption{Hops: []Addr{MakeAddr(5, 1), MakeAddr(6, 1)}},
		Payment:     &PaymentOption{Payer: MakeAddr(3, 1), Payee: MakeAddr(5, 1), AmountMilli: 100, Nonce: 7, MAC: 99},
		Identity:    &IdentityOption{Scheme: IdentityCertified, ID: []byte("carol")},
	}, &Raw{Data: []byte("pay")})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDecodeReuseSurvivesHostileInterleaving is the pooling gate: a
// scratch TIP alternating between malformed and option-bearing packets
// must stay allocation-free. Without the error-path restore in decode(),
// every malformed packet would strand the pooled option structs and
// force the next good decode to allocate all three afresh.
func TestDecodeReuseSurvivesHostileInterleaving(t *testing.T) {
	good := optionPacket(t)

	// Structurally valid header whose source-route body length is not
	// 1+4k: the option parser errors after the header sanity checks pass.
	badSR := craftHeader(t, []byte{optSourceRoute, 8, 0, 0, 0, 0, 0, 0})
	// Source route parses, then the payment option has an absurd length:
	// the parser fails *after* rebinding the source-route struct, so only
	// the unconsumed spares need restoring.
	badPay := craftHeader(t, []byte{
		optSourceRoute, 7, 0, 0x00, 0x05, 0x00, 0x01, // ptr 0, one hop 5.1
		optPayment, 4, 0, 0, // payment body must be 24 bytes, is 2
		optEnd, 0, 0, 0, 0,
	})

	var tip TIP
	if err := tip.DecodeFrom(good); err != nil {
		t.Fatalf("decode good packet: %v", err)
	}
	for _, bad := range [][]byte{badSR, badPay} {
		if err := tip.DecodeReuse(bad); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("hostile packet decoded to %v, want ErrBadHeader", err)
		}
		if err := tip.DecodeReuse(good); err != nil {
			t.Fatalf("re-decode good packet after hostile: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		_ = tip.DecodeReuse(badSR)
		_ = tip.DecodeReuse(badPay)
		if err := tip.DecodeReuse(good); err != nil {
			t.Fatalf("good packet stopped decoding: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hostile interleaving costs %.1f allocs per round, want 0 — the option pool is leaking on error paths", allocs)
	}
}

// TestDecodedOptionsDoNotAliasInput pins the copy-out side of the
// aliasing contract: after a decode, scribbling over the input buffer
// (as a pooled receive slot refill does) must not change the decoded
// option values — only the LayerContents/LayerPayload views may alias.
func TestDecodedOptionsDoNotAliasInput(t *testing.T) {
	data := optionPacket(t)
	var tip TIP
	if err := tip.DecodeFrom(data); err != nil {
		t.Fatal(err)
	}
	wantHops := append([]Addr(nil), tip.SourceRoute.Hops...)
	wantPay := *tip.Payment
	wantID := append([]byte(nil), tip.Identity.ID...)

	for i := range data {
		data[i] = 0xFF // pooled slot refilled by the next datagram
	}

	for i, h := range tip.SourceRoute.Hops {
		if h != wantHops[i] {
			t.Fatalf("source route hop %d changed after buffer reuse: %v -> %v", i, wantHops[i], h)
		}
	}
	if *tip.Payment != wantPay {
		t.Fatalf("payment changed after buffer reuse: %+v -> %+v", wantPay, *tip.Payment)
	}
	for i, b := range tip.Identity.ID {
		if b != wantID[i] {
			t.Fatalf("identity byte %d changed after buffer reuse", i)
		}
	}
	// The views, by contract, DO alias the (now clobbered) buffer.
	if tip.LayerContents()[0] != 0xFF {
		t.Fatal("LayerContents no longer aliases the input buffer — the zero-copy contract changed")
	}
}

// TestDecodeTruncatedAndOversized sweeps datagram-boundary cases a UDP
// socket actually produces: every truncation of a valid packet must be
// rejected or decode within bounds, and trailing garbage beyond the
// declared total length must be excluded from the payload view.
func TestDecodeTruncatedAndOversized(t *testing.T) {
	data := optionPacket(t)
	for cut := 0; cut < len(data); cut++ {
		var tip TIP
		if err := tip.DecodeFrom(data[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(data))
		}
	}
	// MTU-sized receive buffer with the packet at the front: the decode
	// must stop at the total-length field, not the buffer end.
	slot := make([]byte, 2048)
	copy(slot, data)
	for i := len(data); i < len(slot); i++ {
		slot[i] = 0x5A
	}
	var tip TIP
	if err := tip.DecodeFrom(slot); err != nil {
		t.Fatalf("decode packet in oversized buffer: %v", err)
	}
	if got := len(tip.LayerContents()) + len(tip.LayerPayload()); got != len(data) {
		t.Fatalf("decoded views cover %d bytes, want %d (slack excluded)", got, len(data))
	}
}
