// Package linkstate implements an OSPF-style link-state routing protocol
// for the simulated internetwork: every node floods its link costs, every
// node runs Dijkstra over the identical database, and — the property that
// matters for the tussle analysis of §IV-C — every node's cost choices
// are public. Contrast with the path-vector protocol in the sibling
// package, which reveals only chosen paths.
package linkstate

import (
	"container/heap"
	"math"

	"repro/internal/packet"
	"repro/internal/topology"
)

// Database is the flooded link-state database: the complete, public view
// of the network's links and costs.
type Database struct {
	g *topology.Graph
	// Overrides lets a node advertise a different cost on a link
	// (traffic engineering — a visible tussle move).
	Overrides map[[2]topology.NodeID]float64
}

// NewDatabase builds a database over the topology.
func NewDatabase(g *topology.Graph) *Database {
	return &Database{g: g, Overrides: make(map[[2]topology.NodeID]float64)}
}

// SetCost overrides the advertised cost of the directed edge a→b.
func (db *Database) SetCost(a, b topology.NodeID, cost float64) {
	db.Overrides[[2]topology.NodeID{a, b}] = cost
}

// Cost returns the advertised cost of the directed edge a→b.
func (db *Database) Cost(a, b topology.NodeID) (float64, bool) {
	if c, ok := db.Overrides[[2]topology.NodeID{a, b}]; ok {
		return c, true
	}
	l, ok := db.g.LinkBetween(a, b)
	if !ok {
		return 0, false
	}
	return l.Cost, true
}

// VisibleChoices reports every (edge, cost) pair any observer can read
// from the database — the §IV-C "visibility of choices" audit surface.
// The count equals twice the number of links (both directions).
func (db *Database) VisibleChoices() int {
	n := 0
	for _, id := range db.g.NodeIDs() {
		n += len(db.g.Neighbors(id))
	}
	return n
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	node topology.NodeID
	dist float64
}

type pq []item

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(item)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// SPF runs Dijkstra from src over the database and returns, for every
// reachable destination, the next hop and total cost.
func (db *Database) SPF(src topology.NodeID) (next map[topology.NodeID]topology.NodeID, dist map[topology.NodeID]float64) {
	next = make(map[topology.NodeID]topology.NodeID)
	dist = make(map[topology.NodeID]float64)
	prev := make(map[topology.NodeID]topology.NodeID)
	const inf = math.MaxFloat64
	dist[src] = 0
	q := pq{{src, 0}}
	done := make(map[topology.NodeID]bool)
	for q.Len() > 0 {
		it := heap.Pop(&q).(item)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, nb := range db.g.Neighbors(it.node) {
			c, ok := db.Cost(it.node, nb)
			if !ok || c < 0 {
				continue
			}
			nd := it.dist + c
			cur, seen := dist[nb]
			if !seen {
				cur = inf
			}
			if nd < cur {
				dist[nb] = nd
				prev[nb] = it.node
				heap.Push(&q, item{nb, nd})
			}
		}
	}
	for dst := range dist {
		if dst == src {
			continue
		}
		// Walk back to find the first hop.
		hop := dst
		for prev[hop] != src {
			hop = prev[hop]
		}
		next[dst] = hop
	}
	return next, dist
}

// Table is a computed forwarding table for one node.
type Table struct {
	Src  topology.NodeID
	Next map[topology.NodeID]topology.NodeID
	Dist map[topology.NodeID]float64
}

// Compute builds forwarding tables for every node.
func Compute(db *Database) map[topology.NodeID]*Table {
	out := make(map[topology.NodeID]*Table)
	for _, id := range db.g.NodeIDs() {
		next, dist := db.SPF(id)
		out[id] = &Table{Src: id, Next: next, Dist: dist}
	}
	return out
}

// RouteFunc adapts a table to the simulator's routing hook.
func (t *Table) RouteFunc() func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
	return func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
		d := topology.NodeID(dst.Provider())
		if d == t.Src {
			return t.Src, true
		}
		nh, ok := t.Next[d]
		return nh, ok
	}
}
